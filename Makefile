# DataSculpt-Go build/test entry points. `make ci` is the gate every
# change must pass; `make bench-grid` compares the serial and parallel
# experiment engines on the same grid.

GO ?= go

# Total statement coverage (as printed by `go tool cover -func`) must not
# drop below this floor, re-measured after the growth-loop PR landed
# (83.3% at the time). Raise it when coverage genuinely improves; never
# lower it to make ci pass.
COVERAGE_FLOOR = 83.0

.PHONY: ci vet build test race chaos grow-chaos grow-smoke stress fuzz-smoke cover-check metrics-lint bench bench-grid bench-json bench-smoke bench-seu-smoke bench-serve bench-serve-smoke bench-scale bench-scale-smoke clean

ci: vet build test race chaos grow-chaos grow-smoke stress fuzz-smoke cover-check metrics-lint bench-smoke bench-seu-smoke bench-serve-smoke bench-scale-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fault-injection grid under the race detector: a checkpointed chaos
# sweep is interrupted, resumed, and must render byte-identically
chaos:
	$(GO) test -race -run 'Chaos|LoadCheckpoint' -count=1 ./internal/experiment/

# growth-loop durability under the race detector: the online growth
# daemon is killed at every checkpoint boundary of a cycle (with the
# LLM degraded by seeded fault injection), restarted cold, and must
# resume to a byte-identical candidate bundle and journal row
grow-chaos:
	$(GO) test -race -run TestGrowthChaos -count=1 ./internal/growth/

# tiny end-to-end growth cycle over the Youtube split (wired into ci):
# boot the daemon with the growth loop attached, label real HTTP
# traffic into the capture reservoir, run one cycle, and check
# /v1/growth reports the outcome
grow-smoke:
	$(GO) test -run 'TestGrowthSmoke|TestDaemonGrowthEndToEnd' -count=1 ./internal/growth/ ./cmd/datasculptd/

# evaluation-engine determinism under the race detector: incremental
# vote-matrix appends, parallel EM, the SEU scoring engine, and a
# Parallelism: N vs 1 pipeline run must all be race-free and
# bit-identical
stress:
	$(GO) test -race -count=1 \
		-run 'Parallel|Incremental|ComputeStats|WarmStart|InterimCache|VoteMatrix|Chunks|For|Normalize|SEU' \
		./internal/par/ ./internal/lf/ ./internal/labelmodel/ ./internal/textproc/ ./internal/core/ ./internal/sampler/

# 30 seconds of coverage-guided fuzzing per target on the two parsers
# that face untrusted input: LLM completions and raw text. `go test
# -fuzz` accepts a single target per invocation, hence one run each.
fuzz-smoke:
	$(GO) test -run XXX -fuzz '^FuzzParseResponse$$' -fuzztime 30s ./internal/prompt/
	$(GO) test -run XXX -fuzz '^FuzzSelfConsistency$$' -fuzztime 30s ./internal/prompt/
	$(GO) test -run XXX -fuzz '^FuzzTokenize$$' -fuzztime 30s ./internal/textproc/

# total-coverage regression gate: fail if statement coverage drops below
# the recorded pre-PR baseline
cover-check:
	$(GO) test -coverprofile=/tmp/datasculpt-cover.out ./... > /dev/null
	@total=$$($(GO) tool cover -func=/tmp/datasculpt-cover.out | tail -1 | awk '{sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor: $(COVERAGE_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVERAGE_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "FAIL: coverage $$total% is below the floor $(COVERAGE_FLOOR)%"; exit 1; }

# Prometheus text-format conformance: boot an in-process server with a
# registry exercising every exporter shape (vectors, escapes, overflow
# fold, histogram ladders), scrape its /metrics over HTTP, and fail on
# any violation a real scraper would reject. `metricslint -addr host`
# lints a live daemon the same way.
metrics-lint:
	$(GO) run ./cmd/metricslint

# full benchmark suite at reduced scale (one pass per table/figure)
bench:
	$(GO) test -bench . -benchtime=1x -run XXX -v .

# serial vs parallel wall-clock on the identical experiment grid
bench-grid:
	$(GO) test -bench=Grid -benchtime=1x -run XXX .

# Grid benchmarks with allocation stats, captured in the standard Go
# benchmark text format benchstat consumes (`benchstat BENCH_grid.json`).
# The pipeline engine benchmarks (full-run wall time + allocs for the
# uncertain/seu samplers on full-scale Agnews, sequential vs parallel)
# land in BENCH_pipeline.json; its committed copy also carries the
# pre-PR baseline lines (suffix PrePR) so benchstat can diff eras.
bench-json:
	$(GO) test -bench=Grid -benchtime=1x -benchmem -run XXX . | tee BENCH_grid.json
	$(GO) test -bench=Engine -benchtime=1x -benchmem -run XXX . | tee BENCH_pipeline.json

# one short benchmark iteration as a smoke test: proves the harness and
# the evaluation engine run end to end (wired into ci)
bench-smoke:
	$(GO) test -bench=EvalSmoke -benchtime=1x -run XXX .

# the SEU counterpart at the same smoke scale: exercises the memoized
# keyword-utility scoring engine end to end (wired into ci)
bench-seu-smoke:
	$(GO) test -bench=SEUSmoke -benchtime=1x -run XXX .

# serving load benchmark: train a small bundle, drive mixed multi-tenant
# single/batch traffic through an in-process loopback daemon (registry,
# gateway, coalescer, real HTTP), write BENCH_serve.json, and prove the
# report renders. The committed BENCH_serve.json comes from the full run.
bench-serve:
	$(GO) run ./cmd/datasculpt -dataset youtube -iterations 15 -scale 0.4 -save-bundle /tmp/datasculpt-serve-bench.json > /dev/null
	$(GO) run ./cmd/loadgen -bundle /tmp/datasculpt-serve-bench.json -out BENCH_serve.json
	$(GO) run ./cmd/loadgen -render BENCH_serve.json

# the same harness at smoke scale (2s, 2 tenants, 4 workers), wired into
# ci: proves loadgen, the daemon stack, the sampled trace pipeline
# (head sampling + error/slow latches, gateway-issued request IDs in the
# span attrs), and the report renderer end to end without committing the
# throwaway numbers, and checks the committed BENCH_serve.json renders
bench-serve-smoke:
	$(GO) run ./cmd/datasculpt -dataset youtube -iterations 10 -scale 0.3 -save-bundle /tmp/datasculpt-serve-smoke.json > /dev/null
	$(GO) run ./cmd/loadgen -bundle /tmp/datasculpt-serve-smoke.json -smoke \
		-trace-out /tmp/datasculpt-serve-smoke-trace.jsonl -trace-sample 0.02 \
		-out /tmp/datasculpt-serve-smoke-report.json
	$(GO) run ./cmd/loadgen -render /tmp/datasculpt-serve-smoke-report.json
	$(GO) run ./cmd/loadgen -render BENCH_serve.json

# out-of-core scale benchmarks: 100x Youtube (158,600 train documents)
# through exact vs LSH KATE retrieval (per-query latency + recall@10),
# materialized vs streamed JSONL ingestion (peak heap), and the resident
# vs spilling vote matrix. The committed BENCH_scale.json comes from this
# run; the render step also enforces the >=5x / recall>=0.9 floors.
bench-scale:
	$(GO) test -bench=Scale -benchtime=1x -benchmem -run XXX . | tee BENCH_scale.json
	$(GO) run ./cmd/benchtab -render-scale BENCH_scale.json

# the scale smoke gate (wired into ci): asserts the ANN retrieval and
# vote-spill paths actually execute, that a spill-enabled pipeline run
# stays bit-identical to the resident run, and that the committed
# BENCH_scale.json still renders and passes its floors
bench-scale-smoke:
	$(GO) test -run TestScaleSmoke -count=1 .
	$(GO) run ./cmd/benchtab -render-scale BENCH_scale.json

clean:
	$(GO) clean ./...
