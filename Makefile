# DataSculpt-Go build/test entry points. `make ci` is the gate every
# change must pass; `make bench-grid` compares the serial and parallel
# experiment engines on the same grid.

GO ?= go

.PHONY: ci vet build test race chaos bench bench-grid bench-json clean

ci: vet build test race chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fault-injection grid under the race detector: a checkpointed chaos
# sweep is interrupted, resumed, and must render byte-identically
chaos:
	$(GO) test -race -run 'Chaos|LoadCheckpoint' -count=1 ./internal/experiment/

# full benchmark suite at reduced scale (one pass per table/figure)
bench:
	$(GO) test -bench . -benchtime=1x -run XXX -v .

# serial vs parallel wall-clock on the identical experiment grid
bench-grid:
	$(GO) test -bench=Grid -benchtime=1x -run XXX .

# Grid benchmarks with allocation stats, captured in the standard Go
# benchmark text format benchstat consumes (`benchstat BENCH_grid.json`)
bench-json:
	$(GO) test -bench=Grid -benchtime=1x -benchmem -run XXX . | tee BENCH_grid.json

clean:
	$(GO) clean ./...
