# DataSculpt-Go build/test entry points. `make ci` is the gate every
# change must pass; `make bench-grid` compares the serial and parallel
# experiment engines on the same grid.

GO ?= go

.PHONY: ci vet build test race chaos stress bench bench-grid bench-json bench-smoke clean

ci: vet build test race chaos stress bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# fault-injection grid under the race detector: a checkpointed chaos
# sweep is interrupted, resumed, and must render byte-identically
chaos:
	$(GO) test -race -run 'Chaos|LoadCheckpoint' -count=1 ./internal/experiment/

# evaluation-engine determinism under the race detector: incremental
# vote-matrix appends, parallel EM, and a Parallelism: N vs 1 pipeline
# run must all be race-free and bit-identical
stress:
	$(GO) test -race -count=1 \
		-run 'Parallel|Incremental|ComputeStats|WarmStart|InterimCache|VoteMatrix|Chunks|For|Normalize' \
		./internal/par/ ./internal/lf/ ./internal/labelmodel/ ./internal/textproc/ ./internal/core/

# full benchmark suite at reduced scale (one pass per table/figure)
bench:
	$(GO) test -bench . -benchtime=1x -run XXX -v .

# serial vs parallel wall-clock on the identical experiment grid
bench-grid:
	$(GO) test -bench=Grid -benchtime=1x -run XXX .

# Grid benchmarks with allocation stats, captured in the standard Go
# benchmark text format benchstat consumes (`benchstat BENCH_grid.json`).
# The pipeline engine benchmarks (full-run wall time + allocs for the
# uncertain/seu samplers on full-scale Agnews, sequential vs parallel)
# land in BENCH_pipeline.json; its committed copy also carries the
# pre-PR baseline lines (suffix PrePR) so benchstat can diff eras.
bench-json:
	$(GO) test -bench=Grid -benchtime=1x -benchmem -run XXX . | tee BENCH_grid.json
	$(GO) test -bench=Engine -benchtime=1x -benchmem -run XXX . | tee BENCH_pipeline.json

# one short benchmark iteration as a smoke test: proves the harness and
# the evaluation engine run end to end (wired into ci)
bench-smoke:
	$(GO) test -bench=EvalSmoke -benchtime=1x -run XXX .

clean:
	$(GO) clean ./...
