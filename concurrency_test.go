package datasculpt

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// stressConfig is a small but non-trivial pipeline configuration shared
// by every goroutine of the stress test.
func stressConfig() Config {
	cfg := DefaultConfig(VariantBase)
	cfg.Iterations = 20
	cfg.FeatureDim = 2048
	cfg.Seed = 5
	return cfg
}

// stressDataset loads an independent copy of the stress corpus. Each
// goroutine needs its own: Example token fields are populated lazily, so
// a Dataset must not be shared across concurrent runs.
func stressDataset(t testing.TB) *Dataset {
	t.Helper()
	d, err := LoadDataset("youtube", 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// comparable strips a Result to the fields the stress test asserts on
// (the LF pointers differ per run even when the LFs are identical).
type comparableResult struct {
	NumLFs           int
	LFAccuracy       float64
	LFCoverage       float64
	TotalCoverage    float64
	EndMetric        float64
	Calls            int
	PromptTokens     int
	CompletionTokens int
	CostUSD          float64
	LFs              string
}

func comparableOf(t testing.TB, r *Result) comparableResult {
	t.Helper()
	data, err := MarshalLFs(r.LFs)
	if err != nil {
		t.Fatal(err)
	}
	return comparableResult{
		NumLFs: r.NumLFs, LFAccuracy: r.LFAccuracy, LFCoverage: r.LFCoverage,
		TotalCoverage: r.TotalCoverage, EndMetric: r.EndMetric,
		Calls: r.Calls, PromptTokens: r.PromptTokens,
		CompletionTokens: r.CompletionTokens, CostUSD: r.CostUSD,
		LFs: string(data),
	}
}

// TestConcurrentRunsSharedModel is the ISSUE's -race stress test: many
// concurrent Runs share one cached + metered model and must produce
// byte-identical results with exact usage accounting.
//
// The cache is primed by a serial baseline run first; after priming,
// every concurrent run issues the identical request sequence and is
// served entirely from cache, so the shared Simulated's stream state
// cannot leak call-order nondeterminism into the results.
func TestConcurrentRunsSharedModel(t *testing.T) {
	const goroutines = 8

	sim, err := NewSimulatedLLM("gpt-3.5", stressDataset(t), stressConfig().Seed+101)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(sim)
	shared := NewMetered(cache)

	runOnce := func(d *Dataset) (*Result, error) {
		cfg := stressConfig()
		cfg.ChatModel = shared
		return Run(d, cfg)
	}

	// serial baseline primes the cache and fixes the expected result
	baseline, err := runOnce(stressDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	want := comparableOf(t, baseline)
	if want.Calls == 0 || want.PromptTokens == 0 {
		t.Fatalf("baseline issued no LLM calls: %+v", want)
	}
	if hits, misses := cache.Hits(), cache.Misses(); hits != 0 || misses != want.Calls {
		t.Fatalf("priming run: hits=%d misses=%d, want 0/%d", hits, misses, want.Calls)
	}

	var wg sync.WaitGroup
	results := make([]*Result, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// each goroutine loads its own dataset copy; only the model
			// stack is shared
			d, err := LoadDataset("youtube", 11, 0.2)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = runOnce(d)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	for i, r := range results {
		if got := comparableOf(t, r); !reflect.DeepEqual(got, want) {
			t.Errorf("goroutine %d result diverged from serial baseline:\ngot  %+v\nwant %+v", i, got, want)
		}
	}

	// shared-meter accounting: 1 priming + 8 concurrent runs, all
	// identical, so totals are exactly 9x the single-run usage
	snap := shared.Meter().Snapshot()
	total := goroutines + 1
	if snap.Calls != total*want.Calls {
		t.Errorf("meter calls = %d, want %d", snap.Calls, total*want.Calls)
	}
	if snap.PromptTokens != total*want.PromptTokens {
		t.Errorf("meter prompt tokens = %d, want %d", snap.PromptTokens, total*want.PromptTokens)
	}
	if snap.CompletionTokens != total*want.CompletionTokens {
		t.Errorf("meter completion tokens = %d, want %d", snap.CompletionTokens, total*want.CompletionTokens)
	}

	// cache accounting: the concurrent runs replay the primed requests
	if hits := cache.Hits(); hits != goroutines*want.Calls {
		t.Errorf("cache hits = %d, want %d", hits, goroutines*want.Calls)
	}
	if misses := cache.Misses(); misses != want.Calls {
		t.Errorf("cache misses = %d, want %d (priming only)", misses, want.Calls)
	}
}

// TestConcurrentRunsIndependentModels exercises the other sharing mode:
// goroutines with fully independent model stacks racing only on package
// state. Results must match a serial reference run exactly.
func TestConcurrentRunsIndependentModels(t *testing.T) {
	const goroutines = 8

	reference, err := Run(stressDataset(t), stressConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := comparableOf(t, reference)

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := LoadDataset("youtube", 11, 0.2)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			r, err := Run(d, stressConfig())
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			if got := comparableOf(t, r); !reflect.DeepEqual(got, want) {
				t.Errorf("goroutine %d diverged:\ngot  %+v\nwant %+v", i, got, want)
			}
		}(i)
	}
	wg.Wait()
}

// TestRateLimitedSharedStack verifies the full middleware sandwich —
// Metered(Cache(RateLimiter(model))) — stays correct under concurrency:
// the limiter paces only cache misses, so a generous burst makes the
// stack fast while totals still reconcile.
func TestRateLimitedSharedStack(t *testing.T) {
	d := stressDataset(t)
	sim, err := NewSimulatedLLM("gpt-3.5", d, stressConfig().Seed+101)
	if err != nil {
		t.Fatal(err)
	}
	limited := NewRateLimiter(sim, 100000, 1000)
	cache := NewCache(limited)
	shared := NewMetered(cache)

	cfg := stressConfig()
	cfg.ChatModel = shared
	first, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(stressDataset(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(comparableOf(t, first)) != fmt.Sprint(comparableOf(t, second)) {
		t.Error("cached replay diverged from original run")
	}
	if cache.Hits() != first.Calls || cache.Misses() != first.Calls {
		t.Errorf("cache hits/misses = %d/%d, want %d/%d",
			cache.Hits(), cache.Misses(), first.Calls, first.Calls)
	}
	if got := shared.Meter().Calls(); got != 2*first.Calls {
		t.Errorf("meter calls = %d, want %d", got, 2*first.Calls)
	}
}
