// Out-of-core scale benchmarks: the 100x-scale corpus (Youtube grown to
// 158,600 train / 12,000 validation documents) driven through the three
// memory-bounded subsystems this repo grew for million-document corpora:
//
//   - KATE retrieval: exact cosine scan vs the LSH shortlist with exact
//     re-ranking (ns/query plus recall@10 of the ANN path against the
//     exact top-10);
//   - corpus ingestion: materialize-then-featurize vs the two-pass
//     chunked StreamFeatures over a JSONL split (peak heap MB);
//   - the vote matrix: fully resident dense columns vs the
//     capacity-capped spill mode backed by an unlinked temp file
//     (peak heap MB plus spill counts).
//
// `make bench-scale` records all of it in BENCH_scale.json (standard Go
// benchmark text, rendered by `benchtab -render-scale`); `make
// bench-scale-smoke` runs TestScaleSmoke, which asserts the ANN and
// spill paths actually execute and that spill mode stays bit-identical
// end to end, on every ci run.
package datasculpt_test

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"testing"
	"time"

	"datasculpt"
	"datasculpt/internal/ann"
	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
	"datasculpt/internal/obs"
	"datasculpt/internal/prompt"
	"datasculpt/internal/textproc"
)

// scaleFactor grows every Youtube split 100x: large enough that the
// exact KATE scan, full materialization, and the dense vote matrix all
// hurt, small enough to benchmark in minutes.
const scaleFactor = 100

const scaleShots = 10

var (
	scaleOnce sync.Once
	scaleDS   *datasculpt.Dataset
	scaleFeat *textproc.Featurizer
	scaleErr  error
)

// scaleCorpus generates the 100x corpus and fits the shared featurizer
// once; generation and fitting are excluded from every timing below.
func scaleCorpus(b *testing.B) (*datasculpt.Dataset, *textproc.Featurizer) {
	b.Helper()
	scaleOnce.Do(func() {
		scaleDS, scaleErr = datasculpt.LoadDataset("youtube", 7013, scaleFactor)
		if scaleErr != nil {
			return
		}
		scaleFeat = textproc.NewFeaturizer(8192)
		scaleErr = scaleFeat.Fit(dataset.FeatureCorpus(scaleDS.Train))
	})
	if scaleErr != nil {
		b.Fatal(scaleErr)
	}
	return scaleDS, scaleFeat
}

// scaleQueries picks a deterministic spread of train documents as KATE
// queries.
func scaleQueries(d *datasculpt.Dataset, n int) []*dataset.Example {
	out := make([]*dataset.Example, 0, n)
	stride := len(d.Train) / n
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < len(d.Train) && len(out) < n; i += stride {
		out = append(out, d.Train[i])
	}
	return out
}

const scaleQueryCount = 200

// kateQueryBench drives scaleQueryCount Selects per iteration through a
// KATE built with the given threshold (-1 forces the exact scan, 1
// forces the LSH path) and reports per-query latency.
func kateQueryBench(b *testing.B, threshold int) {
	d, feat := scaleCorpus(b)
	sel, err := prompt.NewKATEWithOptions(d, feat, prompt.KATEOptions{
		ANNThreshold: threshold,
		Seed:         42,
	})
	if err != nil {
		b.Fatal(err)
	}
	wantANN := threshold > 0
	if sel.ANNEnabled() != wantANN {
		b.Fatalf("ANNEnabled() = %v, want %v", sel.ANNEnabled(), wantANN)
	}
	queries := scaleQueries(d, scaleQueryCount)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			sel.Select(q, scaleShots)
		}
	}
	b.StopTimer()
	perQuery := float64(b.Elapsed().Nanoseconds()) / float64(b.N*len(queries))
	b.ReportMetric(perQuery, "ns/query")
	if wantANN {
		b.ReportMetric(scaleRecallAt10(b, d, feat, queries), "recall@10")
	}
}

func BenchmarkScaleKATEExact(b *testing.B) { kateQueryBench(b, -1) }

func BenchmarkScaleKATEANN(b *testing.B) { kateQueryBench(b, 1) }

// scaleRecallAt10 measures how much of the exact top-10 the LSH
// shortlist retains, using an ann.Index configured identically to the
// one inside BenchmarkScaleKATEANN's selector (same seed, so the
// deterministic projections are the same bits).
func scaleRecallAt10(b *testing.B, d *datasculpt.Dataset, feat *textproc.Featurizer, queries []*dataset.Example) float64 {
	b.Helper()
	vecs := make([]*textproc.SparseVector, len(d.Valid))
	norms := make([]float64, len(d.Valid))
	for i, e := range d.Valid {
		vecs[i] = feat.Transform(e.FeatureTokens())
		norms[i] = vecs[i].Norm()
	}
	idx := ann.New(ann.Config{Dim: feat.Dim, Seed: 42})
	idx.Add(vecs)

	topK := func(qv *textproc.SparseVector, qn float64, cands []int32) []int32 {
		type scored struct {
			id  int32
			sim float64
		}
		sc := make([]scored, 0, len(cands))
		for _, id := range cands {
			var sim float64
			if vn := norms[id]; qn != 0 && vn != 0 {
				sim = qv.Dot(vecs[id]) / (qn * vn)
			}
			sc = append(sc, scored{id, sim})
		}
		sort.Slice(sc, func(i, j int) bool {
			if sc[i].sim != sc[j].sim {
				return sc[i].sim > sc[j].sim
			}
			return sc[i].id < sc[j].id
		})
		n := scaleShots
		if n > len(sc) {
			n = len(sc)
		}
		out := make([]int32, n)
		for i := 0; i < n; i++ {
			out[i] = sc[i].id
		}
		return out
	}
	all := make([]int32, len(vecs))
	for i := range all {
		all[i] = int32(i)
	}
	var hit, want int
	for _, q := range queries {
		qv := feat.Transform(q.FeatureTokens())
		qn := qv.Norm()
		exact := topK(qv, qn, all)
		approx := topK(qv, qn, idx.Candidates(qv, prompt.DefaultANNMultiplier*scaleShots))
		in := make(map[int32]bool, len(approx))
		for _, id := range approx {
			in[id] = true
		}
		for _, id := range exact {
			want++
			if in[id] {
				hit++
			}
		}
	}
	return float64(hit) / float64(want)
}

// peakHeapMB runs f and returns the peak live heap (MB above the
// post-GC baseline) observed by a background sampler while it ran — a
// coarse but honest proxy for the RSS the operation adds. The GC is
// tightened while f runs so HeapAlloc tracks live memory instead of
// floating garbage (the retained 100x corpus would otherwise push the
// GC target high enough to drown the signal).
func peakHeapMB(f func()) float64 {
	defer debug.SetGCPercent(debug.SetGCPercent(10))
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	base := ms.HeapAlloc
	peak := base
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				var s runtime.MemStats
				runtime.ReadMemStats(&s)
				if s.HeapAlloc > peak {
					peak = s.HeapAlloc
				}
			}
		}
	}()
	f()
	close(stop)
	<-done
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	if end.HeapAlloc > peak {
		peak = end.HeapAlloc
	}
	if peak < base {
		return 0
	}
	return float64(peak-base) / (1 << 20)
}

// scaleTrainJSONL writes the 100x train split as a JSONL file once per
// process and returns its path.
func scaleTrainJSONL(b *testing.B) string {
	b.Helper()
	d, _ := scaleCorpus(b)
	path := filepath.Join(os.TempDir(), "datasculpt-bench-scale-train.jsonl")
	if _, err := os.Stat(path); err == nil {
		return path
	}
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	werr := dataset.WriteSplitJSONL(f, d.Train)
	cerr := f.Close()
	if werr != nil {
		b.Fatal(werr)
	}
	if cerr != nil {
		b.Fatal(cerr)
	}
	return path
}

// BenchmarkScaleIngestMaterialized is the legacy ingestion shape: drain
// the whole split into memory, fit, then hold every feature vector at
// once. Peak heap grows linearly with the corpus.
func BenchmarkScaleIngestMaterialized(b *testing.B) {
	d, _ := scaleCorpus(b)
	path := scaleTrainJSONL(b)
	b.ResetTimer()
	var peak float64
	for i := 0; i < b.N; i++ {
		peak = peakHeapMB(func() {
			r, err := dataset.OpenJSONL(path, d.Task)
			if err != nil {
				b.Fatal(err)
			}
			var exs []*dataset.Example
			if err := dataset.ReadChunks(r, 1024, func(chunk []*dataset.Example) error {
				exs = append(exs, chunk...)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			r.Close()
			feat := textproc.NewFeaturizer(8192)
			if err := feat.Fit(dataset.FeatureCorpus(exs)); err != nil {
				b.Fatal(err)
			}
			vecs := feat.TransformAll(dataset.FeatureCorpus(exs))
			if len(vecs) != len(d.Train) {
				b.Fatalf("featurized %d docs, want %d", len(vecs), len(d.Train))
			}
		})
	}
	b.ReportMetric(peak, "peak-MB")
}

// BenchmarkScaleIngestStreamed featurizes the same split via the
// two-pass chunked StreamFeatures: peak memory is one chunk of examples
// plus its vectors, regardless of corpus size.
func BenchmarkScaleIngestStreamed(b *testing.B) {
	d, _ := scaleCorpus(b)
	path := scaleTrainJSONL(b)
	b.ResetTimer()
	var peak float64
	for i := 0; i < b.N; i++ {
		peak = peakHeapMB(func() {
			feat := textproc.NewFeaturizer(8192)
			total := 0
			err := dataset.StreamFeatures(
				func() (dataset.Reader, error) { return dataset.OpenJSONL(path, d.Task) },
				feat, 1024,
				func(start int, vecs []*textproc.SparseVector) error {
					total += len(vecs)
					return nil
				})
			if err != nil {
				b.Fatal(err)
			}
			if total != len(d.Train) {
				b.Fatalf("streamed %d docs, want %d", total, len(d.Train))
			}
		})
	}
	b.ReportMetric(peak, "peak-MB")
}

// scaleKeywordLFs derives m keyword LFs from the split's most frequent
// tokens, so the benchmark vote matrix has realistic per-column
// coverage.
func scaleKeywordLFs(tb testing.TB, split []*dataset.Example, m, numClasses int) []lf.LabelFunction {
	tb.Helper()
	sample := split
	if len(sample) > 20000 {
		sample = sample[:20000]
	}
	df := make(map[string]int)
	for _, e := range sample {
		e.EnsureTokens()
		seen := make(map[string]bool, len(e.Tokens))
		for _, tok := range e.Tokens {
			if !seen[tok] {
				seen[tok] = true
				df[tok]++
			}
		}
	}
	toks := make([]string, 0, len(df))
	for tok := range df {
		toks = append(toks, tok)
	}
	sort.Slice(toks, func(i, j int) bool {
		if df[toks[i]] != df[toks[j]] {
			return df[toks[i]] > df[toks[j]]
		}
		return toks[i] < toks[j]
	})
	lfs := make([]lf.LabelFunction, 0, m)
	for _, tok := range toks {
		l, err := lf.NewKeywordLF(tok, len(lfs)%numClasses)
		if err != nil {
			continue
		}
		lfs = append(lfs, l)
		if len(lfs) == m {
			break
		}
	}
	if len(lfs) < m {
		tb.Fatalf("only %d keyword LFs derivable, want %d", len(lfs), m)
	}
	return lfs
}

const scaleLFCount = 120

// voteMatrixBench builds a 158,600 x 120 vote matrix and runs the full
// evaluation surface over it (stats, majority vote, coverage). budget 0
// is the fully resident dense-column matrix; a positive budget caps the
// resident sparse bytes and spills cold columns to the temp file.
func voteMatrixBench(b *testing.B, budget int64) {
	d, _ := scaleCorpus(b)
	ix := lf.NewIndex(d.Train)
	lfs := scaleKeywordLFs(b, d.Train, scaleLFCount, d.NumClasses())
	gold := dataset.Labels(d.Train)
	b.ResetTimer()
	var peak float64
	var spills int
	for i := 0; i < b.N; i++ {
		peak = peakHeapMB(func() {
			vm := lf.NewVoteMatrix(ix.Size())
			if budget > 0 {
				if err := vm.EnableSpill(budget, "", nil); err != nil {
					b.Fatal(err)
				}
			}
			vm.AppendLFs(ix, lfs, 0)
			vm.ComputeStats(gold, 0)
			vm.MajorityVotes(d.NumClasses())
			if budget > 0 {
				spills = vm.SpillStats().Spills
				if spills == 0 {
					b.Fatal("spill budget never exceeded; shrink the budget")
				}
			}
			vm.Close()
		})
	}
	b.ReportMetric(peak, "peak-MB")
	if budget > 0 {
		b.ReportMetric(float64(spills), "spills")
	}
}

func BenchmarkScaleVoteMatrixResident(b *testing.B) { voteMatrixBench(b, 0) }

func BenchmarkScaleVoteMatrixSpill(b *testing.B) { voteMatrixBench(b, 1<<20) }

// TestScaleSmoke is the `make bench-scale-smoke` ci gate: it proves the
// ANN retrieval path and the vote-matrix spill path both actually
// execute (counters move, evictions happen) and that a spill-enabled
// end-to-end pipeline run is bit-identical to the fully resident run.
func TestScaleSmoke(t *testing.T) {
	d, err := datasculpt.LoadDataset("youtube", 11, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	feat := textproc.NewFeaturizer(8192)
	if err := feat.Fit(dataset.FeatureCorpus(d.Train)); err != nil {
		t.Fatal(err)
	}

	// ANN path: threshold 1 forces the index; multiplier 2 keeps the
	// shortlist smaller than the 60-doc pool so Select really goes
	// through it.
	reg := obs.NewRegistry()
	sel, err := prompt.NewKATEWithOptions(d, feat, prompt.KATEOptions{
		ANNThreshold:        1,
		CandidateMultiplier: 2,
		Seed:                42,
		Metrics:             reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sel.ANNEnabled() {
		t.Fatal("ANN index not built at threshold 1")
	}
	for _, q := range d.Train[:20] {
		if got := sel.Select(q, scaleShots); len(got) != scaleShots {
			t.Fatalf("Select returned %d demos, want %d", len(got), scaleShots)
		}
	}
	if n := reg.CounterValue("kate_ann_queries_total"); n == 0 {
		t.Fatal("no Select went through the ANN shortlist")
	}

	// Spill path: a 4KB budget over ~20 real-coverage columns forces
	// evictions; every read must still match the resident oracle.
	ix := lf.NewIndex(d.Train)
	lfs := scaleKeywordLFs(t, d.Train, 20, d.NumClasses())
	vm := lf.NewVoteMatrix(ix.Size())
	if err := vm.EnableSpill(4<<10, "", reg); err != nil {
		t.Fatal(err)
	}
	vm.AppendLFs(ix, lfs, 0)
	oracle := lf.BuildVoteMatrixParallel(ix, lfs, 0)
	for i := 0; i < vm.NumExamples(); i += 7 {
		for j := 0; j < vm.NumLFs(); j++ {
			if got, want := vm.Vote(i, j), oracle.Vote(i, j); got != want {
				t.Fatalf("spilled Vote(%d,%d) = %d, want %d", i, j, got, want)
			}
		}
	}
	gotMaj, wantMaj := vm.MajorityVotes(d.NumClasses()), oracle.MajorityVotes(d.NumClasses())
	for i := range wantMaj {
		if gotMaj[i] != wantMaj[i] {
			t.Fatalf("spilled MajorityVotes[%d] = %d, want %d", i, gotMaj[i], wantMaj[i])
		}
	}
	if st := vm.SpillStats(); st.Spills == 0 {
		t.Fatalf("spill budget never exceeded: %+v", st)
	}
	vm.Close()

	// End to end: the spill-enabled pipeline run must reproduce the
	// resident run bit for bit (spilling changes storage, not votes).
	run := func(spillMB int) *datasculpt.Result {
		cfg := datasculpt.DefaultConfig(datasculpt.VariantKATE)
		cfg.Iterations = 5
		cfg.Seed = 11
		cfg.VoteSpillMB = spillMB
		res, err := datasculpt.Run(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	resident, spilled := run(0), run(1)
	if resident.NumLFs != spilled.NumLFs ||
		resident.LFCoverage != spilled.LFCoverage ||
		resident.EndMetric != spilled.EndMetric {
		t.Fatalf("spill-enabled run diverged: resident #LF=%d cov=%v end=%v, spilled #LF=%d cov=%v end=%v",
			resident.NumLFs, resident.LFCoverage, resident.EndMetric,
			spilled.NumLFs, spilled.LFCoverage, spilled.EndMetric)
	}
}
