// Relation extraction on the Spouse dataset: entity-aware keyword LFs,
// the default-class mechanism for "absence" classes (paper §3.6), and an
// unlabeled training split.
//
//	go run ./examples/relation_extraction
package main

import (
	"fmt"
	"log"

	"datasculpt"
)

func main() {
	d, err := datasculpt.LoadDataset("spouse", 7, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Spouse relation extraction: %d unlabeled train passages, default class %q\n\n",
		len(d.Train), d.ClassNames[d.DefaultClass])

	// Entity-aware LFs attach a keyword to the target pair: "[A] married
	// [B]". The same phrase on a distractor pair elsewhere in the passage
	// must not activate the LF.
	married, err := datasculpt.NewEntityKeywordLF("married", 1)
	if err != nil {
		log.Fatal(err)
	}
	var target, distractor *datasculpt.Example
	for _, e := range d.Valid {
		vote := married.Apply(e)
		if vote == 1 && target == nil {
			target = e
		}
		if vote != 1 && distractor == nil && containsToken(e, "married") {
			distractor = e
		}
		if target != nil && distractor != nil {
			break
		}
	}
	if target != nil {
		fmt.Printf("activates — keyword between the target pair (%s / %s):\n  %.90s...\n\n",
			target.Entity1, target.Entity2, target.Text)
	}
	if distractor != nil {
		fmt.Printf("abstains — same keyword belongs to a distractor pair, not (%s / %s):\n  %.90s...\n\n",
			distractor.Entity1, distractor.Entity2, distractor.Text)
	}

	// Full pipeline. LLMs rarely propose keywords for the "no relation"
	// class, so uncovered passages fall back to the default class before
	// end-model training.
	cfg := datasculpt.DefaultConfig(datasculpt.VariantSC)
	cfg.Seed = 7
	res, err := datasculpt.Run(d, cfg)
	if err != nil {
		log.Fatal(err)
	}
	pos, neg := 0, 0
	for _, f := range res.LFs {
		if f.TargetClass() == 1 {
			pos++
		} else {
			neg++
		}
	}
	fmt.Printf("pipeline: %d LFs (%d spouse-class, %d no-relation-class)\n", res.NumLFs, pos, neg)
	fmt.Printf("coverage %.3f — the remaining %.0f%% of passages take the default class\n",
		res.TotalCoverage, 100*(1-res.TotalCoverage))
	fmt.Printf("LF accuracy: %s (train labels unavailable, as in WRENCH)\n", res.LFAccuracyString())
	fmt.Printf("end model F1: %.3f\n", res.EndMetric)
}

func containsToken(e *datasculpt.Example, tok string) bool {
	e.EnsureTokens()
	for _, t := range e.Tokens {
		if t == tok {
			return true
		}
	}
	return false
}
