// Quickstart: generate label functions for the Youtube comment-spam
// dataset with the default DataSculpt configuration and train the
// downstream classifier.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"datasculpt"
)

func main() {
	// Load the Youtube dataset at half scale for a fast demo (scale 1.0
	// reproduces the paper's split sizes from Table 1).
	d, err := datasculpt.LoadDataset("youtube", 1, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d train / %d valid / %d test, classes %v\n",
		d.Name, len(d.Train), len(d.Valid), len(d.Test), d.ClassNames)

	// The default configuration matches the paper: GPT-3.5, 50 query
	// iterations, 10 in-context examples, random sampling, all filters.
	cfg := datasculpt.DefaultConfig(datasculpt.VariantBase)
	cfg.Seed = 1

	res, err := datasculpt.Run(d, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ngenerated %d label functions\n", res.NumLFs)
	fmt.Printf("mean LF accuracy on train: %s\n", res.LFAccuracyString())
	fmt.Printf("mean LF coverage:          %.4f\n", res.LFCoverage)
	fmt.Printf("total coverage:            %.3f\n", res.TotalCoverage)
	fmt.Printf("end model %s:        %.3f\n", res.MetricName, res.EndMetric)
	fmt.Printf("LLM usage: %d calls, %d tokens, $%.4f\n",
		res.Calls, res.TotalTokens(), res.CostUSD)

	fmt.Println("\nfirst ten label functions:")
	for i, f := range res.LFs {
		if i == 10 {
			break
		}
		fmt.Printf("  %s\n", f.Name())
	}
}
