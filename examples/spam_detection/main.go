// Spam detection on the imbalanced SMS dataset: demonstrates why the LF
// accuracy filter matters (the Table 5 finding) and how DataSculpt
// compares to hand-written expert LFs on an F1-reported task.
//
//	go run ./examples/spam_detection
package main

import (
	"fmt"
	"log"

	"datasculpt"
)

func main() {
	d, err := datasculpt.LoadDataset("sms", 3, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SMS spam: %d train messages, %.1f%% spam, metric: %s\n",
		len(d.Train), 100*spamFraction(d), d.MetricName())

	// 1. DataSculpt with all filters (the paper's default).
	cfg := datasculpt.DefaultConfig(datasculpt.VariantSC)
	cfg.Seed = 3
	withFilters, err := datasculpt.Run(d, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Same run without the accuracy filter — Table 5 shows this grows
	// the LF set but costs ~9 points of LF accuracy and ~8 points of end
	// model accuracy.
	cfg2 := cfg
	cfg2.Filters = datasculpt.FilterConfig{UseAccuracy: false, UseRedundancy: true}
	noAccuracy, err := datasculpt.Run(d, cfg2)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The WRENCH benchmark's 73 hand-written keyword LFs.
	expert, err := datasculpt.WrenchLFs(d)
	if err != nil {
		log.Fatal(err)
	}
	expertRes, err := datasculpt.EvaluateLFSet(d, expert, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %6s %8s %8s %8s\n", "configuration", "#LFs", "LF acc", "tot cov", "F1")
	row := func(name string, r *datasculpt.Result) {
		fmt.Printf("%-28s %6d %8s %8.3f %8.3f\n",
			name, r.NumLFs, r.LFAccuracyString(), r.TotalCoverage, r.EndMetric)
	}
	row("DataSculpt-SC (all filters)", withFilters)
	row("DataSculpt-SC (no acc filter)", noAccuracy)
	row("WRENCH expert LFs", expertRes)

	fmt.Printf("\nfilter effect: removing the accuracy filter changed the LF set %+d and F1 %+.3f\n",
		noAccuracy.NumLFs-withFilters.NumLFs, noAccuracy.EndMetric-withFilters.EndMetric)
	fmt.Printf("DataSculpt cost: %d tokens ($%.4f) for %d LLM calls; the expert set cost 73 human-written rules\n",
		withFilters.TotalTokens(), withFilters.CostUSD, withFilters.Calls)
}

func spamFraction(d *datasculpt.Dataset) float64 {
	spam := 0
	for _, e := range d.Test {
		if e.Label == 1 {
			spam++
		}
	}
	return float64(spam) / float64(len(d.Test))
}
