// Custom datasets and artifacts: export a corpus to the WRENCH-style
// JSON layout, load it back, evaluate a hand-written LF set on it, and
// persist the LF set — the workflow for applying the library to your own
// data.
//
//	go run ./examples/custom_dataset
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"datasculpt"
)

func main() {
	// 1. Materialize a corpus to disk. For your own data, write the same
	// layout (meta.json + train/valid/test.json) from any source.
	dir := filepath.Join(os.TempDir(), "datasculpt-custom-demo")
	src, err := datasculpt.LoadDataset("sms", 11, 0.2)
	if err != nil {
		log.Fatal(err)
	}
	if err := datasculpt.SaveDatasetDir(src, dir); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %s to %s\n", src.Name, dir)

	// 2. Load it back the way a downstream user would.
	d, err := datasculpt.LoadDatasetDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d/%d/%d examples, classes %v\n",
		len(d.Train), len(d.Valid), len(d.Test), d.ClassNames)

	// 3. Hand-write a few LFs and evaluate them with the full PWS stack
	// (label model + end model). Loaded datasets carry no simulator
	// knowledge, so this is the "bring your own LFs / bring your own LLM
	// client" path — see datasculpt.NewOpenAIClient for the latter.
	var lfs []datasculpt.LabelFunction
	for _, spec := range []struct {
		phrase string
		class  int
	}{
		{"winner", 1}, {"prize", 1}, {"claim", 1}, {"urgent", 1},
		{"free entry", 1}, {"tonight", 0}, {"see you", 0}, {"lunch", 0},
	} {
		f, err := datasculpt.NewKeywordLF(spec.phrase, spec.class)
		if err != nil {
			log.Fatal(err)
		}
		lfs = append(lfs, f)
	}
	cfg := datasculpt.DefaultConfig(datasculpt.VariantBase)
	cfg.Seed = 11
	res, err := datasculpt.EvaluateLFSet(d, lfs, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hand-written LFs: total coverage %.3f, end-model %s %.3f\n",
		res.TotalCoverage, res.MetricName, res.EndMetric)

	// 4. Inspect the set with the Snorkel-style analysis...
	sums := datasculpt.AnalyzeLFs(d.Train, lfs, nil)
	fmt.Println("\nper-LF coverage on the (unlabeled) train split:")
	for _, s := range sums {
		fmt.Printf("  %-24s cov=%.4f overlap=%.4f conflict=%.4f\n",
			s.Name, s.Coverage, s.Overlap, s.Conflict)
	}

	// 5. ...and persist it: the LF set is the shippable artifact.
	data, err := datasculpt.MarshalLFs(lfs)
	if err != nil {
		log.Fatal(err)
	}
	out := filepath.Join(dir, "lfs.json")
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote the LF set to %s (%d bytes)\n", out, len(data))
}
