// Sentiment analysis on IMDB movie reviews: compares the four DataSculpt
// prompting variants (Base, chain-of-thought, self-consistency, KATE
// retrieval) and their cost/accuracy trade-off — the dimension §4.2 of
// the paper explores.
//
//	go run ./examples/sentiment_analysis
package main

import (
	"fmt"
	"log"

	"datasculpt"
)

func main() {
	// Quarter scale keeps this demo under a minute; scale 1.0 reproduces
	// the paper's 20000-review training split.
	d, err := datasculpt.LoadDataset("imdb", 5, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IMDB sentiment: %d train reviews (~%d tokens each)\n\n",
		len(d.Train), avgLen(d.Train))

	variants := []datasculpt.Variant{
		datasculpt.VariantBase,
		datasculpt.VariantCoT,
		datasculpt.VariantSC,
		datasculpt.VariantKATE,
	}
	fmt.Printf("%-18s %6s %8s %8s %10s %10s\n",
		"variant", "#LFs", "LF acc", "accuracy", "tokens", "cost")
	for _, v := range variants {
		cfg := datasculpt.DefaultConfig(v)
		cfg.Seed = 5
		res, err := datasculpt.Run(d, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %6d %8s %8.3f %10d %10.4f\n",
			"datasculpt-"+string(v), res.NumLFs, res.LFAccuracyString(),
			res.EndMetric, res.TotalTokens(), res.CostUSD)
	}

	fmt.Println("\nself-consistency samples ten responses per query, so its token")
	fmt.Println("usage is ~10x Base — the paper's Figure 3 — while KATE swaps the")
	fmt.Println("fixed in-context examples for retrieved neighbours at similar cost.")
}

func avgLen(split []*datasculpt.Example) int {
	total := 0
	for _, e := range split {
		e.EnsureTokens()
		total += len(e.Tokens)
	}
	return total / len(split)
}
