package datasculpt_test

import (
	"testing"

	"datasculpt"
)

// TestPublicAPIEndToEnd exercises the exported surface the examples use:
// dataset loading, the pipeline, external LF evaluation and the baselines.
func TestPublicAPIEndToEnd(t *testing.T) {
	names := datasculpt.DatasetNames()
	if len(names) != 7 || names[0] != "youtube" || names[6] != "trec" {
		t.Fatalf("DatasetNames = %v", names)
	}

	d, err := datasculpt.LoadDataset("youtube", 9, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	cfg := datasculpt.DefaultConfig(datasculpt.VariantBase)
	cfg.Seed = 9
	cfg.Iterations = 15
	res, err := datasculpt.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLFs == 0 || res.TotalTokens() == 0 {
		t.Errorf("run result = %+v", res)
	}

	// hand-written LF through the public constructors
	spam, err := datasculpt.NewKeywordLF("subscribe", 1)
	if err != nil {
		t.Fatal(err)
	}
	ham, err := datasculpt.NewKeywordLF("melody", 0)
	if err != nil {
		t.Fatal(err)
	}
	manual, err := datasculpt.EvaluateLFSet(d, []datasculpt.LabelFunction{spam, ham}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if manual.NumLFs != 2 {
		t.Errorf("manual set = %+v", manual)
	}

	// baselines
	wr, err := datasculpt.WrenchLFs(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(wr) != 10 {
		t.Errorf("wrench LFs = %d", len(wr))
	}
	_, meter, err := datasculpt.ScriptoriumLFs(d, "gpt-3.5", 9)
	if err != nil {
		t.Fatal(err)
	}
	if meter.TotalTokens() == 0 {
		t.Error("scriptorium meter empty")
	}
	_, meter, err = datasculpt.PromptedLFs(d, "gpt-3.5", 9)
	if err != nil {
		t.Fatal(err)
	}
	if meter.Calls() != 10*len(d.Train) {
		t.Errorf("promptedLF calls = %d", meter.Calls())
	}

	// simulated LLM directly
	llmModel, err := datasculpt.NewSimulatedLLM("gpt-4", d, 9)
	if err != nil {
		t.Fatal(err)
	}
	if llmModel.ModelName() != "gpt-4-0613" {
		t.Errorf("model name = %s", llmModel.ModelName())
	}

	// relation-task LF constructor
	rel, err := datasculpt.NewEntityKeywordLF("married", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Keyword != "married" {
		t.Errorf("entity LF = %+v", rel)
	}
}

// TestPublicExperimentSweep checks the exported experiment entry point.
func TestPublicExperimentSweep(t *testing.T) {
	g, err := datasculpt.MainResults(datasculpt.ExperimentOptions{
		Seeds: 1, Scale: 0.08, Datasets: []string{"youtube"}, Iterations: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Methods) != 7 {
		t.Errorf("methods = %v", g.Methods)
	}
}
