package datasculpt_test

import (
	"fmt"

	"datasculpt"
)

// ExampleRun demonstrates the minimal pipeline flow. (A tiny scale and
// iteration count keep the doc example fast; real runs use the defaults.)
func ExampleRun() {
	d, err := datasculpt.LoadDataset("youtube", 1, 0.05)
	if err != nil {
		panic(err)
	}
	cfg := datasculpt.DefaultConfig(datasculpt.VariantBase)
	cfg.Seed = 1
	cfg.Iterations = 5
	res, err := datasculpt.Run(d, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.NumLFs > 0, res.Calls)
	// Output: true 5
}

// ExampleNewKeywordLF shows manual LF construction and application.
func ExampleNewKeywordLF() {
	f, err := datasculpt.NewKeywordLF("Free Gift", 1)
	if err != nil {
		panic(err)
	}
	e := &datasculpt.Example{Text: "claim your FREE gift now", E1Pos: -1, E2Pos: -1}
	fmt.Println(f.Keyword, f.Apply(e))
	// Output: free gift 1
}

// ExampleMarshalLFs shows LF-set persistence.
func ExampleMarshalLFs() {
	spam, _ := datasculpt.NewKeywordLF("prize", 1)
	data, err := datasculpt.MarshalLFs([]datasculpt.LabelFunction{spam})
	if err != nil {
		panic(err)
	}
	back, err := datasculpt.UnmarshalLFs(data)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(back), back[0].Name())
	// Output: 1 kw:"prize"->1
}
