// Package datasculpt is the public API of DataSculpt-Go, a reproduction
// of "DataSculpt: Cost-Efficient Label Function Design via Prompting
// Large Language Models" (EDBT 2025).
//
// DataSculpt automates programmatic weak supervision: instead of writing
// label functions (LFs) by hand, it iteratively selects query instances
// from an unlabeled corpus, prompts an LLM with few-shot examples to
// propose keyword-based LFs, filters the proposals for validity, accuracy
// and redundancy, aggregates the surviving LF votes with a generative
// label model, and trains a downstream classifier on the resulting
// probabilistic labels.
//
// The minimal flow:
//
//	d, _ := datasculpt.LoadDataset("youtube", 1, 1.0)
//	cfg := datasculpt.DefaultConfig(datasculpt.VariantSC)
//	res, _ := datasculpt.Run(d, cfg)
//	fmt.Println(res)
//
// The offline substrate — simulated LLM endpoints, synthetic corpora
// matching the paper's datasets, a MeTaL-style label model and a
// logistic-regression end model — is documented in DESIGN.md.
package datasculpt

import (
	"context"
	"io"
	"log/slog"
	"time"

	"datasculpt/internal/baselines"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/experiment"
	"datasculpt/internal/lf"
	"datasculpt/internal/llm"
	"datasculpt/internal/obs"
)

// Dataset is a labeled/unlabeled corpus with train/valid/test splits.
type Dataset = dataset.Dataset

// Example is one corpus instance.
type Example = dataset.Example

// Config parameterizes a pipeline run; zero values select the paper's
// defaults.
type Config = core.Config

// Result carries the LF statistics, end-model metric and cost accounting
// of one run.
type Result = core.Result

// Variant names a DataSculpt prompting configuration.
type Variant = core.Variant

// The four prompting variants evaluated in the paper.
const (
	VariantBase = core.VariantBase
	VariantCoT  = core.VariantCoT
	VariantSC   = core.VariantSC
	VariantKATE = core.VariantKATE
)

// LabelFunction is a weak supervision source.
type LabelFunction = lf.LabelFunction

// KeywordLF labels a passage by keyword containment; EntityKeywordLF is
// its relation-task extension requiring the keyword to attach to the
// target entity pair.
type (
	KeywordLF       = lf.KeywordLF
	EntityKeywordLF = lf.EntityKeywordLF
)

// FilterConfig selects which LF filters the pipeline applies.
type FilterConfig = lf.FilterConfig

// ChatModel abstracts an LLM endpoint; Simulated is the deterministic
// offline implementation used throughout this repo. Message and
// Response are the chat request/reply types — exported so external
// packages can call Chat and implement ChatModel without reaching into
// internal/.
type (
	ChatModel = llm.ChatModel
	Simulated = llm.Simulated
	Message   = llm.Message
	Response  = llm.Response
)

// ExperimentOptions parameterizes the multi-seed experiment sweeps that
// regenerate the paper's tables and figures.
type ExperimentOptions = experiment.Options

// DatasetNames lists the six benchmark datasets in the paper's order.
func DatasetNames() []string { return dataset.Names() }

// LoadDataset generates the named synthetic dataset. Scale 1 reproduces
// the paper's Table 1 split sizes; smaller scales shrink every split for
// quick experiments.
func LoadDataset(name string, seed int64, scale float64) (*Dataset, error) {
	return dataset.Load(name, seed, scale)
}

// DefaultConfig returns the paper's default configuration for a variant
// (GPT-3.5, 50 iterations, 10 shots, temperature 0.7, random sampling,
// all filters, MeTaL label model).
func DefaultConfig(v Variant) Config { return core.DefaultConfig(v) }

// Run executes the full DataSculpt pipeline on a dataset. It is
// RunContext with context.Background().
func Run(d *Dataset, cfg Config) (*Result, error) { return core.Run(d, cfg) }

// RunContext executes the full DataSculpt pipeline under a context:
// cancellation (deadline, Ctrl-C, first error of a concurrent sweep)
// aborts the run between prompts and propagates through the LLM client,
// so no budget is spent after the caller gives up.
func RunContext(ctx context.Context, d *Dataset, cfg Config) (*Result, error) {
	return core.RunContext(ctx, d, cfg)
}

// EvaluateLFSet computes LF statistics and trains/evaluates the end model
// for an externally produced LF set (e.g. hand-written LFs).
func EvaluateLFSet(d *Dataset, lfs []LabelFunction, cfg Config) (*Result, error) {
	return core.EvaluateLFSet(d, lfs, cfg)
}

// NewKeywordLF builds a keyword LF after validity checks (1-3 gram).
func NewKeywordLF(phrase string, class int) (*KeywordLF, error) {
	return lf.NewKeywordLF(phrase, class)
}

// NewEntityKeywordLF builds an entity-aware keyword LF for relation tasks.
func NewEntityKeywordLF(phrase string, class int) (*EntityKeywordLF, error) {
	return lf.NewEntityKeywordLF(phrase, class)
}

// NewSimulatedLLM builds the deterministic simulated chat model for a
// dataset. Model accepts "gpt-3.5", "gpt-4", "llama2-7b", "llama2-13b",
// "llama2-70b" or their full provider identifiers.
func NewSimulatedLLM(model string, d *Dataset, seed int64) (*Simulated, error) {
	return llm.NewSimulated(model, d, seed)
}

// WrenchLFs reconstructs the WRENCH benchmark's expert LF set for a
// dataset (baseline of Table 2).
func WrenchLFs(d *Dataset) ([]LabelFunction, error) { return baselines.Wrench(d) }

// ScriptoriumLFs simulates the ScriptoriumWS code-generation baseline.
// It returns the LF set and a usage meter billing the generation calls.
func ScriptoriumLFs(d *Dataset, model string, seed int64) ([]LabelFunction, *llm.Meter, error) {
	return baselines.Scriptorium(context.Background(), d, model, seed)
}

// PromptedLFs simulates the PromptedLF exhaustive-prompting baseline:
// every train instance is annotated by every template. The returned meter
// records the Θ(n·T) token cost.
func PromptedLFs(d *Dataset, model string, seed int64) ([]LabelFunction, *llm.Meter, error) {
	return baselines.PromptedLF(context.Background(), d, model, seed)
}

// MainResults runs the paper's Table 2 comparison (seven methods × six
// datasets), which also yields the Figure 3/4 cost data. The grid cells
// run over ExperimentOptions.Workers goroutines (default GOMAXPROCS) and
// are byte-identical to a serial (Workers=1) sweep.
func MainResults(o ExperimentOptions) (*experiment.Grid, error) {
	return experiment.MainResults(o)
}

// MainResultsContext is MainResults with cancellation: canceling ctx
// aborts every in-flight cell and returns the context's error.
func MainResultsContext(ctx context.Context, o ExperimentOptions) (*experiment.Grid, error) {
	return experiment.MainResultsContext(ctx, o)
}

// LFSummary is the per-LF diagnostic record of AnalyzeLFs (coverage,
// overlap, conflict, accuracy).
type LFSummary = lf.Summary

// AnalyzeLFs computes Snorkel-style per-LF diagnostics over a split.
// gold may be nil for unlabeled splits.
func AnalyzeLFs(split []*Example, lfs []LabelFunction, gold []int) []LFSummary {
	ix := lf.NewIndex(split)
	vm := lf.BuildVoteMatrix(ix, lfs)
	return lf.Analyze(vm, lfs, gold)
}

// MarshalLFs serializes an LF set as JSON (keyword, entity-keyword and
// disjunction LFs; opaque predicate/annotation LFs are rejected).
func MarshalLFs(lfs []LabelFunction) ([]byte, error) { return lf.MarshalLFs(lfs) }

// UnmarshalLFs decodes an LF set written by MarshalLFs.
func UnmarshalLFs(data []byte) ([]LabelFunction, error) { return lf.UnmarshalLFs(data) }

// LoadDatasetDir reads a dataset from a WRENCH-style JSON directory (see
// internal/dataset.LoadDir for the layout). Datasets loaded from disk
// carry no signal table and therefore need a real ChatModel rather than
// the simulator.
func LoadDatasetDir(dir string) (*Dataset, error) { return dataset.LoadDir(dir) }

// SaveDatasetDir writes a dataset in the same layout LoadDatasetDir reads.
func SaveDatasetDir(d *Dataset, dir string) error { return d.SaveDir(dir) }

// NewOpenAI builds a ChatModel against any OpenAI-compatible
// chat-completions endpoint, so the identical pipeline can run on a real
// provider instead of the offline simulator. Behavior is tuned through
// functional options: WithPricing, WithMaxRetries, WithHTTPClient,
// WithRateLimit.
func NewOpenAI(baseURL, apiKey, model string, opts ...llm.Option) *llm.OpenAIClient {
	return llm.NewOpenAI(baseURL, apiKey, model, opts...)
}

// Client construction options, re-exported for NewOpenAI callers.
var (
	// WithPricing sets per-1M-token prompt/completion prices for cost
	// accounting.
	WithPricing = llm.WithPricing
	// WithMaxRetries bounds retry attempts on retryable failures.
	WithMaxRetries = llm.WithMaxRetries
	// WithHTTPClient substitutes the HTTP client (timeouts, proxies, test
	// doubles).
	WithHTTPClient = llm.WithHTTPClient
	// WithRateLimit installs a client-side QPS bound so concurrent runs
	// cannot stampede a provider.
	WithRateLimit = llm.WithRateLimit
	// WithMaxRetryDelay caps the client's exponential backoff.
	WithMaxRetryDelay = llm.WithMaxRetryDelay
)

// NewOpenAIClient builds an OpenAI-compatible client.
//
// Deprecated: use NewOpenAI with functional options.
func NewOpenAIClient(baseURL, apiKey, model string) *llm.OpenAIClient {
	return llm.NewOpenAIClient(baseURL, apiKey, model)
}

// Sentinel errors returned (wrapped) by ChatModel implementations;
// test with errors.Is.
var (
	// ErrRateLimited marks provider throttling (HTTP 429) or a canceled
	// wait on the client-side rate limiter.
	ErrRateLimited = llm.ErrRateLimited
	// ErrBadResponse marks a malformed or unusable provider reply; not
	// retryable.
	ErrBadResponse = llm.ErrBadResponse
	// ErrUnavailable marks transport failures and 5xx statuses; retryable.
	ErrUnavailable = llm.ErrUnavailable
)

// NewTranscript wraps any ChatModel so every call is appended as a JSON
// line to w — the audit/replay record of a labeling run.
func NewTranscript(inner ChatModel, w io.Writer) *llm.Transcript {
	return llm.NewTranscript(inner, w)
}

// NewCache wraps a ChatModel with a concurrency-safe response cache:
// identical (model, messages, temperature, n) requests are answered once
// and replayed, with single-flight deduplication of concurrent misses.
// Cache hits cost no tokens, which is what makes many-seed sweeps over a
// shared real model affordable.
func NewCache(inner ChatModel) *llm.Cache { return llm.NewCache(inner) }

// NewRateLimiter wraps a ChatModel with a token-bucket QPS bound shared
// by every goroutine using it. burst <= 0 defaults to 1.
func NewRateLimiter(inner ChatModel, qps float64, burst int) *llm.RateLimiter {
	return llm.NewRateLimiter(inner, qps, burst)
}

// NewMetered wraps a ChatModel with a mutex-guarded usage meter that
// aggregates calls, tokens and dollar cost across every caller — the
// spend ledger for a whole concurrent experiment. Read it with
// Metered.Meter().
func NewMetered(inner ChatModel) *llm.Metered { return llm.NewMetered(inner) }

// NewRetry wraps a ChatModel with capped, jittered exponential backoff
// on retryable failures (ErrRateLimited, ErrUnavailable), honoring
// provider Retry-After hints and failing fast on everything else. Tune
// it with WithRetryAttempts, WithRetryBackoff and WithRetryJitter.
func NewRetry(inner ChatModel, opts ...llm.RetryOption) *llm.Retry {
	return llm.NewRetry(inner, opts...)
}

// Retry middleware options, re-exported for NewRetry callers.
var (
	// WithRetryAttempts sets the total attempt budget per call (>= 1).
	WithRetryAttempts = llm.WithRetryAttempts
	// WithRetryBackoff sets the base and maximum backoff delays.
	WithRetryBackoff = llm.WithRetryBackoff
	// WithRetryJitter sets the uniform jitter fraction in [0, 0.99].
	WithRetryJitter = llm.WithRetryJitter
)

// Retryable reports whether an error is transient (wraps ErrRateLimited
// or ErrUnavailable) and therefore worth retrying.
func Retryable(err error) bool { return llm.Retryable(err) }

// RetryAfter extracts a provider-supplied retry delay hint (an
// llm.RetryAfterError anywhere in the chain), if present.
func RetryAfter(err error) (time.Duration, bool) { return llm.RetryAfter(err) }

// NewFaultInjector wraps a ChatModel with deterministic, seed-driven
// fault injection (rate limits, timeouts, truncated responses, garbage
// completions) for chaos-testing retry and degradation paths; rates
// are per-call probabilities and must sum to at most 1.
func NewFaultInjector(inner ChatModel, rates FaultRates, seed int64) *llm.FaultInjector {
	return llm.NewFaultInjector(inner, rates, seed)
}

// Middleware and accounting types, re-exported so callers can hold them
// without importing internal packages.
type (
	// OpenAIClient is the OpenAI-compatible ChatModel.
	OpenAIClient = llm.OpenAIClient
	// Cache is the response cache middleware.
	Cache = llm.Cache
	// RateLimiter is the QPS-bounding middleware.
	RateLimiter = llm.RateLimiter
	// Metered is the usage-metering middleware.
	Metered = llm.Metered
	// Meter accumulates calls, tokens and cost; safe for concurrent use.
	Meter = llm.Meter
	// MeterSnapshot is a consistent point-in-time copy of a Meter.
	MeterSnapshot = llm.MeterSnapshot
	// CacheStats is a consistent point-in-time copy of a Cache's
	// hit/miss/entry counters, read with Cache.Stats.
	CacheStats = llm.CacheStats
	// Retry is the backoff-retry middleware.
	Retry = llm.Retry
	// RetryAfterError carries a provider retry-delay hint; test with
	// errors.As or the RetryAfter helper.
	RetryAfterError = llm.RetryAfterError
	// FaultInjector is the chaos-testing middleware.
	FaultInjector = llm.FaultInjector
	// FaultRates sets per-call fault probabilities for NewFaultInjector.
	FaultRates = llm.FaultRates
)

// Telemetry re-exports. An Obs bundle — tracer, metrics registry and
// slog logger — attached to the context makes RunContext and
// MainResultsContext emit hierarchical spans (run > iteration > stage),
// llm_*/pipeline_*/grid_* metrics and structured logs without any
// signature change; without one, every instrumentation point is a
// zero-allocation no-op. See DESIGN.md §10 for the span and metric
// inventory.
type (
	// Obs bundles the three telemetry pillars; build with NewObs or
	// SetupTelemetry.
	Obs = obs.Obs
	// MetricsRegistry is the concurrency-safe counter/gauge/histogram
	// registry with Prometheus, JSON and expvar exporters.
	MetricsRegistry = obs.Registry
	// TelemetryConfig mirrors the CLI telemetry flags for SetupTelemetry.
	TelemetryConfig = obs.SetupConfig
	// SpanData is one finished trace span, as stored by the memory
	// tracer and written per line by the JSONL tracer.
	SpanData = obs.SpanData
	// Tracer starts root spans; Span is one live span. External code can
	// implement Tracer to route spans into its own tracing system.
	Tracer = obs.Tracer
	Span   = obs.Span
)

// NewJSONLTracer streams one JSON object per finished span per line to
// w; lines are written atomically, so w may be shared by concurrent
// runs.
func NewJSONLTracer(w io.Writer) *obs.JSONLTracer { return obs.NewJSONLTracer(w) }

// NewMemoryTracer records finished spans in memory for inspection —
// the test-friendly sink.
func NewMemoryTracer() *obs.MemoryTracer { return obs.NewMemoryTracer() }

// NewObs assembles a telemetry bundle, substituting no-ops for nil
// fields (a nil registry is valid and disables metrics).
func NewObs(t obs.Tracer, m *MetricsRegistry, l *slog.Logger) *Obs { return obs.New(t, m, l) }

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WithTelemetry attaches a bundle to a context; instrumented layers
// downstream pick it up automatically.
func WithTelemetry(ctx context.Context, o *Obs) context.Context { return obs.NewContext(ctx, o) }

// SetupTelemetry opens the sinks named by cfg (trace file, metrics
// file, debug server) exactly as the CLI flags do, returning the bundle
// and a cleanup that flushes and closes them.
func SetupTelemetry(cfg TelemetryConfig) (*Obs, func() error, error) { return obs.Setup(cfg) }
