package experiment

import (
	"fmt"

	"datasculpt/internal/ckpt"
	"datasculpt/internal/core"
)

// Grid checkpointing: every completed (method, dataset, seed) cell is
// appended to a JSONL file as one self-contained record, and a later
// sweep over the same grid can skip the cells already on disk
// (Options.ResumeFrom). Records are written with a single Write call per
// line, so a crash or Ctrl-C can at worst tear the final line — which
// the loader tolerates and the resumed sweep simply recomputes.
//
// Only successful cells are checkpointed. A cell that failed (recorded
// under Options.KeepGoing) is re-run on resume: transient failures are
// exactly what a restart should retry.

// CellResult is the serializable subset of core.Result a checkpoint
// keeps — every field grid aggregation and rendering consume. The LF
// set itself is deliberately dropped: grids report statistics, and
// keeping checkpoints small keeps appends cheap.
type CellResult struct {
	NumLFs           int     `json:"num_lfs"`
	LFAccuracy       float64 `json:"lf_accuracy"`
	LFAccuracyKnown  bool    `json:"lf_accuracy_known"`
	LFCoverage       float64 `json:"lf_coverage"`
	TotalCoverage    float64 `json:"total_coverage"`
	EndMetric        float64 `json:"end_metric"`
	MetricName       string  `json:"metric_name"`
	PromptTokens     int     `json:"prompt_tokens"`
	CompletionTokens int     `json:"completion_tokens"`
	Calls            int     `json:"calls"`
	CostUSD          float64 `json:"cost_usd"`
	ParseFailures    int     `json:"parse_failures,omitempty"`
	FailedIterations int     `json:"failed_iterations,omitempty"`
}

// NewCellResult extracts the checkpointable subset of a run result
// (exported so the datasculpt CLI can checkpoint its per-seed runs).
func NewCellResult(r *core.Result) *CellResult {
	return &CellResult{
		NumLFs:           r.NumLFs,
		LFAccuracy:       r.LFAccuracy,
		LFAccuracyKnown:  r.LFAccuracyKnown,
		LFCoverage:       r.LFCoverage,
		TotalCoverage:    r.TotalCoverage,
		EndMetric:        r.EndMetric,
		MetricName:       r.MetricName,
		PromptTokens:     r.PromptTokens,
		CompletionTokens: r.CompletionTokens,
		Calls:            r.Calls,
		CostUSD:          r.CostUSD,
		ParseFailures:    r.ParseFailures,
		FailedIterations: r.FailedIterations,
	}
}

// CoreResult reconstitutes the stored statistics as a core.Result for
// aggregation (LFs and rejection counts are not restored).
func (c *CellResult) CoreResult(method, ds string) *core.Result {
	return &core.Result{
		Dataset:          ds,
		Method:           method,
		NumLFs:           c.NumLFs,
		LFAccuracy:       c.LFAccuracy,
		LFAccuracyKnown:  c.LFAccuracyKnown,
		LFCoverage:       c.LFCoverage,
		TotalCoverage:    c.TotalCoverage,
		EndMetric:        c.EndMetric,
		MetricName:       c.MetricName,
		PromptTokens:     c.PromptTokens,
		CompletionTokens: c.CompletionTokens,
		Calls:            c.Calls,
		CostUSD:          c.CostUSD,
		ParseFailures:    c.ParseFailures,
		FailedIterations: c.FailedIterations,
	}
}

// CellRecord is one completed cell in a checkpoint file. Grid is the
// sweep title, so one file can hold several sweeps (`benchtab -all`)
// without cross-contaminating resumes.
type CellRecord struct {
	Grid    string      `json:"grid"`
	Method  string      `json:"method"`
	Dataset string      `json:"dataset"`
	Seed    int         `json:"seed"`
	Result  *CellResult `json:"result"`
}

// cellKey identifies a cell within one sweep.
func cellKey(method, ds string, seed int) string {
	return fmt.Sprintf("%s|%s|%d", method, ds, seed)
}

// CheckpointWriter appends cell records to a JSONL file via the shared
// ckpt machinery: appends are mutex-serialized and issued as one Write
// each, then synced, so concurrent workers cannot interleave bytes and
// a crash cannot lose a completed line.
type CheckpointWriter struct {
	w *ckpt.Writer
}

// OpenCheckpoint opens (creating if needed) a checkpoint file for
// appending.
func OpenCheckpoint(path string) (*CheckpointWriter, error) {
	w, err := ckpt.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: opening checkpoint: %w", err)
	}
	return &CheckpointWriter{w: w}, nil
}

// Append writes one record as a single JSONL line and syncs it to disk.
func (w *CheckpointWriter) Append(rec CellRecord) error {
	if err := w.w.Append(rec); err != nil {
		return fmt.Errorf("experiment: checkpoint: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (w *CheckpointWriter) Close() error {
	return w.w.Close()
}

// LoadCheckpoint reads every intact record of a checkpoint file. A
// missing file is an empty checkpoint (first run of a -resume sweep),
// and a torn or malformed final line — the footprint of a crash mid-
// append — is skipped rather than fatal. A malformed line anywhere
// else is reported: that is corruption, not a crash artifact. A record
// without a result payload counts as malformed.
func LoadCheckpoint(path string) ([]CellRecord, error) {
	records, err := ckpt.Load(path, func(rec *CellRecord) bool { return rec.Result != nil })
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	return records, nil
}
