package experiment

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"datasculpt/internal/core"
)

// Grid checkpointing: every completed (method, dataset, seed) cell is
// appended to a JSONL file as one self-contained record, and a later
// sweep over the same grid can skip the cells already on disk
// (Options.ResumeFrom). Records are written with a single Write call per
// line, so a crash or Ctrl-C can at worst tear the final line — which
// the loader tolerates and the resumed sweep simply recomputes.
//
// Only successful cells are checkpointed. A cell that failed (recorded
// under Options.KeepGoing) is re-run on resume: transient failures are
// exactly what a restart should retry.

// CellResult is the serializable subset of core.Result a checkpoint
// keeps — every field grid aggregation and rendering consume. The LF
// set itself is deliberately dropped: grids report statistics, and
// keeping checkpoints small keeps appends cheap.
type CellResult struct {
	NumLFs           int     `json:"num_lfs"`
	LFAccuracy       float64 `json:"lf_accuracy"`
	LFAccuracyKnown  bool    `json:"lf_accuracy_known"`
	LFCoverage       float64 `json:"lf_coverage"`
	TotalCoverage    float64 `json:"total_coverage"`
	EndMetric        float64 `json:"end_metric"`
	MetricName       string  `json:"metric_name"`
	PromptTokens     int     `json:"prompt_tokens"`
	CompletionTokens int     `json:"completion_tokens"`
	Calls            int     `json:"calls"`
	CostUSD          float64 `json:"cost_usd"`
	ParseFailures    int     `json:"parse_failures,omitempty"`
	FailedIterations int     `json:"failed_iterations,omitempty"`
}

// NewCellResult extracts the checkpointable subset of a run result
// (exported so the datasculpt CLI can checkpoint its per-seed runs).
func NewCellResult(r *core.Result) *CellResult {
	return &CellResult{
		NumLFs:           r.NumLFs,
		LFAccuracy:       r.LFAccuracy,
		LFAccuracyKnown:  r.LFAccuracyKnown,
		LFCoverage:       r.LFCoverage,
		TotalCoverage:    r.TotalCoverage,
		EndMetric:        r.EndMetric,
		MetricName:       r.MetricName,
		PromptTokens:     r.PromptTokens,
		CompletionTokens: r.CompletionTokens,
		Calls:            r.Calls,
		CostUSD:          r.CostUSD,
		ParseFailures:    r.ParseFailures,
		FailedIterations: r.FailedIterations,
	}
}

// CoreResult reconstitutes the stored statistics as a core.Result for
// aggregation (LFs and rejection counts are not restored).
func (c *CellResult) CoreResult(method, ds string) *core.Result {
	return &core.Result{
		Dataset:          ds,
		Method:           method,
		NumLFs:           c.NumLFs,
		LFAccuracy:       c.LFAccuracy,
		LFAccuracyKnown:  c.LFAccuracyKnown,
		LFCoverage:       c.LFCoverage,
		TotalCoverage:    c.TotalCoverage,
		EndMetric:        c.EndMetric,
		MetricName:       c.MetricName,
		PromptTokens:     c.PromptTokens,
		CompletionTokens: c.CompletionTokens,
		Calls:            c.Calls,
		CostUSD:          c.CostUSD,
		ParseFailures:    c.ParseFailures,
		FailedIterations: c.FailedIterations,
	}
}

// CellRecord is one completed cell in a checkpoint file. Grid is the
// sweep title, so one file can hold several sweeps (`benchtab -all`)
// without cross-contaminating resumes.
type CellRecord struct {
	Grid    string      `json:"grid"`
	Method  string      `json:"method"`
	Dataset string      `json:"dataset"`
	Seed    int         `json:"seed"`
	Result  *CellResult `json:"result"`
}

// cellKey identifies a cell within one sweep.
func cellKey(method, ds string, seed int) string {
	return fmt.Sprintf("%s|%s|%d", method, ds, seed)
}

// CheckpointWriter appends cell records to a JSONL file. Appends are
// mutex-serialized and issued as one Write each, then synced, so
// concurrent workers cannot interleave bytes and a crash cannot lose a
// completed line.
type CheckpointWriter struct {
	mu sync.Mutex
	f  *os.File
}

// OpenCheckpoint opens (creating if needed) a checkpoint file for
// appending.
func OpenCheckpoint(path string) (*CheckpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment: opening checkpoint: %w", err)
	}
	return &CheckpointWriter{f: f}, nil
}

// Append writes one record as a single JSONL line and syncs it to disk.
func (w *CheckpointWriter) Append(rec CellRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("experiment: encoding checkpoint record: %w", err)
	}
	data = append(data, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(data); err != nil {
		return fmt.Errorf("experiment: appending checkpoint record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("experiment: syncing checkpoint: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (w *CheckpointWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// LoadCheckpoint reads every intact record of a checkpoint file. A
// missing file is an empty checkpoint (first run of a -resume sweep),
// and a torn or malformed final line — the footprint of a crash mid-
// append — is skipped rather than fatal. A malformed line anywhere
// else is reported: that is corruption, not a crash artifact.
func LoadCheckpoint(path string) ([]CellRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("experiment: opening checkpoint: %w", err)
	}
	defer f.Close()

	var records []CellRecord
	var badLine int // 1-based line number of the first malformed line
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		if badLine != 0 {
			// a malformed line followed by more data is corruption
			return nil, fmt.Errorf("experiment: checkpoint %s: malformed record at line %d", path, badLine)
		}
		var rec CellRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Result == nil {
			badLine = line
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("experiment: reading checkpoint: %w", err)
	}
	return records, nil
}
