package experiment

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"datasculpt/internal/baselines"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
	"datasculpt/internal/obs"
)

// Method names used across the grids, matching the paper's row labels.
const (
	MethodWrench      = "WRENCH"
	MethodScriptorium = "ScriptoriumWS"
	MethodPromptedLF  = "PromptedLF"
	MethodBase        = "DataSculpt-Base"
	MethodCoT         = "DataSculpt-CoT"
	MethodSC          = "DataSculpt-SC"
	MethodKATE        = "DataSculpt-KATE"
)

// MainMethods is the Table 2 row order.
func MainMethods() []string {
	return []string{
		MethodWrench, MethodScriptorium, MethodPromptedLF,
		MethodBase, MethodCoT, MethodSC, MethodKATE,
	}
}

// variantOf maps method labels to pipeline variants.
var variantOf = map[string]core.Variant{
	MethodBase: core.VariantBase,
	MethodCoT:  core.VariantCoT,
	MethodSC:   core.VariantSC,
	MethodKATE: core.VariantKATE,
}

// baseConfig builds the shared pipeline configuration for one cell.
// The method and dataset names only matter under Options.Chaos, which
// derives each cell's fault schedule from them.
func baseConfig(o Options, method, ds string, seed int) core.Config {
	cfg := core.Config{
		Model:               o.Model,
		Iterations:          o.Iterations,
		Seed:                int64(100*seed + 1),
		MaxFailedIterations: o.MaxFailedIterations,
		Parallelism:         o.Parallelism,
	}
	if o.Chaos != nil {
		cc := o.Chaos.normalized()
		cfg.WrapModel = cc.wrap(method, ds, seed, o.Obs.Metrics)
	}
	return cfg
}

// runMethod executes one (method, dataset, seed) cell.
func runMethod(ctx context.Context, o Options, method string, d *dataset.Dataset, seed int) (*core.Result, error) {
	cfg := baseConfig(o, method, d.Name, seed)
	switch method {
	case MethodWrench:
		lfs, err := baselines.Wrench(d)
		if err != nil {
			return nil, err
		}
		res, err := core.EvaluateLFSet(d, lfs, cfg)
		if err != nil {
			return nil, err
		}
		res.Method = method
		return res, nil
	case MethodScriptorium:
		lfs, meter, err := baselines.Scriptorium(ctx, d, o.Model, cfg.Seed+11)
		if err != nil {
			return nil, err
		}
		res, err := core.EvaluateLFSet(d, lfs, cfg)
		if err != nil {
			return nil, err
		}
		res.Method = method
		usage := meter.Snapshot()
		res.Calls = usage.Calls
		res.PromptTokens = usage.PromptTokens
		res.CompletionTokens = usage.CompletionTokens
		res.CostUSD = usage.CostUSD
		return res, nil
	case MethodPromptedLF:
		lfs, meter, err := baselines.PromptedLF(ctx, d, o.Model, cfg.Seed+17)
		if err != nil {
			return nil, err
		}
		res, err := core.EvaluateLFSet(d, lfs, cfg)
		if err != nil {
			return nil, err
		}
		res.Method = method
		usage := meter.Snapshot()
		res.Calls = usage.Calls
		res.PromptTokens = usage.PromptTokens
		res.CompletionTokens = usage.CompletionTokens
		res.CostUSD = usage.CostUSD
		return res, nil
	default:
		variant, ok := variantOf[method]
		if !ok {
			return nil, fmt.Errorf("experiment: unknown method %q", method)
		}
		cfg.Variant = variant
		res, err := core.RunContext(ctx, d, cfg)
		if err != nil {
			return nil, err
		}
		res.Method = method
		return res, nil
	}
}

// cellFunc executes one grid cell.
type cellFunc func(ctx context.Context, method string, d *dataset.Dataset, seed int) (*core.Result, error)

// cell is one schedulable (method, dataset, seed) unit of the sweep.
type cell struct {
	method, ds string
	seed       int
}

// sweep fills a grid by running `run` for every (method, dataset, seed)
// over a pool of Options.Workers goroutines.
//
// Determinism: every cell loads its own dataset copy and owns its RNGs
// and simulated endpoint, and each result is committed to a slot keyed
// by cell index — so the aggregated grid is byte-identical for any
// worker count, including 1. Error handling is errgroup-style fail-fast
// (first error cancels the shared context and wins) unless
// Options.KeepGoing, which records per-cell errors in the grid and
// averages each cell over its surviving seeds.
func sweep(ctx context.Context, o Options, title string, methods []string, run cellFunc) (*Grid, error) {
	// deterministic cell order: dataset-major, then method, then seed —
	// the same order the serial runner used
	var cells []cell
	for _, dsName := range o.Datasets {
		for _, method := range methods {
			for s := 1; s <= o.Seeds; s++ {
				cells = append(cells, cell{method: method, ds: dsName, seed: s})
			}
		}
	}

	results := make([]*core.Result, len(cells))
	cellErrs := make([]error, len(cells))

	// grid_* metrics give a live view of the sweep (watch them on
	// -debug-addr's /debug/vars while a long grid runs)
	reg := o.Obs.Metrics
	cellsTotal := reg.Gauge("grid_cells_total", "cells in the current sweep")
	cellsDone := reg.Counter("grid_cells_done_total", "cells completed (success or failure)")
	cellsFailed := reg.Counter("grid_cells_failed_total", "cells that returned an error")
	cellsResumed := reg.Counter("grid_cells_resumed_total", "cells restored from a checkpoint instead of re-run")
	cellSeconds := reg.Histogram("grid_cell_seconds", "wall-clock per grid cell, seconds", obs.DurationBuckets)
	workersBusy := reg.Gauge("grid_workers_busy", "workers currently executing a cell")
	cellsTotal.Set(float64(len(cells)))

	// restore cells a previous run already checkpointed for this sweep;
	// restored slots are committed directly and never scheduled. Failed
	// cells are absent from checkpoints, so a resume re-runs them.
	resumed := make(map[int]bool)
	if o.ResumeFrom != "" {
		records, err := LoadCheckpoint(o.ResumeFrom)
		if err != nil {
			return nil, err
		}
		byKey := make(map[string]*CellRecord, len(records))
		for i := range records {
			if records[i].Grid == title {
				byKey[cellKey(records[i].Method, records[i].Dataset, records[i].Seed)] = &records[i]
			}
		}
		for i, c := range cells {
			if rec, ok := byKey[cellKey(c.method, c.ds, c.seed)]; ok {
				results[i] = rec.Result.CoreResult(c.method, c.ds)
				resumed[i] = true
				cellsResumed.Inc()
			}
		}
		if len(resumed) > 0 {
			o.logf("  resuming: %d of %d cells restored from %s", len(resumed), len(cells), o.ResumeFrom)
		}
	}

	var ckpt *CheckpointWriter
	if o.Checkpoint != "" {
		w, err := OpenCheckpoint(o.Checkpoint)
		if err != nil {
			return nil, err
		}
		defer w.Close()
		ckpt = w
		// write restored cells through to a fresh checkpoint file so it
		// is self-contained; appending to the file we resumed from would
		// duplicate its lines
		if o.Checkpoint != o.ResumeFrom {
			for i, c := range cells {
				if resumed[i] {
					rec := CellRecord{Grid: title, Method: c.method, Dataset: c.ds, Seed: c.seed, Result: NewCellResult(results[i])}
					if err := ckpt.Append(rec); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	ctx, cancel := context.WithCancel(obs.NewContext(ctx, o.Obs))
	defer cancel()
	var firstErr error
	var once sync.Once
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}

	// runCell executes one cell under its own span; the pipeline's run
	// span nests beneath it via the span-carrying context.
	runCell := func(i int) {
		c := cells[i]
		span := o.Obs.Tracer.StartSpan("cell")
		span.SetStr("method", c.method)
		span.SetStr("dataset", c.ds)
		span.SetInt("seed", int64(c.seed))
		cctx := obs.ContextWithSpan(ctx, span)

		workersBusy.Add(1)
		start := time.Now()
		d, err := dataset.Load(c.ds, datasetSeed(c.seed), o.Scale)
		if err == nil {
			results[i], err = run(cctx, c.method, d, c.seed)
		}
		dur := time.Since(start)
		workersBusy.Add(-1)
		cellSeconds.Observe(dur.Seconds())
		cellsDone.Inc()

		if err != nil {
			err = fmt.Errorf("experiment %s/%s seed %d: %w", c.method, c.ds, c.seed, err)
			cellErrs[i] = err
			cellsFailed.Inc()
			span.SetErr(err)
			if !o.KeepGoing {
				fail(err)
			}
		} else if ckpt != nil {
			rec := CellRecord{Grid: title, Method: c.method, Dataset: c.ds, Seed: c.seed, Result: NewCellResult(results[i])}
			if aerr := ckpt.Append(rec); aerr != nil {
				// a checkpoint problem shouldn't void the sweep itself —
				// the cell is computed; only resumability is degraded
				o.Obs.Logger.LogAttrs(ctx, slog.LevelWarn, "checkpoint append failed",
					slog.String("method", c.method), slog.String("dataset", c.ds),
					slog.Int("seed", c.seed), slog.String("err", aerr.Error()))
			}
		}
		span.End()
		o.Obs.Logger.LogAttrs(ctx, slog.LevelInfo, "cell done",
			slog.String("method", c.method), slog.String("dataset", c.ds),
			slog.Int("seed", c.seed), slog.Duration("dur", dur),
			slog.Int("done", int(cellsDone.Value())), slog.Int("total", len(cells)),
			slog.Bool("failed", err != nil))
	}

	workers := o.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil && !o.KeepGoing {
					cellErrs[i] = err // sweep canceled; drain remaining cells
					fail(err)         // no-op unless the parent ctx was canceled first
					continue
				}
				runCell(i)
			}
		}()
	}
	for i := range cells {
		if resumed[i] {
			continue
		}
		idx <- i
	}
	close(idx)
	wg.Wait()

	if !o.KeepGoing && firstErr != nil {
		return nil, firstErr
	}

	// aggregate in deterministic order; log lines match the serial runner
	g := newGrid(title, methods, o.Datasets)
	i := 0
	for _, dsName := range o.Datasets {
		for _, method := range methods {
			var seedResults []*core.Result
			var seedErrs []error
			for s := 1; s <= o.Seeds; s++ {
				if res := results[i]; res != nil {
					seedResults = append(seedResults, res)
				}
				if err := cellErrs[i]; err != nil {
					seedErrs = append(seedErrs, err)
				}
				i++
			}
			if len(seedErrs) > 0 {
				g.SetErr(method, dsName, errors.Join(seedErrs...))
			}
			st := meanStats(seedResults)
			g.Set(method, dsName, st)
			if len(seedResults) > 0 {
				o.logf("  %-16s %-8s #LF=%-6.1f acc=%-6.3f cov=%-7.4f total=%-6.3f %s=%-6.3f tok=%.0f",
					method, dsName, st.NumLFs, st.LFAcc, st.LFCov, st.TotalCov, st.MetricName, st.EM, st.TotalTokens())
			} else {
				o.logf("  %-16s %-8s FAILED: %v", method, dsName, g.Err(method, dsName))
			}
		}
	}
	return g, nil
}

// MainResults runs the Table 2 comparison (which also provides the data
// of Figures 3 and 4): all seven methods on every dataset.
func MainResults(o Options) (*Grid, error) {
	return MainResultsContext(context.Background(), o)
}

// MainResultsContext is MainResults with cancellation.
func MainResultsContext(ctx context.Context, o Options) (*Grid, error) {
	o = o.normalized()
	o.logf("== main results (Table 2, Figures 3-4): %d datasets x %d seeds, scale %.2f, %d workers",
		len(o.Datasets), o.Seeds, o.Scale, o.Workers)
	return sweep(ctx, o, "Table 2: LF statistics and end model performance", MainMethods(),
		func(ctx context.Context, method string, d *dataset.Dataset, seed int) (*core.Result, error) {
			return runMethod(ctx, o, method, d, seed)
		})
}

// LLMNames is the Table 3 row order.
func LLMNames() []string {
	return []string{"gpt-3.5", "gpt-4", "llama2-7b", "llama2-13b", "llama2-70b"}
}

// LLMAblation runs Table 3: DataSculpt-SC with each pre-trained model.
func LLMAblation(o Options) (*Grid, error) {
	return LLMAblationContext(context.Background(), o)
}

// LLMAblationContext is LLMAblation with cancellation.
func LLMAblationContext(ctx context.Context, o Options) (*Grid, error) {
	o = o.normalized()
	o.logf("== LLM ablation (Table 3): %d models", len(LLMNames()))
	return sweep(ctx, o, "Table 3: ablation study using different LLMs", LLMNames(),
		func(ctx context.Context, model string, d *dataset.Dataset, seed int) (*core.Result, error) {
			cfg := baseConfig(o, model, d.Name, seed)
			cfg.Model = model
			cfg.Variant = core.VariantSC
			res, err := core.RunContext(ctx, d, cfg)
			if err != nil {
				return nil, err
			}
			res.Method = model
			return res, nil
		})
}

// SamplerNames is the Table 4 row order.
func SamplerNames() []string { return []string{"random", "uncertain", "seu"} }

// SamplerAblation runs Table 4: DataSculpt-SC with each query-selection
// strategy.
func SamplerAblation(o Options) (*Grid, error) {
	return SamplerAblationContext(context.Background(), o)
}

// SamplerAblationContext is SamplerAblation with cancellation.
func SamplerAblationContext(ctx context.Context, o Options) (*Grid, error) {
	o = o.normalized()
	o.logf("== sampler ablation (Table 4)")
	return sweep(ctx, o, "Table 4: ablation study using different samplers", SamplerNames(),
		func(ctx context.Context, smp string, d *dataset.Dataset, seed int) (*core.Result, error) {
			cfg := baseConfig(o, smp, d.Name, seed)
			cfg.Variant = core.VariantSC
			cfg.Sampler = smp
			res, err := core.RunContext(ctx, d, cfg)
			if err != nil {
				return nil, err
			}
			res.Method = smp
			return res, nil
		})
}

// FilterNames is the Table 5 row order.
func FilterNames() []string { return []string{"all", "no accuracy", "no redundancy"} }

// FilterAblation runs Table 5: DataSculpt-SC with filter subsets.
func FilterAblation(o Options) (*Grid, error) {
	return FilterAblationContext(context.Background(), o)
}

// FilterAblationContext is FilterAblation with cancellation.
func FilterAblationContext(ctx context.Context, o Options) (*Grid, error) {
	o = o.normalized()
	o.logf("== filter ablation (Table 5)")
	configs := map[string]lf.FilterConfig{
		"all":           {UseAccuracy: true, UseRedundancy: true},
		"no accuracy":   {UseAccuracy: false, UseRedundancy: true},
		"no redundancy": {UseAccuracy: true, UseRedundancy: false},
	}
	return sweep(ctx, o, "Table 5: ablation study using different LF filters", FilterNames(),
		func(ctx context.Context, name string, d *dataset.Dataset, seed int) (*core.Result, error) {
			cfg := baseConfig(o, name, d.Name, seed)
			cfg.Variant = core.VariantSC
			cfg.Filters = configs[name]
			res, err := core.RunContext(ctx, d, cfg)
			if err != nil {
				return nil, err
			}
			res.Method = name
			return res, nil
		})
}
