package experiment

import (
	"fmt"

	"datasculpt/internal/baselines"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
)

// Method names used across the grids, matching the paper's row labels.
const (
	MethodWrench      = "WRENCH"
	MethodScriptorium = "ScriptoriumWS"
	MethodPromptedLF  = "PromptedLF"
	MethodBase        = "DataSculpt-Base"
	MethodCoT         = "DataSculpt-CoT"
	MethodSC          = "DataSculpt-SC"
	MethodKATE        = "DataSculpt-KATE"
)

// MainMethods is the Table 2 row order.
func MainMethods() []string {
	return []string{
		MethodWrench, MethodScriptorium, MethodPromptedLF,
		MethodBase, MethodCoT, MethodSC, MethodKATE,
	}
}

// variantOf maps method labels to pipeline variants.
var variantOf = map[string]core.Variant{
	MethodBase: core.VariantBase,
	MethodCoT:  core.VariantCoT,
	MethodSC:   core.VariantSC,
	MethodKATE: core.VariantKATE,
}

// baseConfig builds the shared pipeline configuration for a repetition.
func baseConfig(o Options, seed int) core.Config {
	cfg := core.Config{
		Model:      o.Model,
		Iterations: o.Iterations,
		Seed:       int64(100*seed + 1),
	}
	return cfg
}

// runMethod executes one (method, dataset, seed) cell.
func runMethod(o Options, method string, d *dataset.Dataset, seed int) (*core.Result, error) {
	cfg := baseConfig(o, seed)
	switch method {
	case MethodWrench:
		lfs, err := baselines.Wrench(d)
		if err != nil {
			return nil, err
		}
		res, err := core.EvaluateLFSet(d, lfs, cfg)
		if err != nil {
			return nil, err
		}
		res.Method = method
		return res, nil
	case MethodScriptorium:
		lfs, meter, err := baselines.Scriptorium(d, o.Model, cfg.Seed+11)
		if err != nil {
			return nil, err
		}
		res, err := core.EvaluateLFSet(d, lfs, cfg)
		if err != nil {
			return nil, err
		}
		res.Method = method
		res.Calls = meter.Calls
		res.PromptTokens = meter.PromptTokens
		res.CompletionTokens = meter.CompletionTokens
		res.CostUSD = meter.CostUSD()
		return res, nil
	case MethodPromptedLF:
		lfs, meter, err := baselines.PromptedLF(d, o.Model, cfg.Seed+17)
		if err != nil {
			return nil, err
		}
		res, err := core.EvaluateLFSet(d, lfs, cfg)
		if err != nil {
			return nil, err
		}
		res.Method = method
		res.Calls = meter.Calls
		res.PromptTokens = meter.PromptTokens
		res.CompletionTokens = meter.CompletionTokens
		res.CostUSD = meter.CostUSD()
		return res, nil
	default:
		variant, ok := variantOf[method]
		if !ok {
			return nil, fmt.Errorf("experiment: unknown method %q", method)
		}
		cfg.Variant = variant
		res, err := core.Run(d, cfg)
		if err != nil {
			return nil, err
		}
		res.Method = method
		return res, nil
	}
}

// sweep fills a grid by running `run` for every (method, dataset, seed).
func sweep(o Options, title string, methods []string,
	run func(method string, d *dataset.Dataset, seed int) (*core.Result, error)) (*Grid, error) {
	g := newGrid(title, methods, o.Datasets)
	for _, dsName := range o.Datasets {
		for _, method := range methods {
			var results []*core.Result
			for s := 1; s <= o.Seeds; s++ {
				d, err := dataset.Load(dsName, datasetSeed(s), o.Scale)
				if err != nil {
					return nil, err
				}
				res, err := run(method, d, s)
				if err != nil {
					return nil, fmt.Errorf("experiment %s/%s seed %d: %w", method, dsName, s, err)
				}
				results = append(results, res)
			}
			st := meanStats(results)
			g.Set(method, dsName, st)
			o.logf("  %-16s %-8s #LF=%-6.1f acc=%-6.3f cov=%-7.4f total=%-6.3f %s=%-6.3f tok=%.0f",
				method, dsName, st.NumLFs, st.LFAcc, st.LFCov, st.TotalCov, st.MetricName, st.EM, st.TotalTokens())
		}
	}
	return g, nil
}

// MainResults runs the Table 2 comparison (which also provides the data
// of Figures 3 and 4): all seven methods on every dataset.
func MainResults(o Options) (*Grid, error) {
	o = o.normalized()
	o.logf("== main results (Table 2, Figures 3-4): %d datasets x %d seeds, scale %.2f",
		len(o.Datasets), o.Seeds, o.Scale)
	return sweep(o, "Table 2: LF statistics and end model performance", MainMethods(),
		func(method string, d *dataset.Dataset, seed int) (*core.Result, error) {
			return runMethod(o, method, d, seed)
		})
}

// LLMNames is the Table 3 row order.
func LLMNames() []string {
	return []string{"gpt-3.5", "gpt-4", "llama2-7b", "llama2-13b", "llama2-70b"}
}

// LLMAblation runs Table 3: DataSculpt-SC with each pre-trained model.
func LLMAblation(o Options) (*Grid, error) {
	o = o.normalized()
	o.logf("== LLM ablation (Table 3): %d models", len(LLMNames()))
	return sweep(o, "Table 3: ablation study using different LLMs", LLMNames(),
		func(model string, d *dataset.Dataset, seed int) (*core.Result, error) {
			cfg := baseConfig(o, seed)
			cfg.Model = model
			cfg.Variant = core.VariantSC
			res, err := core.Run(d, cfg)
			if err != nil {
				return nil, err
			}
			res.Method = model
			return res, nil
		})
}

// SamplerNames is the Table 4 row order.
func SamplerNames() []string { return []string{"random", "uncertain", "seu"} }

// SamplerAblation runs Table 4: DataSculpt-SC with each query-selection
// strategy.
func SamplerAblation(o Options) (*Grid, error) {
	o = o.normalized()
	o.logf("== sampler ablation (Table 4)")
	return sweep(o, "Table 4: ablation study using different samplers", SamplerNames(),
		func(smp string, d *dataset.Dataset, seed int) (*core.Result, error) {
			cfg := baseConfig(o, seed)
			cfg.Variant = core.VariantSC
			cfg.Sampler = smp
			res, err := core.Run(d, cfg)
			if err != nil {
				return nil, err
			}
			res.Method = smp
			return res, nil
		})
}

// FilterNames is the Table 5 row order.
func FilterNames() []string { return []string{"all", "no accuracy", "no redundancy"} }

// FilterAblation runs Table 5: DataSculpt-SC with filter subsets.
func FilterAblation(o Options) (*Grid, error) {
	o = o.normalized()
	o.logf("== filter ablation (Table 5)")
	configs := map[string]lf.FilterConfig{
		"all":           {UseAccuracy: true, UseRedundancy: true},
		"no accuracy":   {UseAccuracy: false, UseRedundancy: true},
		"no redundancy": {UseAccuracy: true, UseRedundancy: false},
	}
	return sweep(o, "Table 5: ablation study using different LF filters", FilterNames(),
		func(name string, d *dataset.Dataset, seed int) (*core.Result, error) {
			cfg := baseConfig(o, seed)
			cfg.Variant = core.VariantSC
			cfg.Filters = configs[name]
			res, err := core.Run(d, cfg)
			if err != nil {
				return nil, err
			}
			res.Method = name
			return res, nil
		})
}
