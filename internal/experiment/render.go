package experiment

import (
	"fmt"
	"math"
	"strings"

	"datasculpt/internal/dataset"
)

// RenderTable1 prints the dataset statistics of Table 1 from the loaded
// (or registry-declared) corpora.
func RenderTable1(o Options) (string, error) {
	o = o.normalized()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Datasets used in evaluation (scale %.2f)\n", o.Scale)
	fmt.Fprintf(&b, "%-10s %-22s %7s %8s %8s %8s\n", "Dataset", "Task", "#Class", "#Train", "#Valid", "#Test")
	for _, name := range o.Datasets {
		d, err := dataset.Load(name, datasetSeed(1), o.Scale)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%-10s %-22s %7d %8d %8d %8d\n",
			d.Name, d.Task, d.NumClasses(), len(d.Train), len(d.Valid), len(d.Test))
	}
	return b.String(), nil
}

// metricRow describes one metric block of a Table 2-style rendering.
type metricRow struct {
	label  string
	metric func(Stats) (float64, bool)
	format string
}

func tableMetrics() []metricRow {
	return []metricRow{
		{"#LFs", MetricNumLFs, "%.0f"},
		{"LF Acc.", MetricLFAcc, "%.3f"},
		{"LF Cov.", MetricLFCov, "%.3f"},
		{"Total Cov.", MetricTotalCov, "%.3f"},
		{"EM Acc/F1", MetricEM, "%.3f"},
	}
}

// RenderGrid prints a grid in the paper's table layout: metric blocks,
// one row per method, one column per dataset plus the AVG column.
func RenderGrid(g *Grid) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", g.Title)
	fmt.Fprintf(&b, "%-11s %-16s", "Metric", "Method")
	for _, ds := range g.Datasets {
		fmt.Fprintf(&b, " %8s", ds)
	}
	fmt.Fprintf(&b, " %8s\n", "AVG")
	for _, mr := range tableMetrics() {
		for _, method := range g.Methods {
			fmt.Fprintf(&b, "%-11s %-16s", mr.label, method)
			for _, ds := range g.Datasets {
				s, ok := g.Get(method, ds)
				if !ok {
					fmt.Fprintf(&b, " %8s", "?")
					continue
				}
				if v, defined := mr.metric(s); defined {
					fmt.Fprintf(&b, " %8s", fmt.Sprintf(mr.format, v))
				} else {
					fmt.Fprintf(&b, " %8s", "-")
				}
			}
			if avg, ok := g.Avg(method, mr.metric); ok {
				fmt.Fprintf(&b, " %8s", fmt.Sprintf(mr.format, avg))
			} else {
				fmt.Fprintf(&b, " %8s", "-")
			}
			fmt.Fprintln(&b)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RenderFigure renders a Figure 3/4-style comparison: per-method totals
// across datasets as a log-scale ASCII bar chart. metric extracts the
// per-cell quantity (tokens or dollars); unit labels the axis.
func RenderFigure(title string, g *Grid, metric func(Stats) (float64, bool), unit string, format string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)

	totals := make([]float64, len(g.Methods))
	maxTotal := 0.0
	minPositive := math.Inf(1)
	for i, method := range g.Methods {
		var sum float64
		for _, ds := range g.Datasets {
			if s, ok := g.Get(method, ds); ok {
				if v, defined := metric(s); defined {
					sum += v
				}
			}
		}
		totals[i] = sum
		if sum > maxTotal {
			maxTotal = sum
		}
		if sum > 0 && sum < minPositive {
			minPositive = sum
		}
	}

	const width = 46
	for i, method := range g.Methods {
		bar := 0
		if totals[i] > 0 && maxTotal > 0 {
			// log scale from minPositive/10 to maxTotal
			lo := math.Log10(minPositive / 10)
			hi := math.Log10(maxTotal)
			if hi > lo {
				bar = int(math.Round((math.Log10(totals[i]) - lo) / (hi - lo) * width))
			}
			if bar < 1 {
				bar = 1
			}
		}
		fmt.Fprintf(&b, "%-16s %s %s %s\n", method,
			strings.Repeat("#", bar)+strings.Repeat(" ", width-bar),
			fmt.Sprintf(format, totals[i]), unit)
	}
	fmt.Fprintf(&b, "(log scale; totals across %d datasets)\n", len(g.Datasets))
	return b.String()
}

// RenderFigure3 prints the token-usage comparison of Figure 3.
func RenderFigure3(g *Grid) string {
	return RenderFigure("Figure 3: Token usage for synthesizing LFs", g, MetricTokens, "tokens", "%12.0f")
}

// RenderFigure4 prints the API-cost comparison of Figure 4.
func RenderFigure4(g *Grid) string {
	return RenderFigure("Figure 4: API cost for synthesizing LFs", g, MetricCost, "USD", "%12.4f")
}

// RenderPaperComparison prints our AVG column next to the paper's AVG for
// each metric, plus the headline shape checks of DESIGN.md §4.
func RenderPaperComparison(g *Grid, paper map[string]PaperAverages) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Paper vs. reproduction (AVG over datasets)\n")
	fmt.Fprintf(&b, "%-11s %-16s %10s %10s\n", "Metric", "Method", "paper", "ours")
	for _, mr := range tableMetrics() {
		for _, method := range g.Methods {
			ref, ok := paper[method]
			if !ok {
				continue
			}
			refVal, refOK := ref.Value(mr.label)
			ourVal, ourOK := g.Avg(method, mr.metric)
			paperStr, oursStr := "-", "-"
			if refOK {
				paperStr = fmt.Sprintf(mr.format, refVal)
			}
			if ourOK {
				oursStr = fmt.Sprintf(mr.format, ourVal)
			}
			fmt.Fprintf(&b, "%-11s %-16s %10s %10s\n", mr.label, method, paperStr, oursStr)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
