package experiment

// PaperAverages records a method's AVG column from the paper's tables so
// reports can print paper-vs-reproduction side by side. A zero field with
// Known=false means the paper does not report that value.
type PaperAverages struct {
	NumLFs   float64
	LFAcc    float64
	LFCov    float64
	TotalCov float64
	EM       float64
}

// Value looks up a metric by its table label.
func (p PaperAverages) Value(label string) (float64, bool) {
	switch label {
	case "#LFs":
		return p.NumLFs, true
	case "LF Acc.":
		return p.LFAcc, true
	case "LF Cov.":
		return p.LFCov, true
	case "Total Cov.":
		return p.TotalCov, true
	case "EM Acc/F1":
		return p.EM, true
	default:
		return 0, false
	}
}

// PaperTable2 holds the AVG column of the paper's Table 2.
var PaperTable2 = map[string]PaperAverages{
	MethodWrench:      {NumLFs: 19.0, LFAcc: 0.810, LFCov: 0.239, TotalCov: 0.764, EM: 0.729},
	MethodScriptorium: {NumLFs: 19.2, LFAcc: 0.688, LFCov: 0.720, TotalCov: 0.947, EM: 0.668},
	MethodPromptedLF:  {NumLFs: 18.7, LFAcc: 0.848, LFCov: 0.309, TotalCov: 0.888, EM: 0.759},
	MethodBase:        {NumLFs: 108.2, LFAcc: 0.797, LFCov: 0.020, TotalCov: 0.651, EM: 0.767},
	MethodCoT:         {NumLFs: 95.7, LFAcc: 0.789, LFCov: 0.019, TotalCov: 0.608, EM: 0.746},
	MethodSC:          {NumLFs: 174.8, LFAcc: 0.788, LFCov: 0.018, TotalCov: 0.792, EM: 0.765},
	MethodKATE:        {NumLFs: 202.7, LFAcc: 0.780, LFCov: 0.011, TotalCov: 0.663, EM: 0.768},
}

// PaperTable3 holds the AVG column of the paper's Table 3 (DataSculpt-SC
// with different LLMs).
var PaperTable3 = map[string]PaperAverages{
	"gpt-3.5":    {NumLFs: 174.8, LFAcc: 0.788, LFCov: 0.018, TotalCov: 0.792, EM: 0.765},
	"gpt-4":      {NumLFs: 193.3, LFAcc: 0.836, LFCov: 0.014, TotalCov: 0.753, EM: 0.780},
	"llama2-7b":  {NumLFs: 215.3, LFAcc: 0.722, LFCov: 0.022, TotalCov: 0.788, EM: 0.708},
	"llama2-13b": {NumLFs: 157.8, LFAcc: 0.712, LFCov: 0.015, TotalCov: 0.765, EM: 0.727},
	"llama2-70b": {NumLFs: 185.2, LFAcc: 0.777, LFCov: 0.013, TotalCov: 0.681, EM: 0.739},
}

// PaperTable4 holds the AVG column of the paper's Table 4 (samplers).
var PaperTable4 = map[string]PaperAverages{
	"random":    {NumLFs: 174.8, LFAcc: 0.788, LFCov: 0.018, TotalCov: 0.792, EM: 0.765},
	"uncertain": {NumLFs: 173.2, LFAcc: 0.749, LFCov: 0.014, TotalCov: 0.740, EM: 0.762},
	"seu":       {NumLFs: 70.8, LFAcc: 0.798, LFCov: 0.020, TotalCov: 0.557, EM: 0.733},
}

// PaperTable5 holds the AVG column of the paper's Table 5 (filters).
var PaperTable5 = map[string]PaperAverages{
	"all":           {NumLFs: 174.8, LFAcc: 0.788, LFCov: 0.018, TotalCov: 0.792, EM: 0.765},
	"no accuracy":   {NumLFs: 246.7, LFAcc: 0.693, LFCov: 0.021, TotalCov: 0.862, EM: 0.679},
	"no redundancy": {NumLFs: 235.7, LFAcc: 0.807, LFCov: 0.031, TotalCov: 0.782, EM: 0.737},
}

// PaperFigure34 records the headline cost facts of Figures 3-4: across
// six datasets DataSculpt-Base consumed 38,992 tokens (~$0.06) while
// PromptedLF consumed over 170M tokens (>$250) with GPT-3.5.
type PaperFigure34 struct {
	BaseTokens        float64
	BaseCostUSD       float64
	PromptedTokens    float64
	PromptedCostUSD   float64
	TokenRatioAtLeast float64
}

// PaperFigures holds the headline Figure 3/4 numbers.
var PaperFigures = PaperFigure34{
	BaseTokens:        38992,
	BaseCostUSD:       0.06,
	PromptedTokens:    170e6,
	PromptedCostUSD:   250,
	TokenRatioAtLeast: 1000,
}
