package experiment

import (
	"hash/fnv"
	"time"

	"datasculpt/internal/llm"
	"datasculpt/internal/obs"
)

// ChaosConfig turns a sweep into a fault-injection exercise: every
// cell's LLM endpoint is wrapped in an llm.FaultInjector (injecting
// rate limits, timeouts, truncations and garbage completions at the
// configured rates) under an llm.Retry middleware that absorbs the
// retryable ones. Each cell derives its injector seed from Seed and
// its own (method, dataset, seed) coordinates, so the fault schedule —
// and therefore the grid — is deterministic at any worker count.
//
// Rate-limit and timeout faults fire before the inner model is
// consulted, so a retried call sees exactly the response stream a
// fault-free run would: chaos grids stay byte-identical to clean ones
// whenever every fault is absorbed within the retry budget.
type ChaosConfig struct {
	// Rates sets the per-call fault probabilities (sum must be <= 1).
	Rates llm.FaultRates
	// Seed drives every cell's fault schedule (default 1).
	Seed int64
	// Attempts is the retry budget per call (default 6).
	Attempts int
	// BaseDelay/MaxDelay bound the retry backoff (defaults 1ms/20ms —
	// chaos runs exist to exercise the retry path, not to wait on it).
	BaseDelay, MaxDelay time.Duration
}

func (c *ChaosConfig) normalized() ChaosConfig {
	cc := *c
	if cc.Seed == 0 {
		cc.Seed = 1
	}
	if cc.Attempts <= 0 {
		cc.Attempts = 6
	}
	if cc.BaseDelay <= 0 {
		cc.BaseDelay = time.Millisecond
	}
	if cc.MaxDelay <= 0 {
		cc.MaxDelay = 20 * time.Millisecond
	}
	return cc
}

// cellSeed mixes the sweep-level chaos seed with the cell coordinates.
func (c ChaosConfig) cellSeed(method, ds string, seed int) int64 {
	h := fnv.New64a()
	h.Write([]byte(method))
	h.Write([]byte{'|'})
	h.Write([]byte(ds))
	h.Write([]byte{'|', byte(seed), byte(seed >> 8)})
	return c.Seed ^ int64(h.Sum64())
}

// wrap returns the per-cell middleware closure installed as
// core.Config.WrapModel: Retry(FaultInjector(endpoint)), both
// instrumented against the sweep's registry.
func (c ChaosConfig) wrap(method, ds string, seed int, reg *obs.Registry) func(llm.ChatModel) llm.ChatModel {
	return func(inner llm.ChatModel) llm.ChatModel {
		fi := llm.NewFaultInjector(inner, c.Rates, c.cellSeed(method, ds, seed))
		fi.Instrument(reg)
		r := llm.NewRetry(fi,
			llm.WithRetryAttempts(c.Attempts),
			llm.WithRetryBackoff(c.BaseDelay, c.MaxDelay))
		r.Instrument(reg)
		return r
	}
}
