package experiment

import (
	"fmt"
	"strings"
)

// This file renders EXPERIMENTS.md: a markdown report that places every
// reproduced table and figure next to the paper's published averages and
// evaluates the *shape checks* of DESIGN.md §4 programmatically — the
// orderings and ratios that must hold for the reproduction to count, even
// though absolute numbers differ across substrates.

// ShapeCheck is one programmatic assertion about a result grid.
type ShapeCheck struct {
	// Name states the claim being checked, in the paper's terms.
	Name string
	// Pass reports whether the reproduction satisfies it.
	Pass bool
	// Detail carries the numbers behind the verdict.
	Detail string
}

func check(name string, pass bool, format string, args ...any) ShapeCheck {
	return ShapeCheck{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)}
}

// avg is a must-style accessor for grid averages (0 when undefined).
func avg(g *Grid, method string, metric func(Stats) (float64, bool)) float64 {
	v, _ := g.Avg(method, metric)
	return v
}

// Table2Checks evaluates the main-results shape targets.
func Table2Checks(g *Grid) []ShapeCheck {
	var out []ShapeCheck

	// DataSculpt produces a significantly larger LF set than baselines.
	minDS, maxBase := 1e18, 0.0
	for _, m := range []string{MethodBase, MethodCoT, MethodSC, MethodKATE} {
		if v := avg(g, m, MetricNumLFs); v < minDS {
			minDS = v
		}
	}
	for _, m := range []string{MethodWrench, MethodScriptorium, MethodPromptedLF} {
		if v := avg(g, m, MetricNumLFs); v > maxBase {
			maxBase = v
		}
	}
	out = append(out, check(
		"DataSculpt generates a much larger LF set than every baseline",
		minDS > 1.5*maxBase,
		"min DataSculpt #LFs %.1f vs max baseline %.1f", minDS, maxBase))

	// Self-consistency enlarges the LF set over Base.
	out = append(out, check(
		"Self-consistency (SC) yields more LFs than Base",
		avg(g, MethodSC, MetricNumLFs) > avg(g, MethodBase, MetricNumLFs),
		"SC %.1f vs Base %.1f",
		avg(g, MethodSC, MetricNumLFs), avg(g, MethodBase, MetricNumLFs)))

	// Per-LF coverage: DataSculpt's single-keyword LFs are the narrowest.
	dsCov := avg(g, MethodBase, MetricLFCov)
	out = append(out, check(
		"DataSculpt has the lowest per-LF coverage (single-keyword LFs)",
		dsCov < avg(g, MethodWrench, MetricLFCov) &&
			dsCov < avg(g, MethodScriptorium, MetricLFCov) &&
			dsCov < avg(g, MethodPromptedLF, MetricLFCov),
		"DataSculpt %.4f vs WRENCH %.4f / ScriptoriumWS %.4f / PromptedLF %.4f",
		dsCov, avg(g, MethodWrench, MetricLFCov),
		avg(g, MethodScriptorium, MetricLFCov), avg(g, MethodPromptedLF, MetricLFCov)))

	// LF accuracy: DataSculpt above ScriptoriumWS (paper: +10.9 points).
	out = append(out, check(
		"DataSculpt LF accuracy exceeds ScriptoriumWS",
		avg(g, MethodBase, MetricLFAcc) > avg(g, MethodScriptorium, MetricLFAcc)+0.05,
		"Base %.3f vs ScriptoriumWS %.3f",
		avg(g, MethodBase, MetricLFAcc), avg(g, MethodScriptorium, MetricLFAcc)))

	// End model: DataSculpt-Base beats ScriptoriumWS on every dataset.
	allBeat := true
	var detail []string
	for _, ds := range g.Datasets {
		b, _ := g.Get(MethodBase, ds)
		s, _ := g.Get(MethodScriptorium, ds)
		if b.EM <= s.EM {
			allBeat = false
		}
		detail = append(detail, fmt.Sprintf("%s %.3f/%.3f", ds, b.EM, s.EM))
	}
	out = append(out, check(
		"DataSculpt-Base outperforms ScriptoriumWS on every dataset (EM)",
		allBeat, "base/scriptorium: %s", strings.Join(detail, ", ")))

	// End model: Base within a few points of PromptedLF's average despite
	// the cost gap (paper: +0.9 in DataSculpt's favour).
	diff := avg(g, MethodBase, MetricEM) - avg(g, MethodPromptedLF, MetricEM)
	out = append(out, check(
		"DataSculpt-Base rivals PromptedLF's end-model average (within 5 points)",
		diff > -0.05,
		"Base %.3f vs PromptedLF %.3f (diff %+.3f)",
		avg(g, MethodBase, MetricEM), avg(g, MethodPromptedLF, MetricEM), diff))

	return out
}

// Figure34Checks evaluates the cost-analysis shape targets.
func Figure34Checks(g *Grid) []ShapeCheck {
	var out []ShapeCheck
	baseTokens, plfTokens := 0.0, 0.0
	baseCost, plfCost := 0.0, 0.0
	for _, ds := range g.Datasets {
		if s, ok := g.Get(MethodBase, ds); ok {
			baseTokens += s.TotalTokens()
			baseCost += s.CostUSD
		}
		if s, ok := g.Get(MethodPromptedLF, ds); ok {
			plfTokens += s.TotalTokens()
			plfCost += s.CostUSD
		}
	}
	ratio := 0.0
	if baseTokens > 0 {
		ratio = plfTokens / baseTokens
	}
	out = append(out, check(
		"PromptedLF consumes orders of magnitude more tokens than DataSculpt-Base",
		ratio >= 100,
		"PromptedLF %.0f vs Base %.0f tokens (%.0fx; paper: 170M vs 39k ≈ 4400x)",
		plfTokens, baseTokens, ratio))
	costRatio := 0.0
	if baseCost > 0 {
		costRatio = plfCost / baseCost
	}
	out = append(out, check(
		"PromptedLF costs orders of magnitude more dollars",
		costRatio >= 100,
		"PromptedLF $%.2f vs Base $%.4f (%.0fx; paper: >$250 vs ~$0.06)",
		plfCost, baseCost, costRatio))
	return out
}

// Table3Checks evaluates the LLM-ablation shape targets.
func Table3Checks(g *Grid) []ShapeCheck {
	var out []ShapeCheck
	out = append(out, check(
		"GPT-4 achieves the best LF accuracy",
		avg(g, "gpt-4", MetricLFAcc) >= avg(g, "gpt-3.5", MetricLFAcc) &&
			avg(g, "gpt-4", MetricLFAcc) >= avg(g, "llama2-70b", MetricLFAcc),
		"gpt-4 %.3f, gpt-3.5 %.3f, llama2-70b %.3f",
		avg(g, "gpt-4", MetricLFAcc), avg(g, "gpt-3.5", MetricLFAcc), avg(g, "llama2-70b", MetricLFAcc)))
	out = append(out, check(
		"The small Llama tiers trail the top tiers in LF accuracy",
		avg(g, "llama2-7b", MetricLFAcc) < avg(g, "gpt-4", MetricLFAcc) &&
			avg(g, "llama2-13b", MetricLFAcc) < avg(g, "gpt-4", MetricLFAcc),
		"llama2-7b %.3f, llama2-13b %.3f vs gpt-4 %.3f",
		avg(g, "llama2-7b", MetricLFAcc), avg(g, "llama2-13b", MetricLFAcc), avg(g, "gpt-4", MetricLFAcc)))
	out = append(out, check(
		"GPT-4 end-model average leads GPT-3.5 (paper: +1.5 points)",
		avg(g, "gpt-4", MetricEM) >= avg(g, "gpt-3.5", MetricEM)-0.01,
		"gpt-4 %.3f vs gpt-3.5 %.3f", avg(g, "gpt-4", MetricEM), avg(g, "gpt-3.5", MetricEM)))
	return out
}

// Table4Checks evaluates the sampler-ablation shape targets.
func Table4Checks(g *Grid) []ShapeCheck {
	var out []ShapeCheck
	out = append(out, check(
		"SEU produces the smallest LF set (redundant selections get filtered)",
		avg(g, "seu", MetricNumLFs) < avg(g, "random", MetricNumLFs),
		"seu %.1f vs random %.1f", avg(g, "seu", MetricNumLFs), avg(g, "random", MetricNumLFs)))
	out = append(out, check(
		"Uncertainty sampling has the lowest LF accuracy (hard instances confuse the LLM)",
		avg(g, "uncertain", MetricLFAcc) <= avg(g, "random", MetricLFAcc) &&
			avg(g, "uncertain", MetricLFAcc) <= avg(g, "seu", MetricLFAcc),
		"uncertain %.3f vs random %.3f, seu %.3f",
		avg(g, "uncertain", MetricLFAcc), avg(g, "random", MetricLFAcc), avg(g, "seu", MetricLFAcc)))
	out = append(out, check(
		"Random sampling gives the best end-model average (paper takeaway T3)",
		avg(g, "random", MetricEM) >= avg(g, "uncertain", MetricEM)-0.01 &&
			avg(g, "random", MetricEM) >= avg(g, "seu", MetricEM)-0.01,
		"random %.3f, uncertain %.3f, seu %.3f",
		avg(g, "random", MetricEM), avg(g, "uncertain", MetricEM), avg(g, "seu", MetricEM)))
	return out
}

// Table5Checks evaluates the filter-ablation shape targets.
func Table5Checks(g *Grid) []ShapeCheck {
	var out []ShapeCheck
	out = append(out, check(
		"Removing any filter grows the LF set",
		avg(g, "no accuracy", MetricNumLFs) > avg(g, "all", MetricNumLFs) &&
			avg(g, "no redundancy", MetricNumLFs) > avg(g, "all", MetricNumLFs),
		"all %.1f, no-accuracy %.1f, no-redundancy %.1f",
		avg(g, "all", MetricNumLFs), avg(g, "no accuracy", MetricNumLFs), avg(g, "no redundancy", MetricNumLFs)))
	out = append(out, check(
		"Removing the accuracy filter lowers LF accuracy",
		avg(g, "no accuracy", MetricLFAcc) < avg(g, "all", MetricLFAcc),
		"all %.3f vs no-accuracy %.3f",
		avg(g, "all", MetricLFAcc), avg(g, "no accuracy", MetricLFAcc)))
	out = append(out, check(
		"Removing the accuracy filter hurts the end model",
		avg(g, "no accuracy", MetricEM) < avg(g, "all", MetricEM),
		"all %.3f vs no-accuracy %.3f",
		avg(g, "all", MetricEM), avg(g, "no accuracy", MetricEM)))
	out = append(out, check(
		"The redundancy filter's end-model effect is small/dataset-dependent",
		abs(avg(g, "no redundancy", MetricEM)-avg(g, "all", MetricEM)) < 0.06,
		"all %.3f vs no-redundancy %.3f",
		avg(g, "all", MetricEM), avg(g, "no redundancy", MetricEM)))
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// renderChecks renders a markdown check list.
func renderChecks(checks []ShapeCheck) string {
	var b strings.Builder
	for _, c := range checks {
		mark := "✅"
		if !c.Pass {
			mark = "❌"
		}
		fmt.Fprintf(&b, "- %s %s — %s\n", mark, c.Name, c.Detail)
	}
	return b.String()
}

// MarkdownReport renders the full EXPERIMENTS.md body from the four
// result grids (any of which may be nil to omit its section).
func MarkdownReport(o Options, main, llms, samplers, filters *Grid) string {
	o = o.normalized()
	var b strings.Builder
	b.WriteString("# EXPERIMENTS: paper vs. reproduction\n\n")
	fmt.Fprintf(&b, "Protocol: %d seeds, dataset scale %.2f, %d query iterations, default model %s.\n",
		o.Seeds, o.Scale, o.Iterations, o.Model)
	b.WriteString(`
Generated by ` + "`cmd/benchtab -all -markdown`" + `. Absolute numbers differ
from the paper because every external dependency (LLM APIs, BERT, the
WRENCH corpora) is replaced by the synthetic substrate documented in
DESIGN.md §2; the reproduction targets are the *shapes* — orderings,
ratios and trade-offs — which the check lists below evaluate
programmatically.

`)
	if main != nil {
		b.WriteString("## Table 2 — main comparison\n\n```\n")
		b.WriteString(RenderGrid(main))
		b.WriteString("```\n\nPaper vs. ours (AVG):\n\n```\n")
		b.WriteString(RenderPaperComparison(main, PaperTable2))
		b.WriteString("```\n\nShape checks:\n\n")
		b.WriteString(renderChecks(Table2Checks(main)))
		b.WriteString("\n## Figures 3 and 4 — token usage and API cost\n\n```\n")
		b.WriteString(RenderFigure3(main))
		b.WriteString("\n")
		b.WriteString(RenderFigure4(main))
		b.WriteString("```\n\nShape checks:\n\n")
		b.WriteString(renderChecks(Figure34Checks(main)))
	}
	if llms != nil {
		b.WriteString("\n## Table 3 — LLM ablation (DataSculpt-SC)\n\n```\n")
		b.WriteString(RenderGrid(llms))
		b.WriteString("```\n\nPaper vs. ours (AVG):\n\n```\n")
		b.WriteString(RenderPaperComparison(llms, PaperTable3))
		b.WriteString("```\n\nShape checks:\n\n")
		b.WriteString(renderChecks(Table3Checks(llms)))
	}
	if samplers != nil {
		b.WriteString("\n## Table 4 — query-sampler ablation (DataSculpt-SC)\n\n```\n")
		b.WriteString(RenderGrid(samplers))
		b.WriteString("```\n\nPaper vs. ours (AVG):\n\n```\n")
		b.WriteString(RenderPaperComparison(samplers, PaperTable4))
		b.WriteString("```\n\nShape checks:\n\n")
		b.WriteString(renderChecks(Table4Checks(samplers)))
	}
	if filters != nil {
		b.WriteString("\n## Table 5 — LF-filter ablation (DataSculpt-SC)\n\n```\n")
		b.WriteString(RenderGrid(filters))
		b.WriteString("```\n\nPaper vs. ours (AVG):\n\n```\n")
		b.WriteString(RenderPaperComparison(filters, PaperTable5))
		b.WriteString("```\n\nShape checks:\n\n")
		b.WriteString(renderChecks(Table5Checks(filters)))
	}
	return b.String()
}
