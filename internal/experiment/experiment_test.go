package experiment

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
)

// quickOptions runs tiny sweeps so the test suite stays fast.
func quickOptions() Options {
	return Options{
		Seeds:      1,
		Scale:      0.08,
		Datasets:   []string{"youtube", "sms"},
		Iterations: 15,
	}
}

func TestOptionsNormalized(t *testing.T) {
	o := Options{}.normalized()
	if o.Seeds != 5 || o.Scale != 1 || o.Iterations != 50 || o.Model != "gpt-3.5" {
		t.Errorf("defaults = %+v", o)
	}
	if len(o.Datasets) != 6 || o.Datasets[5] != "spouse" {
		t.Errorf("default datasets = %v, want the paper's six", o.Datasets)
	}
	bad := Options{Scale: 7}.normalized()
	if bad.Scale != 1 {
		t.Errorf("scale 7 normalized to %v", bad.Scale)
	}
}

func TestMeanStats(t *testing.T) {
	rs := []*core.Result{
		{NumLFs: 10, LFAccuracy: 0.8, LFAccuracyKnown: true, LFCoverage: 0.02,
			TotalCoverage: 0.6, EndMetric: 0.9, PromptTokens: 100, CompletionTokens: 10,
			CostUSD: 0.5, MetricName: "accuracy"},
		{NumLFs: 20, LFAccuracy: 0.6, LFAccuracyKnown: true, LFCoverage: 0.04,
			TotalCoverage: 0.8, EndMetric: 0.7, PromptTokens: 200, CompletionTokens: 20,
			CostUSD: 1.5, MetricName: "accuracy"},
	}
	s := meanStats(rs)
	if s.NumLFs != 15 || s.LFAcc != 0.7 || !s.LFAccKnown || s.LFCov != 0.03 ||
		s.TotalCov != 0.7 || s.EM != 0.8 || s.TotalTokens() != 165 || s.CostUSD != 1.0 {
		t.Errorf("mean = %+v", s)
	}
	if s.Runs != 2 {
		t.Errorf("runs = %d", s.Runs)
	}
}

func TestMeanStatsUnknownAccuracy(t *testing.T) {
	rs := []*core.Result{
		{NumLFs: 4, MetricName: "F1"},
		{NumLFs: 6, LFAccuracy: 0.9, LFAccuracyKnown: true, MetricName: "F1"},
	}
	s := meanStats(rs)
	// the average is over the runs where accuracy is defined
	if !s.LFAccKnown || s.LFAcc != 0.9 {
		t.Errorf("accuracy aggregation = %+v", s)
	}
	if s.NumLFs != 5 {
		t.Errorf("numLFs = %v", s.NumLFs)
	}
	if st := meanStats(nil); st.Runs != 0 {
		t.Errorf("empty meanStats = %+v", st)
	}
}

func TestGridAvgSkipsUndefined(t *testing.T) {
	g := newGrid("t", []string{"m"}, []string{"a", "b"})
	g.Set("m", "a", Stats{LFAcc: 0.8, LFAccKnown: true})
	g.Set("m", "b", Stats{LFAccKnown: false}) // e.g. spouse
	avg, ok := g.Avg("m", MetricLFAcc)
	if !ok || avg != 0.8 {
		t.Errorf("avg = %v (%v), want 0.8 over the single defined cell", avg, ok)
	}
	if _, ok := g.Avg("missing", MetricLFAcc); ok {
		t.Error("avg over missing method defined")
	}
}

func TestRenderTable1(t *testing.T) {
	out, err := RenderTable1(Options{Scale: 0.05, Datasets: []string{"youtube"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "youtube") || !strings.Contains(out, "#Train") {
		t.Errorf("table 1 = %q", out)
	}
}

func TestMainResultsQuick(t *testing.T) {
	g, err := MainResults(quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Methods) != 7 {
		t.Fatalf("methods = %v", g.Methods)
	}
	for _, m := range g.Methods {
		for _, ds := range []string{"youtube", "sms"} {
			s, ok := g.Get(m, ds)
			if !ok {
				t.Fatalf("missing cell %s/%s", m, ds)
			}
			if s.Runs != 1 {
				t.Errorf("%s/%s runs = %d", m, ds, s.Runs)
			}
			if s.NumLFs <= 0 {
				t.Errorf("%s/%s has no LFs", m, ds)
			}
			if s.EM < 0 || s.EM > 1 {
				t.Errorf("%s/%s EM = %v", m, ds, s.EM)
			}
		}
	}
	// cost shape: PromptedLF dwarfs every DataSculpt variant
	plf, _ := g.Get(MethodPromptedLF, "youtube")
	base, _ := g.Get(MethodBase, "youtube")
	if plf.TotalTokens() < 3*base.TotalTokens() {
		t.Errorf("promptedLF tokens %v vs base %v at tiny scale", plf.TotalTokens(), base.TotalTokens())
	}
	// WRENCH costs nothing
	wr, _ := g.Get(MethodWrench, "youtube")
	if wr.TotalTokens() != 0 || wr.CostUSD != 0 {
		t.Errorf("WRENCH usage = %v tokens $%v", wr.TotalTokens(), wr.CostUSD)
	}

	// renderers accept the grid
	table := RenderGrid(g)
	for _, want := range []string{"#LFs", "LF Acc.", "Total Cov.", "EM Acc/F1", "AVG", "DataSculpt-SC"} {
		if !strings.Contains(table, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
	fig3 := RenderFigure3(g)
	if !strings.Contains(fig3, "tokens") || !strings.Contains(fig3, "#") {
		t.Errorf("figure 3 = %q", fig3)
	}
	fig4 := RenderFigure4(g)
	if !strings.Contains(fig4, "USD") {
		t.Errorf("figure 4 = %q", fig4)
	}
	cmp := RenderPaperComparison(g, PaperTable2)
	if !strings.Contains(cmp, "paper") || !strings.Contains(cmp, "ours") {
		t.Errorf("comparison = %q", cmp)
	}
}

func TestSamplerAblationQuick(t *testing.T) {
	o := quickOptions()
	o.Datasets = []string{"youtube"}
	g, err := SamplerAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range SamplerNames() {
		if _, ok := g.Get(m, "youtube"); !ok {
			t.Errorf("missing sampler cell %s", m)
		}
	}
}

func TestFilterAblationQuick(t *testing.T) {
	o := quickOptions()
	o.Datasets = []string{"youtube"}
	g, err := FilterAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := g.Get("all", "youtube")
	noAcc, _ := g.Get("no accuracy", "youtube")
	if noAcc.NumLFs < all.NumLFs {
		t.Errorf("no-accuracy LFs %v < all-filters %v", noAcc.NumLFs, all.NumLFs)
	}
}

func TestLLMAblationQuick(t *testing.T) {
	o := quickOptions()
	o.Datasets = []string{"youtube"}
	g, err := LLMAblation(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Methods) != 5 {
		t.Fatalf("models = %v", g.Methods)
	}
	g4, _ := g.Get("gpt-4", "youtube")
	g35, _ := g.Get("gpt-3.5", "youtube")
	// gpt-4 costs more per token; with similar token counts its dollar
	// cost must exceed gpt-3.5's
	if g4.CostUSD <= g35.CostUSD {
		t.Errorf("gpt-4 cost %v <= gpt-3.5 cost %v", g4.CostUSD, g35.CostUSD)
	}
}

func TestPaperAveragesLookup(t *testing.T) {
	p := PaperTable2[MethodBase]
	if v, ok := p.Value("#LFs"); !ok || v != 108.2 {
		t.Errorf("paper #LFs = %v (%v)", v, ok)
	}
	if _, ok := p.Value("nonexistent"); ok {
		t.Error("unknown metric resolved")
	}
	// every main method has a paper reference
	for _, m := range MainMethods() {
		if _, ok := PaperTable2[m]; !ok {
			t.Errorf("no paper averages for %s", m)
		}
	}
}

func TestRunMethodUnknown(t *testing.T) {
	o := quickOptions().normalized()
	g, err := sweep(context.Background(), o, "t", []string{"mystery"},
		func(ctx context.Context, method string, d *dataset.Dataset, seed int) (*core.Result, error) {
			return runMethod(ctx, o, method, d, seed)
		})
	if err == nil {
		t.Errorf("unknown method produced grid %v", g)
	}
}

func TestSweepParallelMatchesSerial(t *testing.T) {
	// The tentpole guarantee: the grid is byte-identical at any worker
	// count because every cell owns its RNGs and results commit by cell
	// index, not completion order.
	serial := quickOptions()
	serial.Seeds = 2
	serial.Workers = 1
	parallel := serial
	parallel.Workers = 8

	gs, err := MainResults(serial)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := MainResults(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gs.Cells, gp.Cells) {
		t.Errorf("parallel grid differs from serial:\nserial:   %+v\nparallel: %+v", gs.Cells, gp.Cells)
	}
}

func TestSweepFailFast(t *testing.T) {
	o := quickOptions().normalized()
	o.Workers = 4
	boom := errors.New("boom")
	_, err := sweep(context.Background(), o, "t", []string{"a", "b"},
		func(ctx context.Context, method string, d *dataset.Dataset, seed int) (*core.Result, error) {
			if method == "b" && d.Name == "sms" {
				return nil, boom
			}
			return &core.Result{Method: method, NumLFs: 1}, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("sweep error = %v, want wrapped boom", err)
	}
	if want := "experiment b/sms seed 1: boom"; err.Error() != want {
		t.Errorf("error = %q, want %q", err.Error(), want)
	}
}

func TestSweepKeepGoing(t *testing.T) {
	o := quickOptions().normalized()
	o.Workers = 4
	o.Seeds = 2
	o.KeepGoing = true
	boom := errors.New("boom")
	g, err := sweep(context.Background(), o, "t", []string{"a", "b"},
		func(ctx context.Context, method string, d *dataset.Dataset, seed int) (*core.Result, error) {
			if method == "b" && d.Name == "sms" && seed == 2 {
				return nil, boom
			}
			return &core.Result{Method: method, NumLFs: 3}, nil
		})
	if err != nil {
		t.Fatalf("KeepGoing surfaced error: %v", err)
	}
	if g.FailedCells() != 1 {
		t.Errorf("failed cells = %d, want 1", g.FailedCells())
	}
	if cellErr := g.Err("b", "sms"); !errors.Is(cellErr, boom) {
		t.Errorf("cell error = %v", cellErr)
	}
	// the broken cell still averages over its surviving seed
	s, ok := g.Get("b", "sms")
	if !ok || s.Runs != 1 {
		t.Errorf("partial cell = %+v (%v), want 1 surviving run", s, ok)
	}
	// untouched cells are complete
	if s, _ := g.Get("a", "youtube"); s.Runs != 2 {
		t.Errorf("healthy cell runs = %d, want 2", s.Runs)
	}
}

func TestSweepContextCanceled(t *testing.T) {
	o := quickOptions().normalized()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sweep(ctx, o, "t", []string{"a"},
		func(ctx context.Context, method string, d *dataset.Dataset, seed int) (*core.Result, error) {
			return nil, ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep error = %v, want context.Canceled", err)
	}
}

func TestSweepWorkerCountIrrelevantForErrors(t *testing.T) {
	// whatever the worker count, fail-fast reports a deterministic error
	// once all in-flight cells drain
	for _, workers := range []int{1, 2, 8} {
		o := quickOptions().normalized()
		o.Workers = workers
		_, err := sweep(context.Background(), o, "t", []string{"x"},
			func(ctx context.Context, method string, d *dataset.Dataset, seed int) (*core.Result, error) {
				return nil, fmt.Errorf("always")
			})
		if err == nil {
			t.Fatalf("workers=%d: sweep swallowed the error", workers)
		}
	}
}
