// Package experiment reproduces every table and figure of the paper's
// evaluation section: multi-seed runners for the main comparison (Table
// 2), the token/cost analysis (Figures 3-4) and the three ablations
// (Tables 3-5), plus text renderers that print the same rows the paper
// reports and the paper's own averages for side-by-side comparison.
package experiment

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/obs"
)

// Options parameterizes an experiment sweep. Zero values select the
// paper's protocol: 5 seeds, full-scale datasets, 50 iterations, GPT-3.5.
type Options struct {
	// Seeds is the number of repetitions averaged per cell (paper: 5).
	Seeds int
	// Scale in (0,1] shrinks the datasets for quick runs (1 = Table 1
	// sizes).
	Scale float64
	// Datasets selects a subset (default: all six, paper order).
	Datasets []string
	// Iterations is the number of DataSculpt query instances (paper: 50).
	Iterations int
	// Model is the default LLM (paper: gpt-3.5).
	Model string
	// Workers bounds how many (method, dataset, seed) cells run
	// concurrently (default: runtime.GOMAXPROCS(0); 1 recovers the old
	// serial behavior). The grid is byte-identical at any worker count —
	// every cell owns its RNGs and simulated endpoint, and results are
	// committed by cell index, not completion order.
	Workers int
	// Parallelism is each cell's intra-run worker count
	// (core.Config.Parallelism). The default is 1 — grid cells already
	// saturate the machine through Workers, and nesting parallelism
	// would oversubscribe it — but a sweep of a few expensive cells can
	// raise it. Results are bit-identical at any setting.
	Parallelism int
	// KeepGoing records per-cell errors in the grid instead of
	// fail-fast cancellation, so one broken cell cannot void an
	// overnight sweep. Failed cells render as zeros; inspect them with
	// Grid.Err.
	KeepGoing bool
	// Checkpoint, when set, appends every completed cell to this JSONL
	// file (see checkpoint.go) so an interrupted sweep can be resumed.
	Checkpoint string
	// ResumeFrom, when set, loads a checkpoint file and skips cells
	// already recorded for this sweep's title; their stored results
	// enter the grid as if just computed. May name the same file as
	// Checkpoint — new cells are then appended after the restored ones.
	ResumeFrom string
	// MaxFailedIterations is passed through to every DataSculpt cell as
	// the pipeline's iteration failure budget (see
	// core.Config.MaxFailedIterations; 0 = strict paper mode).
	MaxFailedIterations int
	// Chaos, when non-nil, wraps every DataSculpt cell's LLM endpoint
	// in a deterministic fault injector under retry middleware (see
	// ChaosConfig). Baseline methods (WRENCH, ScriptoriumWS,
	// PromptedLF) build their endpoints internally and are unaffected.
	Chaos *ChaosConfig
	// Log receives progress lines (nil: silent).
	Log io.Writer
	// Obs is the telemetry bundle for the sweep (nil: all telemetry
	// disabled). The runner emits one `cell` span per (method, dataset,
	// seed) with the pipeline's run span nested underneath, maintains
	// the grid_* live-progress metrics (cells done/failed, per-cell
	// duration histogram, busy-worker gauge) in Obs.Metrics, and logs
	// per-cell completion through Obs.Logger.
	Obs *obs.Obs
}

func (o Options) normalized() Options {
	if o.Seeds <= 0 {
		o.Seeds = 5
	}
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if len(o.Datasets) == 0 {
		// default to the paper's canonical six so the tables stay
		// comparable; bonus datasets (trec) opt in via -datasets
		o.Datasets = dataset.PaperNames()
	}
	if o.Iterations <= 0 {
		o.Iterations = 50
	}
	if o.Model == "" {
		o.Model = "gpt-3.5"
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 1
	}
	if o.Obs == nil {
		o.Obs = obs.Default()
	}
	return o
}

// logMu serializes progress lines from concurrent workers so interleaved
// writes cannot shear a line.
var logMu sync.Mutex

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// datasetSeed derives the corpus seed for repetition s.
func datasetSeed(s int) int64 { return int64(7000 + 13*s) }

// Stats is the per-cell aggregate over seeds: the mean of every Table 2
// metric plus the usage accounting of Figures 3-4.
type Stats struct {
	NumLFs     float64
	LFAcc      float64
	LFAccKnown bool
	LFCov      float64
	TotalCov   float64
	EM         float64
	MetricName string

	PromptTokens     float64
	CompletionTokens float64
	CostUSD          float64
	Runs             int
}

// TotalTokens returns mean prompt+completion tokens per run.
func (s Stats) TotalTokens() float64 { return s.PromptTokens + s.CompletionTokens }

// meanStats averages run results.
func meanStats(rs []*core.Result) Stats {
	var out Stats
	if len(rs) == 0 {
		return out
	}
	n := float64(len(rs))
	accKnown := 0
	for _, r := range rs {
		out.NumLFs += float64(r.NumLFs) / n
		out.LFCov += r.LFCoverage / n
		out.TotalCov += r.TotalCoverage / n
		out.EM += r.EndMetric / n
		out.PromptTokens += float64(r.PromptTokens) / n
		out.CompletionTokens += float64(r.CompletionTokens) / n
		out.CostUSD += r.CostUSD / n
		if r.LFAccuracyKnown {
			out.LFAcc += r.LFAccuracy
			accKnown++
		}
		out.MetricName = r.MetricName
	}
	if accKnown > 0 {
		out.LFAcc /= float64(accKnown)
		out.LFAccKnown = true
	}
	out.Runs = len(rs)
	return out
}

// Grid is a methods × datasets result matrix.
type Grid struct {
	Title    string
	Methods  []string
	Datasets []string
	Cells    map[string]map[string]Stats // method -> dataset -> stats
	// Errors holds per-cell failures recorded under Options.KeepGoing
	// (seed errors of one cell are joined). Cells present in Errors may
	// still carry Stats averaged over the seeds that succeeded.
	Errors map[string]map[string]error
}

func newGrid(title string, methods, datasets []string) *Grid {
	g := &Grid{Title: title, Methods: methods, Datasets: datasets,
		Cells:  make(map[string]map[string]Stats),
		Errors: make(map[string]map[string]error)}
	for _, m := range methods {
		g.Cells[m] = make(map[string]Stats)
		g.Errors[m] = make(map[string]error)
	}
	return g
}

// Set stores a cell.
func (g *Grid) Set(method, ds string, s Stats) { g.Cells[method][ds] = s }

// Get fetches a cell.
func (g *Grid) Get(method, ds string) (Stats, bool) {
	s, ok := g.Cells[method][ds]
	return s, ok
}

// SetErr records a cell failure (KeepGoing mode).
func (g *Grid) SetErr(method, ds string, err error) {
	if g.Errors[method] == nil {
		g.Errors[method] = make(map[string]error)
	}
	g.Errors[method][ds] = err
}

// Err returns the recorded failure of a cell, or nil.
func (g *Grid) Err(method, ds string) error { return g.Errors[method][ds] }

// FailedCells counts cells with a recorded error.
func (g *Grid) FailedCells() int {
	n := 0
	for _, row := range g.Errors {
		n += len(row)
	}
	return n
}

// Avg computes the across-dataset average of one metric for a method,
// skipping datasets where the metric is undefined (LF accuracy on
// Spouse), exactly as the paper's AVG column does.
func (g *Grid) Avg(method string, metric func(Stats) (float64, bool)) (float64, bool) {
	var sum float64
	var n int
	for _, ds := range g.Datasets {
		s, ok := g.Get(method, ds)
		if !ok {
			continue
		}
		if v, defined := metric(s); defined {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Metric accessors shared by renderers and tests.
var (
	// MetricNumLFs extracts the LF-set size.
	MetricNumLFs = func(s Stats) (float64, bool) { return s.NumLFs, true }
	// MetricLFAcc extracts mean LF accuracy where defined.
	MetricLFAcc = func(s Stats) (float64, bool) { return s.LFAcc, s.LFAccKnown }
	// MetricLFCov extracts mean per-LF coverage.
	MetricLFCov = func(s Stats) (float64, bool) { return s.LFCov, true }
	// MetricTotalCov extracts total coverage.
	MetricTotalCov = func(s Stats) (float64, bool) { return s.TotalCov, true }
	// MetricEM extracts end-model accuracy/F1.
	MetricEM = func(s Stats) (float64, bool) { return s.EM, true }
	// MetricTokens extracts mean total tokens.
	MetricTokens = func(s Stats) (float64, bool) { return s.TotalTokens(), true }
	// MetricCost extracts mean dollar cost.
	MetricCost = func(s Stats) (float64, bool) { return s.CostUSD, true }
)
