package experiment

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/llm"
	"datasculpt/internal/obs"
)

// chaosOptions is the shared grid configuration of the chaos tests:
// small enough to run under -race in CI, faulty enough that every run
// exercises retries, truncated responses and garbage completions.
func chaosOptions(reg *obs.Registry) Options {
	return Options{
		Seeds:               2,
		Scale:               0.05,
		Datasets:            []string{"youtube"},
		Iterations:          5,
		Workers:             4,
		MaxFailedIterations: core.UnlimitedFailures,
		Obs:                 obs.New(nil, reg, nil),
		Chaos: &ChaosConfig{
			Rates: llm.FaultRates{RateLimit: 0.15, Timeout: 0.10, Truncate: 0.10, Garbage: 0.05},
			Seed:  42,
		},
	}.normalized()
}

const chaosTitle = "chaos grid"

var chaosMethods = []string{MethodBase, MethodSC}

// chaosSweep runs the standard chaos grid with the given options.
func chaosSweep(ctx context.Context, o Options, run cellFunc) (*Grid, error) {
	if run == nil {
		run = func(ctx context.Context, method string, d *dataset.Dataset, seed int) (*core.Result, error) {
			return runMethod(ctx, o, method, d, seed)
		}
	}
	return sweep(ctx, o, chaosTitle, chaosMethods, run)
}

// TestChaosGridResumeIdentical is the end-to-end fault-tolerance check:
// a grid driven entirely through the fault injector, checkpointed,
// interrupted (both by a torn checkpoint file and by real context
// cancellation mid-sweep), then resumed — and the resumed grid must
// render byte-identically to the uninterrupted one.
func TestChaosGridResumeIdentical(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// phase 1: uninterrupted chaos run, checkpointing as it goes
	regA := obs.NewRegistry()
	oA := chaosOptions(regA)
	oA.Checkpoint = filepath.Join(dir, "a.jsonl")
	gA, err := chaosSweep(ctx, oA, nil)
	if err != nil {
		t.Fatalf("uninterrupted chaos sweep: %v", err)
	}
	want := RenderGrid(gA)
	if n := regA.Counter("faults_injected_total", "").Value(); n == 0 {
		t.Fatal("chaos run injected no faults; the grid never exercised the injector")
	}
	if n := regA.Counter("llm_retries_total", "").Value(); n == 0 {
		t.Fatal("chaos run performed no retries; rate-limit/timeout faults were not absorbed")
	}

	checkpointed, err := LoadCheckpoint(oA.Checkpoint)
	if err != nil {
		t.Fatalf("loading checkpoint: %v", err)
	}
	wantCells := len(chaosMethods) * oA.Seeds
	if len(checkpointed) != wantCells {
		t.Fatalf("checkpoint holds %d cells, want %d", len(checkpointed), wantCells)
	}

	// phase 2: simulate a crash — keep only the first two records plus a
	// torn partial line, then resume from the damaged file
	data, err := os.ReadFile(oA.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	torn := lines[0] + lines[1] + `{"grid":"chaos grid","method":"DataScu`
	tornPath := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(tornPath, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	regB := obs.NewRegistry()
	oB := chaosOptions(regB)
	oB.ResumeFrom = tornPath
	gB, err := chaosSweep(ctx, oB, nil)
	if err != nil {
		t.Fatalf("resumed chaos sweep: %v", err)
	}
	if got := RenderGrid(gB); got != want {
		t.Errorf("grid resumed from torn checkpoint differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if n := regB.Counter("grid_cells_resumed_total", "").Value(); n != 2 {
		t.Errorf("grid_cells_resumed_total = %v, want 2 (torn third record must be recomputed)", n)
	}

	// phase 3: a real interruption — cancel the sweep after two cells
	// have completed, then resume from the checkpoint it left behind
	regC := obs.NewRegistry()
	oC := chaosOptions(regC)
	oC.Workers = 1 // serialize so the cancellation point is deterministic
	oC.Checkpoint = filepath.Join(dir, "c.jsonl")
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()
	var calls atomic.Int64
	_, err = chaosSweep(ictx, oC, func(ctx context.Context, method string, d *dataset.Dataset, seed int) (*core.Result, error) {
		if calls.Add(1) > 2 {
			cancel()
			return nil, ctx.Err()
		}
		return runMethod(ctx, oC, method, d, seed)
	})
	if err == nil {
		t.Fatal("interrupted sweep returned no error")
	}
	partial, err := LoadCheckpoint(oC.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) != 2 {
		t.Fatalf("interrupted checkpoint holds %d cells, want 2", len(partial))
	}

	regD := obs.NewRegistry()
	oD := chaosOptions(regD)
	oD.ResumeFrom = oC.Checkpoint
	oD.Checkpoint = filepath.Join(dir, "d.jsonl") // fresh file: restored cells written through
	gD, err := chaosSweep(ctx, oD, nil)
	if err != nil {
		t.Fatalf("sweep resumed after interruption: %v", err)
	}
	if got := RenderGrid(gD); got != want {
		t.Errorf("grid resumed after interruption differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if n := regD.Counter("grid_cells_resumed_total", "").Value(); n != 2 {
		t.Errorf("grid_cells_resumed_total = %v, want 2", n)
	}
	// the write-through checkpoint must now be complete
	full, err := LoadCheckpoint(oD.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != wantCells {
		t.Errorf("write-through checkpoint holds %d cells, want %d", len(full), wantCells)
	}
}

// TestChaosDeterministicAcrossWorkers asserts the chaos fault schedule
// is a function of cell coordinates, not scheduling: the same chaotic
// grid at 1 worker and at 4 renders identically.
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		o := chaosOptions(obs.NewRegistry())
		o.Workers = workers
		g, err := chaosSweep(context.Background(), o, nil)
		if err != nil {
			t.Fatalf("chaos sweep with %d workers: %v", workers, err)
		}
		return RenderGrid(g)
	}
	if serial, pooled := render(1), render(4); serial != pooled {
		t.Errorf("chaos grid differs between 1 and 4 workers:\n--- serial ---\n%s\n--- pooled ---\n%s", serial, pooled)
	}
}

// TestLoadCheckpointTolerance covers the crash-artifact cases the
// loader must accept and the corruption it must reject.
func TestLoadCheckpointTolerance(t *testing.T) {
	dir := t.TempDir()

	if recs, err := LoadCheckpoint(filepath.Join(dir, "missing.jsonl")); err != nil || recs != nil {
		t.Errorf("missing file: got %v records, err %v; want nil, nil", recs, err)
	}

	good := `{"grid":"g","method":"m","dataset":"d","seed":1,"result":{"num_lfs":3}}` + "\n"
	tornPath := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(tornPath, []byte(good+`{"grid":"g","met`), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadCheckpoint(tornPath)
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	if len(recs) != 1 || recs[0].Result.NumLFs != 3 {
		t.Errorf("torn file: got %+v, want the one intact record", recs)
	}

	corruptPath := filepath.Join(dir, "corrupt.jsonl")
	if err := os.WriteFile(corruptPath, []byte(`nonsense`+"\n"+good), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(corruptPath); err == nil {
		t.Error("malformed line followed by more data must be an error")
	}
}
