package experiment

import (
	"strings"
	"testing"
)

// syntheticMainGrid builds a grid with paper-shaped numbers so the shape
// checks can be exercised without running pipelines.
func syntheticMainGrid(good bool) *Grid {
	g := newGrid("t", MainMethods(), []string{"youtube", "sms"})
	set := func(m string, numLFs, lfAcc, lfCov, em, tokens float64) {
		for _, ds := range g.Datasets {
			g.Set(m, ds, Stats{
				NumLFs: numLFs, LFAcc: lfAcc, LFAccKnown: true, LFCov: lfCov,
				TotalCov: 0.7, EM: em, MetricName: "accuracy",
				PromptTokens: tokens, CostUSD: tokens / 1e6, Runs: 1,
			})
		}
	}
	set(MethodWrench, 19, 0.81, 0.24, 0.73, 0)
	set(MethodScriptorium, 19, 0.69, 0.72, 0.67, 2000)
	set(MethodPromptedLF, 19, 0.85, 0.31, 0.76, 30e6)
	if good {
		set(MethodBase, 108, 0.80, 0.02, 0.77, 40000)
		set(MethodCoT, 96, 0.79, 0.02, 0.75, 50000)
		set(MethodSC, 175, 0.79, 0.018, 0.76, 400000)
		set(MethodKATE, 203, 0.78, 0.011, 0.77, 420000)
	} else {
		// degenerate: tiny LF sets, cheaper PromptedLF — checks must fail
		set(MethodBase, 12, 0.60, 0.5, 0.55, 40e6)
		set(MethodCoT, 12, 0.60, 0.5, 0.55, 40e6)
		set(MethodSC, 10, 0.60, 0.5, 0.55, 40e6)
		set(MethodKATE, 12, 0.60, 0.5, 0.55, 40e6)
	}
	return g
}

func TestTable2ChecksPaperShapedGrid(t *testing.T) {
	for _, c := range Table2Checks(syntheticMainGrid(true)) {
		if !c.Pass {
			t.Errorf("check %q failed on paper-shaped grid: %s", c.Name, c.Detail)
		}
	}
	for _, c := range Figure34Checks(syntheticMainGrid(true)) {
		if !c.Pass {
			t.Errorf("figure check %q failed on paper-shaped grid: %s", c.Name, c.Detail)
		}
	}
}

func TestTable2ChecksDetectDegenerateGrid(t *testing.T) {
	failed := 0
	for _, c := range Table2Checks(syntheticMainGrid(false)) {
		if !c.Pass {
			failed++
		}
	}
	if failed == 0 {
		t.Error("no check failed on the degenerate grid")
	}
	figFailed := 0
	for _, c := range Figure34Checks(syntheticMainGrid(false)) {
		if !c.Pass {
			figFailed++
		}
	}
	if figFailed == 0 {
		t.Error("no figure check failed on the degenerate grid")
	}
}

func TestAblationChecks(t *testing.T) {
	// Table 3 grid with the paper's ordering
	g3 := newGrid("t3", LLMNames(), []string{"youtube"})
	for name, vals := range map[string][2]float64{
		"gpt-3.5":    {0.788, 0.765},
		"gpt-4":      {0.836, 0.780},
		"llama2-7b":  {0.722, 0.708},
		"llama2-13b": {0.712, 0.727},
		"llama2-70b": {0.777, 0.739},
	} {
		g3.Set(name, "youtube", Stats{LFAcc: vals[0], LFAccKnown: true, EM: vals[1], Runs: 1})
	}
	for _, c := range Table3Checks(g3) {
		if !c.Pass {
			t.Errorf("table 3 check %q failed: %s", c.Name, c.Detail)
		}
	}

	g4 := newGrid("t4", SamplerNames(), []string{"youtube"})
	g4.Set("random", "youtube", Stats{NumLFs: 175, LFAcc: 0.788, LFAccKnown: true, EM: 0.765})
	g4.Set("uncertain", "youtube", Stats{NumLFs: 173, LFAcc: 0.749, LFAccKnown: true, EM: 0.762})
	g4.Set("seu", "youtube", Stats{NumLFs: 71, LFAcc: 0.798, LFAccKnown: true, EM: 0.733})
	for _, c := range Table4Checks(g4) {
		if !c.Pass {
			t.Errorf("table 4 check %q failed: %s", c.Name, c.Detail)
		}
	}

	g5 := newGrid("t5", FilterNames(), []string{"youtube"})
	g5.Set("all", "youtube", Stats{NumLFs: 175, LFAcc: 0.788, LFAccKnown: true, EM: 0.765})
	g5.Set("no accuracy", "youtube", Stats{NumLFs: 247, LFAcc: 0.693, LFAccKnown: true, EM: 0.679})
	g5.Set("no redundancy", "youtube", Stats{NumLFs: 236, LFAcc: 0.807, LFAccKnown: true, EM: 0.737})
	for _, c := range Table5Checks(g5) {
		if !c.Pass {
			t.Errorf("table 5 check %q failed: %s", c.Name, c.Detail)
		}
	}
}

func TestMarkdownReport(t *testing.T) {
	main := syntheticMainGrid(true)
	report := MarkdownReport(Options{Seeds: 5, Scale: 1}, main, nil, nil, nil)
	for _, want := range []string{
		"# EXPERIMENTS", "## Table 2", "Shape checks", "Figures 3 and 4", "✅",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// nil grids omit their sections
	if strings.Contains(report, "Table 3") {
		t.Error("nil LLM grid still rendered")
	}
}
