package experiment

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the committed golden files from current rendering
// output: go test ./internal/experiment/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current render output")

// fixtureMainGrid builds a deterministic Table 2-style grid with the
// paper's method rows, hand-written plausible numbers, one missing cell
// and one error cell — so the golden files pin every rendering branch
// ("?", "-", AVG skipping).
func fixtureMainGrid() *Grid {
	g := newGrid("Table 2: Performance comparison (fixture)", MainMethods(), []string{"youtube", "sms", "spouse"})
	type row struct {
		method string
		nLFs   float64
		acc    float64
		cov    float64
		total  float64
		em     float64
		tokens float64
		cost   float64
	}
	rows := []row{
		{MethodWrench, 10, 0.852, 0.131, 0.812, 0.871, 0, 0},
		{MethodScriptorium, 7, 0.701, 0.205, 0.851, 0.792, 21000, 0.043},
		{MethodPromptedLF, 1, 0.841, 1.000, 1.000, 0.902, 2400000, 4.83},
		{MethodBase, 31, 0.817, 0.042, 0.752, 0.883, 39000, 0.078},
		{MethodCoT, 29, 0.823, 0.045, 0.741, 0.879, 52000, 0.104},
		{MethodSC, 47, 0.829, 0.040, 0.791, 0.901, 310000, 0.622},
		{MethodKATE, 35, 0.834, 0.041, 0.768, 0.894, 61000, 0.123},
	}
	for _, r := range rows {
		for i, ds := range g.Datasets {
			// Skew per dataset so columns differ but stay deterministic.
			f := 1 + 0.1*float64(i)
			s := Stats{
				NumLFs: r.nLFs * f, LFAcc: r.acc / f, LFAccKnown: ds != "spouse",
				LFCov: r.cov / f, TotalCov: r.total / f, EM: r.em / f,
				MetricName:   "accuracy",
				PromptTokens: r.tokens * f * 0.8, CompletionTokens: r.tokens * f * 0.2,
				CostUSD: r.cost * f, Runs: 5,
			}
			if ds == "spouse" {
				s.MetricName = "f1"
				s.LFAcc = 0
			}
			g.Set(r.method, ds, s)
		}
	}
	// A cell that never ran renders as "?", and an error cell exercises
	// the KeepGoing bookkeeping.
	delete(g.Cells[MethodWrench], "sms")
	g.SetErr(MethodCoT, "spouse", errors.New("cell failed: injected fault"))
	return g
}

// fixtureAblationGrid builds a small ablation grid over the given row
// names (LLM tiers, samplers, or filter settings).
func fixtureAblationGrid(title string, rowNames []string, base float64) *Grid {
	g := newGrid(title, rowNames, []string{"youtube", "sms"})
	for i, m := range rowNames {
		for j, ds := range g.Datasets {
			f := 1 + 0.07*float64(i) + 0.11*float64(j)
			g.Set(m, ds, Stats{
				NumLFs: base * f, LFAcc: 0.7 + 0.02*float64(i), LFAccKnown: true,
				LFCov: 0.05 / f, TotalCov: 0.7 * f / (1 + 0.11*float64(j)), EM: 0.8 + 0.01*float64(i),
				MetricName:   "accuracy",
				PromptTokens: 30000 * f, CompletionTokens: 8000 * f,
				CostUSD: 0.06 * f, Runs: 5,
			})
		}
	}
	return g
}

func fixtureGrids() (main, llms, samplers, filters *Grid) {
	main = fixtureMainGrid()
	llms = fixtureAblationGrid("Table 3: LLM ablation (fixture)",
		[]string{"gpt-3.5", "gpt-4", "llama2-7b", "llama2-13b", "llama2-70b"}, 40)
	samplers = fixtureAblationGrid("Table 4: sampler ablation (fixture)",
		[]string{"random", "uncertain", "seu"}, 45)
	filters = fixtureAblationGrid("Table 5: filter ablation (fixture)",
		[]string{"all", "no accuracy", "no redundancy"}, 35)
	return
}

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from its golden file.\n--- got ---\n%s\n--- want ---\n%s\n(run with -update to accept)",
			name, got, want)
	}
}

func TestGoldenRenderGrid(t *testing.T) {
	checkGolden(t, "render_grid", RenderGrid(fixtureMainGrid()))
}

func TestGoldenRenderFigure3(t *testing.T) {
	checkGolden(t, "render_figure3", RenderFigure3(fixtureMainGrid()))
}

func TestGoldenRenderFigure4(t *testing.T) {
	checkGolden(t, "render_figure4", RenderFigure4(fixtureMainGrid()))
}

func TestGoldenRenderPaperComparison(t *testing.T) {
	checkGolden(t, "render_paper_comparison", RenderPaperComparison(fixtureMainGrid(), PaperTable2))
}

func TestGoldenMarkdownReport(t *testing.T) {
	main, llms, samplers, filters := fixtureGrids()
	o := Options{Seeds: 5, Scale: 0.25, Iterations: 50, Model: "gpt-3.5"}
	checkGolden(t, "markdown_report", MarkdownReport(o, main, llms, samplers, filters))
}

// TestGoldenMarkdownReportPartial pins the nil-grid sections: a report
// with only the main grid must omit the ablation sections entirely.
func TestGoldenMarkdownReportPartial(t *testing.T) {
	o := Options{Seeds: 5, Scale: 0.25, Iterations: 50, Model: "gpt-3.5"}
	checkGolden(t, "markdown_report_partial", MarkdownReport(o, fixtureMainGrid(), nil, nil, nil))
}
