package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"sort"
	"time"

	"datasculpt/internal/dataset"
	"datasculpt/internal/endmodel"
	"datasculpt/internal/labelmodel"
	"datasculpt/internal/lf"
	"datasculpt/internal/llm"
	"datasculpt/internal/metrics"
	"datasculpt/internal/obs"
	"datasculpt/internal/prompt"
	"datasculpt/internal/sampler"
	"datasculpt/internal/textproc"
)

// pipelineMetrics holds the registry handles the run loop updates. The
// handles are resolved once per run; with a nil registry every handle
// is nil and every update is a free no-op.
type pipelineMetrics struct {
	runs              *obs.Counter
	iterations        *obs.Counter
	parseFailures     *obs.Counter
	iterationFailures *obs.Counter
	lfsKept           *obs.Counter
	lfsPerIter        *obs.Histogram
}

func newPipelineMetrics(reg *obs.Registry) pipelineMetrics {
	return pipelineMetrics{
		runs:          reg.Counter("pipeline_runs_total", "pipeline runs started"),
		iterations:    reg.Counter("pipeline_iterations_total", "query iterations executed"),
		parseFailures: reg.Counter("pipeline_parse_failures_total", "LLM responses the parser rejected entirely"),
		iterationFailures: reg.Counter("pipeline_iteration_failures_total",
			"iterations abandoned because the LLM call failed after retries"),
		lfsKept:    reg.Counter("pipeline_lfs_kept_total", "candidate LFs that survived the filter chain"),
		lfsPerIter: reg.Histogram("pipeline_lfs_kept_per_iteration", "LFs kept per query iteration", obs.SmallCountBuckets),
	}
}

// evalMetrics holds the registry handles of the evaluation engine: how
// much work the incremental vote matrix and the EM warm start avoid, and
// wall-clock timers for the stages the Parallelism knob accelerates.
// Like pipelineMetrics, every handle is a free no-op under a nil
// registry.
type evalMetrics struct {
	colsBuilt       *obs.Counter
	colsReused      *obs.Counter
	vmRebuilds      *obs.Counter
	lmFits          *obs.Counter
	warmStarts      *obs.Counter
	emIters         *obs.Histogram
	interimHits     *obs.Counter
	interimFailures *obs.Counter
	trainProba      *obs.Histogram
	interim         *obs.Histogram
	finalEval       *obs.Histogram
}

func newEvalMetrics(reg *obs.Registry) evalMetrics {
	return evalMetrics{
		colsBuilt:  reg.Counter("eval_vote_columns_built_total", "LF vote columns evaluated against the train split"),
		colsReused: reg.Counter("eval_vote_columns_reused_total", "LF vote columns served from the incremental matrix cache"),
		vmRebuilds: reg.Counter("eval_vote_matrix_rebuilds_total",
			"full vote-matrix rebuilds forced by a non-append-only LF set change"),
		lmFits:     reg.Counter("eval_labelmodel_fits_total", "label-model fits executed"),
		warmStarts: reg.Counter("eval_em_warm_starts_total", "label-model fits seeded from the previous fit's parameters"),
		emIters: reg.Histogram("eval_em_iterations", "EM iterations per label-model fit (warm starts shrink this)",
			obs.IterationBuckets),
		interimHits: reg.Counter("eval_interim_cache_hits_total",
			"interim refreshes served from cache because the LF set was unchanged"),
		interimFailures: reg.Counter("eval_interim_failures_total",
			"interim refreshes that failed, degrading model-driven samplers to stale scores"),
		trainProba: reg.Histogram("eval_train_proba_seconds", "train-split aggregation wall clock", obs.DurationBuckets),
		interim:    reg.Histogram("eval_interim_seconds", "interim model refresh wall clock", obs.DurationBuckets),
		finalEval:  reg.Histogram("eval_final_seconds", "final evaluation wall clock", obs.DurationBuckets),
	}
}

// Run executes the full DataSculpt pipeline on one dataset with one
// configuration: the 50-iteration LF-generation loop followed by label
// model aggregation, end-model training and evaluation. It is
// RunContext with context.Background().
func Run(d *dataset.Dataset, cfg Config) (*Result, error) {
	return RunContext(context.Background(), d, cfg)
}

// RunContext is Run with cancellation: the ctx is threaded into every
// LLM call and checked between iterations, so a canceled experiment
// stops promptly even mid-loop (and a real endpoint's in-flight HTTP
// request is aborted).
//
// Telemetry: when an obs bundle travels on the ctx (obs.NewContext),
// the run emits a `run` span with one `iteration` child per query
// iteration and per-stage grandchildren (select, prompt, parse, filter,
// interim — plus revise and aggregate under the run span), streams the
// pipeline_* and llm_* metrics into the bundle's registry while the run
// is in flight, and logs structured events through the bundle's logger.
// Without a bundle every instrumentation point is a no-op and the loop
// allocates nothing extra. Callers injecting a pre-instrumented
// cfg.ChatModel should not pass the same registry on the ctx, or LLM
// traffic is double-counted.
func RunContext(ctx context.Context, d *dataset.Dataset, cfg Config) (res *Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	o := obs.FromContext(ctx)
	pm := newPipelineMetrics(o.Metrics)
	pm.runs.Inc()
	span := o.StartSpan(ctx, "run")
	span.SetStr("dataset", d.Name)
	span.SetStr("variant", string(cfg.Variant))
	span.SetStr("model", cfg.Model)
	span.SetInt("iterations", int64(cfg.Iterations))
	defer func() {
		if err != nil {
			span.SetErr(err)
		} else if res != nil {
			span.SetInt("lfs_kept", int64(res.NumLFs))
			span.SetInt("prompt_tokens", int64(res.PromptTokens))
			span.SetInt("completion_tokens", int64(res.CompletionTokens))
		}
		span.End()
	}()
	rng := rand.New(rand.NewSource(cfg.Seed))

	model := cfg.ChatModel
	if model == nil {
		sim, err := llm.NewSimulated(cfg.Model, d, cfg.Seed+101)
		if err != nil {
			return nil, err
		}
		model = sim
	}
	if cfg.WrapModel != nil {
		model = cfg.WrapModel(model)
	}
	if o.Metrics != nil {
		// Live llm_* accounting for this run. The wrapper sits above any
		// injected cache middleware, so the registry's token and cost
		// totals stay exactly equal to the usage the Result reports.
		model = llm.NewMetered(model).Instrument(o.Metrics)
	}
	meter := llm.NewMeter(model)

	feat := textproc.NewFeaturizer(cfg.FeatureDim)
	feat.Workers = cfg.Parallelism
	if err := feat.Fit(dataset.FeatureCorpus(d.Train)); err != nil {
		return nil, fmt.Errorf("core: fitting featurizer: %w", err)
	}
	trainIx := lf.NewIndex(d.Train)
	validIx := lf.NewIndex(d.Valid)
	chain := lf.NewFilterChainIndexed(d, cfg.Filters, trainIx, validIx)

	var selector prompt.ExampleSelector
	if cfg.usesKATE() {
		selector, err = prompt.NewKATEWithOptions(d, feat, prompt.KATEOptions{
			ANNThreshold:        cfg.ANNThreshold,
			CandidateMultiplier: cfg.ANNMultiplier,
			Seed:                cfg.Seed + 31,
			Workers:             cfg.Parallelism,
			Metrics:             o.Metrics,
		})
	} else {
		selector, err = prompt.NewClassBalanced(d, cfg.Shots, cfg.Seed+7)
	}
	if err != nil {
		return nil, err
	}

	smp, ok := sampler.ByName(cfg.Sampler)
	if !ok {
		return nil, fmt.Errorf("core: unknown sampler %q", cfg.Sampler)
	}
	state := &sampler.State{
		Dataset:    d,
		Used:       make([]bool, len(d.Train)),
		TrainIndex: trainIx,
		ValidIndex: validIx,
		Workers:    cfg.Parallelism,
		Metrics:    o.Metrics,
	}
	needsInterim := cfg.Sampler == "uncertain" || cfg.Sampler == "qbc"

	style := prompt.Base
	if cfg.usesCoT() {
		style = prompt.CoT
	}
	nSamples := cfg.samplesPerQuery()

	ev := &evaluator{
		d: d, feat: feat, trainIx: trainIx, validIx: validIx, cfg: cfg,
		workers: cfg.Parallelism, em: newEvalMetrics(o.Metrics), metrics: o.Metrics,
	}
	defer ev.close()
	if cfg.Sampler == "coreset" {
		state.TrainVecs = ev.trainVectors()
	}
	parseFailures := 0
	failedIterations := 0
	logDebug := o.Logger.Enabled(ctx, slog.LevelDebug)

	for it := 0; it < cfg.Iterations; it++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: iteration %d: %w", it, err)
		}
		itSpan := span.Child("iteration")
		itSpan.SetInt("iteration", int64(it))

		selSpan := itSpan.Child("select")
		id := smp.Next(state, rng)
		if id < 0 {
			selSpan.End()
			itSpan.SetStr("stop", "pool exhausted")
			itSpan.End()
			break // pool exhausted
		}
		state.Used[id] = true
		query := d.Train[id]
		demos := selector.Select(query, cfg.Shots)
		msgs := prompt.Render(style, d, demos, query)
		selSpan.End()
		itSpan.SetInt("query_id", int64(id))

		promptSpan := itSpan.Child("prompt")
		responses, err := model.Chat(ctx, msgs, cfg.Temperature, nSamples)
		if err != nil {
			promptSpan.SetErr(err)
			promptSpan.End()
			itSpan.SetErr(err)
			itSpan.End()
			if ctx.Err() != nil {
				// a canceled run is an abort, never a degraded iteration
				return nil, fmt.Errorf("core: iteration %d: %w", it, err)
			}
			failedIterations++
			pm.iterationFailures.Inc()
			budget := cfg.MaxFailedIterations
			if budget == 0 || (budget > 0 && failedIterations > budget) {
				return nil, fmt.Errorf("core: iteration %d: %w (%d failed iterations, budget %d)",
					it, err, failedIterations, budget)
			}
			o.Logger.LogAttrs(ctx, slog.LevelWarn, "iteration failed",
				slog.Int("iteration", it), slog.Int("query_id", id),
				slog.Int("failed_iterations", failedIterations),
				slog.String("error", err.Error()))
			continue
		}
		meter.Record(responses)
		var promptTok, completionTok int
		for _, r := range responses {
			promptTok += r.Usage.PromptTokens
			completionTok += r.Usage.CompletionTokens
		}
		promptSpan.SetInt("prompt_tokens", int64(promptTok))
		promptSpan.SetInt("completion_tokens", int64(completionTok))
		promptSpan.End()
		itSpan.SetInt("prompt_tokens", int64(promptTok))
		itSpan.SetInt("completion_tokens", int64(completionTok))
		pm.iterations.Inc()

		parseSpan := itSpan.Child("parse")
		var parsed *prompt.Parsed
		if nSamples == 1 {
			parsed, err = prompt.ParseResponse(responses[0].Content)
		} else {
			contents := make([]string, len(responses))
			for i, r := range responses {
				contents[i] = r.Content
			}
			parsed, err = prompt.SelfConsistency(contents)
		}
		if err != nil {
			parseSpan.SetErr(err)
			parseSpan.End()
			itSpan.SetInt("candidates", 0)
			itSpan.SetInt("kept", 0)
			itSpan.End()
			parseFailures++
			pm.parseFailures.Inc()
			pm.lfsPerIter.Observe(0)
			if logDebug {
				o.Logger.LogAttrs(ctx, slog.LevelDebug, "parse failure",
					slog.Int("iteration", it), slog.Int("query_id", id),
					slog.String("error", err.Error()))
			}
			continue
		}
		parseSpan.End()

		filterSpan := itSpan.Child("filter")
		kept := 0
		for _, kw := range parsed.Keywords {
			if f, _ := chain.Offer(kw, parsed.Label); f != nil {
				kept++
			}
		}
		filterSpan.End()
		itSpan.SetInt("candidates", int64(len(parsed.Keywords)))
		itSpan.SetInt("kept", int64(kept))
		pm.lfsKept.AddInt(kept)
		pm.lfsPerIter.Observe(float64(kept))

		// Refresh the interim model behind model-driven samplers. A
		// failed refresh degrades the sampler to stale (or no) scores
		// rather than aborting the run, but never silently: the span
		// records the error, the log says which iteration degraded, and
		// eval_interim_failures_total counts it.
		if needsInterim && (it+1)%cfg.UncertainRefreshEvery == 0 {
			interimSpan := itSpan.Child("interim")
			if endProba, lmProba, err := ev.interimTrainProba(chain.Accepted(), rng); err == nil {
				state.TrainProba = endProba
				state.LabelProba = lmProba
			} else {
				interimSpan.SetErr(err)
				ev.em.interimFailures.Inc()
				o.Logger.LogAttrs(ctx, slog.LevelWarn, "interim refresh failed",
					slog.Int("iteration", it), slog.Int("query_id", id),
					slog.String("error", err.Error()))
			}
			interimSpan.End()
		}
		itSpan.End()
		if logDebug {
			o.Logger.LogAttrs(ctx, slog.LevelDebug, "iteration",
				slog.Int("iteration", it), slog.Int("query_id", id),
				slog.Int("candidates", len(parsed.Keywords)), slog.Int("kept", kept),
				slog.Int("prompt_tokens", promptTok), slog.Int("completion_tokens", completionTok))
		}
	}

	if cfg.ReviseRejected {
		reviseSpan := span.Child("revise")
		rv := &reviser{
			d: d, validIx: validIx, selector: selector,
			style: style, model: model, meter: meter, cfg: &cfg,
		}
		prompts, added, err := rv.revise(ctx, chain, rng, cfg.MaxRevisions)
		reviseSpan.SetInt("prompts", int64(prompts))
		reviseSpan.SetInt("added", int64(added))
		if err != nil {
			err = fmt.Errorf("core: revision pass: %w", err)
			reviseSpan.SetErr(err)
			reviseSpan.End()
			return nil, err
		}
		reviseSpan.End()
	}

	aggSpan := span.Child("aggregate")
	res, err = ev.evaluate(chain.Accepted())
	if err != nil {
		aggSpan.SetErr(err)
		aggSpan.End()
		return nil, err
	}
	res.Dataset = d.Name
	res.Method = fmt.Sprintf("datasculpt-%s", cfg.Variant)
	res.ParseFailures = parseFailures
	res.FailedIterations = failedIterations
	res.Rejections = chain.Rejections()
	usage := meter.Snapshot()
	res.Calls = usage.Calls
	res.PromptTokens = usage.PromptTokens
	res.CompletionTokens = usage.CompletionTokens
	res.CostUSD = usage.CostUSD
	aggSpan.SetInt("num_lfs", int64(res.NumLFs))
	aggSpan.End()
	o.Logger.LogAttrs(ctx, slog.LevelInfo, "run complete",
		slog.String("dataset", res.Dataset), slog.String("method", res.Method),
		slog.Int("lfs", res.NumLFs), slog.String("metric", res.MetricName),
		slog.Float64("value", res.EndMetric), slog.Int("calls", res.Calls),
		slog.Int("tokens", res.TotalTokens()), slog.Float64("cost_usd", res.CostUSD),
		slog.Int("parse_failures", res.ParseFailures),
		slog.Int("failed_iterations", res.FailedIterations))
	return res, nil
}

// EvaluateLFSet computes the Table 2 statistics for an externally
// produced LF set (the WRENCH / ScriptoriumWS / PromptedLF baselines):
// vote-matrix statistics, label-model aggregation, end-model training and
// the test metric. Token accounting is the caller's responsibility.
func EvaluateLFSet(d *dataset.Dataset, lfs []lf.LabelFunction, cfg Config) (*Result, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	feat := textproc.NewFeaturizer(cfg.FeatureDim)
	feat.Workers = cfg.Parallelism
	if err := feat.Fit(dataset.FeatureCorpus(d.Train)); err != nil {
		return nil, fmt.Errorf("core: fitting featurizer: %w", err)
	}
	ev := &evaluator{
		d: d, feat: feat, trainIx: lf.NewIndex(d.Train), cfg: cfg,
		workers: cfg.Parallelism, em: newEvalMetrics(nil),
	}
	defer ev.close()
	res, err := ev.evaluate(lfs)
	if err != nil {
		return nil, err
	}
	res.Dataset = d.Name
	return res, nil
}

// evaluator holds the shared state for final and interim evaluations.
// It is the pipeline's incremental evaluation engine: the train vote
// matrix is cached and grown append-only (the LF set only ever grows
// during a run), the MeTaL label model warm-starts each fit from the
// previous one, and interim posteriors are reused outright when the LF
// set has not changed since the last refresh.
type evaluator struct {
	d       *dataset.Dataset
	feat    *textproc.Featurizer
	trainIx *lf.Index
	// validIx is the shared validation index the weighted label model
	// measures accuracies against; built lazily when the pipeline did
	// not hand one over (EvaluateLFSet), and reused across every fit.
	validIx *lf.Index
	cfg     Config
	workers int
	em      evalMetrics
	// metrics is the run's registry (nil outside instrumented runs); the
	// spilling vote matrix streams eval_votematrix_spill_* into it.
	metrics *obs.Registry

	trainVecs []*textproc.SparseVector // lazily built

	// Incremental train vote matrix and the LF names it was built from.
	vm *lf.VoteMatrix
	// prevMetal seeds the next MeTaL fit (nil until the first fit).
	prevMetal *labelmodel.MeTaL
	// Interim cache: posteriors from the last interimTrainProba, valid
	// while the LF set keeps the same length (append-only ⇒ unchanged).
	interimLFs int
	interimEnd [][]float64
	interimLM  [][]float64

	// wrapLabelModel, when non-nil, decorates the label model before use
	// (test hook for counting fits).
	wrapLabelModel func(labelmodel.LabelModel) labelmodel.LabelModel
}

// voteMatrix returns the train vote matrix for lfs, reusing every column
// already evaluated. The cache key is the append-only invariant itself:
// lfs must extend (by name, in order) the set the cached matrix was
// built from. Any other shape — shrunk, reordered, renamed — forces a
// full rebuild, so correctness never depends on the invariant holding.
func (ev *evaluator) voteMatrix(lfs []lf.LabelFunction) *lf.VoteMatrix {
	if ev.vm == nil {
		ev.vm = ev.newVoteMatrix()
	}
	reused := ev.vm.NumLFs()
	prefixOK := len(lfs) >= reused
	if prefixOK {
		names := ev.vm.Names()
		for j := 0; j < reused; j++ {
			if lfs[j].Name() != names[j] {
				prefixOK = false
				break
			}
		}
	}
	if !prefixOK {
		ev.em.vmRebuilds.Inc()
		ev.vm.Close()
		ev.vm = ev.newVoteMatrix()
		ev.vm.AppendLFs(ev.trainIx, lfs, ev.workers)
		ev.em.colsBuilt.AddInt(len(lfs))
		ev.invalidateInterim()
		return ev.vm
	}
	if added := ev.vm.AppendLFs(ev.trainIx, lfs[reused:], ev.workers); added > 0 {
		ev.em.colsBuilt.AddInt(added)
	}
	ev.em.colsReused.AddInt(reused)
	return ev.vm
}

// newVoteMatrix creates an empty train-split matrix, memory-bounded when
// Config.VoteSpillMB is set. A spill-file creation failure falls back to
// the fully resident matrix — correctness never depends on the temp dir.
func (ev *evaluator) newVoteMatrix() *lf.VoteMatrix {
	vm := lf.NewVoteMatrix(ev.trainIx.Size())
	if mb := ev.cfg.VoteSpillMB; mb > 0 {
		_ = vm.EnableSpill(int64(mb)<<20, "", ev.metrics)
	}
	return vm
}

// close releases the vote matrix's spill file, if any.
func (ev *evaluator) close() {
	if ev.vm != nil {
		ev.vm.Close()
	}
}

func (ev *evaluator) invalidateInterim() {
	ev.interimLFs = 0
	ev.interimEnd = nil
	ev.interimLM = nil
}

func (ev *evaluator) trainVectors() []*textproc.SparseVector {
	if ev.trainVecs == nil {
		ev.trainVecs = ev.feat.TransformAll(dataset.FeatureCorpus(ev.d.Train))
	}
	return ev.trainVecs
}

func (ev *evaluator) labelModel(lfs []lf.LabelFunction) (labelmodel.LabelModel, error) {
	switch ev.cfg.LabelModel {
	case "metal":
		return labelmodel.NewMeTaL(), nil
	case "majority":
		return labelmodel.NewMajorityVote(), nil
	case "triplet":
		return labelmodel.NewTriplet(), nil
	case "dawid-skene":
		return labelmodel.NewDawidSkene(), nil
	case "weighted":
		if ev.validIx == nil {
			ev.validIx = lf.NewIndex(ev.d.Valid)
		}
		return labelmodel.NewWeightedVoteFromValidationIndexed(ev.validIx, lfs), nil
	default:
		return nil, fmt.Errorf("core: unknown label model %q", ev.cfg.LabelModel)
	}
}

// trainProba aggregates LF votes over the train split into per-example
// posteriors; uncovered examples get nil. Vote columns come from the
// evaluator's incremental matrix, and a MeTaL label model resumes EM
// from the previous fit's parameters.
func (ev *evaluator) trainProba(lfs []lf.LabelFunction) (*lf.VoteMatrix, [][]float64, error) {
	start := time.Now()
	defer func() { ev.em.trainProba.Observe(time.Since(start).Seconds()) }()
	vm := ev.voteMatrix(lfs)
	if len(lfs) == 0 || vm.TotalCoverage() == 0 {
		return vm, make([][]float64, vm.NumExamples()), nil
	}
	lm, err := ev.labelModel(lfs)
	if err != nil {
		return nil, nil, err
	}
	mt, isMetal := lm.(*labelmodel.MeTaL)
	if isMetal {
		mt.Workers = ev.workers
		if ev.prevMetal != nil {
			mt.WarmStart(ev.prevMetal)
			ev.em.warmStarts.Inc()
		}
	}
	fitter := lm
	if ev.wrapLabelModel != nil {
		fitter = ev.wrapLabelModel(lm)
	}
	ev.em.lmFits.Inc()
	if err := fitter.Fit(vm, ev.d.NumClasses()); err != nil {
		return nil, nil, fmt.Errorf("core: fitting label model: %w", err)
	}
	if isMetal {
		ev.prevMetal = mt
		ev.em.emIters.Observe(float64(mt.EMIterations()))
	}
	return vm, fitter.PredictProba(vm), nil
}

// trainingSet assembles end-model inputs from posteriors, applying the
// default-class rule of paper §3.6 to uncovered instances.
//
// Posteriors are converted to hard argmax targets weighted by the
// posterior confidence rather than fed in as soft distributions. With
// soft targets the optimal logistic-regression logits reproduce the
// label model's uncertainty, which shrinks decision margins and measures
// several points below hard confidence-weighted targets on every dataset
// here; confidence weighting keeps the noise-awareness that soft targets
// were buying.
func (ev *evaluator) trainingSet(proba [][]float64) (X []*textproc.SparseVector, Y [][]float64, weights []float64) {
	k := ev.d.NumClasses()
	vecs := ev.trainVectors()
	// One flat backing array for every one-hot row: the per-example
	// make([]float64, k) calls otherwise dominate this function's
	// allocation profile on the 96k-example splits.
	backing := make([]float64, len(proba)*k)
	nextRow := func() []float64 {
		row := backing[:k:k]
		backing = backing[k:]
		return row
	}
	for i, p := range proba {
		switch {
		case p != nil:
			best := 0
			for c := 1; c < k; c++ {
				if p[c] > p[best] {
					best = c
				}
			}
			oneHot := nextRow()
			oneHot[best] = 1
			X = append(X, vecs[i])
			Y = append(Y, oneHot)
			weights = append(weights, p[best])
		case ev.d.DefaultClass != dataset.NoDefaultClass:
			oneHot := nextRow()
			oneHot[ev.d.DefaultClass] = 1
			X = append(X, vecs[i])
			Y = append(Y, oneHot)
			weights = append(weights, 1)
		}
	}
	if ev.d.Imbalanced {
		// Square-root class rebalancing for the F1-reported datasets:
		// weak supervision reaches the minority class through few LFs, so
		// its gradient mass would otherwise be drowned by the majority
		// class (BERT's pretrained features absorb this in the paper; the
		// TF-IDF substitute needs the nudge).
		counts := make([]float64, k)
		for _, y := range Y {
			counts[metrics.ArgMax(y)]++
		}
		maxCount := 0.0
		for _, c := range counts {
			if c > maxCount {
				maxCount = c
			}
		}
		for i, y := range Y {
			if c := counts[metrics.ArgMax(y)]; c > 0 {
				weights[i] *= math.Sqrt(maxCount / c)
			}
		}
	}
	return X, Y, weights
}

// evaluate produces the final Result for an LF set.
func (ev *evaluator) evaluate(lfs []lf.LabelFunction) (*Result, error) {
	start := time.Now()
	defer func() { ev.em.finalEval.Observe(time.Since(start).Seconds()) }()
	vm, proba, err := ev.trainProba(lfs)
	if err != nil {
		return nil, err
	}
	// All Table 2 vote statistics in one sparse sweep.
	var trainGold []int
	if ev.d.TrainLabeled {
		trainGold = dataset.Labels(ev.d.Train)
	}
	stats := vm.ComputeStats(trainGold, ev.workers)
	res := &Result{
		NumLFs:        len(lfs),
		LFCoverage:    stats.MeanCoverage,
		TotalCoverage: stats.TotalCoverage,
		MetricName:    ev.d.MetricName(),
		LFs:           lfs,
		// prevMetal is the fit trainProba just ran for this same LF set
		// (nil for other label models or an uncovered matrix).
		Artifacts: &Artifacts{Featurizer: ev.feat, LabelModel: ev.prevMetal},
	}
	if ev.d.TrainLabeled {
		res.LFAccuracy, res.LFAccuracyKnown = stats.MeanLFAccuracy, stats.AccuracyKnown
	}

	X, Y, weights := ev.trainingSet(proba)
	gold := dataset.Labels(ev.d.Test)
	var pred []int
	if len(X) == 0 {
		// No supervision at all: predict the default class (or class 0).
		c := ev.d.DefaultClass
		if c == dataset.NoDefaultClass {
			c = 0
		}
		pred = make([]int, len(ev.d.Test))
		for i := range pred {
			pred[i] = c
		}
	} else {
		m, err := endmodel.Train(X, Y, weights, ev.d.NumClasses(), ev.feat.Dim, ev.cfg.EndModel)
		if err != nil {
			return nil, fmt.Errorf("core: training end model: %w", err)
		}
		m.SetParallelism(ev.workers)
		res.Artifacts.EndModel = m
		testX := ev.feat.TransformAll(dataset.FeatureCorpus(ev.d.Test))
		pred = m.Predict(testX)
	}
	if ev.d.Imbalanced {
		res.EndMetric = metrics.BinaryF1(pred, gold)
	} else {
		res.EndMetric = metrics.Accuracy(pred, gold)
	}
	return res, nil
}

// interimTrainProba trains a quick end model on the current LF set and
// returns its class probabilities over the full train split together
// with the label model's posteriors, feeding the model-driven samplers
// (uncertainty, QBC). It caps the training subsample and epochs: the
// samplers need rankings, not a polished classifier. The cap draws a
// uniform subsample from the run's rng — a fixed prefix would skew
// uncertainty/QBC scores toward whatever the early train indices cover.
func (ev *evaluator) interimTrainProba(lfs []lf.LabelFunction, rng *rand.Rand) (endProba, lmProba [][]float64, err error) {
	if len(lfs) == 0 {
		return nil, nil, fmt.Errorf("core: no LFs yet")
	}
	// The LF set is append-only within a run, so an unchanged length
	// means an unchanged set: the previous refresh's posteriors are still
	// exact. Skipping the refit also skips its rng subsample draw — the
	// sampler sees identical scores either way.
	if ev.interimEnd != nil && ev.interimLFs == len(lfs) {
		ev.em.interimHits.Inc()
		return ev.interimEnd, ev.interimLM, nil
	}
	start := time.Now()
	defer func() { ev.em.interim.Observe(time.Since(start).Seconds()) }()
	_, lmProba, err = ev.trainProba(lfs)
	if err != nil {
		return nil, nil, err
	}
	X, Y, weights := ev.trainingSet(lmProba)
	if len(X) == 0 {
		return nil, nil, fmt.Errorf("core: no covered instances yet")
	}
	if cap := ev.cfg.InterimTrainCap; len(X) > cap {
		keep := rng.Perm(len(X))[:cap]
		sort.Ints(keep) // keep the original example order, just thinned
		sX := make([]*textproc.SparseVector, cap)
		sY := make([][]float64, cap)
		sW := make([]float64, cap)
		for i, ix := range keep {
			sX[i], sY[i], sW[i] = X[ix], Y[ix], weights[ix]
		}
		X, Y, weights = sX, sY, sW
	}
	cfg := ev.cfg.EndModel
	cfg.Epochs = 2
	m, err := endmodel.Train(X, Y, weights, ev.d.NumClasses(), ev.feat.Dim, cfg)
	if err != nil {
		return nil, nil, err
	}
	m.SetParallelism(ev.workers)
	endProba = m.PredictProbaAll(ev.trainVectors())
	ev.interimLFs = len(lfs)
	ev.interimEnd = endProba
	ev.interimLM = lmProba
	return endProba, lmProba, nil
}
