package core

import (
	"fmt"

	"datasculpt/internal/endmodel"
	"datasculpt/internal/labelmodel"
	"datasculpt/internal/lf"
	"datasculpt/internal/textproc"
)

// Result collects everything Table 2 reports about one run, plus the
// token/cost accounting of Figures 3-4 and diagnostic counts.
type Result struct {
	// Dataset and Method identify the run.
	Dataset, Method string

	// NumLFs is the size of the final LF set (#LFs row).
	NumLFs int
	// LFAccuracy is the mean per-LF accuracy on the train split (LF Acc.
	// row); LFAccuracyKnown is false when train labels are unavailable
	// (Spouse), where the paper prints "-".
	LFAccuracy      float64
	LFAccuracyKnown bool
	// LFCoverage is the mean per-LF coverage on the train split (LF Cov.).
	LFCoverage float64
	// TotalCoverage is the fraction of train instances covered by any LF
	// (Total Cov.).
	TotalCoverage float64
	// EndMetric is test accuracy, or binary F1 for imbalanced datasets
	// (EM Acc/F1); MetricName says which.
	EndMetric  float64
	MetricName string

	// PromptTokens/CompletionTokens/Calls/CostUSD account for every LLM
	// call of the run (Figures 3-4).
	PromptTokens     int
	CompletionTokens int
	Calls            int
	CostUSD          float64

	// ParseFailures counts LLM responses the parser rejected entirely.
	ParseFailures int
	// FailedIterations counts query iterations abandoned because the LLM
	// call failed even after retries (graceful degradation under
	// Config.MaxFailedIterations; 0 in strict paper mode, which aborts
	// instead).
	FailedIterations int
	// Rejections counts filtered candidates by reason.
	Rejections map[lf.RejectReason]int

	// LFs is the final label-function set.
	LFs []lf.LabelFunction

	// Artifacts references the trained components behind EndMetric — the
	// pieces a model bundle snapshots for serving. Always non-nil after a
	// successful evaluation (individual fields may be nil; see Artifacts).
	Artifacts *Artifacts
}

// Artifacts bundles the trained components a run produces alongside its
// statistics: everything needed to answer labeling requests later without
// retraining. internal/bundle serializes them; cmd/datasculptd serves
// them.
type Artifacts struct {
	// Featurizer is the fitted hashed-TF-IDF featurizer (never nil).
	Featurizer *textproc.Featurizer
	// EndModel is the trained logistic regression, or nil when no train
	// example was covered (the degenerate default-class-only run).
	EndModel *endmodel.LogisticRegression
	// LabelModel is the final fitted MeTaL, or nil when another label
	// model was configured or no fit happened (empty/uncovered LF set).
	LabelModel *labelmodel.MeTaL
}

// TotalTokens returns prompt+completion tokens.
func (r *Result) TotalTokens() int { return r.PromptTokens + r.CompletionTokens }

// LFAccuracyString renders LF accuracy the way the paper's tables do:
// "-" when train labels are unavailable.
func (r *Result) LFAccuracyString() string {
	if !r.LFAccuracyKnown {
		return "-"
	}
	return fmt.Sprintf("%.3f", r.LFAccuracy)
}

// String summarizes the run for logs.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: %d LFs, LF acc %s, LF cov %.3f, total cov %.3f, %s %.3f, %d tokens, $%.4f",
		r.Dataset, r.Method, r.NumLFs, r.LFAccuracyString(), r.LFCoverage,
		r.TotalCoverage, r.MetricName, r.EndMetric, r.TotalTokens(), r.CostUSD)
}
