package core

import (
	"context"
	"math"
	"testing"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
)

func proposerDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Load("youtube", 17, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func proposerConfig() Config {
	cfg := DefaultConfig(VariantBase)
	cfg.Seed = 17
	cfg.FeatureDim = 2048
	cfg.EndModel.Epochs = 3
	cfg.Parallelism = 1
	return cfg
}

func runSteps(t *testing.T, p *Proposer, from, to int) []*ProposalStep {
	t.Helper()
	var steps []*ProposalStep
	for it := from; it < to; it++ {
		st, err := p.Step(context.Background(), it)
		if err != nil {
			t.Fatal(err)
		}
		steps = append(steps, st)
		if st.Exhausted {
			break
		}
	}
	return steps
}

func lfNames(lfs []lf.LabelFunction) []string {
	names := make([]string, len(lfs))
	for i, f := range lfs {
		names[i] = f.Name()
	}
	return names
}

// TestProposerReplayEquivalence is the resume contract: journal k live
// steps, rebuild the proposer, replay the journal, continue live —
// the LF set, token totals, and evaluation must match the
// uninterrupted run exactly, for every split point.
func TestProposerReplayEquivalence(t *testing.T) {
	d := proposerDataset(t)
	cfg := proposerConfig()
	const budget = 8

	ref, err := NewProposer(d, cfg, ProposerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refSteps := runSteps(t, ref, 0, budget)
	refRes, err := ref.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	refNames := lfNames(ref.Accepted())
	if len(refNames) == 0 {
		t.Fatal("reference run accepted no LFs; test needs a productive config")
	}

	for split := 0; split <= len(refSteps); split++ {
		p, err := NewProposer(d, cfg, ProposerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range refSteps[:split] {
			if err := p.Replay(st); err != nil {
				t.Fatalf("split %d: %v", split, err)
			}
		}
		live := runSteps(t, p, split, budget)
		for i, st := range live {
			want := refSteps[split+i]
			if st.QueryID != want.QueryID || st.Kept != want.Kept || st.Label != want.Label ||
				st.PromptTokens != want.PromptTokens || st.CompletionTokens != want.CompletionTokens {
				t.Fatalf("split %d: step %d diverged: got %+v want %+v", split, st.Iter, st, want)
			}
		}
		names := lfNames(p.Accepted())
		if len(names) != len(refNames) {
			t.Fatalf("split %d: %d LFs, want %d", split, len(names), len(refNames))
		}
		for i := range names {
			if names[i] != refNames[i] {
				t.Fatalf("split %d: LF %d is %q, want %q", split, i, names[i], refNames[i])
			}
		}
		res, err := p.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if res.EndMetric != refRes.EndMetric || res.NumLFs != refRes.NumLFs ||
			res.Calls != refRes.Calls || res.PromptTokens != refRes.PromptTokens ||
			res.CompletionTokens != refRes.CompletionTokens ||
			math.Abs(res.CostUSD-refRes.CostUSD) > 1e-12 {
			t.Fatalf("split %d: result diverged: got metric=%v lfs=%d calls=%d, want metric=%v lfs=%d calls=%d",
				split, res.EndMetric, res.NumLFs, res.Calls, refRes.EndMetric, refRes.NumLFs, refRes.Calls)
		}
		p.Close()
	}
}

// TestProposerFrozenSeedAndPool checks the growth-loop wiring: frozen
// parent LFs bypass the filters but block re-proposal, and the query
// pool start keeps sampling out of the base split.
func TestProposerFrozenSeedAndPool(t *testing.T) {
	d := proposerDataset(t)
	cfg := proposerConfig()

	first, err := NewProposer(d, cfg, ProposerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	runSteps(t, first, 0, 6)
	frozen := append([]lf.LabelFunction(nil), first.Accepted()...)
	if len(frozen) == 0 {
		t.Fatal("first pass accepted no LFs")
	}

	poolStart := len(d.Train) / 2
	p, err := NewProposer(d, cfg, ProposerOptions{Frozen: frozen, QueryPoolStart: poolStart})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := len(p.Accepted()); got != len(frozen) {
		t.Fatalf("seeded chain has %d LFs, want %d", got, len(frozen))
	}
	if p.NewCount() != 0 {
		t.Fatalf("NewCount = %d before any step", p.NewCount())
	}
	steps := runSteps(t, p, 0, 6)
	for _, st := range steps {
		if st.QueryID >= 0 && st.QueryID < poolStart {
			t.Fatalf("sampled query %d below pool start %d", st.QueryID, poolStart)
		}
	}
	names := make(map[string]bool, len(frozen))
	for _, f := range frozen {
		names[f.Name()] = true
	}
	for _, f := range p.Accepted()[len(frozen):] {
		if names[f.Name()] {
			t.Fatalf("frozen LF %q re-accepted", f.Name())
		}
	}
	if p.NewCount() != len(p.Accepted())-len(frozen) {
		t.Fatalf("NewCount = %d, want %d", p.NewCount(), len(p.Accepted())-len(frozen))
	}
}

// TestProposerRejectsModelDrivenSamplers pins the replay-safety guard.
func TestProposerRejectsModelDrivenSamplers(t *testing.T) {
	d := proposerDataset(t)
	for _, name := range []string{"uncertain", "qbc"} {
		cfg := proposerConfig()
		cfg.Sampler = name
		if _, err := NewProposer(d, cfg, ProposerOptions{}); err == nil {
			t.Errorf("sampler %q must be rejected", name)
		}
	}
}

// TestProposerExhaustion: a pool smaller than the budget ends with an
// exhausted sentinel step, and replaying it is a no-op.
func TestProposerExhaustion(t *testing.T) {
	d := proposerDataset(t)
	cfg := proposerConfig()
	poolStart := len(d.Train) - 2
	p, err := NewProposer(d, cfg, ProposerOptions{QueryPoolStart: poolStart})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var exhausted *ProposalStep
	for it := 0; it < 10; it++ {
		st, err := p.Step(context.Background(), it)
		if err != nil {
			t.Fatal(err)
		}
		if st.Exhausted {
			exhausted = st
			break
		}
	}
	if exhausted == nil {
		t.Fatal("pool of 2 never exhausted within 10 steps")
	}
	if exhausted.QueryID != -1 {
		t.Fatalf("exhausted step has query id %d", exhausted.QueryID)
	}
	if err := p.Replay(exhausted); err != nil {
		t.Fatalf("replaying exhausted sentinel: %v", err)
	}
}
