package core

import (
	"math/rand"
	"sort"
	"testing"

	"datasculpt/internal/dataset"
	"datasculpt/internal/labelmodel"
	"datasculpt/internal/lf"
	"datasculpt/internal/textproc"
)

// countingLabelModel decorates a LabelModel and counts Fit calls — the
// probe for the interim-cache and incremental-matrix behavior.
type countingLabelModel struct {
	labelmodel.LabelModel
	fits *int
}

func (c countingLabelModel) Fit(vm *lf.VoteMatrix, k int) error {
	*c.fits++
	return c.LabelModel.Fit(vm, k)
}

// testEvaluator builds an evaluator over a small real dataset plus a
// stock of keyword LFs drawn from the corpus' frequent tokens.
func testEvaluator(t *testing.T, workers int) (*evaluator, []lf.LabelFunction) {
	t.Helper()
	d, err := dataset.Load("youtube", 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(VariantBase)
	cfg.FeatureDim = 1024
	cfg.EndModel.Epochs = 2
	cfg.Parallelism = workers
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	feat := textproc.NewFeaturizer(cfg.FeatureDim)
	feat.Workers = workers
	if err := feat.Fit(dataset.FeatureCorpus(d.Train)); err != nil {
		t.Fatal(err)
	}
	ev := &evaluator{
		d: d, feat: feat, trainIx: lf.NewIndex(d.Train), cfg: cfg,
		workers: workers, em: newEvalMetrics(nil),
	}

	counts := map[string]int{}
	for _, e := range d.Train {
		e.EnsureTokens()
		for _, tok := range e.Tokens {
			counts[tok]++
		}
	}
	words := make([]string, 0, len(counts))
	for w := range counts {
		if len(w) >= 4 {
			words = append(words, w)
		}
	}
	sort.Slice(words, func(i, j int) bool {
		if counts[words[i]] != counts[words[j]] {
			return counts[words[i]] > counts[words[j]]
		}
		return words[i] < words[j]
	})
	if len(words) > 12 {
		words = words[:12]
	}
	var lfs []lf.LabelFunction
	for i, w := range words {
		f, err := lf.NewKeywordLF(w, i%d.NumClasses())
		if err != nil {
			t.Fatal(err)
		}
		lfs = append(lfs, f)
	}
	return ev, lfs
}

// TestInterimCacheSkipsRefit: an interim refresh with an unchanged LF
// set must serve cached posteriors (zero additional Fit calls); a grown
// set must refit exactly once.
func TestInterimCacheSkipsRefit(t *testing.T) {
	ev, lfs := testEvaluator(t, 1)
	fits := 0
	ev.wrapLabelModel = func(lm labelmodel.LabelModel) labelmodel.LabelModel {
		return countingLabelModel{LabelModel: lm, fits: &fits}
	}
	rng := rand.New(rand.NewSource(1))

	end1, lm1, err := ev.interimTrainProba(lfs[:6], rng)
	if err != nil {
		t.Fatal(err)
	}
	if fits != 1 {
		t.Fatalf("first interim ran %d fits, want 1", fits)
	}
	end2, lm2, err := ev.interimTrainProba(lfs[:6], rng)
	if err != nil {
		t.Fatal(err)
	}
	if fits != 1 {
		t.Fatalf("unchanged LF set re-ran the fit (%d total fits, want 1)", fits)
	}
	// Cached posteriors are the same data, not merely similar.
	if &end1[0] != &end2[0] || &lm1[0] != &lm2[0] {
		t.Fatal("interim cache returned different slices for an unchanged LF set")
	}
	if _, _, err := ev.interimTrainProba(lfs[:9], rng); err != nil {
		t.Fatal(err)
	}
	if fits != 2 {
		t.Fatalf("grown LF set ran %d total fits, want 2", fits)
	}
}

// TestVoteMatrixIncrementalReuse: successive trainProba calls over a
// growing LF set must only evaluate the appended columns, and the cached
// matrix must match a from-scratch build.
func TestVoteMatrixIncrementalReuse(t *testing.T) {
	ev, lfs := testEvaluator(t, 1)
	for _, cut := range []int{3, 7, len(lfs)} {
		if _, _, err := ev.trainProba(lfs[:cut]); err != nil {
			t.Fatal(err)
		}
	}
	if got := ev.vm.NumLFs(); got != len(lfs) {
		t.Fatalf("cached matrix has %d columns, want %d", got, len(lfs))
	}
	scratch := lf.BuildVoteMatrix(ev.trainIx, lfs)
	for j := 0; j < scratch.NumLFs(); j++ {
		gc, wc := ev.vm.Column(j), scratch.Column(j)
		for i := range wc {
			if gc[i] != wc[i] {
				t.Fatalf("cached column %d diverges from scratch build at row %d", j, i)
			}
		}
	}
}

// TestVoteMatrixRebuildOnPrefixChange: a mutated (non-append-only) LF
// set must fall back to a full rebuild and still be correct.
func TestVoteMatrixRebuildOnPrefixChange(t *testing.T) {
	ev, lfs := testEvaluator(t, 1)
	if _, _, err := ev.trainProba(lfs[:5]); err != nil {
		t.Fatal(err)
	}
	// Reordered set: same LFs, different prefix names.
	mutated := append([]lf.LabelFunction{lfs[5]}, lfs[:5]...)
	if _, _, err := ev.trainProba(mutated); err != nil {
		t.Fatal(err)
	}
	scratch := lf.BuildVoteMatrix(ev.trainIx, mutated)
	if ev.vm.NumLFs() != scratch.NumLFs() {
		t.Fatalf("rebuilt matrix has %d columns, want %d", ev.vm.NumLFs(), scratch.NumLFs())
	}
	for j := 0; j < scratch.NumLFs(); j++ {
		if ev.vm.Names()[j] != scratch.Names()[j] {
			t.Fatalf("rebuilt column %d named %q, want %q", j, ev.vm.Names()[j], scratch.Names()[j])
		}
		gc, wc := ev.vm.Column(j), scratch.Column(j)
		for i := range wc {
			if gc[i] != wc[i] {
				t.Fatalf("rebuilt column %d diverges at row %d", j, i)
			}
		}
	}
}

// TestRunParallelismMatchesSequential is the PR's determinism hard
// constraint end to end: a full uncertain-sampler run with
// Parallelism: N must be bit-identical to Parallelism: 1 — same LF set,
// same coverage statistics, same end metric, same token accounting.
func TestRunParallelismMatchesSequential(t *testing.T) {
	run := func(parallelism int) *Result {
		return smallRun(t, "youtube", func(c *Config) {
			c.Sampler = "uncertain"
			c.Parallelism = parallelism
		})
	}
	seq := run(1)
	for _, p := range []int{2, 4} {
		par := run(p)
		if seq.NumLFs != par.NumLFs ||
			seq.EndMetric != par.EndMetric ||
			seq.LFCoverage != par.LFCoverage ||
			seq.TotalCoverage != par.TotalCoverage ||
			seq.LFAccuracy != par.LFAccuracy ||
			seq.TotalTokens() != par.TotalTokens() {
			t.Fatalf("Parallelism %d diverged from sequential:\nseq: %+v\npar: %+v", p, seq, par)
		}
		for i := range seq.LFs {
			if seq.LFs[i].Name() != par.LFs[i].Name() {
				t.Fatalf("Parallelism %d: LF %d is %q, sequential %q",
					p, i, par.LFs[i].Name(), seq.LFs[i].Name())
			}
		}
	}
}
