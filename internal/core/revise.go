package core

import (
	"context"
	"math/rand"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
	"datasculpt/internal/llm"
	"datasculpt/internal/prompt"
	"datasculpt/internal/textproc"
)

// The paper's discussion section names LF revision as future work: "our
// work does not revise the LFs developed by LLMs. Future works could
// consider an iterative prompting strategy to enhance LF quality further."
// This file implements that extension as counterexample re-prompting:
// when the accuracy filter rejects a candidate λ(k,c), the pipeline finds
// a validation instance the candidate mislabels (contains k but carries a
// different gold label) and issues one additional normal prompt on that
// instance. The LLM, now grounded in the counterexample, proposes
// keywords for the *correct* class — often a more specific phrase that
// disambiguates the one that failed. Enable with Config.ReviseRejected.

// reviser drives the revision pass.
type reviser struct {
	d        *dataset.Dataset
	validIx  *lf.Index
	selector prompt.ExampleSelector
	style    prompt.Style
	model    llm.ChatModel
	meter    *llm.Meter
	cfg      *Config
}

// counterexample finds a validation instance where the rejected candidate
// misfires: the keyword is present but the gold label differs from the
// candidate's class.
func (r *reviser) counterexample(rej lf.Rejected) *dataset.Example {
	phrase, n := textproc.NormalizePhrase(rej.Keyword)
	if n == 0 {
		return nil
	}
	split := r.validIx.Split()
	for _, id := range r.validIx.Docs(phrase) {
		e := split[id]
		if e.Label != dataset.NoLabel && e.Label != rej.Class {
			return e
		}
	}
	return nil
}

// revise runs up to maxRevisions counterexample prompts over the chain's
// accuracy-filter rejections and offers the resulting keywords back. It
// returns the number of revision prompts issued and of LFs the revisions
// added.
func (r *reviser) revise(ctx context.Context, chain *lf.FilterChain, rng *rand.Rand, maxRevisions int) (prompts, added int, err error) {
	rejected := chain.Rejected()
	// shuffle so revision effort spreads over the rejection list rather
	// than clustering on the earliest iterations
	order := rng.Perm(len(rejected))
	nSamples := r.cfg.samplesPerQuery()
	for _, idx := range order {
		if prompts >= maxRevisions {
			break
		}
		rej := rejected[idx]
		if rej.Reason != lf.RejectInaccurate {
			continue
		}
		counter := r.counterexample(rej)
		if counter == nil {
			continue
		}
		demos := r.selector.Select(counter, r.cfg.Shots)
		msgs := prompt.Render(r.style, r.d, demos, counter)
		responses, err := r.model.Chat(ctx, msgs, r.cfg.Temperature, nSamples)
		if err != nil {
			return prompts, added, err
		}
		r.meter.Record(responses)
		prompts++

		var parsed *prompt.Parsed
		if nSamples == 1 {
			parsed, err = prompt.ParseResponse(responses[0].Content)
		} else {
			contents := make([]string, len(responses))
			for i, resp := range responses {
				contents[i] = resp.Content
			}
			parsed, err = prompt.SelfConsistency(contents)
		}
		if err != nil {
			continue
		}
		for _, kw := range parsed.Keywords {
			if f, _ := chain.Offer(kw, parsed.Label); f != nil {
				added++
			}
		}
	}
	return prompts, added, nil
}
