package core

import (
	"context"
	"fmt"
	"math/rand"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
	"datasculpt/internal/llm"
	"datasculpt/internal/prompt"
	"datasculpt/internal/sampler"
	"datasculpt/internal/textproc"
)

// Proposer is the headless incremental form of the pipeline's query
// loop, built for the online growth daemon: instead of running
// cfg.Iterations in one call, the caller drives one Step at a time and
// journals each resulting ProposalStep. A killed caller resumes by
// constructing a fresh Proposer over the same dataset/config and
// Replaying the journaled steps — no LLM calls — before continuing
// with live Steps, and the final LF set is byte-identical to the
// uninterrupted run.
//
// That replay contract is why every per-iteration random choice is
// derived, not threaded: Step i draws from an rng seeded by (Seed, i)
// and prompts a model built by a per-iteration factory, so iteration
// i's outcome never depends on how many earlier iterations ran live
// versus replayed. Model-driven samplers (uncertain, qbc) feed on
// interim posteriors that only exist on live runs, so NewProposer
// rejects them.

// ProposalStep is the journaled outcome of one proposer iteration —
// everything Replay needs to reproduce its effect without an LLM call.
type ProposalStep struct {
	// Iter is the iteration index the step was produced at.
	Iter int `json:"iter"`
	// QueryID is the sampled train-example id (-1 when the unlabeled
	// pool was exhausted; Exhausted is then set).
	QueryID int `json:"query_id"`
	// Keywords and Label are the parsed LLM proposal offered to the
	// filter chain (empty on failed or unparseable iterations).
	Keywords []string `json:"keywords,omitempty"`
	Label    int      `json:"label,omitempty"`
	// Kept counts the keywords the filter chain accepted.
	Kept int `json:"kept"`
	// ParseFailed marks an iteration whose LLM response the parser
	// rejected; Failed marks one whose LLM call failed after retries.
	ParseFailed bool `json:"parse_failed,omitempty"`
	Failed      bool `json:"failed,omitempty"`
	// Exhausted marks the pool-exhausted sentinel step: no further
	// iteration can propose anything.
	Exhausted bool `json:"exhausted,omitempty"`
	// Calls/PromptTokens/CompletionTokens/CostUSD account the
	// iteration's LLM spend, so a resumed run reports the same totals.
	Calls            int     `json:"calls"`
	PromptTokens     int     `json:"prompt_tokens"`
	CompletionTokens int     `json:"completion_tokens"`
	CostUSD          float64 `json:"cost_usd"`
}

// ProposerOptions tunes a Proposer beyond its pipeline Config.
type ProposerOptions struct {
	// Model builds iteration i's endpoint. Nil selects a fresh
	// llm.Simulated per iteration, seeded from (cfg.Seed, i) — fresh
	// per iteration because the Simulated's rng advances per call, and
	// replayed iterations make no calls.
	Model func(iter int) (llm.ChatModel, error)
	// Frozen is the parent LF set the proposer extends: seeded into the
	// filter chain unfiltered (see lf.FilterChain.Seed) and counted
	// apart from the newly proposed LFs.
	Frozen []lf.LabelFunction
	// QueryPoolStart marks train ids [0, QueryPoolStart) as already
	// used, so sampling draws only from the tail — the growth loop puts
	// the base training split first and the captured corpus after it.
	QueryPoolStart int
}

// Proposer runs the select→prompt→parse→filter loop one resumable step
// at a time. Not safe for concurrent use.
type Proposer struct {
	d      *dataset.Dataset
	cfg    Config
	opts   ProposerOptions
	chain  *lf.FilterChain
	state  *sampler.State
	smp    sampler.Sampler
	sel    prompt.ExampleSelector
	ev     *evaluator
	style  prompt.Style
	frozen int

	calls, promptTokens, completionTokens int
	costUSD                               float64
	parseFailures, failedIterations      int
}

// NewProposer builds a proposer over d with cfg's pipeline settings.
// The dataset must validate and the sampler must be replay-safe.
func NewProposer(d *dataset.Dataset, cfg Config, opts ProposerOptions) (*Proposer, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Sampler {
	case "uncertain", "qbc":
		return nil, fmt.Errorf("core: sampler %q needs interim posteriors and cannot replay deterministically", cfg.Sampler)
	}
	smp, ok := sampler.ByName(cfg.Sampler)
	if !ok {
		return nil, fmt.Errorf("core: unknown sampler %q", cfg.Sampler)
	}
	if opts.QueryPoolStart < 0 || opts.QueryPoolStart > len(d.Train) {
		return nil, fmt.Errorf("core: query pool start %d out of range (train size %d)", opts.QueryPoolStart, len(d.Train))
	}

	feat := textproc.NewFeaturizer(cfg.FeatureDim)
	feat.Workers = cfg.Parallelism
	if err := feat.Fit(dataset.FeatureCorpus(d.Train)); err != nil {
		return nil, fmt.Errorf("core: fitting featurizer: %w", err)
	}
	trainIx := lf.NewIndex(d.Train)
	validIx := lf.NewIndex(d.Valid)
	chain := lf.NewFilterChainIndexed(d, cfg.Filters, trainIx, validIx)
	chain.Seed(opts.Frozen)

	var sel prompt.ExampleSelector
	var err error
	if cfg.usesKATE() {
		sel, err = prompt.NewKATEWithOptions(d, feat, prompt.KATEOptions{
			ANNThreshold:        cfg.ANNThreshold,
			CandidateMultiplier: cfg.ANNMultiplier,
			Seed:                cfg.Seed + 31,
			Workers:             cfg.Parallelism,
		})
	} else {
		sel, err = prompt.NewClassBalanced(d, cfg.Shots, cfg.Seed+7)
	}
	if err != nil {
		return nil, err
	}

	state := &sampler.State{
		Dataset:    d,
		Used:       make([]bool, len(d.Train)),
		TrainIndex: trainIx,
		ValidIndex: validIx,
		Workers:    cfg.Parallelism,
	}
	for i := 0; i < opts.QueryPoolStart; i++ {
		state.Used[i] = true
	}

	p := &Proposer{
		d: d, cfg: cfg, opts: opts, chain: chain, state: state,
		smp: smp, sel: sel, frozen: len(chain.Accepted()),
		ev: &evaluator{
			d: d, feat: feat, trainIx: trainIx, validIx: validIx, cfg: cfg,
			workers: cfg.Parallelism, em: newEvalMetrics(nil),
		},
		style: prompt.Base,
	}
	if cfg.usesCoT() {
		p.style = prompt.CoT
	}
	if cfg.Sampler == "coreset" {
		state.TrainVecs = p.ev.trainVectors()
	}
	return p, nil
}

// iterRNG derives iteration i's rng: a fixed function of (Seed, i), so
// the draw is identical whether the iteration runs first, last, or
// after a resume.
func (p *Proposer) iterRNG(iter int) *rand.Rand {
	return rand.New(rand.NewSource(p.cfg.Seed + 7919*int64(iter+1)))
}

// iterModel builds iteration i's endpoint and applies cfg.WrapModel.
func (p *Proposer) iterModel(iter int) (llm.ChatModel, error) {
	var m llm.ChatModel
	if p.opts.Model != nil {
		var err error
		if m, err = p.opts.Model(iter); err != nil {
			return nil, err
		}
	} else {
		sim, err := llm.NewSimulated(p.cfg.Model, p.d, p.cfg.Seed+101+1000003*int64(iter))
		if err != nil {
			return nil, err
		}
		m = sim
	}
	if p.cfg.WrapModel != nil {
		m = p.cfg.WrapModel(m)
	}
	return m, nil
}

// Step runs one live iteration: sample a query, prompt the model, parse
// and filter the proposal. The returned step is the journal record; an
// error is returned only for aborts (context cancellation, model
// construction failure) — an LLM call that fails after retries is a
// recorded degraded step, because the growth daemon's budget, unlike a
// paper run, must survive flaky endpoints.
func (p *Proposer) Step(ctx context.Context, iter int) (*ProposalStep, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: proposer iteration %d: %w", iter, err)
	}
	rng := p.iterRNG(iter)
	st := &ProposalStep{Iter: iter, QueryID: -1}

	id := p.smp.Next(p.state, rng)
	if id < 0 {
		st.Exhausted = true
		return st, nil
	}
	p.state.Used[id] = true
	st.QueryID = id

	model, err := p.iterModel(iter)
	if err != nil {
		return nil, fmt.Errorf("core: proposer iteration %d: %w", iter, err)
	}
	meter := llm.NewMeter(model)
	query := p.d.Train[id]
	demos := p.sel.Select(query, p.cfg.Shots)
	msgs := prompt.Render(p.style, p.d, demos, query)

	responses, err := model.Chat(ctx, msgs, p.cfg.Temperature, p.cfg.samplesPerQuery())
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("core: proposer iteration %d: %w", iter, err)
		}
		st.Failed = true
		p.failedIterations++
		return st, nil
	}
	meter.Record(responses)
	snap := meter.Snapshot()
	st.Calls = snap.Calls
	st.PromptTokens = snap.PromptTokens
	st.CompletionTokens = snap.CompletionTokens
	st.CostUSD = snap.CostUSD
	p.calls += snap.Calls
	p.promptTokens += snap.PromptTokens
	p.completionTokens += snap.CompletionTokens
	p.costUSD += snap.CostUSD

	var parsed *prompt.Parsed
	if n := p.cfg.samplesPerQuery(); n == 1 {
		parsed, err = prompt.ParseResponse(responses[0].Content)
	} else {
		contents := make([]string, len(responses))
		for i, r := range responses {
			contents[i] = r.Content
		}
		parsed, err = prompt.SelfConsistency(contents)
	}
	if err != nil {
		st.ParseFailed = true
		p.parseFailures++
		return st, nil
	}
	st.Keywords = parsed.Keywords
	st.Label = parsed.Label
	for _, kw := range parsed.Keywords {
		if f, _ := p.chain.Offer(kw, parsed.Label); f != nil {
			st.Kept++
		}
	}
	return st, nil
}

// Replay applies a journaled step without an LLM call: the query id is
// re-marked used and the recorded keywords re-offered to the filter
// chain. The chain is deterministic, so the accepted count must match
// the record — a mismatch means the journal belongs to different state
// (corpus, config, or parent set) and resuming would diverge.
func (p *Proposer) Replay(st *ProposalStep) error {
	if st.Exhausted {
		return nil
	}
	if st.QueryID < 0 || st.QueryID >= len(p.state.Used) {
		return fmt.Errorf("core: replaying iteration %d: query id %d out of range", st.Iter, st.QueryID)
	}
	p.state.Used[st.QueryID] = true
	p.calls += st.Calls
	p.promptTokens += st.PromptTokens
	p.completionTokens += st.CompletionTokens
	p.costUSD += st.CostUSD
	if st.Failed {
		p.failedIterations++
		return nil
	}
	if st.ParseFailed {
		p.parseFailures++
		return nil
	}
	kept := 0
	for _, kw := range st.Keywords {
		if f, _ := p.chain.Offer(kw, st.Label); f != nil {
			kept++
		}
	}
	if kept != st.Kept {
		return fmt.Errorf("core: replaying iteration %d: filter chain kept %d of %d keywords, journal says %d — state diverged",
			st.Iter, kept, len(st.Keywords), st.Kept)
	}
	return nil
}

// Accepted returns the current LF set: the frozen parent LFs followed
// by every newly accepted proposal, in acceptance order.
func (p *Proposer) Accepted() []lf.LabelFunction { return p.chain.Accepted() }

// NewCount returns how many LFs the loop has accepted beyond the
// frozen parent set.
func (p *Proposer) NewCount() int { return len(p.chain.Accepted()) - p.frozen }

// Evaluate aggregates the current LF set with the label model, trains
// the end model, and returns the full Result (with trained artifacts,
// ready for bundle.New). Token accounting covers live and replayed
// steps alike.
func (p *Proposer) Evaluate() (*Result, error) {
	res, err := p.ev.evaluate(p.chain.Accepted())
	if err != nil {
		return nil, err
	}
	res.Dataset = p.d.Name
	res.Method = fmt.Sprintf("datasculpt-%s-grown", p.cfg.Variant)
	res.ParseFailures = p.parseFailures
	res.FailedIterations = p.failedIterations
	res.Rejections = p.chain.Rejections()
	res.Calls = p.calls
	res.PromptTokens = p.promptTokens
	res.CompletionTokens = p.completionTokens
	res.CostUSD = p.costUSD
	return res, nil
}

// Close releases the evaluator's vote matrix.
func (p *Proposer) Close() { p.ev.close() }
