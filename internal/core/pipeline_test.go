package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
	"datasculpt/internal/llm"
	"datasculpt/internal/obs"
)

// smallRun executes a scaled-down pipeline for tests.
func smallRun(t *testing.T, dsName string, mutate func(*Config)) *Result {
	t.Helper()
	d, err := dataset.Load(dsName, 11, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(VariantBase)
	cfg.Iterations = 20
	cfg.Seed = 11
	cfg.FeatureDim = 2048
	cfg.EndModel.Epochs = 3
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigNormalizeDefaults(t *testing.T) {
	cfg := Config{}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Model != "gpt-3.5" || cfg.Variant != VariantBase || cfg.Iterations != 50 ||
		cfg.Shots != 10 || cfg.Temperature != 0.7 || cfg.SCSamples != 10 ||
		cfg.Sampler != "random" || cfg.LabelModel != "metal" {
		t.Errorf("defaults wrong: %+v", cfg)
	}
	if !cfg.Filters.UseAccuracy || !cfg.Filters.UseRedundancy {
		t.Error("default filters should all be on")
	}
}

func TestConfigRejectsBadEnums(t *testing.T) {
	bad := Config{Variant: "mystery"}
	if err := bad.Normalize(); err == nil {
		t.Error("unknown variant accepted")
	}
	bad = Config{LabelModel: "oracle"}
	if err := bad.Normalize(); err == nil {
		t.Error("unknown label model accepted")
	}
}

func TestSamplesPerQuery(t *testing.T) {
	for _, v := range []Variant{VariantBase, VariantCoT} {
		cfg := DefaultConfig(v)
		if got := cfg.samplesPerQuery(); got != 1 {
			t.Errorf("%s samples = %d, want 1", v, got)
		}
	}
	for _, v := range []Variant{VariantSC, VariantKATE} {
		cfg := DefaultConfig(v)
		if got := cfg.samplesPerQuery(); got != 10 {
			t.Errorf("%s samples = %d, want 10", v, got)
		}
	}
}

func TestRunBaseYoutube(t *testing.T) {
	res := smallRun(t, "youtube", nil)
	if res.NumLFs == 0 {
		t.Fatal("no LFs generated")
	}
	if !res.LFAccuracyKnown {
		t.Error("LF accuracy should be measurable on labeled youtube train")
	}
	if res.LFAccuracy < 0.5 || res.LFAccuracy > 1 {
		t.Errorf("LF accuracy = %v", res.LFAccuracy)
	}
	if res.TotalCoverage <= 0 || res.TotalCoverage > 1 {
		t.Errorf("total coverage = %v", res.TotalCoverage)
	}
	if res.LFCoverage <= 0 || res.LFCoverage > res.TotalCoverage {
		t.Errorf("per-LF coverage = %v vs total %v", res.LFCoverage, res.TotalCoverage)
	}
	if res.EndMetric < 0.5 {
		t.Errorf("end accuracy = %v, should beat chance", res.EndMetric)
	}
	if res.TotalTokens() <= 0 || res.CostUSD <= 0 || res.Calls == 0 {
		t.Errorf("usage accounting missing: %+v", res)
	}
	if res.MetricName != "accuracy" {
		t.Errorf("metric name = %q", res.MetricName)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := smallRun(t, "youtube", nil)
	b := smallRun(t, "youtube", nil)
	if a.NumLFs != b.NumLFs || a.EndMetric != b.EndMetric || a.TotalTokens() != b.TotalTokens() {
		t.Errorf("nondeterministic run: %v vs %v", a, b)
	}
}

func TestRunSCGeneratesMoreLFs(t *testing.T) {
	base := smallRun(t, "youtube", nil)
	sc := smallRun(t, "youtube", func(c *Config) { c.Variant = VariantSC })
	if sc.NumLFs <= base.NumLFs {
		t.Errorf("SC LFs %d should exceed Base LFs %d (paper Table 2)", sc.NumLFs, base.NumLFs)
	}
	if sc.TotalTokens() <= base.TotalTokens() {
		t.Errorf("SC tokens %d should exceed Base tokens %d (10 samples per query)",
			sc.TotalTokens(), base.TotalTokens())
	}
	if sc.Method != "datasculpt-sc" || base.Method != "datasculpt-base" {
		t.Errorf("method names = %q / %q", sc.Method, base.Method)
	}
}

func TestRunKATE(t *testing.T) {
	res := smallRun(t, "youtube", func(c *Config) { c.Variant = VariantKATE })
	if res.NumLFs == 0 {
		t.Error("KATE variant produced no LFs")
	}
}

func TestRunSpouseDefaultClass(t *testing.T) {
	res := smallRun(t, "spouse", func(c *Config) { c.Iterations = 25 })
	if res.LFAccuracyKnown {
		t.Error("spouse train is unlabeled; LF accuracy must be unknown")
	}
	if res.MetricName != "F1" {
		t.Errorf("spouse metric = %q, want F1", res.MetricName)
	}
	// the default class lets the end model train even at low coverage
	if res.EndMetric < 0 || res.EndMetric > 1 {
		t.Errorf("F1 = %v", res.EndMetric)
	}
}

func TestRunUncertainSampler(t *testing.T) {
	res := smallRun(t, "youtube", func(c *Config) { c.Sampler = "uncertain" })
	if res.NumLFs == 0 {
		t.Error("uncertain sampler run produced no LFs")
	}
}

func TestRunSEUSampler(t *testing.T) {
	res := smallRun(t, "youtube", func(c *Config) { c.Sampler = "seu"; c.Iterations = 10 })
	if res.Calls == 0 {
		t.Error("SEU run made no LLM calls")
	}
}

func TestRunNoAccuracyFilterGrowsLFSet(t *testing.T) {
	all := smallRun(t, "youtube", func(c *Config) { c.Variant = VariantSC })
	noAcc := smallRun(t, "youtube", func(c *Config) {
		c.Variant = VariantSC
		c.Filters = lf.FilterConfig{UseAccuracy: false, UseRedundancy: true}
	})
	if noAcc.NumLFs < all.NumLFs {
		t.Errorf("removing the accuracy filter shrank the LF set: %d < %d", noAcc.NumLFs, all.NumLFs)
	}
}

func TestRunMajorityLabelModel(t *testing.T) {
	res := smallRun(t, "youtube", func(c *Config) { c.LabelModel = "majority" })
	if res.EndMetric < 0.5 {
		t.Errorf("majority label model end metric = %v", res.EndMetric)
	}
}

func TestRunUnknownSampler(t *testing.T) {
	d, err := dataset.Load("youtube", 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(VariantBase)
	cfg.Sampler = "psychic"
	if _, err := Run(d, cfg); err == nil {
		t.Error("unknown sampler accepted")
	}
}

func TestEvaluateLFSetExternal(t *testing.T) {
	d, err := dataset.Load("youtube", 5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// hand-built expert LFs from the signal table
	var lfs []lf.LabelFunction
	for c := 0; c < d.NumClasses(); c++ {
		for _, sig := range d.Signal.TopByWeight(c, 5) {
			f, err := lf.NewKeywordLF(sig.Phrase, c)
			if err != nil {
				t.Fatal(err)
			}
			lfs = append(lfs, f)
		}
	}
	cfg := DefaultConfig(VariantBase)
	cfg.FeatureDim = 2048
	cfg.Seed = 5
	res, err := EvaluateLFSet(d, lfs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLFs != 10 {
		t.Errorf("NumLFs = %d", res.NumLFs)
	}
	if res.EndMetric < 0.5 {
		t.Errorf("expert LF end metric = %v", res.EndMetric)
	}
	if res.LFAccuracy < 0.6 {
		t.Errorf("expert LF accuracy = %v", res.LFAccuracy)
	}
}

func TestEvaluateEmptyLFSet(t *testing.T) {
	d, err := dataset.Load("youtube", 5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(VariantBase)
	cfg.FeatureDim = 1024
	res, err := EvaluateLFSet(d, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLFs != 0 || res.TotalCoverage != 0 {
		t.Errorf("empty set stats: %+v", res)
	}
	// constant class-0 predictor: accuracy equals class-0 prevalence
	if res.EndMetric <= 0.2 || res.EndMetric >= 0.8 {
		t.Errorf("constant-predictor accuracy = %v", res.EndMetric)
	}
}

func TestRunWithRevision(t *testing.T) {
	plain := smallRun(t, "youtube", nil)
	revised := smallRun(t, "youtube", func(c *Config) {
		c.ReviseRejected = true
		c.MaxRevisions = 8
	})
	// revision issues extra prompts, so usage must not shrink; the LF set
	// may grow when counterexample prompts surface new keywords
	if revised.Calls < plain.Calls {
		t.Errorf("revision reduced calls: %d < %d", revised.Calls, plain.Calls)
	}
	if revised.NumLFs < plain.NumLFs {
		t.Errorf("revision shrank the LF set: %d < %d", revised.NumLFs, plain.NumLFs)
	}
}

func TestRunBonusTREC(t *testing.T) {
	d, err := dataset.Load("trec", 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(VariantBase)
	cfg.Iterations = 25
	cfg.Seed = 11
	cfg.FeatureDim = 2048
	res, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumLFs == 0 {
		t.Fatal("no LFs on the 6-class bonus dataset")
	}
	if res.EndMetric < 1.0/6+0.05 {
		t.Errorf("trec accuracy = %v, should clearly beat the 1/6 chance rate", res.EndMetric)
	}
}

func TestRunExtendedLabelModels(t *testing.T) {
	for _, lm := range []string{"dawid-skene", "weighted"} {
		res := smallRun(t, "youtube", func(c *Config) { c.LabelModel = lm })
		if res.EndMetric < 0.5 {
			t.Errorf("%s end metric = %v", lm, res.EndMetric)
		}
	}
}

func TestRunExtendedSamplers(t *testing.T) {
	for _, smp := range []string{"qbc", "coreset"} {
		res := smallRun(t, "youtube", func(c *Config) { c.Sampler = smp; c.Iterations = 12 })
		if res.NumLFs == 0 {
			t.Errorf("%s produced no LFs", smp)
		}
	}
}

func TestTripletRejectsMulticlassDataset(t *testing.T) {
	d, err := dataset.Load("agnews", 2, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(VariantBase)
	cfg.LabelModel = "triplet"
	cfg.Iterations = 5
	cfg.FeatureDim = 1024
	if _, err := Run(d, cfg); err == nil {
		t.Error("triplet label model accepted the 4-class agnews task")
	}
}

func TestRunContextCanceled(t *testing.T) {
	d, err := dataset.Load("youtube", 11, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, d, DefaultConfig(VariantBase)); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled run returned %v, want context.Canceled", err)
	}
}

// failEveryNth is a ChatModel middleware failing every n-th Chat call
// with a transient error (1-based: n=4 fails calls 4, 8, 12, ...).
type failEveryNth struct {
	inner llm.ChatModel
	n     int
	calls int
}

func (f *failEveryNth) ModelName() string           { return f.inner.ModelName() }
func (f *failEveryNth) Pricing() (float64, float64) { return f.inner.Pricing() }
func (f *failEveryNth) Chat(ctx context.Context, messages []llm.Message, temperature float64, n int) ([]llm.Response, error) {
	f.calls++
	if f.calls%f.n == 0 {
		return nil, fmt.Errorf("%w: synthetic outage", llm.ErrUnavailable)
	}
	return f.inner.Chat(ctx, messages, temperature, n)
}

func TestRunStrictModeAbortsOnLLMFailure(t *testing.T) {
	d, err := dataset.Load("youtube", 11, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(VariantBase)
	cfg.Iterations = 10
	cfg.Seed = 11
	cfg.FeatureDim = 1024
	cfg.WrapModel = func(m llm.ChatModel) llm.ChatModel { return &failEveryNth{inner: m, n: 3} }
	if _, err := Run(d, cfg); !errors.Is(err, llm.ErrUnavailable) {
		t.Errorf("strict mode returned %v, want ErrUnavailable", err)
	}
}

func TestRunFailureBudgetDegradesGracefully(t *testing.T) {
	res := smallRun(t, "youtube", func(c *Config) {
		c.MaxFailedIterations = UnlimitedFailures
		c.WrapModel = func(m llm.ChatModel) llm.ChatModel { return &failEveryNth{inner: m, n: 4} }
	})
	// 20 iterations, every 4th LLM call fails: 5 abandoned iterations
	if res.FailedIterations != 5 {
		t.Errorf("FailedIterations = %d, want 5", res.FailedIterations)
	}
	// the surviving 15 iterations still produced a usable run
	if res.NumLFs == 0 || res.Calls != 15 {
		t.Errorf("degraded run: %d LFs, %d successful calls (want >0, 15)", res.NumLFs, res.Calls)
	}
	// a finite budget above the failure count behaves identically
	budgeted := smallRun(t, "youtube", func(c *Config) {
		c.MaxFailedIterations = 5
		c.WrapModel = func(m llm.ChatModel) llm.ChatModel { return &failEveryNth{inner: m, n: 4} }
	})
	if budgeted.NumLFs != res.NumLFs || budgeted.EndMetric != res.EndMetric {
		t.Errorf("budget-5 run diverged from unlimited: %v vs %v", budgeted, res)
	}
}

func TestRunFailureBudgetExceededAborts(t *testing.T) {
	d, err := dataset.Load("youtube", 11, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(VariantBase)
	cfg.Iterations = 20
	cfg.Seed = 11
	cfg.FeatureDim = 1024
	cfg.MaxFailedIterations = 2
	cfg.WrapModel = func(m llm.ChatModel) llm.ChatModel { return &failEveryNth{inner: m, n: 2} }
	_, err = Run(d, cfg)
	if !errors.Is(err, llm.ErrUnavailable) {
		t.Fatalf("exceeded budget returned %v, want ErrUnavailable", err)
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Errorf("error does not mention the budget: %v", err)
	}
}

func TestRunWrapModelWithRetryMatchesBaseline(t *testing.T) {
	// A Retry-wrapped flaky endpoint must converge to the same result as
	// the unwrapped run: transient failures are retried, not absorbed
	// into the output.
	baseline := smallRun(t, "youtube", nil)
	wrapped := smallRun(t, "youtube", func(c *Config) {
		c.WrapModel = func(m llm.ChatModel) llm.ChatModel {
			flaky := &failEveryNth{inner: m, n: 5}
			return llm.NewRetry(flaky, llm.WithRetryAttempts(4), llm.WithRetryJitter(0),
				llm.WithRetryBackoff(time.Microsecond, time.Millisecond))
		}
	})
	if wrapped.NumLFs != baseline.NumLFs || wrapped.EndMetric != baseline.EndMetric {
		t.Errorf("retry-wrapped run diverged: %v vs %v", wrapped, baseline)
	}
	if wrapped.FailedIterations != 0 {
		t.Errorf("FailedIterations = %d, want 0 (retries absorb the faults)", wrapped.FailedIterations)
	}
}

// uselessModel answers every prompt with a well-formed response whose
// keyword never occurs in any corpus, so every candidate LF is filtered
// and the accepted set stays empty.
type uselessModel struct{ inner llm.ChatModel }

func (g uselessModel) ModelName() string           { return g.inner.ModelName() }
func (g uselessModel) Pricing() (float64, float64) { return g.inner.Pricing() }
func (g uselessModel) Chat(ctx context.Context, messages []llm.Message, temperature float64, n int) ([]llm.Response, error) {
	resp, err := g.inner.Chat(ctx, messages, temperature, n)
	for i := range resp {
		resp[i].Content = "Keywords: zzyqqvx\nLabel: 0"
	}
	return resp, err
}

// TestRunInterimFailureRecorded: when the interim refresh behind a
// model-driven sampler cannot run (here: no LF ever survives the
// filters), the failure must be counted in eval_interim_failures_total
// instead of being swallowed — the sampler silently degrading to stale
// scores was a latent bug.
func TestRunInterimFailureRecorded(t *testing.T) {
	d, err := dataset.Load("youtube", 11, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(VariantBase)
	cfg.Iterations = 10
	cfg.Seed = 11
	cfg.FeatureDim = 1024
	cfg.Sampler = "uncertain"
	cfg.WrapModel = func(m llm.ChatModel) llm.ChatModel { return uselessModel{inner: m} }
	reg := obs.NewRegistry()
	ctx := obs.NewContext(context.Background(), obs.New(nil, reg, nil))
	res, err := RunContext(ctx, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The first offer is accepted (inactive on validation = no evidence
	// against it; nothing yet to be redundant with), every repeat is a
	// duplicate — but the lone LF covers nothing, so the refresh cannot
	// train an interim model.
	if res.NumLFs != 1 {
		t.Fatalf("NumLFs = %d, want 1", res.NumLFs)
	}
	if res.TotalCoverage != 0 {
		t.Fatalf("TotalCoverage = %v, want 0", res.TotalCoverage)
	}
	// 10 iterations at the default refresh cadence of 5: two refresh
	// points, both failing with "no covered instances yet".
	if got := reg.CounterValue("eval_interim_failures_total"); got != 2 {
		t.Errorf("eval_interim_failures_total = %v, want 2", got)
	}
}

// TestRunSEUParallelismMatchesSequential extends the determinism hard
// constraint to the memoized SEU scoring engine: a full SEU run with
// Parallelism: N must be bit-identical to Parallelism: 1, including the
// sampled instances behind the LF set.
func TestRunSEUParallelismMatchesSequential(t *testing.T) {
	run := func(parallelism int) *Result {
		return smallRun(t, "youtube", func(c *Config) {
			c.Sampler = "seu"
			c.Parallelism = parallelism
		})
	}
	seq := run(1)
	for _, p := range []int{2, 4} {
		par := run(p)
		if seq.NumLFs != par.NumLFs ||
			seq.EndMetric != par.EndMetric ||
			seq.LFCoverage != par.LFCoverage ||
			seq.TotalCoverage != par.TotalCoverage ||
			seq.TotalTokens() != par.TotalTokens() {
			t.Fatalf("Parallelism %d diverged from sequential:\nseq: %+v\npar: %+v", p, seq, par)
		}
		for i := range seq.LFs {
			if seq.LFs[i].Name() != par.LFs[i].Name() {
				t.Fatalf("Parallelism %d: LF %d is %q, sequential %q",
					p, i, par.LFs[i].Name(), seq.LFs[i].Name())
			}
		}
	}
}

func TestRunWithInjectedChatModel(t *testing.T) {
	// injecting a Simulated with the seed Run would derive itself must
	// reproduce the default run exactly
	baseline := smallRun(t, "youtube", nil)
	d, err := dataset.Load("youtube", 11, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(VariantBase)
	cfg.Iterations = 20
	cfg.Seed = 11
	cfg.FeatureDim = 2048
	cfg.EndModel.Epochs = 3
	sim, err := llm.NewSimulated("gpt-3.5", d, cfg.Seed+101)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ChatModel = sim
	injected, err := Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if injected.NumLFs != baseline.NumLFs || injected.EndMetric != baseline.EndMetric ||
		injected.TotalTokens() != baseline.TotalTokens() {
		t.Errorf("injected model diverged: %v vs %v", injected, baseline)
	}
}
