// Package core implements the DataSculpt pipeline (Figure 1 of the
// paper): the iterative loop that selects a query instance, retrieves
// in-context examples, prompts the LLM, parses the generated keywords into
// label functions, filters them, and finally aggregates the surviving LF
// set with a label model and trains the downstream classifier.
package core

import (
	"fmt"

	"datasculpt/internal/endmodel"
	"datasculpt/internal/lf"
	"datasculpt/internal/llm"
	"datasculpt/internal/par"
)

// Variant names a DataSculpt configuration from the paper's Table 2.
type Variant string

// The four evaluated variants.
const (
	// VariantBase uses the plain few-shot template, one sample per query.
	VariantBase Variant = "base"
	// VariantCoT adds chain-of-thought prompting.
	VariantCoT Variant = "cot"
	// VariantSC adds self-consistency over 10 sampled responses on top of
	// CoT.
	VariantSC Variant = "sc"
	// VariantKATE adds KATE in-context example retrieval on top of SC.
	VariantKATE Variant = "kate"
)

// Variants lists the paper's configurations in table order.
func Variants() []Variant {
	return []Variant{VariantBase, VariantCoT, VariantSC, VariantKATE}
}

// UnlimitedFailures disables the iteration failure budget: the run
// records failed iterations but never aborts because of them.
const UnlimitedFailures = -1

// Config fully parameterizes one pipeline run. Zero values select the
// paper's defaults via Normalize.
type Config struct {
	// Model is the LLM profile name or alias (default "gpt-3.5").
	Model string
	// ChatModel, when non-nil, overrides Model: the run prompts this
	// endpoint instead of constructing a fresh Simulated. It is how a
	// real (or cached / rate-limited / metered) model is injected, and
	// how many concurrent runs share one model — implementations must be
	// concurrency-safe (every llm middleware and the Simulated are).
	ChatModel llm.ChatModel
	// WrapModel, when non-nil, wraps the run's endpoint (the injected
	// ChatModel or the internally constructed Simulated) before any call
	// is made — the middleware injection point for per-run stacks such
	// as llm.NewRetry or a chaos-testing llm.NewFaultInjector, composing
	// with endpoints the run builds itself.
	WrapModel func(llm.ChatModel) llm.ChatModel
	// Variant selects prompting strategy (default VariantBase).
	Variant Variant
	// Iterations is the number of query instances (paper: 50).
	Iterations int
	// Shots is the number of in-context examples (paper: 10).
	Shots int
	// Temperature of LLM sampling (paper: 0.7).
	Temperature float64
	// SCSamples is the sample count for self-consistency variants
	// (paper: 10).
	SCSamples int
	// Sampler is the query-selection strategy: "random" (default),
	// "uncertain" or "seu".
	Sampler string
	// Filters configures the LF filter chain (default: all filters on).
	Filters lf.FilterConfig
	// LabelModel selects the vote aggregator: "metal" (default),
	// "majority", "triplet", "dawid-skene" or "weighted" (validation-
	// accuracy-weighted vote).
	LabelModel string
	// FeatureDim is the hashed feature width for KATE and the end model.
	FeatureDim int
	// EndModel holds the logistic-regression hyperparameters.
	EndModel endmodel.TrainConfig
	// UncertainRefreshEvery controls how often (in iterations) the interim
	// end model behind uncertainty sampling is retrained (default 5).
	UncertainRefreshEvery int
	// InterimTrainCap bounds the examples used to train interim models
	// (default 4000); uncertainty estimates do not need the full corpus.
	InterimTrainCap int
	// MaxFailedIterations is the graceful-degradation failure budget for
	// the query loop. 0 (the default, paper mode) is strict: the first
	// iteration whose LLM call still fails after any retry middleware
	// aborts the run, exactly as before. n > 0 tolerates up to n failed
	// iterations — each is recorded in Result.FailedIterations and the
	// loop moves on to the next query — aborting only when the budget is
	// exceeded. UnlimitedFailures (-1) never aborts on iteration
	// failures. Context cancellation always aborts regardless.
	MaxFailedIterations int
	// ReviseRejected enables the counterexample-re-prompting revision
	// pass after the main loop (the paper's stated future work; see
	// revise.go). MaxRevisions bounds the extra prompts (default 10).
	ReviseRejected bool
	MaxRevisions   int
	// ANNThreshold is the KATE demonstration-pool size at or above which
	// retrieval goes through the LSH index with exact re-ranking instead
	// of the full cosine scan. 0 selects prompt.DefaultANNThreshold
	// (16384, above every Table-1 validation split, so small corpora stay
	// bit-identical); negative disables ANN retrieval at any size.
	ANNThreshold int
	// ANNMultiplier sizes the LSH shortlist as multiplier × Shots exact-
	// reranked candidates (default prompt.DefaultANNMultiplier, 16).
	ANNMultiplier int
	// VoteSpillMB, when positive, bounds the resident sparse bytes of the
	// train-split vote matrix: columns beyond the budget spill LRU to an
	// unlinked temp file and fault back in transparently
	// (eval_votematrix_spill_* metrics). 0 (default) keeps the matrix
	// fully resident with dense per-column storage, exactly as before.
	VoteSpillMB int
	// Parallelism bounds the worker goroutines the evaluation engine uses
	// for vote-matrix column evaluation, the label model's EM steps,
	// batch featurization and batch prediction. 0 (the default) selects
	// runtime.GOMAXPROCS(0); 1 runs the exact legacy sequential path;
	// negative values are clamped to 1. Results are bit-identical at
	// every setting — parallel sections only write per-index state and
	// all floating-point reductions happen in a fixed order — so this is
	// purely a throughput knob.
	Parallelism int
	// Seed drives every random choice in the run.
	Seed int64
}

// DefaultConfig returns the paper's default configuration for a variant.
func DefaultConfig(v Variant) Config {
	cfg := Config{Variant: v}
	cfg.Normalize()
	return cfg
}

// Normalize fills zero values with the paper's defaults and validates the
// enumerations.
func (c *Config) Normalize() error {
	if c.Model == "" {
		c.Model = "gpt-3.5"
	}
	if c.Variant == "" {
		c.Variant = VariantBase
	}
	switch c.Variant {
	case VariantBase, VariantCoT, VariantSC, VariantKATE:
	default:
		return fmt.Errorf("core: unknown variant %q", c.Variant)
	}
	if c.Iterations <= 0 {
		c.Iterations = 50
	}
	if c.Shots <= 0 {
		c.Shots = 10
	}
	if c.Temperature == 0 {
		c.Temperature = 0.7
	}
	if c.SCSamples <= 0 {
		c.SCSamples = 10
	}
	if c.Sampler == "" {
		c.Sampler = "random"
	}
	if c.LabelModel == "" {
		c.LabelModel = "metal"
	}
	switch c.LabelModel {
	case "metal", "majority", "triplet", "dawid-skene", "weighted":
	default:
		return fmt.Errorf("core: unknown label model %q", c.LabelModel)
	}
	if c.Filters == (lf.FilterConfig{}) {
		c.Filters = lf.AllFilters()
	}
	if c.FeatureDim <= 0 {
		c.FeatureDim = 8192
	}
	if c.UncertainRefreshEvery <= 0 {
		c.UncertainRefreshEvery = 5
	}
	if c.InterimTrainCap <= 0 {
		c.InterimTrainCap = 4000
	}
	if c.MaxRevisions <= 0 {
		c.MaxRevisions = 10
	}
	if c.Parallelism == 0 {
		c.Parallelism = par.DefaultWorkers()
	} else if c.Parallelism < 0 {
		c.Parallelism = 1
	}
	if c.MaxFailedIterations < UnlimitedFailures {
		c.MaxFailedIterations = UnlimitedFailures
	}
	if c.EndModel.Seed == 0 {
		c.EndModel.Seed = c.Seed + 1
	}
	return nil
}

// samplesPerQuery returns how many completions each prompt requests.
func (c *Config) samplesPerQuery() int {
	if c.Variant == VariantSC || c.Variant == VariantKATE {
		return c.SCSamples
	}
	return 1
}

// promptStyle returns whether the variant uses chain-of-thought.
func (c *Config) usesCoT() bool { return c.Variant != VariantBase }

// usesKATE returns whether in-context examples come from KATE retrieval.
func (c *Config) usesKATE() bool { return c.Variant == VariantKATE }
