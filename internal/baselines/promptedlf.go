package baselines

import (
	"context"
	"fmt"
	"math/rand"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
	"datasculpt/internal/llm"
	"datasculpt/internal/textproc"
)

// promptedLFCounts are the template counts PromptedLF uses per dataset
// (the #LFs row of Table 2): the original paper ships templates for
// Youtube, SMS and Spouse; the remaining datasets use templates translated
// from the WRENCH benchmark LFs, as the DataSculpt authors did.
var promptedLFCounts = map[string]int{
	"youtube": 10,
	"sms":     73,
	"imdb":    7,
	"yelp":    7,
	"agnews":  4,
	"spouse":  11,
}

// PromptedLF response-model knobs. Each template is applied to *every*
// unlabeled train instance (the exhaustive querying whose cost Figures
// 3-4 expose). Two template flavours reproduce the coverage spread the
// paper reports:
//
//   - keyword templates ("Does the message mention a prize?") vote only
//     when the model confirms the condition — high precision, coverage
//     near the keyword's document frequency (SMS: 73 such templates,
//     per-LF coverage ~0.01);
//   - class templates ("Is this review positive or negative?") vote on
//     any instance with recognizable signal and abstain on hard ones —
//     broad coverage, accuracy near the model's zero-shot ability.
const (
	promptedKeywordRecall   = 0.95
	promptedKeywordFalsePos = 0.0005
	promptedKeywordLabelAcc = 0.97
	promptedClassAbstain    = 0.9 // abstain rate on signal-free instances
	promptedTemplateTokens  = 28  // template text prepended to each instance
	promptedAnswerTokens    = 6   // short structured answer
)

// PromptedLF simulates Smith et al. (2022): every train instance is
// annotated by every prompt template and each template's annotations form
// one labeling function. Returns the LF set and a meter billing one call
// per (template, instance) pair — the Θ(n·T) cost that DataSculpt's
// Θ(m) querying avoids. Because that loop is by far the most expensive
// cell of the grid, the ctx is checked once per template so
// cancellation cannot be stalled behind thousands of simulated calls.
func PromptedLF(ctx context.Context, d *dataset.Dataset, model string, seed int64) ([]lf.LabelFunction, *llm.Meter, error) {
	nTemplates, ok := promptedLFCounts[d.Name]
	if !ok {
		return nil, nil, fmt.Errorf("baselines: no PromptedLF template count for dataset %q", d.Name)
	}
	profile, err := llm.ProfileByName(model)
	if err != nil {
		return nil, nil, err
	}
	sim, err := llm.NewSimulated(model, d, seed+501)
	if err != nil {
		return nil, nil, err
	}
	meter := llm.NewMeter(sim)
	rng := rand.New(rand.NewSource(seed))
	k := d.NumClasses()

	// SMS uses keyword-translated templates (one per WRENCH LF); the
	// other datasets use class-level phrasings.
	keywordStyle := d.Name == "sms"

	var templates []template
	if keywordStyle {
		perClass := make([][]dataset.KeywordSignal, k)
		for c := 0; c < k; c++ {
			perClass[c] = d.Signal.TopByWeight(c, nTemplates)
		}
		for rank := 0; len(templates) < nTemplates; rank++ {
			progressed := false
			for c := 0; c < k && len(templates) < nTemplates; c++ {
				if rank >= len(perClass[c]) {
					continue
				}
				progressed = true
				templates = append(templates, template{keyword: perClass[c][rank].Phrase, class: c})
			}
			if !progressed {
				return nil, nil, fmt.Errorf("baselines: signal table too small for %d PromptedLF templates", nTemplates)
			}
		}
	} else {
		for i := 0; i < nTemplates; i++ {
			templates = append(templates, template{phrasing: i})
		}
	}

	// Annotate every train instance with every template.
	lfs := make([]lf.LabelFunction, len(templates))
	for ti, tpl := range templates {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		votes := make(map[*dataset.Example]int, len(d.Train))
		for _, e := range d.Train {
			e.EnsureTokens()
			// bill the call: template + instance prompt, short answer
			meter.Record([]llm.Response{{
				Usage: llm.Usage{
					PromptTokens:     promptedTemplateTokens + textproc.ApproxLLMTokens(e.Text),
					CompletionTokens: promptedAnswerTokens,
				},
			}})
			if v, voted := tpl.annotate(d, profile, rng, e); voted {
				votes[e] = v
			}
		}
		lfs[ti] = &lf.AnnotationLF{
			LFName: fmt.Sprintf("promptedlf-%s-%d", d.Name, ti),
			Votes:  votes,
		}
	}
	return lfs, meter, nil
}

// template is one PromptedLF prompt.
type template struct {
	// keyword-style template: confirm this phrase and vote class.
	keyword string
	class   int
	// class-style template: phrasing index (different phrasings share the
	// same decision logic but draw independent noise).
	phrasing int
}

// annotate produces the template's weak label for one instance, or
// (0,false) to abstain.
func (t template) annotate(d *dataset.Dataset, p llm.Profile, rng *rand.Rand, e *dataset.Example) (int, bool) {
	if t.keyword != "" {
		present := textproc.ContainsPhrase(e.Tokens, t.keyword)
		if present {
			if rng.Float64() < promptedKeywordRecall {
				if rng.Float64() < promptedKeywordLabelAcc {
					return t.class, true
				}
				return otherClass(rng, d.NumClasses(), t.class), true
			}
			return 0, false
		}
		if rng.Float64() < promptedKeywordFalsePos {
			return t.class, true
		}
		return 0, false
	}

	// class-style: decide from the instance's visible signals, the same
	// world knowledge the simulated chat model uses.
	weights := make([]float64, d.NumClasses())
	any := false
	for _, gram := range textproc.AllNGrams(e.Tokens, textproc.MaxKeywordLen) {
		sig, ok := d.Signal.Lookup(gram)
		if !ok {
			continue
		}
		if rng.Float64() < p.KeywordRecall {
			weights[sig.Class] += sig.Strength
			any = true
		}
	}
	if !any {
		if rng.Float64() < promptedClassAbstain {
			return 0, false
		}
		return rng.Intn(d.NumClasses()), true
	}
	best, second := 0, -1
	var total float64
	for c := 0; c < d.NumClasses(); c++ {
		total += weights[c]
		if c > 0 && weights[c] > weights[best] {
			second, best = best, c
		} else if c > 0 && (second < 0 || weights[c] > weights[second]) {
			second = c
		}
	}
	// A careful zero-shot annotator declines ambiguous instances: mixed
	// signals with a thin margin mostly abstain rather than guess.
	if second >= 0 && total > 0 {
		margin := (weights[best] - weights[second]) / total
		if margin < 0.3 && rng.Float64() < 0.7 {
			return 0, false
		}
	}
	// instance-specific zero-shot labeling is the most accurate regime
	// the paper measures; boost the base ability modestly
	acc := p.LabelAccuracy + 0.05
	if acc > 0.99 {
		acc = 0.99
	}
	if rng.Float64() < acc {
		return best, true
	}
	return otherClass(rng, d.NumClasses(), best), true
}

func otherClass(rng *rand.Rand, k, c int) int {
	o := rng.Intn(k - 1)
	if o >= c {
		o++
	}
	return o
}
