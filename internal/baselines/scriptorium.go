package baselines

import (
	"context"
	"fmt"
	"math/rand"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
	"datasculpt/internal/llm"
)

// scriptoriumLFCounts are the LF set sizes ScriptoriumWS reports per
// dataset (the #LFs row of Table 2).
var scriptoriumLFCounts = map[string]int{
	"youtube": 9,
	"sms":     73,
	"imdb":    6,
	"yelp":    11,
	"agnews":  8,
	"spouse":  8,
}

// scriptorium simulation knobs, calibrated to the paper's findings: LFs
// generated from task-level prompts are broad (each is a disjunction over
// many keywords, so coverage is high) and imprecise (about a tenth of the
// disjuncts leak from other classes, and occasionally the whole program
// targets the wrong class), ending ~10.9 points below DataSculpt in mean
// LF accuracy.
const (
	scriptoriumMinDisjuncts = 8
	scriptoriumMaxDisjuncts = 16
	scriptoriumLeakRate     = 0.18
	scriptoriumWrongClass   = 0.05
	// Each generated program costs one short code-generation prompt.
	scriptoriumPromptTokens     = 140
	scriptoriumCompletionTokens = 90
)

// Scriptorium simulates ScriptoriumWS (Huang et al. 2023): a
// code-generation model prompted once per LF with only the task
// description — no instance grounding. The generated programs are
// keyword-disjunction predicates whose breadth and error rate reproduce
// the coverage/accuracy trade-off the paper measures. Returns the LF set
// and a meter billing the code-generation calls. The ctx is checked per
// generated program so a canceled sweep stops promptly.
func Scriptorium(ctx context.Context, d *dataset.Dataset, model string, seed int64) ([]lf.LabelFunction, *llm.Meter, error) {
	total, ok := scriptoriumLFCounts[d.Name]
	if !ok {
		return nil, nil, fmt.Errorf("baselines: no ScriptoriumWS LF count for dataset %q", d.Name)
	}
	sim, err := llm.NewSimulated(model, d, seed+301)
	if err != nil {
		return nil, nil, err
	}
	meter := llm.NewMeter(sim)
	rng := rand.New(rand.NewSource(seed))
	k := d.NumClasses()

	var out []lf.LabelFunction
	for i := 0; i < total; i++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		class := i % k // target class, round-robin
		signals := d.Signal.Class(class)
		nDisj := scriptoriumMinDisjuncts + rng.Intn(scriptoriumMaxDisjuncts-scriptoriumMinDisjuncts+1)
		if nDisj > len(signals) {
			nDisj = len(signals)
		}
		keywords := make([]string, 0, nDisj)
		seen := make(map[string]struct{})
		for len(keywords) < nDisj {
			var sig dataset.KeywordSignal
			if rng.Float64() < scriptoriumLeakRate && k > 1 {
				other := rng.Intn(k - 1)
				if other >= class {
					other++
				}
				cands := d.Signal.Class(other)
				sig = cands[rng.Intn(len(cands))]
			} else {
				sig = signals[rng.Intn(len(signals))]
			}
			if _, dup := seen[sig.Phrase]; dup {
				continue
			}
			seen[sig.Phrase] = struct{}{}
			keywords = append(keywords, sig.Phrase)
		}
		voteClass := class
		if rng.Float64() < scriptoriumWrongClass && k > 1 {
			voteClass = rng.Intn(k - 1)
			if voteClass >= class {
				voteClass++
			}
		}
		f, err := disjunctionLF(d, fmt.Sprintf("scriptorium-%s-%d", d.Name, i), keywords, voteClass)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, f)

		// bill the code-generation call
		meter.Record([]llm.Response{{
			Usage: llm.Usage{
				PromptTokens:     scriptoriumPromptTokens,
				CompletionTokens: scriptoriumCompletionTokens,
			},
		}})
	}

	// The real system's Spouse LF set includes an always-on "no relation"
	// default program (its reported coverage is 1.000); reproduce it.
	if d.Name == "spouse" && d.DefaultClass >= 0 {
		out[len(out)-1] = &lf.PredicateLF{
			LFName: "scriptorium-spouse-default",
			Class:  d.DefaultClass,
			Fire:   func(*dataset.Example) bool { return true },
		}
	}
	return out, meter, nil
}

// disjunctionLF compiles a keyword disjunction (the shape of a generated
// Python program: "if any(k in text for k in ...)") into a serializable
// DisjunctionLF, entity-aware on relation tasks.
func disjunctionLF(d *dataset.Dataset, name string, keywords []string, class int) (lf.LabelFunction, error) {
	return lf.NewDisjunctionLF(name, keywords, class, d.Task == dataset.RelationClassification)
}
