package baselines

import (
	"context"

	"testing"

	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
)

func load(t *testing.T, name string, scale float64) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Load(name, 21, scale)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestWrenchCounts(t *testing.T) {
	want := map[string]int{
		"youtube": 10, "sms": 73, "imdb": 5, "yelp": 8, "agnews": 9, "spouse": 9,
	}
	for name, n := range want {
		d := load(t, name, 0.05)
		lfs, err := Wrench(d)
		if err != nil {
			t.Fatalf("Wrench(%s): %v", name, err)
		}
		if len(lfs) != n {
			t.Errorf("Wrench(%s) = %d LFs, want %d", name, len(lfs), n)
		}
	}
}

func TestWrenchUnknownDataset(t *testing.T) {
	d := load(t, "youtube", 0.05)
	d.Name = "mystery"
	if _, err := Wrench(d); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestWrenchLFsAreAccurate(t *testing.T) {
	d := load(t, "youtube", 0.4)
	lfs, err := Wrench(d)
	if err != nil {
		t.Fatal(err)
	}
	ix := lf.NewIndex(d.Train)
	vm := lf.BuildVoteMatrix(ix, lfs)
	acc, ok := vm.MeanLFAccuracy(dataset.Labels(d.Train))
	if !ok {
		t.Fatal("no active expert LF")
	}
	if acc < 0.7 {
		t.Errorf("expert LF accuracy = %v, want >= 0.7", acc)
	}
	// expert LFs pick common keywords: coverage well above DataSculpt's
	if cov := vm.MeanCoverage(); cov < 0.01 {
		t.Errorf("expert LF coverage = %v, suspiciously low", cov)
	}
}

func TestWrenchRelationTaskUsesEntityLFs(t *testing.T) {
	d := load(t, "spouse", 0.02)
	lfs, err := Wrench(d)
	if err != nil {
		t.Fatal(err)
	}
	// Spouse WRENCH LFs are keyword-group disjunctions compiled over
	// entity-aware inner LFs; a plain text-classification KeywordLF would
	// ignore the target pair and mislabel distractor mentions.
	for _, f := range lfs {
		if _, ok := f.(*lf.KeywordLF); ok {
			t.Fatalf("spouse WRENCH LF %s is entity-unaware", f.Name())
		}
	}
	// and they must abstain on examples without entities
	plain := &dataset.Example{ID: 0, Text: "they married last year", E1Pos: -1, E2Pos: -1}
	plain.EnsureTokens()
	for _, f := range lfs {
		if f.Apply(plain) != lf.Abstain {
			t.Fatalf("spouse WRENCH LF %s fired without entities", f.Name())
		}
	}
}

func TestScriptoriumShape(t *testing.T) {
	d := load(t, "youtube", 0.4)
	lfs, meter, err := Scriptorium(context.Background(), d, "gpt-3.5", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lfs) != 9 {
		t.Fatalf("LF count = %d, want 9", len(lfs))
	}
	if meter.Calls() != 9 || meter.TotalTokens() == 0 {
		t.Errorf("meter = %+v", meter)
	}
	ix := lf.NewIndex(d.Train)
	vm := lf.BuildVoteMatrix(ix, lfs)
	// broad disjunction programs: far higher per-LF coverage than
	// single-keyword LFs
	if cov := vm.MeanCoverage(); cov < 0.05 {
		t.Errorf("scriptorium coverage = %v, want broad (>0.05)", cov)
	}
	acc, ok := vm.MeanLFAccuracy(dataset.Labels(d.Train))
	if !ok {
		t.Fatal("no active scriptorium LF")
	}
	if acc < 0.5 || acc > 0.95 {
		t.Errorf("scriptorium accuracy = %v, want mediocre band", acc)
	}
}

func TestScriptoriumSpouseDefaultLF(t *testing.T) {
	d := load(t, "spouse", 0.02)
	lfs, _, err := Scriptorium(context.Background(), d, "gpt-3.5", 1)
	if err != nil {
		t.Fatal(err)
	}
	// the default program covers everything
	covered := 0
	for _, e := range d.Train {
		if lfs[len(lfs)-1].Apply(e) == d.DefaultClass {
			covered++
		}
	}
	if covered != len(d.Train) {
		t.Errorf("default LF covered %d/%d", covered, len(d.Train))
	}
}

func TestScriptoriumDeterministic(t *testing.T) {
	d1 := load(t, "youtube", 0.05)
	d2 := load(t, "youtube", 0.05)
	a, _, err := Scriptorium(context.Background(), d1, "gpt-3.5", 5)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Scriptorium(context.Background(), d2, "gpt-3.5", 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name() != b[i].Name() {
			t.Fatalf("LF %d differs across equal seeds", i)
		}
	}
}

func TestPromptedLFShape(t *testing.T) {
	d := load(t, "youtube", 0.4)
	lfs, meter, err := PromptedLF(context.Background(), d, "gpt-3.5", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lfs) != 10 {
		t.Fatalf("LF count = %d, want 10", len(lfs))
	}
	// exhaustive: one call per (template, train instance)
	wantCalls := 10 * len(d.Train)
	if meter.Calls() != wantCalls {
		t.Errorf("calls = %d, want %d", meter.Calls(), wantCalls)
	}
	ix := lf.NewIndex(d.Train)
	vm := lf.BuildVoteMatrix(ix, lfs)
	acc, ok := vm.MeanLFAccuracy(dataset.Labels(d.Train))
	if !ok {
		t.Fatal("no active prompted LF")
	}
	if acc < 0.75 {
		t.Errorf("promptedLF accuracy = %v, want high (instance-specific labels)", acc)
	}
	if cov := vm.TotalCoverage(); cov < 0.5 {
		t.Errorf("promptedLF total coverage = %v, want broad", cov)
	}
}

func TestPromptedLFSMSKeywordTemplates(t *testing.T) {
	d := load(t, "sms", 0.2)
	lfs, _, err := PromptedLF(context.Background(), d, "gpt-3.5", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(lfs) != 73 {
		t.Fatalf("LF count = %d, want 73", len(lfs))
	}
	ix := lf.NewIndex(d.Train)
	vm := lf.BuildVoteMatrix(ix, lfs)
	// keyword-confirmation templates: very low per-LF coverage (paper: 0.011)
	if cov := vm.MeanCoverage(); cov > 0.1 {
		t.Errorf("sms per-LF coverage = %v, want low", cov)
	}
	acc, ok := vm.MeanLFAccuracy(dataset.Labels(d.Train))
	if !ok {
		t.Skip("no active keyword template at this scale")
	}
	if acc < 0.75 {
		t.Errorf("sms promptedLF accuracy = %v", acc)
	}
}

func TestPromptedLFCostDominates(t *testing.T) {
	// The paper's central cost claim: exhaustive prompting costs orders of
	// magnitude more than DataSculpt's 50 queries.
	d := load(t, "youtube", 0.4)
	_, meter, err := PromptedLF(context.Background(), d, "gpt-3.5", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.VariantBase)
	cfg.Seed = 21
	cfg.FeatureDim = 2048
	res, err := core.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At this reduced scale (0.4 of youtube's already-small corpus) the
	// gap is ~15x; at full scale across all six datasets it is orders of
	// magnitude (see EXPERIMENTS.md).
	if meter.TotalTokens() < 10*res.TotalTokens() {
		t.Errorf("promptedLF tokens %d vs datasculpt %d: want >= 10x gap",
			meter.TotalTokens(), res.TotalTokens())
	}
}

func TestBaselinesEndToEnd(t *testing.T) {
	d := load(t, "youtube", 0.4)
	cfg := core.DefaultConfig(core.VariantBase)
	cfg.Seed = 21
	cfg.FeatureDim = 2048

	wr, err := Wrench(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.EvaluateLFSet(d, wr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EndMetric < 0.55 {
		t.Errorf("WRENCH end metric = %v", res.EndMetric)
	}

	sc, _, err := Scriptorium(context.Background(), d, "gpt-3.5", 21)
	if err != nil {
		t.Fatal(err)
	}
	res, err = core.EvaluateLFSet(d, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EndMetric < 0.5 {
		t.Errorf("ScriptoriumWS end metric = %v", res.EndMetric)
	}
}
