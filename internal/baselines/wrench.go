// Package baselines implements the three comparison systems of the
// paper's evaluation: the WRENCH benchmark's human-designed LFs, the
// ScriptoriumWS code-generation approach, and PromptedLF's exhaustive
// zero-shot prompting.
package baselines

import (
	"fmt"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
)

// wrenchLFCounts are the hand-designed LF set sizes the WRENCH benchmark
// ships per dataset (the #LFs row of Table 2).
var wrenchLFCounts = map[string]int{
	"youtube": 10,
	"sms":     73,
	"imdb":    5,
	"yelp":    8,
	"agnews":  9,
	"spouse":  9,
}

// wrenchGroupSizes control how many expert keywords one WRENCH LF bundles
// into a disjunction. The real benchmark's LFs are broad heuristics —
// expression lists and regex families with per-LF coverage between 0.04
// (Spouse) and 0.24 (IMDB), far above a single keyword's — except SMS,
// whose 73 LFs are individual keyword rules.
var wrenchGroupSizes = map[string]int{
	"youtube": 5,
	"sms":     1,
	"imdb":    8,
	"yelp":    6,
	"agnews":  6,
	"spouse":  2,
}

// Wrench reconstructs the benchmark's expert LF set for a dataset: the
// highest-frequency, highest-precision phrases per class — exactly what a
// domain expert reaches for first — bundled into disjunction LFs of the
// real set's breadth. The LF count per dataset matches the real
// benchmark; phrases come from the generator's signal table (the stand-in
// for the expert's domain knowledge, see DESIGN.md).
func Wrench(d *dataset.Dataset) ([]lf.LabelFunction, error) {
	total, ok := wrenchLFCounts[d.Name]
	if !ok {
		return nil, fmt.Errorf("baselines: no WRENCH LF count for dataset %q", d.Name)
	}
	groupSize := wrenchGroupSizes[d.Name]
	if groupSize <= 0 {
		groupSize = 1
	}
	k := d.NumClasses()

	// Per-class LF quotas. The real WRENCH spouse LF set is dominated by
	// negative-signal heuristics (family/professional-relation cues) with
	// few positive-class LFs — which is why its paper F1 on Spouse is
	// only 0.181 — so its class allocation is reproduced explicitly.
	quota := make([]int, k)
	if d.Name == "spouse" {
		quota[0], quota[1] = 7, 2
	} else {
		for c := range quota {
			quota[c] = (total + k - 1 - c) / k
		}
	}

	var out []lf.LabelFunction
	for c := 0; c < k; c++ {
		ranked := d.Signal.TopByWeight(c, quota[c]*groupSize)
		for g := 0; g < quota[c]; g++ {
			lo := g * groupSize
			if lo >= len(ranked) {
				return nil, fmt.Errorf("baselines: dataset %q signal table too small for %d WRENCH LFs", d.Name, total)
			}
			hi := lo + groupSize
			if hi > len(ranked) {
				hi = len(ranked)
			}
			if groupSize == 1 {
				f, err := newKeywordLF(d, ranked[lo].Phrase, c)
				if err != nil {
					return nil, err
				}
				out = append(out, f)
				continue
			}
			keywords := make([]string, 0, hi-lo)
			for _, sig := range ranked[lo:hi] {
				keywords = append(keywords, sig.Phrase)
			}
			f, err := disjunctionLF(d, fmt.Sprintf("wrench-%s-c%d-%d", d.Name, c, g), keywords, c)
			if err != nil {
				return nil, err
			}
			out = append(out, f)
		}
	}
	if len(out) != total {
		return nil, fmt.Errorf("baselines: built %d WRENCH LFs for %q, want %d", len(out), d.Name, total)
	}
	return out, nil
}

// newKeywordLF builds the task-appropriate keyword LF flavour.
func newKeywordLF(d *dataset.Dataset, phrase string, class int) (lf.LabelFunction, error) {
	if d.Task == dataset.RelationClassification {
		return lf.NewEntityKeywordLF(phrase, class)
	}
	return lf.NewKeywordLF(phrase, class)
}
