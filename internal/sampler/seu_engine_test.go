package sampler

import (
	"math"
	"math/rand"
	"testing"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
	"datasculpt/internal/obs"
)

// pickSequence drains n SEU selections from a fresh state, marking each
// pick used — the selection trace whose bit-identity the engine must
// preserve across worker counts and cache states.
func pickSequence(t *testing.T, n, workers int, seed int64, fresh bool) []int {
	t.Helper()
	s := newState(t)
	s.Workers = workers
	rng := rand.New(rand.NewSource(seed))
	seu := NewSEU()
	var picks []int
	for i := 0; i < n; i++ {
		if fresh {
			seu = NewSEU() // cold engine every call: no memo, no keyword cache
		}
		id := seu.Next(s, rng)
		if id < 0 {
			break
		}
		if s.Used[id] {
			t.Fatalf("pick %d selected used instance %d", i, id)
		}
		s.Used[id] = true
		picks = append(picks, id)
	}
	return picks
}

// TestSEUParallelBitIdentical: the scored selection trace must not
// depend on the worker count (parallel sections write per-index state
// only; all float reductions replay the sequential order).
func TestSEUParallelBitIdentical(t *testing.T) {
	want := pickSequence(t, 25, 1, 42, false)
	for _, workers := range []int{2, 4, 7} {
		if got := pickSequence(t, 25, workers, 42, false); !equalInts(got, want) {
			t.Fatalf("workers=%d picked %v, sequential picked %v", workers, got, want)
		}
	}
}

// TestSEUCachedMatchesUncached: serving scores from the run-lifetime
// memo must select exactly the instances a cold engine per call would.
func TestSEUCachedMatchesUncached(t *testing.T) {
	cached := pickSequence(t, 25, 1, 7, false)
	uncached := pickSequence(t, 25, 1, 7, true)
	if !equalInts(cached, uncached) {
		t.Fatalf("cached picks %v, uncached picks %v", cached, uncached)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSEUEngineMatchesNaiveScorerProperty: on varied generated splits,
// every memoized engine score must equal the naive from-scratch scorer
// bit for bit, both on first computation and when served from cache.
func TestSEUEngineMatchesNaiveScorerProperty(t *testing.T) {
	cases := []struct {
		name  string
		seed  int64
		scale float64
	}{
		{"youtube", 3, 0.1},
		{"youtube", 91, 0.15},
		{"sms", 17, 0.05},
	}
	for _, tc := range cases {
		d, err := dataset.Load(tc.name, tc.seed, tc.scale)
		if err != nil {
			t.Fatal(err)
		}
		s := &State{
			Dataset:    d,
			Used:       make([]bool, len(d.Train)),
			TrainIndex: lf.NewIndex(d.Train),
			ValidIndex: lf.NewIndex(d.Valid),
			Workers:    3,
		}
		seu := NewSEU()
		var ids []int
		for i := 0; i < len(d.Train); i += 7 {
			ids = append(ids, i)
		}
		eng := seu.engine(s)
		eng.scoreBatch(s, ids)
		for _, i := range ids {
			want := seu.instanceScore(s, d.Train[i])
			if got := eng.scores[i]; got != want {
				t.Fatalf("%s/%d: engine score %v != naive score %v for instance %d",
					tc.name, tc.seed, got, want, i)
			}
		}
		// A second batch over the same ids is pure cache and must not
		// perturb a single score.
		before := append([]float64(nil), eng.scores...)
		eng.scoreBatch(s, ids)
		for _, i := range ids {
			if eng.scores[i] != before[i] {
				t.Fatalf("%s/%d: cached rescoring changed instance %d", tc.name, tc.seed, i)
			}
		}
	}
}

// TestSEUMemoizedNextAllocs is the regression gate on the cold path:
// once the pool has been scored, repeat Next calls must not allocate
// per-keyword or per-instance scoring state (the only allocation left
// is the unused-id list).
func TestSEUMemoizedNextAllocs(t *testing.T) {
	s := newState(t)
	seu := NewSEU()
	rng := rand.New(rand.NewSource(7))
	warm := func() bool {
		for _, sc := range seu.eng.scores {
			if math.IsNaN(sc) {
				return false
			}
		}
		return true
	}
	seu.Next(s, rng)
	for i := 0; i < 500 && !warm(); i++ {
		seu.Next(s, rng)
	}
	if !warm() {
		t.Fatal("pool never fully scored during warmup")
	}
	allocs := testing.AllocsPerRun(50, func() { seu.Next(s, rng) })
	if allocs > 4 {
		t.Errorf("memoized Next allocates %.1f objects per call, want <= 4", allocs)
	}
}

// TestSEUAllStopwordPoolFallsBackToRNG: when no candidate yields a
// scorable keyword (every score -Inf), SEU must make an explicit rng
// draw over the candidates like the other samplers — the old code
// silently returned the first shuffled id, which without a shuffle
// (pool <= Candidates) was always instance 0.
func TestSEUAllStopwordPoolFallsBackToRNG(t *testing.T) {
	mk := func(id int, text string, label int) *dataset.Example {
		e := &dataset.Example{ID: id, Text: text, Label: label, E1Pos: -1, E2Pos: -1}
		e.EnsureTokens()
		return e
	}
	var train []*dataset.Example
	for i := 0; i < 12; i++ {
		train = append(train, mk(i, "the of and to in is was", i%2))
	}
	valid := []*dataset.Example{mk(0, "the of and", 0), mk(1, "to in is", 1)}
	d := &dataset.Dataset{
		Name:         "stopwords",
		ClassNames:   []string{"neg", "pos"},
		DefaultClass: dataset.NoDefaultClass,
		TrainLabeled: true,
		Train:        train,
		Valid:        valid,
		Test:         valid,
	}
	newStop := func() *State {
		return &State{
			Dataset:    d,
			Used:       make([]bool, len(d.Train)),
			TrainIndex: lf.NewIndex(d.Train),
			ValidIndex: lf.NewIndex(d.Valid),
		}
	}
	seen := map[int]bool{}
	for seed := int64(1); seed <= 10; seed++ {
		s := newStop()
		a := NewSEU().Next(s, rand.New(rand.NewSource(seed)))
		b := NewSEU().Next(newStop(), rand.New(rand.NewSource(seed)))
		if a < 0 || a >= len(d.Train) {
			t.Fatalf("seed %d: fallback returned %d", seed, a)
		}
		if a != b {
			t.Fatalf("seed %d: fallback nondeterministic (%d vs %d)", seed, a, b)
		}
		seen[a] = true
	}
	if len(seen) < 2 {
		t.Errorf("fallback returned the same instance for all 10 seeds (%v): not an rng draw", seen)
	}
}

// TestSEUMetrics: an instrumented State must account keyword-utility
// computations and score-memo traffic under sampler_seu_*.
func TestSEUMetrics(t *testing.T) {
	s := newState(t)
	s.Metrics = obs.NewRegistry()
	seu := NewSEU()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 8; i++ {
		seu.Next(s, rng) // nothing marked used: repeat calls hit the memo
	}
	if kw := s.Metrics.CounterValue("sampler_seu_keywords_scored_total"); kw == 0 {
		t.Error("no keyword utilities accounted")
	}
	misses := s.Metrics.CounterValue("sampler_seu_score_cache_misses_total")
	hits := s.Metrics.CounterValue("sampler_seu_score_cache_hits_total")
	if misses == 0 || hits == 0 {
		t.Errorf("cache accounting: hits=%v misses=%v, want both > 0", hits, misses)
	}
	if misses > float64(len(s.Dataset.Train)) {
		t.Errorf("%v misses for a %d-instance pool: instances scored more than once",
			misses, len(s.Dataset.Train))
	}
}

// TestSEUEngineRebuildsOnNewState: a Sampler value reused across runs
// must not leak one run's cache into the next (the indices' identity is
// the cache key).
func TestSEUEngineRebuildsOnNewState(t *testing.T) {
	seu := NewSEU()
	s1 := newState(t)
	rng := rand.New(rand.NewSource(3))
	seu.Next(s1, rng)
	eng1 := seu.eng
	seu.Next(s1, rng)
	if seu.eng != eng1 {
		t.Fatal("engine rebuilt for an unchanged state")
	}
	s2 := newState(t)
	seu.Next(s2, rng)
	if seu.eng == eng1 {
		t.Fatal("engine survived a state swap")
	}
}
