// Package sampler implements the query-instance selection strategies of
// paper §3.4: random sampling (the default), uncertainty sampling over the
// current downstream model's predictive entropy (Lewis 1995), and Select
// by Expected Utility (SEU, Hsieh et al. 2022 / Nemo), which scores
// instances by the expected utility of the LFs a user (here: the LLM)
// would plausibly derive from them.
package sampler

import (
	"math"
	"math/rand"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
	"datasculpt/internal/metrics"
	"datasculpt/internal/obs"
	"datasculpt/internal/textproc"
)

// State is the pipeline information available at selection time.
type State struct {
	// Dataset under labeling.
	Dataset *dataset.Dataset
	// Used marks train instances already queried.
	Used []bool
	// TrainProba holds the current end model's class probabilities over
	// the train split, or nil before the first interim model exists.
	TrainProba [][]float64
	// LabelProba holds the current label model's posteriors over the
	// train split (nil entries for uncovered instances); used by QBC.
	LabelProba [][]float64
	// TrainVecs holds feature vectors of the train split for geometric
	// samplers (CoreSet); nil unless the pipeline populates it.
	TrainVecs []*textproc.SparseVector
	// TrainIndex and ValidIndex are shared inverted indices over the
	// respective splits (SEU uses them for coverage/accuracy estimates).
	TrainIndex, ValidIndex *lf.Index
	// Workers bounds the goroutines scoring-heavy samplers may fan out
	// to (<=1 means sequential). Selection results are bit-identical at
	// every setting — parallel sections only write per-index state.
	Workers int
	// Metrics receives sampler telemetry (sampler_seu_*); nil disables
	// it for free.
	Metrics *obs.Registry

	// validGold caches the validation gold labels, which are immutable
	// for the life of the run.
	validGold []int
}

// ValidGold returns the validation split's gold labels, materialized
// once per State. SEU's keyword-accuracy estimates read them for every
// keyword; re-extracting them per candidate was a dominant allocation
// source.
func (s *State) ValidGold() []int {
	if s.validGold == nil {
		s.validGold = dataset.Labels(s.ValidIndex.Split())
	}
	return s.validGold
}

// unusedIDs lists the selectable instance ids.
func (s *State) unusedIDs() []int {
	out := make([]int, 0, len(s.Used))
	for i, u := range s.Used {
		if !u {
			out = append(out, i)
		}
	}
	return out
}

// unusedCount counts the selectable ids without materializing them.
func (s *State) unusedCount() int {
	n := 0
	for _, u := range s.Used {
		if !u {
			n++
		}
	}
	return n
}

// nthUnused returns the id of the r-th (0-based, ascending) unused
// instance — the streamed equivalent of unusedIDs()[r].
func (s *State) nthUnused(r int) int {
	for i, u := range s.Used {
		if u {
			continue
		}
		if r == 0 {
			return i
		}
		r--
	}
	return -1
}

// randomUnused draws uniformly among the count unused ids, consuming
// exactly one rng.Intn like the historical ids[rng.Intn(len(ids))] —
// bit-identical at every corpus size, O(1) memory.
func (s *State) randomUnused(rng *rand.Rand, count int) int {
	return s.nthUnused(rng.Intn(count))
}

// reservoirThreshold is the train-split size above which candidate
// subsampling switches from materialize-and-shuffle to reservoir
// sampling. It sits above every Table-1 train split at scale 1 (the
// largest, Agnews, has 96k), so runs on the reproduced corpora keep the
// historical rng consumption bit for bit; only out-of-core scale factors
// cross it. A var, not a const, so tests can lower it.
var reservoirThreshold = 1 << 17

// sampleUnused returns at most k unused ids. Below reservoirThreshold it
// reproduces the legacy behavior exactly — materialize the ascending ids
// and, only when k is binding, Fisher-Yates shuffle before truncation.
// Above the threshold it streams a uniform k-reservoir (Algorithm R) over
// the unused ids in O(k) memory.
func (s *State) sampleUnused(rng *rand.Rand, k int) []int {
	if len(s.Used) < reservoirThreshold {
		ids := s.unusedIDs()
		if k < len(ids) {
			rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
			ids = ids[:k]
		}
		return ids
	}
	res := make([]int, 0, k)
	seen := 0
	for i, u := range s.Used {
		if u {
			continue
		}
		seen++
		if len(res) < k {
			res = append(res, i)
		} else if j := rng.Intn(seen); j < k {
			res[j] = i
		}
	}
	return res
}

// Sampler picks the next query instance. Next returns -1 when the pool is
// exhausted.
type Sampler interface {
	// Name identifies the strategy in reports.
	Name() string
	// Next returns the id of the next train instance to query.
	Next(s *State, rng *rand.Rand) int
}

// Random selects uniformly among unqueried instances — the paper's
// default strategy, and the best-performing one in its Table 4.
type Random struct{}

// Name implements Sampler.
func (Random) Name() string { return "random" }

// Next implements Sampler. The draw streams over the used-marks in two
// passes (count, then select), so no id slice is ever materialized; the
// selected id and rng consumption are bit-identical to the historical
// unusedIDs()[rng.Intn(len)] at every corpus size.
func (Random) Next(s *State, rng *rand.Rand) int {
	count := s.unusedCount()
	if count == 0 {
		return -1
	}
	return s.randomUnused(rng, count)
}

// Uncertain selects the unqueried instance with the highest predictive
// entropy under the current downstream model, falling back to random
// before the first model exists.
type Uncertain struct{}

// Name implements Sampler.
func (Uncertain) Name() string { return "uncertain" }

// Next implements Sampler. The entropy argmax streams over the
// used-marks in ascending id order (the order unusedIDs produced), so no
// id slice is materialized and selections stay bit-identical.
func (Uncertain) Next(s *State, rng *rand.Rand) int {
	count := s.unusedCount()
	if count == 0 {
		return -1
	}
	if s.TrainProba == nil {
		return s.randomUnused(rng, count)
	}
	best, bestH := -1, -1.0
	for i, used := range s.Used {
		if used {
			continue
		}
		p := s.TrainProba[i]
		if p == nil {
			continue
		}
		if h := metrics.Entropy(p); h > bestH {
			best, bestH = i, h
		}
	}
	if best < 0 {
		return s.randomUnused(rng, count)
	}
	return best
}

// SEU implements Select-by-Expected-Utility. For each candidate instance
// it enumerates the keyword LFs the instance could give rise to, scores
// each LF's utility as (estimated accuracy on the validation set) ×
// (train coverage), weights LFs by a softmax user model that prefers
// accurate LFs, and selects the instance with the highest expected
// utility.
//
// As the paper observes (Table 4), this concentrates selection on
// instances containing the same few high-utility keywords, which yields
// redundant LFs that the filters prune — reproducing SEU's smaller LF
// sets.
type SEU struct {
	// Candidates bounds how many unqueried instances are scored per call
	// (default 150); scoring every instance of Agnews would be wasteful.
	Candidates int
	// MaxKeywords bounds the candidate LFs enumerated per instance
	// (default 25).
	MaxKeywords int
	// Tau is the softmax sharpness of the user model (default 8).
	Tau float64

	// eng is the run-lifetime scoring engine (keyword-utility cache and
	// per-instance score memo). It is built lazily on first Next and
	// rebuilt whenever the State's indices change identity, so a SEU
	// value reused across runs stays correct.
	eng *seuEngine
}

// NewSEU constructs an SEU sampler with default parameters.
func NewSEU() *SEU { return &SEU{Candidates: 150, MaxKeywords: 25, Tau: 8} }

// Name implements Sampler.
func (*SEU) Name() string { return "seu" }

// Next implements Sampler. Scoring goes through the memoized engine
// (see seu_engine.go): every candidate's expected utility is fully
// determined by the immutable indices and gold labels, so an instance
// is scored at most once per run and repeat encounters are cache hits.
// The rng is consumed exactly as before — one Shuffle when the pool
// exceeds Candidates — so sampled indices are bit-identical to the
// naive scorer's; the only divergence is the exhausted-scoring
// fallback below.
func (u *SEU) Next(s *State, rng *rand.Rand) int {
	count := s.unusedCount()
	if count == 0 {
		return -1
	}
	cand := u.Candidates
	if cand <= 0 {
		cand = 150
	}
	ids := s.sampleUnused(rng, cand)
	eng := u.engine(s)
	eng.scoreBatch(s, ids)
	best, bestScore := -1, math.Inf(-1)
	for _, i := range ids {
		if score := eng.scores[i]; score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		// Every candidate yielded no scorable keyword (-Inf). Fall back
		// to an explicit rng draw like Random/Uncertain/QBC/CoreSet do,
		// instead of silently returning the first shuffled id.
		return ids[rng.Intn(len(ids))]
	}
	return best
}

// instanceScore computes the expected LF utility of one instance from
// scratch. It is the naive reference implementation the engine's
// property tests compare against; Next never calls it.
func (u *SEU) instanceScore(s *State, e *dataset.Example) float64 {
	e.EnsureTokens()
	keywords := textproc.CandidateKeywords(e.Tokens)
	maxK := u.MaxKeywords
	if maxK <= 0 {
		maxK = 25
	}
	if len(keywords) > maxK {
		keywords = keywords[:maxK]
	}
	tau := u.Tau
	if tau <= 0 {
		tau = 8
	}
	k := s.Dataset.NumClasses()
	gold := dataset.Labels(s.ValidIndex.Split())
	trainN := float64(s.TrainIndex.Size())

	type cand struct {
		acc, cov float64
	}
	var cands []cand
	for _, kw := range keywords {
		validDocs := s.ValidIndex.Docs(kw)
		trainDocs := s.TrainIndex.Docs(kw)
		if len(trainDocs) == 0 {
			continue
		}
		cov := float64(len(trainDocs)) / trainN
		// estimated accuracy of λ(kw,c) for the best class c on validation;
		// unseen keywords get the uninformative prior 1/k
		bestAcc := 1.0 / float64(k)
		if len(validDocs) > 0 {
			counts := make([]int, k)
			total := 0
			for _, id := range validDocs {
				if g := gold[id]; g >= 0 {
					counts[g]++
					total++
				}
			}
			if total > 0 {
				bc := 0
				for c := 1; c < k; c++ {
					if counts[c] > counts[bc] {
						bc = c
					}
				}
				// smoothed precision toward the prior
				bestAcc = (float64(counts[bc]) + 1) / (float64(total) + float64(k))
			}
		}
		cands = append(cands, cand{acc: bestAcc, cov: cov})
	}
	if len(cands) == 0 {
		return math.Inf(-1)
	}
	// softmax user model over accuracy
	var z float64
	for _, c := range cands {
		z += math.Exp(tau * c.acc)
	}
	var score float64
	for _, c := range cands {
		p := math.Exp(tau*c.acc) / z
		score += p * c.acc * c.cov
	}
	return score
}

// ByName resolves a sampler from its report name.
func ByName(name string) (Sampler, bool) {
	switch name {
	case "random":
		return Random{}, true
	case "uncertain":
		return Uncertain{}, true
	case "seu":
		return NewSEU(), true
	case "qbc":
		return QBC{}, true
	case "coreset":
		return NewCoreSet(), true
	default:
		return nil, false
	}
}
