package sampler

import (
	"math"
	"time"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
	"datasculpt/internal/obs"
	"datasculpt/internal/par"
	"datasculpt/internal/textproc"
)

// seuEngine is SEU's incremental scoring engine. Every input to an
// instance's expected-utility score — the train/valid inverted indices,
// the validation gold labels, and the sampler's hyperparameters — is
// immutable for the life of a run, so the engine computes each keyword's
// utility and each instance's score exactly once and serves repeat
// encounters from memory. The naive scorer re-derived all of it per
// candidate per iteration, which is why SEU burned ~38M allocations on
// the Agnews benchmark while the rest of the pipeline had gone
// incremental.
type seuEngine struct {
	trainIx, validIx *lf.Index
	gold             []int // validation gold labels, shared with State
	trainN           float64
	k                int // number of classes

	// Resolved hyperparameters (defaults applied once).
	maxK int
	tau  float64

	// kw is the run-lifetime keyword-utility cache: canonical phrase →
	// smoothed validation accuracy + train coverage. It is written only
	// between scoring batches (merge phase), never during the parallel
	// section, so workers read it lock-free.
	kw map[string]kwUtil

	// scores memoizes per-instance expected utility by train id; NaN
	// marks "not yet scored" (a real score is finite or -Inf, never NaN).
	scores []float64

	m seuMetrics
}

// kwUtil is one keyword's cached utility estimate. ok is false for
// keywords with zero train coverage, which the user model skips.
type kwUtil struct {
	acc, cov float64
	ok       bool
}

// seuMetrics holds the sampler_seu_* registry handles. All handles are
// nil-safe: an un-instrumented State pays nothing.
type seuMetrics struct {
	keywords *obs.Counter
	hits     *obs.Counter
	misses   *obs.Counter
	seconds  *obs.Histogram
}

func newSEUMetrics(reg *obs.Registry) seuMetrics {
	return seuMetrics{
		keywords: reg.Counter("sampler_seu_keywords_scored_total",
			"distinct keywords whose utility entered the run-lifetime SEU cache"),
		hits: reg.Counter("sampler_seu_score_cache_hits_total",
			"SEU candidate instances served from the per-instance score memo"),
		misses: reg.Counter("sampler_seu_score_cache_misses_total",
			"SEU candidate instances scored for the first time"),
		seconds: reg.Histogram("sampler_seu_score_seconds",
			"wall clock of one SEU candidate-scoring batch", obs.DurationBuckets),
	}
}

// engine returns the run-lifetime scoring engine, building it on first
// use and rebuilding it when the State's indices change identity (a new
// run reuses the Sampler value but never the indices).
func (u *SEU) engine(s *State) *seuEngine {
	if u.eng == nil || u.eng.trainIx != s.TrainIndex || u.eng.validIx != s.ValidIndex {
		u.eng = newSEUEngine(s, u)
	}
	return u.eng
}

func newSEUEngine(s *State, u *SEU) *seuEngine {
	maxK := u.MaxKeywords
	if maxK <= 0 {
		maxK = 25
	}
	tau := u.Tau
	if tau <= 0 {
		tau = 8
	}
	// Pre-tokenization pass: scoring reads Tokens from worker
	// goroutines, and EnsureTokens mutates the example on first read.
	// Tokenizing the whole split up front (a no-op when the shared
	// indices already did it) makes the parallel phase read-only.
	dataset.PreTokenize(s.Dataset.Train)
	e := &seuEngine{
		trainIx: s.TrainIndex,
		validIx: s.ValidIndex,
		gold:    s.ValidGold(),
		trainN:  float64(s.TrainIndex.Size()),
		k:       s.Dataset.NumClasses(),
		maxK:    maxK,
		tau:     tau,
		kw:      make(map[string]kwUtil, 1024),
		scores:  make([]float64, len(s.Dataset.Train)),
		m:       newSEUMetrics(s.Metrics),
	}
	for i := range e.scores {
		e.scores[i] = math.NaN()
	}
	return e
}

// scoreBatch ensures every id in ids has a memoized score. Unscored
// candidates are scored in parallel: workers read the frozen keyword
// cache and write only their own candidate's slot; utilities for
// keywords not yet cached are computed into per-candidate overflow maps
// and merged sequentially afterwards. Because a keyword's utility is a
// pure function of the immutable indices, duplicate computation within
// a batch yields bit-identical values, so results are independent of
// the worker count and of what happens to be cached.
func (e *seuEngine) scoreBatch(s *State, ids []int) {
	var todo []int
	for _, id := range ids {
		if math.IsNaN(e.scores[id]) {
			todo = append(todo, id)
		}
	}
	e.m.hits.AddInt(len(ids) - len(todo))
	e.m.misses.AddInt(len(todo))
	if len(todo) == 0 {
		return
	}
	start := time.Now()
	train := s.Dataset.Train
	fresh := make([]map[string]kwUtil, len(todo))
	par.For(s.Workers, len(todo), 4, func(pos int) {
		id := todo[pos]
		score, local := e.scoreInstance(train[id])
		e.scores[id] = score
		fresh[pos] = local
	})
	for _, local := range fresh {
		for kw, util := range local {
			if _, ok := e.kw[kw]; !ok {
				e.kw[kw] = util
				e.m.keywords.Inc()
			}
		}
	}
	e.m.seconds.Observe(time.Since(start).Seconds())
}

// scoreInstance computes one instance's expected LF utility using
// cached keyword utilities where available. Utilities it had to compute
// are returned for the caller to merge into the shared cache (nil when
// everything hit). The arithmetic — enumeration order, smoothing,
// softmax accumulation — replays the naive scorer exactly, so scores
// are bit-identical to an uncached run.
func (e *seuEngine) scoreInstance(ex *dataset.Example) (float64, map[string]kwUtil) {
	keywords := textproc.CandidateKeywords(ex.Tokens)
	if len(keywords) > e.maxK {
		keywords = keywords[:e.maxK]
	}
	var local map[string]kwUtil
	type cand struct {
		acc, cov float64
	}
	var cands []cand
	for _, kw := range keywords {
		util, ok := e.kw[kw]
		if !ok {
			util = e.computeKeyword(kw)
			if local == nil {
				local = make(map[string]kwUtil, len(keywords))
			}
			local[kw] = util
		}
		if !util.ok {
			continue
		}
		cands = append(cands, cand{acc: util.acc, cov: util.cov})
	}
	if len(cands) == 0 {
		return math.Inf(-1), local
	}
	// softmax user model over accuracy
	var z float64
	for _, c := range cands {
		z += math.Exp(e.tau * c.acc)
	}
	var score float64
	for _, c := range cands {
		p := math.Exp(e.tau*c.acc) / z
		score += p * c.acc * c.cov
	}
	return score, local
}

// computeKeyword derives one keyword's utility from the shared indices:
// train coverage from the posting lists, and the smoothed validation
// accuracy of λ(kw, c) for the keyword's best class c. Unseen keywords
// keep the uninformative prior 1/k.
func (e *seuEngine) computeKeyword(kw string) kwUtil {
	nTrain := e.trainIx.CountDocs(kw)
	if nTrain == 0 {
		return kwUtil{}
	}
	util := kwUtil{cov: float64(nTrain) / e.trainN, ok: true}
	bestAcc := 1.0 / float64(e.k)
	counts := make([]int, e.k)
	total := 0
	e.validIx.ForEachDoc(kw, func(id int32) {
		if g := e.gold[id]; g >= 0 {
			counts[g]++
			total++
		}
	})
	if total > 0 {
		bc := 0
		for c := 1; c < e.k; c++ {
			if counts[c] > counts[bc] {
				bc = c
			}
		}
		// smoothed precision toward the prior
		bestAcc = (float64(counts[bc]) + 1) / (float64(total) + float64(e.k))
	}
	util.acc = bestAcc
	return util
}
