package sampler

import (
	"math/rand"
	"testing"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
)

func newState(t *testing.T) *State {
	t.Helper()
	d, err := dataset.Load("youtube", 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return &State{
		Dataset:    d,
		Used:       make([]bool, len(d.Train)),
		TrainIndex: lf.NewIndex(d.Train),
		ValidIndex: lf.NewIndex(d.Valid),
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"random", "uncertain", "seu"} {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%s) missing", name)
		}
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("ByName(bogus) resolved")
	}
}

func TestRandomSamplerRespectsUsed(t *testing.T) {
	s := newState(t)
	rng := rand.New(rand.NewSource(1))
	// mark all but one used
	keep := 17
	for i := range s.Used {
		s.Used[i] = i != keep
	}
	var r Random
	for trial := 0; trial < 10; trial++ {
		if got := r.Next(s, rng); got != keep {
			t.Fatalf("selected used instance %d", got)
		}
	}
	s.Used[keep] = true
	if got := r.Next(s, rng); got != -1 {
		t.Errorf("exhausted pool returned %d, want -1", got)
	}
}

func TestRandomSamplerCoversPool(t *testing.T) {
	s := newState(t)
	rng := rand.New(rand.NewSource(2))
	seen := map[int]bool{}
	var r Random
	for i := 0; i < 50; i++ {
		id := r.Next(s, rng)
		if id < 0 || id >= len(s.Used) {
			t.Fatalf("id %d out of range", id)
		}
		if s.Used[id] {
			t.Fatalf("picked used id %d", id)
		}
		s.Used[id] = true
		seen[id] = true
	}
	if len(seen) != 50 {
		t.Errorf("selected %d distinct instances, want 50", len(seen))
	}
}

func TestUncertainFallsBackToRandom(t *testing.T) {
	s := newState(t)
	rng := rand.New(rand.NewSource(3))
	var u Uncertain
	if got := u.Next(s, rng); got < 0 {
		t.Error("fallback selection failed")
	}
}

func TestUncertainPicksHighestEntropy(t *testing.T) {
	s := newState(t)
	rng := rand.New(rand.NewSource(4))
	s.TrainProba = make([][]float64, len(s.Dataset.Train))
	for i := range s.TrainProba {
		s.TrainProba[i] = []float64{0.95, 0.05} // confident
	}
	uncertainID := 23
	s.TrainProba[uncertainID] = []float64{0.5, 0.5}
	var u Uncertain
	if got := u.Next(s, rng); got != uncertainID {
		t.Errorf("selected %d, want max-entropy %d", got, uncertainID)
	}
	// once used, the next pick is a different instance
	s.Used[uncertainID] = true
	if got := u.Next(s, rng); got == uncertainID {
		t.Error("selected a used instance")
	}
}

func TestSEUSelectsKeywordRichInstances(t *testing.T) {
	s := newState(t)
	rng := rand.New(rand.NewSource(5))
	seu := NewSEU()
	id := seu.Next(s, rng)
	if id < 0 {
		t.Fatal("SEU returned -1 on a fresh pool")
	}
	if s.Used[id] {
		t.Fatal("SEU picked a used instance")
	}
	// SEU must prefer instances with at least one known-accurate keyword:
	// compare against an instance that is pure filler (entropy source:
	// take the chosen one and verify its score beats a few random ones).
	chosen := seu.instanceScore(s, s.Dataset.Train[id])
	worse := 0
	for trial := 0; trial < 20; trial++ {
		other := rng.Intn(len(s.Dataset.Train))
		if seu.instanceScore(s, s.Dataset.Train[other]) <= chosen {
			worse++
		}
	}
	if worse < 15 {
		t.Errorf("SEU choice beats only %d/20 random instances", worse)
	}
}

func TestSEUDeterministicGivenSeed(t *testing.T) {
	s1, s2 := newState(t), newState(t)
	a := NewSEU().Next(s1, rand.New(rand.NewSource(9)))
	b := NewSEU().Next(s2, rand.New(rand.NewSource(9)))
	if a != b {
		t.Errorf("SEU nondeterministic: %d vs %d", a, b)
	}
}

func TestSEUExhaustedPool(t *testing.T) {
	s := newState(t)
	for i := range s.Used {
		s.Used[i] = true
	}
	if got := NewSEU().Next(s, rand.New(rand.NewSource(1))); got != -1 {
		t.Errorf("exhausted pool returned %d", got)
	}
}
