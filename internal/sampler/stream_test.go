package sampler

import (
	"math/rand"
	"testing"
)

// legacyRandomNext is the pre-streaming Random draw, kept as the
// bit-identity oracle.
func legacyRandomNext(s *State, rng *rand.Rand) int {
	ids := s.unusedIDs()
	if len(ids) == 0 {
		return -1
	}
	return ids[rng.Intn(len(ids))]
}

// legacySample is the pre-streaming candidate subsampling.
func legacySample(s *State, rng *rand.Rand, k int) []int {
	ids := s.unusedIDs()
	if k < len(ids) {
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		ids = ids[:k]
	}
	return ids
}

func usedPattern(rng *rand.Rand, n int, frac float64) []bool {
	used := make([]bool, n)
	for i := range used {
		used[i] = rng.Float64() < frac
	}
	return used
}

// TestStreamedRandomBitIdentical: the two-pass draw equals the
// materialized draw — same id, same rng consumption — across many pool
// shapes.
func TestStreamedRandomBitIdentical(t *testing.T) {
	meta := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		s := &State{Used: usedPattern(meta, 200, meta.Float64())}
		seed := meta.Int63()
		a, b := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
		got := Random{}.Next(s, a)
		want := legacyRandomNext(s, b)
		if got != want {
			t.Fatalf("trial %d: streamed %d != legacy %d", trial, got, want)
		}
		// rng streams must stay in lockstep after the draw
		if a.Int63() != b.Int63() {
			t.Fatalf("trial %d: rng consumption diverged", trial)
		}
	}
}

// TestSampleUnusedLegacyBitIdentical: below the reservoir threshold,
// sampleUnused reproduces materialize-and-shuffle exactly.
func TestSampleUnusedLegacyBitIdentical(t *testing.T) {
	meta := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		s := &State{Used: usedPattern(meta, 300, 0.4)}
		for _, k := range []int{5, 50, 1000} {
			seed := meta.Int63()
			a, b := rand.New(rand.NewSource(seed)), rand.New(rand.NewSource(seed))
			got := s.sampleUnused(a, k)
			want := legacySample(s, b, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: len %d != %d", trial, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d k=%d: [%d] %d != %d", trial, k, i, got[i], want[i])
				}
			}
			if a.Int63() != b.Int63() {
				t.Fatalf("trial %d k=%d: rng consumption diverged", trial, k)
			}
		}
	}
}

// TestSampleUnusedReservoir: above the threshold the reservoir returns
// exactly k distinct unused ids, uniformly enough that every id shows up
// across repeated draws, in O(k) memory (no shuffle of the full pool).
func TestSampleUnusedReservoir(t *testing.T) {
	old := reservoirThreshold
	reservoirThreshold = 64
	defer func() { reservoirThreshold = old }()

	const n, k = 500, 40
	s := &State{Used: make([]bool, n)}
	for i := 0; i < n; i += 3 {
		s.Used[i] = true // 1/3 used
	}
	unused := map[int]bool{}
	for i, u := range s.Used {
		if !u {
			unused[i] = true
		}
	}

	hits := map[int]int{}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 400; trial++ {
		got := s.sampleUnused(rng, k)
		if len(got) != k {
			t.Fatalf("trial %d: sampled %d ids, want %d", trial, len(got), k)
		}
		seen := map[int]bool{}
		for _, id := range got {
			if !unused[id] {
				t.Fatalf("trial %d: sampled used id %d", trial, id)
			}
			if seen[id] {
				t.Fatalf("trial %d: duplicate id %d", trial, id)
			}
			seen[id] = true
			hits[id]++
		}
	}
	for id := range unused {
		if hits[id] == 0 {
			t.Errorf("id %d never sampled across 400 reservoir draws", id)
		}
	}
}

// TestSampleUnusedReservoirSmallPool: when the pool is at most k the
// reservoir returns every unused id ascending and consumes no rng.
func TestSampleUnusedReservoirSmallPool(t *testing.T) {
	old := reservoirThreshold
	reservoirThreshold = 8
	defer func() { reservoirThreshold = old }()

	s := &State{Used: make([]bool, 20)}
	for i := 0; i < 20; i += 2 {
		s.Used[i] = true
	}
	a, b := rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
	got := s.sampleUnused(a, 50)
	if len(got) != 10 {
		t.Fatalf("sampled %d, want all 10 unused", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("ids not ascending: %v", got)
		}
	}
	if a.Int63() != b.Int63() {
		t.Fatal("rng consumed despite pool <= k")
	}
}

// TestNthUnused: streamed indexing matches the materialized list.
func TestNthUnused(t *testing.T) {
	meta := rand.New(rand.NewSource(5))
	s := &State{Used: usedPattern(meta, 100, 0.5)}
	ids := s.unusedIDs()
	if got := s.unusedCount(); got != len(ids) {
		t.Fatalf("unusedCount %d != %d", got, len(ids))
	}
	for r, want := range ids {
		if got := s.nthUnused(r); got != want {
			t.Fatalf("nthUnused(%d) = %d, want %d", r, got, want)
		}
	}
	if got := s.nthUnused(len(ids)); got != -1 {
		t.Fatalf("nthUnused past the end = %d, want -1", got)
	}
}
