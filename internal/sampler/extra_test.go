package sampler

import (
	"math/rand"
	"testing"

	"datasculpt/internal/dataset"
	"datasculpt/internal/textproc"
)

func TestQBCFallsBackToRandom(t *testing.T) {
	s := newState(t)
	rng := rand.New(rand.NewSource(1))
	var q QBC
	if got := q.Next(s, rng); got < 0 || got >= len(s.Used) {
		t.Errorf("fallback pick = %d", got)
	}
}

func TestQBCPicksMaxDisagreement(t *testing.T) {
	s := newState(t)
	rng := rand.New(rand.NewSource(2))
	n := len(s.Dataset.Train)
	s.TrainProba = make([][]float64, n)
	s.LabelProba = make([][]float64, n)
	for i := 0; i < n; i++ {
		s.TrainProba[i] = []float64{0.8, 0.2}
		s.LabelProba[i] = []float64{0.8, 0.2}
	}
	target := 31
	s.TrainProba[target] = []float64{0.9, 0.1}
	s.LabelProba[target] = []float64{0.1, 0.9} // committee disagrees hard
	var q QBC
	if got := q.Next(s, rng); got != target {
		t.Errorf("picked %d, want max-disagreement %d", got, target)
	}
	s.Used[target] = true
	if got := q.Next(s, rng); got == target {
		t.Error("picked a used instance")
	}
}

func TestQBCExhausted(t *testing.T) {
	s := newState(t)
	for i := range s.Used {
		s.Used[i] = true
	}
	if got := (QBC{}).Next(s, rand.New(rand.NewSource(3))); got != -1 {
		t.Errorf("exhausted pool = %d", got)
	}
}

func TestCoreSetSpreadsSelections(t *testing.T) {
	s := newState(t)
	rng := rand.New(rand.NewSource(4))
	// feature vectors for geometric selection
	feat := newFixtureFeaturizer(t, s)
	_ = feat
	cs := NewCoreSet()

	first := cs.Next(s, rng)
	if first < 0 {
		t.Fatal("no first pick")
	}
	s.Used[first] = true
	second := cs.Next(s, rng)
	if second < 0 || second == first {
		t.Fatalf("second pick = %d", second)
	}
	// the greedy pick maximizes distance to the queried set, so nearly
	// every other candidate must sit closer to the first point than it
	d2 := 1 - s.TrainVecs[second].Cosine(s.TrainVecs[first])
	closer := 0
	for i := range s.TrainVecs {
		if i == first || i == second {
			continue
		}
		if 1-s.TrainVecs[i].Cosine(s.TrainVecs[first]) < d2 {
			closer++
		}
	}
	if closer < len(s.TrainVecs)*3/4 {
		t.Errorf("core-set pick should be near-farthest; only %d/%d candidates are closer",
			closer, len(s.TrainVecs))
	}
}

func TestCoreSetFallsBackWithoutVectors(t *testing.T) {
	s := newState(t)
	if got := NewCoreSet().Next(s, rand.New(rand.NewSource(5))); got < 0 {
		t.Error("fallback failed")
	}
}

func TestByNameExtras(t *testing.T) {
	for _, name := range []string{"qbc", "coreset"} {
		smp, ok := ByName(name)
		if !ok || smp.Name() != name {
			t.Errorf("ByName(%s) = %v, %v", name, smp, ok)
		}
	}
}

// newFixtureFeaturizer fits a featurizer over the fixture's train split
// and populates State.TrainVecs.
func newFixtureFeaturizer(t *testing.T, s *State) *textproc.Featurizer {
	t.Helper()
	feat := textproc.NewFeaturizer(2048)
	if err := feat.Fit(dataset.TokenCorpus(s.Dataset.Train)); err != nil {
		t.Fatal(err)
	}
	s.TrainVecs = feat.TransformAll(dataset.TokenCorpus(s.Dataset.Train))
	return feat
}
