package sampler

import (
	"math"
	"math/rand"

	"datasculpt/internal/textproc"
)

// The paper's related-work section surveys further active-learning
// strategies (query-by-committee, core-set selection) without evaluating
// them for LF design; this file implements both so the takeaway T3 —
// current active selection methods do not beat random sampling for LLM
// prompting — can be tested beyond the paper's three strategies.

// QBC is query-by-committee (Seung et al. 1992) over the two "committee
// members" the PWS pipeline maintains anyway: the label model's posterior
// and the interim end model's prediction on each train instance. It
// selects the unqueried instance where the two disagree most (total
// variation distance), falling back to random before both exist.
type QBC struct{}

// Name implements Sampler.
func (QBC) Name() string { return "qbc" }

// Next implements Sampler. Like Uncertain, the disagreement argmax
// streams over the used-marks in ascending id order instead of
// materializing the id set.
func (QBC) Next(s *State, rng *rand.Rand) int {
	count := s.unusedCount()
	if count == 0 {
		return -1
	}
	if s.TrainProba == nil || s.LabelProba == nil {
		return s.randomUnused(rng, count)
	}
	best, bestD := -1, -1.0
	for i, used := range s.Used {
		if used {
			continue
		}
		p, q := s.TrainProba[i], s.LabelProba[i]
		if p == nil || q == nil {
			continue
		}
		var tv float64
		for c := range p {
			tv += math.Abs(p[c] - q[c])
		}
		tv /= 2
		if tv > bestD {
			best, bestD = i, tv
		}
	}
	if best < 0 {
		return s.randomUnused(rng, count)
	}
	return best
}

// CoreSet is k-center-greedy selection (Sener & Savarese 2018): each call
// returns the unqueried instance farthest (cosine distance in feature
// space) from everything already queried, so queries spread over the
// input distribution instead of clustering. A candidate subsample keeps
// each call cheap on the large corpora.
type CoreSet struct {
	// Candidates bounds the instances scored per call (default 300).
	Candidates int
}

// NewCoreSet constructs the sampler with defaults.
func NewCoreSet() *CoreSet { return &CoreSet{Candidates: 300} }

// Name implements Sampler.
func (*CoreSet) Name() string { return "coreset" }

// Next implements Sampler. Candidate subsampling goes through
// State.sampleUnused: legacy shuffle below the reservoir threshold
// (bit-identical), an O(candidates)-memory reservoir above it.
func (c *CoreSet) Next(s *State, rng *rand.Rand) int {
	count := s.unusedCount()
	if count == 0 {
		return -1
	}
	if s.TrainVecs == nil {
		return s.randomUnused(rng, count)
	}
	var queried []*textproc.SparseVector
	for i, used := range s.Used {
		if used {
			queried = append(queried, s.TrainVecs[i])
		}
	}
	if len(queried) == 0 {
		return s.randomUnused(rng, count)
	}
	cand := c.Candidates
	if cand <= 0 {
		cand = 300
	}
	ids := s.sampleUnused(rng, cand)
	best, bestMin := ids[0], -1.0
	for _, i := range ids {
		minDist := math.Inf(1)
		for _, qv := range queried {
			d := 1 - s.TrainVecs[i].Cosine(qv)
			if d < minDist {
				minDist = d
			}
		}
		if minDist > bestMin {
			best, bestMin = i, minDist
		}
	}
	return best
}
