package textproc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSparseVectorDot(t *testing.T) {
	a := &SparseVector{Idx: []int32{0, 2, 5}, Val: []float32{1, 2, 3}}
	b := &SparseVector{Idx: []int32{2, 5, 7}, Val: []float32{4, 5, 6}}
	if got := a.Dot(b); got != 2*4+3*5 {
		t.Errorf("Dot = %v, want 23", got)
	}
	empty := &SparseVector{}
	if got := a.Dot(empty); got != 0 {
		t.Errorf("Dot with empty = %v", got)
	}
}

func TestSparseVectorCosineSelf(t *testing.T) {
	v := &SparseVector{Idx: []int32{1, 3}, Val: []float32{0.5, -0.25}}
	if got := v.Cosine(v); math.Abs(got-1) > 1e-6 {
		t.Errorf("Cosine(v,v) = %v, want 1", got)
	}
	zero := &SparseVector{}
	if got := v.Cosine(zero); got != 0 {
		t.Errorf("Cosine with zero = %v, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	v := &SparseVector{Idx: []int32{0, 1}, Val: []float32{3, 4}}
	v.Normalize()
	if math.Abs(v.Norm()-1) > 1e-6 {
		t.Errorf("norm after Normalize = %v", v.Norm())
	}
	zero := &SparseVector{}
	zero.Normalize() // must not panic
}

func TestFeaturizerFitTwice(t *testing.T) {
	f := NewFeaturizer(64)
	corpus := [][]string{{"a", "b"}, {"b", "c"}}
	if err := f.Fit(corpus); err != nil {
		t.Fatalf("first Fit: %v", err)
	}
	if err := f.Fit(corpus); err == nil {
		t.Fatal("second Fit succeeded, want error")
	}
}

func TestFeaturizerEmptyCorpus(t *testing.T) {
	f := NewFeaturizer(64)
	if err := f.Fit(nil); err == nil {
		t.Fatal("Fit(nil) succeeded, want error")
	}
}

func TestFeaturizerTransformBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Transform before Fit did not panic")
		}
	}()
	NewFeaturizer(64).Transform([]string{"a"})
}

func TestFeaturizerDeterministic(t *testing.T) {
	corpus := [][]string{
		Tokenize("the movie was great and funny"),
		Tokenize("terrible waste of time"),
		Tokenize("great acting great plot"),
	}
	f1 := NewFeaturizer(256)
	f2 := NewFeaturizer(256)
	if err := f1.Fit(corpus); err != nil {
		t.Fatal(err)
	}
	if err := f2.Fit(corpus); err != nil {
		t.Fatal(err)
	}
	for _, doc := range corpus {
		a, b := f1.Transform(doc), f2.Transform(doc)
		if a.NNZ() != b.NNZ() {
			t.Fatalf("nondeterministic NNZ: %d vs %d", a.NNZ(), b.NNZ())
		}
		for i := range a.Idx {
			if a.Idx[i] != b.Idx[i] || a.Val[i] != b.Val[i] {
				t.Fatalf("nondeterministic vector at %d", i)
			}
		}
	}
}

func TestFeaturizerSimilarDocsCloser(t *testing.T) {
	corpus := [][]string{
		Tokenize("this movie was wonderful brilliant acting superb plot"),
		Tokenize("wonderful film brilliant cast superb direction"),
		Tokenize("the stock market fell sharply amid recession fears today"),
	}
	f := NewFeaturizer(1024)
	if err := f.Fit(corpus); err != nil {
		t.Fatal(err)
	}
	vs := f.TransformAll(corpus)
	simSame := vs[0].Cosine(vs[1])
	simDiff := vs[0].Cosine(vs[2])
	if simSame <= simDiff {
		t.Errorf("topically similar docs cosine %v <= dissimilar %v", simSame, simDiff)
	}
}

func TestFeaturizerVectorInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	corpus := make([][]string, 50)
	for i := range corpus {
		n := 1 + rng.Intn(20)
		doc := make([]string, n)
		for j := range doc {
			doc[j] = vocab[rng.Intn(len(vocab))]
		}
		corpus[i] = doc
	}
	f := NewFeaturizer(128)
	if err := f.Fit(corpus); err != nil {
		t.Fatal(err)
	}
	prop := func(pick uint8, extra uint8) bool {
		doc := corpus[int(pick)%len(corpus)]
		v := f.Transform(doc)
		if err := v.Validate(f.Dim); err != nil {
			t.Logf("invariant: %v", err)
			return false
		}
		// Unit norm unless all buckets cancelled.
		n := v.Norm()
		return n == 0 || math.Abs(n-1) < 1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDocFreq(t *testing.T) {
	corpus := [][]string{{"spam", "free"}, {"spam"}, {"ham"}}
	f := NewFeaturizer(4096)
	if err := f.Fit(corpus); err != nil {
		t.Fatal(err)
	}
	if got := f.DocFreq("spam"); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("DocFreq(spam) = %v, want 2/3", got)
	}
	unfitted := NewFeaturizer(16)
	if got := unfitted.DocFreq("x"); got != 0 {
		t.Errorf("unfitted DocFreq = %v", got)
	}
}

func TestCosineBoundsProperty(t *testing.T) {
	// |cosine| <= 1 for arbitrary sparse vectors (Cauchy-Schwarz), and
	// Dot is symmetric.
	build := func(raw []byte, offset int) *SparseVector {
		acc := map[int32]float32{}
		for i := 0; i+1 < len(raw); i += 2 {
			idx := int32(raw[i]) % 64
			val := float32(int8(raw[i+1])) / 16
			acc[idx+int32(offset)] += val
		}
		for k, v := range acc {
			if v == 0 {
				delete(acc, k)
			}
		}
		return fromMap(acc)
	}
	prop := func(a, b []byte) bool {
		va, vb := build(a, 0), build(b, 0)
		cos := va.Cosine(vb)
		if math.Abs(cos) > 1+1e-9 {
			return false
		}
		return math.Abs(va.Dot(vb)-vb.Dot(va)) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSparseVectorValidateCatchesCorruption(t *testing.T) {
	good := &SparseVector{Idx: []int32{1, 5}, Val: []float32{1, 2}}
	if err := good.Validate(8); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	bad := []*SparseVector{
		{Idx: []int32{5, 1}, Val: []float32{1, 2}},             // unsorted
		{Idx: []int32{1, 1}, Val: []float32{1, 2}},             // duplicate
		{Idx: []int32{1}, Val: []float32{1, 2}},                // ragged
		{Idx: []int32{99}, Val: []float32{1}},                  // out of range
		{Idx: []int32{1}, Val: []float32{float32(math.NaN())}}, // non-finite
	}
	for i, v := range bad {
		if err := v.Validate(8); err == nil {
			t.Errorf("corrupt vector %d accepted", i)
		}
	}
}
