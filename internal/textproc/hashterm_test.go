package textproc

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

// referenceHashTerm is the pre-inline implementation: the stdlib hasher,
// one heap allocation per call. Kept as the oracle for the zero-alloc
// rewrite.
func referenceHashTerm(dim int, term string) (int32, float32) {
	h := fnv.New32a()
	h.Write([]byte(term))
	sum := h.Sum32()
	bucket := int32(sum % uint32(dim))
	sign := float32(1)
	if sum&0x80000000 != 0 {
		sign = -1
	}
	return bucket, sign
}

func TestHashTermMatchesReference(t *testing.T) {
	f := NewFeaturizer(DefaultFeatureDim)
	terms := []string{"", "a", "cash", "prize", "subscribe", "nasa", "Ωμέγα", "1234567890"}
	rng := rand.New(rand.NewSource(3))
	letters := "abcdefghijklmnopqrstuvwxyz0123456789"
	for i := 0; i < 500; i++ {
		n := rng.Intn(24)
		b := make([]byte, n)
		for j := range b {
			b[j] = letters[rng.Intn(len(letters))]
		}
		terms = append(terms, string(b))
	}
	for _, term := range terms {
		gotB, gotS := f.hashTerm(term)
		wantB, wantS := referenceHashTerm(f.Dim, term)
		if gotB != wantB || gotS != wantS {
			t.Fatalf("hashTerm(%q) = (%d, %v), reference (%d, %v)", term, gotB, gotS, wantB, wantS)
		}
	}
}

func TestHashTermZeroAlloc(t *testing.T) {
	f := NewFeaturizer(DefaultFeatureDim)
	var sink int32
	allocs := testing.AllocsPerRun(1000, func() {
		b, _ := f.hashTerm("subscribe to the channel")
		sink += b
	})
	if allocs != 0 {
		t.Fatalf("hashTerm allocates %v times per call, want 0", allocs)
	}
	_ = sink
}

func TestTransformAllParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vocab := []string{"alpha", "beta", "cash", "free", "prize", "song", "goal"}
	corpus := make([][]string, 300)
	for i := range corpus {
		doc := make([]string, 3+rng.Intn(15))
		for j := range doc {
			doc[j] = vocab[rng.Intn(len(vocab))]
		}
		corpus[i] = doc
	}
	seq := NewFeaturizer(256)
	if err := seq.Fit(corpus); err != nil {
		t.Fatal(err)
	}
	want := seq.TransformAll(corpus)
	for _, workers := range []int{2, 4, 9} {
		parF := NewFeaturizer(256)
		parF.Workers = workers
		if err := parF.Fit(corpus); err != nil {
			t.Fatal(err)
		}
		got := parF.TransformAll(corpus)
		for i := range want {
			if len(got[i].Idx) != len(want[i].Idx) {
				t.Fatalf("workers=%d: vector %d has %d terms, want %d", workers, i, len(got[i].Idx), len(want[i].Idx))
			}
			for t2 := range want[i].Idx {
				if got[i].Idx[t2] != want[i].Idx[t2] || got[i].Val[t2] != want[i].Val[t2] {
					t.Fatalf("workers=%d: vector %d diverges at term %d", workers, i, t2)
				}
			}
		}
	}
}
