package textproc

import (
	"fmt"
	"math"
	"sort"
)

// SparseVector is an L2-normalizable sparse feature vector stored as
// parallel, index-sorted slices. It is the representation consumed by the
// logistic-regression end model and by KATE cosine retrieval.
type SparseVector struct {
	Idx []int32
	Val []float32
}

// NNZ returns the number of stored (non-zero) entries.
func (v *SparseVector) NNZ() int { return len(v.Idx) }

// Dot computes the inner product of two index-sorted sparse vectors.
func (v *SparseVector) Dot(o *SparseVector) float64 {
	var sum float64
	i, j := 0, 0
	for i < len(v.Idx) && j < len(o.Idx) {
		switch {
		case v.Idx[i] < o.Idx[j]:
			i++
		case v.Idx[i] > o.Idx[j]:
			j++
		default:
			sum += float64(v.Val[i]) * float64(o.Val[j])
			i++
			j++
		}
	}
	return sum
}

// Norm returns the Euclidean norm of the vector.
func (v *SparseVector) Norm() float64 {
	var sum float64
	for _, x := range v.Val {
		sum += float64(x) * float64(x)
	}
	return math.Sqrt(sum)
}

// Cosine returns the cosine similarity of two sparse vectors, or 0 when
// either vector is zero.
func (v *SparseVector) Cosine(o *SparseVector) float64 {
	nv, no := v.Norm(), o.Norm()
	if nv == 0 || no == 0 {
		return 0
	}
	return v.Dot(o) / (nv * no)
}

// Normalize scales the vector to unit Euclidean norm in place. A zero
// vector is left unchanged.
func (v *SparseVector) Normalize() {
	n := v.Norm()
	if n == 0 {
		return
	}
	inv := float32(1 / n)
	for i := range v.Val {
		v.Val[i] *= inv
	}
}

// fromMap builds an index-sorted SparseVector from an accumulation map.
func fromMap(m map[int32]float32) *SparseVector {
	v := &SparseVector{
		Idx: make([]int32, 0, len(m)),
		Val: make([]float32, 0, len(m)),
	}
	for idx := range m {
		v.Idx = append(v.Idx, idx)
	}
	sort.Slice(v.Idx, func(i, j int) bool { return v.Idx[i] < v.Idx[j] })
	for _, idx := range v.Idx {
		v.Val = append(v.Val, m[idx])
	}
	return v
}

// Validate checks the structural invariants of the vector: equal-length
// slices, strictly increasing indices and finite values. It is used by the
// property-based tests and returns a descriptive error on violation.
func (v *SparseVector) Validate(dim int) error {
	if len(v.Idx) != len(v.Val) {
		return fmt.Errorf("sparse vector: len(Idx)=%d != len(Val)=%d", len(v.Idx), len(v.Val))
	}
	for i, idx := range v.Idx {
		if idx < 0 || int(idx) >= dim {
			return fmt.Errorf("sparse vector: index %d out of range [0,%d)", idx, dim)
		}
		if i > 0 && v.Idx[i-1] >= idx {
			return fmt.Errorf("sparse vector: indices not strictly increasing at %d", i)
		}
		if math.IsNaN(float64(v.Val[i])) || math.IsInf(float64(v.Val[i]), 0) {
			return fmt.Errorf("sparse vector: non-finite value at %d", i)
		}
	}
	return nil
}
