package textproc

// ApproxLLMTokens estimates the number of LLM (BPE) tokens in a text using
// the standard heuristic of ~4 characters per token, floored at the word
// count. The paper's cost analysis (Figures 3 and 4) counts prompt and
// completion tokens as billed by the OpenAI and Anyscale APIs; this
// estimator reproduces the same order of magnitude deterministically and
// offline.
func ApproxLLMTokens(text string) int {
	if text == "" {
		return 0
	}
	words := 1
	for i := 0; i < len(text); i++ {
		if text[i] == ' ' || text[i] == '\n' || text[i] == '\t' {
			words++
		}
	}
	byChars := (len(text) + 3) / 4
	if byChars < words {
		return words
	}
	return byChars
}
