package textproc

import (
	"fmt"
	"math"

	"datasculpt/internal/par"
)

// DefaultFeatureDim is the default width of hashed feature vectors. 2^13
// buckets keep collisions rare for the vocabularies in this repo while the
// end model stays fast on the largest corpus (Agnews, 96k documents).
const DefaultFeatureDim = 8192

// Featurizer converts token sequences into hashed TF-IDF sparse vectors.
// It must be fitted on a corpus (typically the train split) before use so
// that inverse document frequencies are available. Fitting and transforming
// are deterministic: the same corpus always yields the same vectors.
type Featurizer struct {
	Dim int
	// Workers bounds the goroutines TransformAll fans out over (<= 1
	// sequential; every worker count yields identical vectors since each
	// document is transformed independently).
	Workers int
	// df maps hashed bucket -> number of fitted documents containing at
	// least one term hashing to the bucket.
	df   []int32
	idf  []float32
	docs int
	// incremental-fit state (BeginFit/FitChunk/FinishFit)
	fitting bool
	pending int
	seen    map[int32]struct{}
}

// NewFeaturizer creates an unfitted featurizer with the given vector width.
// A non-positive dim selects DefaultFeatureDim.
func NewFeaturizer(dim int) *Featurizer {
	if dim <= 0 {
		dim = DefaultFeatureDim
	}
	return &Featurizer{Dim: dim, df: make([]int32, dim)}
}

// FNV-1a 32-bit constants (hash/fnv's, inlined so hashing a term costs
// zero allocations — the hash.Hash32 interface value and its internal
// state otherwise escape on every call, and hashTerm runs once per token
// per document across Fit, Transform, and DocFreq).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// hashTerm maps a term to a (bucket, sign) pair with FNV-1a. The sign bit
// implements the standard hashing-trick collision mitigation.
func (f *Featurizer) hashTerm(term string) (int32, float32) {
	sum := uint32(fnvOffset32)
	for i := 0; i < len(term); i++ {
		sum ^= uint32(term[i])
		sum *= fnvPrime32
	}
	bucket := int32(sum % uint32(f.Dim))
	sign := float32(1)
	if sum&0x80000000 != 0 {
		sign = -1
	}
	return bucket, sign
}

// Fit accumulates document frequencies over the corpus and freezes IDF
// weights. Fit may be called exactly once; calling it again returns an
// error to prevent silently mixing statistics from different corpora.
func (f *Featurizer) Fit(corpus [][]string) error {
	if f.docs > 0 {
		return fmt.Errorf("featurizer: Fit called twice")
	}
	if len(corpus) == 0 {
		return fmt.Errorf("featurizer: empty corpus")
	}
	if err := f.BeginFit(); err != nil {
		return err
	}
	f.FitChunk(corpus)
	return f.FinishFit()
}

// BeginFit starts an incremental fit for streaming corpora that never
// materialize fully in memory: feed chunks through FitChunk and freeze
// with FinishFit. Document-frequency accumulation commutes, so any
// chunking of the same corpus yields exactly the statistics Fit computes
// in one shot.
func (f *Featurizer) BeginFit() error {
	if f.docs > 0 {
		return fmt.Errorf("featurizer: Fit called twice")
	}
	if f.fitting {
		return fmt.Errorf("featurizer: BeginFit called twice")
	}
	f.fitting = true
	f.seen = make(map[int32]struct{}, 64)
	return nil
}

// FitChunk accumulates document frequencies over one chunk. It panics if
// called outside a BeginFit/FinishFit window (a programming error, like
// Transform before Fit).
func (f *Featurizer) FitChunk(corpus [][]string) {
	if !f.fitting {
		panic("featurizer: FitChunk outside BeginFit/FinishFit")
	}
	for _, tokens := range corpus {
		clear(f.seen)
		for _, t := range tokens {
			b, _ := f.hashTerm(t)
			if _, ok := f.seen[b]; !ok {
				f.seen[b] = struct{}{}
				f.df[b]++
			}
		}
	}
	f.pending += len(corpus)
}

// FinishFit freezes the IDF weights accumulated since BeginFit. It
// errors when no documents were fed, mirroring Fit's empty-corpus check.
func (f *Featurizer) FinishFit() error {
	if !f.fitting {
		return fmt.Errorf("featurizer: FinishFit without BeginFit")
	}
	if f.pending == 0 {
		return fmt.Errorf("featurizer: empty corpus")
	}
	f.docs = f.pending
	f.fitting = false
	f.pending = 0
	f.seen = nil
	f.idf = make([]float32, f.Dim)
	for b := range f.idf {
		// Smoothed IDF; buckets never seen get the maximum weight.
		f.idf[b] = float32(math.Log(float64(1+f.docs)/float64(1+f.df[b])) + 1)
	}
	return nil
}

// Fitted reports whether Fit has completed.
func (f *Featurizer) Fitted() bool { return f.docs > 0 }

// Transform converts one token sequence into an L2-normalized hashed
// TF-IDF vector. Transform panics if the featurizer is unfitted, because
// that is always a programming error rather than a data condition.
func (f *Featurizer) Transform(tokens []string) *SparseVector {
	if !f.Fitted() {
		panic("featurizer: Transform before Fit")
	}
	acc := make(map[int32]float32, len(tokens))
	for _, t := range tokens {
		b, sign := f.hashTerm(t)
		acc[b] += sign
	}
	for b, tf := range acc {
		if tf == 0 {
			delete(acc, b) // signed collisions cancelled out
			continue
		}
		// Sub-linear TF damping keeps long reviews (IMDB) comparable to
		// short comments (Youtube).
		mag := float32(1 + math.Log(math.Abs(float64(tf))))
		if tf < 0 {
			mag = -mag
		}
		acc[b] = mag * f.idf[b]
	}
	v := fromMap(acc)
	v.Normalize()
	return v
}

// TransformAll maps Transform over a corpus, sharding documents across
// the configured Workers (identical output at any worker count).
func (f *Featurizer) TransformAll(corpus [][]string) []*SparseVector {
	out := make([]*SparseVector, len(corpus))
	par.Chunks(f.Workers, len(corpus), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f.Transform(corpus[i])
		}
	})
	return out
}

// DocFreq returns the fraction of fitted documents whose hash signature
// includes the given term's bucket. It upper-bounds the term's true
// document frequency (bucket collisions only inflate it) and is used by
// the SEU sampler to prune ultra-rare candidate keywords cheaply.
func (f *Featurizer) DocFreq(term string) float64 {
	if !f.Fitted() {
		return 0
	}
	b, _ := f.hashTerm(term)
	return float64(f.df[b]) / float64(f.docs)
}
