package textproc

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize drives the tokenizer with arbitrary (possibly invalid)
// UTF-8. Tokenize feeds every downstream consumer — keyword matching,
// n-gram candidates, feature hashing — so it must never panic and its
// output contract must hold for any input: non-empty lowercase tokens
// with no separators, stable under re-tokenization (the canonicalization
// keyword LFs rely on: NormalizePhrase of a phrase already canonical is
// the identity).
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"Hello, World!",
		"don't stop",
		"A-B testing 123",
		"it's 'quoted'",
		"end'",
		"Café au lait — très bon",
		"CHECK OUT my channel!!! http://spam.example/x?y=1",
		"樹木 trees 🌲 mixed",
		"  \t\r\n  ",
		"o''o", "'", "a'9", "İstanbul",
		"0ϓ", // U+03D3: uppercase letter with no lowercase mapping
		string([]byte{0xff, 0xfe, 'a', 'b'}),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		tokens := Tokenize(text)
		for _, tok := range tokens {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				// Not IsUpper: some uppercase letters (e.g. U+03D3) have no
				// lowercase mapping. The contract is that lowercasing is a
				// fixed point, so repeated tokenization cannot diverge.
				if unicode.ToLower(r) != r {
					t.Fatalf("token %q not lowercased", tok)
				}
				if unicode.IsSpace(r) {
					t.Fatalf("token %q contains a separator", tok)
				}
			}
			if strings.HasPrefix(tok, "'") || strings.HasSuffix(tok, "'") {
				t.Fatalf("token %q has a dangling apostrophe", tok)
			}
		}

		// Canonical form is a fixed point: re-tokenizing the joined tokens
		// reproduces them exactly.
		again := Tokenize(JoinTokens(tokens))
		if len(again) != len(tokens) {
			t.Fatalf("re-tokenize: %d tokens became %d (%q -> %q)", len(tokens), len(again), tokens, again)
		}
		for i := range tokens {
			if tokens[i] != again[i] {
				t.Fatalf("re-tokenize changed token %d: %q -> %q", i, tokens[i], again[i])
			}
		}

		// NormalizePhrase agrees with Tokenize on emptiness and length.
		phrase, n := NormalizePhrase(text)
		if n != len(tokens) {
			t.Fatalf("NormalizePhrase n=%d, Tokenize produced %d", n, len(tokens))
		}
		if (phrase == "") != (len(tokens) == 0) {
			t.Fatalf("NormalizePhrase %q vs %d tokens", phrase, len(tokens))
		}
	})
}
