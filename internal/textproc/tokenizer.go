// Package textproc provides the text-processing substrate used throughout
// DataSculpt: tokenization, n-gram extraction, vocabulary and document
// frequency statistics, hashed TF-IDF feature vectors and approximate LLM
// token counting.
//
// The paper uses BERT (110M parameters) as a frozen feature extractor for
// (a) KATE nearest-neighbour retrieval of in-context examples and (b) the
// input representation of the downstream logistic-regression model. This
// package substitutes hashed TF-IDF vectors, which preserve both roles:
// topical neighbours share surface vocabulary and a linear end model can
// generalize beyond keyword decision boundaries through correlated
// non-keyword features.
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize lower-cases the input and splits it into word tokens. Letters,
// digits and in-word apostrophes are kept; every other rune is a boundary.
// The output is suitable for n-gram extraction and keyword matching: the
// keyword-based label functions of the paper match on exactly these tokens.
func Tokenize(text string) []string {
	tokens := make([]string, 0, len(text)/5+1)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	runes := []rune(text)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'' && b.Len() > 0 && i+1 < len(runes) && unicode.IsLetter(runes[i+1]):
			// keep in-word apostrophes: "don't" stays one token
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// JoinTokens reassembles tokens into a canonical space-separated phrase.
// Keyword label functions use this canonical form as their key so that
// "check  OUT" and "check out" denote the same bigram.
func JoinTokens(tokens []string) string {
	return strings.Join(tokens, " ")
}

// NormalizePhrase tokenizes a free-form phrase (e.g. a keyword returned by
// an LLM) and returns its canonical form together with its n-gram length.
// An empty phrase returns ("", 0).
func NormalizePhrase(phrase string) (string, int) {
	toks := Tokenize(phrase)
	if len(toks) == 0 {
		return "", 0
	}
	return JoinTokens(toks), len(toks)
}

// stopwords is a compact English stop-word list. Stop words are excluded
// from candidate keywords (an LF built on "the" would be vacuous) but kept
// in feature vectors, where IDF already down-weights them.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "an", "the", "and", "or", "but", "if", "then", "else", "of",
		"to", "in", "on", "at", "by", "for", "with", "about", "as", "into",
		"is", "am", "are", "was", "were", "be", "been", "being", "it",
		"its", "this", "that", "these", "those", "i", "you", "he", "she",
		"we", "they", "them", "his", "her", "their", "our", "your", "my",
		"me", "him", "us", "do", "does", "did", "done", "have", "has",
		"had", "will", "would", "can", "could", "shall", "should", "may",
		"might", "must", "not", "no", "so", "too", "very", "just", "than",
		"there", "here", "when", "where", "who", "whom", "which", "what",
		"how", "why", "all", "any", "both", "each", "few", "more", "most",
		"some", "such", "only", "own", "same", "s", "t", "don",
		"from", "under", "again",
		"once", "also", "because", "while", "during", "before", "after",
	} {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the token is on the stop-word list.
func IsStopword(token string) bool {
	_, ok := stopwords[token]
	return ok
}

// ContentTokens filters out stop words and bare digits, returning tokens
// usable as unigram keyword candidates.
func ContentTokens(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if IsStopword(t) {
			continue
		}
		if isAllDigits(t) {
			continue
		}
		out = append(out, t)
	}
	return out
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
