package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"", nil},
		{"   ", nil},
		{"check out my channel!!!", []string{"check", "out", "my", "channel"}},
		{"don't stop", []string{"don't", "stop"}},
		{"A-B testing 123", []string{"a", "b", "testing", "123"}},
		{"it's 'quoted'", []string{"it's", "quoted"}},
		{"end'", []string{"end"}},
		{"UPPER lower MiXeD", []string{"upper", "lower", "mixed"}},
		{"comma,separated,words", []string{"comma", "separated", "words"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Café au lait — très bon")
	want := []string{"café", "au", "lait", "très", "bon"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize unicode = %v, want %v", got, want)
	}
}

func TestTokenizeIdempotentProperty(t *testing.T) {
	// Tokenizing the joined output of Tokenize must be a fixed point.
	f := func(s string) bool {
		first := Tokenize(s)
		second := Tokenize(JoinTokens(first))
		return reflect.DeepEqual(first, second) || (len(first) == 0 && len(second) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTokenizeLowercaseProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalizePhrase(t *testing.T) {
	cases := []struct {
		in    string
		want  string
		wantN int
	}{
		{"Check OUT", "check out", 2},
		{"  free   ", "free", 1},
		{"my own channel", "my own channel", 3},
		{"", "", 0},
		{"!!!", "", 0},
	}
	for _, c := range cases {
		got, n := NormalizePhrase(c.in)
		if got != c.want || n != c.wantN {
			t.Errorf("NormalizePhrase(%q) = (%q,%d), want (%q,%d)", c.in, got, n, c.want, c.wantN)
		}
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "and", "is", "not"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"free", "subscribe", "terrible", ""} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

func TestContentTokens(t *testing.T) {
	got := ContentTokens([]string{"the", "movie", "was", "great", "123", "10"})
	want := []string{"movie", "great"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentTokens = %v, want %v", got, want)
	}
}

func TestNGrams(t *testing.T) {
	toks := []string{"a", "b", "c", "d"}
	if got := NGrams(toks, 2); !reflect.DeepEqual(got, []string{"a b", "b c", "c d"}) {
		t.Errorf("bigrams = %v", got)
	}
	if got := NGrams(toks, 4); !reflect.DeepEqual(got, []string{"a b c d"}) {
		t.Errorf("4-grams = %v", got)
	}
	if got := NGrams(toks, 5); got != nil {
		t.Errorf("5-grams of 4 tokens = %v, want nil", got)
	}
	if got := NGrams(toks, 0); got != nil {
		t.Errorf("0-grams = %v, want nil", got)
	}
}

func TestAllNGramsCountProperty(t *testing.T) {
	// |AllNGrams(toks, 3)| must equal sum over n of max(0, len-n+1).
	f := func(raw []byte) bool {
		toks := Tokenize(string(raw))
		got := len(AllNGrams(toks, 3))
		want := 0
		for n := 1; n <= 3; n++ {
			if len(toks) >= n {
				want += len(toks) - n + 1
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCandidateKeywords(t *testing.T) {
	toks := Tokenize("check out the new channel")
	got := CandidateKeywords(toks)
	set := make(map[string]bool)
	for _, k := range got {
		set[k] = true
	}
	if !set["check out"] {
		t.Errorf("expected bigram 'check out' in candidates, got %v", got)
	}
	if set["out the"] {
		t.Errorf("candidate %v ends with stopword", "out the")
	}
	if set["the new"] {
		t.Errorf("candidate %v starts with stopword", "the new")
	}
	// no duplicates
	if len(set) != len(got) {
		t.Errorf("candidates contain duplicates: %v", got)
	}
}

func TestCandidateKeywordsContainedProperty(t *testing.T) {
	// Every candidate keyword must actually occur in the source tokens.
	f := func(raw []byte) bool {
		toks := Tokenize(string(raw))
		for _, k := range CandidateKeywords(toks) {
			if !ContainsPhrase(toks, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestContainsPhrase(t *testing.T) {
	toks := Tokenize("please subscribe to my channel for daily vines")
	cases := []struct {
		phrase string
		want   bool
	}{
		{"subscribe", true},
		{"my channel", true},
		{"subscribe to my", true},
		{"channel for daily", true},
		{"daily vines extra", false},
		{"vines daily", false},
		{"", false},
		{"please subscribe to my channel for daily vines", true},
	}
	for _, c := range cases {
		if got := ContainsPhrase(toks, c.phrase); got != c.want {
			t.Errorf("ContainsPhrase(%q) = %v, want %v", c.phrase, got, c.want)
		}
	}
}

func TestApproxLLMTokens(t *testing.T) {
	if got := ApproxLLMTokens(""); got != 0 {
		t.Errorf("empty = %d", got)
	}
	short := ApproxLLMTokens("hello")
	if short < 1 || short > 2 {
		t.Errorf("hello = %d tokens", short)
	}
	long := ApproxLLMTokens(strings.Repeat("word ", 100))
	if long < 100 || long > 150 {
		t.Errorf("100 words = %d tokens, want ~100-125", long)
	}
}
