package textproc

// NGrams returns all contiguous n-grams of the given order as canonical
// space-joined phrases. It returns nil when the token slice is shorter
// than n or n is not positive.
func NGrams(tokens []string, n int) []string {
	if n <= 0 || len(tokens) < n {
		return nil
	}
	out := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		out = append(out, JoinTokens(tokens[i:i+n]))
	}
	return out
}

// AllNGrams returns every n-gram of order 1..maxN. This is the candidate
// keyword space of the paper, which restricts label-function keywords to
// unigrams, bigrams and trigrams (maxN = 3).
func AllNGrams(tokens []string, maxN int) []string {
	var total int
	for n := 1; n <= maxN; n++ {
		if len(tokens) >= n {
			total += len(tokens) - n + 1
		}
	}
	out := make([]string, 0, total)
	for n := 1; n <= maxN; n++ {
		out = append(out, NGrams(tokens, n)...)
	}
	return out
}

// MaxKeywordLen is the longest keyword phrase (in tokens) accepted by the
// validity filter, matching the paper's restriction to unigrams, bigrams
// and trigrams.
const MaxKeywordLen = 3

// CandidateKeywords returns the deduplicated n-grams (order 1..MaxKeywordLen)
// of a token sequence that are plausible keyword-LF candidates: n-grams that
// neither start nor end with a stop word and contain at least one content
// token. Order of first appearance is preserved so callers can sample
// deterministically.
func CandidateKeywords(tokens []string) []string {
	seen := make(map[string]struct{})
	var out []string
	for n := 1; n <= MaxKeywordLen; n++ {
		for i := 0; i+n <= len(tokens); i++ {
			gram := tokens[i : i+n]
			if IsStopword(gram[0]) || IsStopword(gram[len(gram)-1]) {
				continue
			}
			hasContent := false
			for _, t := range gram {
				if !IsStopword(t) && !isAllDigits(t) {
					hasContent = true
					break
				}
			}
			if !hasContent {
				continue
			}
			key := JoinTokens(gram)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			out = append(out, key)
		}
	}
	return out
}

// ContainsPhrase reports whether the canonical phrase (space-joined tokens)
// occurs contiguously in the token sequence. Matching is exact on tokens,
// which mirrors how the paper compiles keywords into Python substring
// programs over normalized text.
func ContainsPhrase(tokens []string, phrase string) bool {
	want := splitSpace(phrase)
	return containsSeq(tokens, want)
}

func splitSpace(phrase string) []string {
	var out []string
	start := -1
	for i := 0; i < len(phrase); i++ {
		if phrase[i] == ' ' {
			if start >= 0 {
				out = append(out, phrase[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, phrase[start:])
	}
	return out
}

// ContainsTokens is ContainsPhrase with the phrase already split into
// words. Callers checking one phrase against many token sequences (the
// inverted index's posting-list verification) split once and use this,
// instead of paying a phrase re-split per document.
func ContainsTokens(tokens, want []string) bool {
	return containsSeq(tokens, want)
}

func containsSeq(tokens, want []string) bool {
	if len(want) == 0 || len(tokens) < len(want) {
		return false
	}
outer:
	for i := 0; i+len(want) <= len(tokens); i++ {
		for j, w := range want {
			if tokens[i+j] != w {
				continue outer
			}
		}
		return true
	}
	return false
}
