package textproc

import (
	"encoding/json"
	"math"
	"testing"
)

func fittedFeaturizer(t *testing.T) (*Featurizer, [][]string) {
	t.Helper()
	corpus := [][]string{
		Tokenize("check out my channel and subscribe"),
		Tokenize("this melody is beautiful, love it"),
		Tokenize("free gift card, click the link"),
		Tokenize("the song reminds me of summer"),
	}
	f := NewFeaturizer(256)
	if err := f.Fit(corpus); err != nil {
		t.Fatal(err)
	}
	return f, corpus
}

func TestFeaturizerRoundTripBitIdentical(t *testing.T) {
	f, corpus := fittedFeaturizer(t)
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var g Featurizer
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	if !g.Fitted() {
		t.Fatal("round-tripped featurizer is not fitted")
	}
	for i, tokens := range corpus {
		a, b := f.Transform(tokens), g.Transform(tokens)
		if len(a.Idx) != len(b.Idx) {
			t.Fatalf("doc %d: nnz %d vs %d", i, len(a.Idx), len(b.Idx))
		}
		for t2 := range a.Idx {
			if a.Idx[t2] != b.Idx[t2] || math.Float32bits(a.Val[t2]) != math.Float32bits(b.Val[t2]) {
				t.Fatalf("doc %d entry %d: (%d,%x) vs (%d,%x)", i, t2,
					a.Idx[t2], math.Float32bits(a.Val[t2]), b.Idx[t2], math.Float32bits(b.Val[t2]))
			}
		}
	}
	if f.DocFreq("melody") != g.DocFreq("melody") {
		t.Error("DocFreq differs after round trip")
	}
}

func TestFeaturizerSerializeUnfitted(t *testing.T) {
	if _, err := json.Marshal(NewFeaturizer(64)); err == nil {
		t.Fatal("marshaling an unfitted featurizer should fail")
	}
}

func TestFeaturizerUnmarshalRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{"dim":0,"docs":1,"df":[]}`,
		`{"dim":2,"docs":0,"df":[0,0]}`,
		`{"dim":2,"docs":1,"df":[0]}`,
		`{"dim":2,"docs":1,"df":[0,5]}`,
		`{"dim":2,"docs":1,"df":[-1,0]}`,
		`not json`,
	}
	for _, c := range cases {
		var g Featurizer
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("Unmarshal(%s) should fail", c)
		}
	}
}
