package textproc

import (
	"encoding/json"
	"fmt"
	"math"
)

// A fitted featurizer is part of the model artifact a training run ships:
// the end model's weights are meaningless without the exact IDF table
// they were trained against. The stored form keeps the raw document
// frequencies and the corpus size; IDF weights are recomputed on load
// with the same formula Fit uses, so a round-tripped featurizer produces
// bit-identical vectors.

// featurizerJSON is the stored form of a fitted featurizer.
type featurizerJSON struct {
	Dim  int     `json:"dim"`
	Docs int     `json:"docs"`
	DF   []int32 `json:"df"`
}

// MarshalJSON implements json.Marshaler. Only fitted featurizers are
// serializable: an unfitted one has no statistics worth shipping.
func (f *Featurizer) MarshalJSON() ([]byte, error) {
	if !f.Fitted() {
		return nil, fmt.Errorf("featurizer: cannot serialize before Fit")
	}
	return json.Marshal(featurizerJSON{Dim: f.Dim, Docs: f.docs, DF: f.df})
}

// UnmarshalJSON implements json.Unmarshaler, validating the statistics
// and rebuilding the IDF table exactly as Fit does. The result is fitted
// and ready to Transform; Workers resets to sequential.
func (f *Featurizer) UnmarshalJSON(data []byte) error {
	var in featurizerJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("featurizer: decoding: %w", err)
	}
	if in.Dim <= 0 {
		return fmt.Errorf("featurizer: invalid dimension %d", in.Dim)
	}
	if in.Docs <= 0 {
		return fmt.Errorf("featurizer: invalid document count %d", in.Docs)
	}
	if len(in.DF) != in.Dim {
		return fmt.Errorf("featurizer: %d document frequencies for dimension %d", len(in.DF), in.Dim)
	}
	for b, df := range in.DF {
		if df < 0 || int(df) > in.Docs {
			return fmt.Errorf("featurizer: bucket %d frequency %d out of range [0,%d]", b, df, in.Docs)
		}
	}
	f.Dim = in.Dim
	f.docs = in.Docs
	f.df = in.DF
	f.Workers = 0
	f.idf = make([]float32, f.Dim)
	for b := range f.idf {
		f.idf[b] = float32(math.Log(float64(1+f.docs)/float64(1+f.df[b])) + 1)
	}
	return nil
}
