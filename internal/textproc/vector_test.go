package textproc

import (
	"math"
	"testing"
)

// Edge-case coverage for the sparse-vector primitives KATE retrieval and
// the end model sit on: empty vectors (a document whose every token
// hashed away), single-entry vectors, and zero-norm inputs must never
// produce NaN or mutate their receiver.

func sv(pairs ...float32) *SparseVector {
	v := &SparseVector{}
	for i := 0; i+1 < len(pairs); i += 2 {
		v.Idx = append(v.Idx, int32(pairs[i]))
		v.Val = append(v.Val, pairs[i+1])
	}
	return v
}

func TestDotEdgeCases(t *testing.T) {
	empty := sv()
	one := sv(3, 2)
	if got := empty.Dot(empty); got != 0 {
		t.Errorf("empty.Dot(empty) = %v, want 0", got)
	}
	if got := empty.Dot(one); got != 0 {
		t.Errorf("empty.Dot(one) = %v, want 0", got)
	}
	if got := one.Dot(one); got != 4 {
		t.Errorf("one.Dot(one) = %v, want 4", got)
	}
	// disjoint supports share no index
	if got := sv(1, 5).Dot(sv(2, 7)); got != 0 {
		t.Errorf("disjoint Dot = %v, want 0", got)
	}
	// Dot is symmetric on mixed supports
	a, b := sv(0, 1, 2, 3, 5, 2), sv(2, 2, 5, 4)
	if ab, ba := a.Dot(b), b.Dot(a); ab != ba || ab != 14 {
		t.Errorf("Dot not symmetric: %v vs %v (want 14)", ab, ba)
	}
}

func TestNormEdgeCases(t *testing.T) {
	if got := sv().Norm(); got != 0 {
		t.Errorf("empty Norm = %v, want 0", got)
	}
	if got := sv(7, -3).Norm(); got != 3 {
		t.Errorf("single-entry Norm = %v, want 3", got)
	}
	if got := sv(0, 3, 9, 4).Norm(); got != 5 {
		t.Errorf("3-4-5 Norm = %v, want 5", got)
	}
	// explicit zero values stored sparse still norm to 0
	if got := sv(1, 0, 2, 0).Norm(); got != 0 {
		t.Errorf("stored-zeros Norm = %v, want 0", got)
	}
}

func TestCosineZeroNormGuard(t *testing.T) {
	empty := sv()
	zeros := sv(4, 0)
	x := sv(1, 1)
	for name, pair := range map[string][2]*SparseVector{
		"empty-empty": {empty, empty},
		"empty-x":     {empty, x},
		"x-empty":     {x, empty},
		"zeros-x":     {zeros, x},
		"x-zeros":     {x, zeros},
		"zeros-zeros": {zeros, zeros},
	} {
		got := pair[0].Cosine(pair[1])
		if got != 0 {
			t.Errorf("%s: Cosine = %v, want 0", name, got)
		}
		if math.IsNaN(got) {
			t.Errorf("%s: Cosine is NaN", name)
		}
	}
	if got := x.Cosine(x); math.Abs(got-1) > 1e-12 {
		t.Errorf("self Cosine = %v, want 1", got)
	}
	// single shared entry with opposite signs
	if got := sv(2, 1).Cosine(sv(2, -1)); math.Abs(got+1) > 1e-12 {
		t.Errorf("opposite Cosine = %v, want -1", got)
	}
}

func TestNormalizeEdgeCases(t *testing.T) {
	// zero-norm vectors are left untouched rather than dividing by zero
	z := sv(5, 0)
	z.Normalize()
	if z.Val[0] != 0 || math.IsNaN(float64(z.Val[0])) {
		t.Errorf("zero-norm Normalize mutated value to %v", z.Val[0])
	}
	empty := sv()
	empty.Normalize() // must not panic
	if empty.NNZ() != 0 {
		t.Errorf("empty Normalize grew the vector to %d entries", empty.NNZ())
	}

	v := sv(0, 3, 9, 4)
	v.Normalize()
	if n := v.Norm(); math.Abs(n-1) > 1e-6 {
		t.Errorf("Norm after Normalize = %v, want 1", n)
	}
	if math.Abs(float64(v.Val[0])-0.6) > 1e-6 || math.Abs(float64(v.Val[1])-0.8) > 1e-6 {
		t.Errorf("Normalize produced %v, want [0.6 0.8]", v.Val)
	}
	// idempotent
	v.Normalize()
	if n := v.Norm(); math.Abs(n-1) > 1e-6 {
		t.Errorf("Norm after double Normalize = %v, want 1", n)
	}
}
