package labelmodel

import (
	"fmt"
	"math"

	"datasculpt/internal/lf"
)

// Triplet is a FlyingSquid-style (Fu et al. 2020) method-of-moments label
// model for binary tasks. Mapping votes to ±1, conditional independence
// gives E[λ_i λ_j] = b_i b_j where b_j = 2a_j - 1 is LF j's balanced
// accuracy in signed form; for any triplet (i, j, k)
//
//	|b_i| = sqrt(|M_ij * M_ik / M_jk|)
//
// with M the pairwise agreement matrix over jointly active examples. The
// model averages the estimate over all valid triplets, assumes LFs are
// better than chance (b_j >= 0), and labels with a weighted vote using
// log-odds weights. It is closed-form — no EM iterations — which is the
// speed advantage the original paper claims.
type Triplet struct {
	// MinOverlap is the minimum number of jointly active examples for a
	// pair to contribute a usable second moment (default 5).
	MinOverlap int

	k     int
	acc   []float64
	prior []float64
}

// NewTriplet constructs the model.
func NewTriplet() *Triplet { return &Triplet{MinOverlap: 5} }

// Name implements LabelModel.
func (m *Triplet) Name() string { return "triplet" }

// Accuracies returns the fitted per-LF accuracies (shared slice).
func (m *Triplet) Accuracies() []float64 { return m.acc }

// Fit implements LabelModel. It returns an error for non-binary tasks;
// the triplet construction is specific to ±1 labels.
func (m *Triplet) Fit(vm *lf.VoteMatrix, numClasses int) error {
	if numClasses != 2 {
		return fmt.Errorf("triplet: binary tasks only, got %d classes", numClasses)
	}
	if m.MinOverlap <= 0 {
		m.MinOverlap = 5
	}
	m.k = 2
	nLF := vm.NumLFs()
	m.acc = make([]float64, nLF)
	if nLF == 0 {
		m.prior = []float64{0.5, 0.5}
		return nil
	}

	// Pairwise signed agreement over jointly active examples.
	M := make([][]float64, nLF)
	overlap := make([][]int, nLF)
	for j := range M {
		M[j] = make([]float64, nLF)
		overlap[j] = make([]int, nLF)
	}
	// Iterate per example over active LFs only: with sparse LFs (coverage
	// a few percent) this is far below the naive O(n·m²).
	n := vm.NumExamples()
	var activeJ []int
	for i := 0; i < n; i++ {
		activeJ = activeJ[:0]
		for j := 0; j < nLF; j++ {
			if vm.Vote(i, j) != lf.Abstain {
				activeJ = append(activeJ, j)
			}
		}
		for ai := 0; ai < len(activeJ); ai++ {
			a := activeJ[ai]
			sa := float64(2*vm.Vote(i, a) - 1)
			for bi := ai + 1; bi < len(activeJ); bi++ {
				b := activeJ[bi]
				sb := float64(2*vm.Vote(i, b) - 1)
				M[a][b] += sa * sb
				overlap[a][b]++
			}
		}
	}
	pair := func(a, b int) (float64, bool) {
		if a > b {
			a, b = b, a
		}
		if overlap[a][b] < m.MinOverlap {
			return 0, false
		}
		return M[a][b] / float64(overlap[a][b]), true
	}

	// Average |b_i| over all triplets with usable moments.
	for i := 0; i < nLF; i++ {
		var sum float64
		var count int
		for j := 0; j < nLF; j++ {
			if j == i {
				continue
			}
			mij, ok1 := pair(i, j)
			if !ok1 || mij == 0 {
				continue
			}
			for k := j + 1; k < nLF; k++ {
				if k == i {
					continue
				}
				mik, ok2 := pair(i, k)
				mjk, ok3 := pair(j, k)
				if !ok2 || !ok3 || mjk == 0 {
					continue
				}
				v := mij * mik / mjk
				if v <= 0 {
					continue
				}
				b := math.Sqrt(v)
				if b > 1 {
					b = 1
				}
				sum += b
				count++
			}
		}
		var b float64
		if count > 0 {
			b = sum / float64(count)
		}
		// better-than-chance assumption: accuracy in [0.5, 1)
		a := (1 + b) / 2
		if a > 0.995 {
			a = 0.995
		}
		if a < 0.5 {
			a = 0.5
		}
		m.acc[i] = a
	}

	// Prior from the majority-vote histogram (crude but serviceable).
	mv := vm.MajorityVotes(2)
	pos, covered := 0, 0
	for _, v := range mv {
		if v == lf.Abstain {
			continue
		}
		covered++
		if v == 1 {
			pos++
		}
	}
	p1 := 0.5
	if covered > 0 {
		p1 = (float64(pos) + 1) / (float64(covered) + 2)
	}
	m.prior = []float64{1 - p1, p1}
	return nil
}

// PredictProba implements LabelModel.
func (m *Triplet) PredictProba(vm *lf.VoteMatrix) [][]float64 {
	if m.k == 0 {
		panic("triplet: PredictProba before Fit")
	}
	if vm.NumLFs() != len(m.acc) {
		panic(fmt.Sprintf("triplet: matrix has %d LFs, fitted on %d", vm.NumLFs(), len(m.acc)))
	}
	n := vm.NumExamples()
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		// log-odds of class 1
		lo := math.Log(m.prior[1] / m.prior[0])
		any := false
		for j := 0; j < vm.NumLFs(); j++ {
			v := vm.Vote(i, j)
			if v == lf.Abstain {
				continue
			}
			any = true
			w := math.Log(m.acc[j] / (1 - m.acc[j]))
			if v == 1 {
				lo += w
			} else {
				lo -= w
			}
		}
		if !any {
			continue
		}
		p1 := 1 / (1 + math.Exp(-lo))
		out[i] = []float64{1 - p1, p1}
	}
	return out
}
