package labelmodel

import (
	"math"
	"testing"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
)

func TestDawidSkeneRecovers(t *testing.T) {
	accs := []float64{0.9, 0.8, 0.85, 0.75}
	covs := []float64{0.5, 0.5, 0.5, 0.5}
	vm, gold := synthVotes(t, 21, 4000, 2, accs, covs)
	m := NewDawidSkene()
	if err := m.Fit(vm, 2); err != nil {
		t.Fatal(err)
	}
	proba := m.PredictProba(vm)
	checkProbaInvariants(t, proba, 2)
	if acc := posteriorAccuracy(proba, gold); acc < 0.85 {
		t.Errorf("dawid-skene posterior accuracy = %v", acc)
	}
	// the fitted diagonal should roughly match the true accuracies
	for j, a := range accs {
		diag := (m.Confusion()[j][0][0] + m.Confusion()[j][1][1]) / 2
		if math.Abs(diag-a) > 0.15 {
			t.Errorf("lf %d diag = %v, true %v", j, diag, a)
		}
	}
}

func TestDawidSkeneAsymmetricLF(t *testing.T) {
	// An LF that is near-perfect on class 0 but coin-flip on class 1:
	// the confusion model should capture the asymmetry.
	n := 6000
	examples := make([]*dataset.Example, n)
	gold := make([]int, n)
	votes := make(map[*dataset.Example]int, n)
	votes2 := make(map[*dataset.Example]int, n)
	rng := newTestRNG(31)
	for i := range examples {
		gold[i] = rng.Intn(2)
		examples[i] = &dataset.Example{ID: i, Tokens: []string{"d"}, Label: gold[i], E1Pos: -1, E2Pos: -1}
		// asymmetric LF
		if gold[i] == 0 {
			if rng.Float64() < 0.95 {
				votes[examples[i]] = 0
			} else {
				votes[examples[i]] = 1
			}
		} else {
			votes[examples[i]] = rng.Intn(2)
		}
		// a clean symmetric companion so EM can anchor the latent classes
		if rng.Float64() < 0.9 {
			votes2[examples[i]] = gold[i]
		} else {
			votes2[examples[i]] = 1 - gold[i]
		}
	}
	lfs := []lf.LabelFunction{
		&lf.AnnotationLF{LFName: "asym", Votes: votes},
		&lf.AnnotationLF{LFName: "clean", Votes: votes2},
	}
	vm := lf.BuildVoteMatrix(lf.NewIndex(examples), lfs)
	m := NewDawidSkene()
	if err := m.Fit(vm, 2); err != nil {
		t.Fatal(err)
	}
	conf := m.Confusion()[0]
	if conf[0][0] < 0.85 {
		t.Errorf("class-0 row = %v, want near-diagonal", conf[0])
	}
	if conf[1][1] > 0.8 {
		t.Errorf("class-1 row = %v, want noisy (~0.5)", conf[1])
	}
}

func TestDawidSkeneRejects(t *testing.T) {
	vm, _ := synthVotes(t, 22, 50, 2, []float64{0.9}, []float64{0})
	if err := NewDawidSkene().Fit(vm, 2); err == nil {
		t.Error("zero coverage accepted")
	}
	if err := NewDawidSkene().Fit(vm, 1); err == nil {
		t.Error("single class accepted")
	}
}

func TestWeightedVote(t *testing.T) {
	accs := []float64{0.95, 0.6, 0.6}
	covs := []float64{0.7, 0.7, 0.7}
	vm, gold := synthVotes(t, 23, 4000, 2, accs, covs)

	// weighted vote with the TRUE accuracies must beat plain majority
	wv := NewWeightedVote(accs)
	if err := wv.Fit(vm, 2); err != nil {
		t.Fatal(err)
	}
	mv := NewMajorityVote()
	if err := mv.Fit(vm, 2); err != nil {
		t.Fatal(err)
	}
	wAcc := posteriorAccuracy(wv.PredictProba(vm), gold)
	mAcc := posteriorAccuracy(mv.PredictProba(vm), gold)
	if wAcc <= mAcc {
		t.Errorf("weighted %v should beat majority %v", wAcc, mAcc)
	}
	checkProbaInvariants(t, wv.PredictProba(vm), 2)
}

func TestWeightedVoteShapeChecks(t *testing.T) {
	vm, _ := synthVotes(t, 24, 100, 2, []float64{0.9, 0.8}, []float64{0.5, 0.5})
	wv := NewWeightedVote([]float64{0.9}) // wrong length
	if err := wv.Fit(vm, 2); err == nil {
		t.Error("accuracy-count mismatch accepted")
	}
}

func TestWeightedVoteFromValidation(t *testing.T) {
	valid := []*dataset.Example{}
	for i, tc := range []struct {
		text  string
		label int
	}{
		{"free cash now", 1},
		{"free cash offer", 1},
		{"free hugs", 0},
		{"nice melody", 0},
		{"great melody here", 0},
	} {
		e := &dataset.Example{ID: i, Text: tc.text, Label: tc.label, E1Pos: -1, E2Pos: -1}
		e.EnsureTokens()
		valid = append(valid, e)
	}
	free, _ := lf.NewKeywordLF("free", 1)
	melody, _ := lf.NewKeywordLF("melody", 0)
	ghost, _ := lf.NewKeywordLF("unseen", 1)
	wv := NewWeightedVoteFromValidation(valid, []lf.LabelFunction{free, melody, ghost})
	// free: 2/3 correct -> smoothed (2+1)/(3+2) = 0.6
	if math.Abs(wv.Accuracies[0]-0.6) > 1e-9 {
		t.Errorf("free accuracy = %v, want 0.6", wv.Accuracies[0])
	}
	// melody: 2/2 -> (2+1)/(2+2) = 0.75
	if math.Abs(wv.Accuracies[1]-0.75) > 1e-9 {
		t.Errorf("melody accuracy = %v, want 0.75", wv.Accuracies[1])
	}
	// inactive LF gets the neutral 0.5
	if wv.Accuracies[2] != 0.5 {
		t.Errorf("ghost accuracy = %v, want 0.5", wv.Accuracies[2])
	}
}

// TestWeightedVoteFromValidationIndexed: fitting against a caller-shared
// index must produce exactly the accuracies of the index-building
// constructor — the index is a pure accelerator, reused across fits.
func TestWeightedVoteFromValidationIndexed(t *testing.T) {
	valid := []*dataset.Example{}
	for i, tc := range []struct {
		text  string
		label int
	}{
		{"free cash now", 1},
		{"free cash offer", 1},
		{"free hugs", 0},
		{"nice melody", 0},
	} {
		e := &dataset.Example{ID: i, Text: tc.text, Label: tc.label, E1Pos: -1, E2Pos: -1}
		e.EnsureTokens()
		valid = append(valid, e)
	}
	free, _ := lf.NewKeywordLF("free", 1)
	melody, _ := lf.NewKeywordLF("melody", 0)
	lfs := []lf.LabelFunction{free, melody}
	want := NewWeightedVoteFromValidation(valid, lfs)
	ix := lf.NewIndex(valid)
	for fit := 0; fit < 3; fit++ { // the shared index serves repeat fits
		got := NewWeightedVoteFromValidationIndexed(ix, lfs)
		for j := range want.Accuracies {
			if got.Accuracies[j] != want.Accuracies[j] {
				t.Fatalf("fit %d: accuracy[%d] = %v, want %v", fit, j, got.Accuracies[j], want.Accuracies[j])
			}
		}
	}
}

// newTestRNG avoids importing math/rand in multiple test files directly.
func newTestRNG(seed int64) *testRNG {
	return &testRNG{state: uint64(seed)*2862933555777941757 + 3037000493}
}

type testRNG struct{ state uint64 }

func (r *testRNG) next() uint64 {
	r.state = r.state*2862933555777941757 + 3037000493
	return r.state
}

func (r *testRNG) Intn(n int) int { return int(r.next() >> 33 % uint64(n)) }

func (r *testRNG) Float64() float64 { return float64(r.next()>>11) / (1 << 53) }
