package labelmodel

import (
	"math/rand"
	"strings"
	"testing"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
)

// synthVoteMatrix builds a vote matrix from a random keyword corpus with
// enough overlap that EM has real work to do.
func synthVoteMatrix(t *testing.T, seed int64, n, m, k int) (*lf.VoteMatrix, []lf.LabelFunction) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"alpha", "beta", "gamma", "delta", "cash", "free",
		"prize", "song", "winner", "channel", "stock", "goal"}
	split := make([]*dataset.Example, n)
	for i := range split {
		var words []string
		for w := 0; w < 3+rng.Intn(9); w++ {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		e := &dataset.Example{ID: i, Text: strings.Join(words, " "), E1Pos: -1, E2Pos: -1}
		e.EnsureTokens()
		split[i] = e
	}
	lfs := make([]lf.LabelFunction, 0, m)
	for len(lfs) < m {
		f, err := lf.NewKeywordLF(vocab[rng.Intn(len(vocab))], rng.Intn(k))
		if err != nil {
			t.Fatalf("keyword LF: %v", err)
		}
		lfs = append(lfs, f)
	}
	return lf.BuildVoteMatrix(lf.NewIndex(split), lfs), lfs
}

func fitMeTaL(t *testing.T, vm *lf.VoteMatrix, k, workers int, warm *MeTaL) *MeTaL {
	t.Helper()
	m := NewMeTaL()
	m.Workers = workers
	if warm != nil {
		m.WarmStart(warm)
	}
	if err := m.Fit(vm, k); err != nil {
		t.Fatalf("fit (workers=%d): %v", workers, err)
	}
	return m
}

// TestMeTaLParallelFitBitIdentical is the determinism hard constraint:
// Workers: N must reproduce Workers: 1 bit for bit — parameters,
// iteration count, and posteriors.
func TestMeTaLParallelFitBitIdentical(t *testing.T) {
	const k = 3
	for _, seed := range []int64{1, 7, 99} {
		vm, _ := synthVoteMatrix(t, seed, 400, 24, k)
		ref := fitMeTaL(t, vm, k, 1, nil)
		refP := ref.PredictProba(vm)
		for _, workers := range []int{2, 4, 13} {
			m := fitMeTaL(t, vm, k, workers, nil)
			if m.EMIterations() != ref.EMIterations() {
				t.Fatalf("seed %d workers %d: %d EM iters != sequential %d",
					seed, workers, m.EMIterations(), ref.EMIterations())
			}
			for j := range ref.acc {
				if m.acc[j] != ref.acc[j] {
					t.Fatalf("seed %d workers %d: acc[%d] %v != %v", seed, workers, j, m.acc[j], ref.acc[j])
				}
				for c := 0; c < k; c++ {
					if m.theta[j][c] != ref.theta[j][c] {
						t.Fatalf("seed %d workers %d: theta[%d][%d] %v != %v",
							seed, workers, j, c, m.theta[j][c], ref.theta[j][c])
					}
				}
			}
			p := m.PredictProba(vm)
			for i := range refP {
				if (p[i] == nil) != (refP[i] == nil) {
					t.Fatalf("seed %d workers %d: coverage mismatch at %d", seed, workers, i)
				}
				for c := range refP[i] {
					if p[i][c] != refP[i][c] {
						t.Fatalf("seed %d workers %d: proba[%d][%d] %v != %v",
							seed, workers, i, c, p[i][c], refP[i][c])
					}
				}
			}
		}
	}
}

// TestMeTaLWarmStartConverges: refitting the same matrix from the
// previous fixpoint must converge at least as fast as a cold fit, report
// the warm-started column count, and land on the same parameters.
func TestMeTaLWarmStartConverges(t *testing.T) {
	const k = 3
	vm, _ := synthVoteMatrix(t, 5, 500, 20, k)
	cold := fitMeTaL(t, vm, k, 1, nil)
	warm := fitMeTaL(t, vm, k, 1, cold)
	if warm.WarmStartedLFs() != vm.NumLFs() {
		t.Fatalf("warm-started %d LFs, want %d", warm.WarmStartedLFs(), vm.NumLFs())
	}
	if warm.EMIterations() > cold.EMIterations() {
		t.Fatalf("warm fit ran %d EM iters, cold ran %d", warm.EMIterations(), cold.EMIterations())
	}
	for j := range cold.acc {
		if d := warm.acc[j] - cold.acc[j]; d > 1e-6 || d < -1e-6 {
			t.Fatalf("acc[%d] drifted under warm start: %v vs %v", j, warm.acc[j], cold.acc[j])
		}
	}
}

// TestMeTaLWarmStartGrownLFSet mirrors the pipeline: the LF set grows,
// the shared prefix is warm-started, the appended columns get default
// init, and the fit still succeeds.
func TestMeTaLWarmStartGrownLFSet(t *testing.T) {
	const k = 3
	vm, lfs := synthVoteMatrix(t, 11, 400, 18, k)
	half := lf.BuildVoteMatrix(lf.NewIndex(vmSplit(t, 11, 400)), lfs[:9])
	prev := fitMeTaL(t, half, k, 1, nil)
	grown := fitMeTaL(t, vm, k, 2, prev)
	if grown.WarmStartedLFs() != 9 {
		t.Fatalf("warm-started %d LFs, want 9", grown.WarmStartedLFs())
	}
	if got := len(grown.Accuracies()); got != vm.NumLFs() {
		t.Fatalf("fitted %d accuracies for %d LFs", got, vm.NumLFs())
	}
	// A donor with a different class count must be ignored.
	m := NewMeTaL()
	m.WarmStart(prev)
	if err := m.Fit(vm, k+1); err != nil {
		t.Fatalf("fit with mismatched donor: %v", err)
	}
	if m.WarmStartedLFs() != 0 {
		t.Fatalf("mismatched donor warm-started %d LFs, want 0", m.WarmStartedLFs())
	}
}

// vmSplit regenerates the deterministic split synthVoteMatrix used for a
// seed, so tests can rebuild sub-matrices over the same examples.
func vmSplit(t *testing.T, seed int64, n int) []*dataset.Example {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"alpha", "beta", "gamma", "delta", "cash", "free",
		"prize", "song", "winner", "channel", "stock", "goal"}
	split := make([]*dataset.Example, n)
	for i := range split {
		var words []string
		for w := 0; w < 3+rng.Intn(9); w++ {
			words = append(words, vocab[rng.Intn(len(vocab))])
		}
		e := &dataset.Example{ID: i, Text: strings.Join(words, " "), E1Pos: -1, E2Pos: -1}
		e.EnsureTokens()
		split[i] = e
	}
	return split
}
