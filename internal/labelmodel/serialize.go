package labelmodel

import (
	"encoding/json"
	"fmt"
	"math"

	"datasculpt/internal/lf"
)

// A fitted MeTaL is part of a run's model artifact: the per-LF accuracy
// and propensity parameters are what turn a raw LF vote row into a
// calibrated posterior, both offline (PredictProba over a matrix) and
// online (Predictor over one example at a time). The stored form carries
// the hyperparameters and the fitted parameters; warm-start scratch state
// and fit diagnostics are not persisted.

// metalJSON is the stored form of a fitted MeTaL model.
type metalJSON struct {
	K                       int         `json:"k"`
	MaxIter                 int         `json:"max_iter"`
	Tol                     float64     `json:"tol"`
	ModelPropensity         bool        `json:"model_propensity"`
	SuppressSingleClassVote bool        `json:"suppress_single_class_vote,omitempty"`
	LearnPrior              bool        `json:"learn_prior,omitempty"`
	Acc                     []float64   `json:"acc"`
	Theta                   [][]float64 `json:"theta,omitempty"`
	Prior                   []float64   `json:"prior"`
	Voteless                []bool      `json:"voteless,omitempty"`
}

// NumLFs returns how many LF columns the model was fitted on (0 before
// Fit).
func (m *MeTaL) NumLFs() int { return len(m.acc) }

// MarshalJSON implements json.Marshaler. Only fitted models are
// serializable.
func (m *MeTaL) MarshalJSON() ([]byte, error) {
	if m.k == 0 {
		return nil, fmt.Errorf("metal: cannot serialize before Fit")
	}
	return json.Marshal(metalJSON{
		K:                       m.k,
		MaxIter:                 m.MaxIter,
		Tol:                     m.Tol,
		ModelPropensity:         m.ModelPropensity,
		SuppressSingleClassVote: m.SuppressSingleClassVote,
		LearnPrior:              m.LearnPrior,
		Acc:                     m.acc,
		Theta:                   m.theta,
		Prior:                   m.prior,
		Voteless:                m.voteless,
	})
}

// UnmarshalJSON implements json.Unmarshaler, validating every parameter.
// The restored model predicts (PredictProba, NewPredictor) exactly like
// the fitted original; Workers resets to sequential.
func (m *MeTaL) UnmarshalJSON(data []byte) error {
	var in metalJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("metal: decoding: %w", err)
	}
	if in.K < 2 {
		return fmt.Errorf("metal: stored model has %d classes", in.K)
	}
	if len(in.Prior) != in.K {
		return fmt.Errorf("metal: %d priors for %d classes", len(in.Prior), in.K)
	}
	var priorSum float64
	for c, p := range in.Prior {
		if !(p > 0 && p < 1) { // also rejects NaN
			return fmt.Errorf("metal: prior[%d] = %v out of (0,1)", c, p)
		}
		priorSum += p
	}
	if math.Abs(priorSum-1) > 1e-9 {
		return fmt.Errorf("metal: priors sum to %v, want 1", priorSum)
	}
	for j, a := range in.Acc {
		if !(a > 0 && a < 1) {
			return fmt.Errorf("metal: acc[%d] = %v out of (0,1)", j, a)
		}
	}
	if in.Theta != nil {
		if len(in.Theta) != len(in.Acc) {
			return fmt.Errorf("metal: %d propensity rows for %d LFs", len(in.Theta), len(in.Acc))
		}
		for j, row := range in.Theta {
			if len(row) != in.K {
				return fmt.Errorf("metal: theta[%d] has %d classes, want %d", j, len(row), in.K)
			}
			for c, th := range row {
				if !(th > 0 && th < 1) {
					return fmt.Errorf("metal: theta[%d][%d] = %v out of (0,1)", j, c, th)
				}
			}
		}
	}
	if in.Voteless != nil && len(in.Voteless) != len(in.Acc) {
		return fmt.Errorf("metal: %d voteless flags for %d LFs", len(in.Voteless), len(in.Acc))
	}
	m.MaxIter = in.MaxIter
	m.Tol = in.Tol
	m.ModelPropensity = in.ModelPropensity
	m.SuppressSingleClassVote = in.SuppressSingleClassVote
	m.LearnPrior = in.LearnPrior
	m.Workers = 0
	m.k = in.K
	m.acc = in.Acc
	m.theta = in.Theta
	m.prior = in.Prior
	m.voteless = in.Voteless
	if m.voteless == nil {
		m.voteless = make([]bool, len(m.acc))
	}
	m.warmAcc, m.warmTheta, m.warmPrior, m.warmK = nil, nil, nil, 0
	m.emIters, m.warmLFs = 0, 0
	return nil
}

// Predictor scores single examples against a fitted model's parameters.
// It precomputes the per-LF factor tables and the all-inactive base terms
// once, so serving one example costs O(active LFs · classes) with no
// logarithms on the hot path. Posterior is bit-identical to the row
// PredictProba would produce for the same votes: both accumulate the same
// precomputed factors in ascending LF order.
//
// A Predictor is immutable after construction and safe for concurrent
// use; it snapshots the parameters, so refitting the donor model does not
// perturb it.
type Predictor struct {
	k        int
	voteless []bool
	ft       factorTables
	base     []float64
}

// NewPredictor builds a Predictor from the fitted parameters. It panics
// before Fit (or a successful UnmarshalJSON), mirroring PredictProba.
func (m *MeTaL) NewPredictor() *Predictor {
	if m.k == 0 {
		panic("metal: NewPredictor before Fit")
	}
	nLF := len(m.acc)
	return &Predictor{
		k:        m.k,
		voteless: append([]bool(nil), m.voteless...),
		ft:       m.buildTables(nLF, m.k, 1),
		base:     m.baseTerms(nLF, m.k),
	}
}

// NumClasses returns the class count of the underlying model.
func (p *Predictor) NumClasses() int { return p.k }

// Posterior returns the class posterior for one example given its active
// LF votes: js lists the active LF column indices in ascending order with
// vs the aligned votes (the shape lf.ApplyAll produces). An uncovered
// example (no active LFs) returns nil, matching PredictProba's nil rows.
// Out-of-range indices or votes panic: they indicate a vote row built
// against a different LF set than the model was fitted on.
func (p *Predictor) Posterior(js, vs []int) []float64 {
	if len(js) != len(vs) {
		panic(fmt.Sprintf("metal: %d LF indices for %d votes", len(js), len(vs)))
	}
	if len(js) == 0 {
		return nil
	}
	row := make([]float64, p.k)
	copy(row, p.base)
	for t, j := range js {
		if j < 0 || j >= len(p.voteless) {
			panic(fmt.Sprintf("metal: LF index %d out of range (fitted on %d)", j, len(p.voteless)))
		}
		v := vs[t]
		if v == lf.Abstain {
			continue
		}
		if v < 0 || v >= p.k {
			panic(fmt.Sprintf("metal: vote %d out of range for %d classes", v, p.k))
		}
		useVote := !p.voteless[j]
		for c := 0; c < p.k; c++ {
			var factor float64
			if useVote {
				factor = p.ft.logMiss[j]
				if c == v {
					factor = p.ft.logA[j]
				}
			}
			if p.ft.thetaLog != nil {
				factor += p.ft.thetaLog[j*p.k+c]
			}
			row[c] += factor
		}
	}
	l := logSumExp(row)
	for c := range row {
		row[c] = math.Exp(row[c] - l)
	}
	return row
}
