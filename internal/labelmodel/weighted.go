package labelmodel

import (
	"fmt"
	"math"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
)

// WeightedVote aggregates LF votes with fixed log-odds weights derived
// from externally measured LF accuracies — typically the labeled
// validation split that DataSculpt's accuracy filter already uses. It
// learns nothing from the unlabeled data (Fit only validates shapes),
// making it a strong, simple reference point between majority vote and
// the EM models: when a trustworthy validation set exists, supervised
// accuracy estimates beat unsupervised ones at any coverage level.
type WeightedVote struct {
	// Accuracies are per-LF accuracy estimates in (0,1); values are
	// clamped away from the boundaries when converted to log-odds.
	Accuracies []float64

	k int
}

// NewWeightedVote builds the model from precomputed accuracy estimates.
func NewWeightedVote(accuracies []float64) *WeightedVote {
	return &WeightedVote{Accuracies: accuracies}
}

// NewWeightedVoteFromValidation measures each LF's accuracy on a labeled
// validation split (LFs inactive there get the neutral estimate 0.5 —
// zero weight). It builds a throwaway inverted index over the split;
// callers fitting repeatedly against the same split (the pipeline's
// per-iteration interim refreshes) should share one index via
// NewWeightedVoteFromValidationIndexed instead.
func NewWeightedVoteFromValidation(valid []*dataset.Example, lfs []lf.LabelFunction) *WeightedVote {
	return NewWeightedVoteFromValidationIndexed(lf.NewIndex(valid), lfs)
}

// NewWeightedVoteFromValidationIndexed is NewWeightedVoteFromValidation
// over a prebuilt validation index, the way lf.NewFilterChainIndexed
// reuses shared indices: the index is immutable, so one build serves
// every fit of a run.
func NewWeightedVoteFromValidationIndexed(ix *lf.Index, lfs []lf.LabelFunction) *WeightedVote {
	gold := dataset.Labels(ix.Split())
	vm := lf.BuildVoteMatrix(ix, lfs)
	accs := make([]float64, len(lfs))
	for j := range lfs {
		acc, active := vm.LFAccuracy(j, gold)
		if active == 0 {
			accs[j] = 0.5
			continue
		}
		// Laplace smoothing keeps tiny validation samples from producing
		// infinite log-odds.
		accs[j] = (acc*float64(active) + 1) / (float64(active) + 2)
	}
	return NewWeightedVote(accs)
}

// Name implements LabelModel.
func (m *WeightedVote) Name() string { return "weighted-vote" }

// Fit implements LabelModel.
func (m *WeightedVote) Fit(vm *lf.VoteMatrix, numClasses int) error {
	if numClasses < 2 {
		return fmt.Errorf("weighted vote: need >=2 classes, got %d", numClasses)
	}
	if len(m.Accuracies) != vm.NumLFs() {
		return fmt.Errorf("weighted vote: %d accuracies for %d LFs", len(m.Accuracies), vm.NumLFs())
	}
	m.k = numClasses
	return nil
}

// PredictProba implements LabelModel.
func (m *WeightedVote) PredictProba(vm *lf.VoteMatrix) [][]float64 {
	if m.k == 0 {
		panic("weighted vote: PredictProba before Fit")
	}
	if vm.NumLFs() != len(m.Accuracies) {
		panic(fmt.Sprintf("weighted vote: matrix has %d LFs, configured with %d", vm.NumLFs(), len(m.Accuracies)))
	}
	n := vm.NumExamples()
	out := make([][]float64, n)
	scores := make([]float64, m.k)
	row := make([]int, vm.NumLFs())
	for i := 0; i < n; i++ {
		vm.Row(i, row)
		for c := range scores {
			scores[c] = 0
		}
		any := false
		for j, v := range row {
			if v == lf.Abstain || v >= m.k {
				continue
			}
			any = true
			a := m.Accuracies[j]
			if a < 0.02 {
				a = 0.02
			}
			if a > 0.98 {
				a = 0.98
			}
			scores[v] += math.Log(a / (1 - a))
		}
		if !any {
			continue
		}
		lse := logSumExp(scores)
		p := make([]float64, m.k)
		for c := range p {
			p[c] = math.Exp(scores[c] - lse)
		}
		out[i] = p
	}
	return out
}
