package labelmodel

import (
	"fmt"
	"math"

	"datasculpt/internal/lf"
)

// DawidSkene is the classical crowdsourcing label model (Dawid & Skene
// 1979) adapted to abstaining LFs: each LF carries a full K×K confusion
// matrix π_j[c][v] = P(vote v | y=c, active) estimated with EM, instead
// of MeTaL's single symmetric accuracy. The richer parametrization can
// capture class-asymmetric LF behaviour (an LF that is precise on one
// class but noisy on another) at the cost of K² parameters per LF —
// worthwhile only when coverage is dense enough to fit them. Activation
// is treated as class-independent (the classic abstain model).
type DawidSkene struct {
	// MaxIter bounds EM iterations (default 50).
	MaxIter int
	// Tol is the relative log-likelihood convergence tolerance.
	Tol float64
	// Smoothing is the Dirichlet pseudo-count added to confusion rows,
	// biased toward the diagonal (default 2).
	Smoothing float64

	k         int
	confusion [][][]float64 // [lf][trueClass][vote]
	prior     []float64
}

// NewDawidSkene constructs the model with defaults.
func NewDawidSkene() *DawidSkene {
	return &DawidSkene{MaxIter: 50, Tol: 1e-6, Smoothing: 2}
}

// Name implements LabelModel.
func (m *DawidSkene) Name() string { return "dawid-skene" }

// Confusion returns the fitted confusion tensors (shared storage).
func (m *DawidSkene) Confusion() [][][]float64 { return m.confusion }

// Fit implements LabelModel.
func (m *DawidSkene) Fit(vm *lf.VoteMatrix, numClasses int) error {
	if numClasses < 2 {
		return fmt.Errorf("dawid-skene: need >=2 classes, got %d", numClasses)
	}
	if m.MaxIter <= 0 {
		m.MaxIter = 50
	}
	if m.Tol <= 0 {
		m.Tol = 1e-6
	}
	if m.Smoothing <= 0 {
		m.Smoothing = 2
	}
	m.k = numClasses
	nLF := vm.NumLFs()
	m.prior = make([]float64, numClasses)
	for c := range m.prior {
		m.prior[c] = 1 / float64(numClasses)
	}
	m.confusion = make([][][]float64, nLF)
	for j := range m.confusion {
		m.confusion[j] = make([][]float64, numClasses)
		for c := range m.confusion[j] {
			row := make([]float64, numClasses)
			for v := range row {
				if v == c {
					row[v] = 0.7
				} else {
					row[v] = 0.3 / float64(numClasses-1)
				}
			}
			m.confusion[j][c] = row
		}
	}
	if nLF == 0 {
		return nil
	}

	active := collectActive(vm)
	covered := vm.Covered()
	nCovered := 0
	for _, b := range covered {
		if b {
			nCovered++
		}
	}
	if nCovered == 0 {
		return fmt.Errorf("dawid-skene: no example is covered by any LF")
	}

	n := vm.NumExamples()
	logpost := make([][]float64, n)
	gamma := make([][]float64, n)
	for i := range logpost {
		if covered[i] {
			logpost[i] = make([]float64, numClasses)
			gamma[i] = make([]float64, numClasses)
		}
	}

	prevLL := math.Inf(-1)
	for iter := 0; iter < m.MaxIter; iter++ {
		// E-step
		for i := range logpost {
			if logpost[i] == nil {
				continue
			}
			for c := 0; c < numClasses; c++ {
				logpost[i][c] = math.Log(m.prior[c])
			}
		}
		for j := 0; j < nLF; j++ {
			al := active[j]
			for t, id := range al.ids {
				v := int(al.votes[t])
				row := logpost[id]
				for c := 0; c < numClasses; c++ {
					row[c] += math.Log(m.confusion[j][c][v])
				}
			}
		}
		var ll float64
		for i := range logpost {
			if logpost[i] == nil {
				continue
			}
			lse := logSumExp(logpost[i])
			ll += lse
			for c := range gamma[i] {
				gamma[i][c] = math.Exp(logpost[i][c] - lse)
			}
		}

		// M-step: confusion rows with diagonal-biased Dirichlet smoothing.
		for j := 0; j < nLF; j++ {
			al := active[j]
			counts := make([][]float64, numClasses)
			for c := range counts {
				counts[c] = make([]float64, numClasses)
			}
			for t, id := range al.ids {
				v := int(al.votes[t])
				for c := 0; c < numClasses; c++ {
					counts[c][v] += gamma[id][c]
				}
			}
			for c := 0; c < numClasses; c++ {
				var total float64
				for v := 0; v < numClasses; v++ {
					pseudo := m.Smoothing * 0.3 / float64(numClasses-1)
					if v == c {
						pseudo = m.Smoothing * 0.7
					}
					counts[c][v] += pseudo
					total += counts[c][v]
				}
				for v := 0; v < numClasses; v++ {
					p := counts[c][v] / total
					if p < 1e-4 {
						p = 1e-4
					}
					m.confusion[j][c][v] = p
				}
			}
		}

		if prevLL != math.Inf(-1) {
			denom := math.Abs(prevLL)
			if denom < 1 {
				denom = 1
			}
			if math.Abs(ll-prevLL)/denom < m.Tol {
				break
			}
		}
		prevLL = ll
	}
	return nil
}

// PredictProba implements LabelModel.
func (m *DawidSkene) PredictProba(vm *lf.VoteMatrix) [][]float64 {
	if m.k == 0 {
		panic("dawid-skene: PredictProba before Fit")
	}
	if vm.NumLFs() != len(m.confusion) {
		panic(fmt.Sprintf("dawid-skene: matrix has %d LFs, fitted on %d", vm.NumLFs(), len(m.confusion)))
	}
	n := vm.NumExamples()
	out := make([][]float64, n)
	logp := make([]float64, m.k)
	row := make([]int, vm.NumLFs())
	for i := 0; i < n; i++ {
		vm.Row(i, row)
		any := false
		for c := 0; c < m.k; c++ {
			logp[c] = math.Log(m.prior[c])
		}
		for j, v := range row {
			if v == lf.Abstain {
				continue
			}
			any = true
			for c := 0; c < m.k; c++ {
				logp[c] += math.Log(m.confusion[j][c][v])
			}
		}
		if !any {
			continue
		}
		lse := logSumExp(logp)
		p := make([]float64, m.k)
		for c := range p {
			p[c] = math.Exp(logp[c] - lse)
		}
		out[i] = p
	}
	return out
}
