package labelmodel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
)

// synthVotes builds a vote matrix from n examples with known gold labels
// and m simulated LFs with the given accuracies and coverages. Abstention
// is independent of the gold label, matching the models' assumption.
func synthVotes(t *testing.T, seed int64, n, k int, accs, covs []float64) (*lf.VoteMatrix, []int) {
	t.Helper()
	if len(accs) != len(covs) {
		t.Fatal("accs/covs length mismatch")
	}
	rng := rand.New(rand.NewSource(seed))
	examples := make([]*dataset.Example, n)
	gold := make([]int, n)
	for i := range examples {
		gold[i] = rng.Intn(k)
		examples[i] = &dataset.Example{
			ID:     i,
			Text:   fmt.Sprintf("doc %d", i),
			Tokens: []string{"doc", fmt.Sprint(i)},
			Label:  gold[i],
			E1Pos:  -1, E2Pos: -1,
		}
	}
	lfs := make([]lf.LabelFunction, len(accs))
	for j := range accs {
		votes := make(map[*dataset.Example]int, n)
		for i, e := range examples {
			if rng.Float64() >= covs[j] {
				continue
			}
			if rng.Float64() < accs[j] {
				votes[e] = gold[i]
			} else {
				wrong := rng.Intn(k - 1)
				if wrong >= gold[i] {
					wrong++
				}
				votes[e] = wrong
			}
		}
		lfs[j] = &lf.AnnotationLF{LFName: fmt.Sprintf("synth-%d", j), Votes: votes}
	}
	ix := lf.NewIndex(examples)
	return lf.BuildVoteMatrix(ix, lfs), gold
}

func posteriorAccuracy(proba [][]float64, gold []int) float64 {
	correct, covered := 0, 0
	for i, p := range proba {
		if p == nil {
			continue
		}
		covered++
		best := 0
		for c := 1; c < len(p); c++ {
			if p[c] > p[best] {
				best = c
			}
		}
		if best == gold[i] {
			correct++
		}
	}
	if covered == 0 {
		return 0
	}
	return float64(correct) / float64(covered)
}

func checkProbaInvariants(t *testing.T, proba [][]float64, k int) {
	t.Helper()
	for i, p := range proba {
		if p == nil {
			continue
		}
		if len(p) != k {
			t.Fatalf("proba[%d] has %d classes, want %d", i, len(p), k)
		}
		var s float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("proba[%d] = %v out of range", i, p)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("proba[%d] sums to %v", i, s)
		}
	}
}

func TestMajorityVoteBasic(t *testing.T) {
	vm, gold := synthVotes(t, 1, 500, 2, []float64{0.9, 0.8, 0.7}, []float64{0.5, 0.5, 0.5})
	m := NewMajorityVote()
	if err := m.Fit(vm, 2); err != nil {
		t.Fatal(err)
	}
	proba := m.PredictProba(vm)
	checkProbaInvariants(t, proba, 2)
	if acc := posteriorAccuracy(proba, gold); acc < 0.8 {
		t.Errorf("majority vote accuracy = %v, want >= 0.8", acc)
	}
}

func TestMajorityVoteUncoveredNil(t *testing.T) {
	vm, _ := synthVotes(t, 2, 300, 2, []float64{0.9}, []float64{0.3})
	m := NewMajorityVote()
	if err := m.Fit(vm, 2); err != nil {
		t.Fatal(err)
	}
	proba := m.PredictProba(vm)
	nilCount := 0
	for i, p := range proba {
		if p == nil {
			nilCount++
			// verify the example truly is uncovered
			for j := 0; j < vm.NumLFs(); j++ {
				if vm.Vote(i, j) != lf.Abstain {
					t.Fatalf("nil posterior for covered example %d", i)
				}
			}
		}
	}
	if nilCount == 0 {
		t.Error("expected some uncovered examples at coverage 0.3")
	}
}

func TestMeTaLRecoversAccuracyOrdering(t *testing.T) {
	accs := []float64{0.95, 0.85, 0.7, 0.55}
	covs := []float64{0.4, 0.4, 0.4, 0.4}
	vm, gold := synthVotes(t, 3, 4000, 2, accs, covs)
	m := NewMeTaL()
	if err := m.Fit(vm, 2); err != nil {
		t.Fatal(err)
	}
	est := m.Accuracies()
	for j := 0; j < len(accs)-1; j++ {
		if est[j] <= est[j+1] {
			t.Errorf("estimated accuracies not ordered: %v (true %v)", est, accs)
			break
		}
	}
	for j, a := range accs {
		if math.Abs(est[j]-a) > 0.1 {
			t.Errorf("acc[%d] estimated %v, true %v", j, est[j], a)
		}
	}
	proba := m.PredictProba(vm)
	checkProbaInvariants(t, proba, 2)
	if acc := posteriorAccuracy(proba, gold); acc < 0.82 {
		t.Errorf("metal posterior accuracy = %v", acc)
	}
}

func TestMeTaLBeatsMajorityWithUnequalLFs(t *testing.T) {
	// One excellent LF drowned out by three mediocre ones: weighting by
	// learned accuracy must beat unweighted counting.
	accs := []float64{0.97, 0.6, 0.6, 0.6}
	covs := []float64{0.7, 0.7, 0.7, 0.7}
	vm, gold := synthVotes(t, 4, 5000, 2, accs, covs)

	mv := NewMajorityVote()
	if err := mv.Fit(vm, 2); err != nil {
		t.Fatal(err)
	}
	mt := NewMeTaL()
	if err := mt.Fit(vm, 2); err != nil {
		t.Fatal(err)
	}
	mvAcc := posteriorAccuracy(mv.PredictProba(vm), gold)
	mtAcc := posteriorAccuracy(mt.PredictProba(vm), gold)
	if mtAcc <= mvAcc {
		t.Errorf("metal %.4f should beat majority %.4f", mtAcc, mvAcc)
	}
}

func TestMeTaLMulticlass(t *testing.T) {
	accs := []float64{0.85, 0.8, 0.75, 0.7, 0.8}
	covs := []float64{0.3, 0.3, 0.3, 0.3, 0.3}
	vm, gold := synthVotes(t, 5, 6000, 4, accs, covs)
	m := NewMeTaL()
	if err := m.Fit(vm, 4); err != nil {
		t.Fatal(err)
	}
	proba := m.PredictProba(vm)
	checkProbaInvariants(t, proba, 4)
	if acc := posteriorAccuracy(proba, gold); acc < 0.75 {
		t.Errorf("4-class metal accuracy = %v", acc)
	}
}

func TestMeTaLNoCoverage(t *testing.T) {
	vm, _ := synthVotes(t, 6, 100, 2, []float64{0.9}, []float64{0})
	m := NewMeTaL()
	if err := m.Fit(vm, 2); err == nil {
		t.Error("fit succeeded with zero coverage")
	}
}

func TestMeTaLPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	vm, _ := synthVotes(t, 7, 10, 2, []float64{0.9}, []float64{0.5})
	NewMeTaL().PredictProba(vm)
}

func TestMeTaLMismatchedMatrixPanics(t *testing.T) {
	vm1, _ := synthVotes(t, 8, 200, 2, []float64{0.9, 0.8}, []float64{0.5, 0.5})
	vm2, _ := synthVotes(t, 9, 200, 2, []float64{0.9}, []float64{0.5})
	m := NewMeTaL()
	if err := m.Fit(vm1, 2); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on LF-count mismatch")
		}
	}()
	m.PredictProba(vm2)
}

func TestTripletBinaryRecovery(t *testing.T) {
	accs := []float64{0.9, 0.8, 0.7, 0.85, 0.75}
	covs := []float64{0.6, 0.6, 0.6, 0.6, 0.6}
	vm, gold := synthVotes(t, 10, 6000, 2, accs, covs)
	m := NewTriplet()
	if err := m.Fit(vm, 2); err != nil {
		t.Fatal(err)
	}
	est := m.Accuracies()
	for j, a := range accs {
		if math.Abs(est[j]-a) > 0.12 {
			t.Errorf("triplet acc[%d] = %v, true %v", j, est[j], a)
		}
	}
	proba := m.PredictProba(vm)
	checkProbaInvariants(t, proba, 2)
	if acc := posteriorAccuracy(proba, gold); acc < 0.85 {
		t.Errorf("triplet posterior accuracy = %v", acc)
	}
}

func TestTripletRejectsMulticlass(t *testing.T) {
	vm, _ := synthVotes(t, 11, 100, 3, []float64{0.8}, []float64{0.5})
	if err := NewTriplet().Fit(vm, 3); err == nil {
		t.Error("triplet accepted 3-class task")
	}
}

func TestHardLabels(t *testing.T) {
	proba := [][]float64{
		{0.9, 0.1},
		nil,
		{0.3, 0.7},
	}
	got := HardLabels(proba, lf.Abstain)
	if got[0] != 0 || got[1] != lf.Abstain || got[2] != 1 {
		t.Errorf("HardLabels = %v", got)
	}
	got = HardLabels(proba, 0)
	if got[1] != 0 {
		t.Errorf("fallback not applied: %v", got)
	}
}

func TestModelsAgreeOnCleanVotes(t *testing.T) {
	// With uniformly strong LFs all three models should label covered
	// examples nearly identically.
	accs := []float64{0.95, 0.95, 0.95}
	covs := []float64{0.8, 0.8, 0.8}
	vm, gold := synthVotes(t, 12, 2000, 2, accs, covs)
	models := []LabelModel{NewMajorityVote(), NewMeTaL(), NewTriplet()}
	for _, m := range models {
		if err := m.Fit(vm, 2); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		acc := posteriorAccuracy(m.PredictProba(vm), gold)
		if acc < 0.93 {
			t.Errorf("%s accuracy = %v on clean votes", m.Name(), acc)
		}
	}
}
