package labelmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// TestLabelModelPosteriorProperties drives every label model over
// randomized vote matrices and asserts the posterior invariants: one
// probability vector per covered example summing to 1, nil for uncovered.
func TestLabelModelPosteriorProperties(t *testing.T) {
	prop := func(seed int64, kRaw, mRaw uint8) bool {
		k := 2 + int(kRaw%3) // 2..4 classes
		m := 2 + int(mRaw%5) // 2..6 LFs
		accs := make([]float64, m)
		covs := make([]float64, m)
		for j := range accs {
			accs[j] = 0.55 + 0.4*float64((int(seed)+j)%10)/10
			covs[j] = 0.2 + 0.6*float64((int(seed)+3*j)%10)/10
		}
		vm, _ := synthVotes(t, seed, 300, k, accs, covs)
		models := []LabelModel{NewMajorityVote(), NewMeTaL(), NewDawidSkene()}
		if k == 2 {
			models = append(models, NewTriplet())
		}
		for _, model := range models {
			if err := model.Fit(vm, k); err != nil {
				// zero-coverage draws may legitimately fail; skip them
				continue
			}
			for i, p := range model.PredictProba(vm) {
				covered := false
				for j := 0; j < vm.NumLFs(); j++ {
					if vm.Vote(i, j) >= 0 {
						covered = true
						break
					}
				}
				if covered != (p != nil) {
					t.Logf("%s: coverage/nil mismatch at %d", model.Name(), i)
					return false
				}
				if p == nil {
					continue
				}
				var sum float64
				for _, v := range p {
					if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
						t.Logf("%s: probability out of range: %v", model.Name(), p)
						return false
					}
					sum += v
				}
				if math.Abs(sum-1) > 1e-6 {
					t.Logf("%s: posterior sums to %v", model.Name(), sum)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestHardLabelsMatchesArgmaxProperty checks HardLabels against a direct
// argmax over random posteriors.
func TestHardLabelsMatchesArgmaxProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		var proba [][]float64
		for i := 0; i+2 < len(raw); i += 3 {
			a, b, c := float64(raw[i])+1, float64(raw[i+1])+1, float64(raw[i+2])+1
			s := a + b + c
			proba = append(proba, []float64{a / s, b / s, c / s})
		}
		hard := HardLabels(proba, -1)
		for i, p := range proba {
			best := 0
			for c := 1; c < 3; c++ {
				if p[c] > p[best] {
					best = c
				}
			}
			if hard[i] != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
