package labelmodel

import (
	"fmt"
	"math"

	"datasculpt/internal/lf"
)

// MeTaL is a generative label model in the spirit of Ratner et al. (2019),
// the label model the paper uses throughout its evaluation. On a
// single-task problem MeTaL reduces to learning, without ground truth,
// per-LF reliabilities under a conditional-independence assumption; this
// implementation fits them with EM:
//
//	P(y=c) = π_c                               (fixed; see ClassBalance)
//	P(λ_j active | y=c) = θ_jc                 (class-conditional propensity)
//	P(λ_j = v | y=c, λ_j active) = a_j         if v == c
//	                             = (1-a_j)/(K-1) otherwise
//
// Unlike the simplest data-programming abstain model, activation is NOT
// assumed independent of the true class. For keyword LFs the activation
// pattern carries most of the signal: a spam-keyword LF fires almost
// exclusively on spam messages, so firing at all is strong evidence even
// before the vote is read — while a generic-word LF fires uniformly and
// its activation is correctly treated as uninformative. Modeling θ_jc is
// what lets the posterior separate the two on imbalanced datasets.
type MeTaL struct {
	// MaxIter bounds EM iterations (default 100).
	MaxIter int
	// Tol is the relative log-likelihood convergence tolerance
	// (default 1e-6).
	Tol float64
	// ClassBalance fixes the class priors π (like Snorkel's
	// class_balance input). Nil means uniform. Priors are NOT learned by
	// default: with the sparse, mostly-singleton coverage of keyword LFs,
	// jointly learning priors and accuracies has a degenerate EM mode
	// that explains minority-class LFs away as inaccurate and collapses
	// the prior onto the majority class.
	ClassBalance []float64
	// LearnPrior opts back into M-step prior updates for vote matrices
	// with dense, overlapping coverage.
	LearnPrior bool
	// ModelPropensity enables the class-conditional activation term θ_jc
	// (default true via NewMeTaL). Disable to recover the classic
	// abstain-uninformative model.
	ModelPropensity bool
	// SuppressSingleClassVote drops the accuracy factor for LFs that only
	// ever emit one class, leaving their evidence entirely to θ_jc. This
	// is the "correct" generative story for deterministic keyword LFs —
	// the vote repeats the activation — but in practice EM's θ estimates
	// from responsibilities are fragile when minority-class LFs are
	// sparse, so it is off by default and exercised by the ablation
	// benchmarks.
	SuppressSingleClassVote bool

	k        int
	acc      []float64   // per-LF accuracy a_j
	theta    [][]float64 // per-LF per-class activation propensity θ_jc
	voteless []bool      // per-LF: vote factor suppressed (single-class LF)
	prior    []float64   // class priors π
}

// Accuracy-anchor hyperparameters of the M-step's Beta prior: sparse LFs
// are pulled toward accAnchor with the weight of accPseudo observations.
const (
	accAnchor = 0.88
	accPseudo = 8.0
	// thetaPseudo smooths the propensity estimates.
	thetaPseudo = 1.0
	// thetaClampFactor bounds each θ_jc to within this factor of the LF's
	// marginal activation rate. Without the clamp, EM can label-switch: a
	// small residual posterior mass (say γ=0.1) spread over a majority
	// LF's thousands of activations aggregates — against the rare class's
	// tiny mass denominator — into a large apparent propensity for the
	// wrong class, which then flips the LF's interpretation entirely.
	thetaClampFactor = 5.0
)

// NewMeTaL constructs the model with default hyperparameters.
func NewMeTaL() *MeTaL {
	return &MeTaL{MaxIter: 100, Tol: 1e-6, ModelPropensity: true}
}

// Name implements LabelModel.
func (m *MeTaL) Name() string { return "metal" }

// Accuracies returns the fitted per-LF accuracies (shared slice).
func (m *MeTaL) Accuracies() []float64 { return m.acc }

// Propensities returns the fitted θ_jc matrix (shared; nil when
// ModelPropensity is off).
func (m *MeTaL) Propensities() [][]float64 { return m.theta }

// Priors returns the class priors (shared slice).
func (m *MeTaL) Priors() []float64 { return m.prior }

// activeList caches the active (docID, vote) pairs of one LF column,
// plus whether the LF only ever emits a single class.
type activeList struct {
	ids   []int32
	votes []int8
	// singleClass is true when every active vote equals voteClass. For
	// such LFs (keyword LFs always vote their class) the vote carries no
	// information beyond the activation itself, so the accuracy factor
	// must not be applied — doing so double-counts and systematically
	// over-trusts majority-class LFs. All their evidence lives in θ_jc.
	singleClass bool
	voteClass   int
}

func collectActive(vm *lf.VoteMatrix) []activeList {
	out := make([]activeList, vm.NumLFs())
	for j := 0; j < vm.NumLFs(); j++ {
		col := vm.Column(j)
		al := activeList{singleClass: true, voteClass: -1}
		for i, v := range col {
			if v != lf.Abstain {
				al.ids = append(al.ids, int32(i))
				al.votes = append(al.votes, v)
				if al.voteClass == -1 {
					al.voteClass = int(v)
				} else if al.voteClass != int(v) {
					al.singleClass = false
				}
			}
		}
		out[j] = al
	}
	return out
}

// Fit implements LabelModel.
func (m *MeTaL) Fit(vm *lf.VoteMatrix, numClasses int) error {
	if numClasses < 2 {
		return fmt.Errorf("metal: need >=2 classes, got %d", numClasses)
	}
	if m.MaxIter <= 0 {
		m.MaxIter = 100
	}
	if m.Tol <= 0 {
		m.Tol = 1e-6
	}
	m.k = numClasses
	nLF := vm.NumLFs()
	m.acc = make([]float64, nLF)
	m.theta = nil
	m.voteless = make([]bool, nLF)
	for j := range m.acc {
		m.acc[j] = accAnchor // optimistic init: LFs are better than chance
	}
	m.prior = make([]float64, numClasses)
	if m.ClassBalance != nil {
		if len(m.ClassBalance) != numClasses {
			return fmt.Errorf("metal: class balance has %d entries for %d classes",
				len(m.ClassBalance), numClasses)
		}
		var sum float64
		for _, p := range m.ClassBalance {
			if p <= 0 {
				return fmt.Errorf("metal: non-positive class balance entry")
			}
			sum += p
		}
		for c := range m.prior {
			m.prior[c] = m.ClassBalance[c] / sum
		}
	} else {
		for c := range m.prior {
			m.prior[c] = 1 / float64(numClasses)
		}
	}
	if nLF == 0 {
		return nil // nothing to learn; priors stay as configured
	}

	active := collectActive(vm)
	covered := vm.Covered()
	nCovered := 0
	for _, b := range covered {
		if b {
			nCovered++
		}
	}
	if nCovered == 0 {
		return fmt.Errorf("metal: no example is covered by any LF")
	}
	if m.ModelPropensity && m.SuppressSingleClassVote {
		for j := range m.voteless {
			m.voteless[j] = active[j].singleClass
		}
	}

	if m.ModelPropensity {
		// θ initialization leans toward the LF's voted class: the LF's
		// author (the LLM, a human expert, a code generator) intended it
		// to fire on that class, which breaks the symmetry EM needs when
		// single-class LFs contribute no vote factor. The lean is soft;
		// the M-step re-estimates θ from responsibilities, flattening it
		// for LFs whose activations turn out to be class-independent.
		m.theta = make([][]float64, nLF)
		for j := range m.theta {
			m.theta[j] = make([]float64, numClasses)
			base := float64(len(active[j].ids)+1) / float64(nCovered+2)
			for c := range m.theta[j] {
				m.theta[j][c] = base
			}
			if vc := active[j].voteClass; vc >= 0 && vc < numClasses {
				up := base * 2.5
				if up > 0.95 {
					up = 0.95
				}
				down := base * 0.4
				if down < 1e-4 {
					down = 1e-4
				}
				for c := range m.theta[j] {
					if c == vc {
						m.theta[j][c] = up
					} else {
						m.theta[j][c] = down
					}
				}
			}
		}
	}

	n := vm.NumExamples()
	logpost := make([][]float64, n)
	gamma := make([][]float64, n)
	for i := range logpost {
		if covered[i] {
			logpost[i] = make([]float64, numClasses)
			gamma[i] = make([]float64, numClasses)
		}
	}

	prevLL := math.Inf(-1)
	for iter := 0; iter < m.MaxIter; iter++ {
		// E-step. With propensity on, every covered document carries the
		// inactive-LF mass Σ_j log(1-θ_jc) as a per-class base term, and
		// each active LF swaps its log(1-θ_jc) for log θ_jc plus the vote
		// factor. Accumulation stays column-sparse.
		base := make([]float64, numClasses)
		for c := range base {
			base[c] = math.Log(m.prior[c])
		}
		if m.ModelPropensity {
			for j := 0; j < nLF; j++ {
				for c := 0; c < numClasses; c++ {
					base[c] += math.Log(1 - m.theta[j][c])
				}
			}
		}
		for i := range logpost {
			if logpost[i] == nil {
				continue
			}
			copy(logpost[i], base)
		}
		for j := 0; j < nLF; j++ {
			logA := math.Log(m.acc[j])
			logMiss := math.Log((1 - m.acc[j]) / float64(numClasses-1))
			al := active[j]
			useVote := !m.voteless[j]
			for t, id := range al.ids {
				v := int(al.votes[t])
				row := logpost[id]
				for c := 0; c < numClasses; c++ {
					var factor float64
					if useVote {
						factor = logMiss
						if c == v {
							factor = logA
						}
					}
					if m.ModelPropensity {
						factor += math.Log(m.theta[j][c]) - math.Log(1-m.theta[j][c])
					}
					row[c] += factor
				}
			}
		}
		var ll float64
		for i := range logpost {
			if logpost[i] == nil {
				continue
			}
			lse := logSumExp(logpost[i])
			ll += lse
			for c := range gamma[i] {
				gamma[i][c] = math.Exp(logpost[i][c] - lse)
			}
		}

		// Class mass over covered documents (for propensity denominators).
		classMass := make([]float64, numClasses)
		for i := range gamma {
			if gamma[i] == nil {
				continue
			}
			for c, g := range gamma[i] {
				classMass[c] += g
			}
		}

		// M-step: accuracies under an informative Beta prior anchored at
		// accAnchor. Keyword LFs are sparse — most covered examples carry
		// a single vote, which gives EM no corroborating evidence — so
		// unanchored estimates drift toward whatever the current
		// responsibilities happen to say. The anchor (pseudo-count
		// accPseudo) keeps sparse LFs near the plausible operating point
		// while densely-covered LFs remain data-driven.
		for j := 0; j < nLF; j++ {
			al := active[j]
			var correct, total float64
			activeMass := make([]float64, numClasses)
			for t, id := range al.ids {
				v := int(al.votes[t])
				correct += gamma[id][v]
				total++
				for c := 0; c < numClasses; c++ {
					activeMass[c] += gamma[id][c]
				}
			}
			a := (correct + accPseudo*accAnchor) / (total + accPseudo)
			// Better-than-chance constraint (standard in data programming):
			// without it EM has a degenerate mode that explains minority-
			// class LFs as systematically inverted and collapses the prior.
			floor := 1.0/float64(numClasses) + 0.05
			if a < floor {
				a = floor
			}
			if a > 0.995 {
				a = 0.995
			}
			m.acc[j] = a

			if m.ModelPropensity {
				marginal := (total + 1) / (float64(nCovered) + 2)
				lo := marginal / thetaClampFactor
				hi := marginal * thetaClampFactor
				if lo < 1e-4 {
					lo = 1e-4
				}
				if hi > 0.999 {
					hi = 0.999
				}
				for c := 0; c < numClasses; c++ {
					th := (activeMass[c] + thetaPseudo) / (classMass[c] + 2*thetaPseudo)
					if th < lo {
						th = lo
					}
					if th > hi {
						th = hi
					}
					m.theta[j][c] = th
				}
			}
		}
		if m.LearnPrior {
			for c := 0; c < numClasses; c++ {
				m.prior[c] = (classMass[c] + 1.0) / (float64(nCovered) + float64(numClasses))
			}
		}

		if prevLL != math.Inf(-1) {
			denom := math.Abs(prevLL)
			if denom < 1 {
				denom = 1
			}
			if math.Abs(ll-prevLL)/denom < m.Tol {
				break
			}
		}
		prevLL = ll
	}
	return nil
}

// PredictProba implements LabelModel.
func (m *MeTaL) PredictProba(vm *lf.VoteMatrix) [][]float64 {
	if m.k == 0 {
		panic("metal: PredictProba before Fit")
	}
	if vm.NumLFs() != len(m.acc) {
		panic(fmt.Sprintf("metal: matrix has %d LFs, fitted on %d", vm.NumLFs(), len(m.acc)))
	}
	n := vm.NumExamples()
	out := make([][]float64, n)
	logp := make([]float64, m.k)
	row := make([]int, vm.NumLFs())

	base := make([]float64, m.k)
	for c := range base {
		base[c] = math.Log(m.prior[c])
	}
	if m.theta != nil {
		for j := range m.theta {
			for c := 0; c < m.k; c++ {
				base[c] += math.Log(1 - m.theta[j][c])
			}
		}
	}

	for i := 0; i < n; i++ {
		vm.Row(i, row)
		any := false
		copy(logp, base)
		for j, v := range row {
			if v == lf.Abstain {
				continue
			}
			any = true
			logA := math.Log(m.acc[j])
			logMiss := math.Log((1 - m.acc[j]) / float64(m.k-1))
			for c := 0; c < m.k; c++ {
				var factor float64
				if !m.voteless[j] {
					factor = logMiss
					if c == v {
						factor = logA
					}
				}
				if m.theta != nil {
					factor += math.Log(m.theta[j][c]) - math.Log(1-m.theta[j][c])
				}
				logp[c] += factor
			}
		}
		if !any {
			continue
		}
		lse := logSumExp(logp)
		p := make([]float64, m.k)
		for c := range p {
			p[c] = math.Exp(logp[c] - lse)
		}
		out[i] = p
	}
	return out
}

func logSumExp(xs []float64) float64 {
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - max)
	}
	return max + math.Log(s)
}
