package labelmodel

import (
	"fmt"
	"math"

	"datasculpt/internal/lf"
	"datasculpt/internal/par"
)

// MeTaL is a generative label model in the spirit of Ratner et al. (2019),
// the label model the paper uses throughout its evaluation. On a
// single-task problem MeTaL reduces to learning, without ground truth,
// per-LF reliabilities under a conditional-independence assumption; this
// implementation fits them with EM:
//
//	P(y=c) = π_c                               (fixed; see ClassBalance)
//	P(λ_j active | y=c) = θ_jc                 (class-conditional propensity)
//	P(λ_j = v | y=c, λ_j active) = a_j         if v == c
//	                             = (1-a_j)/(K-1) otherwise
//
// Unlike the simplest data-programming abstain model, activation is NOT
// assumed independent of the true class. For keyword LFs the activation
// pattern carries most of the signal: a spam-keyword LF fires almost
// exclusively on spam messages, so firing at all is strong evidence even
// before the vote is read — while a generic-word LF fires uniformly and
// its activation is correctly treated as uninformative. Modeling θ_jc is
// what lets the posterior separate the two on imbalanced datasets.
//
// The EM loop is engineered for the pipeline's per-iteration refit:
// vote columns are consumed through the matrix's sparse active lists
// (O(nnz), not O(n·m)), the E-step shards examples across Workers
// goroutines, and WarmStart seeds the next fit from the previous one so
// EM resumes near its fixpoint instead of from scratch. Determinism is
// preserved at every worker count: each example's posterior arithmetic
// is self-contained (identical regardless of which goroutine runs it),
// and the floating-point reductions — log-likelihood and class mass —
// are summed sequentially in ascending example order after the parallel
// section.
type MeTaL struct {
	// MaxIter bounds EM iterations (default 100).
	MaxIter int
	// Tol is the relative log-likelihood convergence tolerance
	// (default 1e-6).
	Tol float64
	// ClassBalance fixes the class priors π (like Snorkel's
	// class_balance input). Nil means uniform. Priors are NOT learned by
	// default: with the sparse, mostly-singleton coverage of keyword LFs,
	// jointly learning priors and accuracies has a degenerate EM mode
	// that explains minority-class LFs away as inaccurate and collapses
	// the prior onto the majority class.
	ClassBalance []float64
	// LearnPrior opts back into M-step prior updates for vote matrices
	// with dense, overlapping coverage.
	LearnPrior bool
	// ModelPropensity enables the class-conditional activation term θ_jc
	// (default true via NewMeTaL). Disable to recover the classic
	// abstain-uninformative model.
	ModelPropensity bool
	// SuppressSingleClassVote drops the accuracy factor for LFs that only
	// ever emit one class, leaving their evidence entirely to θ_jc. This
	// is the "correct" generative story for deterministic keyword LFs —
	// the vote repeats the activation — but in practice EM's θ estimates
	// from responsibilities are fragile when minority-class LFs are
	// sparse, so it is off by default and exercised by the ablation
	// benchmarks.
	SuppressSingleClassVote bool
	// Workers bounds the goroutines used by Fit's E/M steps and by
	// PredictProba. <= 1 (the zero value) is fully sequential; any value
	// yields bit-identical results.
	Workers int

	k        int
	acc      []float64   // per-LF accuracy a_j
	theta    [][]float64 // per-LF per-class activation propensity θ_jc
	voteless []bool      // per-LF: vote factor suppressed (single-class LF)
	prior    []float64   // class priors π

	// Warm-start state installed by WarmStart and consumed by Fit.
	warmAcc   []float64
	warmTheta [][]float64
	warmPrior []float64
	warmK     int

	emIters int // EM iterations the last Fit ran
	warmLFs int // LF columns the last Fit initialized from a warm start
}

// Accuracy-anchor hyperparameters of the M-step's Beta prior: sparse LFs
// are pulled toward accAnchor with the weight of accPseudo observations.
const (
	accAnchor = 0.88
	accPseudo = 8.0
	// thetaPseudo smooths the propensity estimates.
	thetaPseudo = 1.0
	// thetaClampFactor bounds each θ_jc to within this factor of the LF's
	// marginal activation rate. Without the clamp, EM can label-switch: a
	// small residual posterior mass (say γ=0.1) spread over a majority
	// LF's thousands of activations aggregates — against the rare class's
	// tiny mass denominator — into a large apparent propensity for the
	// wrong class, which then flips the LF's interpretation entirely.
	thetaClampFactor = 5.0
)

// NewMeTaL constructs the model with default hyperparameters.
func NewMeTaL() *MeTaL {
	return &MeTaL{MaxIter: 100, Tol: 1e-6, ModelPropensity: true}
}

// Name implements LabelModel.
func (m *MeTaL) Name() string { return "metal" }

// Accuracies returns the fitted per-LF accuracies (shared slice).
func (m *MeTaL) Accuracies() []float64 { return m.acc }

// Propensities returns the fitted θ_jc matrix (shared; nil when
// ModelPropensity is off).
func (m *MeTaL) Propensities() [][]float64 { return m.theta }

// Priors returns the class priors (shared slice).
func (m *MeTaL) Priors() []float64 { return m.prior }

// EMIterations returns how many EM iterations the last Fit ran — the
// quantity a warm start shrinks.
func (m *MeTaL) EMIterations() int { return m.emIters }

// WarmStartedLFs returns how many LF columns the last Fit initialized
// from a WarmStart donor (0 on a cold fit).
func (m *MeTaL) WarmStartedLFs() int { return m.warmLFs }

// WarmStart seeds the next Fit with the parameters a previous fit
// learned: columns shared with the donor (a prefix, under the pipeline's
// append-only LF set) start EM at the donor's acc/θ instead of the
// default init, so EM resumes near its previous fixpoint and converges
// in a handful of iterations. Columns beyond the donor's width get the
// default init; a donor fitted on a different class count is ignored.
// The donor's parameters are copied, not aliased.
func (m *MeTaL) WarmStart(prev *MeTaL) {
	m.warmAcc, m.warmTheta, m.warmPrior, m.warmK = nil, nil, nil, 0
	if prev == nil || prev.k == 0 || len(prev.acc) == 0 {
		return
	}
	m.warmK = prev.k
	m.warmAcc = append([]float64(nil), prev.acc...)
	if prev.theta != nil {
		m.warmTheta = make([][]float64, len(prev.theta))
		for j, row := range prev.theta {
			m.warmTheta[j] = append([]float64(nil), row...)
		}
	}
	if prev.prior != nil {
		m.warmPrior = append([]float64(nil), prev.prior...)
	}
}

// activeList caches the active (docID, vote) pairs of one LF column,
// plus whether the LF only ever emits a single class.
type activeList struct {
	ids   []int32
	votes []int8
	// singleClass is true when every active vote equals voteClass. For
	// such LFs (keyword LFs always vote their class) the vote carries no
	// information beyond the activation itself, so the accuracy factor
	// must not be applied — doing so double-counts and systematically
	// over-trusts majority-class LFs. All their evidence lives in θ_jc.
	singleClass bool
	voteClass   int
}

func collectActive(vm *lf.VoteMatrix) []activeList {
	out := make([]activeList, vm.NumLFs())
	for j := range out {
		ids, votes := vm.Active(j)
		al := activeList{ids: ids, votes: votes, singleClass: true, voteClass: -1}
		for _, v := range votes {
			if al.voteClass == -1 {
				al.voteClass = int(v)
			} else if al.voteClass != int(v) {
				al.singleClass = false
				break
			}
		}
		out[j] = al
	}
	return out
}

// voteCSR is the row-major view of a vote matrix: for example i, the
// (LF, vote) pairs live in js/vs[start[i]:start[i+1]], with LF indices
// ascending — the same order the column-sparse accumulation visits them,
// which keeps the floating-point sums bit-identical to the historical
// sequential E-step.
type voteCSR struct {
	start []int
	js    []int32
	vs    []int8
}

func buildCSR(vm *lf.VoteMatrix) voteCSR {
	n, nLF := vm.NumExamples(), vm.NumLFs()
	start := make([]int, n+1)
	for j := 0; j < nLF; j++ {
		ids, _ := vm.Active(j)
		for _, id := range ids {
			start[id+1]++
		}
	}
	for i := 0; i < n; i++ {
		start[i+1] += start[i]
	}
	nnz := start[n]
	csr := voteCSR{start: start, js: make([]int32, nnz), vs: make([]int8, nnz)}
	fill := append([]int(nil), start[:n]...)
	for j := 0; j < nLF; j++ {
		ids, votes := vm.Active(j)
		for t, id := range ids {
			p := fill[id]
			csr.js[p] = int32(j)
			csr.vs[p] = votes[t]
			fill[id] = p + 1
		}
	}
	return csr
}

// factorTables precomputes, for the current parameters, every per-LF log
// term the posterior needs: the vote factors log a_j and
// log((1-a_j)/(K-1)), and the activation odds log θ_jc - log(1-θ_jc)
// (flattened j*k+c; nil when propensity is off). The historical code
// recomputed these math.Log calls per active entry per class — the same
// values, so sharing them is bit-identical and saves the dominant share
// of E-step and PredictProba flops.
type factorTables struct {
	logA, logMiss []float64
	thetaLog      []float64
}

func (m *MeTaL) buildTables(nLF, k, workers int) factorTables {
	ft := factorTables{
		logA:    make([]float64, nLF),
		logMiss: make([]float64, nLF),
	}
	if m.theta != nil {
		ft.thetaLog = make([]float64, nLF*k)
	}
	par.Chunks(workers, nLF, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			ft.logA[j] = math.Log(m.acc[j])
			ft.logMiss[j] = math.Log((1 - m.acc[j]) / float64(k-1))
			if ft.thetaLog != nil {
				for c := 0; c < k; c++ {
					ft.thetaLog[j*k+c] = math.Log(m.theta[j][c]) - math.Log(1-m.theta[j][c])
				}
			}
		}
	})
	return ft
}

// baseTerms returns the per-class log mass every covered example starts
// from: log π_c plus, with propensity on, the all-LFs-inactive term
// Σ_j log(1-θ_jc), summed in ascending LF order.
func (m *MeTaL) baseTerms(nLF, k int) []float64 {
	base := make([]float64, k)
	for c := range base {
		base[c] = math.Log(m.prior[c])
	}
	if m.theta != nil {
		for j := 0; j < nLF; j++ {
			for c := 0; c < k; c++ {
				base[c] += math.Log(1 - m.theta[j][c])
			}
		}
	}
	return base
}

// scoreRow accumulates one example's active-LF factors onto row (already
// initialized with the base terms), visiting LFs in ascending order.
func (m *MeTaL) scoreRow(row []float64, csr voteCSR, i, k int, ft factorTables) {
	for p := csr.start[i]; p < csr.start[i+1]; p++ {
		j := int(csr.js[p])
		v := int(csr.vs[p])
		useVote := !m.voteless[j]
		for c := 0; c < k; c++ {
			var factor float64
			if useVote {
				factor = ft.logMiss[j]
				if c == v {
					factor = ft.logA[j]
				}
			}
			if ft.thetaLog != nil {
				factor += ft.thetaLog[j*k+c]
			}
			row[c] += factor
		}
	}
}

// Fit implements LabelModel.
func (m *MeTaL) Fit(vm *lf.VoteMatrix, numClasses int) error {
	if numClasses < 2 {
		return fmt.Errorf("metal: need >=2 classes, got %d", numClasses)
	}
	if m.MaxIter <= 0 {
		m.MaxIter = 100
	}
	if m.Tol <= 0 {
		m.Tol = 1e-6
	}
	m.k = numClasses
	m.emIters = 0
	m.warmLFs = 0
	nLF := vm.NumLFs()
	m.acc = make([]float64, nLF)
	m.theta = nil
	m.voteless = make([]bool, nLF)
	for j := range m.acc {
		m.acc[j] = accAnchor // optimistic init: LFs are better than chance
	}
	m.prior = make([]float64, numClasses)
	if m.ClassBalance != nil {
		if len(m.ClassBalance) != numClasses {
			return fmt.Errorf("metal: class balance has %d entries for %d classes",
				len(m.ClassBalance), numClasses)
		}
		var sum float64
		for _, p := range m.ClassBalance {
			if p <= 0 {
				return fmt.Errorf("metal: non-positive class balance entry")
			}
			sum += p
		}
		for c := range m.prior {
			m.prior[c] = m.ClassBalance[c] / sum
		}
	} else {
		for c := range m.prior {
			m.prior[c] = 1 / float64(numClasses)
		}
	}
	if nLF == 0 {
		return nil // nothing to learn; priors stay as configured
	}

	active := collectActive(vm)
	covered := vm.Covered()
	nCovered := 0
	for _, b := range covered {
		if b {
			nCovered++
		}
	}
	if nCovered == 0 {
		return fmt.Errorf("metal: no example is covered by any LF")
	}
	if m.ModelPropensity && m.SuppressSingleClassVote {
		for j := range m.voteless {
			m.voteless[j] = active[j].singleClass
		}
	}

	if m.ModelPropensity {
		// θ initialization leans toward the LF's voted class: the LF's
		// author (the LLM, a human expert, a code generator) intended it
		// to fire on that class, which breaks the symmetry EM needs when
		// single-class LFs contribute no vote factor. The lean is soft;
		// the M-step re-estimates θ from responsibilities, flattening it
		// for LFs whose activations turn out to be class-independent.
		m.theta = make([][]float64, nLF)
		for j := range m.theta {
			m.theta[j] = make([]float64, numClasses)
			base := float64(len(active[j].ids)+1) / float64(nCovered+2)
			for c := range m.theta[j] {
				m.theta[j][c] = base
			}
			if vc := active[j].voteClass; vc >= 0 && vc < numClasses {
				up := base * 2.5
				if up > 0.95 {
					up = 0.95
				}
				down := base * 0.4
				if down < 1e-4 {
					down = 1e-4
				}
				for c := range m.theta[j] {
					if c == vc {
						m.theta[j][c] = up
					} else {
						m.theta[j][c] = down
					}
				}
			}
		}
	}

	// Warm start: overlay the donor's converged parameters on the shared
	// prefix of the LF set. Appended columns keep the default init above.
	if m.warmK == numClasses && len(m.warmAcc) > 0 {
		shared := len(m.warmAcc)
		if shared > nLF {
			shared = nLF
		}
		copy(m.acc[:shared], m.warmAcc[:shared])
		if m.theta != nil && m.warmTheta != nil {
			for j := 0; j < shared && j < len(m.warmTheta); j++ {
				copy(m.theta[j], m.warmTheta[j])
			}
		}
		if m.LearnPrior && len(m.warmPrior) == numClasses {
			copy(m.prior, m.warmPrior)
		}
		m.warmLFs = shared
	}

	n := vm.NumExamples()
	workers := m.Workers
	csr := buildCSR(vm)
	logpost := make([][]float64, n)
	gamma := make([][]float64, n)
	lse := make([]float64, n)
	backing := make([]float64, 2*nCovered*numClasses) // one alloc for all rows
	off := 0
	for i := range logpost {
		if covered[i] {
			logpost[i] = backing[off : off+numClasses : off+numClasses]
			gamma[i] = backing[off+numClasses : off+2*numClasses : off+2*numClasses]
			off += 2 * numClasses
		}
	}

	prevLL := math.Inf(-1)
	for iter := 0; iter < m.MaxIter; iter++ {
		m.emIters = iter + 1
		// E-step. With propensity on, every covered document carries the
		// inactive-LF mass Σ_j log(1-θ_jc) as a per-class base term, and
		// each active LF swaps its log(1-θ_jc) for log θ_jc plus the vote
		// factor. Examples are sharded across workers; each index owns
		// its logpost/gamma/lse slots, so the arithmetic is identical at
		// every worker count.
		ft := m.buildTables(nLF, numClasses, workers)
		base := m.baseTerms(nLF, numClasses)
		par.Chunks(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := logpost[i]
				if row == nil {
					continue
				}
				copy(row, base)
				m.scoreRow(row, csr, i, numClasses, ft)
				l := logSumExp(row)
				lse[i] = l
				for c, g := range row {
					gamma[i][c] = math.Exp(g - l)
				}
			}
		})
		// Reductions in ascending example order, off the parallel path:
		// the sum order — and therefore every bit of the result — is
		// independent of the worker count.
		var ll float64
		for i := range logpost {
			if logpost[i] == nil {
				continue
			}
			ll += lse[i]
		}
		// Class mass over covered documents (for propensity denominators).
		classMass := make([]float64, numClasses)
		for i := range gamma {
			if gamma[i] == nil {
				continue
			}
			for c, g := range gamma[i] {
				classMass[c] += g
			}
		}

		// M-step: accuracies under an informative Beta prior anchored at
		// accAnchor. Keyword LFs are sparse — most covered examples carry
		// a single vote, which gives EM no corroborating evidence — so
		// unanchored estimates drift toward whatever the current
		// responsibilities happen to say. The anchor (pseudo-count
		// accPseudo) keeps sparse LFs near the plausible operating point
		// while densely-covered LFs remain data-driven. LFs are sharded
		// across workers; each owns its acc/theta row.
		par.Chunks(workers, nLF, func(lo, hi int) {
			activeMass := make([]float64, numClasses)
			for j := lo; j < hi; j++ {
				al := active[j]
				var correct, total float64
				for c := range activeMass {
					activeMass[c] = 0
				}
				for t, id := range al.ids {
					v := int(al.votes[t])
					correct += gamma[id][v]
					total++
					for c := 0; c < numClasses; c++ {
						activeMass[c] += gamma[id][c]
					}
				}
				a := (correct + accPseudo*accAnchor) / (total + accPseudo)
				// Better-than-chance constraint (standard in data programming):
				// without it EM has a degenerate mode that explains minority-
				// class LFs as systematically inverted and collapses the prior.
				floor := 1.0/float64(numClasses) + 0.05
				if a < floor {
					a = floor
				}
				if a > 0.995 {
					a = 0.995
				}
				m.acc[j] = a

				if m.ModelPropensity {
					marginal := (total + 1) / (float64(nCovered) + 2)
					lo := marginal / thetaClampFactor
					hi := marginal * thetaClampFactor
					if lo < 1e-4 {
						lo = 1e-4
					}
					if hi > 0.999 {
						hi = 0.999
					}
					for c := 0; c < numClasses; c++ {
						th := (activeMass[c] + thetaPseudo) / (classMass[c] + 2*thetaPseudo)
						if th < lo {
							th = lo
						}
						if th > hi {
							th = hi
						}
						m.theta[j][c] = th
					}
				}
			}
		})
		if m.LearnPrior {
			for c := 0; c < numClasses; c++ {
				m.prior[c] = (classMass[c] + 1.0) / (float64(nCovered) + float64(numClasses))
			}
		}

		if prevLL != math.Inf(-1) {
			denom := math.Abs(prevLL)
			if denom < 1 {
				denom = 1
			}
			if math.Abs(ll-prevLL)/denom < m.Tol {
				break
			}
		}
		prevLL = ll
	}
	return nil
}

// PredictProba implements LabelModel. Uncovered examples get a nil row.
// Examples are sharded across Workers goroutines; each example's
// posterior is computed independently, so output is identical at every
// worker count.
func (m *MeTaL) PredictProba(vm *lf.VoteMatrix) [][]float64 {
	if m.k == 0 {
		panic("metal: PredictProba before Fit")
	}
	if vm.NumLFs() != len(m.acc) {
		panic(fmt.Sprintf("metal: matrix has %d LFs, fitted on %d", vm.NumLFs(), len(m.acc)))
	}
	n := vm.NumExamples()
	nLF := vm.NumLFs()
	workers := m.Workers
	csr := buildCSR(vm)
	ft := m.buildTables(nLF, m.k, workers)
	base := m.baseTerms(nLF, m.k)

	out := make([][]float64, n)
	nCov := 0
	for i := 0; i < n; i++ {
		if csr.start[i+1] > csr.start[i] {
			nCov++
		}
	}
	backing := make([]float64, nCov*m.k)
	off := 0
	for i := 0; i < n; i++ {
		if csr.start[i+1] > csr.start[i] {
			out[i] = backing[off : off+m.k : off+m.k]
			off += m.k
		}
	}
	par.Chunks(workers, n, func(lo, hi int) {
		logp := make([]float64, m.k)
		for i := lo; i < hi; i++ {
			p := out[i]
			if p == nil {
				continue
			}
			copy(logp, base)
			m.scoreRow(logp, csr, i, m.k, ft)
			l := logSumExp(logp)
			for c := range p {
				p[c] = math.Exp(logp[c] - l)
			}
		}
	})
	return out
}

func logSumExp(xs []float64) float64 {
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - max)
	}
	return max + math.Log(s)
}
