// Package labelmodel implements the label models that aggregate noisy LF
// votes into probabilistic training labels: a majority-vote baseline, a
// MeTaL-style generative model fit with EM (the label model the paper
// uses on every configuration), and a FlyingSquid-style triplet model for
// binary tasks.
package labelmodel

import (
	"fmt"

	"datasculpt/internal/lf"
)

// LabelModel learns LF reliabilities from a vote matrix and produces
// per-example class posteriors.
type LabelModel interface {
	// Name identifies the model in reports.
	Name() string
	// Fit estimates parameters from the (typically unlabeled) train vote
	// matrix.
	Fit(vm *lf.VoteMatrix, numClasses int) error
	// PredictProba returns one probability vector per example, or nil for
	// examples on which every LF abstains (the caller decides whether to
	// drop them or assign the dataset's default class). The matrix must
	// have the same LF columns, in the same order, as the one passed to
	// Fit.
	PredictProba(vm *lf.VoteMatrix) [][]float64
}

// MajorityVote is the standard PWS baseline: the posterior is the
// normalized histogram of active votes.
type MajorityVote struct {
	k int
}

// NewMajorityVote constructs the model.
func NewMajorityVote() *MajorityVote { return &MajorityVote{} }

// Name implements LabelModel.
func (m *MajorityVote) Name() string { return "majority-vote" }

// Fit implements LabelModel. Majority vote has no parameters; Fit only
// records the class count.
func (m *MajorityVote) Fit(vm *lf.VoteMatrix, numClasses int) error {
	if numClasses < 2 {
		return fmt.Errorf("majority vote: need >=2 classes, got %d", numClasses)
	}
	m.k = numClasses
	return nil
}

// PredictProba implements LabelModel.
func (m *MajorityVote) PredictProba(vm *lf.VoteMatrix) [][]float64 {
	if m.k == 0 {
		panic("majority vote: PredictProba before Fit")
	}
	n := vm.NumExamples()
	out := make([][]float64, n)
	counts := make([]float64, m.k)
	for i := 0; i < n; i++ {
		for c := range counts {
			counts[c] = 0
		}
		total := 0.0
		for j := 0; j < vm.NumLFs(); j++ {
			v := vm.Vote(i, j)
			if v == lf.Abstain || v >= m.k {
				continue
			}
			counts[v]++
			total++
		}
		if total == 0 {
			continue // nil: uncovered
		}
		p := make([]float64, m.k)
		for c := range p {
			p[c] = counts[c] / total
		}
		out[i] = p
	}
	return out
}

// HardLabels converts posteriors into class predictions, mapping nil
// (uncovered) entries to fallback. Pass lf.Abstain as fallback to keep
// uncovered examples marked.
func HardLabels(proba [][]float64, fallback int) []int {
	out := make([]int, len(proba))
	for i, p := range proba {
		if p == nil {
			out[i] = fallback
			continue
		}
		best := 0
		for c := 1; c < len(p); c++ {
			if p[c] > p[best] {
				best = c
			}
		}
		out[i] = best
	}
	return out
}
