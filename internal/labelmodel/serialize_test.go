package labelmodel

import (
	"encoding/json"
	"math"
	"testing"

	"datasculpt/internal/lf"
)

// fitSmallMetal fits a MeTaL on a small deterministic matrix and returns
// it with the matrix. Coverage is partial, so some rows are uncovered.
func fitSmallMetal(t *testing.T) (*MeTaL, *lf.VoteMatrix) {
	t.Helper()
	vm, _ := synthVotes(t, 42, 40, 2, []float64{0.9, 0.8, 0.7}, []float64{0.5, 0.4, 0.3})
	m := NewMeTaL()
	if err := m.Fit(vm, 2); err != nil {
		t.Fatal(err)
	}
	return m, vm
}

func TestMetalRoundTripBitIdentical(t *testing.T) {
	m, vm := fitSmallMetal(t)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var g MeTaL
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	want, got := m.PredictProba(vm), g.PredictProba(vm)
	for i := range want {
		if (want[i] == nil) != (got[i] == nil) {
			t.Fatalf("row %d: nil mismatch", i)
		}
		for c := range want[i] {
			if math.Float64bits(want[i][c]) != math.Float64bits(got[i][c]) {
				t.Fatalf("row %d class %d: %v vs %v", i, c, want[i][c], got[i][c])
			}
		}
	}
}

func TestMetalSerializeUnfitted(t *testing.T) {
	if _, err := json.Marshal(NewMeTaL()); err == nil {
		t.Fatal("marshaling an unfitted model should fail")
	}
}

func TestMetalUnmarshalRejectsCorrupt(t *testing.T) {
	cases := []string{
		`{"k":1,"prior":[1]}`,
		`{"k":2,"prior":[0.5,0.6],"acc":[]}`,
		`{"k":2,"prior":[0.5,0.5],"acc":[1.5]}`,
		`{"k":2,"prior":[0.5,0.5],"acc":[0.9],"theta":[[0.5]]}`,
		`{"k":2,"prior":[0.5,0.5],"acc":[0.9],"theta":[[0.5,2.0]]}`,
		`{"k":2,"prior":[0.5,0.5],"acc":[0.9],"voteless":[true,false]}`,
		`nope`,
	}
	for _, c := range cases {
		var g MeTaL
		if err := json.Unmarshal([]byte(c), &g); err == nil {
			t.Errorf("Unmarshal(%s) should fail", c)
		}
	}
}

// TestPredictorMatchesPredictProba asserts the single-example scorer is
// bit-identical to the batch path, row by row, including nil rows for
// uncovered examples — the equivalence the serving daemon's explain mode
// relies on.
func TestPredictorMatchesPredictProba(t *testing.T) {
	m, vm := fitSmallMetal(t)
	p := m.NewPredictor()
	if p.NumClasses() != 2 {
		t.Fatalf("NumClasses = %d", p.NumClasses())
	}
	batch := m.PredictProba(vm)
	row := make([]int, vm.NumLFs())
	for i := 0; i < vm.NumExamples(); i++ {
		vm.Row(i, row)
		var js, vs []int
		for j, v := range row {
			if v != lf.Abstain {
				js = append(js, j)
				vs = append(vs, v)
			}
		}
		one := p.Posterior(js, vs)
		if (one == nil) != (batch[i] == nil) {
			t.Fatalf("example %d: nil mismatch (single %v, batch %v)", i, one, batch[i])
		}
		for c := range one {
			if math.Float64bits(one[c]) != math.Float64bits(batch[i][c]) {
				t.Fatalf("example %d class %d: %v vs %v", i, c, one[c], batch[i][c])
			}
		}
	}
}

func TestPredictorRoundTrippedModel(t *testing.T) {
	m, _ := fitSmallMetal(t)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var g MeTaL
	if err := json.Unmarshal(data, &g); err != nil {
		t.Fatal(err)
	}
	if g.NumLFs() != m.NumLFs() {
		t.Fatalf("NumLFs = %d, want %d", g.NumLFs(), m.NumLFs())
	}
	a, b := m.NewPredictor(), g.NewPredictor()
	js, vs := []int{0, 2}, []int{1, 1}
	pa, pb := a.Posterior(js, vs), b.Posterior(js, vs)
	for c := range pa {
		if math.Float64bits(pa[c]) != math.Float64bits(pb[c]) {
			t.Fatalf("class %d: %v vs %v", c, pa[c], pb[c])
		}
	}
}
