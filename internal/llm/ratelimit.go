package llm

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// sendGate is a token-bucket pacer shared by the RateLimiter middleware
// and the OpenAI client's WithRateLimit option. It admits `burst`
// immediate sends, then one send per interval, and aborts waits when the
// caller's context is done.
type sendGate struct {
	mu       sync.Mutex
	interval time.Duration
	burst    int
	next     time.Time // earliest time the oldest outstanding slot frees
	sleep    func(ctx context.Context, d time.Duration) error
}

// newSendGate builds a gate admitting qps sends per second after an
// initial burst (burst < 1 is treated as 1).
func newSendGate(qps float64, burst int) *sendGate {
	if burst < 1 {
		burst = 1
	}
	return &sendGate{
		interval: time.Duration(float64(time.Second) / qps),
		burst:    burst,
		sleep:    sleepCtx,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wait blocks until a send slot is available or ctx is done.
func (g *sendGate) wait(ctx context.Context) error {
	g.mu.Lock()
	now := time.Now()
	// the bucket never accumulates more than `burst` credit
	floor := now.Add(-time.Duration(g.burst-1) * g.interval)
	if g.next.Before(floor) {
		g.next = floor
	}
	wait := g.next.Sub(now)
	g.next = g.next.Add(g.interval)
	g.mu.Unlock()

	if wait <= 0 {
		return nil
	}
	if err := g.sleep(ctx, wait); err != nil {
		return fmt.Errorf("%w: %v", ErrRateLimited, err)
	}
	return nil
}

// RateLimiter is a ChatModel middleware that caps the call rate against
// a real endpoint with a token bucket: Burst calls pass immediately,
// further calls are spaced 1/QPS apart. Waiting calls abort when their
// context is canceled, returning an error wrapping ErrRateLimited.
//
// Compose it below the Cache (Cache -> RateLimiter -> client) so cache
// hits never spend rate budget.
type RateLimiter struct {
	inner ChatModel
	gate  *sendGate
}

// NewRateLimiter wraps a model with a qps token bucket (burst 1 when
// burst < 1).
func NewRateLimiter(inner ChatModel, qps float64, burst int) *RateLimiter {
	return &RateLimiter{inner: inner, gate: newSendGate(qps, burst)}
}

// ModelName implements ChatModel.
func (r *RateLimiter) ModelName() string { return r.inner.ModelName() }

// Pricing implements ChatModel.
func (r *RateLimiter) Pricing() (float64, float64) { return r.inner.Pricing() }

// Chat implements ChatModel, waiting for a send slot first.
func (r *RateLimiter) Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error) {
	if err := r.gate.wait(ctx); err != nil {
		return nil, err
	}
	return r.inner.Chat(ctx, messages, temperature, n)
}

// Metered is a ChatModel middleware that records every successful call
// into a shared mutex-guarded Meter — the usage/cost accounting view of
// a whole fleet of concurrent pipelines sharing one model.
type Metered struct {
	inner ChatModel
	meter *Meter
}

// NewMetered wraps a model with a fresh meter priced from it.
func NewMetered(inner ChatModel) *Metered {
	return &Metered{inner: inner, meter: NewMeter(inner)}
}

// Meter returns the shared meter.
func (m *Metered) Meter() *Meter { return m.meter }

// ModelName implements ChatModel.
func (m *Metered) ModelName() string { return m.inner.ModelName() }

// Pricing implements ChatModel.
func (m *Metered) Pricing() (float64, float64) { return m.inner.Pricing() }

// Chat implements ChatModel, recording usage of successful calls.
func (m *Metered) Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error) {
	responses, err := m.inner.Chat(ctx, messages, temperature, n)
	if err == nil {
		m.meter.Record(responses)
	}
	return responses, err
}
