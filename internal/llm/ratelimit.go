package llm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"datasculpt/internal/obs"
)

// sendGate is a token-bucket pacer shared by the RateLimiter middleware
// and the OpenAI client's WithRateLimit option. It admits `burst`
// immediate sends, then one send per interval, and aborts waits when the
// caller's context is done.
type sendGate struct {
	mu       sync.Mutex
	interval time.Duration
	burst    int
	next     time.Time // earliest time the oldest outstanding slot frees
	sleep    func(ctx context.Context, d time.Duration) error
}

// newSendGate builds a gate admitting qps sends per second after an
// initial burst (burst < 1 is treated as 1).
func newSendGate(qps float64, burst int) *sendGate {
	if burst < 1 {
		burst = 1
	}
	return &sendGate{
		interval: time.Duration(float64(time.Second) / qps),
		burst:    burst,
		sleep:    sleepCtx,
	}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wait blocks until a send slot is available or ctx is done. It reports
// how long the caller actually waited, whether the wait completed or
// was abandoned, so callers can account the time either way. A context
// that is already done is observed before any slot is claimed — a
// canceled caller neither proceeds nor burns rate budget.
func (g *sendGate) wait(ctx context.Context) (waited time.Duration, err error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrRateLimited, err)
	}

	g.mu.Lock()
	now := time.Now()
	// the bucket never accumulates more than `burst` credit
	floor := now.Add(-time.Duration(g.burst-1) * g.interval)
	if g.next.Before(floor) {
		g.next = floor
	}
	wait := g.next.Sub(now)
	g.next = g.next.Add(g.interval)
	g.mu.Unlock()

	if wait <= 0 {
		return 0, nil
	}
	start := time.Now()
	if err := g.sleep(ctx, wait); err != nil {
		return time.Since(start), fmt.Errorf("%w: %v", ErrRateLimited, err)
	}
	return time.Since(start), nil
}

// RateLimiter is a ChatModel middleware that caps the call rate against
// a real endpoint with a token bucket: Burst calls pass immediately,
// further calls are spaced 1/QPS apart. Waiting calls abort when their
// context is canceled — including contexts canceled before the call —
// returning an error wrapping ErrRateLimited.
//
// Compose it below the Cache (Cache -> RateLimiter -> client) so cache
// hits never spend rate budget.
type RateLimiter struct {
	inner ChatModel
	gate  *sendGate

	// telemetry handles; nil (no-op) until Instrument
	waitSeconds *obs.Histogram
	abandoned   *obs.Counter
}

// NewRateLimiter wraps a model with a qps token bucket (burst 1 when
// burst < 1).
func NewRateLimiter(inner ChatModel, qps float64, burst int) *RateLimiter {
	return &RateLimiter{inner: inner, gate: newSendGate(qps, burst)}
}

// Instrument records wait telemetry into the registry and returns the
// receiver for chaining: llm_ratelimit_wait_seconds observes every
// non-zero wait (abandoned waits included, so stolen latency is never
// invisible) and llm_ratelimit_abandoned_total counts waits that ended
// in context cancellation.
func (r *RateLimiter) Instrument(reg *obs.Registry) *RateLimiter {
	r.waitSeconds = reg.Histogram("llm_ratelimit_wait_seconds",
		"time spent waiting for a rate-limit slot, seconds", obs.DurationBuckets)
	r.abandoned = reg.Counter("llm_ratelimit_abandoned_total",
		"rate-limit waits abandoned by context cancellation")
	return r
}

// ModelName implements ChatModel.
func (r *RateLimiter) ModelName() string { return r.inner.ModelName() }

// Pricing implements ChatModel.
func (r *RateLimiter) Pricing() (float64, float64) { return r.inner.Pricing() }

// Chat implements ChatModel, waiting for a send slot first.
func (r *RateLimiter) Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error) {
	waited, err := r.gate.wait(ctx)
	if waited > 0 {
		r.waitSeconds.Observe(waited.Seconds())
	}
	if err != nil {
		r.abandoned.Inc()
		return nil, err
	}
	return r.inner.Chat(ctx, messages, temperature, n)
}

// Metered is a ChatModel middleware that records every successful call
// into a shared mutex-guarded Meter — the usage/cost accounting view of
// a whole fleet of concurrent pipelines sharing one model. Instrument
// additionally streams the same accounting into a metrics Registry as
// it happens, which is what makes cost observable *during* a run
// instead of after it.
type Metered struct {
	inner ChatModel
	meter *Meter

	// telemetry handles; nil (no-op) until Instrument
	calls            *obs.Counter
	promptTokens     *obs.Counter
	completionTokens *obs.Counter
	tokens           *obs.Counter
	costUSD          *obs.Counter
	latencySeconds   *obs.Histogram
	tokensPerCall    *obs.Histogram

	// costMu orders the cost-counter updates so the registry's
	// llm_cost_usd_total is, at every instant, exactly the meter's
	// CostUSD (summing per-call deltas independently would drift by
	// float rounding).
	costMu   sync.Mutex
	lastCost float64
}

// NewMetered wraps a model with a fresh meter priced from it.
func NewMetered(inner ChatModel) *Metered {
	return &Metered{inner: inner, meter: NewMeter(inner)}
}

// Instrument publishes live usage into the registry and returns the
// receiver for chaining. Counters: llm_calls_total,
// llm_prompt_tokens_total, llm_completion_tokens_total, llm_tokens_total
// and llm_cost_usd_total (always equal to Meter().CostUSD()).
// Histograms: llm_latency_seconds and llm_tokens_per_call.
func (m *Metered) Instrument(reg *obs.Registry) *Metered {
	m.calls = reg.Counter("llm_calls_total", "chat calls recorded")
	m.promptTokens = reg.Counter("llm_prompt_tokens_total", "billed prompt tokens")
	m.completionTokens = reg.Counter("llm_completion_tokens_total", "billed completion tokens")
	m.tokens = reg.Counter("llm_tokens_total", "billed tokens, prompt + completion")
	m.costUSD = reg.Counter("llm_cost_usd_total", "accumulated dollar cost")
	m.latencySeconds = reg.Histogram("llm_latency_seconds",
		"chat call latency, seconds", obs.DurationBuckets)
	m.tokensPerCall = reg.Histogram("llm_tokens_per_call",
		"billed tokens per chat call", obs.TokenBuckets)
	return m
}

// Meter returns the shared meter.
func (m *Metered) Meter() *Meter { return m.meter }

// Stats returns a consistent snapshot of the accumulated usage — the
// public accessor pairing with Cache.Stats.
func (m *Metered) Stats() MeterSnapshot { return m.meter.Snapshot() }

// ModelName implements ChatModel.
func (m *Metered) ModelName() string { return m.inner.ModelName() }

// Pricing implements ChatModel.
func (m *Metered) Pricing() (float64, float64) { return m.inner.Pricing() }

// Chat implements ChatModel, recording usage of successful calls.
func (m *Metered) Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error) {
	start := time.Now()
	responses, err := m.inner.Chat(ctx, messages, temperature, n)
	if err != nil {
		return responses, err
	}
	m.meter.Record(responses)
	m.latencySeconds.Observe(time.Since(start).Seconds())
	m.calls.Inc()
	var prompt, completion int
	for _, r := range responses {
		prompt += r.Usage.PromptTokens
		completion += r.Usage.CompletionTokens
	}
	m.promptTokens.AddInt(prompt)
	m.completionTokens.AddInt(completion)
	m.tokens.AddInt(prompt + completion)
	m.tokensPerCall.Observe(float64(prompt + completion))
	if m.costUSD != nil {
		m.costMu.Lock()
		cost := m.meter.CostUSD()
		m.costUSD.Add(cost - m.lastCost)
		m.lastCost = cost
		m.costMu.Unlock()
	}
	return responses, nil
}
