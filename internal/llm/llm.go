// Package llm defines the chat-model abstraction DataSculpt prompts
// against and provides a deterministic simulated LLM that stands in for
// the OpenAI (GPT-3.5, GPT-4) and Anyscale (Llama2-CHAT) endpoints the
// paper uses.
//
// The framework observes an LLM only through prompt-in/text-out plus
// billed token counts, so the simulator reproduces exactly the behaviours
// the paper measures: few-shot keyword extraction of varying fidelity per
// model tier, chain-of-thought and in-context-example quality effects,
// format violations that the validity filter must catch, reluctance to
// produce negative-class keywords (the default-class motivation), and
// per-token pricing for the cost analysis of Figures 3-4. See DESIGN.md
// §2 for the substitution argument and the calibration targets.
package llm

import (
	"context"
	"fmt"
	"sync"

	"datasculpt/internal/textproc"
)

// Role of a chat message.
type Role string

// Chat roles, mirroring the OpenAI chat format.
const (
	System Role = "system"
	User   Role = "user"
)

// Message is one chat turn.
type Message struct {
	Role    Role
	Content string
}

// Usage records billed token counts of one call.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
}

// Total returns prompt+completion tokens.
func (u Usage) Total() int { return u.PromptTokens + u.CompletionTokens }

// Add accumulates another usage record.
func (u *Usage) Add(o Usage) {
	u.PromptTokens += o.PromptTokens
	u.CompletionTokens += o.CompletionTokens
}

// Response is one sampled completion.
type Response struct {
	Content string
	Usage   Usage
}

// ChatModel is the provider abstraction: everything DataSculpt needs from
// an LLM endpoint. A production deployment would implement it with an
// HTTP client; this repo implements it with Simulated. Implementations
// must be safe for concurrent use: one model instance may serve many
// pipeline runs at once (see Cache, RateLimiter, Metered).
type ChatModel interface {
	// ModelName returns the provider model identifier.
	ModelName() string
	// Chat samples n completions for the conversation at the given
	// temperature and reports per-sample usage. It honors ctx
	// cancellation: long waits (HTTP round trips, retry backoff, rate
	// limiting) abort when ctx is done.
	Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error)
	// Pricing returns the model's dollar cost per 1M prompt and
	// completion tokens.
	Pricing() (promptPer1M, completionPer1M float64)
}

// MeterSnapshot is a consistent point-in-time copy of a Meter's counters.
type MeterSnapshot struct {
	Calls            int
	PromptTokens     int
	CompletionTokens int
	CostUSD          float64
}

// TotalTokens returns prompt+completion tokens of the snapshot.
func (s MeterSnapshot) TotalTokens() int { return s.PromptTokens + s.CompletionTokens }

// Meter accumulates usage and cost across calls to one model. It is
// mutex-guarded, so a single meter can serve many concurrent pipeline
// runs (wrap the shared model with NewMetered, or call Record directly).
type Meter struct {
	model           string
	promptPer1M     float64
	completionPer1M float64

	mu               sync.Mutex
	calls            int
	promptTokens     int
	completionTokens int
}

// NewMeter creates a meter priced for the given model.
func NewMeter(m ChatModel) *Meter {
	p, c := m.Pricing()
	return &Meter{model: m.ModelName(), promptPer1M: p, completionPer1M: c}
}

// Record accumulates the usage of one call's responses.
func (mt *Meter) Record(responses []Response) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.calls++
	for _, r := range responses {
		mt.promptTokens += r.Usage.PromptTokens
		mt.completionTokens += r.Usage.CompletionTokens
	}
}

// Calls returns how many Chat calls have been recorded.
func (mt *Meter) Calls() int {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.calls
}

// PromptTokens returns all billed prompt tokens so far.
func (mt *Meter) PromptTokens() int {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.promptTokens
}

// CompletionTokens returns all billed completion tokens so far.
func (mt *Meter) CompletionTokens() int {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.completionTokens
}

// TotalTokens returns all billed tokens so far.
func (mt *Meter) TotalTokens() int {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.promptTokens + mt.completionTokens
}

// CostUSD returns the accumulated dollar cost.
func (mt *Meter) CostUSD() float64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.costLocked()
}

func (mt *Meter) costLocked() float64 {
	return float64(mt.promptTokens)/1e6*mt.promptPer1M +
		float64(mt.completionTokens)/1e6*mt.completionPer1M
}

// Snapshot returns a consistent copy of every counter.
func (mt *Meter) Snapshot() MeterSnapshot {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return MeterSnapshot{
		Calls:            mt.calls,
		PromptTokens:     mt.promptTokens,
		CompletionTokens: mt.completionTokens,
		CostUSD:          mt.costLocked(),
	}
}

// Merge adds another meter's counts into this one (same model expected;
// costs are computed with this meter's prices).
func (mt *Meter) Merge(o *Meter) {
	s := o.Snapshot()
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.calls += s.Calls
	mt.promptTokens += s.PromptTokens
	mt.completionTokens += s.CompletionTokens
}

// String summarizes the meter.
func (mt *Meter) String() string {
	s := mt.Snapshot()
	return fmt.Sprintf("%s: %d calls, %d prompt + %d completion tokens, $%.4f",
		mt.model, s.Calls, s.PromptTokens, s.CompletionTokens, s.CostUSD)
}

// CountMessageTokens estimates the billed prompt tokens of a message
// list, including a small per-message framing overhead as the OpenAI
// chat format incurs.
func CountMessageTokens(messages []Message) int {
	total := 0
	for _, m := range messages {
		total += textproc.ApproxLLMTokens(m.Content) + 4
	}
	return total
}
