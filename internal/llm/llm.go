// Package llm defines the chat-model abstraction DataSculpt prompts
// against and provides a deterministic simulated LLM that stands in for
// the OpenAI (GPT-3.5, GPT-4) and Anyscale (Llama2-CHAT) endpoints the
// paper uses.
//
// The framework observes an LLM only through prompt-in/text-out plus
// billed token counts, so the simulator reproduces exactly the behaviours
// the paper measures: few-shot keyword extraction of varying fidelity per
// model tier, chain-of-thought and in-context-example quality effects,
// format violations that the validity filter must catch, reluctance to
// produce negative-class keywords (the default-class motivation), and
// per-token pricing for the cost analysis of Figures 3-4. See DESIGN.md
// §2 for the substitution argument and the calibration targets.
package llm

import (
	"fmt"

	"datasculpt/internal/textproc"
)

// Role of a chat message.
type Role string

// Chat roles, mirroring the OpenAI chat format.
const (
	System Role = "system"
	User   Role = "user"
)

// Message is one chat turn.
type Message struct {
	Role    Role
	Content string
}

// Usage records billed token counts of one call.
type Usage struct {
	PromptTokens     int
	CompletionTokens int
}

// Total returns prompt+completion tokens.
func (u Usage) Total() int { return u.PromptTokens + u.CompletionTokens }

// Add accumulates another usage record.
func (u *Usage) Add(o Usage) {
	u.PromptTokens += o.PromptTokens
	u.CompletionTokens += o.CompletionTokens
}

// Response is one sampled completion.
type Response struct {
	Content string
	Usage   Usage
}

// ChatModel is the provider abstraction: everything DataSculpt needs from
// an LLM endpoint. A production deployment would implement it with an
// HTTP client; this repo implements it with Simulated.
type ChatModel interface {
	// ModelName returns the provider model identifier.
	ModelName() string
	// Chat samples n completions for the conversation at the given
	// temperature and reports per-sample usage.
	Chat(messages []Message, temperature float64, n int) ([]Response, error)
	// Pricing returns the model's dollar cost per 1M prompt and
	// completion tokens.
	Pricing() (promptPer1M, completionPer1M float64)
}

// Meter accumulates usage and cost across calls to one model. It is not
// safe for concurrent use; each pipeline run owns its meter.
type Meter struct {
	model            string
	promptPer1M      float64
	completionPer1M  float64
	Calls            int
	PromptTokens     int
	CompletionTokens int
}

// NewMeter creates a meter priced for the given model.
func NewMeter(m ChatModel) *Meter {
	p, c := m.Pricing()
	return &Meter{model: m.ModelName(), promptPer1M: p, completionPer1M: c}
}

// Record accumulates the usage of one call's responses.
func (mt *Meter) Record(responses []Response) {
	mt.Calls++
	for _, r := range responses {
		mt.PromptTokens += r.Usage.PromptTokens
		mt.CompletionTokens += r.Usage.CompletionTokens
	}
}

// TotalTokens returns all billed tokens so far.
func (mt *Meter) TotalTokens() int { return mt.PromptTokens + mt.CompletionTokens }

// CostUSD returns the accumulated dollar cost.
func (mt *Meter) CostUSD() float64 {
	return float64(mt.PromptTokens)/1e6*mt.promptPer1M +
		float64(mt.CompletionTokens)/1e6*mt.completionPer1M
}

// Merge adds another meter's counts into this one (same model expected;
// costs are computed with this meter's prices).
func (mt *Meter) Merge(o *Meter) {
	mt.Calls += o.Calls
	mt.PromptTokens += o.PromptTokens
	mt.CompletionTokens += o.CompletionTokens
}

// String summarizes the meter.
func (mt *Meter) String() string {
	return fmt.Sprintf("%s: %d calls, %d prompt + %d completion tokens, $%.4f",
		mt.model, mt.Calls, mt.PromptTokens, mt.CompletionTokens, mt.CostUSD())
}

// CountMessageTokens estimates the billed prompt tokens of a message
// list, including a small per-message framing overhead as the OpenAI
// chat format incurs.
func CountMessageTokens(messages []Message) int {
	total := 0
	for _, m := range messages {
		total += textproc.ApproxLLMTokens(m.Content) + 4
	}
	return total
}
