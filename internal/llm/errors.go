package llm

import "errors"

// Typed error categories for ChatModel implementations. Callers branch
// with errors.Is rather than string matching; the concrete error keeps
// the provider detail (status code, body excerpt) in its message.
var (
	// ErrRateLimited marks a provider 429 (or local rate-limit abort):
	// the request was well-formed but the endpoint refused it for
	// throughput reasons. Retryable.
	ErrRateLimited = errors.New("llm: rate limited")
	// ErrBadResponse marks a malformed or rejected exchange — undecodable
	// body, an API error object, a non-retryable HTTP status, or a
	// response with no choices. Not retryable.
	ErrBadResponse = errors.New("llm: bad response")
	// ErrUnavailable marks a transient provider failure (5xx, transport
	// error). Retryable.
	ErrUnavailable = errors.New("llm: provider unavailable")
)
