package llm

import (
	"errors"
	"fmt"
	"time"
)

// Typed error categories for ChatModel implementations. Callers branch
// with errors.Is rather than string matching; the concrete error keeps
// the provider detail (status code, body excerpt) in its message.
var (
	// ErrRateLimited marks a provider 429 (or local rate-limit abort):
	// the request was well-formed but the endpoint refused it for
	// throughput reasons. Retryable.
	ErrRateLimited = errors.New("llm: rate limited")
	// ErrBadResponse marks a malformed or rejected exchange — undecodable
	// body, an API error object, a non-retryable HTTP status, or a
	// response with no choices. Not retryable.
	ErrBadResponse = errors.New("llm: bad response")
	// ErrUnavailable marks a transient provider failure (5xx, transport
	// error). Retryable.
	ErrUnavailable = errors.New("llm: provider unavailable")
)

// Retryable reports whether the error is a transient failure worth
// retrying: a rate limit or a provider outage. Malformed exchanges
// (ErrBadResponse) and context cancellations are not retryable — the
// same request would fail the same way, or the caller already moved on.
func Retryable(err error) bool {
	return errors.Is(err, ErrRateLimited) || errors.Is(err, ErrUnavailable)
}

// RetryAfterError decorates a retryable error with the wait the provider
// requested (a 429's Retry-After header). Backoff loops that find one in
// the chain should sleep exactly that long instead of their computed
// exponential delay — the provider told us when capacity returns.
type RetryAfterError struct {
	// After is the provider-requested wait before the next attempt.
	After time.Duration
	// Err is the underlying typed error (wraps ErrRateLimited or
	// ErrUnavailable).
	Err error
}

// Error implements error.
func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.After)
}

// Unwrap exposes the underlying typed error to errors.Is/As.
func (e *RetryAfterError) Unwrap() error { return e.Err }

// RetryAfter extracts a provider-requested wait from anywhere in the
// error chain. The second return is false when no hint is present.
func RetryAfter(err error) (time.Duration, bool) {
	var ra *RetryAfterError
	if errors.As(err, &ra) {
		return ra.After, true
	}
	return 0, false
}
