package llm

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Transcript wraps any ChatModel and appends every call as one JSON line
// to a writer: the prompt, every sampled completion, usage and latency.
// Transcripts make LLM-driven labeling runs auditable and replayable —
// with a real provider they are the record of what was actually asked
// and billed; with the simulator they document a run end to end.
type Transcript struct {
	// Inner is the wrapped model.
	Inner ChatModel
	// W receives one JSON object per Chat call.
	W io.Writer
	// Clock overrides time.Now for tests.
	Clock func() time.Time

	mu    sync.Mutex // serializes the call counter and writes to W
	calls int
}

// NewTranscript wraps a model.
func NewTranscript(inner ChatModel, w io.Writer) *Transcript {
	return &Transcript{Inner: inner, W: w}
}

// transcriptRecord is the JSONL row.
type transcriptRecord struct {
	Call        int       `json:"call"`
	Time        time.Time `json:"time"`
	Model       string    `json:"model"`
	Temperature float64   `json:"temperature"`
	N           int       `json:"n"`
	Messages    []Message `json:"messages"`
	Responses   []string  `json:"responses,omitempty"`
	Usage       Usage     `json:"usage"`
	LatencyMS   int64     `json:"latency_ms"`
	Error       string    `json:"error,omitempty"`
}

// ModelName implements ChatModel.
func (t *Transcript) ModelName() string { return t.Inner.ModelName() }

// Pricing implements ChatModel.
func (t *Transcript) Pricing() (float64, float64) { return t.Inner.Pricing() }

// Chat implements ChatModel, recording the call regardless of outcome.
// Records from concurrent pipelines are serialized, one complete JSON
// line each.
func (t *Transcript) Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error) {
	now := time.Now
	if t.Clock != nil {
		now = t.Clock
	}
	start := now()
	responses, err := t.Inner.Chat(ctx, messages, temperature, n)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.calls++
	rec := transcriptRecord{
		Call:        t.calls,
		Time:        start,
		Model:       t.Inner.ModelName(),
		Temperature: temperature,
		N:           n,
		Messages:    messages,
		LatencyMS:   now().Sub(start).Milliseconds(),
	}
	if err != nil {
		rec.Error = err.Error()
	}
	for _, r := range responses {
		rec.Responses = append(rec.Responses, r.Content)
		rec.Usage.Add(r.Usage)
	}
	if encErr := json.NewEncoder(t.W).Encode(rec); encErr != nil {
		// a broken transcript sink must not silently lose labeling work;
		// surface it alongside any inner error
		if err == nil {
			return responses, fmt.Errorf("llm: writing transcript: %w", encErr)
		}
	}
	return responses, err
}

// Calls returns how many Chat calls have been recorded.
func (t *Transcript) Calls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}
