package llm

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datasculpt/internal/obs"
)

// countingModel is a deterministic inner model that counts Chat calls.
type countingModel struct {
	calls atomic.Int64
	delay time.Duration
	fail  atomic.Bool
}

func (c *countingModel) ModelName() string           { return "counting" }
func (c *countingModel) Pricing() (float64, float64) { return 1, 2 }
func (c *countingModel) Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error) {
	c.calls.Add(1)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	if c.fail.Load() {
		return nil, errors.New("inner boom")
	}
	out := make([]Response, n)
	for i := range out {
		out[i] = Response{
			Content: fmt.Sprintf("echo %s #%d", messages[len(messages)-1].Content, i),
			Usage:   Usage{PromptTokens: 10, CompletionTokens: 5},
		}
	}
	return out, nil
}

func msg(s string) []Message { return []Message{{Role: User, Content: s}} }

func TestCacheHitsAndMisses(t *testing.T) {
	inner := &countingModel{}
	c := NewCache(inner)
	ctx := context.Background()

	r1, err := c.Chat(ctx, msg("a"), 0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Chat(ctx, msg("a"), 0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r1[0].Content != r2[0].Content || len(r1) != len(r2) {
		t.Errorf("cached responses differ: %v vs %v", r1, r2)
	}
	// distinct parameters are distinct keys
	if _, err := c.Chat(ctx, msg("a"), 0.7, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Chat(ctx, msg("a"), 0.5, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Chat(ctx, msg("b"), 0.7, 2); err != nil {
		t.Fatal(err)
	}
	if got := inner.calls.Load(); got != 4 {
		t.Errorf("inner calls = %d, want 4", got)
	}
	if c.Hits() != 1 || c.Misses() != 4 || c.Len() != 4 {
		t.Errorf("hits=%d misses=%d len=%d", c.Hits(), c.Misses(), c.Len())
	}
	if c.ModelName() != "counting" {
		t.Errorf("model name = %q", c.ModelName())
	}
	if p, cp := c.Pricing(); p != 1 || cp != 2 {
		t.Errorf("pricing = %v/%v", p, cp)
	}
}

func TestCacheKeyEscapesBoundaries(t *testing.T) {
	inner := &countingModel{}
	c := NewCache(inner)
	ctx := context.Background()
	// two message lists whose naive concatenation collides
	a := []Message{{Role: User, Content: "x|y"}}
	b := []Message{{Role: User, Content: "x"}, {Role: User, Content: "y"}}
	if _, err := c.Chat(ctx, a, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Chat(ctx, b, 0, 1); err != nil {
		t.Fatal(err)
	}
	if c.Misses() != 2 {
		t.Errorf("colliding keys: misses = %d, want 2", c.Misses())
	}
}

func TestCacheSingleFlight(t *testing.T) {
	inner := &countingModel{delay: 20 * time.Millisecond}
	c := NewCache(inner)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Chat(context.Background(), msg("same"), 0.7, 1)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("concurrent identical misses reached inner %d times, want 1", got)
	}
	if c.Hits() != goroutines-1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d, want %d/1", c.Hits(), c.Misses(), goroutines-1)
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	inner := &countingModel{}
	inner.fail.Store(true)
	c := NewCache(inner)
	if _, err := c.Chat(context.Background(), msg("x"), 0, 1); err == nil {
		t.Fatal("error swallowed")
	}
	inner.fail.Store(false)
	if _, err := c.Chat(context.Background(), msg("x"), 0, 1); err != nil {
		t.Fatalf("error cached: %v", err)
	}
	if inner.calls.Load() != 2 {
		t.Errorf("inner calls = %d, want 2 (failed flight retried)", inner.calls.Load())
	}
}

func TestRateLimiterPacesCalls(t *testing.T) {
	inner := &countingModel{}
	rl := NewRateLimiter(inner, 100, 1) // 10ms interval
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 4; i++ {
		if _, err := rl.Chat(ctx, msg("x"), 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	// first call free, three paced ~10ms apart
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("4 calls at 100 QPS took %v, want >= 25ms", elapsed)
	}
	if rl.ModelName() != "counting" {
		t.Errorf("model name = %q", rl.ModelName())
	}
}

func TestRateLimiterBurst(t *testing.T) {
	inner := &countingModel{}
	rl := NewRateLimiter(inner, 2, 8) // slow rate, generous burst
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 8; i++ {
		if _, err := rl.Chat(ctx, msg("x"), 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("burst of 8 took %v, should pass immediately", elapsed)
	}
}

func TestRateLimiterAbortsOnContextCancel(t *testing.T) {
	inner := &countingModel{}
	rl := NewRateLimiter(inner, 0.5, 1) // 2s interval
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := rl.Chat(ctx, msg("x"), 0, 1); err != nil {
		t.Fatal(err) // burst slot
	}
	_, err := rl.Chat(ctx, msg("y"), 0, 1)
	if err == nil {
		t.Fatal("wait survived context cancellation")
	}
	if !errors.Is(err, ErrRateLimited) {
		t.Errorf("error = %v, want ErrRateLimited", err)
	}
}

func TestMeteredRecordsConcurrently(t *testing.T) {
	inner := &countingModel{}
	m := NewMetered(inner)
	const goroutines, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := m.Chat(context.Background(), msg(fmt.Sprintf("%d-%d", g, i)), 0.7, 2); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	snap := m.Meter().Snapshot()
	if snap.Calls != goroutines*per {
		t.Errorf("meter calls = %d, want %d", snap.Calls, goroutines*per)
	}
	// every call bills 2 samples x (10 prompt + 5 completion)
	if snap.PromptTokens != goroutines*per*20 || snap.CompletionTokens != goroutines*per*10 {
		t.Errorf("meter tokens = %d/%d", snap.PromptTokens, snap.CompletionTokens)
	}
	wantCost := float64(snap.PromptTokens)/1e6*1 + float64(snap.CompletionTokens)/1e6*2
	if snap.CostUSD != wantCost {
		t.Errorf("cost = %v, want %v", snap.CostUSD, wantCost)
	}
}

func TestOpenAITypedErrors(t *testing.T) {
	status := atomic.Int32{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(int(status.Load()))
		if status.Load() == http.StatusOK {
			fmt.Fprint(w, `{}`) // decodes but has no choices
		}
	}))
	t.Cleanup(srv.Close)

	c := NewOpenAI(srv.URL, "", "m", WithMaxRetries(1), WithRetryDelay(time.Millisecond))

	status.Store(http.StatusTooManyRequests)
	if _, err := c.Chat(context.Background(), msg("Query: x"), 0, 1); !errors.Is(err, ErrRateLimited) {
		t.Errorf("429 error = %v, want ErrRateLimited", err)
	}
	status.Store(http.StatusServiceUnavailable)
	if _, err := c.Chat(context.Background(), msg("Query: x"), 0, 1); !errors.Is(err, ErrUnavailable) {
		t.Errorf("503 error = %v, want ErrUnavailable", err)
	}
	status.Store(http.StatusOK)
	if _, err := c.Chat(context.Background(), msg("Query: x"), 0, 1); !errors.Is(err, ErrBadResponse) {
		t.Errorf("empty-choices error = %v, want ErrBadResponse", err)
	}
}

func TestOpenAIBadResponseNotRetried(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		fmt.Fprint(w, `not json`)
	}))
	t.Cleanup(srv.Close)
	c := NewOpenAI(srv.URL, "", "m", WithMaxRetries(5), WithRetryDelay(time.Millisecond))
	if _, err := c.Chat(context.Background(), msg("Query: x"), 0, 1); !errors.Is(err, ErrBadResponse) {
		t.Fatalf("error = %v, want ErrBadResponse", err)
	}
	if calls.Load() != 1 {
		t.Errorf("malformed response retried %d times", calls.Load()-1)
	}
}

func TestOpenAIContextCancelsBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	c := NewOpenAI(srv.URL, "", "m", WithMaxRetries(3), WithRetryDelay(10*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Chat(ctx, msg("Query: x"), 0, 1)
	if err == nil {
		t.Fatal("canceled request succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("backoff ignored context: took %v", elapsed)
	}
}

func TestOpenAIOptions(t *testing.T) {
	h := &http.Client{Timeout: time.Second}
	c := NewOpenAI("http://x", "k", "m",
		WithPricing(1.5, 2.5),
		WithMaxRetries(7),
		WithRetryDelay(time.Millisecond),
		WithHTTPClient(h),
		WithRateLimit(10, 2),
	)
	if p, cp := c.Pricing(); p != 1.5 || cp != 2.5 {
		t.Errorf("pricing = %v/%v", p, cp)
	}
	if c.MaxRetries != 7 || c.RetryDelay != time.Millisecond || c.HTTPClient != h {
		t.Errorf("options not applied: %+v", c)
	}
	if c.gate == nil {
		t.Error("rate limit gate not installed")
	}
	// deprecated shim still constructs a working client
	old := NewOpenAIClient("http://x", "k", "m")
	if old.MaxRetries != 3 || old.HTTPClient == nil {
		t.Errorf("deprecated constructor defaults: %+v", old)
	}
}

func TestCacheStatsSnapshot(t *testing.T) {
	inner := &countingModel{}
	reg := obs.NewRegistry()
	c := NewCache(inner).Instrument(reg)
	ctx := context.Background()
	for _, prompt := range []string{"a", "a", "b", "a"} {
		if _, err := c.Chat(ctx, msg(prompt), 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 || s.Entries != 2 {
		t.Errorf("stats = %+v, want 2/2/2", s)
	}
	if s.Calls() != 4 || s.HitRate() != 0.5 {
		t.Errorf("calls=%d hitRate=%v", s.Calls(), s.HitRate())
	}
	// legacy accessors stay consistent with the snapshot
	if c.Hits() != s.Hits || c.Misses() != s.Misses || c.Len() != s.Entries {
		t.Error("Hits/Misses/Len diverge from Stats")
	}
	// registry mirrors
	if got := reg.CounterValue("llm_cache_hits_total"); got != 2 {
		t.Errorf("llm_cache_hits_total = %v, want 2", got)
	}
	if got := reg.CounterValue("llm_cache_misses_total"); got != 2 {
		t.Errorf("llm_cache_misses_total = %v, want 2", got)
	}
	var sum CacheStats
	sum.Add(s)
	sum.Add(CacheStats{Hits: 1, Misses: 3, Entries: 3})
	if sum.Hits != 3 || sum.Misses != 5 || sum.Entries != 5 {
		t.Errorf("CacheStats.Add = %+v", sum)
	}
}

func TestMeteredInstrumentMatchesMeter(t *testing.T) {
	inner := &countingModel{}
	reg := obs.NewRegistry()
	m := NewMetered(inner).Instrument(reg)
	const goroutines, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := m.Chat(context.Background(), msg(fmt.Sprintf("%d-%d", g, i)), 0.7, 2); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	snap := m.Stats()
	if snap.Calls != goroutines*per {
		t.Fatalf("calls = %d, want %d", snap.Calls, goroutines*per)
	}
	if got := reg.CounterValue("llm_calls_total"); got != float64(snap.Calls) {
		t.Errorf("llm_calls_total = %v, want %d", got, snap.Calls)
	}
	if got := reg.CounterValue("llm_tokens_total"); got != float64(snap.TotalTokens()) {
		t.Errorf("llm_tokens_total = %v, want %d", got, snap.TotalTokens())
	}
	if got := reg.CounterValue("llm_prompt_tokens_total"); got != float64(snap.PromptTokens) {
		t.Errorf("llm_prompt_tokens_total = %v, want %d", got, snap.PromptTokens)
	}
	// the cost counter is kept exactly equal to the meter, not a float
	// sum of per-call deltas
	if got := reg.CounterValue("llm_cost_usd_total"); got != snap.CostUSD {
		t.Errorf("llm_cost_usd_total = %v, want %v", got, snap.CostUSD)
	}
	// failed calls record nothing
	inner.fail.Store(true)
	if _, err := m.Chat(context.Background(), msg("boom"), 0, 1); err == nil {
		t.Fatal("expected inner failure")
	}
	if got := reg.CounterValue("llm_calls_total"); got != float64(snap.Calls) {
		t.Errorf("failed call was counted: %v", got)
	}
}

func TestRateLimiterPreCanceledContext(t *testing.T) {
	inner := &countingModel{}
	reg := obs.NewRegistry()
	rl := NewRateLimiter(inner, 1000000, 1000).Instrument(reg)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// even though a slot is free, a dead context must not pass through
	if _, err := rl.Chat(ctx, msg("x"), 0, 1); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("pre-canceled context: err = %v, want ErrRateLimited", err)
	}
	if got := inner.calls.Load(); got != 0 {
		t.Errorf("canceled call reached the inner model %d times", got)
	}
	if got := reg.CounterValue("llm_ratelimit_abandoned_total"); got != 1 {
		t.Errorf("llm_ratelimit_abandoned_total = %v, want 1", got)
	}
}

func TestRateLimiterRecordsAbandonedWaitTime(t *testing.T) {
	inner := &countingModel{}
	reg := obs.NewRegistry()
	rl := NewRateLimiter(inner, 0.5, 1).Instrument(reg) // 2s interval
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := rl.Chat(ctx, msg("x"), 0, 1); err != nil {
		t.Fatal(err) // burst slot
	}
	if _, err := rl.Chat(ctx, msg("y"), 0, 1); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if got := reg.CounterValue("llm_ratelimit_abandoned_total"); got != 1 {
		t.Errorf("llm_ratelimit_abandoned_total = %v, want 1", got)
	}
	hist := reg.Histogram("llm_ratelimit_wait_seconds", "", obs.DurationBuckets).Snapshot()
	if hist.Count != 1 {
		t.Errorf("abandoned wait not observed: count = %d, want 1", hist.Count)
	}
	if hist.Sum <= 0 || hist.Sum > 1 {
		t.Errorf("abandoned wait observed %vs, want ~0.02s", hist.Sum)
	}
}

func TestMiddlewareStackComposes(t *testing.T) {
	// client-shaped stack: Metered(Cache(RateLimiter(inner)))
	inner := &countingModel{}
	stack := NewMetered(NewCache(NewRateLimiter(inner, 1000, 4)))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := stack.Chat(ctx, msg("same prompt"), 0.7, 1); err != nil {
			t.Fatal(err)
		}
	}
	if inner.calls.Load() != 1 {
		t.Errorf("inner calls = %d, want 1 (cache above limiter)", inner.calls.Load())
	}
	// the meter sits above the cache, so hits are still accounted
	if got := stack.Meter().Calls(); got != 3 {
		t.Errorf("metered calls = %d, want 3", got)
	}
}
