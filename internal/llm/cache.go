package llm

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// Cache is a concurrency-safe memoizing ChatModel middleware. Calls are
// keyed on (model, messages, temperature, n); a key's first call reaches
// the inner model and every later call — from any goroutine — returns
// the stored responses without touching the provider.
//
// Identical concurrent misses are single-flighted: one goroutine
// computes, the rest block on it and share the result, so the provider
// is billed exactly once per distinct prompt. Errors are not cached —
// a failed flight is retried by the next caller.
//
// Sampling semantics: caching a temperature>0 call replays the stored
// samples instead of drawing fresh ones. That is exactly the cost/
// reproducibility trade PromptedLF-style exhaustive prompting needs,
// but it means cached self-consistency runs see one fixed sample set
// per prompt.
type Cache struct {
	inner ChatModel

	mu       sync.Mutex
	entries  map[string][]Response
	inflight map[string]*flight
	hits     int
	misses   int
}

// flight is one in-progress inner call other goroutines can wait on.
type flight struct {
	done      chan struct{}
	responses []Response
	err       error
}

// NewCache wraps a model with a fresh cache.
func NewCache(inner ChatModel) *Cache {
	return &Cache{
		inner:    inner,
		entries:  make(map[string][]Response),
		inflight: make(map[string]*flight),
	}
}

// ModelName implements ChatModel.
func (c *Cache) ModelName() string { return c.inner.ModelName() }

// Pricing implements ChatModel.
func (c *Cache) Pricing() (float64, float64) { return c.inner.Pricing() }

// cacheKey serializes the call parameters. Role/content boundaries are
// escaped by %q so distinct message lists cannot collide.
func (c *Cache) cacheKey(messages []Message, temperature float64, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%g|%d", c.inner.ModelName(), temperature, n)
	for _, m := range messages {
		fmt.Fprintf(&b, "|%q:%q", m.Role, m.Content)
	}
	return b.String()
}

// Chat implements ChatModel with memoization.
func (c *Cache) Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error) {
	key := c.cacheKey(messages, temperature, n)

	c.mu.Lock()
	if resp, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return cloneResponses(resp), nil
	}
	if fl, ok := c.inflight[key]; ok {
		// join the in-progress identical call
		c.hits++
		c.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if fl.err != nil {
			return nil, fl.err
		}
		return cloneResponses(fl.responses), nil
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()

	fl.responses, fl.err = c.inner.Chat(ctx, messages, temperature, n)
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.entries[key] = fl.responses
	}
	c.mu.Unlock()
	if fl.err != nil {
		return nil, fl.err
	}
	return cloneResponses(fl.responses), nil
}

// Hits returns how many calls were served from memory (including joins
// of an in-flight computation).
func (c *Cache) Hits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns how many calls reached the inner model.
func (c *Cache) Misses() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// cloneResponses copies the slice so callers cannot mutate the stored
// entry (Response values share no mutable internals).
func cloneResponses(rs []Response) []Response {
	out := make([]Response, len(rs))
	copy(out, rs)
	return out
}
