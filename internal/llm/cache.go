package llm

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"datasculpt/internal/obs"
)

// Cache is a concurrency-safe memoizing ChatModel middleware. Calls are
// keyed on (model, messages, temperature, n); a key's first call reaches
// the inner model and every later call — from any goroutine — returns
// the stored responses without touching the provider.
//
// Identical concurrent misses are single-flighted: one goroutine
// computes, the rest block on it and share the result, so the provider
// is billed exactly once per distinct prompt. Errors are not cached —
// a failed flight is retried by the next caller.
//
// Sampling semantics: caching a temperature>0 call replays the stored
// samples instead of drawing fresh ones. That is exactly the cost/
// reproducibility trade PromptedLF-style exhaustive prompting needs,
// but it means cached self-consistency runs see one fixed sample set
// per prompt.
type Cache struct {
	inner ChatModel

	mu       sync.Mutex
	entries  map[string][]Response
	inflight map[string]*flight
	hits     int
	misses   int

	// telemetry handles; nil (no-op) until Instrument
	hitCounter  *obs.Counter
	missCounter *obs.Counter
	entryGauge  *obs.Gauge
}

// flight is one in-progress inner call other goroutines can wait on.
type flight struct {
	done      chan struct{}
	responses []Response
	err       error
}

// NewCache wraps a model with a fresh cache.
func NewCache(inner ChatModel) *Cache {
	return &Cache{
		inner:    inner,
		entries:  make(map[string][]Response),
		inflight: make(map[string]*flight),
	}
}

// Instrument mirrors hit/miss accounting into the registry and returns
// the receiver for chaining: llm_cache_hits_total, llm_cache_misses_total
// and the llm_cache_entries gauge.
func (c *Cache) Instrument(reg *obs.Registry) *Cache {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hitCounter = reg.Counter("llm_cache_hits_total",
		"chat calls served from cache (including joined in-flight calls)")
	c.missCounter = reg.Counter("llm_cache_misses_total",
		"chat calls that reached the inner model")
	c.entryGauge = reg.Gauge("llm_cache_entries", "stored cache entries")
	return c
}

// ModelName implements ChatModel.
func (c *Cache) ModelName() string { return c.inner.ModelName() }

// Pricing implements ChatModel.
func (c *Cache) Pricing() (float64, float64) { return c.inner.Pricing() }

// cacheKey serializes the call parameters. Role/content boundaries are
// escaped by %q so distinct message lists cannot collide.
func (c *Cache) cacheKey(messages []Message, temperature float64, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%g|%d", c.inner.ModelName(), temperature, n)
	for _, m := range messages {
		fmt.Fprintf(&b, "|%q:%q", m.Role, m.Content)
	}
	return b.String()
}

// Chat implements ChatModel with memoization.
func (c *Cache) Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error) {
	key := c.cacheKey(messages, temperature, n)

	c.mu.Lock()
	if resp, ok := c.entries[key]; ok {
		c.hits++
		c.hitCounter.Inc()
		c.mu.Unlock()
		return cloneResponses(resp), nil
	}
	if fl, ok := c.inflight[key]; ok {
		// join the in-progress identical call
		c.hits++
		c.hitCounter.Inc()
		c.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if fl.err != nil {
			return nil, fl.err
		}
		return cloneResponses(fl.responses), nil
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.missCounter.Inc()
	c.mu.Unlock()

	fl.responses, fl.err = c.inner.Chat(ctx, messages, temperature, n)
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.entries[key] = fl.responses
		c.entryGauge.Set(float64(len(c.entries)))
	}
	c.mu.Unlock()
	if fl.err != nil {
		return nil, fl.err
	}
	return cloneResponses(fl.responses), nil
}

// CacheStats is a consistent point-in-time copy of a Cache's counters.
type CacheStats struct {
	// Hits counts calls served from memory (including joins of an
	// in-flight computation); Misses counts calls that reached the
	// inner model; Entries is the number of stored responses.
	Hits, Misses, Entries int
}

// Calls returns hits+misses.
func (s CacheStats) Calls() int { return s.Hits + s.Misses }

// HitRate returns hits/(hits+misses), or 0 before any call.
func (s CacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Add accumulates another stats snapshot (summaries across several
// caches, e.g. one per seed).
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Entries += o.Entries
}

// String renders the one-line summary the datasculpt CLI prints.
func (s CacheStats) String() string {
	return fmt.Sprintf("%d hits / %d misses (%.1f%% hit rate), %d entries",
		s.Hits, s.Misses, 100*s.HitRate(), s.Entries)
}

// Stats returns a consistent snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.entries)}
}

// Hits returns how many calls were served from memory (including joins
// of an in-flight computation).
func (c *Cache) Hits() int { return c.Stats().Hits }

// Misses returns how many calls reached the inner model.
func (c *Cache) Misses() int { return c.Stats().Misses }

// Len returns the number of stored entries.
func (c *Cache) Len() int { return c.Stats().Entries }

// cloneResponses copies the slice so callers cannot mutate the stored
// entry (Response values share no mutable internals).
func cloneResponses(rs []Response) []Response {
	out := make([]Response, len(rs))
	copy(out, rs)
	return out
}
