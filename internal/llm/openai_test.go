package llm

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeEndpoint serves an OpenAI-compatible chat-completions API for tests.
func fakeEndpoint(t *testing.T, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/chat/completions", handler)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func okResponse(contents []string, promptTokens, completionTokens int) map[string]any {
	choices := make([]map[string]any, len(contents))
	for i, c := range contents {
		choices[i] = map[string]any{"message": map[string]any{"role": "assistant", "content": c}}
	}
	return map[string]any{
		"choices": choices,
		"usage": map[string]any{
			"prompt_tokens":     promptTokens,
			"completion_tokens": completionTokens,
		},
	}
}

func TestOpenAIClientChat(t *testing.T) {
	var gotAuth, gotModel string
	var gotN int
	srv := fakeEndpoint(t, func(w http.ResponseWriter, r *http.Request) {
		gotAuth = r.Header.Get("Authorization")
		var req map[string]any
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("bad request body: %v", err)
		}
		gotModel = req["model"].(string)
		gotN = int(req["n"].(float64))
		json.NewEncoder(w).Encode(okResponse(
			[]string{"Keywords: free\nLabel: 1", "Keywords: cash\nLabel: 1"}, 120, 21))
	})
	c := NewOpenAIClient(srv.URL+"/v1", "sk-test", "gpt-3.5-turbo")
	c.PromptPrice, c.CompletionPrice = 1.5, 2.0
	resp, err := c.Chat(context.Background(), []Message{
		{Role: System, Content: "task"},
		{Role: User, Content: "Query: free cash"},
	}, 0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gotAuth != "Bearer sk-test" {
		t.Errorf("auth header = %q", gotAuth)
	}
	if gotModel != "gpt-3.5-turbo" || gotN != 2 {
		t.Errorf("request model/n = %q/%d", gotModel, gotN)
	}
	if len(resp) != 2 {
		t.Fatalf("responses = %d", len(resp))
	}
	if !strings.Contains(resp[0].Content, "free") {
		t.Errorf("content = %q", resp[0].Content)
	}
	// usage is attributed so the totals match the API's numbers
	total := Usage{}
	for _, r := range resp {
		total.Add(r.Usage)
	}
	if total.PromptTokens != 120 || total.CompletionTokens != 21 {
		t.Errorf("total usage = %+v", total)
	}
	// meter cost follows the configured prices
	m := NewMeter(c)
	m.Record(resp)
	want := 120.0/1e6*1.5 + 21.0/1e6*2.0
	if m.CostUSD() != want {
		t.Errorf("cost = %v, want %v", m.CostUSD(), want)
	}
}

func TestOpenAIClientRetriesOn429(t *testing.T) {
	var calls atomic.Int32
	srv := fakeEndpoint(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(okResponse([]string{"Keywords: x\nLabel: 0"}, 10, 5))
	})
	c := NewOpenAIClient(srv.URL+"/v1", "", "m")
	c.RetryDelay = time.Millisecond
	resp, err := c.Chat(context.Background(), []Message{{Role: User, Content: "Query: x"}}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 1 || calls.Load() != 3 {
		t.Errorf("responses=%d calls=%d", len(resp), calls.Load())
	}
}

func TestOpenAIClientSurfacesAPIErrors(t *testing.T) {
	srv := fakeEndpoint(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusUnauthorized)
		json.NewEncoder(w).Encode(map[string]any{
			"error": map[string]any{"message": "bad key", "type": "invalid_request_error"},
		})
	})
	c := NewOpenAIClient(srv.URL+"/v1", "wrong", "m")
	c.RetryDelay = time.Millisecond
	if _, err := c.Chat(context.Background(), []Message{{Role: User, Content: "Query: x"}}, 0, 1); err == nil {
		t.Fatal("401 with API error accepted")
	} else if !strings.Contains(err.Error(), "bad key") {
		t.Errorf("error does not surface API message: %v", err)
	}
}

func TestOpenAIClientGivesUpAfterRetries(t *testing.T) {
	var calls atomic.Int32
	srv := fakeEndpoint(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	})
	c := NewOpenAIClient(srv.URL+"/v1", "", "m")
	c.MaxRetries = 2
	c.RetryDelay = time.Millisecond
	if _, err := c.Chat(context.Background(), []Message{{Role: User, Content: "Query: x"}}, 0, 1); err == nil {
		t.Fatal("persistent 500s accepted")
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3 (1 + 2 retries)", calls.Load())
	}
}

func TestOpenAIClientRejectsEmptyChoices(t *testing.T) {
	srv := fakeEndpoint(t, func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"choices": []any{}})
	})
	c := NewOpenAIClient(srv.URL+"/v1", "", "m")
	c.RetryDelay = time.Millisecond
	if _, err := c.Chat(context.Background(), []Message{{Role: User, Content: "Query: x"}}, 0, 1); err == nil {
		t.Fatal("empty choices accepted")
	}
	if _, err := c.Chat(context.Background(), []Message{{Role: User, Content: "x"}}, 0, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}
