package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"

	"datasculpt/internal/dataset"
	"datasculpt/internal/textproc"
)

// Simulated is a deterministic stand-in for a chat-LLM endpoint. It
// receives real rendered prompts (system instructions, in-context
// examples, a final "Query:" block), parses them the way the downstream
// response parser expects, and produces completions in the
// Explanation/Keywords/Label format of Figure 2.
//
// Its "world knowledge" — which surface phrases signal which class — is
// the dataset generator's signal table, perturbed per the model tier's
// Profile. A real GPT-3.5 knows "subscribe" signals comment spam; the
// simulator knows the same fact explicitly, forgets it with probability
// 1-KeywordRecall, sometimes mislabels the instance, sometimes pads in a
// non-indicative word, and (for small Llama tiers) sometimes ignores the
// query entirely.
type Simulated struct {
	profile      Profile
	know         *dataset.SignalTable
	numClasses   int
	defaultClass int

	// mu serializes rng draws so one simulator can be shared by
	// concurrent pipelines (behind a Cache, the response stream stays
	// reproducible because each distinct prompt is sampled once).
	mu  sync.Mutex
	rng *rand.Rand
}

// NewSimulated builds the simulator for one dataset. Model accepts
// canonical profile names or the paper's aliases ("gpt-3.5", "gpt-4",
// "llama2-70b", ...). The seed makes every conversation reproducible.
func NewSimulated(model string, d *dataset.Dataset, seed int64) (*Simulated, error) {
	p, err := ProfileByName(model)
	if err != nil {
		return nil, err
	}
	if d.Signal == nil {
		return nil, fmt.Errorf("llm: dataset %s has no signal table", d.Name)
	}
	return &Simulated{
		profile:      p,
		know:         d.Signal,
		numClasses:   d.NumClasses(),
		defaultClass: d.DefaultClass,
		rng:          rand.New(rand.NewSource(seed)),
	}, nil
}

// ModelName implements ChatModel.
func (s *Simulated) ModelName() string { return s.profile.Name }

// Pricing implements ChatModel.
func (s *Simulated) Pricing() (float64, float64) {
	return s.profile.PromptPricePer1M, s.profile.CompletionPricePer1M
}

// Chat implements ChatModel. The ctx is checked once up front: the
// simulator never blocks, so finer-grained cancellation has nothing to
// interrupt.
func (s *Simulated) Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if n <= 0 {
		return nil, fmt.Errorf("llm: n=%d samples requested", n)
	}
	if temperature < 0 || temperature > 2 {
		return nil, fmt.Errorf("llm: temperature %v outside [0,2]", temperature)
	}
	parsed, err := parsePrompt(messages)
	if err != nil {
		return nil, err
	}
	promptTokens := CountMessageTokens(messages)
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Response, n)
	for i := range out {
		content := s.generate(parsed, temperature)
		out[i] = Response{
			Content: content,
			Usage: Usage{
				PromptTokens:     promptTokens,
				CompletionTokens: textproc.ApproxLLMTokens(content) + 2,
			},
		}
	}
	return out, nil
}

// parsedPrompt is the simulator's view of a rendered prompt.
type parsedPrompt struct {
	queryTokens   []string
	exampleTokens [][]string
	cot           bool
}

// parsePrompt extracts the final query, the in-context example queries and
// the chain-of-thought flag. The last "Query:" block of the last user
// message is the instance to address; earlier ones are demonstrations.
func parsePrompt(messages []Message) (*parsedPrompt, error) {
	if len(messages) == 0 {
		return nil, fmt.Errorf("llm: empty prompt")
	}
	p := &parsedPrompt{}
	var queries []string
	for _, m := range messages {
		switch m.Role {
		case System:
			if strings.Contains(strings.ToLower(m.Content), "step by step") {
				p.cot = true
			}
		case User:
			for _, line := range strings.Split(m.Content, "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "Query:"); ok {
					queries = append(queries, strings.TrimSpace(rest))
				}
			}
		default:
			return nil, fmt.Errorf("llm: unsupported role %q", m.Role)
		}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("llm: prompt has no Query block")
	}
	p.queryTokens = textproc.Tokenize(queries[len(queries)-1])
	for _, q := range queries[:len(queries)-1] {
		p.exampleTokens = append(p.exampleTokens, textproc.Tokenize(q))
	}
	if len(p.queryTokens) == 0 {
		return nil, fmt.Errorf("llm: empty query text")
	}
	return p, nil
}

// relevance measures how well the in-context examples match the query:
// the mean Jaccard overlap of content-token sets. KATE-selected examples
// overlap more, which mechanically improves the simulated label accuracy
// via Profile.RelevanceBoost.
func relevance(p *parsedPrompt) float64 {
	if len(p.exampleTokens) == 0 {
		return 0
	}
	qset := make(map[string]struct{})
	for _, t := range textproc.ContentTokens(p.queryTokens) {
		qset[t] = struct{}{}
	}
	if len(qset) == 0 {
		return 0
	}
	var sum float64
	for _, ex := range p.exampleTokens {
		eset := make(map[string]struct{})
		for _, t := range textproc.ContentTokens(ex) {
			eset[t] = struct{}{}
		}
		inter := 0
		for t := range eset {
			if _, ok := qset[t]; ok {
				inter++
			}
		}
		union := len(qset) + len(eset) - inter
		if union > 0 {
			sum += float64(inter) / float64(union)
		}
	}
	return sum / float64(len(p.exampleTokens))
}

// generate produces one completion.
func (s *Simulated) generate(p *parsedPrompt, temperature float64) string {
	if s.rng.Float64() < s.profile.OffTask {
		return s.offTask()
	}

	// Spot indicative phrases present in the query. Salience grows with
	// the phrase's signal strength; temperature adds sample-to-sample
	// variation (what self-consistency averages over).
	spotted := make([]dataset.KeywordSignal, 0, 4)
	seen := make(map[string]struct{})
	for _, gram := range textproc.AllNGrams(p.queryTokens, textproc.MaxKeywordLen) {
		sig, ok := s.know.Lookup(gram)
		if !ok {
			continue
		}
		if _, dup := seen[gram]; dup {
			continue
		}
		salience := s.profile.KeywordRecall *
			(s.profile.SalienceFloor + s.profile.SalienceSlope*sig.Strength)
		if salience > 1 {
			salience = 1
		}
		if salience < 0 {
			salience = 0
		}
		// Higher temperature flattens salience toward a coin flip.
		salience = salience*(1-0.3*temperature) + 0.5*0.3*temperature
		if s.rng.Float64() < salience {
			seen[gram] = struct{}{}
			spotted = append(spotted, sig)
		}
	}

	effAcc := s.profile.LabelAccuracy
	if p.cot {
		effAcc += s.profile.CoTBoost
	}
	effAcc += s.profile.RelevanceBoost * relevance(p) * 10 // overlap is small; rescale
	if effAcc > 0.99 {
		effAcc = 0.99
	}

	var label int
	if len(spotted) > 0 {
		weights := make([]float64, s.numClasses)
		for _, sig := range spotted {
			weights[sig.Class] += sig.Strength
		}
		best := 0
		for c := 1; c < s.numClasses; c++ {
			if weights[c] > weights[best] {
				best = c
			}
		}
		label = best
		if s.rng.Float64() >= effAcc {
			label = s.otherClass(label)
		}
	} else {
		// no surface evidence: the model still answers, at chance
		label = s.rng.Intn(s.numClasses)
	}

	// Keywords supporting the chosen label.
	var keywords []string
	for _, sig := range spotted {
		if sig.Class == label {
			keywords = append(keywords, sig.Phrase)
		}
	}
	if s.rng.Float64() < s.profile.NoiseKeywordRate {
		if w := s.randomContentWord(p.queryTokens); w != "" {
			keywords = append(keywords, w)
		}
	}
	if len(keywords) == 0 {
		if w := s.randomContentWord(p.queryTokens); w != "" && s.rng.Float64() < 0.6 {
			keywords = append(keywords, w)
		}
	}

	// Ungrounded generic keywords: a plausible weak class word from world
	// knowledge that does not appear in the query. The choice is hashed
	// from the query so every self-consistency sample proposes the same
	// one (a model's bias is stable across samples of one prompt).
	if s.rng.Float64() < s.profile.GenericKeywordRate {
		if g := s.genericKeyword(label, p.queryTokens); g != "" {
			dup := false
			for _, k := range keywords {
				if k == g {
					dup = true
					break
				}
			}
			if !dup {
				keywords = append(keywords, g)
			}
		}
	}

	// Near-duplicate variants: LLMs often restate a phrase in trimmed
	// form ("love this song" and "this song" in the same keyword list).
	// The trimmed variant activates on almost exactly the parent's
	// instances, which is the redundancy the paper's third filter exists
	// to prune (Table 5 ablates it).
	for _, kw := range keywords {
		if s.rng.Float64() >= 0.30 {
			continue
		}
		if cut := strings.IndexByte(kw, ' '); cut > 0 {
			variant := kw[cut+1:]
			if !allStopwords(variant) {
				keywords = append(keywords, variant)
			}
		}
	}

	// Reluctance to give keywords for "absence" classes (paper §3.6).
	if s.defaultClass >= 0 && label == s.defaultClass &&
		s.rng.Float64() < s.profile.NegClassReluctance {
		keywords = nil
	}

	var b strings.Builder
	if p.cot {
		b.WriteString("Explanation: ")
		if len(keywords) > 0 {
			fmt.Fprintf(&b, "the input mentions %s, which in this task indicates class %d. "+
				"Considering the overall content of the input, these terms are the most "+
				"indicative signals for the prediction.\n", strings.Join(keywords, ", "), label)
		} else {
			fmt.Fprintf(&b, "the input does not contain any strong indicative phrase for a "+
				"specific class, so the prediction falls back to the most plausible class "+
				"given its overall content.\n")
		}
	}
	b.WriteString("Keywords: ")
	if len(keywords) == 0 {
		b.WriteString("none")
	} else {
		b.WriteString(strings.Join(keywords, ", "))
	}
	fmt.Fprintf(&b, "\nLabel: %d", label)
	return b.String()
}

func (s *Simulated) otherClass(c int) int {
	o := s.rng.Intn(s.numClasses - 1)
	if o >= c {
		o++
	}
	return o
}

func (s *Simulated) randomContentWord(tokens []string) string {
	// A real LLM padding its keyword list picks salient, distinctive
	// words, not function-like filler: prefer the query's rarer content
	// words (approximated by length — the generators' topical vocabulary
	// is longer than their generic filler) over a uniform draw. Words
	// that are themselves class signals are excluded; this models the
	// *non-indicative* extra keyword the filters must judge.
	content := textproc.ContentTokens(tokens)
	var cand, salient []string
	for _, t := range content {
		if _, ok := s.know.Lookup(t); ok {
			continue
		}
		cand = append(cand, t)
		if len(t) >= 7 {
			salient = append(salient, t)
		}
	}
	if len(salient) > 0 && s.rng.Float64() < 0.7 {
		return salient[s.rng.Intn(len(salient))]
	}
	if len(cand) == 0 {
		return ""
	}
	return cand[s.rng.Intn(len(cand))]
}

// offTask emulates the small-model failure the paper reports: fabricating
// a new example instead of addressing the query, or replying with prose
// that the response parser cannot use.
func (s *Simulated) offTask() string {
	if s.rng.Float64() < 0.5 {
		// fabricated example: well-formed lines, but the keyword has
		// nothing to do with the actual query (random class signal with a
		// random label)
		c := s.rng.Intn(s.numClasses)
		sigs := s.know.Class(c)
		sig := sigs[s.rng.Intn(len(sigs))]
		return fmt.Sprintf("Query: here is another example input for this task\nKeywords: %s\nLabel: %d",
			sig.Phrase, s.rng.Intn(s.numClasses))
	}
	return "I'm sorry, as an AI language model I cannot determine the answer " +
		"without additional context. Could you please clarify the task?"
}

// allStopwords reports whether every token of the canonical phrase is a
// stop word (such variants would cover virtually everything and carry the
// class prior as accuracy — not something an LLM would present as a
// keyword).
func allStopwords(phrase string) bool {
	toks := textproc.Tokenize(phrase)
	if len(toks) == 0 {
		return true
	}
	for _, t := range toks {
		if !textproc.IsStopword(t) {
			return false
		}
	}
	return true
}

// genericKeyword picks a weak (low-strength) class keyword from world
// knowledge, deterministically per query via an FNV hash so repeated
// samples of the same prompt agree on it.
func (s *Simulated) genericKeyword(class int, queryTokens []string) string {
	var weak []string
	for _, sig := range s.know.Class(class) {
		if sig.Strength <= 0.75 {
			weak = append(weak, sig.Phrase)
		}
	}
	if len(weak) == 0 {
		return ""
	}
	h := fnv.New32a()
	for _, t := range queryTokens {
		h.Write([]byte(t))
		h.Write([]byte{' '})
	}
	return weak[h.Sum32()%uint32(len(weak))]
}
