package llm

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"datasculpt/internal/obs"
)

// flakyModel fails its first failUntil calls with err, then echoes.
type flakyModel struct {
	calls     atomic.Int64
	failUntil int64
	err       error
}

func (f *flakyModel) ModelName() string           { return "flaky" }
func (f *flakyModel) Pricing() (float64, float64) { return 1, 1 }
func (f *flakyModel) Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error) {
	if f.calls.Add(1) <= f.failUntil {
		return nil, f.err
	}
	out := make([]Response, n)
	for i := range out {
		out[i] = Response{Content: "ok", Usage: Usage{PromptTokens: 1, CompletionTokens: 1}}
	}
	return out, nil
}

// noSleep records requested delays instead of waiting.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return nil
	}
}

func TestRetryRecoversTransient(t *testing.T) {
	for _, kind := range []error{ErrRateLimited, ErrUnavailable} {
		inner := &flakyModel{failUntil: 2, err: fmt.Errorf("%w: transient", kind)}
		reg := obs.NewRegistry()
		var delays []time.Duration
		r := NewRetry(inner, WithRetryAttempts(4), WithRetryJitter(0),
			WithRetryBackoff(time.Millisecond, 10*time.Millisecond)).Instrument(reg)
		r.sleep = noSleep(&delays)
		resp, err := r.Chat(context.Background(), msg("x"), 0, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if resp[0].Content != "ok" || inner.calls.Load() != 3 {
			t.Errorf("%v: calls = %d, want 3", kind, inner.calls.Load())
		}
		if got := reg.CounterValue("llm_retries_total"); got != 2 {
			t.Errorf("llm_retries_total = %v, want 2", got)
		}
		// exponential doubling with jitter off
		if len(delays) != 2 || delays[0] != time.Millisecond || delays[1] != 2*time.Millisecond {
			t.Errorf("delays = %v, want [1ms 2ms]", delays)
		}
	}
}

func TestRetryFailsFastOnBadResponse(t *testing.T) {
	inner := &flakyModel{failUntil: 100, err: fmt.Errorf("%w: no choices", ErrBadResponse)}
	r := NewRetry(inner, WithRetryAttempts(5))
	if _, err := r.Chat(context.Background(), msg("x"), 0, 1); !errors.Is(err, ErrBadResponse) {
		t.Fatalf("err = %v, want ErrBadResponse", err)
	}
	if inner.calls.Load() != 1 {
		t.Errorf("bad response retried: %d calls", inner.calls.Load())
	}
}

func TestRetryExhausted(t *testing.T) {
	inner := &flakyModel{failUntil: 100, err: fmt.Errorf("%w: storm", ErrRateLimited)}
	reg := obs.NewRegistry()
	var delays []time.Duration
	r := NewRetry(inner, WithRetryAttempts(3), WithRetryJitter(0),
		WithRetryBackoff(time.Millisecond, 2*time.Millisecond)).Instrument(reg)
	r.sleep = noSleep(&delays)
	_, err := r.Chat(context.Background(), msg("x"), 0, 1)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if inner.calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", inner.calls.Load())
	}
	if got := reg.CounterValue("llm_retries_exhausted_total"); got != 1 {
		t.Errorf("llm_retries_exhausted_total = %v, want 1", got)
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	hinted := &RetryAfterError{
		After: 123 * time.Millisecond,
		Err:   fmt.Errorf("%w: hinted", ErrRateLimited),
	}
	inner := &flakyModel{failUntil: 1, err: hinted}
	var delays []time.Duration
	r := NewRetry(inner, WithRetryAttempts(3), WithRetryJitter(0.5),
		WithRetryBackoff(time.Millisecond, time.Second))
	r.sleep = noSleep(&delays)
	if _, err := r.Chat(context.Background(), msg("x"), 0, 1); err != nil {
		t.Fatal(err)
	}
	// hinted delays are exact: no jitter, no doubling
	if len(delays) != 1 || delays[0] != 123*time.Millisecond {
		t.Errorf("delays = %v, want [123ms]", delays)
	}

	// hints past the cap are clamped
	hinted.After = time.Hour
	inner = &flakyModel{failUntil: 1, err: hinted}
	delays = nil
	r = NewRetry(inner, WithRetryAttempts(3), WithRetryJitter(0),
		WithRetryBackoff(time.Millisecond, 250*time.Millisecond))
	r.sleep = noSleep(&delays)
	if _, err := r.Chat(context.Background(), msg("x"), 0, 1); err != nil {
		t.Fatal(err)
	}
	if len(delays) != 1 || delays[0] != 250*time.Millisecond {
		t.Errorf("delays = %v, want [250ms] (capped)", delays)
	}
}

func TestRetryAbortsOnContextCancel(t *testing.T) {
	inner := &flakyModel{failUntil: 100, err: fmt.Errorf("%w: storm", ErrUnavailable)}
	r := NewRetry(inner, WithRetryAttempts(10),
		WithRetryBackoff(10*time.Second, time.Minute))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := r.Chat(ctx, msg("x"), 0, 1)
	if err == nil {
		t.Fatal("canceled retry succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("backoff ignored context: %v", elapsed)
	}
}

func TestBackoffPolicy(t *testing.T) {
	pol := backoffPolicy{base: 100 * time.Millisecond, max: time.Second, jitter: 0}
	wants := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second, // capped from here on
	}
	for retry, want := range wants {
		if got := pol.delay(retry, 0, 0); got != want {
			t.Errorf("delay(%d) = %v, want %v", retry, got, want)
		}
	}
	// jitter shaves at most the jitter fraction off
	pol.jitter = 0.5
	for _, u := range []float64{0, 0.5, 0.999} {
		d := pol.delay(0, 0, u)
		if d > 100*time.Millisecond || d < 50*time.Millisecond {
			t.Errorf("jittered delay %v outside [50ms, 100ms]", d)
		}
	}
	// huge retry counts must not overflow into a negative delay
	if d := pol.delay(200, 0, 0); d != pol.max {
		t.Errorf("delay(200) = %v, want cap %v", d, pol.max)
	}
}

func TestRetryAfterErrorChain(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", &RetryAfterError{
		After: 2 * time.Second,
		Err:   fmt.Errorf("%w: 429", ErrRateLimited),
	})
	if !Retryable(err) {
		t.Error("RetryAfterError not retryable")
	}
	if d, ok := RetryAfter(err); !ok || d != 2*time.Second {
		t.Errorf("RetryAfter = %v/%v, want 2s/true", d, ok)
	}
	if d, ok := RetryAfter(ErrRateLimited); ok || d != 0 {
		t.Error("bare error produced a hint")
	}
	if Retryable(ErrBadResponse) || Retryable(context.Canceled) {
		t.Error("non-transient error classified retryable")
	}
}

func TestFaultInjectorDeterministic(t *testing.T) {
	run := func() (map[FaultKind]int, []string) {
		inner := &countingModel{}
		fi := NewFaultInjector(inner, FaultRates{
			RateLimit: 0.2, Timeout: 0.2, Truncate: 0.2, Garbage: 0.2,
		}, 99)
		var outcomes []string
		for i := 0; i < 60; i++ {
			resp, err := fi.Chat(context.Background(), msg(fmt.Sprintf("p%d", i)), 0, 1)
			if err != nil {
				outcomes = append(outcomes, "err:"+err.Error())
				continue
			}
			outcomes = append(outcomes, resp[0].Content)
		}
		return fi.Counts(), outcomes
	}
	counts1, out1 := run()
	counts2, out2 := run()
	for _, kind := range []FaultKind{FaultRateLimit, FaultTimeout, FaultTruncate, FaultGarbage} {
		if counts1[kind] == 0 {
			t.Errorf("fault %s never injected in 60 calls at rate 0.2", kind)
		}
		if counts1[kind] != counts2[kind] {
			t.Errorf("fault %s count differs across identical seeds: %d vs %d",
				kind, counts1[kind], counts2[kind])
		}
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("outcome %d differs across identical seeds: %q vs %q", i, out1[i], out2[i])
		}
	}
}

func TestFaultInjectorKinds(t *testing.T) {
	inner := &countingModel{}
	// rate-limit-only injector: first draw always faults
	fi := NewFaultInjector(inner, FaultRates{RateLimit: 1}, 1)
	_, err := fi.Chat(context.Background(), msg("x"), 0, 1)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if d, ok := RetryAfter(err); !ok || d <= 0 {
		t.Errorf("injected rate limit carries no Retry-After hint: %v/%v", d, ok)
	}
	if inner.calls.Load() != 0 {
		t.Error("rate-limit fault consumed an inner call")
	}

	fi = NewFaultInjector(inner, FaultRates{Timeout: 1}, 1)
	if _, err := fi.Chat(context.Background(), msg("x"), 0, 1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}

	fi = NewFaultInjector(inner, FaultRates{Truncate: 1}, 1)
	resp, err := fi.Chat(context.Background(), msg("hello"), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	whole, _ := inner.Chat(context.Background(), msg("hello"), 0, 1)
	if len(resp[0].Content) >= len(whole[0].Content) {
		t.Errorf("truncated content not shorter: %q", resp[0].Content)
	}

	reg := obs.NewRegistry()
	fi = NewFaultInjector(inner, FaultRates{Garbage: 1}, 1).Instrument(reg)
	resp, err = fi.Chat(context.Background(), msg("hello"), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0].Content == whole[0].Content {
		t.Error("garbage fault left the completion intact")
	}
	if got := reg.CounterValue("faults_injected_total"); got != 1 {
		t.Errorf("faults_injected_total = %v, want 1", got)
	}
}

func TestFaultInjectorRatesValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("rates summing past 1 accepted")
		}
	}()
	NewFaultInjector(&countingModel{}, FaultRates{RateLimit: 0.6, Garbage: 0.6}, 1)
}

func TestRetryAbsorbsInjectedFaults(t *testing.T) {
	// A Retry-over-FaultInjector stack must hide every transient fault
	// from the caller, and the successful responses must match a
	// fault-free run (transient faults never consume the inner model).
	inner := &countingModel{}
	reg := obs.NewRegistry()
	fi := NewFaultInjector(inner, FaultRates{RateLimit: 0.25, Timeout: 0.25}, 7).Instrument(reg)
	var delays []time.Duration
	r := NewRetry(fi, WithRetryAttempts(20), WithRetryJitter(0),
		WithRetryBackoff(time.Microsecond, time.Millisecond)).Instrument(reg)
	r.sleep = noSleep(&delays)
	for i := 0; i < 40; i++ {
		prompt := fmt.Sprintf("p%d", i)
		resp, err := r.Chat(context.Background(), msg(prompt), 0, 1)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if want := fmt.Sprintf("echo %s #0", prompt); resp[0].Content != want {
			t.Fatalf("call %d content = %q, want %q", i, resp[0].Content, want)
		}
	}
	if inner.calls.Load() != 40 {
		t.Errorf("inner calls = %d, want 40 (faults must not consume the model)", inner.calls.Load())
	}
	if got := reg.CounterValue("faults_injected_total"); got == 0 {
		t.Error("no faults injected at 50% combined rate")
	}
	if got := reg.CounterValue("llm_retries_total"); got == 0 {
		t.Error("no retries recorded despite injected faults")
	}
}

func TestOpenAIExplicitZeroRetries(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	t.Cleanup(srv.Close)

	c := NewOpenAI(srv.URL, "", "m", WithMaxRetries(0))
	if _, err := c.Chat(context.Background(), msg("Query: x"), 0, 1); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if calls.Load() != 1 {
		t.Errorf("WithMaxRetries(0) performed %d attempts, want exactly 1", calls.Load())
	}

	// negative values clamp to a single attempt too
	calls.Store(0)
	c = NewOpenAI(srv.URL, "", "m", WithMaxRetries(-3))
	c.Chat(context.Background(), msg("Query: x"), 0, 1)
	if calls.Load() != 1 {
		t.Errorf("WithMaxRetries(-3) performed %d attempts, want 1", calls.Load())
	}

	// a zero-valued struct literal still gets the default of 3 retries
	calls.Store(0)
	c = &OpenAIClient{BaseURL: srv.URL, Model: "m", RetryDelay: time.Millisecond}
	c.Chat(context.Background(), msg("Query: x"), 0, 1)
	if calls.Load() != 4 {
		t.Errorf("zero-value client performed %d attempts, want 4", calls.Load())
	}
}

func TestOpenAIHonorsRetryAfterHeader(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, `{"choices":[{"message":{"role":"assistant","content":"hi"}}],
			"usage":{"prompt_tokens":3,"completion_tokens":1}}`)
	}))
	t.Cleanup(srv.Close)

	c := NewOpenAI(srv.URL, "", "m", WithMaxRetries(2))
	var delays []time.Duration
	c.sleep = noSleep(&delays)
	resp, err := c.Chat(context.Background(), msg("Query: x"), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0].Content != "hi" {
		t.Errorf("content = %q", resp[0].Content)
	}
	if len(delays) != 1 || delays[0] != 7*time.Second {
		t.Errorf("delays = %v, want [7s] from the Retry-After header", delays)
	}
}

func TestOpenAIBackoffCappedAndJittered(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)

	c := NewOpenAI(srv.URL, "", "m",
		WithMaxRetries(6),
		WithRetryDelay(time.Second),
		WithMaxRetryDelay(2*time.Second))
	var delays []time.Duration
	c.sleep = noSleep(&delays)
	if _, err := c.Chat(context.Background(), msg("Query: x"), 0, 1); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if len(delays) != 6 {
		t.Fatalf("delays = %d, want 6", len(delays))
	}
	for i, d := range delays {
		if d > 2*time.Second {
			t.Errorf("delay %d = %v exceeds the 2s cap", i, d)
		}
		if d <= 0 {
			t.Errorf("delay %d = %v, want > 0", i, d)
		}
	}
	// by the third retry the uncapped delay would be 4s; the cap (minus
	// jitter) must hold it at or under 2s while staying above the
	// jitter floor
	if min := time.Duration(float64(2*time.Second) * (1 - defaultRetryJitter)); delays[5] < min {
		t.Errorf("capped delay %v fell below the jitter floor %v", delays[5], min)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d, ok := parseRetryAfter("3"); !ok || d != 3*time.Second {
		t.Errorf("parseRetryAfter(3) = %v/%v", d, ok)
	}
	if d, ok := parseRetryAfter(time.Now().Add(time.Hour).UTC().Format(http.TimeFormat)); !ok || d <= 55*time.Minute {
		t.Errorf("HTTP-date Retry-After = %v/%v", d, ok)
	}
	if d, ok := parseRetryAfter(time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)); !ok || d != 0 {
		t.Errorf("past HTTP-date Retry-After = %v/%v, want 0/true", d, ok)
	}
	for _, v := range []string{"", "soon", "-5"} {
		if _, ok := parseRetryAfter(v); ok {
			t.Errorf("parseRetryAfter(%q) succeeded", v)
		}
	}
}
