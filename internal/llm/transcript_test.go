package llm

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTranscriptRecordsCalls(t *testing.T) {
	d := youtubeDS(t)
	inner, err := NewSimulated("gpt-3.5", d, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := NewTranscript(inner, &buf)
	fixed := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	tr.Clock = func() time.Time { return fixed }

	if _, err := tr.Chat(context.Background(), basePrompt("subscribe please"), 0.7, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Chat(context.Background(), basePrompt("lovely melody"), 0.7, 1); err != nil {
		t.Fatal(err)
	}
	if tr.Calls() != 2 {
		t.Errorf("calls = %d", tr.Calls())
	}
	if tr.ModelName() != inner.ModelName() {
		t.Error("model name not forwarded")
	}

	scanner := bufio.NewScanner(&buf)
	var rows []transcriptRecord
	for scanner.Scan() {
		var rec transcriptRecord
		if err := json.Unmarshal(scanner.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL row: %v", err)
		}
		rows = append(rows, rec)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Call != 1 || rows[1].Call != 2 {
		t.Errorf("call numbering: %d, %d", rows[0].Call, rows[1].Call)
	}
	if rows[0].N != 3 || len(rows[0].Responses) != 3 {
		t.Errorf("row 0 responses = %d for n=%d", len(rows[0].Responses), rows[0].N)
	}
	if rows[0].Usage.Total() <= 0 {
		t.Error("usage not aggregated")
	}
	if !rows[0].Time.Equal(fixed) {
		t.Errorf("time = %v", rows[0].Time)
	}
	if !strings.Contains(rows[1].Messages[1].Content, "lovely melody") {
		t.Error("prompt not recorded")
	}
}

// failingModel always errors, to test error recording.
type failingModel struct{}

func (failingModel) ModelName() string           { return "failing" }
func (failingModel) Pricing() (float64, float64) { return 0, 0 }
func (failingModel) Chat(context.Context, []Message, float64, int) ([]Response, error) {
	return nil, errors.New("boom")
}

func TestTranscriptRecordsErrors(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTranscript(failingModel{}, &buf)
	if _, err := tr.Chat(context.Background(), []Message{{Role: User, Content: "Query: x"}}, 0, 1); err == nil {
		t.Fatal("inner error swallowed")
	}
	var rec transcriptRecord
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Error != "boom" {
		t.Errorf("recorded error = %q", rec.Error)
	}
}

// brokenWriter fails every write.
type brokenWriter struct{}

func (brokenWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestTranscriptSurfacesSinkErrors(t *testing.T) {
	d := youtubeDS(t)
	inner, _ := NewSimulated("gpt-3.5", d, 9)
	tr := NewTranscript(inner, brokenWriter{})
	if _, err := tr.Chat(context.Background(), basePrompt("x y z"), 0.7, 1); err == nil ||
		!strings.Contains(err.Error(), "transcript") {
		t.Errorf("sink error not surfaced: %v", err)
	}
}
