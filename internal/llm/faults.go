package llm

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"datasculpt/internal/obs"
)

// FaultKind names one injectable failure mode.
type FaultKind string

// The four injectable faults, mirroring what a real provider does to a
// long sweep: throttling, transport timeouts, truncated completions and
// off-format garbage.
const (
	// FaultRateLimit returns a RetryAfterError wrapping ErrRateLimited
	// without touching the inner model (retryable; the retried call sees
	// the same inner response stream a fault-free run would).
	FaultRateLimit FaultKind = "rate_limit"
	// FaultTimeout returns an error wrapping ErrUnavailable without
	// touching the inner model (retryable).
	FaultTimeout FaultKind = "timeout"
	// FaultTruncate performs the inner call, then cuts every completion
	// roughly in half — the "connection dropped mid-stream" shape the
	// response parser must reject.
	FaultTruncate FaultKind = "truncate"
	// FaultGarbage performs the inner call, then replaces every
	// completion with off-format refusal prose (billed like the
	// original; only the text is lost).
	FaultGarbage FaultKind = "garbage"
)

// FaultRates sets the per-call probability of each fault kind. The sum
// must stay ≤ 1; the remainder is the probability of an untouched call.
type FaultRates struct {
	RateLimit float64
	Timeout   float64
	Truncate  float64
	Garbage   float64
}

// Total returns the combined injection probability.
func (fr FaultRates) Total() float64 {
	return fr.RateLimit + fr.Timeout + fr.Truncate + fr.Garbage
}

// FaultInjector is a chaos-testing ChatModel middleware: it injects
// deterministic, seed-driven faults in front of any inner model
// (typically the Simulated endpoint). Fault draws are serialized, so a
// single sequential pipeline run sees one reproducible fault sequence
// per seed regardless of what other cells do — which is what lets the
// chaos test demand byte-identical grids.
//
// Stack order: NewRetry(NewFaultInjector(inner, rates, seed)) — the
// retry middleware above absorbs the transient kinds, while truncated
// and garbage completions flow through to the parser's validity
// rejection, exercising the whole degradation path.
type FaultInjector struct {
	inner ChatModel
	rates FaultRates

	mu     sync.Mutex
	rng    *rand.Rand
	counts map[FaultKind]int

	// telemetry handle; nil (no-op) until Instrument
	injected *obs.Counter
}

// NewFaultInjector wraps a model with seed-driven fault injection.
// Panics if the rates sum past 1 — a misconfigured chaos run should
// fail loudly, not silently skew.
func NewFaultInjector(inner ChatModel, rates FaultRates, seed int64) *FaultInjector {
	if rates.Total() > 1 {
		panic(fmt.Sprintf("llm: fault rates sum to %v > 1", rates.Total()))
	}
	return &FaultInjector{
		inner:  inner,
		rates:  rates,
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[FaultKind]int),
	}
}

// Instrument mirrors injections into the registry and returns the
// receiver for chaining: faults_injected_total counts every injected
// fault of any kind.
func (f *FaultInjector) Instrument(reg *obs.Registry) *FaultInjector {
	f.injected = reg.Counter("faults_injected_total",
		"chaos faults injected into chat calls")
	return f
}

// ModelName implements ChatModel.
func (f *FaultInjector) ModelName() string { return f.inner.ModelName() }

// Pricing implements ChatModel.
func (f *FaultInjector) Pricing() (float64, float64) { return f.inner.Pricing() }

// Counts returns a copy of the per-kind injection tally.
func (f *FaultInjector) Counts() map[FaultKind]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[FaultKind]int, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// draw picks the fault for one call (empty = none) under the lock.
func (f *FaultInjector) draw() FaultKind {
	f.mu.Lock()
	defer f.mu.Unlock()
	u := f.rng.Float64()
	var kind FaultKind
	switch {
	case u < f.rates.RateLimit:
		kind = FaultRateLimit
	case u < f.rates.RateLimit+f.rates.Timeout:
		kind = FaultTimeout
	case u < f.rates.RateLimit+f.rates.Timeout+f.rates.Truncate:
		kind = FaultTruncate
	case u < f.rates.Total():
		kind = FaultGarbage
	default:
		return ""
	}
	f.counts[kind]++
	return kind
}

// Chat implements ChatModel with fault injection.
func (f *FaultInjector) Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error) {
	switch kind := f.draw(); kind {
	case FaultRateLimit:
		f.injected.Inc()
		return nil, &RetryAfterError{
			After: time.Millisecond,
			Err:   fmt.Errorf("%w: injected fault", ErrRateLimited),
		}
	case FaultTimeout:
		f.injected.Inc()
		return nil, fmt.Errorf("%w: injected timeout", ErrUnavailable)
	case FaultTruncate, FaultGarbage:
		f.injected.Inc()
		responses, err := f.inner.Chat(ctx, messages, temperature, n)
		if err != nil {
			return nil, err
		}
		for i := range responses {
			if kind == FaultTruncate {
				responses[i].Content = responses[i].Content[:len(responses[i].Content)/2]
			} else {
				responses[i].Content = "I'm sorry, I seem to have lost my train of thought. " +
					"Could you repeat the question?"
			}
		}
		return responses, nil
	default:
		return f.inner.Chat(ctx, messages, temperature, n)
	}
}
