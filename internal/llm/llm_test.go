package llm

import (
	"context"
	"sort"
	"strings"
	"testing"

	"datasculpt/internal/dataset"
)

func youtubeDS(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.Load("youtube", 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func basePrompt(query string) []Message {
	return []Message{
		{Role: System, Content: "You are a helpful assistant who helps users in a spam detection task. " +
			"After the user provides input, identify a list of keywords that helps making prediction. " +
			"Finally, provide the class label for the input."},
		{Role: User, Content: "Query: love this song so much\nKeywords: love this song\nLabel: 0\n\n" +
			"Query: subscribe to my channel\nKeywords: subscribe\nLabel: 1\n\n" +
			"Query: " + query},
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"gpt-3.5", "gpt-4", "llama2-7b", "llama2-13b", "llama2-70b",
		"gpt-3.5-turbo-0613", "llama2-70b-chat"} {
		if _, err := ProfileByName(name); err != nil {
			t.Errorf("ProfileByName(%s): %v", name, err)
		}
	}
	if _, err := ProfileByName("gpt-99"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestProfileOrdering(t *testing.T) {
	// The calibration must preserve the paper's quality ordering.
	g4, _ := ProfileByName("gpt-4")
	g35, _ := ProfileByName("gpt-3.5")
	l70, _ := ProfileByName("llama2-70b")
	l13, _ := ProfileByName("llama2-13b")
	l7, _ := ProfileByName("llama2-7b")
	if !(g4.LabelAccuracy > g35.LabelAccuracy && g35.LabelAccuracy >= l70.LabelAccuracy) {
		t.Error("label accuracy ordering violated for top tiers")
	}
	if !(l70.LabelAccuracy > l13.LabelAccuracy && l70.LabelAccuracy > l7.LabelAccuracy) {
		t.Error("llama-70b should beat small llamas")
	}
	if !(l7.OffTask > g35.OffTask && l13.OffTask > g35.OffTask) {
		t.Error("small llamas should go off-task more")
	}
	if !(g4.PromptPricePer1M > g35.PromptPricePer1M) {
		t.Error("gpt-4 should cost more than gpt-3.5")
	}
}

func TestSimulatedChatBasic(t *testing.T) {
	d := youtubeDS(t)
	m, err := NewSimulated("gpt-3.5", d, 42)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := m.Chat(context.Background(), basePrompt("please subscribe to my channel for daily videos"), 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 1 {
		t.Fatalf("%d responses for n=1", len(resp))
	}
	if resp[0].Usage.PromptTokens <= 0 || resp[0].Usage.CompletionTokens <= 0 {
		t.Errorf("usage = %+v", resp[0].Usage)
	}
	if !strings.Contains(resp[0].Content, "Keywords:") || !strings.Contains(resp[0].Content, "Label:") {
		t.Errorf("malformed response: %q", resp[0].Content)
	}
}

func TestSimulatedSpotsSignals(t *testing.T) {
	d := youtubeDS(t)
	m, err := NewSimulated("gpt-4", d, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Run many samples on a spam-signal query; GPT-4 should usually
	// return "subscribe" with label 1.
	hits, labels1 := 0, 0
	n := 100
	resp, err := m.Chat(context.Background(), basePrompt("hey guys subscribe to my channel for free gift cards"), 0.7, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resp {
		if strings.Contains(r.Content, "subscribe") {
			hits++
		}
		if strings.Contains(r.Content, "Label: 1") {
			labels1++
		}
	}
	if hits < n/2 {
		t.Errorf("gpt-4 spotted 'subscribe' only %d/%d times", hits, n)
	}
	if labels1 < n*3/4 {
		t.Errorf("gpt-4 labeled spam only %d/%d times", labels1, n)
	}
}

func TestSimulatedCoTAddsExplanation(t *testing.T) {
	d := youtubeDS(t)
	m, err := NewSimulated("gpt-3.5", d, 3)
	if err != nil {
		t.Fatal(err)
	}
	msgs := basePrompt("subscribe now friends")
	msgs[0].Content = "You are a helpful assistant. After the user provides input, " +
		"first explain your reason process step by step. Then identify a list of keywords."
	resp, err := m.Chat(context.Background(), msgs, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resp {
		if strings.Contains(r.Content, "Keywords:") && !strings.Contains(r.Content, "Explanation:") {
			t.Errorf("CoT prompt produced no explanation: %q", r.Content)
		}
	}
}

func TestSimulatedDeterministic(t *testing.T) {
	d := youtubeDS(t)
	m1, _ := NewSimulated("gpt-3.5", d, 99)
	m2, _ := NewSimulated("gpt-3.5", d, 99)
	msgs := basePrompt("check out this amazing video")
	r1, err := m1.Chat(context.Background(), msgs, 0.7, 10)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.Chat(context.Background(), msgs, 0.7, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].Content != r2[i].Content {
			t.Fatalf("sample %d differs across equal seeds", i)
		}
	}
}

func TestSimulatedSmallModelOffTask(t *testing.T) {
	d := youtubeDS(t)
	m, err := NewSimulated("llama2-7b", d, 5)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := m.Chat(context.Background(), basePrompt("subscribe please"), 0.7, 300)
	if err != nil {
		t.Fatal(err)
	}
	offTask := 0
	for _, r := range resp {
		if strings.Contains(r.Content, "another example input") ||
			strings.Contains(r.Content, "as an AI language model") {
			offTask++
		}
	}
	// profile OffTask = 0.14; expect a clearly nonzero fraction
	if offTask < 10 || offTask > 150 {
		t.Errorf("llama2-7b off-task %d/300, want roughly 14%%", offTask)
	}
}

func TestSimulatedRejectsBadInput(t *testing.T) {
	d := youtubeDS(t)
	m, _ := NewSimulated("gpt-3.5", d, 1)
	if _, err := m.Chat(context.Background(), nil, 0.7, 1); err == nil {
		t.Error("empty prompt accepted")
	}
	if _, err := m.Chat(context.Background(), basePrompt("x"), 0.7, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := m.Chat(context.Background(), basePrompt("x"), -1, 1); err == nil {
		t.Error("negative temperature accepted")
	}
	noQuery := []Message{{Role: User, Content: "no query line here"}}
	if _, err := m.Chat(context.Background(), noQuery, 0.7, 1); err == nil {
		t.Error("prompt without Query accepted")
	}
}

func TestMeter(t *testing.T) {
	d := youtubeDS(t)
	m, _ := NewSimulated("gpt-3.5", d, 1)
	meter := NewMeter(m)
	resp, err := m.Chat(context.Background(), basePrompt("subscribe now"), 0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	meter.Record(resp)
	if meter.Calls() != 1 {
		t.Errorf("calls = %d", meter.Calls())
	}
	if meter.TotalTokens() <= 0 {
		t.Error("no tokens recorded")
	}
	cost := meter.CostUSD()
	wantCost := float64(meter.PromptTokens())/1e6*1.5 + float64(meter.CompletionTokens())/1e6*2.0
	if cost != wantCost {
		t.Errorf("cost = %v, want %v", cost, wantCost)
	}
	other := NewMeter(m)
	other.Record(resp)
	meter.Merge(other)
	if meter.Calls() != 2 {
		t.Errorf("merged calls = %d", meter.Calls())
	}
	if !strings.Contains(meter.String(), "gpt-3.5-turbo-0613") {
		t.Errorf("meter string = %q", meter.String())
	}
}

func TestCountMessageTokens(t *testing.T) {
	msgs := []Message{
		{Role: System, Content: "four words in here"},
		{Role: User, Content: "and five more words here"},
	}
	got := CountMessageTokens(msgs)
	if got < 9 || got > 25 {
		t.Errorf("token count = %d, want ~9-25", got)
	}
}

func TestNegClassReluctance(t *testing.T) {
	d, err := dataset.Load("spouse", 2, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSimulated("gpt-3.5", d, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Query with a clear negative-class phrase; with the default class set
	// most class-0 responses should decline to give keywords.
	msgs := []Message{
		{Role: System, Content: "You are a helpful assistant in a relation classification task."},
		{Role: User, Content: "Query: john smith worked with mary jones at the company office"},
	}
	resp, err := m.Chat(context.Background(), msgs, 0.7, 200)
	if err != nil {
		t.Fatal(err)
	}
	label0, noKeywords := 0, 0
	for _, r := range resp {
		if strings.Contains(r.Content, "Label: 0") {
			label0++
			if strings.Contains(r.Content, "Keywords: none") {
				noKeywords++
			}
		}
	}
	if label0 == 0 {
		t.Fatal("model never predicted the negative class")
	}
	if float64(noKeywords)/float64(label0) < 0.4 {
		t.Errorf("negative-class keyword reluctance %d/%d, want majority", noKeywords, label0)
	}
}

func TestGenericKeywordDeterministicPerQuery(t *testing.T) {
	d := youtubeDS(t)
	m, err := NewSimulated("llama2-7b", d, 17)
	if err != nil {
		t.Fatal(err)
	}
	// llama2-7b pads generic keywords often; across many samples of the
	// same prompt the padded keyword must always be the same phrase
	// (query-hashed), or self-consistency would discard it.
	resp, err := m.Chat(context.Background(), basePrompt("subscribe for more daily uploads people"), 0.7, 200)
	if err != nil {
		t.Fatal(err)
	}
	generic := map[string]int{}
	for _, r := range resp {
		p := r.Content
		// collect keywords not present in the query
		for _, line := range strings.Split(p, "\n") {
			if !strings.HasPrefix(line, "Keywords:") {
				continue
			}
			for _, kw := range strings.Split(strings.TrimPrefix(line, "Keywords:"), ",") {
				kw = strings.TrimSpace(kw)
				if kw == "" || kw == "none" {
					continue
				}
				if !strings.Contains("subscribe for more daily uploads people", kw) {
					generic[kw]++
				}
			}
		}
	}
	if len(generic) == 0 {
		t.Fatal("llama2-7b never padded an ungrounded keyword in 200 samples")
	}
	// The generic pick is hashed per (query,label): one stable phrase per
	// label class must dominate the ungrounded mass (one-off entries come
	// from off-task fabrications and trimmed variants).
	var counts []int
	total := 0
	for _, c := range generic {
		counts = append(counts, c)
		total += c
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top2 := counts[0]
	if len(counts) > 1 {
		top2 += counts[1]
	}
	if float64(top2)/float64(total) < 0.5 {
		t.Errorf("ungrounded keywords too diverse for self-consistency: %v", generic)
	}
}

func TestTrimmedVariantKeywords(t *testing.T) {
	d := youtubeDS(t)
	m, err := NewSimulated("gpt-3.5", d, 23)
	if err != nil {
		t.Fatal(err)
	}
	// "gift card" is a spam signal; across many samples some responses
	// should also contain the trimmed variant "card".
	resp, err := m.Chat(context.Background(), basePrompt("win a gift card today friends"), 0.7, 300)
	if err != nil {
		t.Fatal(err)
	}
	full, trimmed := 0, 0
	for _, r := range resp {
		if strings.Contains(r.Content, "gift card") {
			full++
			if strings.Contains(r.Content, "card,") || strings.HasSuffix(r.Content, "card") ||
				strings.Contains(r.Content, ", card") {
				trimmed++
			}
		}
	}
	if full == 0 {
		t.Fatal("signal phrase never spotted")
	}
	if trimmed == 0 {
		t.Error("trimmed variant never emitted in 300 samples")
	}
}
