package llm

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"datasculpt/internal/obs"
)

// backoffPolicy computes the wait before each retry: capped exponential
// growth with downward jitter, overridden by a provider Retry-After hint
// when one is available. It is shared by the Retry middleware and the
// OpenAI client's built-in retry loop so the two never drift apart.
type backoffPolicy struct {
	base   time.Duration // delay before the first retry
	max    time.Duration // hard cap on any computed or hinted delay
	jitter float64       // fraction of the delay randomized away, in [0,1)
}

// delay returns the wait before retry number `retry` (0-based). hint is
// the provider's Retry-After request (0 when absent) and u a uniform
// draw in [0,1) supplying the jitter. Hinted delays are honored exactly
// (capped at max, no jitter — the provider named a time, not a range).
func (b backoffPolicy) delay(retry int, hint time.Duration, u float64) time.Duration {
	if hint > 0 {
		if hint > b.max {
			return b.max
		}
		return hint
	}
	d := b.base
	for i := 0; i < retry && d < b.max; i++ {
		d *= 2
	}
	if d > b.max || d <= 0 {
		d = b.max
	}
	if b.jitter > 0 {
		d -= time.Duration(b.jitter * u * float64(d))
	}
	return d
}

// jitterMu guards the shared jitter source; backoff draws are rare
// (once per retry) so contention is irrelevant.
var (
	jitterMu  sync.Mutex
	jitterRng = rand.New(rand.NewSource(time.Now().UnixNano()))
)

func jitterDraw() float64 {
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRng.Float64()
}

// Retry default tuning.
const (
	defaultRetryAttempts = 4
	defaultRetryBase     = 500 * time.Millisecond
	defaultRetryMax      = 30 * time.Second
	defaultRetryJitter   = 0.2
)

// Retry is a provider-agnostic ChatModel middleware that re-issues
// transient failures — errors wrapping ErrRateLimited or ErrUnavailable
// — with capped exponential backoff plus jitter, honoring RetryAfterError
// hints exactly. Non-retryable failures (ErrBadResponse, context
// cancellation) are returned immediately.
//
// Compose it directly above the endpoint and below the Cache
// (Cache -> Retry -> client) so cache misses are retried but hits never
// pay for it; when a FaultInjector is in the stack, Retry sits above it
// so injected faults exercise this exact loop.
type Retry struct {
	inner    ChatModel
	attempts int
	backoff  backoffPolicy

	// sleep and rnd are swappable for tests.
	sleep func(ctx context.Context, d time.Duration) error
	rnd   func() float64

	// telemetry handles; nil (no-op) until Instrument
	retries   *obs.Counter
	exhausted *obs.Counter
}

// RetryOption configures a Retry middleware at construction.
type RetryOption func(*Retry)

// WithRetryAttempts sets the total attempt budget (first try included;
// values below 1 mean a single attempt, i.e. no retries).
func WithRetryAttempts(n int) RetryOption {
	return func(r *Retry) {
		if n < 1 {
			n = 1
		}
		r.attempts = n
	}
}

// WithRetryBackoff sets the base delay before the first retry and the
// cap every later delay (computed or hinted) is clamped to.
func WithRetryBackoff(base, max time.Duration) RetryOption {
	return func(r *Retry) {
		if base > 0 {
			r.backoff.base = base
		}
		if max > 0 {
			r.backoff.max = max
		}
	}
}

// WithRetryJitter sets the fraction of each delay randomized away
// (clamped to [0, 1)); 0 disables jitter for deterministic tests.
func WithRetryJitter(frac float64) RetryOption {
	return func(r *Retry) {
		if frac < 0 {
			frac = 0
		}
		if frac >= 1 {
			frac = 0.99
		}
		r.backoff.jitter = frac
	}
}

// NewRetry wraps a model with the retry middleware (defaults: 4 total
// attempts, 500ms base delay doubled per retry, 30s cap, 20% jitter).
func NewRetry(inner ChatModel, opts ...RetryOption) *Retry {
	r := &Retry{
		inner:    inner,
		attempts: defaultRetryAttempts,
		backoff: backoffPolicy{
			base:   defaultRetryBase,
			max:    defaultRetryMax,
			jitter: defaultRetryJitter,
		},
		sleep: sleepCtx,
		rnd:   jitterDraw,
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Instrument mirrors retry accounting into the registry and returns the
// receiver for chaining: llm_retries_total counts re-issued attempts
// and llm_retries_exhausted_total calls that failed every attempt.
func (r *Retry) Instrument(reg *obs.Registry) *Retry {
	r.retries = reg.Counter("llm_retries_total",
		"chat attempts re-issued after a transient failure")
	r.exhausted = reg.Counter("llm_retries_exhausted_total",
		"chat calls that failed every retry attempt")
	return r
}

// ModelName implements ChatModel.
func (r *Retry) ModelName() string { return r.inner.ModelName() }

// Pricing implements ChatModel.
func (r *Retry) Pricing() (float64, float64) { return r.inner.Pricing() }

// Chat implements ChatModel with transparent retries.
func (r *Retry) Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var lastErr error
	var hint time.Duration
	for attempt := 0; attempt < r.attempts; attempt++ {
		if attempt > 0 {
			r.retries.Inc()
			if err := r.sleep(ctx, r.backoff.delay(attempt-1, hint, r.rnd())); err != nil {
				return nil, fmt.Errorf("llm: retry backoff aborted: %w", err)
			}
		}
		responses, err := r.inner.Chat(ctx, messages, temperature, n)
		if err == nil {
			return responses, nil
		}
		lastErr = err
		if !Retryable(err) || ctx.Err() != nil {
			return nil, err
		}
		hint, _ = RetryAfter(err)
	}
	r.exhausted.Inc()
	return nil, fmt.Errorf("llm: giving up after %d attempts: %w", r.attempts, lastErr)
}
