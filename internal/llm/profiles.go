package llm

import (
	"fmt"
	"sort"
)

// Profile calibrates one simulated model tier. The knobs map one-to-one
// onto failure modes the paper observes (Table 3 and §4.3):
//
//   - GPT-4 spots the most indicative keywords and mislabels least;
//   - GPT-3.5 and Llama2-70b are close behind;
//   - the small Llama2 models misformat responses, drift off-task
//     ("sometimes generate artificial examples instead of addressing the
//     query") and mislabel more;
//   - every model is reluctant to emit keywords for "absence" classes
//     (the default-class motivation of §3.6), with weaker models more so.
type Profile struct {
	// Name is the provider model identifier.
	Name string
	// KeywordRecall is the probability of spotting each indicative
	// keyword present in the query.
	KeywordRecall float64
	// SalienceFloor and SalienceSlope shape how spotting probability
	// depends on a phrase's signal strength: salience = KeywordRecall ×
	// (SalienceFloor + SalienceSlope × strength). Strong models are
	// selective (low floor, steep slope — they surface the most precise
	// phrases), small models spot indiscriminately (high floor, flat
	// slope), which is the second mechanism behind Table 3's tier
	// separation in post-filter LF accuracy.
	SalienceFloor, SalienceSlope float64
	// LabelAccuracy is the base probability of reasoning to the correct
	// label given spotted evidence.
	LabelAccuracy float64
	// NoiseKeywordRate is the probability of also emitting a
	// non-indicative word from the query as a keyword.
	NoiseKeywordRate float64
	// GenericKeywordRate is the probability of padding the keyword list
	// with a plausible-but-weak class word from world knowledge that is
	// not grounded in the query — the dominant failure of the small Llama
	// tiers. Such keywords are real class signals with mediocre precision
	// (0.6-0.75), so they pass the accuracy filter yet drag the mean LF
	// accuracy down, which is how Table 3's tier separation arises.
	GenericKeywordRate float64
	// OffTask is the probability of an off-task or malformed response
	// that fails the validity filter (fabricated examples, missing
	// Keywords/Label lines).
	OffTask float64
	// NegClassReluctance is the probability of returning no keywords when
	// the believed class is an "absence" class (class 0 of a default-class
	// task).
	NegClassReluctance float64
	// CoTBoost is added to LabelAccuracy when the prompt requests
	// step-by-step reasoning.
	CoTBoost float64
	// RelevanceBoost scales with the lexical overlap between in-context
	// examples and the query (how KATE retrieval helps mechanically).
	RelevanceBoost float64
	// PromptPricePer1M / CompletionPricePer1M are the published API
	// prices in USD per million tokens.
	PromptPricePer1M     float64
	CompletionPricePer1M float64
}

// Published prices: the paper's footnote for gpt-3.5-turbo-0613, OpenAI's
// 2023 price sheet for gpt-4-0613, Anyscale Endpoints for Llama2-CHAT.
var profiles = map[string]Profile{
	"gpt-3.5-turbo-0613": {
		Name:                 "gpt-3.5-turbo-0613",
		SalienceFloor:        0.5,
		SalienceSlope:        0.62,
		GenericKeywordRate:   0.12,
		KeywordRecall:        0.78,
		LabelAccuracy:        0.87,
		NoiseKeywordRate:     0.12,
		OffTask:              0.02,
		NegClassReluctance:   0.75,
		CoTBoost:             0.03,
		RelevanceBoost:       0.04,
		PromptPricePer1M:     1.50,
		CompletionPricePer1M: 2.00,
	},
	"gpt-4-0613": {
		Name:                 "gpt-4-0613",
		SalienceFloor:        -0.3,
		SalienceSlope:        1.35,
		GenericKeywordRate:   0.03,
		KeywordRecall:        0.90,
		LabelAccuracy:        0.95,
		NoiseKeywordRate:     0.06,
		OffTask:              0.005,
		NegClassReluctance:   0.85,
		CoTBoost:             0.02,
		RelevanceBoost:       0.02,
		PromptPricePer1M:     30.0,
		CompletionPricePer1M: 60.0,
	},
	"llama2-7b-chat": {
		Name:                 "llama2-7b-chat",
		SalienceFloor:        0.92,
		SalienceSlope:        0.12,
		GenericKeywordRate:   0.75,
		KeywordRecall:        0.70,
		LabelAccuracy:        0.74,
		NoiseKeywordRate:     0.30,
		OffTask:              0.14,
		NegClassReluctance:   0.80,
		CoTBoost:             0.03,
		RelevanceBoost:       0.05,
		PromptPricePer1M:     0.15,
		CompletionPricePer1M: 0.15,
	},
	"llama2-13b-chat": {
		Name:                 "llama2-13b-chat",
		SalienceFloor:        0.85,
		SalienceSlope:        0.22,
		GenericKeywordRate:   0.60,
		KeywordRecall:        0.68,
		LabelAccuracy:        0.76,
		NoiseKeywordRate:     0.26,
		OffTask:              0.10,
		NegClassReluctance:   0.78,
		CoTBoost:             0.03,
		RelevanceBoost:       0.05,
		PromptPricePer1M:     0.25,
		CompletionPricePer1M: 0.25,
	},
	"llama2-70b-chat": {
		Name:                 "llama2-70b-chat",
		SalienceFloor:        0.6,
		SalienceSlope:        0.5,
		GenericKeywordRate:   0.2,
		KeywordRecall:        0.76,
		LabelAccuracy:        0.85,
		NoiseKeywordRate:     0.15,
		OffTask:              0.04,
		NegClassReluctance:   0.88,
		CoTBoost:             0.03,
		RelevanceBoost:       0.04,
		PromptPricePer1M:     1.00,
		CompletionPricePer1M: 1.00,
	},
}

// Aliases map the paper's shorthand model names onto profiles.
var aliases = map[string]string{
	"gpt-3.5":    "gpt-3.5-turbo-0613",
	"gpt-4":      "gpt-4-0613",
	"llama2-7b":  "llama2-7b-chat",
	"llama2-13b": "llama2-13b-chat",
	"llama2-70b": "llama2-70b-chat",
	"llama-7b":   "llama2-7b-chat",
	"llama-13b":  "llama2-13b-chat",
	"llama-70b":  "llama2-70b-chat",
}

// ProfileByName resolves a model name or alias.
func ProfileByName(name string) (Profile, error) {
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("llm: unknown model %q (have %v)", name, ProfileNames())
	}
	return p, nil
}

// ProfileNames lists canonical model names, sorted.
func ProfileNames() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
