package llm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// OpenAIClient implements ChatModel against any OpenAI-compatible
// chat-completions endpoint (api.openai.com, Anyscale Endpoints, vLLM,
// llama.cpp server, ...). The reproduction runs fully offline on the
// Simulated model; this client exists so the identical pipeline can be
// pointed at a real provider — swap the constructor and nothing else
// changes.
type OpenAIClient struct {
	// BaseURL is the API root, e.g. "https://api.openai.com/v1".
	BaseURL string
	// APIKey is sent as a bearer token when non-empty.
	APIKey string
	// Model is the provider model identifier.
	Model string
	// PromptPrice/CompletionPrice are USD per 1M tokens, used for the
	// Meter's cost accounting (the API does not return prices).
	PromptPrice, CompletionPrice float64
	// HTTPClient overrides the default client (30s timeout).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts on 429/5xx responses (default 3).
	MaxRetries int
	// RetryDelay is the base backoff delay (default 500ms, doubled per
	// attempt).
	RetryDelay time.Duration
}

// NewOpenAIClient constructs a client with defaults.
func NewOpenAIClient(baseURL, apiKey, model string) *OpenAIClient {
	return &OpenAIClient{
		BaseURL:    baseURL,
		APIKey:     apiKey,
		Model:      model,
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
		MaxRetries: 3,
		RetryDelay: 500 * time.Millisecond,
	}
}

// ModelName implements ChatModel.
func (c *OpenAIClient) ModelName() string { return c.Model }

// Pricing implements ChatModel.
func (c *OpenAIClient) Pricing() (float64, float64) {
	return c.PromptPrice, c.CompletionPrice
}

// chatRequest mirrors the chat-completions request body.
type chatRequest struct {
	Model       string        `json:"model"`
	Messages    []chatMessage `json:"messages"`
	Temperature float64       `json:"temperature"`
	N           int           `json:"n"`
}

type chatMessage struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

// chatResponse mirrors the response body (the fields this client needs).
type chatResponse struct {
	Choices []struct {
		Message chatMessage `json:"message"`
	} `json:"choices"`
	Usage struct {
		PromptTokens     int `json:"prompt_tokens"`
		CompletionTokens int `json:"completion_tokens"`
	} `json:"usage"`
	Error *struct {
		Message string `json:"message"`
		Type    string `json:"type"`
	} `json:"error"`
}

// Chat implements ChatModel.
func (c *OpenAIClient) Chat(messages []Message, temperature float64, n int) ([]Response, error) {
	if n <= 0 {
		return nil, fmt.Errorf("llm: n=%d samples requested", n)
	}
	body := chatRequest{
		Model:       c.Model,
		Temperature: temperature,
		N:           n,
	}
	for _, m := range messages {
		body.Messages = append(body.Messages, chatMessage{Role: string(m.Role), Content: m.Content})
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("llm: encoding request: %w", err)
	}

	client := c.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	retries := c.MaxRetries
	if retries <= 0 {
		retries = 3
	}
	delay := c.RetryDelay
	if delay <= 0 {
		delay = 500 * time.Millisecond
	}

	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			delay *= 2
		}
		resp, err := c.doRequest(client, payload)
		if err != nil {
			lastErr = err
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("llm: chat request failed after %d attempts: %w", retries+1, lastErr)
}

// doRequest performs one HTTP round trip.
func (c *OpenAIClient) doRequest(client *http.Client, payload []byte) ([]Response, error) {
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost,
		c.BaseURL+"/chat/completions", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("llm: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	httpResp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 10<<20))
	if err != nil {
		return nil, fmt.Errorf("llm: reading response: %w", err)
	}
	if httpResp.StatusCode == http.StatusTooManyRequests || httpResp.StatusCode >= 500 {
		return nil, fmt.Errorf("llm: retryable status %d: %.200s", httpResp.StatusCode, raw)
	}
	var parsed chatResponse
	if err := json.Unmarshal(raw, &parsed); err != nil {
		return nil, fmt.Errorf("llm: decoding response: %w", err)
	}
	if parsed.Error != nil {
		return nil, fmt.Errorf("llm: API error (%s): %s", parsed.Error.Type, parsed.Error.Message)
	}
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("llm: status %d: %.200s", httpResp.StatusCode, raw)
	}
	if len(parsed.Choices) == 0 {
		return nil, fmt.Errorf("llm: response has no choices")
	}
	out := make([]Response, len(parsed.Choices))
	// The API reports usage for the whole call; attribute the prompt to
	// the first choice and split completion tokens evenly so the Meter's
	// totals match the billed numbers.
	per := parsed.Usage.CompletionTokens / len(parsed.Choices)
	for i, choice := range parsed.Choices {
		out[i] = Response{
			Content: choice.Message.Content,
			Usage:   Usage{CompletionTokens: per},
		}
	}
	out[0].Usage.PromptTokens = parsed.Usage.PromptTokens
	out[0].Usage.CompletionTokens += parsed.Usage.CompletionTokens - per*len(parsed.Choices)
	return out, nil
}
