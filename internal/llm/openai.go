package llm

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// OpenAIClient implements ChatModel against any OpenAI-compatible
// chat-completions endpoint (api.openai.com, Anyscale Endpoints, vLLM,
// llama.cpp server, ...). The reproduction runs fully offline on the
// Simulated model; this client exists so the identical pipeline can be
// pointed at a real provider — swap the constructor and nothing else
// changes.
//
// It honors context cancellation end-to-end: the HTTP request carries
// the caller's ctx, and retry backoff aborts as soon as ctx is done.
// Failures carry typed categories — errors.Is(err, ErrRateLimited),
// ErrUnavailable (both retried) and ErrBadResponse (returned
// immediately).
type OpenAIClient struct {
	// BaseURL is the API root, e.g. "https://api.openai.com/v1".
	BaseURL string
	// APIKey is sent as a bearer token when non-empty.
	APIKey string
	// Model is the provider model identifier.
	Model string
	// PromptPrice/CompletionPrice are USD per 1M tokens, used for the
	// Meter's cost accounting (the API does not return prices).
	PromptPrice, CompletionPrice float64
	// HTTPClient overrides the default client (30s timeout).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts on rate-limit/5xx responses
	// (default 3). A zero set through WithMaxRetries(0) disables
	// retries entirely — exactly one attempt; a zero from a struct
	// literal still means "use the default".
	MaxRetries int
	// RetryDelay is the base backoff delay (default 500ms, doubled per
	// retry up to MaxRetryDelay with jitter; a 429's Retry-After header
	// overrides the computed delay).
	RetryDelay time.Duration
	// MaxRetryDelay caps every backoff delay, computed or
	// provider-requested (default 15s).
	MaxRetryDelay time.Duration

	// retriesSet records that WithMaxRetries was called, so an explicit
	// 0 can be told apart from the unset zero value.
	retriesSet bool
	// gate paces outgoing requests when WithRateLimit is set.
	gate *sendGate
	// sleep is swapped by tests to observe backoff without waiting.
	sleep func(ctx context.Context, d time.Duration) error
}

// Option configures an OpenAIClient at construction.
type Option func(*OpenAIClient)

// WithPricing sets the USD cost per 1M prompt/completion tokens used by
// Meter accounting.
func WithPricing(promptPer1M, completionPer1M float64) Option {
	return func(c *OpenAIClient) {
		c.PromptPrice, c.CompletionPrice = promptPer1M, completionPer1M
	}
}

// WithMaxRetries bounds retry attempts on retryable failures.
// WithMaxRetries(0) disables retries: the client performs exactly one
// attempt.
func WithMaxRetries(n int) Option {
	return func(c *OpenAIClient) {
		c.MaxRetries = n
		c.retriesSet = true
	}
}

// WithRetryDelay sets the base backoff delay (doubled per retry).
func WithRetryDelay(d time.Duration) Option {
	return func(c *OpenAIClient) { c.RetryDelay = d }
}

// WithMaxRetryDelay caps every backoff delay, computed or requested by
// the provider's Retry-After header.
func WithMaxRetryDelay(d time.Duration) Option {
	return func(c *OpenAIClient) { c.MaxRetryDelay = d }
}

// WithHTTPClient substitutes the transport (proxies, custom TLS,
// test servers).
func WithHTTPClient(h *http.Client) Option {
	return func(c *OpenAIClient) { c.HTTPClient = h }
}

// WithRateLimit caps outgoing requests at qps with the given burst — a
// client-side token bucket so a Workers=N experiment sweep cannot flood
// a real endpoint. Waits abort on context cancellation.
func WithRateLimit(qps float64, burst int) Option {
	return func(c *OpenAIClient) { c.gate = newSendGate(qps, burst) }
}

// NewOpenAI constructs a client for an OpenAI-compatible endpoint.
//
//	llm.NewOpenAI(url, key, "gpt-4o-mini",
//	    llm.WithPricing(0.15, 0.60),
//	    llm.WithRateLimit(2, 4),
//	    llm.WithMaxRetries(5))
func NewOpenAI(baseURL, apiKey, model string, opts ...Option) *OpenAIClient {
	c := &OpenAIClient{
		BaseURL:    baseURL,
		APIKey:     apiKey,
		Model:      model,
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
		MaxRetries: 3,
		RetryDelay: 500 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// NewOpenAIClient constructs a client with defaults.
//
// Deprecated: use NewOpenAI with functional options.
func NewOpenAIClient(baseURL, apiKey, model string) *OpenAIClient {
	return NewOpenAI(baseURL, apiKey, model)
}

// ModelName implements ChatModel.
func (c *OpenAIClient) ModelName() string { return c.Model }

// Pricing implements ChatModel.
func (c *OpenAIClient) Pricing() (float64, float64) {
	return c.PromptPrice, c.CompletionPrice
}

// chatRequest mirrors the chat-completions request body.
type chatRequest struct {
	Model       string        `json:"model"`
	Messages    []chatMessage `json:"messages"`
	Temperature float64       `json:"temperature"`
	N           int           `json:"n"`
}

type chatMessage struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

// chatResponse mirrors the response body (the fields this client needs).
type chatResponse struct {
	Choices []struct {
		Message chatMessage `json:"message"`
	} `json:"choices"`
	Usage struct {
		PromptTokens     int `json:"prompt_tokens"`
		CompletionTokens int `json:"completion_tokens"`
	} `json:"usage"`
	Error *struct {
		Message string `json:"message"`
		Type    string `json:"type"`
	} `json:"error"`
}

// Chat implements ChatModel.
func (c *OpenAIClient) Chat(ctx context.Context, messages []Message, temperature float64, n int) ([]Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return nil, fmt.Errorf("%w: n=%d samples requested", ErrBadResponse, n)
	}
	body := chatRequest{
		Model:       c.Model,
		Temperature: temperature,
		N:           n,
	}
	for _, m := range messages {
		body.Messages = append(body.Messages, chatMessage{Role: string(m.Role), Content: m.Content})
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("llm: encoding request: %w", err)
	}

	client := c.HTTPClient
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	retries := c.MaxRetries
	if retries < 0 {
		retries = 0
	}
	if retries == 0 && !c.retriesSet {
		retries = 3 // unset, not "explicitly none"
	}
	pol := backoffPolicy{base: c.RetryDelay, max: c.MaxRetryDelay, jitter: defaultRetryJitter}
	if pol.base <= 0 {
		pol.base = 500 * time.Millisecond
	}
	if pol.max <= 0 {
		pol.max = 15 * time.Second
	}
	sleep := c.sleep
	if sleep == nil {
		sleep = sleepCtx
	}

	var lastErr error
	var hint time.Duration
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			if err := sleep(ctx, pol.delay(attempt-1, hint, jitterDraw())); err != nil {
				return nil, fmt.Errorf("llm: backoff aborted: %w", err)
			}
		}
		if c.gate != nil {
			if _, err := c.gate.wait(ctx); err != nil {
				return nil, err
			}
		}
		resp, err := c.doRequest(ctx, client, payload)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !Retryable(err) || ctx.Err() != nil {
			// malformed exchanges don't heal with retries, and a dead
			// context means the caller already moved on
			return nil, err
		}
		hint, _ = RetryAfter(err)
	}
	return nil, fmt.Errorf("llm: chat request failed after %d attempts: %w", retries+1, lastErr)
}

// parseRetryAfter decodes a Retry-After header: delay-seconds or an
// HTTP date.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// doRequest performs one HTTP round trip.
func (c *OpenAIClient) doRequest(ctx context.Context, client *http.Client, payload []byte) ([]Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/chat/completions", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("llm: building request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.APIKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	httpResp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 10<<20))
	if err != nil {
		return nil, fmt.Errorf("%w: reading response: %v", ErrUnavailable, err)
	}
	if httpResp.StatusCode == http.StatusTooManyRequests {
		err := fmt.Errorf("%w: status 429: %.200s", ErrRateLimited, raw)
		if after, ok := parseRetryAfter(httpResp.Header.Get("Retry-After")); ok {
			return nil, &RetryAfterError{After: after, Err: err}
		}
		return nil, err
	}
	if httpResp.StatusCode >= 500 {
		err := fmt.Errorf("%w: status %d: %.200s", ErrUnavailable, httpResp.StatusCode, raw)
		if after, ok := parseRetryAfter(httpResp.Header.Get("Retry-After")); ok {
			return nil, &RetryAfterError{After: after, Err: err}
		}
		return nil, err
	}
	var parsed chatResponse
	if err := json.Unmarshal(raw, &parsed); err != nil {
		return nil, fmt.Errorf("%w: decoding body: %v", ErrBadResponse, err)
	}
	if parsed.Error != nil {
		return nil, fmt.Errorf("%w: API error (%s): %s", ErrBadResponse, parsed.Error.Type, parsed.Error.Message)
	}
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: status %d: %.200s", ErrBadResponse, httpResp.StatusCode, raw)
	}
	if len(parsed.Choices) == 0 {
		return nil, fmt.Errorf("%w: response has no choices", ErrBadResponse)
	}
	out := make([]Response, len(parsed.Choices))
	// The API reports usage for the whole call; attribute the prompt to
	// the first choice and split completion tokens evenly so the Meter's
	// totals match the billed numbers.
	per := parsed.Usage.CompletionTokens / len(parsed.Choices)
	for i, choice := range parsed.Choices {
		out[i] = Response{
			Content: choice.Message.Content,
			Usage:   Usage{CompletionTokens: per},
		}
	}
	out[0].Usage.PromptTokens = parsed.Usage.PromptTokens
	out[0].Usage.CompletionTokens += parsed.Usage.CompletionTokens - per*len(parsed.Choices)
	return out, nil
}
