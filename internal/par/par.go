// Package par provides the deterministic fork-join primitives behind the
// evaluation engine's parallel paths (vote-matrix column evaluation, the
// label model's E-step, batch featurization and prediction).
//
// Every helper runs a body over an index range with a bounded number of
// goroutines and waits for completion. Determinism is contractual rather
// than accidental: the body must only write state owned by its own index
// (or index range), so varying the worker count changes *which goroutine*
// computes an index but never the per-index arithmetic. Reductions that
// sum floating-point partials must therefore be performed by the caller
// in a fixed order (per-index or per-fixed-size-block), never in
// completion order — see labelmodel.MeTaL's blocked log-likelihood
// reduction for the pattern.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the degree of parallelism the configuration layer
// resolves "use everything" to: runtime.GOMAXPROCS(0), the scheduler's
// own bound.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Normalize clamps a configured worker count to [1, n]. Non-positive
// means sequential: the zero value of a Workers field must reproduce the
// exact legacy single-goroutine path, so opting into parallelism is
// always explicit (core.Config.Normalize resolves its Parallelism
// default to DefaultWorkers before plumbing it down).
func Normalize(workers, n int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Chunks splits [0, n) into at most workers contiguous chunks and runs
// f(lo, hi) for each, concurrently when workers > 1. With workers <= 1
// (or n <= 1) it degenerates to a single inline f(0, n) call on the
// calling goroutine — the exact legacy sequential path, with zero
// goroutine or synchronization overhead.
//
// Chunk boundaries are a function of (workers, n) only, so a caller that
// accumulates one partial per chunk index and reduces them in chunk
// order gets identical results for a fixed worker count; callers that
// need results independent of the worker count must reduce per index or
// per fixed-size block instead.
func Chunks(workers, n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Normalize(workers, n)
	if workers == 1 {
		f(0, n)
		return
	}
	size, rem := n/workers, n%workers
	var wg sync.WaitGroup
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + size
		if w < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// For runs f(i) for every i in [0, n) across at most workers goroutines,
// handing out indices dynamically in blocks of grain (grain <= 0 selects
// 1). Dynamic scheduling balances bodies with very uneven costs — vote
// columns range from single-posting keywords to full-split scans — at
// the price of one atomic fetch per block. f must only write state owned
// by index i.
func For(workers, n, grain int, f func(i int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	workers = Normalize(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(cursor.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					f(i)
				}
			}
		}()
	}
	wg.Wait()
}
