package par

import (
	"sync/atomic"
	"testing"
)

func TestChunksCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100, 1023} {
			hits := make([]atomic.Int32, n)
			Chunks(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 16} {
		for _, grain := range []int{0, 1, 3, 64} {
			for _, n := range []int{0, 1, 7, 501} {
				hits := make([]atomic.Int32, n)
				For(workers, n, grain, func(i int) { hits[i].Add(1) })
				for i := range hits {
					if got := hits[i].Load(); got != 1 {
						t.Fatalf("workers=%d grain=%d n=%d: index %d visited %d times",
							workers, grain, n, i, got)
					}
				}
			}
		}
	}
}

// TestChunksDeterministicWrites is the contract the evaluation engine
// relies on: per-index writes produce identical output for every worker
// count.
func TestChunksDeterministicWrites(t *testing.T) {
	const n = 4096
	ref := make([]float64, n)
	Chunks(1, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ref[i] = float64(i) * 1.25
		}
	})
	for _, workers := range []int{2, 5, 32} {
		out := make([]float64, n)
		Chunks(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = float64(i) * 1.25
			}
		})
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: out[%d]=%v != ref %v", workers, i, out[i], ref[i])
			}
		}
	}
}

func TestNormalize(t *testing.T) {
	if got := Normalize(0, 1000); got != 1 {
		t.Errorf("Normalize(0)=%d, want sequential 1", got)
	}
	if got := Normalize(DefaultWorkers(), 1000); got != DefaultWorkers() {
		t.Errorf("Normalize(DefaultWorkers)=%d, want %d", got, DefaultWorkers())
	}
	if got := Normalize(8, 3); got != 3 {
		t.Errorf("Normalize(8, 3)=%d, want 3", got)
	}
	if got := Normalize(-2, 0); got != 1 {
		t.Errorf("Normalize(-2, 0)=%d, want 1", got)
	}
}

func TestChunksSequentialRunsInline(t *testing.T) {
	calls := 0
	Chunks(1, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("sequential chunk [%d,%d), want [0,10)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("sequential path made %d calls, want 1", calls)
	}
}
