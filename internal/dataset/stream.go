package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"datasculpt/internal/textproc"
)

// This file implements streaming split access for corpora too large to
// materialize: a JSONL interchange format whose records are written in id
// order (the WRENCH map layout marshals keys lexicographically — "10"
// sorts before "2" — so it cannot be consumed as a stream), an
// iterator-style Reader over either format, and chunked featurization
// that keeps peak memory proportional to the chunk size instead of the
// corpus.

// Reader iterates a split one example at a time. Next returns (nil,
// io.EOF) after the last example; Close releases the underlying source.
type Reader interface {
	Next() (*Example, error)
	Close() error
}

// SliceReader adapts an in-memory split to the Reader interface.
type SliceReader struct {
	split []*Example
	pos   int
}

// NewSliceReader returns a Reader over the given examples.
func NewSliceReader(split []*Example) *SliceReader {
	return &SliceReader{split: split}
}

// Next implements Reader.
func (r *SliceReader) Next() (*Example, error) {
	if r.pos >= len(r.split) {
		return nil, io.EOF
	}
	e := r.split[r.pos]
	r.pos++
	return e, nil
}

// Close implements Reader (no-op).
func (r *SliceReader) Close() error { return nil }

// jsonlRecord is one line of a .jsonl split file.
type jsonlRecord struct {
	ID      int    `json:"id"`
	Label   int    `json:"label"`
	Text    string `json:"text"`
	Entity1 string `json:"entity1,omitempty"`
	Entity2 string `json:"entity2,omitempty"`
}

// maxJSONLLine bounds one record; generated documents are short, but real
// corpora (IMDB reviews) can run long.
const maxJSONLLine = 1 << 22

// WriteSplitJSONL streams a split to w as one JSON object per line, in
// slice (= id) order, so readers can consume it without materializing
// the file.
func WriteSplitJSONL(w io.Writer, split []*Example) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range split {
		rec := jsonlRecord{ID: e.ID, Label: e.Label, Text: e.Text, Entity1: e.Entity1, Entity2: e.Entity2}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("dataset: encoding jsonl record %d: %w", e.ID, err)
		}
	}
	return bw.Flush()
}

// SaveDirJSONL writes the dataset's meta.json plus train/valid/test as
// .jsonl files — the streamable counterpart of SaveDir.
func (d *Dataset) SaveDirJSONL(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: creating %s: %w", dir, err)
	}
	taskName := "text"
	if d.Task == RelationClassification {
		taskName = "relation"
	}
	meta := metaFile{
		Name:            d.Name,
		Task:            taskName,
		Classes:         d.ClassNames,
		Imbalanced:      d.Imbalanced,
		TrainLabeled:    d.TrainLabeled,
		TaskDescription: d.TaskDescription,
		InstanceNoun:    d.InstanceNoun,
	}
	if d.DefaultClass != NoDefaultClass {
		dc := d.DefaultClass
		meta.DefaultClass = &dc
	}
	if err := writeJSON(filepath.Join(dir, "meta.json"), meta); err != nil {
		return err
	}
	for _, split := range []struct {
		file string
		exs  []*Example
	}{
		{"train.jsonl", d.Train},
		{"valid.jsonl", d.Valid},
		{"test.jsonl", d.Test},
	} {
		f, err := os.Create(filepath.Join(dir, split.file))
		if err != nil {
			return fmt.Errorf("dataset: creating %s: %w", split.file, err)
		}
		werr := WriteSplitJSONL(f, split.exs)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		if cerr != nil {
			return fmt.Errorf("dataset: closing %s: %w", split.file, cerr)
		}
	}
	return nil
}

// JSONLReader streams a .jsonl split file.
type JSONLReader struct {
	f      *os.File
	sc     *bufio.Scanner
	task   TaskType
	name   string
	line   int
	next   int // expected sequential position
	lastID int // id of the previously returned record
}

// OpenJSONL opens a .jsonl split for streaming. task controls entity
// position resolution for relation corpora.
func OpenJSONL(path string, task TaskType) (*JSONLReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: opening %s: %w", filepath.Base(path), err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), maxJSONLLine)
	return &JSONLReader{f: f, sc: sc, task: task, name: filepath.Base(path)}, nil
}

// Next implements Reader. Records must arrive in id order; ids are
// re-based to the sequential slice position exactly as LoadDir does.
func (r *JSONLReader) Next() (*Example, error) {
	for r.sc.Scan() {
		r.line++
		raw := r.sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("dataset: %s line %d: %w", r.name, r.line, err)
		}
		// The format contract is strictly increasing ids: a duplicate or
		// an out-of-order id means a torn write or a concatenated file,
		// and silently re-basing it would mislabel every later example.
		if r.next > 0 {
			if rec.ID == r.lastID {
				return nil, fmt.Errorf("dataset: %s line %d: duplicate id %d", r.name, r.line, rec.ID)
			}
			if rec.ID < r.lastID {
				return nil, fmt.Errorf("dataset: %s line %d: id %d out of order after %d", r.name, r.line, rec.ID, r.lastID)
			}
		}
		r.lastID = rec.ID
		e := &Example{
			ID:      r.next,
			Text:    rec.Text,
			Label:   rec.Label,
			Entity1: rec.Entity1,
			Entity2: rec.Entity2,
			E1Pos:   -1,
			E2Pos:   -1,
		}
		r.next++
		e.EnsureTokens()
		if r.task == RelationClassification {
			e.E1Pos, e.E2Pos = locateEntities(e)
			if e.E1Pos < 0 || e.E2Pos < 0 {
				return nil, fmt.Errorf("dataset: %s line %d: entities %q/%q not found in text",
					r.name, r.line, rec.Entity1, rec.Entity2)
			}
		}
		return e, nil
	}
	if err := r.sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scanning %s: %w", r.name, err)
	}
	return nil, io.EOF
}

// Close implements Reader.
func (r *JSONLReader) Close() error { return r.f.Close() }

// OpenSplitReader opens <dir>/<split>.jsonl for streaming when present,
// falling back to loading <dir>/<split>.json (the WRENCH map layout) into
// memory behind a SliceReader. The fallback keeps old directories working
// but offers no memory bound.
func OpenSplitReader(dir, split string, task TaskType) (Reader, error) {
	jsonl := filepath.Join(dir, split+".jsonl")
	if _, err := os.Stat(jsonl); err == nil {
		return OpenJSONL(jsonl, task)
	}
	exs, err := loadSplit(filepath.Join(dir, split+".json"), task)
	if err != nil {
		return nil, err
	}
	return NewSliceReader(exs), nil
}

// ReadChunks drains the reader in chunks of at most chunkSize examples,
// invoking fn on each; the chunk slice is reused across calls, so fn must
// not retain it. A non-positive chunkSize selects 1024.
func ReadChunks(r Reader, chunkSize int, fn func(chunk []*Example) error) error {
	if chunkSize <= 0 {
		chunkSize = 1024
	}
	chunk := make([]*Example, 0, chunkSize)
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		chunk = append(chunk, e)
		if len(chunk) == chunkSize {
			if err := fn(chunk); err != nil {
				return err
			}
			chunk = chunk[:0]
		}
	}
	if len(chunk) > 0 {
		return fn(chunk)
	}
	return nil
}

// StreamFeatures fits the featurizer and featurizes a corpus in two
// streaming passes — pass 1 accumulates document frequencies chunk by
// chunk (BeginFit/FitChunk/FinishFit), pass 2 transforms each chunk
// through the featurizer's parallel TransformAll and hands the vectors to
// emit with the absolute offset of the chunk's first document. open is
// called once per pass; peak memory is one chunk of examples plus its
// vectors, never the corpus. The produced vectors are bit-identical to
// feat.TransformAll over the materialized corpus.
func StreamFeatures(open func() (Reader, error), feat *textproc.Featurizer, chunkSize int, emit func(start int, vecs []*textproc.SparseVector) error) error {
	r, err := open()
	if err != nil {
		return err
	}
	if err := feat.BeginFit(); err != nil {
		r.Close()
		return err
	}
	tokens := make([][]string, 0, chunkSize)
	err = ReadChunks(r, chunkSize, func(chunk []*Example) error {
		tokens = tokens[:0]
		for _, e := range chunk {
			tokens = append(tokens, e.FeatureTokens())
		}
		feat.FitChunk(tokens)
		return nil
	})
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := feat.FinishFit(); err != nil {
		return err
	}

	r, err = open()
	if err != nil {
		return err
	}
	start := 0
	err = ReadChunks(r, chunkSize, func(chunk []*Example) error {
		tokens = tokens[:0]
		for _, e := range chunk {
			tokens = append(tokens, e.FeatureTokens())
		}
		vecs := feat.TransformAll(tokens)
		eerr := emit(start, vecs)
		start += len(chunk)
		return eerr
	})
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	return err
}
