package dataset

// TRECSpec is a bonus seventh dataset beyond the paper's six: a
// TREC-style question-classification task (Li & Roth 2002) with six
// coarse answer-type classes. It exercises the pipeline on a higher
// class count than Agnews and on very short instances, and demonstrates
// that adding a dataset to this reproduction is a matter of writing one
// Spec. It is registered in the registry but excluded from the paper's
// table order (Names appends extras after the canonical six), so the
// benchmark tables remain comparable to the paper.
func TRECSpec() *Spec {
	return &Spec{
		Name: "trec",
		Task: TextClassification,
		Classes: []ClassSpec{
			{
				Name: "abbreviation",
				Keywords: pool(
					"stand for", "abbreviation", "acronym", "short for",
					"abbreviated", "initials", "expansion of", "full form",
					"meaning of abbreviation", "letters mean",
				),
				Topics: []string{"term", "letters", "symbol"},
			},
			{
				Name: "entity",
				Keywords: pool(
					"what animal", "what color", "what product", "name the",
					"which instrument", "what language", "what food",
					"what drug", "what sport", "what flower", "what currency",
					"what religion", "which plant", "what substance",
					"what vehicle", "what game",
				),
				Topics: []string{"kind", "type", "object", "thing"},
			},
			{
				Name: "description",
				Keywords: pool(
					"what is", "define", "describe", "what are", "explain",
					"meaning of", "definition of", "why do", "why is",
					"how does", "what causes", "origin of", "purpose of",
					"difference of", "used for",
				),
				Topics: []string{"reason", "concept", "definition"},
			},
			{
				Name: "human",
				Keywords: pool(
					"who is", "who was", "which person", "who invented",
					"who wrote", "who discovered", "whose", "who founded",
					"who directed", "who played", "which president",
					"who won", "which actor", "who painted",
				),
				Topics: []string{"person", "inventor", "author", "leader"},
			},
			{
				Name: "location",
				Keywords: pool(
					"where is", "where was", "what country", "what city",
					"which state", "what continent", "where did", "capital of",
					"located in", "what river", "what mountain", "what ocean",
					"which county", "hometown of", "birthplace of",
				),
				Topics: []string{"place", "region", "map", "border"},
			},
			{
				Name: "numeric",
				Keywords: pool(
					"how many", "how much", "what year", "when did",
					"when was", "how long", "how far", "how old", "what date",
					"how tall", "how fast", "what percentage", "population of",
					"distance between", "how heavy", "temperature of",
				),
				Topics: []string{"number", "amount", "date", "count"},
			},
		},
		Priors:          []float64{0.06, 0.18, 0.22, 0.18, 0.17, 0.19},
		TrainSize:       5452,
		ValidSize:       500,
		TestSize:        500,
		MeanLen:         11,
		StdLen:          4,
		KeywordRate:     1.3,
		CrossNoise:      0.08,
		HardFraction:    0.10,
		TopicRate:       0.10,
		DefaultClass:    NoDefaultClass,
		Imbalanced:      false,
		TrainLabeled:    true,
		Filler:          []string{"question", "answer", "tell", "please", "exactly", "world", "first", "famous"},
		TaskDescription: "a question classification task. In each iteration, the user will provide a question. Please classify the expected answer type. (0 abbreviation, 1 entity, 2 description, 3 human, 4 location, 5 numeric)",
		InstanceNoun:    "question",
	}
}
