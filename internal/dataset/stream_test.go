package dataset

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datasculpt/internal/textproc"
)

func drain(t *testing.T, r Reader) []*Example {
	t.Helper()
	var out []*Example
	for {
		e, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func sameExamples(t *testing.T, got, want []*Example) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d examples, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.Text != w.Text || g.Label != w.Label ||
			g.Entity1 != w.Entity1 || g.Entity2 != w.Entity2 ||
			g.E1Pos != w.E1Pos || g.E2Pos != w.E2Pos {
			t.Fatalf("example %d differs:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestJSONLRoundTrip: SaveDirJSONL + streaming read reproduces every
// split of a text dataset exactly, in id order.
func TestJSONLRoundTrip(t *testing.T) {
	d, err := Load("youtube", 3, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := d.SaveDirJSONL(dir); err != nil {
		t.Fatal(err)
	}
	for split, want := range map[string][]*Example{
		"train": d.Train, "valid": d.Valid, "test": d.Test,
	} {
		r, err := OpenSplitReader(dir, split, d.Task)
		if err != nil {
			t.Fatal(err)
		}
		sameExamples(t, drain(t, r), want)
	}
}

// TestJSONLRoundTripRelation: entity positions are re-derived on read for
// relation corpora.
func TestJSONLRoundTripRelation(t *testing.T) {
	d, err := Load("spouse", 2, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := d.SaveDirJSONL(dir); err != nil {
		t.Fatal(err)
	}
	r, err := OpenSplitReader(dir, "train", d.Task)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, r)
	sameExamples(t, got, d.Train)
	found := false
	for _, e := range got {
		if e.E1Pos >= 0 && e.E2Pos >= 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no entity positions resolved from the jsonl stream")
	}
}

// TestOpenSplitReaderJSONFallback: directories written with the legacy
// map layout are still readable through the streaming interface.
func TestOpenSplitReaderJSONFallback(t *testing.T) {
	d, err := Load("sms", 5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	r, err := OpenSplitReader(dir, "valid", d.Task)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.(*SliceReader); !ok {
		t.Fatalf("fallback reader is %T, want *SliceReader", r)
	}
	sameExamples(t, drain(t, r), d.Valid)
}

// TestReadChunks: chunk boundaries cover the whole stream exactly once
// and the callback sees the configured size except for the tail.
func TestReadChunks(t *testing.T) {
	d, err := Load("youtube", 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var seen []*Example
	calls := 0
	err = ReadChunks(NewSliceReader(d.Train), 7, func(chunk []*Example) error {
		calls++
		if len(chunk) != 7 && calls != (len(d.Train)+6)/7 {
			t.Fatalf("call %d: short chunk of %d before the tail", calls, len(chunk))
		}
		seen = append(seen, chunk...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := (len(d.Train) + 6) / 7; calls != want {
		t.Fatalf("callback ran %d times, want %d", calls, want)
	}
	sameExamples(t, seen, d.Train)
}

// TestIncrementalFitMatchesOneShot: BeginFit/FitChunk/FinishFit over any
// chunking yields bit-identical vectors to one-shot Fit.
func TestIncrementalFitMatchesOneShot(t *testing.T) {
	d, err := Load("sms", 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	corpus := FeatureCorpus(d.Train)

	oneShot := textproc.NewFeaturizer(2048)
	if err := oneShot.Fit(corpus); err != nil {
		t.Fatal(err)
	}
	chunked := textproc.NewFeaturizer(2048)
	if err := chunked.BeginFit(); err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < len(corpus); lo += 13 {
		hi := lo + 13
		if hi > len(corpus) {
			hi = len(corpus)
		}
		chunked.FitChunk(corpus[lo:hi])
	}
	if err := chunked.FinishFit(); err != nil {
		t.Fatal(err)
	}
	for i, tokens := range corpus {
		a, b := oneShot.Transform(tokens), chunked.Transform(tokens)
		if len(a.Idx) != len(b.Idx) {
			t.Fatalf("doc %d: nnz differs", i)
		}
		for k := range a.Idx {
			if a.Idx[k] != b.Idx[k] || math.Float32bits(a.Val[k]) != math.Float32bits(b.Val[k]) {
				t.Fatalf("doc %d: vectors diverge at %d", i, k)
			}
		}
	}
}

// TestIncrementalFitValidation: double Begin, Finish without Begin, and
// empty streams are rejected; refitting after FinishFit is rejected.
func TestIncrementalFitValidation(t *testing.T) {
	f := textproc.NewFeaturizer(64)
	if err := f.FinishFit(); err == nil {
		t.Error("FinishFit without BeginFit accepted")
	}
	if err := f.BeginFit(); err != nil {
		t.Fatal(err)
	}
	if err := f.BeginFit(); err == nil {
		t.Error("double BeginFit accepted")
	}
	if err := f.FinishFit(); err == nil {
		t.Error("empty incremental fit accepted")
	}
	f.FitChunk([][]string{{"a", "b"}})
	if err := f.FinishFit(); err != nil {
		t.Fatal(err)
	}
	if !f.Fitted() {
		t.Fatal("featurizer not fitted after FinishFit")
	}
	if err := f.BeginFit(); err == nil {
		t.Error("BeginFit after a completed fit accepted")
	}
}

// TestStreamFeaturesBitIdentical: the two-pass streaming featurization
// equals materialized TransformAll bit for bit.
func TestStreamFeaturesBitIdentical(t *testing.T) {
	d, err := Load("youtube", 9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := d.SaveDirJSONL(dir); err != nil {
		t.Fatal(err)
	}

	ref := textproc.NewFeaturizer(2048)
	if err := ref.Fit(FeatureCorpus(d.Train)); err != nil {
		t.Fatal(err)
	}
	want := ref.TransformAll(FeatureCorpus(d.Train))

	streamed := textproc.NewFeaturizer(2048)
	got := make([]*textproc.SparseVector, len(want))
	open := func() (Reader, error) { return OpenSplitReader(dir, "train", d.Task) }
	err = StreamFeatures(open, streamed, 32, func(start int, vecs []*textproc.SparseVector) error {
		copy(got[start:], vecs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] == nil {
			t.Fatalf("doc %d never emitted", i)
		}
		if len(got[i].Idx) != len(want[i].Idx) {
			t.Fatalf("doc %d: nnz differs", i)
		}
		for k := range want[i].Idx {
			if got[i].Idx[k] != want[i].Idx[k] ||
				math.Float32bits(got[i].Val[k]) != math.Float32bits(want[i].Val[k]) {
				t.Fatalf("doc %d diverges at component %d", i, k)
			}
		}
	}
}

// TestGenerateScaleAbove1: scale > 1 grows every split proportionally
// from the same spec.
func TestGenerateScaleAbove1(t *testing.T) {
	small, err := Load("youtube", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Load("youtube", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(big.Train), 3*len(small.Train); got != want {
		t.Errorf("scale-3 train = %d, want %d", got, want)
	}
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Load("youtube", 1, 0); err == nil {
		t.Error("scale 0 accepted")
	}
}

// writeRawJSONL drops raw bytes into a temp .jsonl file and opens it.
func writeRawJSONL(t *testing.T, content string) *JSONLReader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "split.jsonl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenJSONL(path, TextClassification)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// nextErr drains the reader until it fails and returns that error.
func nextErr(t *testing.T, r *JSONLReader) error {
	t.Helper()
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("reader reached EOF without the expected error")
		}
		if err != nil {
			return err
		}
	}
}

// TestJSONLReaderErrorPaths pins the failure modes of the streaming
// format: a truncated (torn) line, a record past the line bound, a
// duplicate id, and ids running backwards all fail with an error that
// names the file and line instead of silently re-basing ids.
func TestJSONLReaderErrorPaths(t *testing.T) {
	t.Run("truncated-line", func(t *testing.T) {
		// A writer killed mid-record leaves a torn final line.
		err := nextErr(t, writeRawJSONL(t, `{"id":0,"label":1,"text":"ok"}`+"\n"+`{"id":1,"label":0,"tex`))
		if !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("truncated line error does not name line 2: %v", err)
		}
	})
	t.Run("line-too-long", func(t *testing.T) {
		long := `{"id":0,"label":1,"text":"` + strings.Repeat("a", maxJSONLLine) + `"}`
		err := nextErr(t, writeRawJSONL(t, long+"\n"))
		if !strings.Contains(err.Error(), "scanning") {
			t.Fatalf("oversized line error: %v", err)
		}
	})
	t.Run("duplicate-id", func(t *testing.T) {
		err := nextErr(t, writeRawJSONL(t,
			`{"id":3,"label":1,"text":"a"}`+"\n"+`{"id":3,"label":0,"text":"b"}`+"\n"))
		if !strings.Contains(err.Error(), "duplicate id 3") || !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("duplicate id error: %v", err)
		}
	})
	t.Run("out-of-order-id", func(t *testing.T) {
		err := nextErr(t, writeRawJSONL(t,
			`{"id":5,"label":1,"text":"a"}`+"\n"+`{"id":2,"label":0,"text":"b"}`+"\n"))
		if !strings.Contains(err.Error(), "id 2 out of order after 5") || !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("out-of-order id error: %v", err)
		}
	})
	t.Run("gaps-allowed", func(t *testing.T) {
		// Increasing but non-contiguous ids are legal (filtered exports);
		// positions are re-based sequentially exactly as LoadDir does.
		r := writeRawJSONL(t, `{"id":10,"label":1,"text":"a"}`+"\n\n"+`{"id":20,"label":0,"text":"b"}`+"\n")
		exs := drain(t, r)
		if len(exs) != 2 || exs[0].ID != 0 || exs[1].ID != 1 {
			t.Fatalf("re-based ids wrong: %+v", exs)
		}
	})
}
