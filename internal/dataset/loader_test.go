package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, err := Load("youtube", 5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := orig.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.Task != orig.Task ||
		back.NumClasses() != orig.NumClasses() || back.Imbalanced != orig.Imbalanced ||
		back.TrainLabeled != orig.TrainLabeled || back.DefaultClass != orig.DefaultClass {
		t.Errorf("metadata mismatch: %+v vs %+v", back, orig)
	}
	if len(back.Train) != len(orig.Train) || len(back.Valid) != len(orig.Valid) ||
		len(back.Test) != len(orig.Test) {
		t.Fatal("split sizes mismatch")
	}
	for i := range orig.Train {
		if back.Train[i].Text != orig.Train[i].Text || back.Train[i].Label != orig.Train[i].Label {
			t.Fatalf("train[%d] mismatch", i)
		}
	}
	// loaded datasets have no signal table
	if back.Signal != nil {
		t.Error("loaded dataset unexpectedly has a signal table")
	}
}

func TestSaveLoadRelationRoundTrip(t *testing.T) {
	orig, err := Load("spouse", 3, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := orig.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Task != RelationClassification {
		t.Fatal("relation task lost")
	}
	for i, e := range back.Valid {
		o := orig.Valid[i]
		if e.Entity1 != o.Entity1 || e.Entity2 != o.Entity2 {
			t.Fatalf("valid[%d] entities mismatch", i)
		}
		// entity positions are recomputed at load time and must point at
		// the entity mentions
		got := e.Tokens[e.E1Pos] + " " + e.Tokens[e.E1Pos+1]
		if got != e.Entity1 {
			t.Fatalf("valid[%d] E1Pos points at %q, want %q", i, got, e.Entity1)
		}
	}
	// spouse train stays unlabeled through the round trip
	for _, e := range back.Train {
		if e.Label != NoLabel {
			t.Fatal("unlabeled train example got a label")
		}
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}

	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("meta.json", `{"classes": ["a","b"]}`)
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "name") {
		t.Errorf("missing name: %v", err)
	}
	write("meta.json", `{"name": "x", "classes": ["a"]}`)
	if _, err := LoadDir(dir); err == nil {
		t.Error("single class accepted")
	}
	write("meta.json", `{"name": "x", "classes": ["a","b"], "task": "vision"}`)
	if _, err := LoadDir(dir); err == nil {
		t.Error("unknown task accepted")
	}
	write("meta.json", `{"name": "x", "classes": ["a","b"], "train_labeled": true}`)
	if _, err := LoadDir(dir); err == nil {
		t.Error("missing splits accepted")
	}
	write("train.json", `{"zero": {"label": 0, "data": {"text": "hi there"}}}`)
	write("valid.json", `{"0": {"label": 0, "data": {"text": "hi there"}}}`)
	write("test.json", `{"0": {"label": 0, "data": {"text": "hi there"}}}`)
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "non-numeric") {
		t.Errorf("non-numeric id: %v", err)
	}
}

func TestLoadDirRelationEntityMissing(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"meta.json": `{"name": "rel", "task": "relation", "classes": ["no","yes"], "train_labeled": true}`,
		"train.json": `{"0": {"label": 1, "data": {"text": "alice smith married bob jones",
			"entity1": "alice smith", "entity2": "carol white"}}}`,
		"valid.json": `{"0": {"label": 0, "data": {"text": "x", "entity1": "a", "entity2": "b"}}}`,
		"test.json":  `{"0": {"label": 0, "data": {"text": "x", "entity1": "a", "entity2": "b"}}}`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "not found in text") {
		t.Errorf("missing entity: %v", err)
	}
}

func TestLocateEntitiesSameSurface(t *testing.T) {
	e := &Example{
		Text:    "john met john at the fair",
		Entity1: "john",
		Entity2: "john",
	}
	e.EnsureTokens()
	p1, p2 := locateEntities(e)
	if p1 != 0 || p2 != 2 {
		t.Errorf("positions = %d,%d, want 0,2 (distinct mentions)", p1, p2)
	}
}
