// Package dataset defines the corpus types used across DataSculpt and
// provides synthetic generators for the six WRENCH benchmark datasets the
// paper evaluates on (Youtube, SMS, IMDB, Yelp, Agnews, Spouse).
//
// The real WRENCH corpora cannot be shipped in an offline reproduction, so
// each dataset is replaced by a deterministic generator that matches the
// paper's Table 1 statistics (split sizes, class counts, class balance)
// and the qualitative properties the evaluation depends on: per-class
// indicative keyword pools with graded precision, document-length
// profiles that drive LLM token costs, a fraction of "hard" documents
// without surface signal, and — for Spouse — entity-pair relation
// instances with unlabeled training data. See DESIGN.md §2 for the full
// substitution argument.
package dataset

import (
	"fmt"

	"datasculpt/internal/textproc"
)

// TaskType distinguishes plain text classification from relation
// classification between two entities mentioned in the passage.
type TaskType int

const (
	// TextClassification categorizes a passage (topic, sentiment, spam).
	TextClassification TaskType = iota
	// RelationClassification decides whether a target entity pair within
	// the passage stands in a given relation (e.g. spouses).
	RelationClassification
)

// String implements fmt.Stringer.
func (t TaskType) String() string {
	switch t {
	case TextClassification:
		return "text-classification"
	case RelationClassification:
		return "relation-classification"
	default:
		return fmt.Sprintf("TaskType(%d)", int(t))
	}
}

// NoLabel marks an example whose gold label is unavailable (the Spouse
// train split, mirroring WRENCH).
const NoLabel = -1

// NoDefaultClass marks a dataset without the paper's default-class
// mechanism (Section 3.6).
const NoDefaultClass = -1

// Example is one instance of a dataset split.
type Example struct {
	// ID is the example's index within its split.
	ID int
	// Text is the raw passage.
	Text string
	// Tokens caches textproc.Tokenize(Text). Generators always populate
	// it; loaders must call EnsureTokens.
	Tokens []string
	// Label is the gold class, or NoLabel when unknown.
	Label int
	// Entity1/Entity2 name the target pair for relation tasks ("" for
	// text classification).
	Entity1, Entity2 string
	// E1Pos/E2Pos are token indices of the first mention of each target
	// entity, or -1 when absent. Entity-aware keyword LFs use them to
	// check that a relation phrase attaches to the target pair rather
	// than to a distractor pair elsewhere in the passage.
	E1Pos, E2Pos int
}

// EnsureTokens populates Tokens if empty.
func (e *Example) EnsureTokens() {
	if e.Tokens == nil {
		e.Tokens = textproc.Tokenize(e.Text)
	}
}

// PreTokenize populates every example's token cache up front. Callers
// that will read Tokens from multiple goroutines must run this first:
// EnsureTokens lazily mutates the example, so concurrent first reads
// would race. A fully tokenized split makes later passes read-only.
func PreTokenize(split []*Example) {
	for _, e := range split {
		e.EnsureTokens()
	}
}

// Dataset bundles the three splits and task metadata.
type Dataset struct {
	// Name is the registry key, e.g. "youtube".
	Name string
	// Task is the classification flavour.
	Task TaskType
	// ClassNames maps class index to a human-readable name.
	ClassNames []string
	// DefaultClass is the class assigned to instances not covered by any
	// LF before end-model training (paper §3.6), or NoDefaultClass.
	DefaultClass int
	// Imbalanced marks datasets whose end-model metric is binary F1 of
	// class 1 (SMS, Spouse) rather than accuracy.
	Imbalanced bool
	// TrainLabeled reports whether train gold labels exist. When false
	// (Spouse), LF-accuracy statistics on the train split are undefined
	// and reported as "-", as in the paper.
	TrainLabeled bool
	// Train, Valid, Test are the splits. Valid is the small labeled set
	// used for in-context examples and LF accuracy filtering.
	Train, Valid, Test []*Example
	// Signal is the generator's ground-truth keyword table. It stands in
	// for the world knowledge a real LLM has about the domain (which
	// words signal spam, positive sentiment, ...). Only the simulated
	// LLM and the expert baselines may consult it; the DataSculpt
	// pipeline itself never does.
	Signal *SignalTable
	// TaskDescription is the dataset-specific instruction text that the
	// prompt templates interpolate (underlined parts of Figure 2).
	TaskDescription string
	// InstanceNoun names what one instance is ("movie review", "comment
	// for a video", ...), used in prompt templates.
	InstanceNoun string
}

// NumClasses returns the cardinality of the label space.
func (d *Dataset) NumClasses() int { return len(d.ClassNames) }

// MetricName returns "F1" for imbalanced datasets and "accuracy"
// otherwise, matching the EM Acc/F1 row of Table 2.
func (d *Dataset) MetricName() string {
	if d.Imbalanced {
		return "F1"
	}
	return "accuracy"
}

// Labels extracts gold labels from a split.
func Labels(split []*Example) []int {
	out := make([]int, len(split))
	for i, e := range split {
		out[i] = e.Label
	}
	return out
}

// Texts extracts raw texts from a split.
func Texts(split []*Example) []string {
	out := make([]string, len(split))
	for i, e := range split {
		out[i] = e.Text
	}
	return out
}

// TokenCorpus extracts cached token slices from a split.
func TokenCorpus(split []*Example) [][]string {
	out := make([][]string, len(split))
	for i, e := range split {
		e.EnsureTokens()
		out[i] = e.Tokens
	}
	return out
}

// FeatureWindow is how many tokens beyond the target entity span
// contribute to an example's feature representation on relation tasks.
const FeatureWindow = 4

// FeatureTokens returns the tokens the feature extractor should see. For
// text classification that is the whole passage; for relation
// classification it is the span around the target entity pair — the
// standard entity-marking trick of BERT relation extractors, without
// which a bag-of-words model cannot tell a relation phrase attached to
// the target pair from the same phrase attached to a distractor pair
// elsewhere in the passage.
func (e *Example) FeatureTokens() []string {
	e.EnsureTokens()
	if e.E1Pos < 0 || e.E2Pos < 0 {
		return e.Tokens
	}
	lo, hi := e.E1Pos, e.E2Pos
	if lo > hi {
		lo, hi = hi, lo
	}
	lo -= FeatureWindow
	if lo < 0 {
		lo = 0
	}
	hi += 2 + FeatureWindow // entity mentions are two tokens each
	if hi > len(e.Tokens) {
		hi = len(e.Tokens)
	}
	return e.Tokens[lo:hi]
}

// FeatureCorpus extracts FeatureTokens from a split (the corpus the
// featurizer is fitted on and transforms).
func FeatureCorpus(split []*Example) [][]string {
	out := make([][]string, len(split))
	for i, e := range split {
		out[i] = e.FeatureTokens()
	}
	return out
}

// Validate checks structural invariants of the dataset: non-empty splits,
// labels within range (or NoLabel where permitted), populated tokens and
// entity positions for relation tasks. Experiments call it after loading.
func (d *Dataset) Validate() error {
	if d.NumClasses() < 2 {
		return fmt.Errorf("dataset %s: need >=2 classes, got %d", d.Name, d.NumClasses())
	}
	if len(d.Train) == 0 || len(d.Valid) == 0 || len(d.Test) == 0 {
		return fmt.Errorf("dataset %s: empty split (train=%d valid=%d test=%d)",
			d.Name, len(d.Train), len(d.Valid), len(d.Test))
	}
	if d.DefaultClass != NoDefaultClass && (d.DefaultClass < 0 || d.DefaultClass >= d.NumClasses()) {
		return fmt.Errorf("dataset %s: default class %d out of range", d.Name, d.DefaultClass)
	}
	check := func(split string, exs []*Example, labeled bool) error {
		for i, e := range exs {
			if e == nil {
				return fmt.Errorf("dataset %s: %s[%d] is nil", d.Name, split, i)
			}
			if len(e.Tokens) == 0 {
				return fmt.Errorf("dataset %s: %s[%d] has no tokens", d.Name, split, i)
			}
			if labeled {
				if e.Label < 0 || e.Label >= d.NumClasses() {
					return fmt.Errorf("dataset %s: %s[%d] label %d out of range", d.Name, split, i, e.Label)
				}
			} else if e.Label != NoLabel {
				return fmt.Errorf("dataset %s: %s[%d] should be unlabeled, has %d", d.Name, split, i, e.Label)
			}
			if d.Task == RelationClassification {
				if e.Entity1 == "" || e.Entity2 == "" {
					return fmt.Errorf("dataset %s: %s[%d] missing entities", d.Name, split, i)
				}
			}
		}
		return nil
	}
	if err := check("train", d.Train, d.TrainLabeled); err != nil {
		return err
	}
	if err := check("valid", d.Valid, true); err != nil {
		return err
	}
	return check("test", d.Test, true)
}
