package dataset

// This file holds the shared vocabulary pools that the synthetic corpus
// generators draw from. The pools are ordinary English words; what makes a
// dataset is its Spec: per-class keyword pools with graded precision,
// class-flavoured topic words, priors and length profiles (see specs.go).

// backgroundWords is the domain-neutral filler vocabulary shared by every
// generated dataset. None of these words carries class signal; specs must
// not reuse them as keywords (buildDataset enforces this).
var backgroundWords = []string{
	"people", "time", "year", "way", "day", "man", "thing", "woman",
	"life", "child", "world", "school", "state", "family", "student",
	"group", "country", "problem", "hand", "part", "place", "case",
	"week", "company", "system", "program", "question", "work", "number",
	"night", "point", "home", "water", "room", "mother", "area", "money",
	"story", "fact", "month", "lot", "right", "study", "book", "eye",
	"job", "word", "business", "issue", "side", "kind", "head", "house",
	"service", "friend", "father", "power", "hour", "game", "line",
	"end", "member", "law", "car", "city", "community", "name",
	"president", "team", "minute", "idea", "body", "information",
	"back", "parent", "face", "others", "level", "office", "door",
	"health", "person", "art", "war", "history", "party", "result",
	"change", "morning", "reason", "research", "girl", "guy", "moment",
	"air", "teacher", "force", "education", "foot", "boy", "age",
	"policy", "process", "music", "market", "sense", "nation", "plan",
	"college", "interest", "death", "experience", "effect", "use",
	"class", "control", "care", "field", "development", "role", "effort",
	"rate", "heart", "drug", "show", "leader", "light", "voice", "wife",
	"whole", "police", "mind", "finally", "pull", "return", "free",
	"military", "price", "report", "less", "according", "decision",
	"explain", "son", "hope", "even", "develop", "view", "relationship",
	"carry", "town", "road", "drive", "arm", "true", "federal", "break",
	"better", "difference", "thank", "receive", "value", "building",
	"action", "full", "model", "join", "season", "society", "tax",
	"director", "early", "position", "player", "agree", "especially",
	"record", "pick", "wear", "paper", "special", "space", "ground",
	"form", "support", "event", "official", "whose", "matter", "everyone",
	"center", "couple", "site", "project", "hit", "base", "activity",
	"star", "table", "need", "court", "produce", "eat", "american",
	"teach", "oil", "half", "situation", "easy", "cost", "industry",
	"figure", "street", "image", "itself", "phone", "either", "data",
	"cover", "quite", "picture", "clear", "practice", "piece", "land",
	"recent", "describe", "product", "doctor", "wall", "patient",
	"worker", "news", "test", "movie", "certain", "north", "personal",
	"open", "simply", "third", "technology", "catch", "step", "baby",
	"computer", "type", "attention", "draw", "film", "republican",
	"tree", "source", "red", "nearly", "organization", "choose", "cause",
	"hair", "century", "evidence", "window", "difficult", "listen",
	"soon", "culture", "billion", "chance", "brother", "energy",
	"period", "course", "summer", "realize", "hundred", "available",
	"plant", "likely", "opportunity", "term", "short", "letter",
	"condition", "choice", "single", "rule", "daughter", "administration",
	"south", "husband", "congress", "floor", "campaign", "material",
	"population", "call", "economy", "medical", "hospital", "church",
	"close", "thousand", "risk", "current", "fire", "future", "wrong",
	"involve", "defense", "anyone", "increase", "security", "behavior",
	"prove", "hang", "entire", "rock", "design", "enough", "forget",
	"since", "claim", "note", "remove", "manager", "help",
}

// firstNames and lastNames seed entity mentions for the Spouse relation
// dataset. They never appear in any keyword pool.
var firstNames = []string{
	"james", "mary", "robert", "patricia", "john", "jennifer", "michael",
	"linda", "david", "elizabeth", "william", "barbara", "richard",
	"susan", "joseph", "jessica", "thomas", "sarah", "charles", "karen",
	"christopher", "lisa", "daniel", "nancy", "matthew", "betty",
	"anthony", "margaret", "mark", "sandra", "donald", "ashley",
	"steven", "kimberly", "paul", "emily", "andrew", "donna", "joshua",
	"michelle", "kenneth", "carol", "kevin", "amanda", "brian",
	"dorothy", "george", "melissa", "timothy", "deborah", "ronald",
	"stephanie", "edward", "rebecca", "jason", "sharon", "jeffrey",
	"laura", "ryan", "cynthia", "jacob", "kathleen", "gary", "amy",
	"nicholas", "angela", "eric", "shirley", "jonathan", "anna",
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia",
	"miller", "davis", "rodriguez", "martinez", "hernandez", "lopez",
	"gonzalez", "wilson", "anderson", "taylor", "moore", "jackson",
	"martin", "lee", "perez", "thompson", "white", "harris", "sanchez",
	"clark", "ramirez", "lewis", "robinson", "walker", "young", "allen",
	"king", "wright", "scott", "torres", "nguyen", "hill", "flores",
	"green", "adams", "nelson", "baker", "hall", "rivera", "campbell",
	"mitchell", "carter", "roberts", "gomez", "phillips", "evans",
	"turner", "diaz", "parker", "cruz", "edwards", "collins", "reyes",
	"stewart", "morris", "morales", "murphy", "cook", "rogers",
}
