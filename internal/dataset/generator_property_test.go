package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestGeneratorInvariantsProperty exercises the generator over random
// seeds and scales and asserts structural invariants for every dataset.
func TestGeneratorInvariantsProperty(t *testing.T) {
	names := Names()
	prop := func(seed int64, pick uint8, scaleRaw uint8) bool {
		name := names[int(pick)%len(names)]
		scale := 0.02 + float64(scaleRaw%10)/100 // 0.02 .. 0.11
		d, err := Load(name, seed, scale)
		if err != nil {
			t.Logf("Load(%s, %d, %v): %v", name, seed, scale, err)
			return false
		}
		if err := d.Validate(); err != nil {
			t.Logf("%v", err)
			return false
		}
		// labels in the labeled splits stay in range; priors roughly
		// respected (every class appears in valid)
		seen := make([]bool, d.NumClasses())
		for _, e := range d.Valid {
			seen[e.Label] = true
		}
		for c, ok := range seen {
			if !ok && len(d.Valid) >= 10*d.NumClasses() {
				t.Logf("%s: class %d absent from %d-example valid split", name, c, len(d.Valid))
				return false
			}
		}
		// every signal phrase is a valid 1-3 gram of lowercase tokens
		for c := 0; c < d.NumClasses(); c++ {
			for _, sig := range d.Signal.Class(c) {
				if sig.Phrase == "" || sig.Strength <= 0 || sig.Strength > 1 || sig.Weight <= 0 {
					t.Logf("%s: bad signal %+v", name, sig)
					return false
				}
			}
		}
		// feature tokens are always a sub-slice of tokens
		for _, e := range d.Train[:min(10, len(d.Train))] {
			ft := e.FeatureTokens()
			if len(ft) == 0 || len(ft) > len(e.Tokens) {
				t.Logf("%s: feature tokens %d of %d", name, len(ft), len(e.Tokens))
				return false
			}
		}
		return true
	}
	// Fixed generation source: the "every class appears in valid" check
	// is statistical (a ~13%-prior class misses a 25-example split ~3%
	// of the time), so a per-run random source makes ci flaky without
	// adding coverage.
	if err := quick.Check(prop, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
