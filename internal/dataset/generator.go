package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"datasculpt/internal/textproc"
)

// WeightedPhrase is a spec-level indicative phrase with usage weight and
// design precision (see KeywordSignal).
type WeightedPhrase struct {
	Phrase   string
	Weight   float64
	Strength float64
}

// ClassSpec describes one class of a synthetic dataset.
type ClassSpec struct {
	// Name is the human-readable class name used in prompts.
	Name string
	// Keywords are the class's indicative phrases. Their count controls
	// per-LF coverage: larger pools spread the signal thinner, which is
	// how Agnews reproduces the paper's very low (0.003) per-LF coverage.
	Keywords []WeightedPhrase
	// Topics are weak-signal filler words mixed into documents of this
	// class at Spec.TopicRate. They let the end model generalize beyond
	// keyword boundaries, the role BERT features play in the paper.
	Topics []string
}

// Spec fully describes a synthetic dataset generator. All randomness comes
// from the seed passed to Generate, so a (Spec, seed) pair is reproducible.
type Spec struct {
	Name    string
	Task    TaskType
	Classes []ClassSpec
	// Priors are class marginals; they must sum to ~1.
	Priors []float64
	// Split sizes (Table 1 of the paper).
	TrainSize, ValidSize, TestSize int
	// Document length profile (tokens). IMDB/Yelp are long, Youtube/SMS
	// short; lengths drive the LLM token accounting of Figures 3-4.
	MeanLen, StdLen int
	// KeywordRate is the Poisson mean of indicative-keyword insertions
	// per (non-hard) document.
	KeywordRate float64
	// CrossNoise is the probability that a keyword insertion draws from a
	// *wrong* class pool (weighted toward weak keywords). It bounds LF
	// precision away from 1.
	CrossNoise float64
	// HardFraction is the share of documents generated without any
	// indicative keywords or topic words: irreducibly hard instances that
	// keep total LF coverage below 1 and end-model accuracy in the
	// paper's bands.
	HardFraction float64
	// TopicRate is the per-token probability of drawing from the class's
	// topic pool instead of neutral filler.
	TopicRate float64
	// DefaultClass, Imbalanced, TrainLabeled mirror the Dataset fields.
	DefaultClass int
	Imbalanced   bool
	TrainLabeled bool
	// Filler is extra domain-flavoured neutral vocabulary appended to the
	// shared background pool.
	Filler []string
	// TaskDescription and InstanceNoun feed the prompt templates.
	TaskDescription string
	InstanceNoun    string
	// DistractorRate (relation tasks only) is the probability that a
	// passage carries a second, non-target entity pair with its own
	// relation phrase — the cases entity-aware LFs exist to get right.
	DistractorRate float64
}

// Generate builds the dataset with the given seed. scale resizes every
// split proportionally: values in (0,1) shrink them (floored at small
// minimums) so tests and examples can run quickly, scale 1 reproduces the
// paper's Table 1 sizes, and scale > 1 grows the corpus for out-of-core
// experiments (e.g. 100 yields a 100x train split from the same spec).
func (s *Spec) Generate(seed int64, scale float64) (*Dataset, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if scale <= 0 {
		return nil, fmt.Errorf("spec %s: scale %v must be positive", s.Name, scale)
	}
	signals := make([]KeywordSignal, 0, 256)
	for c, cs := range s.Classes {
		for _, kw := range cs.Keywords {
			phrase, n := textproc.NormalizePhrase(kw.Phrase)
			if n == 0 || n > textproc.MaxKeywordLen {
				return nil, fmt.Errorf("spec %s: keyword %q not a 1-3 gram", s.Name, kw.Phrase)
			}
			signals = append(signals, KeywordSignal{
				Phrase:   phrase,
				Class:    c,
				Strength: kw.Strength,
				Weight:   kw.Weight,
			})
		}
	}
	table, err := NewSignalTable(len(s.Classes), signals)
	if err != nil {
		return nil, fmt.Errorf("spec %s: %w", s.Name, err)
	}

	g := &generator{
		spec:  s,
		table: table,
		rng:   rand.New(rand.NewSource(seed)),
	}
	if err := g.prepare(); err != nil {
		return nil, err
	}

	scaled := func(n, min int) int {
		v := int(math.Round(float64(n) * scale))
		if v < min {
			v = min
		}
		return v
	}
	d := &Dataset{
		Name:            s.Name,
		Task:            s.Task,
		ClassNames:      classNames(s.Classes),
		DefaultClass:    s.DefaultClass,
		Imbalanced:      s.Imbalanced,
		TrainLabeled:    s.TrainLabeled,
		Signal:          table,
		TaskDescription: s.TaskDescription,
		InstanceNoun:    s.InstanceNoun,
	}
	d.Train = g.split(scaled(s.TrainSize, 60), s.TrainLabeled)
	d.Valid = g.split(scaled(s.ValidSize, 24), true)
	d.Test = g.split(scaled(s.TestSize, 24), true)
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("generated dataset invalid: %w", err)
	}
	return d, nil
}

func (s *Spec) validate() error {
	if len(s.Classes) < 2 {
		return fmt.Errorf("spec %s: need >=2 classes", s.Name)
	}
	if len(s.Priors) != len(s.Classes) {
		return fmt.Errorf("spec %s: %d priors for %d classes", s.Name, len(s.Priors), len(s.Classes))
	}
	var sum float64
	for _, p := range s.Priors {
		if p <= 0 {
			return fmt.Errorf("spec %s: non-positive prior", s.Name)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("spec %s: priors sum to %v, want 1", s.Name, sum)
	}
	if s.MeanLen < 5 {
		return fmt.Errorf("spec %s: mean length %d too short", s.Name, s.MeanLen)
	}
	if s.CrossNoise < 0 || s.CrossNoise >= 1 {
		return fmt.Errorf("spec %s: cross noise %v outside [0,1)", s.Name, s.CrossNoise)
	}
	if s.HardFraction < 0 || s.HardFraction >= 1 {
		return fmt.Errorf("spec %s: hard fraction %v outside [0,1)", s.Name, s.HardFraction)
	}
	return nil
}

func classNames(classes []ClassSpec) []string {
	out := make([]string, len(classes))
	for i, c := range classes {
		out[i] = c.Name
	}
	return out
}

// generator holds the per-run sampling state.
type generator struct {
	spec  *Spec
	table *SignalTable
	rng   *rand.Rand

	filler []string // background + domain filler, minus keyword unigrams
	// per-class cumulative keyword weights for O(log n) sampling
	kwCum [][]float64
	// per-class cross-contamination pools: (1-strength)-weighted
	crossCum [][]float64
	nextID   int
}

// prepare precomputes sampling tables and scrubs keyword unigrams out of
// the filler pools so filler can never silently act as class signal.
func (g *generator) prepare() error {
	kwTokens := make(map[string]struct{})
	for c := range g.spec.Classes {
		for _, s := range g.table.Class(c) {
			kwTokens[s.Phrase] = struct{}{}
		}
	}
	pool := make([]string, 0, len(backgroundWords)+len(g.spec.Filler))
	for _, w := range append(append([]string{}, backgroundWords...), g.spec.Filler...) {
		if _, bad := kwTokens[w]; bad {
			continue
		}
		if textproc.IsStopword(w) {
			continue
		}
		pool = append(pool, w)
	}
	if len(pool) < 50 {
		return fmt.Errorf("spec %s: filler pool too small (%d)", g.spec.Name, len(pool))
	}
	g.filler = pool

	k := g.table.NumClasses()
	g.kwCum = make([][]float64, k)
	g.crossCum = make([][]float64, k)
	for c := 0; c < k; c++ {
		list := g.table.Class(c)
		cum := make([]float64, len(list))
		cross := make([]float64, len(list))
		var acc, accX float64
		for i, s := range list {
			acc += s.Weight
			cum[i] = acc
			// Weak keywords leak into other classes more than strong ones.
			accX += s.Weight * (1.05 - s.Strength)
			cross[i] = accX
		}
		g.kwCum[c] = cum
		g.crossCum[c] = cross
	}
	// Topic words must not shadow keywords either.
	for ci, cs := range g.spec.Classes {
		for _, t := range cs.Topics {
			if _, bad := kwTokens[t]; bad {
				return fmt.Errorf("spec %s: class %d topic %q collides with a keyword", g.spec.Name, ci, t)
			}
		}
	}
	return nil
}

func (g *generator) split(n int, labeled bool) []*Example {
	out := make([]*Example, n)
	for i := 0; i < n; i++ {
		var e *Example
		if g.spec.Task == RelationClassification {
			e = g.relationExample()
		} else {
			e = g.textExample()
		}
		e.ID = i
		if !labeled {
			e.Label = NoLabel
		}
		out[i] = e
	}
	return out
}

// sampleClass draws a class from the priors.
func (g *generator) sampleClass() int {
	r := g.rng.Float64()
	var acc float64
	for c, p := range g.spec.Priors {
		acc += p
		if r < acc {
			return c
		}
	}
	return len(g.spec.Priors) - 1
}

// sampleCum draws an index from a cumulative weight table.
func sampleCum(rng *rand.Rand, cum []float64) int {
	total := cum[len(cum)-1]
	r := rng.Float64() * total
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sampleKeyword draws a phrase for class c: an own-class keyword by
// weight, or — with probability CrossNoise — a wrong-class keyword
// weighted toward weak phrases.
func (g *generator) sampleKeyword(c int) KeywordSignal {
	if g.table.NumClasses() > 1 && g.rng.Float64() < g.spec.CrossNoise {
		other := g.rng.Intn(g.table.NumClasses() - 1)
		if other >= c {
			other++
		}
		idx := sampleCum(g.rng, g.crossCum[other])
		return g.table.Class(other)[idx]
	}
	idx := sampleCum(g.rng, g.kwCum[c])
	return g.table.Class(c)[idx]
}

func (g *generator) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= g.rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 50 {
			return k
		}
	}
}

func (g *generator) docLen() int {
	l := int(math.Round(float64(g.spec.MeanLen) + g.rng.NormFloat64()*float64(g.spec.StdLen)))
	min := 5
	if l < min {
		l = min
	}
	return l
}

func (g *generator) fillerWord(class int, hard bool) string {
	cs := g.spec.Classes[class]
	if !hard && len(cs.Topics) > 0 && g.rng.Float64() < g.spec.TopicRate {
		return cs.Topics[g.rng.Intn(len(cs.Topics))]
	}
	return g.filler[g.rng.Intn(len(g.filler))]
}

// textExample generates one text-classification passage.
func (g *generator) textExample() *Example {
	c := g.sampleClass()
	hard := g.rng.Float64() < g.spec.HardFraction
	l := g.docLen()
	tokens := make([]string, 0, l+8)
	for i := 0; i < l; i++ {
		tokens = append(tokens, g.fillerWord(c, hard))
	}
	if !hard {
		n := g.poisson(g.spec.KeywordRate)
		if n == 0 {
			n = 1 // non-hard documents always carry at least one signal
		}
		for i := 0; i < n; i++ {
			kw := g.sampleKeyword(c)
			tokens = insertPhrase(g.rng, tokens, kw.Phrase)
		}
	} else if g.rng.Float64() < g.spec.CrossNoise {
		// Hard documents occasionally carry a stray (often weak) keyword
		// from a random class: false-positive mass for imprecise LFs.
		oc := g.rng.Intn(g.table.NumClasses())
		idx := sampleCum(g.rng, g.crossCum[oc])
		tokens = insertPhrase(g.rng, tokens, g.table.Class(oc)[idx].Phrase)
	}
	return &Example{
		Text:   strings.Join(tokens, " "),
		Tokens: tokens,
		Label:  c,
		E1Pos:  -1,
		E2Pos:  -1,
	}
}

// insertPhrase splices the phrase's tokens at a random position.
func insertPhrase(rng *rand.Rand, tokens []string, phrase string) []string {
	parts := strings.Split(phrase, " ")
	pos := rng.Intn(len(tokens) + 1)
	out := make([]string, 0, len(tokens)+len(parts))
	out = append(out, tokens[:pos]...)
	out = append(out, parts...)
	out = append(out, tokens[pos:]...)
	return out
}

// relationExample generates one Spouse-style passage: a target entity pair
// with a relation (or non-relation) phrase between the mentions, plus an
// optional distractor pair elsewhere in the passage.
func (g *generator) relationExample() *Example {
	c := g.sampleClass()
	hard := g.rng.Float64() < g.spec.HardFraction

	e1First := firstNames[g.rng.Intn(len(firstNames))]
	e1Last := lastNames[g.rng.Intn(len(lastNames))]
	e2First := firstNames[g.rng.Intn(len(firstNames))]
	for e2First == e1First {
		e2First = firstNames[g.rng.Intn(len(firstNames))]
	}
	e2Last := lastNames[g.rng.Intn(len(lastNames))]

	lead := g.fillerSeq(c, hard, 3+g.rng.Intn(5))
	var between []string
	if hard {
		between = g.fillerSeq(c, true, 2+g.rng.Intn(3))
	} else {
		kw := g.sampleKeyword(c)
		between = append(between, strings.Split(kw.Phrase, " ")...)
		if g.rng.Float64() < 0.5 {
			between = append(g.fillerSeq(c, false, 1), between...)
		}
	}
	target := g.docLen()
	tailLen := target - len(lead) - len(between) - 4
	if tailLen < 4 {
		tailLen = 4
	}
	tail := g.fillerSeq(c, hard, tailLen)

	tokens := make([]string, 0, target+16)
	tokens = append(tokens, lead...)
	e1Pos := len(tokens)
	tokens = append(tokens, e1First, e1Last)
	tokens = append(tokens, between...)
	e2Pos := len(tokens)
	tokens = append(tokens, e2First, e2Last)
	tokens = append(tokens, tail...)

	// Distractor pair with its own relation phrase, placed well outside
	// the target window: keyword-present-but-wrong-pair noise that plain
	// keyword LFs would mislabel and entity-aware LFs must ignore.
	if g.rng.Float64() < g.spec.DistractorRate {
		d1 := firstNames[g.rng.Intn(len(firstNames))]
		d2 := firstNames[g.rng.Intn(len(firstNames))]
		dc := g.rng.Intn(g.table.NumClasses())
		idx := sampleCum(g.rng, g.kwCum[dc])
		phrase := strings.Split(g.table.Class(dc)[idx].Phrase, " ")
		tokens = append(tokens, g.fillerSeq(c, true, 3)...)
		tokens = append(tokens, d1)
		tokens = append(tokens, phrase...)
		tokens = append(tokens, d2)
	}

	return &Example{
		Text:    strings.Join(tokens, " "),
		Tokens:  tokens,
		Label:   c,
		Entity1: e1First + " " + e1Last,
		Entity2: e2First + " " + e2Last,
		E1Pos:   e1Pos,
		E2Pos:   e2Pos,
	}
}

func (g *generator) fillerSeq(class int, hard bool, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = g.fillerWord(class, hard)
	}
	return out
}
