package dataset

import (
	"fmt"
	"sort"
)

// KeywordSignal records the generator's ground truth about one indicative
// phrase: which class it signals, how precisely, and how frequently it is
// used. The table doubles as the "world knowledge" of the simulated LLM —
// a real LLM knows that "subscribe" signals YouTube comment spam; here
// that knowledge is explicit and perturbable.
type KeywordSignal struct {
	// Phrase is the canonical space-joined n-gram (1-3 tokens).
	Phrase string
	// Class is the signalled class index.
	Class int
	// Strength in (0,1] is the design precision: strong phrases almost
	// never appear in other classes, weak ones leak. It feeds both the
	// generator's cross-class contamination and the expert baseline's
	// keyword ranking.
	Strength float64
	// Weight is the relative within-class usage frequency. Common
	// phrases (high weight) yield high-coverage LFs, the kind human
	// experts picked for the WRENCH benchmark.
	Weight float64
}

// SignalTable indexes keyword signals by phrase and by class.
type SignalTable struct {
	byPhrase map[string]KeywordSignal
	byClass  [][]KeywordSignal
}

// NewSignalTable builds a table over k classes from the given signals.
// Duplicate phrases or out-of-range classes are rejected so generator
// specs fail loudly at construction time.
func NewSignalTable(k int, signals []KeywordSignal) (*SignalTable, error) {
	t := &SignalTable{
		byPhrase: make(map[string]KeywordSignal, len(signals)),
		byClass:  make([][]KeywordSignal, k),
	}
	for _, s := range signals {
		if s.Phrase == "" {
			return nil, fmt.Errorf("signal table: empty phrase")
		}
		if s.Class < 0 || s.Class >= k {
			return nil, fmt.Errorf("signal table: phrase %q class %d out of range [0,%d)", s.Phrase, s.Class, k)
		}
		if s.Strength <= 0 || s.Strength > 1 {
			return nil, fmt.Errorf("signal table: phrase %q strength %v outside (0,1]", s.Phrase, s.Strength)
		}
		if s.Weight <= 0 {
			return nil, fmt.Errorf("signal table: phrase %q non-positive weight", s.Phrase)
		}
		if _, dup := t.byPhrase[s.Phrase]; dup {
			return nil, fmt.Errorf("signal table: duplicate phrase %q", s.Phrase)
		}
		t.byPhrase[s.Phrase] = s
		t.byClass[s.Class] = append(t.byClass[s.Class], s)
	}
	for c, list := range t.byClass {
		if len(list) == 0 {
			return nil, fmt.Errorf("signal table: class %d has no signals", c)
		}
		sort.Slice(list, func(i, j int) bool { return list[i].Phrase < list[j].Phrase })
	}
	return t, nil
}

// Lookup returns the signal for a canonical phrase, if any.
func (t *SignalTable) Lookup(phrase string) (KeywordSignal, bool) {
	s, ok := t.byPhrase[phrase]
	return s, ok
}

// Class returns all signals of one class, sorted by phrase for
// deterministic iteration.
func (t *SignalTable) Class(c int) []KeywordSignal {
	if c < 0 || c >= len(t.byClass) {
		return nil
	}
	return t.byClass[c]
}

// NumClasses returns the class cardinality of the table.
func (t *SignalTable) NumClasses() int { return len(t.byClass) }

// Size returns the total number of signals.
func (t *SignalTable) Size() int { return len(t.byPhrase) }

// TopByWeight returns the n highest-weight signals of a class (ties broken
// by phrase), the phrases a human expert would reach for first. The WRENCH
// expert baseline uses it to assemble its hand-designed LF sets.
func (t *SignalTable) TopByWeight(c, n int) []KeywordSignal {
	list := append([]KeywordSignal(nil), t.Class(c)...)
	sort.Slice(list, func(i, j int) bool {
		if list[i].Weight != list[j].Weight {
			return list[i].Weight > list[j].Weight
		}
		return list[i].Phrase < list[j].Phrase
	})
	if n > len(list) {
		n = len(list)
	}
	return list[:n]
}
