package dataset

// The six dataset specs below mirror the WRENCH corpora of Table 1. Split
// sizes are exact; keyword pools, priors, document lengths and noise knobs
// are calibrated (see calibration_test.go) so that LF accuracy, coverage
// and end-model metrics land in the bands the paper reports.

// pool converts a flat phrase list into WeightedPhrases with a graded
// strength/weight mix: roughly 20% common+strong phrases (the ones human
// experts pick — high coverage, high precision), 50% mid, 30% rare+weak.
// Assignment is deterministic by index so specs are reproducible.
func pool(items ...string) []WeightedPhrase {
	seen := make(map[string]struct{}, len(items))
	deduped := make([]string, 0, len(items))
	for _, p := range items {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		deduped = append(deduped, p)
	}
	items = deduped
	out := make([]WeightedPhrase, 0, len(items))
	for i, p := range items {
		var w, s float64
		switch i % 10 {
		case 0, 5:
			w, s = 3.0, 0.95 // common and strong
		case 1, 3, 6, 8:
			w, s = 1.0, 0.82
		case 2, 7:
			w, s = 0.8, 0.72
		default:
			w, s = 0.6, 0.60 // rare and weak
		}
		out = append(out, WeightedPhrase{Phrase: p, Weight: w, Strength: s})
	}
	return out
}

// combine builds bigram phrases "head tail" cycling through both lists
// until n phrases are produced. It lets specs assemble large topical pools
// (Agnews needs ~80 per class) from compact word lists.
func combine(heads, tails []string, n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		h := heads[i%len(heads)]
		t := tails[(i+i/len(heads))%len(tails)]
		out = append(out, h+" "+t)
	}
	return out
}

// YoutubeSpec reproduces the Youtube comment-spam dataset
// (Alberto et al. 2015): 1586/120/250, 2 balanced classes, short comments.
func YoutubeSpec() *Spec {
	return &Spec{
		Name: "youtube",
		Task: TextClassification,
		Classes: []ClassSpec{
			{
				Name: "ham",
				Keywords: pool(
					"love this song", "amazing", "best song", "catchy",
					"beautiful voice", "awesome", "great video", "talented",
					"masterpiece", "classic", "listening", "favorite",
					"lyrics", "chorus", "melody", "on repeat", "gives me chills",
					"childhood", "memories", "legend", "never gets old",
					"still listening", "vocals", "beat", "soundtrack",
					"this tune", "goosebumps", "brilliant song", "underrated",
					"love her voice", "love his voice", "so good", "addicted",
					"cant stop listening", "perfect song", "timeless",
					"my jam", "banger", "dance to this", "feel good",
					"beautiful lyrics", "music taste", "harmony", "acoustic",
					"cover version", "love the beat", "great chorus",
					"best verse", "favorite remix", "amazing duet",
					"love the rhythm", "great intro", "best bridge",
					"favorite album", "amazing vocals", "love the outro",
					"great harmony", "best hook", "stunning performance",
					"pure talent", "musical genius", "instant favorite",
					"repeat forever", "chills every time", "lyrics hit hard",
					"melody of dreams",
				),
				Topics: []string{
					"song", "music", "video", "singer", "band", "album",
					"listen", "play", "sound", "radio", "concert", "tune",
				},
			},
			{
				Name: "spam",
				Keywords: pool(
					"check out", "subscribe", "my channel", "click here",
					"free gift", "visit my", "follow me", "make money",
					"giveaway", "win a", "gift card", "promo code",
					"check my page", "new video up", "sub for sub",
					"link below", "click the link", "earn cash",
					"work from home", "get followers", "free iphone",
					"my new single", "plz subscribe", "spam", "bot",
					"advertisement", "buy now", "discount code", "cheap",
					"limited offer", "visit website", "download free",
					"hack", "generator", "free robux", "get rich",
					"instagram page", "follow back", "share this",
					"like and subscribe", "comment below for", "shoutout",
					"watch my video", "view my profile", "join now",
					"free followers", "win cash", "cheap subs", "instant prize",
					"easy money", "free views", "win an iphone", "cheap likes",
					"instant gift", "easy cash", "free subs", "win followers",
					"claim your gift", "earn from home", "message me now",
					"check the description", "click my name", "visit the site",
					"promo inside", "use my code",
				),
				Topics: []string{
					"channel", "page", "profile", "account", "views",
					"subscribers", "likes", "followers", "promotion", "offer",
				},
			},
		},
		Priors:          []float64{0.51, 0.49},
		TrainSize:       1586,
		ValidSize:       120,
		TestSize:        250,
		MeanLen:         14,
		StdLen:          6,
		KeywordRate:     3.0,
		CrossNoise:      0.18,
		HardFraction:    0.10,
		TopicRate:       0.16,
		DefaultClass:    NoDefaultClass,
		Imbalanced:      false,
		TrainLabeled:    true,
		Filler:          []string{"watch", "video", "youtube", "comment", "first", "viewer"},
		TaskDescription: "a spam detection task. In each iteration, the user will provide a comment for a video. Please decide whether the comment is a spam. (0 for non-spam, 1 for spam)",
		InstanceNoun:    "comment for a video",
	}
}

// SMSSpec reproduces the SMS spam dataset (Almeida et al. 2011):
// 4571/500/500, imbalanced (~13% spam), F1-reported.
func SMSSpec() *Spec {
	return &Spec{
		Name: "sms",
		Task: TextClassification,
		Classes: []ClassSpec{
			{
				Name: "ham",
				Keywords: pool(append([]string{
					"see you", "tonight", "dinner", "meet you", "lol",
					"gonna", "sorry", "tomorrow", "home soon", "pick you up",
					"love you", "miss you", "good night", "good morning",
					"on my way", "call me later", "talk later", "running late",
					"where are you", "be there", "let me know", "no worries",
					"take care", "sleep well", "coffee", "lunch", "movie night",
					"happy birthday", "thanks dear", "see ya", "whats up",
					"come over", "leaving now", "almost there", "stuck in traffic",
					"meeting ended", "class finished", "give me", "ttyl",
					"bring the", "forgot my", "at the station", "train delayed",
					"bus stop", "feeling sick", "doctor appointment",
					"mom said", "dad called", "grandma", "cousin",
					"weekend plans", "holiday", "exam tomorrow", "homework done",
					"library", "gym tonight", "jogging", "groceries",
					"cooking dinner", "recipe"},
					combine(
						[]string{"meet", "call", "text", "visit", "join", "ask", "tell", "remind"},
						[]string{"mum", "dad", "auntie", "sis", "bro", "mate", "granny", "uncle"},
						50)...)...),
				Topics: []string{
					"today", "later", "soon", "really", "maybe", "fine",
					"nice", "went", "going", "come", "wait", "sure",
				},
			},
			{
				Name: "spam",
				Keywords: pool(append([]string{
					"winner", "claim", "prize", "free entry", "txt",
					"call now", "urgent", "cash prize", "guaranteed",
					"ringtone", "mobile offer", "text stop", "subscription",
					"bonus", "voucher", "congratulations you", "selected to receive",
					"click link", "claim now", "award waiting", "free msg",
					"reply yes", "charged", "per week", "unsubscribe",
					"lucky number", "draw", "entry code", "free tones",
					"camcorder", "nokia", "latest phone", "network operator",
					"account statement", "loan approved", "credit offer",
					"lowest rates", "apply now", "no deposit", "casino",
					"jackpot", "betting", "exclusive deal", "limited time",
					"act now", "call this number", "premium rate", "sms alert",
					"service message", "renew now", "expires today",
					"valid until", "redeem", "freephone", "helpline",
					"customer care wins", "identity code", "pin number",
					"dating service", "adult content", "hot singles"},
					combine(
						[]string{"mega", "instant", "exclusive", "special", "weekly", "double", "extra", "secret"},
						[]string{"jackpot", "reward", "giveaway", "coupon", "discount", "rebate", "payout", "upgrade"},
						50)...)...),
				Topics: []string{
					"mobile", "phone", "message", "number", "contact",
					"customer", "service", "offer", "deal", "win",
				},
			},
		},
		Priors:          []float64{0.866, 0.134},
		TrainSize:       4571,
		ValidSize:       500,
		TestSize:        500,
		MeanLen:         16,
		StdLen:          8,
		KeywordRate:     3.0,
		CrossNoise:      0.015,
		HardFraction:    0.22,
		TopicRate:       0.08,
		DefaultClass:    NoDefaultClass,
		Imbalanced:      true,
		TrainLabeled:    true,
		Filler:          []string{"text", "send", "got", "know", "think", "want", "need", "still"},
		TaskDescription: "a spam detection task. In each iteration, the user will provide an SMS text message. Please decide whether the message is a spam. (0 for ham, 1 for spam)",
		InstanceNoun:    "SMS text message",
	}
}

// sentimentIntensifiers combine with base adjectives into bigram phrases,
// growing the sentiment pools toward real review vocabulary size: the
// paper's IMDB/Yelp runs discover 200-330 distinct keywords per run,
// which needs pools far beyond a hand list of adjectives.
var sentimentIntensifiers = []string{
	"truly", "absolutely", "really", "utterly", "simply", "totally",
	"genuinely", "thoroughly", "incredibly", "exceptionally",
}

var sentimentPositiveBases = []string{
	"wonderful", "brilliant", "superb", "delightful", "captivating",
	"charming", "hilarious", "gripping", "stunning", "polished",
	"engaging", "refreshing", "satisfying", "compelling", "moving",
}

var sentimentNegativeBases = []string{
	"terrible", "awful", "boring", "dreadful", "horrible", "tedious",
	"lifeless", "forgettable", "shallow", "sloppy", "dull", "bland",
	"frustrating", "grating", "pointless",
}

var sentimentPositive = []string{
	"wonderful", "brilliant", "excellent", "fantastic", "superb",
	"delightful", "captivating", "masterful", "heartwarming", "charming",
	"hilarious", "gripping", "stunning", "remarkable", "flawless",
	"beautifully done", "highly recommend", "a masterpiece", "must see",
	"loved every minute", "top notch", "truly great", "incredible",
	"outstanding", "impressive", "memorable", "engaging", "refreshing",
	"satisfying", "compelling", "powerful performance", "great cast",
	"perfect pacing", "oscar worthy", "instant classic", "pure joy",
	"exceeded expectations", "thoroughly enjoyed", "five stars",
	"best ever", "absolutely loved", "breath of fresh",
	"beautifully shot", "clever writing", "strong performances",
	"emotionally resonant", "laugh out loud", "crowd pleaser",
	"worth watching", "pleasant surprise", "rich characters",
	"tight script", "visually gorgeous", "soars", "triumph",
	"dazzling", "irresistible", "exquisite", "phenomenal", "sublime",
	"magnificent", "riveting", "enchanting", "uplifting", "poignant",
	"well crafted", "well acted", "well written", "smartly directed",
	"never boring",
}

var sentimentNegative = []string{
	"terrible", "awful", "boring", "dreadful", "horrible",
	"waste of time", "disappointing", "mediocre", "predictable",
	"poorly written", "bad acting", "painful to watch", "fell flat",
	"uninspired", "tedious", "lifeless", "forgettable", "a mess",
	"cringe worthy", "laughably bad", "avoid this", "worst ever",
	"total garbage", "utterly pointless", "snooze fest", "overrated",
	"cliched", "shallow", "incoherent", "sloppy", "cheap looking",
	"wooden dialogue", "no chemistry", "plot holes", "falls apart",
	"drags on", "makes no sense", "badly edited", "lame", "dull",
	"unwatchable", "insulting", "half baked", "amateurish", "clumsy",
	"pretentious", "soulless", "grating", "annoying characters",
	"weak script", "stale", "bland", "frustrating", "underwhelming",
	"skip it", "one star", "demanded a refund", "regret watching",
	"barely finished", "fast forwarded", "cash grab", "lazy writing",
	"awkward pacing", "flat jokes", "miscast", "overacted",
	"ridiculous plot", "nonsensical ending", "zero tension",
	"instantly forgettable",
}

// IMDBSpec reproduces the IMDB movie-review sentiment dataset (Maas et
// al. 2011): 20000/2500/2500, 2 balanced classes, long reviews.
func IMDBSpec() *Spec {
	return &Spec{
		Name: "imdb",
		Task: TextClassification,
		Classes: []ClassSpec{
			{
				Name: "negative",
				Keywords: pool(append(append([]string{}, sentimentNegative...),
					combine(sentimentIntensifiers, sentimentNegativeBases, 90)...)...),
				Topics: []string{
					"sequel", "remake", "budget", "trailer", "runtime",
					"script", "editing", "dialogue",
				},
			},
			{
				Name: "positive",
				Keywords: pool(append(append([]string{}, sentimentPositive...),
					combine(sentimentIntensifiers, sentimentPositiveBases, 90)...)...),
				Topics: []string{
					"director", "performance", "cinematography", "scene",
					"character", "soundtrack", "screenplay", "ending",
				},
			},
		},
		Priors:       []float64{0.5, 0.5},
		TrainSize:    20000,
		ValidSize:    2500,
		TestSize:     2500,
		MeanLen:      170,
		StdLen:       50,
		KeywordRate:  4.6,
		CrossNoise:   0.26,
		HardFraction: 0.07,
		TopicRate:    0.05,
		DefaultClass: NoDefaultClass,
		Imbalanced:   false,
		TrainLabeled: true,
		Filler: []string{
			"movie", "film", "actor", "actress", "watch", "plot",
			"story", "screen", "role", "cast", "cinema", "genre",
		},
		TaskDescription: "a sentiment analysis task. In each iteration, the user will provide a movie review. Please decide whether the review is positive or negative. (0 for negative, 1 for positive)",
		InstanceNoun:    "movie review",
	}
}

// YelpSpec reproduces the Yelp review-sentiment dataset (Zhang et al.
// 2015): 30400/3800/3800, 2 balanced classes, medium-length reviews.
func YelpSpec() *Spec {
	negative := append([]string{}, sentimentNegative[:40]...)
	negative = append(negative,
		"rude staff", "cold food", "overpriced", "long wait", "dirty",
		"never coming back", "stale bread", "soggy fries", "tasteless",
		"undercooked", "burnt", "slow service", "tiny portions",
		"ripoff", "filthy tables", "unfriendly", "ignored us",
		"wrong order", "food poisoning", "smelled bad", "greasy",
		"watered down", "flavorless", "stingy", "health code",
		"disgusting", "inedible", "rubbery", "lukewarm", "crowded and loud",
	)
	positive := append([]string{}, sentimentPositive[:40]...)
	positive = append(positive,
		"friendly staff", "delicious", "cozy atmosphere", "great value",
		"fresh ingredients", "generous portions", "quick service",
		"mouth watering", "hidden gem", "will be back", "tasty",
		"attentive server", "clean and bright", "perfectly cooked",
		"amazing brunch", "best pizza", "great happy hour", "juicy",
		"crispy", "homemade", "authentic flavors", "melts in mouth",
		"reasonable prices", "warm welcome", "lovely patio",
		"fast friendly", "savory", "decadent dessert", "rich flavor",
		"great cocktails",
	)
	negative = append(negative, combine(sentimentIntensifiers, sentimentNegativeBases, 70)...)
	positive = append(positive, combine(sentimentIntensifiers, sentimentPositiveBases, 70)...)
	return &Spec{
		Name: "yelp",
		Task: TextClassification,
		Classes: []ClassSpec{
			{
				Name:     "negative",
				Keywords: pool(negative...),
				Topics: []string{
					"wait", "manager", "bill", "refund", "complaint",
					"order", "table", "minutes",
				},
			},
			{
				Name:     "positive",
				Keywords: pool(positive...),
				Topics: []string{
					"menu", "chef", "dish", "flavor", "dessert",
					"brunch", "patio", "server",
				},
			},
		},
		Priors:       []float64{0.5, 0.5},
		TrainSize:    30400,
		ValidSize:    3800,
		TestSize:     3800,
		MeanLen:      120,
		StdLen:       40,
		KeywordRate:  4.4,
		CrossNoise:   0.22,
		HardFraction: 0.08,
		TopicRate:    0.05,
		DefaultClass: NoDefaultClass,
		Imbalanced:   false,
		TrainLabeled: true,
		Filler: []string{
			"restaurant", "place", "food", "meal", "drink", "visit",
			"staff", "price", "spot", "location", "kitchen",
		},
		TaskDescription: "a sentiment analysis task. In each iteration, the user will provide a restaurant review. Please decide whether the review is positive or negative. (0 for negative, 1 for positive)",
		InstanceNoun:    "restaurant review",
	}
}

// AgnewsSpec reproduces the AG News topic dataset (Zhang et al. 2015):
// 96000/12000/12000, 4 balanced classes. Large per-class keyword pools
// spread signal thin, reproducing the paper's very low per-LF coverage
// (~0.003) and sub-0.5 total coverage on this dataset.
func AgnewsSpec() *Spec {
	world := append(combine(
		[]string{"peace", "border", "ceasefire", "embassy", "treaty", "regime", "rebel", "refugee", "sanctions", "hostage"},
		[]string{"talks", "dispute", "accord", "crisis", "agreement", "deal", "violation", "zone", "summit", "pact"},
		95),
		"minister", "parliament", "diplomat", "coup", "insurgency",
		"militants", "warplanes", "troops deployed", "united nations",
		"foreign ministry", "prime minister", "election fraud",
		"humanitarian aid", "war crimes", "nuclear program",
		"territorial waters", "annexation", "extradition", "asylum seekers",
		"peacekeepers", "airstrike", "embargo", "communique", "envoy",
		"separatists", "armistice", "detainees", "occupation forces",
		"diplomatic ties", "state visit", "bilateral relations",
		"cabinet reshuffle", "martial law", "curfew imposed",
		"referendum", "constitutional court", "genocide tribunal",
		"liberation front", "armed convoy", "displaced civilians",
	)
	sports := append(combine(
		[]string{"championship", "playoff", "season", "league", "tournament", "quarterback", "striker", "coach", "roster", "transfer"},
		[]string{"victory", "defeat", "opener", "finale", "clash", "standings", "title", "record", "upset", "rivalry"},
		95),
		"touchdown", "home run", "hat trick", "grand slam", "penalty kick",
		"free agent", "draft pick", "world cup", "super bowl", "olympics",
		"gold medal", "sprint", "marathon", "knockout", "heavyweight",
		"innings", "wicket", "overtime thriller", "buzzer beater",
		"shutout", "no hitter", "pole position", "grand prix",
		"relegation", "semifinal", "locker room", "head coach fired",
		"contract extension", "injured reserve", "all star",
		"batting average", "goalkeeper", "midfielder", "power play",
		"slam dunk", "triple double", "photo finish", "world champion",
		"undefeated streak", "hall of fame",
	)
	business := append(combine(
		[]string{"earnings", "profit", "merger", "shares", "stocks", "quarterly", "revenue", "dividend", "takeover", "ipo"},
		[]string{"forecast", "surge", "slump", "outlook", "report", "growth", "decline", "rally", "target", "estimate"},
		95),
		"wall street", "federal reserve", "interest rates", "inflation",
		"recession fears", "oil prices", "crude futures", "bankruptcy",
		"layoffs announced", "hedge fund", "venture capital", "startup valuation",
		"retail sales", "consumer spending", "trade deficit", "tariffs",
		"antitrust probe", "shareholders meeting", "ceo resigns",
		"stock buyback", "bond yields", "credit rating", "mortgage rates",
		"housing market", "gross domestic", "market capitalization",
		"acquisition deal", "restructuring plan", "cost cutting",
		"supply chain", "holiday shopping", "price hike", "fiscal year",
		"annual meeting", "insider trading", "securities fraud",
		"pension fund", "currency exchange", "economic stimulus",
		"balance sheet",
	)
	scitech := append(combine(
		[]string{"software", "internet", "wireless", "satellite", "browser", "chip", "server", "spacecraft", "robot", "telescope"},
		[]string{"launch", "upgrade", "release", "rollout", "flaw", "patch", "standard", "breakthrough", "prototype", "mission"},
		95),
		"scientists discovered", "researchers", "genome", "stem cells",
		"clinical trial", "vaccine", "mars rover", "space station",
		"solar panels", "broadband", "search engine", "operating system",
		"open source", "security vulnerability", "data breach", "hackers",
		"encryption", "semiconductor", "nanotechnology", "artificial intelligence",
		"machine learning", "quantum computing", "fiber optic",
		"video game console", "smartphone sales", "silicon valley",
		"patent lawsuit", "beta version", "source code", "firmware",
		"processor speed", "hard drive", "digital music", "file sharing",
		"spam filter", "antivirus", "climate study", "fossil discovery",
		"particle physics", "gene therapy",
	)
	return &Spec{
		Name: "agnews",
		Task: TextClassification,
		Classes: []ClassSpec{
			{Name: "world", Keywords: pool(world...), Topics: []string{"government", "capital", "region", "crisis", "officials"}},
			{Name: "sports", Keywords: pool(sports...), Topics: []string{"game", "match", "fans", "stadium", "score"}},
			{Name: "business", Keywords: pool(business...), Topics: []string{"investors", "analysts", "quarter", "percent", "billion"}},
			{Name: "scitech", Keywords: pool(scitech...), Topics: []string{"users", "devices", "study", "lab", "technology"}},
		},
		Priors:       []float64{0.25, 0.25, 0.25, 0.25},
		TrainSize:    96000,
		ValidSize:    12000,
		TestSize:     12000,
		MeanLen:      38,
		StdLen:       10,
		KeywordRate:  3.8,
		CrossNoise:   0.12,
		HardFraction: 0.30,
		TopicRate:    0.08,
		DefaultClass: NoDefaultClass,
		Imbalanced:   false,
		TrainLabeled: true,
		Filler: []string{
			"reuters", "reported", "announced", "statement", "yesterday",
			"sources", "press", "update", "agency", "official",
		},
		TaskDescription: "a news topic classification task. In each iteration, the user will provide a news article snippet. Please classify it into one of four topics. (0 for world, 1 for sports, 2 for business, 3 for sci/tech)",
		InstanceNoun:    "news article snippet",
	}
}

// SpouseSpec reproduces the Spouse relation-extraction dataset (Corney et
// al. 2016): 22254/2811/2701, heavily imbalanced (few positive pairs),
// unlabeled train split, F1-reported, default class "not spouses".
func SpouseSpec() *Spec {
	return &Spec{
		Name: "spouse",
		Task: RelationClassification,
		Classes: []ClassSpec{
			{
				Name: "not-spouses",
				Keywords: pool(
					"brother of", "sister of", "colleague", "business partner",
					"met with", "interviewed", "succeeded", "father of",
					"daughter of", "worked with", "teammate of", "rival of",
					"boss of", "president of", "friend of", "cousin of",
					"mentor of", "lawyer for", "spokesman for", "aide to",
					"deputy of", "coauthor with", "costar with", "neighbor of",
					"classmate of", "advisor to", "assistant to", "critic of",
					"opponent of", "successor to", "predecessor of",
					"negotiated with", "debated", "sued", "hired",
					"appointed by", "nominated by", "campaigned with",
					"shared stage with", "collaborated with",
				),
				Topics: []string{
					"company", "campaign", "conference", "interview",
					"meeting", "project", "committee",
				},
			},
			{
				Name: "spouses",
				// A compact pool of common marriage phrases: real spouse
				// mentions reuse the same few words ("married", "wife",
				// "wedding"), which is what lets 50 queries discover most
				// of the positive-class signal.
				Keywords: pool(
					"married", "wife of", "husband of", "wedding",
					"spouse of", "newlyweds", "honeymoon with",
					"marriage to", "tied the knot", "engaged to",
					"wedded", "widow of", "remarried", "down the aisle",
				),
				Topics: []string{
					"ceremony", "couple", "reception", "ring", "vows",
				},
			},
		},
		Priors:         []float64{0.915, 0.085},
		TrainSize:      22254,
		ValidSize:      2811,
		TestSize:       2701,
		MeanLen:        55,
		StdLen:         15,
		KeywordRate:    1.0,
		CrossNoise:     0.01,
		HardFraction:   0.28,
		TopicRate:      0.05,
		DefaultClass:   0,
		Imbalanced:     true,
		TrainLabeled:   false,
		DistractorRate: 0.25,
		Filler: []string{
			"announced", "reported", "according", "sources", "press",
			"told", "statement", "appeared", "attended", "spoke",
		},
		TaskDescription: "a relation classification task. In each iteration, the user will provide a news passage mentioning two people. Please decide whether the two target people are spouses. (0 for not spouses, 1 for spouses)",
		InstanceNoun:    "news passage mentioning two people",
	}
}
