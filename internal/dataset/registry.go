package dataset

import (
	"fmt"
	"sort"
)

// specFactories maps dataset names to their spec constructors. The order
// of Names() follows Table 1 of the paper.
var specFactories = map[string]func() *Spec{
	"youtube": YoutubeSpec,
	"sms":     SMSSpec,
	"imdb":    IMDBSpec,
	"yelp":    YelpSpec,
	"agnews":  AgnewsSpec,
	"spouse":  SpouseSpec,
	// bonus dataset beyond the paper's six (kept out of paperOrder so the
	// reproduced tables stay comparable)
	"trec": TRECSpec,
}

// paperOrder is the dataset ordering used in every table of the paper.
var paperOrder = []string{"youtube", "sms", "imdb", "yelp", "agnews", "spouse"}

// PaperNames returns the paper's canonical six datasets in table order.
func PaperNames() []string { return append([]string(nil), paperOrder...) }

// Names returns all registered dataset names: the paper's six in table
// order, then any extras alphabetically.
func Names() []string {
	out := append([]string(nil), paperOrder...)
	// Defensive: include any extra registrations alphabetically after the
	// canonical six.
	var extra []string
	for name := range specFactories {
		found := false
		for _, p := range paperOrder {
			if p == name {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// SpecFor returns a fresh Spec for the named dataset.
func SpecFor(name string) (*Spec, error) {
	f, ok := specFactories[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown name %q (have %v)", name, Names())
	}
	return f(), nil
}

// Load generates the named dataset at the given seed and scale. Scale 1
// reproduces the paper's Table 1 split sizes.
func Load(name string, seed int64, scale float64) (*Dataset, error) {
	spec, err := SpecFor(name)
	if err != nil {
		return nil, err
	}
	d, err := spec.Generate(seed, scale)
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", name, err)
	}
	return d, nil
}
