package dataset

import (
	"math"
	"reflect"
	"testing"

	"datasculpt/internal/textproc"
)

func TestNamesOrder(t *testing.T) {
	want := []string{"youtube", "sms", "imdb", "yelp", "agnews", "spouse", "trec"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	// the paper's canonical six come first, in table order
	if got := PaperNames(); !reflect.DeepEqual(got, want[:6]) {
		t.Errorf("PaperNames() = %v, want %v", got, want[:6])
	}
}

func TestTRECBonusDataset(t *testing.T) {
	d, err := Load("trec", 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumClasses() != 6 {
		t.Errorf("trec classes = %d, want 6", d.NumClasses())
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nonexistent", 1, 1); err == nil {
		t.Fatal("Load(nonexistent) succeeded")
	}
}

func TestLoadAllSmallScale(t *testing.T) {
	for _, name := range Names() {
		d, err := Load(name, 7, 0.02)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if d.Signal == nil || d.Signal.Size() == 0 {
			t.Errorf("%s: empty signal table", name)
		}
		if d.TaskDescription == "" || d.InstanceNoun == "" {
			t.Errorf("%s: missing prompt metadata", name)
		}
	}
}

func TestTable1SplitSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation in -short mode")
	}
	want := map[string][3]int{
		"youtube": {1586, 120, 250},
		"sms":     {4571, 500, 500},
		"imdb":    {20000, 2500, 2500},
		"yelp":    {30400, 3800, 3800},
		"agnews":  {96000, 12000, 12000},
		"spouse":  {22254, 2811, 2701},
	}
	classes := map[string]int{
		"youtube": 2, "sms": 2, "imdb": 2, "yelp": 2, "agnews": 4, "spouse": 2,
	}
	for name, sizes := range want {
		d, err := Load(name, 1, 1)
		if err != nil {
			t.Fatalf("Load(%s): %v", name, err)
		}
		got := [3]int{len(d.Train), len(d.Valid), len(d.Test)}
		if got != sizes {
			t.Errorf("%s splits = %v, want %v", name, got, sizes)
		}
		if d.NumClasses() != classes[name] {
			t.Errorf("%s classes = %d, want %d", name, d.NumClasses(), classes[name])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Load("youtube", 42, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("youtube", 42, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Train) != len(b.Train) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Train), len(b.Train))
	}
	for i := range a.Train {
		if a.Train[i].Text != b.Train[i].Text || a.Train[i].Label != b.Train[i].Label {
			t.Fatalf("train[%d] differs across identical seeds", i)
		}
	}
	c, err := Load("youtube", 43, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Train {
		if a.Train[i].Text == c.Train[i].Text {
			same++
		}
	}
	if same == len(a.Train) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestTokensMatchTokenizer(t *testing.T) {
	for _, name := range []string{"youtube", "spouse"} {
		d, err := Load(name, 3, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range d.Train[:20] {
			if got := textproc.Tokenize(e.Text); !reflect.DeepEqual(got, e.Tokens) {
				t.Fatalf("%s: cached tokens diverge from Tokenize for %q", name, e.Text)
			}
		}
	}
}

func TestClassPriorsApprox(t *testing.T) {
	d, err := Load("sms", 11, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, d.NumClasses())
	for _, e := range d.Test {
		counts[e.Label]++
	}
	spamFrac := float64(counts[1]) / float64(len(d.Test))
	if spamFrac < 0.07 || spamFrac > 0.22 {
		t.Errorf("sms spam fraction = %v, want ~0.134", spamFrac)
	}
}

func TestSpouseProperties(t *testing.T) {
	d, err := Load("spouse", 5, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if d.TrainLabeled {
		t.Error("spouse train should be unlabeled")
	}
	if d.DefaultClass != 0 {
		t.Errorf("spouse default class = %d, want 0", d.DefaultClass)
	}
	for _, e := range d.Train {
		if e.Label != NoLabel {
			t.Fatal("spouse train example has a label")
		}
	}
	for _, e := range d.Valid {
		if e.Entity1 == "" || e.Entity2 == "" {
			t.Fatal("spouse example missing entities")
		}
		if e.E1Pos < 0 || e.E2Pos <= e.E1Pos || e.E2Pos >= len(e.Tokens) {
			t.Fatalf("bad entity positions %d,%d in %d tokens", e.E1Pos, e.E2Pos, len(e.Tokens))
		}
		// the tokens at the recorded positions must spell the entities
		e1 := e.Tokens[e.E1Pos] + " " + e.Tokens[e.E1Pos+1]
		e2 := e.Tokens[e.E2Pos] + " " + e.Tokens[e.E2Pos+1]
		if e1 != e.Entity1 || e2 != e.Entity2 {
			t.Fatalf("entity positions point at %q/%q, want %q/%q", e1, e2, e.Entity1, e.Entity2)
		}
	}
}

func TestSignalTableValidation(t *testing.T) {
	_, err := NewSignalTable(2, []KeywordSignal{
		{Phrase: "a", Class: 0, Strength: 0.9, Weight: 1},
		{Phrase: "a", Class: 1, Strength: 0.9, Weight: 1},
	})
	if err == nil {
		t.Error("duplicate phrase accepted")
	}
	_, err = NewSignalTable(2, []KeywordSignal{
		{Phrase: "a", Class: 5, Strength: 0.9, Weight: 1},
	})
	if err == nil {
		t.Error("out-of-range class accepted")
	}
	_, err = NewSignalTable(2, []KeywordSignal{
		{Phrase: "a", Class: 0, Strength: 0.9, Weight: 1},
	})
	if err == nil {
		t.Error("class without signals accepted")
	}
	_, err = NewSignalTable(1, []KeywordSignal{
		{Phrase: "a", Class: 0, Strength: 1.5, Weight: 1},
	})
	if err == nil {
		t.Error("strength > 1 accepted")
	}
}

func TestSignalTableTopByWeight(t *testing.T) {
	tbl, err := NewSignalTable(2, []KeywordSignal{
		{Phrase: "rare", Class: 0, Strength: 0.9, Weight: 0.5},
		{Phrase: "common", Class: 0, Strength: 0.9, Weight: 3},
		{Phrase: "mid", Class: 0, Strength: 0.9, Weight: 1},
		{Phrase: "other", Class: 1, Strength: 0.9, Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	top := tbl.TopByWeight(0, 2)
	if len(top) != 2 || top[0].Phrase != "common" || top[1].Phrase != "mid" {
		t.Errorf("TopByWeight = %v", top)
	}
	if got := tbl.TopByWeight(0, 99); len(got) != 3 {
		t.Errorf("TopByWeight over-request = %d items", len(got))
	}
	if got := tbl.TopByWeight(9, 1); got != nil {
		t.Errorf("TopByWeight bad class = %v", got)
	}
}

func TestSpecValidation(t *testing.T) {
	s := YoutubeSpec()
	s.Priors = []float64{0.6, 0.6}
	if _, err := s.Generate(1, 0.1); err == nil {
		t.Error("priors not summing to 1 accepted")
	}
	s2 := YoutubeSpec()
	if _, err := s2.Generate(1, 0); err == nil {
		t.Error("scale 0 accepted")
	}
	s3 := YoutubeSpec()
	s3.CrossNoise = 1.0
	if _, err := s3.Generate(1, 0.1); err == nil {
		t.Error("cross noise 1.0 accepted")
	}
}

// TestKeywordCalibration verifies the central property the substitution
// argument rests on: generated keyword occurrences carry the designed
// class signal. Strong keywords must have high empirical precision, and
// per-keyword coverage must sit in the low single digits of percent
// (the paper's LF Cov band for DataSculpt LFs).
func TestKeywordCalibration(t *testing.T) {
	d, err := Load("youtube", 9, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var precs []float64
	var covs []float64
	for c := 0; c < d.NumClasses(); c++ {
		for _, sig := range d.Signal.Class(c) {
			active, correct := 0, 0
			for _, e := range d.Train {
				if textproc.ContainsPhrase(e.Tokens, sig.Phrase) {
					active++
					if e.Label == c {
						correct++
					}
				}
			}
			if active < 5 {
				continue
			}
			precs = append(precs, float64(correct)/float64(active))
			covs = append(covs, float64(active)/float64(len(d.Train)))
		}
	}
	if len(precs) < 20 {
		t.Fatalf("only %d keywords active enough to measure", len(precs))
	}
	meanPrec := mean(precs)
	meanCov := mean(covs)
	if meanPrec < 0.60 || meanPrec > 0.95 {
		t.Errorf("mean keyword precision = %.3f, want in [0.60,0.95]", meanPrec)
	}
	if meanCov < 0.005 || meanCov > 0.08 {
		t.Errorf("mean keyword coverage = %.4f, want in [0.005,0.08]", meanCov)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	return s / float64(len(xs))
}

func TestHelpersLabelsTexts(t *testing.T) {
	d, err := Load("youtube", 2, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	ls := Labels(d.Valid)
	ts := Texts(d.Valid)
	tc := TokenCorpus(d.Valid)
	if len(ls) != len(d.Valid) || len(ts) != len(d.Valid) || len(tc) != len(d.Valid) {
		t.Fatal("helper lengths mismatch")
	}
	for i, e := range d.Valid {
		if ls[i] != e.Label || ts[i] != e.Text || len(tc[i]) != len(e.Tokens) {
			t.Fatalf("helper content mismatch at %d", i)
		}
	}
}

func TestMetricName(t *testing.T) {
	d := &Dataset{Imbalanced: true}
	if d.MetricName() != "F1" {
		t.Error("imbalanced metric should be F1")
	}
	d.Imbalanced = false
	if d.MetricName() != "accuracy" {
		t.Error("balanced metric should be accuracy")
	}
}
