package dataset

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// This file implements interchange with the WRENCH benchmark's on-disk
// JSON layout, so the pipeline can run against real corpora when they are
// available (the synthetic generators remain the offline default):
//
//	<dir>/meta.json    {"name": ..., "task": ..., "classes": [...], ...}
//	<dir>/train.json   {"0": {"label": 1, "data": {"text": ...}}, ...}
//	<dir>/valid.json
//	<dir>/test.json
//
// Each example object carries the instance under "data"; relation tasks
// add "entity1"/"entity2". Unlabeled splits use label -1. Example ids are
// the JSON object keys (decimal strings), preserved as Example.ID.

// metaFile mirrors meta.json.
type metaFile struct {
	Name         string   `json:"name"`
	Task         string   `json:"task"` // "text" | "relation"
	Classes      []string `json:"classes"`
	DefaultClass *int     `json:"default_class,omitempty"`
	Imbalanced   bool     `json:"imbalanced"`
	TrainLabeled bool     `json:"train_labeled"`
	// Prompt metadata (optional; defaults are derived from Name).
	TaskDescription string `json:"task_description,omitempty"`
	InstanceNoun    string `json:"instance_noun,omitempty"`
}

// exampleFile mirrors one entry of a split file.
type exampleFile struct {
	Label int             `json:"label"`
	Data  exampleFileData `json:"data"`
}

type exampleFileData struct {
	Text    string `json:"text"`
	Entity1 string `json:"entity1,omitempty"`
	Entity2 string `json:"entity2,omitempty"`
}

// LoadDir reads a dataset from a WRENCH-style directory. Datasets loaded
// from disk have no signal table, so they cannot drive the simulated LLM
// — pair them with a real ChatModel implementation — but every other
// component (filters, label models, end model, vote statistics) works
// unchanged.
func LoadDir(dir string) (*Dataset, error) {
	metaRaw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, fmt.Errorf("dataset: reading meta.json: %w", err)
	}
	var meta metaFile
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return nil, fmt.Errorf("dataset: parsing meta.json: %w", err)
	}
	if meta.Name == "" {
		return nil, fmt.Errorf("dataset: meta.json missing name")
	}
	if len(meta.Classes) < 2 {
		return nil, fmt.Errorf("dataset: meta.json declares %d classes", len(meta.Classes))
	}
	d := &Dataset{
		Name:            meta.Name,
		ClassNames:      meta.Classes,
		DefaultClass:    NoDefaultClass,
		Imbalanced:      meta.Imbalanced,
		TrainLabeled:    meta.TrainLabeled,
		TaskDescription: meta.TaskDescription,
		InstanceNoun:    meta.InstanceNoun,
	}
	switch meta.Task {
	case "text", "":
		d.Task = TextClassification
	case "relation":
		d.Task = RelationClassification
	default:
		return nil, fmt.Errorf("dataset: unknown task %q", meta.Task)
	}
	if meta.DefaultClass != nil {
		d.DefaultClass = *meta.DefaultClass
	}
	if d.TaskDescription == "" {
		d.TaskDescription = fmt.Sprintf("a classification task over the %s dataset.", meta.Name)
	}
	if d.InstanceNoun == "" {
		d.InstanceNoun = "text passage"
	}

	for _, split := range []struct {
		file    string
		dst     *[]*Example
		labeled bool
	}{
		{"train.json", &d.Train, meta.TrainLabeled},
		{"valid.json", &d.Valid, true},
		{"test.json", &d.Test, true},
	} {
		examples, err := loadSplit(filepath.Join(dir, split.file), d.Task)
		if err != nil {
			return nil, err
		}
		if !split.labeled {
			for _, e := range examples {
				e.Label = NoLabel
			}
		}
		*split.dst = examples
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", dir, err)
	}
	return d, nil
}

// loadSplit reads one split file and returns examples ordered by their
// numeric ids.
func loadSplit(path string, task TaskType) ([]*Example, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading %s: %w", filepath.Base(path), err)
	}
	var entries map[string]exampleFile
	if err := json.Unmarshal(raw, &entries); err != nil {
		return nil, fmt.Errorf("dataset: parsing %s: %w", filepath.Base(path), err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("dataset: %s is empty", filepath.Base(path))
	}
	ids := make([]int, 0, len(entries))
	byID := make(map[int]exampleFile, len(entries))
	for key, ef := range entries {
		id, err := strconv.Atoi(key)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: non-numeric id %q", filepath.Base(path), key)
		}
		ids = append(ids, id)
		byID[id] = ef
	}
	sort.Ints(ids)
	out := make([]*Example, 0, len(ids))
	for i, id := range ids {
		ef := byID[id]
		e := &Example{
			ID:      i,
			Text:    ef.Data.Text,
			Label:   ef.Label,
			Entity1: ef.Data.Entity1,
			Entity2: ef.Data.Entity2,
			E1Pos:   -1,
			E2Pos:   -1,
		}
		e.EnsureTokens()
		if task == RelationClassification {
			e.E1Pos, e.E2Pos = locateEntities(e)
			if e.E1Pos < 0 || e.E2Pos < 0 {
				return nil, fmt.Errorf("dataset: %s id %d: entities %q/%q not found in text",
					filepath.Base(path), id, ef.Data.Entity1, ef.Data.Entity2)
			}
		}
		out = append(out, e)
	}
	return out, nil
}

// locateEntities finds the first token positions of both entity mentions.
func locateEntities(e *Example) (int, int) {
	find := func(name string, from int) int {
		want := tokenizeName(name)
		if len(want) == 0 {
			return -1
		}
	outer:
		for i := from; i+len(want) <= len(e.Tokens); i++ {
			for j, w := range want {
				if e.Tokens[i+j] != w {
					continue outer
				}
			}
			return i
		}
		return -1
	}
	p1 := find(e.Entity1, 0)
	if p1 < 0 {
		return -1, -1
	}
	p2 := find(e.Entity2, 0)
	if p2 == p1 { // same surface form: look for a later mention
		p2 = find(e.Entity2, p1+1)
	}
	return p1, p2
}

func tokenizeName(name string) []string {
	e := Example{Text: name}
	e.EnsureTokens()
	return e.Tokens
}

// SaveDir writes a dataset in the same WRENCH-style layout that LoadDir
// reads, making the synthetic corpora portable to other PWS tooling.
func (d *Dataset) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dataset: creating %s: %w", dir, err)
	}
	taskName := "text"
	if d.Task == RelationClassification {
		taskName = "relation"
	}
	meta := metaFile{
		Name:            d.Name,
		Task:            taskName,
		Classes:         d.ClassNames,
		Imbalanced:      d.Imbalanced,
		TrainLabeled:    d.TrainLabeled,
		TaskDescription: d.TaskDescription,
		InstanceNoun:    d.InstanceNoun,
	}
	if d.DefaultClass != NoDefaultClass {
		dc := d.DefaultClass
		meta.DefaultClass = &dc
	}
	if err := writeJSON(filepath.Join(dir, "meta.json"), meta); err != nil {
		return err
	}
	for _, split := range []struct {
		file string
		exs  []*Example
	}{
		{"train.json", d.Train},
		{"valid.json", d.Valid},
		{"test.json", d.Test},
	} {
		entries := make(map[string]exampleFile, len(split.exs))
		for _, e := range split.exs {
			entries[strconv.Itoa(e.ID)] = exampleFile{
				Label: e.Label,
				Data: exampleFileData{
					Text:    e.Text,
					Entity1: e.Entity1,
					Entity2: e.Entity2,
				},
			}
		}
		if err := writeJSON(filepath.Join(dir, split.file), entries); err != nil {
			return err
		}
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return fmt.Errorf("dataset: encoding %s: %w", filepath.Base(path), err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("dataset: writing %s: %w", filepath.Base(path), err)
	}
	return nil
}
