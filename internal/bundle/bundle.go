// Package bundle defines the model-artifact format of DataSculpt-Go: a
// versioned, self-describing snapshot of everything a trained run
// produces — the accepted LF set, the fitted MeTaL parameters, the
// logistic-regression weights, the featurizer vocabulary statistics, and
// provenance (dataset, configuration hash, token/cost totals).
//
// A bundle is what turns a run from printed statistics into a shippable
// product: `datasculpt -save-bundle model.json` persists it, and the
// `datasculptd` daemon loads it to answer labeling requests online. The
// format guarantees round-trip fidelity: a loaded bundle's models produce
// bit-identical vectors, posteriors and predictions to the in-memory
// originals (enforced by the differential tests in this package).
//
// Compatibility policy: the format field must equal Format, and the
// version field must be between 1 and Version inclusive — readers accept
// every older version (additive evolution only; unknown JSON fields are
// ignored), and refuse newer ones rather than mis-serve them. Any change
// that alters the meaning of an existing field requires a version bump
// and an explicit migration path here.
package bundle

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/endmodel"
	"datasculpt/internal/labelmodel"
	"datasculpt/internal/lf"
	"datasculpt/internal/textproc"
)

const (
	// Format is the magic the format field must carry.
	Format = "datasculpt-bundle"
	// Version is the current (and maximum accepted) format version.
	Version = 1
)

// DatasetInfo records the task the bundle was trained for: what the
// daemon needs to interpret requests and render responses, not the data
// itself.
type DatasetInfo struct {
	// Name is the dataset registry key the run trained on.
	Name string `json:"name"`
	// Task is the dataset.TaskType string form.
	Task string `json:"task"`
	// ClassNames maps class index to a human-readable name.
	ClassNames []string `json:"class_names"`
	// DefaultClass mirrors dataset.DefaultClass (-1 when absent).
	DefaultClass int `json:"default_class"`
	// MetricName names the evaluation metric of Provenance.EndMetric.
	MetricName string `json:"metric_name"`
}

// Provenance records where the bundle came from and what it cost.
type Provenance struct {
	// Method is the Result method string (e.g. "datasculpt-base").
	Method string `json:"method"`
	// ConfigHash fingerprints the run configuration (see ConfigHash).
	ConfigHash string `json:"config_hash"`
	// Model is the LLM profile the LFs were generated with.
	Model string `json:"model"`
	// Seed is the run seed.
	Seed int64 `json:"seed"`
	// Iterations is the query-loop length.
	Iterations int `json:"iterations"`
	// NumLFs is the accepted LF-set size; EndMetric the offline test
	// metric it reached.
	NumLFs    int     `json:"num_lfs"`
	EndMetric float64 `json:"end_metric"`
	// Calls/PromptTokens/CompletionTokens/CostUSD account for every LLM
	// call the run spent producing this artifact.
	Calls            int     `json:"calls"`
	PromptTokens     int     `json:"prompt_tokens"`
	CompletionTokens int     `json:"completion_tokens"`
	CostUSD          float64 `json:"cost_usd"`
	// CreatedUnix is the save time (Unix seconds).
	CreatedUnix int64 `json:"created_unix"`
	// Parent is the Fingerprint of the bundle this one was grown from
	// (empty for offline-trained roots). With GrowthCycle it forms the
	// lineage chain the online growth loop extends: candidate N's parent
	// is the promoted artifact of cycle N-1.
	Parent string `json:"parent,omitempty"`
	// GrowthCycle counts completed growth cycles along the lineage
	// (0 for offline-trained roots).
	GrowthCycle int `json:"growth_cycle,omitempty"`
}

// Bundle is the in-memory form of a model artifact.
type Bundle struct {
	Provenance Provenance
	Dataset    DatasetInfo
	// LFs is the accepted label-function set, in acceptance order — the
	// column order LabelModel's parameters are aligned to.
	LFs []lf.LabelFunction
	// LabelModel holds the fitted MeTaL, or nil when the run used a
	// different (non-serializable) label model; serving then disables the
	// label-model posterior in explain responses.
	LabelModel *labelmodel.MeTaL
	// Featurizer is the fitted featurizer (never nil in a valid bundle).
	Featurizer *textproc.Featurizer
	// EndModel is the trained classifier (never nil in a valid bundle).
	EndModel *endmodel.LogisticRegression
}

// bundleJSON is the stored form: Bundle plus the format/version header,
// with the LF set in its lf.MarshalLFs encoding.
type bundleJSON struct {
	Format     string                       `json:"format"`
	Version    int                          `json:"version"`
	Provenance Provenance                   `json:"provenance"`
	Dataset    DatasetInfo                  `json:"dataset"`
	LFs        json.RawMessage              `json:"lfs"`
	LabelModel *labelmodel.MeTaL            `json:"label_model,omitempty"`
	Featurizer *textproc.Featurizer         `json:"featurizer"`
	EndModel   *endmodel.LogisticRegression `json:"end_model"`
}

// hashableConfig is the subset of core.Config that identifies a run for
// provenance purposes: everything that changes what gets trained, nothing
// that is an injected object or a throughput knob.
type hashableConfig struct {
	Model       string
	Variant     core.Variant
	Iterations  int
	Shots       int
	Temperature float64
	SCSamples   int
	Sampler     string
	Filters     lf.FilterConfig
	LabelModel  string
	FeatureDim  int
	EndModel    endmodel.TrainConfig
	Revise      bool
	Seed        int64
}

// ConfigHash fingerprints the training-relevant fields of a config as a
// 16-hex-digit FNV-64a of their canonical JSON. Two runs with the same
// hash trained the same way (modulo the LLM's actual responses).
func ConfigHash(cfg core.Config) string {
	data, err := json.Marshal(hashableConfig{
		Model: cfg.Model, Variant: cfg.Variant, Iterations: cfg.Iterations,
		Shots: cfg.Shots, Temperature: cfg.Temperature, SCSamples: cfg.SCSamples,
		Sampler: cfg.Sampler, Filters: cfg.Filters, LabelModel: cfg.LabelModel,
		FeatureDim: cfg.FeatureDim, EndModel: cfg.EndModel,
		Revise: cfg.ReviseRejected, Seed: cfg.Seed,
	})
	if err != nil {
		// Every field is a plain value; Marshal cannot fail.
		panic(fmt.Sprintf("bundle: hashing config: %v", err))
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Fingerprint identifies a bundle's exact serialized content as a
// 16-hex-digit FNV-64a of its canonical JSON. Growth lineage uses it to
// name parents: two bundles share a fingerprint iff they serialize to
// the same bytes.
func Fingerprint(b *Bundle) (string, error) {
	data, err := json.Marshal(b)
	if err != nil {
		return "", fmt.Errorf("bundle: fingerprinting: %w", err)
	}
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// New assembles a bundle from a finished run: the dataset it trained on,
// the configuration it ran with, and the Result it produced. The Result
// must carry trained artifacts (it does after any successful Run /
// EvaluateLFSet whose LF set covered at least one example).
func New(d *dataset.Dataset, cfg core.Config, res *core.Result) (*Bundle, error) {
	if res == nil || res.Artifacts == nil {
		return nil, fmt.Errorf("bundle: result carries no trained artifacts")
	}
	if res.Artifacts.Featurizer == nil || !res.Artifacts.Featurizer.Fitted() {
		return nil, fmt.Errorf("bundle: result carries no fitted featurizer")
	}
	if res.Artifacts.EndModel == nil {
		return nil, fmt.Errorf("bundle: result carries no trained end model (no train example was covered)")
	}
	b := &Bundle{
		Provenance: Provenance{
			Method:           res.Method,
			ConfigHash:       ConfigHash(cfg),
			Model:            cfg.Model,
			Seed:             cfg.Seed,
			Iterations:       cfg.Iterations,
			NumLFs:           res.NumLFs,
			EndMetric:        res.EndMetric,
			Calls:            res.Calls,
			PromptTokens:     res.PromptTokens,
			CompletionTokens: res.CompletionTokens,
			CostUSD:          res.CostUSD,
		},
		Dataset: DatasetInfo{
			Name:         d.Name,
			Task:         d.Task.String(),
			ClassNames:   append([]string(nil), d.ClassNames...),
			DefaultClass: d.DefaultClass,
			MetricName:   d.MetricName(),
		},
		LFs:        res.LFs,
		LabelModel: res.Artifacts.LabelModel,
		Featurizer: res.Artifacts.Featurizer,
		EndModel:   res.Artifacts.EndModel,
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// Validate checks the cross-component invariants a servable bundle must
// satisfy: fitted featurizer, a classifier of matching shape, and — when
// present — label-model parameters aligned with the LF set.
func (b *Bundle) Validate() error {
	k := len(b.Dataset.ClassNames)
	if k < 2 {
		return fmt.Errorf("bundle: %d classes", k)
	}
	if b.Dataset.DefaultClass != dataset.NoDefaultClass &&
		(b.Dataset.DefaultClass < 0 || b.Dataset.DefaultClass >= k) {
		return fmt.Errorf("bundle: default class %d out of range", b.Dataset.DefaultClass)
	}
	if b.Featurizer == nil || !b.Featurizer.Fitted() {
		return fmt.Errorf("bundle: featurizer missing or unfitted")
	}
	if b.EndModel == nil {
		return fmt.Errorf("bundle: end model missing")
	}
	if err := b.EndModel.Validate(); err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	if b.EndModel.Dim != b.Featurizer.Dim {
		return fmt.Errorf("bundle: end model dimension %d != featurizer dimension %d",
			b.EndModel.Dim, b.Featurizer.Dim)
	}
	if b.EndModel.K != k {
		return fmt.Errorf("bundle: end model has %d classes, dataset %d", b.EndModel.K, k)
	}
	if b.LabelModel != nil {
		if n := b.LabelModel.NumLFs(); n != len(b.LFs) {
			return fmt.Errorf("bundle: label model fitted on %d LFs, bundle carries %d", n, len(b.LFs))
		}
	}
	return nil
}

// MarshalJSON implements json.Marshaler, writing the versioned stored
// form and stamping the save time.
func (b *Bundle) MarshalJSON() ([]byte, error) {
	lfData, err := lf.MarshalLFs(b.LFs)
	if err != nil {
		return nil, fmt.Errorf("bundle: serializing LF set: %w", err)
	}
	out := bundleJSON{
		Format:     Format,
		Version:    Version,
		Provenance: b.Provenance,
		Dataset:    b.Dataset,
		LFs:        lfData,
		LabelModel: b.LabelModel,
		Featurizer: b.Featurizer,
		EndModel:   b.EndModel,
	}
	if out.Provenance.CreatedUnix == 0 {
		out.Provenance.CreatedUnix = time.Now().Unix()
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, enforcing the compatibility
// policy (format match, version 1..Version) and revalidating every
// component. Unknown fields from older writers are ignored.
func (b *Bundle) UnmarshalJSON(data []byte) error {
	var in bundleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("bundle: decoding: %w", err)
	}
	if in.Format != Format {
		return fmt.Errorf("bundle: format %q is not %q", in.Format, Format)
	}
	if in.Version < 1 || in.Version > Version {
		return fmt.Errorf("bundle: version %d unsupported (this build reads 1..%d)", in.Version, Version)
	}
	lfs, err := lf.UnmarshalLFs(in.LFs)
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	b.Provenance = in.Provenance
	b.Dataset = in.Dataset
	b.LFs = lfs
	b.LabelModel = in.LabelModel
	b.Featurizer = in.Featurizer
	b.EndModel = in.EndModel
	return b.Validate()
}

// Save writes the bundle to path as JSON.
func Save(path string, b *Bundle) error {
	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bundle: writing %s: %w", path, err)
	}
	return nil
}

// Load reads and validates a bundle from path.
func Load(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bundle: reading %s: %w", path, err)
	}
	b := new(Bundle)
	if err := json.Unmarshal(data, b); err != nil {
		return nil, err
	}
	return b, nil
}
