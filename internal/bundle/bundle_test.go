package bundle_test

import (
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"datasculpt/internal/bundle"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/endmodel"
	"datasculpt/internal/textproc"
)

// trainSmall runs a scaled-down pipeline and returns the dataset, config
// and result. Shared by the differential tests here and reused (via a
// saved bundle file) by the serve tests.
func trainSmall(t *testing.T) (*dataset.Dataset, core.Config, *core.Result) {
	t.Helper()
	d, err := dataset.Load("youtube", 11, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.VariantBase)
	cfg.Iterations = 15
	cfg.Seed = 11
	cfg.FeatureDim = 2048
	cfg.EndModel.Epochs = 3
	res, err := core.Run(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Artifacts == nil || res.Artifacts.EndModel == nil || res.Artifacts.Featurizer == nil {
		t.Fatal("run produced no trained artifacts")
	}
	return d, cfg, res
}

func saveLoad(t *testing.T, b *bundle.Bundle) *bundle.Bundle {
	t.Helper()
	path := filepath.Join(t.TempDir(), "model.json")
	if err := bundle.Save(path, b); err != nil {
		t.Fatal(err)
	}
	loaded, err := bundle.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestBundleDifferential is the bit-identity contract of the format: a
// saved-then-loaded bundle predicts exactly — bit for bit — what the
// in-memory model predicts, on the full validation split, at every
// parallelism level.
func TestBundleDifferential(t *testing.T) {
	d, cfg, res := trainSmall(t)
	orig, err := bundle.New(d, cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	loaded := saveLoad(t, orig)

	corpus := dataset.FeatureCorpus(d.Valid)
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		orig.Featurizer.Workers = workers
		loaded.Featurizer.Workers = workers
		orig.EndModel.SetParallelism(workers)
		loaded.EndModel.SetParallelism(workers)

		wantX := orig.Featurizer.TransformAll(corpus)
		gotX := loaded.Featurizer.TransformAll(corpus)
		for i := range wantX {
			assertVectorBits(t, wantX[i], gotX[i], i)
		}

		wantP := orig.EndModel.PredictProbaAll(wantX)
		gotP := loaded.EndModel.PredictProbaAll(gotX)
		for i := range wantP {
			for c := range wantP[i] {
				if math.Float64bits(wantP[i][c]) != math.Float64bits(gotP[i][c]) {
					t.Fatalf("workers=%d example %d class %d: proba %v != %v",
						workers, i, c, wantP[i][c], gotP[i][c])
				}
			}
		}

		wantY := orig.EndModel.Predict(wantX)
		gotY := loaded.EndModel.Predict(gotX)
		for i := range wantY {
			if wantY[i] != gotY[i] {
				t.Fatalf("workers=%d example %d: label %d != %d", workers, i, wantY[i], gotY[i])
			}
		}
	}
}

func assertVectorBits(t *testing.T, want, got *textproc.SparseVector, i int) {
	t.Helper()
	if len(want.Idx) != len(got.Idx) {
		t.Fatalf("example %d: %d features != %d", i, len(want.Idx), len(got.Idx))
	}
	for j := range want.Idx {
		if want.Idx[j] != got.Idx[j] {
			t.Fatalf("example %d slot %d: index %d != %d", i, j, want.Idx[j], got.Idx[j])
		}
		if math.Float32bits(want.Val[j]) != math.Float32bits(got.Val[j]) {
			t.Fatalf("example %d slot %d: value %v != %v", i, j, want.Val[j], got.Val[j])
		}
	}
}

// TestBundleLabelModelRoundTrip checks the MeTaL component survives the
// trip with bit-identical posteriors via the single-example Predictor.
func TestBundleLabelModelRoundTrip(t *testing.T) {
	d, cfg, res := trainSmall(t)
	orig, err := bundle.New(d, cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	if orig.LabelModel == nil {
		t.Fatal("metal run should carry a label model")
	}
	loaded := saveLoad(t, orig)
	if loaded.LabelModel == nil {
		t.Fatal("label model lost in round trip")
	}
	wantPred := orig.LabelModel.NewPredictor()
	gotPred := loaded.LabelModel.NewPredictor()
	checked := 0
	for _, e := range d.Valid {
		js, votes := applyAll(orig, e)
		want := wantPred.Posterior(js, votes)
		got := gotPred.Posterior(js, votes)
		if (want == nil) != (got == nil) {
			t.Fatalf("example %d: coverage disagreement", e.ID)
		}
		if want == nil {
			continue
		}
		checked++
		for c := range want {
			if math.Float64bits(want[c]) != math.Float64bits(got[c]) {
				t.Fatalf("example %d class %d: posterior %v != %v", e.ID, c, want[c], got[c])
			}
		}
	}
	if checked == 0 {
		t.Fatal("no valid example was covered by any LF")
	}
}

func applyAll(b *bundle.Bundle, e *dataset.Example) (js, votes []int) {
	for j, f := range b.LFs {
		if v := f.Apply(e); v != -1 {
			js = append(js, j)
			votes = append(votes, v)
		}
	}
	return
}

func TestBundleProvenance(t *testing.T) {
	d, cfg, res := trainSmall(t)
	b, err := bundle.New(d, cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	p := b.Provenance
	if p.ConfigHash == "" || len(p.ConfigHash) != 16 {
		t.Errorf("config hash %q", p.ConfigHash)
	}
	if p.NumLFs != res.NumLFs || p.EndMetric != res.EndMetric || p.CostUSD != res.CostUSD {
		t.Errorf("provenance mismatch: %+v vs %v", p, res)
	}
	if b.Dataset.Name != "youtube" || len(b.Dataset.ClassNames) != 2 {
		t.Errorf("dataset info: %+v", b.Dataset)
	}
	loaded := saveLoad(t, b)
	if loaded.Provenance.CreatedUnix == 0 {
		t.Error("save did not stamp creation time")
	}
	if loaded.Provenance.ConfigHash != p.ConfigHash {
		t.Error("config hash changed in round trip")
	}

	other := cfg
	other.Seed++
	if bundle.ConfigHash(other) == bundle.ConfigHash(cfg) {
		t.Error("config hash insensitive to seed")
	}
}

func TestBundleRejectsCorruptInput(t *testing.T) {
	d, cfg, res := trainSmall(t)
	b, err := bundle.New(d, cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := bundle.Save(path, b); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]string{
		"wrong format":   `"format": "not-a-bundle"`,
		"future version": `"version": 999`,
	}
	for name, repl := range cases {
		t.Run(name, func(t *testing.T) {
			var old string
			switch name {
			case "wrong format":
				old = `"format": "` + bundle.Format + `"`
			case "future version":
				old = `"version": 1`
			}
			bad := strings.Replace(string(good), old, repl, 1)
			if bad == string(good) {
				t.Fatal("replacement did not apply")
			}
			badPath := filepath.Join(t.TempDir(), "bad.json")
			if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := bundle.Load(badPath); err == nil {
				t.Error("corrupt bundle accepted")
			}
		})
	}

	t.Run("truncated", func(t *testing.T) {
		badPath := filepath.Join(t.TempDir(), "trunc.json")
		if err := os.WriteFile(badPath, good[:len(good)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := bundle.Load(badPath); err == nil {
			t.Error("truncated bundle accepted")
		}
	})

	t.Run("missing end model", func(t *testing.T) {
		res2 := *res
		art := *res.Artifacts
		art.EndModel = nil
		res2.Artifacts = &art
		if _, err := bundle.New(d, cfg, &res2); err == nil {
			t.Error("bundle built without end model")
		}
	})
}

func TestBundleValidateShapeMismatch(t *testing.T) {
	d, cfg, res := trainSmall(t)
	b, err := bundle.New(d, cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	bad := *b
	m := *b.EndModel
	m.Dim = b.Featurizer.Dim + 1
	wrongW := make([][]float64, m.K)
	for c := range wrongW {
		wrongW[c] = make([]float64, m.Dim)
	}
	m.W = wrongW
	bad.EndModel = &m
	if err := bad.Validate(); err == nil {
		t.Error("dimension mismatch accepted")
	}

	bad2 := *b
	m2 := endmodel.LogisticRegression{Dim: b.Featurizer.Dim, K: 2, W: [][]float64{{}, {}}, B: []float64{0, 0}}
	bad2.EndModel = &m2
	if err := bad2.Validate(); err == nil {
		t.Error("ragged weight matrix accepted")
	}
}
