package registry_test

import (
	"fmt"
	"testing"

	"datasculpt/internal/registry"
)

func ringTenants(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tenant-%04d", i)
	}
	return out
}

// TestRingDeterminism: two rings built from the same (replicas, vnodes)
// pair assign every tenant identically — the property that lets every
// daemon compute ownership with no coordination.
func TestRingDeterminism(t *testing.T) {
	a := registry.NewRing(5, 0)
	b := registry.NewRing(5, 0)
	for _, tenant := range ringTenants(500) {
		if a.Owner(tenant) != b.Owner(tenant) {
			t.Fatalf("tenant %s: %d vs %d on identical rings", tenant, a.Owner(tenant), b.Owner(tenant))
		}
	}
}

// TestRingOwnersInRange: every owner is a valid replica index, for every
// replica-set size, and degenerate rings own everything at replica 0.
func TestRingOwnersInRange(t *testing.T) {
	tenants := ringTenants(200)
	for n := 1; n <= 6; n++ {
		r := registry.NewRing(n, 0)
		if r.Replicas() != n {
			t.Fatalf("Replicas() = %d, want %d", r.Replicas(), n)
		}
		for _, tenant := range tenants {
			if o := r.Owner(tenant); o < 0 || o >= n {
				t.Fatalf("replicas=%d tenant %s: owner %d out of range", n, tenant, o)
			}
		}
	}
	var nilRing *registry.Ring
	if nilRing.Owner("x") != 0 || nilRing.Replicas() != 1 {
		t.Error("nil ring must own everything at replica 0")
	}
	if registry.NewRing(0, 0).Owner("x") != 0 {
		t.Error("0-replica ring must clamp to a single replica")
	}
}

// TestRingBalance: with the default vnode count, no replica's tenant
// share strays far from the uniform mean.
func TestRingBalance(t *testing.T) {
	const replicas = 4
	tenants := ringTenants(2000)
	counts := make([]int, replicas)
	r := registry.NewRing(replicas, 0)
	for _, tenant := range tenants {
		counts[r.Owner(tenant)]++
	}
	mean := float64(len(tenants)) / replicas
	for rep, c := range counts {
		if float64(c) > 2*mean || float64(c) < 0.35*mean {
			t.Errorf("replica %d owns %d of %d tenants (mean %.0f): too skewed", rep, c, len(tenants), mean)
		}
	}
}

// TestRingStability is the consistent-hashing contract: growing the
// replica set from N to N+1 remaps only the tenants the new replica
// claims — every remapped tenant moves TO replica N, and the remapped
// fraction stays near 1/(N+1) rather than reshuffling everything.
func TestRingStability(t *testing.T) {
	tenants := ringTenants(2000)
	for n := 1; n <= 5; n++ {
		small := registry.NewRing(n, 0)
		big := registry.NewRing(n+1, 0)
		moved := 0
		for _, tenant := range tenants {
			before, after := small.Owner(tenant), big.Owner(tenant)
			if before == after {
				continue
			}
			moved++
			if after != n {
				t.Fatalf("replicas %d->%d tenant %s: moved %d->%d, but only the new replica %d may claim tenants",
					n, n+1, tenant, before, after, n)
			}
		}
		expected := float64(len(tenants)) / float64(n+1)
		if f := float64(moved); f > 2*expected || f < 0.35*expected {
			t.Errorf("replicas %d->%d: %d tenants moved, expected about %.0f", n, n+1, moved, expected)
		}
	}
}
