package registry_test

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"datasculpt/internal/obs"
	"datasculpt/internal/registry"
)

// newObsGateway is newGatewayServer with a caller-controlled obs bundle,
// for the tests that need a real tracer, logger, or metrics registry.
func newObsGateway(t *testing.T, o *obs.Obs, gwOpts registry.GatewayOptions) (*httptest.Server, *registry.Registry) {
	t.Helper()
	_, _, path := trained(t)
	opts := registry.Options{}
	opts.Serve.Workers = 1
	r := registry.New(o, opts)
	t.Cleanup(r.Close)
	if err := r.Register("t", path); err != nil {
		t.Fatal(err)
	}
	gw := registry.NewGateway(r, o, gwOpts)
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return ts, r
}

func postLabel(t *testing.T, ts *httptest.Server, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/tenants/t/label",
		strings.NewReader(`{"text": "subscribe to my channel"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	return resp
}

// TestGatewayRequestIDAndTraceparent covers the propagation contract:
// a sane incoming X-Request-Id is echoed, anything else is replaced
// with a minted ID; an incoming W3C traceparent's trace ID is adopted
// by the gateway.request span and echoed in the response traceparent.
func TestGatewayRequestIDAndTraceparent(t *testing.T) {
	mem := obs.NewMemoryTracer()
	ts, _ := newObsGateway(t, obs.New(mem, obs.NewRegistry(), nil), registry.GatewayOptions{})

	// No incoming headers: both IDs are minted.
	resp := postLabel(t, ts, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-Id")
	if len(rid) != 16 {
		t.Errorf("minted X-Request-Id = %q, want 16 hex digits", rid)
	}
	trace, _, ok := obs.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q does not parse", resp.Header.Get("Traceparent"))
	}
	roots := mem.Named("gateway.request")
	if len(roots) != 1 {
		t.Fatalf("%d gateway.request spans, want 1", len(roots))
	}
	if roots[0].Trace != trace {
		t.Errorf("span trace %q != echoed trace %q", roots[0].Trace, trace)
	}
	if got, _ := roots[0].Str("request_id"); got != rid {
		t.Errorf("span request_id %q != echoed header %q", got, rid)
	}
	for attr, want := range map[string]string{"route": "label", "tenant": "t"} {
		if got, _ := roots[0].Str(attr); got != want {
			t.Errorf("span %s = %q, want %q", attr, got, want)
		}
	}
	if got, _ := roots[0].Int("status"); got != 200 {
		t.Errorf("span status = %d, want 200", got)
	}
	if got, _ := roots[0].Int("texts"); got != 1 {
		t.Errorf("span texts = %d, want 1", got)
	}
	// The coalescer's serve.label span joined the same trace.
	labels := mem.Named("serve.label")
	if len(labels) != 1 || labels[0].Trace != trace || labels[0].Parent != roots[0].Span {
		t.Errorf("serve.label did not nest under gateway.request: %+v", labels)
	}

	// Sane incoming ID: echoed verbatim. Incoming traceparent: adopted.
	mem.Reset()
	const wantTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	resp = postLabel(t, ts, map[string]string{
		"X-Request-Id": "client-id.42",
		"traceparent":  "00-" + wantTrace + "-00f067aa0ba902b7-01",
	})
	if got := resp.Header.Get("X-Request-Id"); got != "client-id.42" {
		t.Errorf("echoed X-Request-Id = %q, want client-id.42", got)
	}
	if tr, _, _ := obs.ParseTraceparent(resp.Header.Get("Traceparent")); tr != wantTrace {
		t.Errorf("response traceparent trace = %q, want %q", tr, wantTrace)
	}
	if roots := mem.Named("gateway.request"); len(roots) != 1 || roots[0].Trace != wantTrace {
		t.Errorf("gateway.request did not adopt the incoming trace id")
	}

	// Hostile incoming ID (too long / bad charset): replaced, not echoed.
	resp = postLabel(t, ts, map[string]string{"X-Request-Id": "evil header with spaces"})
	if got := resp.Header.Get("X-Request-Id"); strings.Contains(got, "evil") || len(got) != 16 {
		t.Errorf("hostile X-Request-Id echoed as %q, want a minted 16-hex id", got)
	}
}

// TestGatewayStatsEndpoint exercises /v1/stats end to end: per-tenant
// quantiles and error rates over the three windows, runtime gauges, and
// the error-rate accounting of a 5xx.
func TestGatewayStatsEndpoint(t *testing.T) {
	ts, reg := newObsGateway(t, obs.New(nil, obs.NewRegistry(), nil), registry.GatewayOptions{})
	for i := 0; i < 4; i++ {
		if resp := postLabel(t, ts, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	// A shut-down registry turns label requests into 503s, which count
	// against the tenant's SLO.
	reg.Close()
	if resp := postLabel(t, ts, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close status %d, want 503", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Objective float64                      `json:"objective"`
		Windows   []string                     `json:"windows"`
		Tenants   map[string][]obs.WindowStats `json:"tenants"`
		Runtime   obs.RuntimeSnapshot          `json:"runtime"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Objective != 0.999 {
		t.Errorf("objective = %v, want the 0.999 default", stats.Objective)
	}
	if want := []string{"1m0s", "5m0s", "1h0m0s"}; len(stats.Windows) != 3 ||
		stats.Windows[0] != want[0] || stats.Windows[1] != want[1] || stats.Windows[2] != want[2] {
		t.Errorf("windows = %v, want %v", stats.Windows, want)
	}
	ws, ok := stats.Tenants["t"]
	if !ok || len(ws) != 3 {
		t.Fatalf("tenant t stats missing or wrong arity: %v", stats.Tenants)
	}
	w := ws[0]
	if w.Requests != 5 || w.Errors != 1 {
		t.Fatalf("1m window = %+v, want 5 requests / 1 error", w)
	}
	if w.ErrorRate != 0.2 || w.Availability != 0.8 {
		t.Errorf("error accounting = %+v", w)
	}
	if w.BurnRate < 199 || w.BurnRate > 201 { // 0.2 / 0.001
		t.Errorf("burn rate = %v, want ~200", w.BurnRate)
	}
	if w.P50MS <= 0 || w.P99MS < w.P50MS {
		t.Errorf("quantiles not populated or inverted: %+v", w)
	}
	if stats.Runtime.Goroutines <= 0 || stats.Runtime.HeapAllocBytes == 0 {
		t.Errorf("runtime snapshot empty: %+v", stats.Runtime)
	}
}

// TestGatewayMetricsDimensional is the acceptance criterion on the
// exposition: after traffic, /metrics carries the per-tenant request
// counter and latency histogram plus the per-route HTTP counter, and
// the whole scrape passes the Prometheus-text linter.
func TestGatewayMetricsDimensional(t *testing.T) {
	ts, _ := newObsGateway(t, obs.New(nil, obs.NewRegistry(), nil), registry.GatewayOptions{})
	for i := 0; i < 3; i++ {
		postLabel(t, ts, nil)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		`serve_requests_total{tenant="t",code="ok"} 3`,
		`serve_request_seconds_bucket{tenant="t",le="+Inf"} 3`,
		`serve_request_seconds_count{tenant="t"} 3`,
		`serve_http_requests_total{route="label",code="200"} 3`,
		"go_goroutines",
		"go_memstats_heap_alloc_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if problems := obs.LintPrometheus(bytes.NewReader(body)); len(problems) != 0 {
		t.Errorf("live scrape fails lint:\n%s", strings.Join(problems, "\n"))
	}
}

// TestGatewayAccessLog checks the optional access log: one structured
// line per request carrying route/status/IDs, with the per-second cap
// suppressing (not failing) the overflow.
func TestGatewayAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	ts, _ := newObsGateway(t, obs.New(nil, obs.NewRegistry(), logger),
		registry.GatewayOptions{AccessLog: true, AccessLogMaxPerSec: 2})

	for i := 0; i < 10; i++ {
		postLabel(t, ts, map[string]string{"X-Request-Id": "fixed-rid"})
	}

	var lines []map[string]any
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.Contains(raw, `"msg":"access"`) {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(raw), &m); err != nil {
			t.Fatalf("unparseable access line %q: %v", raw, err)
		}
		lines = append(lines, m)
	}
	if len(lines) == 0 {
		t.Fatal("no access log lines emitted")
	}
	// 10 fast requests against a 2/s cap: at most two one-second windows
	// can be touched, so at most 4 lines.
	if len(lines) > 4 {
		t.Errorf("%d access lines for 10 requests under a 2/s cap", len(lines))
	}
	first := lines[0]
	for k, want := range map[string]any{
		"route": "label", "tenant": "t", "request_id": "fixed-rid",
		"method": "POST", "path": "/v1/tenants/t/label",
	} {
		if got := first[k]; got != want {
			t.Errorf("access line %s = %v, want %v", k, got, want)
		}
	}
	if first["status"] != float64(200) || first["texts"] != float64(1) {
		t.Errorf("access line status/texts = %v/%v", first["status"], first["texts"])
	}
	if _, ok := first["trace_id"]; !ok {
		t.Error("access line missing trace_id")
	}
}

// TestGatewayTraceGolden pins the sampled JSONL trace of one gateway
// request — span tree shape, names, propagated IDs, attributes — to a
// golden file. IDs are deterministic (sequential per tracer); only
// timestamps and durations are normalized away.
// Regenerate: go test ./internal/registry/ -run TraceGolden -update
func TestGatewayTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	tracer := obs.NewSampledTracer(obs.NewJSONLTracer(&buf), obs.SamplerOptions{Rate: 1})
	ts, reg := newObsGateway(t, obs.New(tracer, obs.NewRegistry(), nil), registry.GatewayOptions{})

	resp := postLabel(t, ts, map[string]string{
		"X-Request-Id": "feedfacecafebeef",
		"traceparent":  "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	ts.Close()
	reg.Close() // drain the coalescer so the serve.batch span is flushed

	var spans []obs.SpanData
	dec := json.NewDecoder(&buf)
	for {
		var d obs.SpanData
		if err := dec.Decode(&d); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		// Timestamps and durations are the only nondeterminism.
		d.Start, d.End, d.DurationMS = time.Time{}, time.Time{}, 0
		if d.Attrs != nil {
			delete(d.Attrs, "duration_ms")
		}
		spans = append(spans, d)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Span < spans[j].Span })

	got, err := json.MarshalIndent(spans, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("sampled trace drifted from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}
