package registry

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring assigning tenants to daemon replicas.
// Every replica owns vnodes points on a 64-bit circle; a tenant belongs
// to the replica owning the first point at or clockwise after the
// tenant's hash. Growing or shrinking the replica set by one remaps
// only the expected 1/N of tenants (the arcs the new replica claims or
// the removed replica frees) — every other tenant keeps its owner, so
// a rolling resize invalidates almost no bundle residency.
//
// All replicas must build the ring from the same (replicas, vnodes)
// pair: the point set is a pure function of those two numbers, so the
// ownership map is identical on every daemon with no coordination.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica int
}

// DefaultVnodes is the per-replica virtual-node count used when
// NewRing is given vnodes <= 0. 128 points per replica keeps the
// max/min tenant-share ratio near 1 for small replica counts.
const DefaultVnodes = 128

// NewRing builds the ring for a replica set of the given size.
// replicas < 1 is treated as 1 (a single daemon owns everything).
func NewRing(replicas, vnodes int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	points := make([]ringPoint, 0, replicas*vnodes)
	for rep := 0; rep < replicas; rep++ {
		for v := 0; v < vnodes; v++ {
			points = append(points, ringPoint{
				hash:    hash64(fmt.Sprintf("replica-%d/vnode-%d", rep, v)),
				replica: rep,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// Equal hashes (vanishingly rare): lower replica wins, on every
		// daemon identically.
		return points[i].replica < points[j].replica
	})
	return &Ring{replicas: replicas, points: points}
}

// Replicas returns the replica-set size the ring was built for.
func (r *Ring) Replicas() int {
	if r == nil {
		return 1
	}
	return r.replicas
}

// Owner returns the replica index (0..Replicas-1) that serves tenant.
// A nil or single-replica ring owns everything at replica 0.
func (r *Ring) Owner(tenant string) int {
	if r == nil || r.replicas <= 1 || len(r.points) == 0 {
		return 0
	}
	h := hash64(tenant)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: past the last point, the first point owns the arc
	}
	return r.points[i].replica
}

// hash64 hashes a key to a ring position: FNV-64a followed by a 64-bit
// avalanche finalizer (MurmurHash3's fmix64). Raw FNV barely diffuses
// its final bytes — keys differing only in a trailing digit land within
// ~2^44 of each other, clustering both the vnode points and sequential
// tenant IDs onto the same arcs — so the finalizer is what actually
// makes ownership shares uniform.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
