package registry_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"datasculpt/internal/bundle"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/obs"
	"datasculpt/internal/registry"
	"datasculpt/internal/serve"
)

var (
	trainOnce sync.Once
	trainedB  *bundle.Bundle
	trainedD  *dataset.Dataset
	savedPath string
	trainErr  error
)

// trained runs the pipeline once per test binary, saves the bundle to a
// temp file, and hands every test the same artifact. Tests that need a
// private bundle object load a fresh copy from the saved path.
func trained(t *testing.T) (*bundle.Bundle, *dataset.Dataset, string) {
	t.Helper()
	trainOnce.Do(func() {
		d, err := dataset.Load("youtube", 11, 0.4)
		if err != nil {
			trainErr = err
			return
		}
		cfg := core.DefaultConfig(core.VariantBase)
		cfg.Iterations = 15
		cfg.Seed = 11
		cfg.FeatureDim = 2048
		cfg.EndModel.Epochs = 3
		res, err := core.Run(d, cfg)
		if err != nil {
			trainErr = err
			return
		}
		b, err := bundle.New(d, cfg, res)
		if err != nil {
			trainErr = err
			return
		}
		dir, err := os.MkdirTemp("", "registry-test-*")
		if err != nil {
			trainErr = err
			return
		}
		path := filepath.Join(dir, "model.json")
		if err := bundle.Save(path, b); err != nil {
			trainErr = err
			return
		}
		trainedB, trainedD, savedPath = b, d, path
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return trainedB, trainedD, savedPath
}

// freshCopy loads a private bundle object from the saved artifact.
func freshCopy(t *testing.T) *bundle.Bundle {
	t.Helper()
	_, _, path := trained(t)
	b, err := bundle.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newRegistry(t *testing.T, opts registry.Options) (*registry.Registry, *obs.Registry) {
	t.Helper()
	if opts.Serve.Workers == 0 {
		opts.Serve.Workers = 1
	}
	mreg := obs.NewRegistry()
	r := registry.New(obs.New(nil, mreg, nil), opts)
	t.Cleanup(r.Close)
	return r, mreg
}

func gauge(mreg *obs.Registry, name string) float64 {
	v, _ := mreg.Snapshot()[name].(float64)
	return v
}

// TestRegistryLRUEviction: with MaxResident 1, registering and using a
// second tenant evicts the first's server, yet both tenants keep
// answering (the bundle is remapped from its source on demand) and the
// listing reports exactly one resident at a time.
func TestRegistryLRUEviction(t *testing.T) {
	_, d, path := trained(t)
	r, mreg := newRegistry(t, registry.Options{MaxResident: 1})
	if err := r.Register("a", path); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("b", path); err != nil {
		t.Fatal(err)
	}
	if got := gauge(mreg, "serve_bundles_resident"); got != 1 {
		t.Fatalf("resident after two registrations = %v, want 1", got)
	}
	if got := mreg.CounterValue("serve_bundle_evictions_total"); got != 1 {
		t.Fatalf("evictions = %v, want 1", got)
	}

	text := d.Valid[0].Text
	for round := 0; round < 2; round++ {
		for _, tenant := range []string{"a", "b"} {
			preds, err := r.Label(context.Background(), tenant, []string{text}, false)
			if err != nil {
				t.Fatalf("round %d tenant %s: %v", round, tenant, err)
			}
			if len(preds) != 1 || len(preds[0].Proba) == 0 {
				t.Fatalf("round %d tenant %s: bad prediction %+v", round, tenant, preds)
			}
		}
	}
	if got := gauge(mreg, "serve_bundles_resident"); got != 1 {
		t.Fatalf("resident after ping-pong = %v, want 1", got)
	}
	// 2 registrations + at least 3 remaps (a,b,a,b leaves the last hot).
	if got := mreg.CounterValue("serve_bundle_loads_total"); got < 5 {
		t.Errorf("loads = %v, want >= 5", got)
	}
	resident := 0
	for _, info := range r.List() {
		if info.Resident {
			resident++
		}
	}
	if resident != 1 {
		t.Errorf("listing reports %d resident tenants, want 1", resident)
	}

	if _, err := r.Label(context.Background(), "nope", []string{text}, false); !errors.Is(err, registry.ErrUnknownTenant) {
		t.Errorf("unknown tenant: err = %v, want ErrUnknownTenant", err)
	}
}

// TestZeroDowntimeHotSwap is the availability contract of the tentpole:
// while clients hammer Label, a promote+rollback loop hot-swaps the
// tenant's bundle repeatedly and not one request may fail — in-flight
// requests drain on the old server while new ones route to the new.
func TestZeroDowntimeHotSwap(t *testing.T) {
	_, d, path := trained(t)
	r, mreg := newRegistry(t, registry.Options{})
	if err := r.Register("t", path); err != nil {
		t.Fatal(err)
	}
	// Seed the shadow sample so the gate actually runs on every promote
	// (same-artifact candidates agree 100%, so it passes).
	seed := []string{d.Valid[0].Text, d.Valid[1].Text, d.Valid[2].Text}
	if _, err := r.Label(context.Background(), "t", seed, false); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				text := d.Valid[(w*7+i)%len(d.Valid)].Text
				if _, err := r.Label(context.Background(), "t", []string{text}, false); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}

	const swaps = 4
	for i := 0; i < swaps; i++ {
		rep, err := r.Promote("t", freshCopy(t), false)
		if err != nil {
			t.Fatalf("promote %d: %v (report %+v)", i, err, rep)
		}
		if !rep.Gated || rep.Agreement != 1 {
			t.Fatalf("promote %d: gate did not run or disagreed: %+v", i, rep)
		}
		if _, err := r.Rollback("t"); err != nil {
			t.Fatalf("rollback %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("request failed during hot-swap: %v", err)
	}
	if got := mreg.CounterValue("serve_bundle_swaps_total"); got != swaps {
		t.Errorf("swaps = %v, want %d", got, swaps)
	}
	if got := mreg.CounterValue("serve_bundle_rollbacks_total"); got != swaps {
		t.Errorf("rollbacks = %v, want %d", got, swaps)
	}
	// The tenant still answers after the dust settles.
	if _, err := r.Label(context.Background(), "t", seed, false); err != nil {
		t.Fatal(err)
	}
}

// TestShadowGateRejects: a candidate with negated end-model weights
// predicts the opposite class on (nearly) every recent text, so the
// shadow gate must reject it — and ?force-style promotion must still be
// able to push it through.
func TestShadowGateRejects(t *testing.T) {
	_, d, path := trained(t)
	r, mreg := newRegistry(t, registry.Options{})
	if err := r.Register("t", path); err != nil {
		t.Fatal(err)
	}
	texts := make([]string, 0, 32)
	for i := 0; i < 32 && i < len(d.Valid); i++ {
		texts = append(texts, d.Valid[i].Text)
	}
	if _, err := r.Label(context.Background(), "t", texts, false); err != nil {
		t.Fatal(err)
	}

	negated := freshCopy(t)
	for k := range negated.EndModel.W {
		for j := range negated.EndModel.W[k] {
			negated.EndModel.W[k][j] = -negated.EndModel.W[k][j]
		}
		negated.EndModel.B[k] = -negated.EndModel.B[k]
	}
	rep, err := r.Promote("t", negated, false)
	if !errors.Is(err, registry.ErrShadowGate) {
		t.Fatalf("promote negated bundle: err = %v, want ErrShadowGate", err)
	}
	if !rep.Gated || rep.ShadowSample != len(texts) || rep.Agreement >= 0.9 {
		t.Fatalf("gate report %+v", rep)
	}
	if got := mreg.CounterValue("serve_shadow_rejects_total"); got != 1 {
		t.Errorf("shadow rejects = %v, want 1", got)
	}
	// The incumbent is untouched by a rejected promotion.
	if _, err := r.Label(context.Background(), "t", texts[:1], false); err != nil {
		t.Fatal(err)
	}
	if infos := r.List(); infos[0].Generation != 0 {
		t.Errorf("generation after rejected promote = %d, want 0", infos[0].Generation)
	}

	// Force pushes the same candidate through.
	rep, err = r.Promote("t", negated, true)
	if err != nil {
		t.Fatalf("forced promote: %v", err)
	}
	if rep.Gated || rep.Generation != 1 {
		t.Fatalf("forced promote report %+v", rep)
	}
	// And rollback restores the original behavior.
	if _, err := r.Rollback("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Rollback("t"); err != nil {
		t.Fatal(err) // second rollback toggles back to the negated bundle
	}
	if _, err := r.Label(context.Background(), "t", texts[:1], false); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryClose: Close drains everything and further calls fail
// with ErrClosed; Close is idempotent.
func TestRegistryClose(t *testing.T) {
	_, d, path := trained(t)
	mreg := obs.NewRegistry()
	r := registry.New(obs.New(nil, mreg, nil), registry.Options{Serve: serve.Options{Workers: 1}})
	if err := r.Register("t", path); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Label(context.Background(), "t", []string{d.Valid[0].Text}, false); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close()
	if _, err := r.Label(context.Background(), "t", []string{d.Valid[0].Text}, false); !errors.Is(err, registry.ErrClosed) {
		t.Fatalf("label after close: err = %v, want ErrClosed", err)
	}
	if err := r.Register("u", path); !errors.Is(err, registry.ErrClosed) {
		t.Fatalf("register after close: err = %v, want ErrClosed", err)
	}
}

// TestRegisterErrors pins the registration failure modes.
func TestRegisterErrors(t *testing.T) {
	_, _, path := trained(t)
	r, _ := newRegistry(t, registry.Options{})
	if err := r.Register("t", path); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("t", path); err == nil {
		t.Error("duplicate tenant accepted")
	}
	if err := r.Register("", path); err == nil {
		t.Error("empty tenant accepted")
	}
	if err := r.Register("a/b", path); err == nil {
		t.Error("tenant with separator accepted")
	}
	if err := r.Register("u", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing bundle accepted")
	}
	if err := r.RegisterBundle("v", nil); err == nil {
		t.Error("nil bundle accepted")
	}
	if _, err := r.Rollback("t"); !errors.Is(err, registry.ErrNoPrevious) {
		t.Errorf("rollback without history: err = %v, want ErrNoPrevious", err)
	}
	if _, err := r.Rollback("ghost"); !errors.Is(err, registry.ErrUnknownTenant) {
		t.Errorf("rollback unknown tenant: err = %v, want ErrUnknownTenant", err)
	}
}

// TestPromoteRegistersNewTenant: promoting to an unregistered tenant is
// a registration, and the uploaded bundle stays pinned across eviction.
func TestPromoteRegistersNewTenant(t *testing.T) {
	_, d, _ := trained(t)
	r, _ := newRegistry(t, registry.Options{MaxResident: 1})
	rep, err := r.Promote("fresh", freshCopy(t), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Generation != 0 || rep.Gated {
		t.Fatalf("report %+v", rep)
	}
	// Evict it by touching a second tenant, then label again: the
	// pinned upload must come back without any backing file.
	if err := r.RegisterBundle("other", freshCopy(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Label(context.Background(), "fresh", []string{d.Valid[0].Text}, false); err != nil {
		t.Fatal(err)
	}
}
