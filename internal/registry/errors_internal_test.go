package registry

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"

	"datasculpt/internal/obs"
	"datasculpt/internal/serve"
)

// TestWriteLabelErrorMapping pins the error→status contract of the
// label path, including the overload (429 + Retry-After) and shutdown
// (503) responses that are awkward to provoke deterministically over a
// live socket.
func TestWriteLabelErrorMapping(t *testing.T) {
	g := NewGateway(New(obs.Default(), Options{}), obs.Default(), GatewayOptions{})
	cases := []struct {
		err        error
		status     int
		code       string
		retryAfter bool
	}{
		{ErrUnknownTenant, 404, "unknown_tenant", false},
		{serve.ErrOverloaded, 429, "overloaded", true},
		{serve.ErrClosed, 503, "unavailable", true},
		{ErrClosed, 503, "unavailable", true},
		{context.Canceled, 503, "deadline", true},
		{context.DeadlineExceeded, 503, "deadline", true},
		{errors.New("boom"), 500, "internal", false},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		g.writeLabelError(rec, "t", c.err)
		if rec.Code != c.status {
			t.Errorf("%v: status %d, want %d", c.err, rec.Code, c.status)
		}
		var env errorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Errorf("%v: body not an envelope: %v", c.err, err)
			continue
		}
		if env.Error.Code != c.code {
			t.Errorf("%v: code %q, want %q", c.err, env.Error.Code, c.code)
		}
		if got := rec.Header().Get("Retry-After") != ""; got != c.retryAfter {
			t.Errorf("%v: Retry-After present=%v, want %v", c.err, got, c.retryAfter)
		}
	}
}
