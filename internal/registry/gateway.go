package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"datasculpt/internal/bundle"
	"datasculpt/internal/obs"
	"datasculpt/internal/serve"
)

// GatewayOptions configures the HTTP surface.
type GatewayOptions struct {
	// DefaultTenant answers the bare /v1/label alias (default "default").
	DefaultTenant string
	// Ring, when non-nil, enables tenant sharding: requests for tenants
	// owned by another replica get 421 with a shard hint instead of an
	// answer. SelfShard is this replica's index on the ring; Peers[i],
	// when provided, is advertised as replica i's address in the hint.
	Ring      *Ring
	SelfShard int
	Peers     []string
	// MaxLabelBytes bounds label request bodies (default 1 MiB);
	// MaxBundleBytes bounds bundle uploads (default 64 MiB).
	MaxLabelBytes  int64
	MaxBundleBytes int64
	// AccessLog emits one structured log line per request (-access-log).
	// Off by default: at bench-serve rates the log stream itself becomes
	// the bottleneck.
	AccessLog bool
	// AccessLogMaxPerSec rate-caps access log lines (default 200/s);
	// requests beyond the cap are served normally but not logged, and
	// the suppressed count rides along on the next emitted line.
	AccessLogMaxPerSec int
	// SLOObjective is the availability target /v1/stats reports burn
	// rates against (default 0.999).
	SLOObjective float64
	// Growth, when set, supplies the growth daemon's status payload for
	// GET /v1/growth (typed any to avoid importing internal/growth,
	// which depends on this package). Nil answers 404 growth_disabled.
	Growth func() any
}

func (o GatewayOptions) withDefaults() GatewayOptions {
	if o.DefaultTenant == "" {
		o.DefaultTenant = "default"
	}
	if o.MaxLabelBytes <= 0 {
		o.MaxLabelBytes = 1 << 20
	}
	if o.MaxBundleBytes <= 0 {
		o.MaxBundleBytes = 64 << 20
	}
	if o.AccessLogMaxPerSec <= 0 {
		o.AccessLogMaxPerSec = 200
	}
	if o.SLOObjective <= 0 || o.SLOObjective >= 1 {
		o.SLOObjective = 0.999
	}
	return o
}

// Gateway is the daemon's HTTP surface over a Registry:
//
//	POST /v1/tenants/{tenant}/label   — label one text or a batch
//	POST /v1/label                    — alias for the default tenant
//	GET  /v1/bundles                  — registered bundles + provenance
//	POST /v1/bundles/{tenant}         — upload + promote (shadow-gated;
//	                                    ?force=true skips the gate)
//	POST /v1/bundles/{tenant}/rollback — return to the previous bundle
//	GET  /healthz                     — liveness + registry/shard summary
//	GET  /metrics                     — Prometheus text exposition
//
// Every error is the uniform envelope {"error":{"code","message"}}
// (plus "shard_hint" on 421) with a correct status code.
type Gateway struct {
	reg  *Registry
	o    *obs.Obs
	opts GatewayOptions
	slo  *obs.SLOTracker

	mMisdirected *obs.Counter
	mHTTP        *obs.CounterVec

	// logMu guards the access-log rate cap: emitted counts the lines in
	// the current one-second window, suppressed the requests the cap
	// swallowed since the last emitted line.
	logMu      sync.Mutex
	logWindow  int64
	emitted    int
	suppressed int
}

// NewGateway wires the HTTP surface around a registry. The obs bundle
// may be nil (telemetry disabled).
func NewGateway(reg *Registry, o *obs.Obs, opts GatewayOptions) *Gateway {
	if o == nil {
		o = obs.Default()
	}
	g := &Gateway{reg: reg, o: o, opts: opts.withDefaults()}
	g.slo = obs.NewSLOTracker(obs.SLOOptions{Objective: g.opts.SLOObjective})
	g.mMisdirected = o.Metrics.Counter("serve_misdirected_total",
		"Requests for tenants owned by another shard (answered 421).")
	g.mHTTP = o.Metrics.CounterVec("serve_http_requests_total",
		"Gateway HTTP requests, by route and status code.", "route", "code")
	return g
}

// labelRequest is the label endpoint body: exactly one of text / texts.
type labelRequest struct {
	Text    string   `json:"text"`
	Texts   []string `json:"texts"`
	Explain bool     `json:"explain"`
}

// labelResponse is the label endpoint body on success. Prediction is
// set for single-text requests, Predictions (in request order) for
// batch requests.
type labelResponse struct {
	Tenant      string             `json:"tenant"`
	Prediction  *serve.Prediction  `json:"prediction,omitempty"`
	Predictions []serve.Prediction `json:"predictions,omitempty"`
}

// ShardHint tells a misdirected client which replica owns the tenant.
type ShardHint struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr,omitempty"`
}

type apiError struct {
	Code      string     `json:"code"`
	Message   string     `json:"message"`
	ShardHint *ShardHint `json:"shard_hint,omitempty"`
}

type errorEnvelope struct {
	Error apiError `json:"error"`
}

type healthResponse struct {
	Status   string `json:"status"`
	Tenants  int    `json:"tenants"`
	Resident int    `json:"resident"`
	Shard    int    `json:"shard"`
	Replicas int    `json:"replicas"`
}

// Handler returns the gateway's mux, wrapped in the observability
// middleware (request IDs, trace propagation, per-route metrics, SLO
// accounting, optional access logs).
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/label", methods("POST", func(w http.ResponseWriter, r *http.Request) {
		g.handleLabel(w, r, g.opts.DefaultTenant)
	}))
	mux.HandleFunc("/v1/tenants/{tenant}/label", methods("POST", func(w http.ResponseWriter, r *http.Request) {
		g.handleLabel(w, r, r.PathValue("tenant"))
	}))
	mux.HandleFunc("/v1/bundles", methods("GET", g.handleBundles))
	mux.HandleFunc("/v1/bundles/{tenant}", methods("POST", g.handlePromote))
	mux.HandleFunc("/v1/bundles/{tenant}/rollback", methods("POST", g.handleRollback))
	mux.HandleFunc("/v1/stats", methods("GET", g.handleStats))
	mux.HandleFunc("/v1/growth", methods("GET", g.handleGrowth))
	mux.HandleFunc("/healthz", methods("GET", g.handleHealth))
	mux.HandleFunc("/metrics", methods("GET", g.handleMetrics))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found", "no route for %s", r.URL.Path)
	})
	return g.instrument(mux)
}

// gwMeta carries what a handler learns about its request (which tenant,
// how many texts) back out to the middleware that opened the span.
type gwMeta struct {
	tenant string
	texts  int
}

type gwMetaKey struct{}

func metaFrom(ctx context.Context) *gwMeta {
	m, _ := ctx.Value(gwMetaKey{}).(*gwMeta)
	return m
}

// statusWriter captures the status code and body size a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// routeLabel maps a request path to the bounded route label of
// serve_http_requests_total — the path itself (tenant IDs, typos) must
// never become a label value.
func routeLabel(path string) string {
	switch {
	case path == "/v1/label" || (strings.HasPrefix(path, "/v1/tenants/") && strings.HasSuffix(path, "/label")):
		return "label"
	case path == "/v1/bundles":
		return "bundles"
	case strings.HasPrefix(path, "/v1/bundles/") && strings.HasSuffix(path, "/rollback"):
		return "rollback"
	case strings.HasPrefix(path, "/v1/bundles/"):
		return "promote"
	case path == "/v1/stats":
		return "stats"
	case path == "/v1/growth":
		return "growth"
	case path == "/healthz":
		return "health"
	case path == "/metrics":
		return "metrics"
	}
	return "other"
}

// instrument wraps the mux with the per-request observability pipeline:
//
//  1. resolve a request ID (echo a sane incoming X-Request-Id, else
//     mint one) and a trace ID (join an incoming W3C traceparent, else
//     mint one), and echo both on the response;
//  2. open the gateway.request root span under that trace ID and put it
//     on the context, so the coalescer's serve.label span nests under it;
//  3. after the handler: per-route/status counters, per-tenant SLO
//     accounting, and the optional rate-capped access log line.
func (g *Gateway) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if rid == "" {
			rid = obs.NewRequestID()
		}
		traceID, _, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			traceID = obs.NewTraceID()
		}
		w.Header().Set("X-Request-Id", rid)
		// The traceparent's parent-id field must be exactly 16 hex
		// digits; an echoed client request ID of another shape cannot be
		// reused there without producing an unparseable header.
		parentID := rid
		if !obs.IsHexID(parentID, 16) {
			parentID = obs.NewRequestID()
		}
		w.Header().Set("Traceparent", obs.FormatTraceparent(traceID, parentID))

		span := obs.StartTrace(g.o.Tracer, traceID, "gateway.request")
		span.SetStr("request_id", rid)

		meta := &gwMeta{}
		ctx := context.WithValue(r.Context(), gwMetaKey{}, meta)
		ctx = obs.ContextWithSpan(ctx, span)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))

		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(start)
		route := routeLabel(r.URL.Path)
		span.SetStr("route", route)
		span.SetInt("status", int64(sw.status))
		if meta.tenant != "" {
			span.SetStr("tenant", meta.tenant)
		}
		if meta.texts > 0 {
			span.SetInt("texts", int64(meta.texts))
		}
		if sw.status >= 500 {
			span.SetErr(fmt.Errorf("http %d", sw.status))
		}
		span.End()

		g.mHTTP.With2(route, strconv.Itoa(sw.status)).Inc()
		if meta.tenant != "" {
			g.slo.Observe(meta.tenant, dur.Seconds(), sw.status >= 500)
		}
		if g.opts.AccessLog {
			g.accessLog(r, sw, meta, rid, traceID, dur)
		}
	})
}

// accessLog emits one structured line for the request, enforcing the
// per-second cap.
func (g *Gateway) accessLog(r *http.Request, sw *statusWriter, meta *gwMeta, rid, traceID string, dur time.Duration) {
	now := time.Now().Unix()
	g.logMu.Lock()
	if now != g.logWindow {
		g.logWindow, g.emitted = now, 0
	}
	if g.emitted >= g.opts.AccessLogMaxPerSec {
		g.suppressed++
		g.logMu.Unlock()
		return
	}
	g.emitted++
	suppressed := g.suppressed
	g.suppressed = 0
	g.logMu.Unlock()

	attrs := []any{
		"method", r.Method,
		"path", r.URL.Path,
		"route", routeLabel(r.URL.Path),
		"status", sw.status,
		"bytes", sw.bytes,
		"duration_ms", float64(dur) / float64(time.Millisecond),
		"request_id", rid,
		"trace_id", traceID,
	}
	if meta.tenant != "" {
		attrs = append(attrs, "tenant", meta.tenant)
	}
	if meta.texts > 0 {
		attrs = append(attrs, "texts", meta.texts)
	}
	if suppressed > 0 {
		attrs = append(attrs, "suppressed", suppressed)
	}
	g.o.Logger.Info("access", attrs...)
}

// sanitizeRequestID accepts a caller-supplied request ID only when it is
// short and header/log-safe; anything else is replaced with a minted ID.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		ok := c == '-' || c == '_' || c == '.' ||
			(c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !ok {
			return ""
		}
	}
	return id
}

// methods guards a handler: non-matching verbs get 405 with an Allow
// header and the uniform envelope (the stdlib mux's built-in 405 writes
// a plain-text body, so method dispatch stays out of the patterns).
func methods(allow string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for _, m := range strings.Split(allow, ", ") {
			if r.Method == m {
				h(w, r)
				return
			}
		}
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"%s is not allowed here; use %s", r.Method, allow)
	}
}

// checkShard enforces consistent-hash tenant ownership: a request for a
// tenant another replica owns is answered 421 with a shard hint, and
// the client (or a routing proxy) retries against the right replica.
func (g *Gateway) checkShard(w http.ResponseWriter, tenant string) bool {
	if g.opts.Ring == nil {
		return true
	}
	owner := g.opts.Ring.Owner(tenant)
	if owner == g.opts.SelfShard {
		return true
	}
	g.mMisdirected.Inc()
	hint := &ShardHint{Shard: owner}
	if owner >= 0 && owner < len(g.opts.Peers) {
		hint.Addr = g.opts.Peers[owner]
	}
	writeErrorHint(w, http.StatusMisdirectedRequest, "wrong_shard", hint,
		"tenant %q is served by replica %d of %d", tenant, owner, g.opts.Ring.Replicas())
	return false
}

func (g *Gateway) handleLabel(w http.ResponseWriter, r *http.Request, tenant string) {
	if m := metaFrom(r.Context()); m != nil {
		m.tenant = tenant
	}
	if !g.checkShard(w, tenant) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, g.opts.MaxLabelBytes)
	var req labelRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"request body exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request", "decoding request: %v", err)
		return
	}
	single := req.Text != ""
	if single == (len(req.Texts) > 0) {
		writeError(w, http.StatusBadRequest, "bad_request", `provide exactly one of "text" and "texts"`)
		return
	}
	texts := req.Texts
	if single {
		texts = []string{req.Text}
	}
	if m := metaFrom(r.Context()); m != nil {
		m.texts = len(texts)
	}
	preds, err := g.reg.Label(r.Context(), tenant, texts, req.Explain)
	if err != nil {
		g.writeLabelError(w, tenant, err)
		return
	}
	resp := labelResponse{Tenant: tenant}
	if single {
		resp.Prediction = &preds[0]
	} else {
		resp.Predictions = preds
	}
	writeJSON(w, resp)
}

func (g *Gateway) writeLabelError(w http.ResponseWriter, tenant string, err error) {
	switch {
	case errors.Is(err, ErrUnknownTenant):
		writeError(w, http.StatusNotFound, "unknown_tenant", "tenant %q is not registered", tenant)
	case errors.Is(err, serve.ErrOverloaded):
		writeError(w, http.StatusTooManyRequests, "overloaded",
			"coalescer queue is full; retry with backoff")
	case errors.Is(err, serve.ErrClosed), errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "unavailable", "server is shutting down")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client is gone or out of time; the body is written for
		// completeness but usually unread.
		writeError(w, http.StatusServiceUnavailable, "deadline", "request context ended: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
	}
}

func (g *Gateway) handleBundles(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"bundles": g.reg.List()})
}

func (g *Gateway) handlePromote(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if !g.checkShard(w, tenant) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, g.opts.MaxBundleBytes)
	data, err := io.ReadAll(r.Body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				"bundle exceeds %d bytes", mbe.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		return
	}
	b := new(bundle.Bundle)
	if err := json.Unmarshal(data, b); err != nil {
		writeError(w, http.StatusBadRequest, "bad_bundle", "%v", err)
		return
	}
	force := r.URL.Query().Get("force") == "true" || r.URL.Query().Get("force") == "1"
	rep, err := g.reg.Promote(tenant, b, force)
	switch {
	case errors.Is(err, ErrShadowGate):
		writeError(w, http.StatusConflict, "shadow_rejected",
			"candidate agrees with incumbent on only %.1f%% of %d recent texts (floor %.1f%%); retrain or promote with ?force=true",
			rep.Agreement*100, rep.ShadowSample, g.reg.opts.ShadowAgreement*100)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "unavailable", "server is shutting down")
	case err != nil:
		writeError(w, http.StatusBadRequest, "bad_bundle", "%v", err)
	default:
		writeJSON(w, rep)
	}
}

func (g *Gateway) handleRollback(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if !g.checkShard(w, tenant) {
		return
	}
	rep, err := g.reg.Rollback(tenant)
	switch {
	case errors.Is(err, ErrUnknownTenant):
		writeError(w, http.StatusNotFound, "unknown_tenant", "tenant %q is not registered", tenant)
	case errors.Is(err, ErrNoPrevious):
		writeError(w, http.StatusConflict, "no_previous", "tenant %q has no previous bundle", tenant)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "unavailable", "server is shutting down")
	case err != nil:
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
	default:
		writeJSON(w, rep)
	}
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	resident := 0
	infos := g.reg.List()
	for _, info := range infos {
		if info.Resident {
			resident++
		}
	}
	writeJSON(w, healthResponse{
		Status:   "ok",
		Tenants:  len(infos),
		Resident: resident,
		Shard:    g.opts.SelfShard,
		Replicas: g.opts.Ring.Replicas(),
	})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if g.o.Metrics == nil {
		writeError(w, http.StatusNotFound, "not_found", "metrics registry disabled")
		return
	}
	obs.SetRuntimeGauges(g.o.Metrics)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g.o.Metrics.WritePrometheus(w) //nolint:errcheck — client went away
}

// sloWindows are the rolling windows /v1/stats reports.
var sloWindows = []time.Duration{time.Minute, 5 * time.Minute, time.Hour}

// statsResponse is the /v1/stats body: per-tenant SLO windows plus a
// runtime health snapshot.
type statsResponse struct {
	Objective float64                      `json:"objective"`
	Windows   []string                     `json:"windows"`
	Tenants   map[string][]obs.WindowStats `json:"tenants"`
	Runtime   obs.RuntimeSnapshot          `json:"runtime"`
	Sampler   *obs.SamplerStats            `json:"trace_sampler,omitempty"`
}

// handleGrowth reports the growth daemon's status, or 404 when no
// daemon is wired in (growth disabled or not configured for this
// replica).
func (g *Gateway) handleGrowth(w http.ResponseWriter, r *http.Request) {
	if g.opts.Growth == nil {
		writeError(w, http.StatusNotFound, "growth_disabled", "no growth daemon is running")
		return
	}
	writeJSON(w, g.opts.Growth())
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Objective: g.slo.Objective(),
		Windows:   make([]string, len(sloWindows)),
		Tenants:   g.slo.StatsAll(sloWindows...),
		Runtime:   obs.ReadRuntime(),
	}
	for i, win := range sloWindows {
		resp.Windows[i] = win.String()
	}
	if st, ok := g.o.Tracer.(*obs.SampledTracer); ok {
		s := st.Stats()
		resp.Sampler = &s
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck — client went away
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeErrorHint(w, status, code, nil, format, args...)
}

func writeErrorHint(w http.ResponseWriter, status int, code string, hint *ShardHint, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	//nolint:errcheck — client went away
	json.NewEncoder(w).Encode(errorEnvelope{Error: apiError{
		Code: code, Message: fmt.Sprintf(format, args...), ShardHint: hint,
	}})
}
