package registry_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"datasculpt/internal/dataset"
	"datasculpt/internal/obs"
	"datasculpt/internal/registry"
	"datasculpt/internal/serve"
)

// -update regenerates testdata/errors.golden from the current envelope
// rendering: go test ./internal/registry/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current error envelopes")

func newGatewayServer(t *testing.T, gwOpts registry.GatewayOptions) (*httptest.Server, *registry.Registry) {
	t.Helper()
	_, _, path := trained(t)
	r, mreg := newRegistry(t, registry.Options{})
	if err := r.Register("t", path); err != nil {
		t.Fatal(err)
	}
	gw := registry.NewGateway(r, obs.New(nil, mreg, nil), gwOpts)
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return ts, r
}

// TestGatewayDifferentialIdentity extends the serving bit-identity
// contract through the redesigned API: every validation text labeled
// over HTTP via the tenant-scoped route (and the bare alias) carries
// exactly the offline Evaluate-path posterior, bit for bit after the
// JSON round trip.
func TestGatewayDifferentialIdentity(t *testing.T) {
	b, d, _ := trained(t)
	ts, _ := newGatewayServer(t, registry.GatewayOptions{DefaultTenant: "t"})

	var texts []string
	for _, e := range d.Valid {
		texts = append(texts, e.Text)
	}
	X := b.Featurizer.TransformAll(dataset.FeatureCorpus(d.Valid))
	probas := b.EndModel.PredictProbaAll(X)
	labels := b.EndModel.Predict(X)

	body, _ := json.Marshal(map[string]any{"texts": texts})
	resp, err := http.Post(ts.URL+"/v1/tenants/t/label", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Tenant      string             `json:"tenant"`
		Predictions []serve.Prediction `json:"predictions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Tenant != "t" || len(out.Predictions) != len(texts) {
		t.Fatalf("tenant %q, %d predictions for %d texts", out.Tenant, len(out.Predictions), len(texts))
	}
	for i, p := range out.Predictions {
		if p.Label != labels[i] {
			t.Fatalf("text %d: served label %d, offline %d", i, p.Label, labels[i])
		}
		for c := range probas[i] {
			if math.Float64bits(p.Proba[c]) != math.Float64bits(probas[i][c]) {
				t.Fatalf("text %d class %d: served %v, offline %v (bits differ)", i, c, p.Proba[c], probas[i][c])
			}
		}
	}

	// Single-text requests through the bare alias route to the same
	// tenant and stay bit-identical too.
	for i := 0; i < 10 && i < len(texts); i++ {
		body, _ := json.Marshal(map[string]any{"text": texts[i]})
		resp, err := http.Post(ts.URL+"/v1/label", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var single struct {
			Tenant     string            `json:"tenant"`
			Prediction *serve.Prediction `json:"prediction"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&single); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if single.Prediction == nil || single.Prediction.Label != labels[i] {
			t.Fatalf("text %d: single prediction %+v, offline label %d", i, single.Prediction, labels[i])
		}
		for c := range probas[i] {
			if math.Float64bits(single.Prediction.Proba[c]) != math.Float64bits(probas[i][c]) {
				t.Fatalf("text %d class %d: single served %v, offline %v", i, c, single.Prediction.Proba[c], probas[i][c])
			}
		}
	}
}

// goldenCase is one request whose rendered error response is pinned in
// testdata/errors.golden.
type goldenCase struct {
	name    string
	sharded bool // run against the 3-replica gateway instead
	method  string
	path    string
	body    string
}

// TestGatewayGoldenErrors pins the uniform error envelope — status,
// headers, and body — for every failure mode of the /v1 surface.
func TestGatewayGoldenErrors(t *testing.T) {
	ts, _ := newGatewayServer(t, registry.GatewayOptions{MaxLabelBytes: 64})
	// A second surface with sharding on: replica 0 of 3, so tenant
	// "globex" (owned by replica 1) is misdirected here.
	shardTS, _ := newGatewayServer(t, registry.GatewayOptions{
		Ring:      registry.NewRing(3, 0),
		SelfShard: 0,
		Peers:     []string{"127.0.0.1:7000", "127.0.0.1:7001", "127.0.0.1:7002"},
	})

	cases := []goldenCase{
		{name: "bad-json", method: "POST", path: "/v1/label", body: `{not json`},
		{name: "unknown-field", method: "POST", path: "/v1/label", body: `{"txt": "hi"}`},
		{name: "neither-text-nor-texts", method: "POST", path: "/v1/label", body: `{"explain": true}`},
		{name: "both-text-and-texts", method: "POST", path: "/v1/label", body: `{"text": "a", "texts": ["b"]}`},
		{name: "body-too-large", method: "POST", path: "/v1/label",
			body: `{"text": "` + strings.Repeat("spam and eggs ", 8) + `"}`},
		{name: "unknown-tenant", method: "POST", path: "/v1/tenants/ghost/label", body: `{"text": "hi"}`},
		{name: "method-not-allowed", method: "GET", path: "/v1/label"},
		{name: "unknown-route", method: "GET", path: "/v1/nope"},
		{name: "rollback-no-previous", method: "POST", path: "/v1/bundles/t/rollback"},
		{name: "bad-bundle", method: "POST", path: "/v1/bundles/t", body: `{"format": "not-a-bundle", "version": 1}`},
		{name: "wrong-shard", sharded: true, method: "POST", path: "/v1/tenants/globex/label", body: `{"text": "hi"}`},
	}

	var buf bytes.Buffer
	for _, c := range cases {
		base := ts.URL
		if c.sharded {
			base = shardTS.URL
		}
		req, err := http.NewRequest(c.method, base+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "== %s\n%s %s\nstatus: %d\n", c.name, c.method, c.path, resp.StatusCode)
		for _, h := range []string{"Allow", "Retry-After", "Content-Type"} {
			if v := resp.Header.Get(h); v != "" {
				fmt.Fprintf(&buf, "%s: %s\n", h, v)
			}
		}
		buf.Write(body)
		buf.WriteString("\n")

		// Independent of the golden file: every error body must parse as
		// the uniform envelope with a non-empty code and message.
		var env struct {
			Error struct {
				Code      string `json:"code"`
				Message   string `json:"message"`
				ShardHint *struct {
					Shard int    `json:"shard"`
					Addr  string `json:"addr"`
				} `json:"shard_hint"`
			} `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Errorf("%s: body is not the error envelope: %v (%s)", c.name, err, body)
			continue
		}
		if env.Error.Code == "" || env.Error.Message == "" {
			t.Errorf("%s: envelope missing code or message: %s", c.name, body)
		}
		if c.name == "wrong-shard" {
			if env.Error.ShardHint == nil || env.Error.ShardHint.Shard != 1 || env.Error.ShardHint.Addr != "127.0.0.1:7001" {
				t.Errorf("wrong-shard: bad hint in %s", body)
			}
		} else if env.Error.ShardHint != nil {
			t.Errorf("%s: unexpected shard hint", c.name)
		}
	}

	golden := filepath.Join("testdata", "errors.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("error envelopes drifted from %s (run with -update to regenerate):\n got:\n%s\nwant:\n%s",
			golden, buf.String(), want)
	}
}

// TestGatewayShardRouting: the sharded gateway answers its own tenants
// and misdirects the rest; an unsharded gateway answers everything.
func TestGatewayShardRouting(t *testing.T) {
	_, d, _ := trained(t)
	ts, _ := newGatewayServer(t, registry.GatewayOptions{
		Ring:      registry.NewRing(3, 0),
		SelfShard: 0,
	})
	body, _ := json.Marshal(map[string]any{"text": d.Valid[0].Text})

	// "t" hashes to replica 0: served here.
	resp, err := http.Post(ts.URL+"/v1/tenants/t/label", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("own-shard tenant: status %d", resp.StatusCode)
	}

	// "globex" hashes to replica 1: misdirected, even for promote/rollback.
	for _, c := range []struct{ method, path string }{
		{"POST", "/v1/tenants/globex/label"},
		{"POST", "/v1/bundles/globex"},
		{"POST", "/v1/bundles/globex/rollback"},
	} {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Errorf("%s %s: status %d, want 421", c.method, c.path, resp.StatusCode)
		}
	}

	// /healthz reports the shard configuration.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Shard    int `json:"shard"`
		Replicas int `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Shard != 0 || health.Replicas != 3 {
		t.Errorf("health shard/replicas = %d/%d, want 0/3", health.Shard, health.Replicas)
	}
}

// TestGatewayMetricsEndpoint: /metrics speaks Prometheus text and
// carries the serve_* family after traffic.
func TestGatewayMetricsEndpoint(t *testing.T) {
	_, d, _ := trained(t)
	ts, _ := newGatewayServer(t, registry.GatewayOptions{DefaultTenant: "t"})
	body, _ := json.Marshal(map[string]any{"text": d.Valid[0].Text})
	resp, err := http.Post(ts.URL+"/v1/label", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"serve_requests_total", "serve_tenants", "serve_bundle_loads_total"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

// TestGatewayPromoteOverHTTP: upload-promote an artifact through the
// API, watch the generation tick, and verify labeling still answers.
func TestGatewayPromoteOverHTTP(t *testing.T) {
	_, d, path := trained(t)
	ts, _ := newGatewayServer(t, registry.GatewayOptions{})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/bundles/t", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var rep registry.PromoteReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Generation != 1 {
		t.Fatalf("promote: status %d, report %+v", resp.StatusCode, rep)
	}

	resp, err = http.Get(ts.URL + "/v1/bundles")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Bundles []registry.Info `json:"bundles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	infos := listing.Bundles
	if len(infos) != 1 || infos[0].Generation != 1 || infos[0].Source != "api-promote" {
		t.Fatalf("listing after promote: %+v", infos)
	}

	body, _ := json.Marshal(map[string]any{"text": d.Valid[0].Text})
	resp, err = http.Post(ts.URL+"/v1/tenants/t/label", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("label after promote: status %d", resp.StatusCode)
	}
}
