// Package registry is the multi-tenant serving layer of DataSculpt-Go:
// it maps tenant IDs to loaded model bundles, keeps an LRU of mapped
// bundles so memory stays bounded as the tenant set grows, hot-swaps
// bundles atomically with zero downtime (promote with a shadow-score
// gate, roll back to the previous artifact), and shards tenants across
// daemon replicas with a consistent-hash ring.
//
// Residency model: a registered tenant always answers, but only
// MaxResident tenants keep a live coalescer (a serve.Server) mapped at
// once. Each mapped server lives behind a refcounted handle — the
// registry holds one reference, every in-flight Label holds another —
// so an eviction or hot-swap never interrupts a request: the old
// server drains and closes only after its last reference is released,
// while new requests already route to the new one.
package registry

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"datasculpt/internal/bundle"
	"datasculpt/internal/dataset"
	"datasculpt/internal/obs"
	"datasculpt/internal/serve"
)

var (
	// ErrUnknownTenant is returned for tenants never registered.
	ErrUnknownTenant = errors.New("registry: unknown tenant")
	// ErrShadowGate is returned by Promote when the candidate bundle
	// disagrees with the incumbent on too much recent traffic.
	ErrShadowGate = errors.New("registry: shadow gate rejected bundle")
	// ErrNoPrevious is returned by Rollback when the tenant has no
	// earlier bundle to return to.
	ErrNoPrevious = errors.New("registry: no previous bundle to roll back to")
	// ErrClosed is returned once Close has begun.
	ErrClosed = errors.New("registry: closed")
)

// Options tunes the registry.
type Options struct {
	// MaxResident caps how many tenants keep a mapped serve.Server at
	// once (default 8). Evicted tenants are remapped on demand.
	MaxResident int
	// Serve is the coalescer configuration every tenant server runs with.
	Serve serve.Options
	// ShadowSample is the per-tenant ring buffer of recent request texts
	// kept for shadow-scoring promotions (default 256; 0 keeps the
	// buffer empty, which disables the gate).
	ShadowSample int
	// ShadowAgreement is the minimum fraction of the shadow sample on
	// which a candidate bundle must agree with the incumbent to be
	// promoted without force (default 0.9).
	ShadowAgreement float64
	// Capture, when set, observes every admitted request's texts with
	// the tenant they were served for — the feed for the online growth
	// loop's reservoir. It runs on the request goroutine, so it must be
	// cheap and must not retain the slice past the call.
	Capture func(tenant string, texts []string)
}

func (o Options) withDefaults() Options {
	if o.MaxResident <= 0 {
		o.MaxResident = 8
	}
	if o.ShadowSample < 0 {
		o.ShadowSample = 0
	} else if o.ShadowSample == 0 {
		o.ShadowSample = 256
	}
	if o.ShadowAgreement <= 0 {
		o.ShadowAgreement = 0.9
	}
	return o
}

// Info describes one registered bundle for the listing API.
type Info struct {
	Tenant     string            `json:"tenant"`
	Resident   bool              `json:"resident"`
	Source     string            `json:"source"`
	Generation int               `json:"generation"`
	Dataset    string            `json:"dataset"`
	Task       string            `json:"task"`
	ClassNames []string          `json:"class_names"`
	NumLFs     int               `json:"num_lfs"`
	Provenance bundle.Provenance `json:"provenance"`
}

// PromoteReport is the outcome of a Promote or Rollback: the tenant's
// new generation and, when the shadow gate ran, what it measured.
type PromoteReport struct {
	Tenant     string `json:"tenant"`
	Generation int    `json:"generation"`
	// Gated reports whether the shadow gate actually scored the
	// candidate (it needs an incumbent server and recent traffic).
	Gated bool `json:"gated"`
	// ShadowSample is how many recent texts were scored; Agreement the
	// fraction on which candidate and incumbent predicted the same class.
	ShadowSample int     `json:"shadow_sample"`
	Agreement    float64 `json:"agreement"`
}

// handle is one mapped serve.Server plus its reference count. It is
// created with one reference (the registry's); every in-flight request
// takes another. When the count hits zero the server is closed — which
// drains its queue — and done is closed, so code that wants to re-serve
// the same bundle object can wait for the old server to be fully gone.
type handle struct {
	srv  *serve.Server
	b    *bundle.Bundle
	refs atomic.Int64
	done chan struct{}
}

func newHandle(srv *serve.Server, b *bundle.Bundle) *handle {
	h := &handle{srv: srv, b: b, done: make(chan struct{})}
	h.refs.Store(1)
	return h
}

// acquire takes a reference; it fails (false) once the count has hit
// zero — the handle is already closing and must not be revived.
func (h *handle) acquire() bool {
	for {
		n := h.refs.Load()
		if n <= 0 {
			return false
		}
		if h.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

func (h *handle) release() {
	if h.refs.Add(-1) == 0 {
		h.srv.Close()
		close(h.done)
	}
}

// entry is one registered tenant.
type entry struct {
	tenant string

	// mu serializes mapping, promotion, and rollback for this tenant.
	// The Label fast path does not take it.
	mu sync.Mutex
	// cur is the mapped server, nil when evicted or not yet loaded.
	cur atomic.Pointer[handle]
	// lastHandle is the most recently created handle for this entry,
	// kept so a remap of the same bundle object can wait for the old
	// server (which shares the bundle's worker knobs) to finish closing.
	lastHandle *handle
	// pinned is the in-memory bundle served for tenants whose content
	// does not live on disk (uploads, promotions); nil means reload
	// from source on demand.
	pinned *bundle.Bundle
	source string
	// prev / prevSource / prevHandle record the bundle a Rollback
	// returns to, and the handle that last served it.
	prev       *bundle.Bundle
	prevSource string
	prevHandle *handle
	gen        int
	info       atomic.Pointer[Info]

	// recent is a ring buffer of the tenant's latest request texts —
	// the shadow-scoring sample for promotions.
	recentMu sync.Mutex
	recent   []string
	recentN  int

	lastUsed int64 // LRU clock; guarded by Registry.mu
}

func (e *entry) setInfo(b *bundle.Bundle, source string, gen int) {
	e.info.Store(&Info{
		Tenant:     e.tenant,
		Source:     source,
		Generation: gen,
		Dataset:    b.Dataset.Name,
		Task:       b.Dataset.Task,
		ClassNames: append([]string(nil), b.Dataset.ClassNames...),
		NumLFs:     len(b.LFs),
		Provenance: b.Provenance,
	})
}

func (e *entry) recordRecent(texts []string, cap int) {
	if cap <= 0 {
		return
	}
	e.recentMu.Lock()
	for _, t := range texts {
		if len(e.recent) < cap {
			e.recent = append(e.recent, t)
		} else {
			e.recent[e.recentN%cap] = t
		}
		e.recentN++
	}
	e.recentMu.Unlock()
}

func (e *entry) sampleRecent() []string {
	e.recentMu.Lock()
	defer e.recentMu.Unlock()
	return append([]string(nil), e.recent...)
}

// Registry maps tenants to bundles and serves them. Safe for
// concurrent use.
type Registry struct {
	opts Options
	o    *obs.Obs

	mu      sync.Mutex
	tenants map[string]*entry
	order   []string // registration order, for stable listings
	clock   int64
	closed  bool

	mLoads     *obs.CounterVec
	mEvictions *obs.CounterVec
	mSwaps     *obs.CounterVec
	mRollbacks *obs.CounterVec
	mShadowRej *obs.CounterVec
	mResident  *obs.Gauge
	mTenants   *obs.Gauge
}

// New builds an empty registry. The obs bundle may be nil (telemetry
// disabled).
func New(o *obs.Obs, opts Options) *Registry {
	if o == nil {
		o = obs.Default()
	}
	r := &Registry{
		opts:    opts.withDefaults(),
		o:       o,
		tenants: make(map[string]*entry),
	}
	reg := o.Metrics
	r.mLoads = reg.CounterVec("serve_bundle_loads_total", "Bundles mapped into a live server (registrations, reloads, promotions).", "tenant")
	r.mEvictions = reg.CounterVec("serve_bundle_evictions_total", "Resident bundles unmapped by the LRU.", "tenant")
	r.mSwaps = reg.CounterVec("serve_bundle_swaps_total", "Hot-swap promotions applied.", "tenant")
	r.mRollbacks = reg.CounterVec("serve_bundle_rollbacks_total", "Rollbacks applied.", "tenant")
	r.mShadowRej = reg.CounterVec("serve_shadow_rejects_total", "Promotions rejected by the shadow-score gate.", "tenant")
	r.mResident = reg.Gauge("serve_bundles_resident", "Tenants with a mapped server right now.")
	r.mTenants = reg.Gauge("serve_tenants", "Registered tenants.")
	return r
}

// serveOpts returns the shared coalescer configuration stamped with the
// tenant, so every serve.Server emits tenant-labeled metrics.
func (r *Registry) serveOpts(tenant string) serve.Options {
	o := r.opts.Serve
	o.Tenant = tenant
	if cap := r.opts.Capture; cap != nil {
		o.Capture = func(texts []string) { cap(tenant, texts) }
	}
	return o
}

func validTenant(tenant string) error {
	if tenant == "" {
		return errors.New("registry: empty tenant id")
	}
	if strings.ContainsAny(tenant, "/ \t\n") {
		return fmt.Errorf("registry: tenant id %q contains a separator", tenant)
	}
	return nil
}

// Register maps a tenant to a bundle file. The bundle is loaded and
// validated eagerly (a broken artifact fails registration, not the
// first request) but may be evicted and reloaded from path later.
func (r *Registry) Register(tenant, path string) error {
	b, err := bundle.Load(path)
	if err != nil {
		return err
	}
	return r.install(tenant, b, path, false)
}

// RegisterBundle maps a tenant to an in-memory bundle, which stays
// pinned (evictions close its server but keep the bundle). The caller
// must hand over ownership: the registry adjusts the bundle's worker
// configuration and the same *Bundle must not be registered twice.
func (r *Registry) RegisterBundle(tenant string, b *bundle.Bundle) error {
	if b == nil {
		return errors.New("registry: nil bundle")
	}
	if err := b.Validate(); err != nil {
		return err
	}
	return r.install(tenant, b, "inline", true)
}

func (r *Registry) install(tenant string, b *bundle.Bundle, source string, pin bool) error {
	if err := validTenant(tenant); err != nil {
		return err
	}
	e := &entry{tenant: tenant, source: source}
	if pin {
		e.pinned = b
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if _, exists := r.tenants[tenant]; exists {
		r.mu.Unlock()
		return fmt.Errorf("registry: tenant %q already registered", tenant)
	}
	r.tenants[tenant] = e
	r.order = append(r.order, tenant)
	r.clock++
	e.lastUsed = r.clock
	r.mTenants.Set(float64(len(r.tenants)))
	r.mu.Unlock()

	e.mu.Lock()
	srv, err := serve.New(b, r.o, r.serveOpts(tenant))
	if err != nil {
		e.mu.Unlock()
		r.mu.Lock()
		delete(r.tenants, tenant)
		r.order = r.order[:len(r.order)-1]
		r.mTenants.Set(float64(len(r.tenants)))
		r.mu.Unlock()
		return err
	}
	h := newHandle(srv, b)
	e.lastHandle = h
	e.setInfo(b, source, 0)
	e.cur.Store(h)
	e.mu.Unlock()
	r.mLoads.With1(tenant).Inc()
	r.rebalance(e)
	return nil
}

// Tenants returns the registered tenant IDs in registration order.
func (r *Registry) Tenants() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// Has reports whether tenant is registered.
func (r *Registry) Has(tenant string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.tenants[tenant]
	return ok
}

// List describes every registered bundle, in registration order.
func (r *Registry) List() []Info {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.order))
	for _, t := range r.order {
		entries = append(entries, r.tenants[t])
	}
	r.mu.Unlock()
	out := make([]Info, 0, len(entries))
	for _, e := range entries {
		info := e.info.Load()
		if info == nil {
			continue
		}
		cp := *info
		cp.Resident = e.cur.Load() != nil
		out = append(out, cp)
	}
	return out
}

// Label routes one labeling request to the tenant's server, mapping the
// bundle in first if the LRU had evicted it. The texts are recorded in
// the tenant's shadow sample.
func (r *Registry) Label(ctx context.Context, tenant string, texts []string, explain bool) ([]serve.Prediction, error) {
	h, e, err := r.acquireServer(tenant)
	if err != nil {
		return nil, err
	}
	defer h.release()
	e.recordRecent(texts, r.opts.ShadowSample)
	return h.srv.Label(ctx, texts, explain)
}

// acquireServer returns a referenced handle for the tenant's current
// server; the caller must release it.
func (r *Registry) acquireServer(tenant string) (*handle, *entry, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, nil, ErrClosed
	}
	e := r.tenants[tenant]
	if e == nil {
		r.mu.Unlock()
		return nil, nil, ErrUnknownTenant
	}
	r.clock++
	e.lastUsed = r.clock
	r.mu.Unlock()

	for {
		if h := e.cur.Load(); h != nil && h.acquire() {
			return h, e, nil
		}
		e.mu.Lock()
		if h := e.cur.Load(); h != nil && h.acquire() {
			e.mu.Unlock()
			return h, e, nil
		}
		h, err := r.mapIn(e)
		if err != nil {
			e.mu.Unlock()
			return nil, nil, err
		}
		ok := h.acquire()
		e.mu.Unlock()
		if ok {
			return h, e, nil
		}
		// The freshly mapped server was already evicted by a racing
		// tenant storm — take the slow path again.
	}
}

// mapIn (entry.mu held) maps the tenant's bundle into a live server.
func (r *Registry) mapIn(e *entry) (*handle, error) {
	b := e.pinned
	if b == nil {
		var err error
		b, err = bundle.Load(e.source)
		if err != nil {
			return nil, err
		}
	} else if e.lastHandle != nil {
		// Re-serving the exact bundle object a previous server used:
		// wait for that server to finish closing so the two never share
		// the bundle's mutable worker configuration.
		<-e.lastHandle.done
	}
	srv, err := serve.New(b, r.o, r.serveOpts(e.tenant))
	if err != nil {
		return nil, err
	}
	h := newHandle(srv, b)
	e.lastHandle = h
	e.cur.Store(h)
	r.mLoads.With1(e.tenant).Inc()
	r.rebalance(e)
	return h, nil
}

// rebalance evicts least-recently-used resident tenants (never keep)
// until at most MaxResident servers are mapped. Handles are released
// outside the registry lock; each closes once its in-flight requests
// drain.
func (r *Registry) rebalance(keep *entry) {
	var releases []*handle
	r.mu.Lock()
	resident := 0
	for _, e := range r.tenants {
		if e.cur.Load() != nil {
			resident++
		}
	}
	for resident > r.opts.MaxResident {
		var victim *entry
		for _, e := range r.tenants {
			if e == keep {
				continue
			}
			if e.cur.Load() == nil {
				continue
			}
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		if victim == nil {
			break
		}
		h := victim.cur.Load()
		if h == nil || !victim.cur.CompareAndSwap(h, nil) {
			continue // lost a race with a swap on this entry; re-count
		}
		resident--
		r.mEvictions.With1(victim.tenant).Inc()
		releases = append(releases, h)
	}
	r.mResident.Set(float64(resident))
	r.mu.Unlock()
	for _, h := range releases {
		h.release()
	}
}

// Promote hot-swaps the tenant's bundle for nb with zero downtime:
// in-flight requests finish on the old server, new requests route to
// the new one the moment the pointer swaps. Unless force is set, a
// shadow gate first replays the tenant's recent traffic sample through
// both bundles and rejects the candidate (ErrShadowGate, with the
// report carrying the measured agreement) when they disagree on more
// than 1-ShadowAgreement of it. Promoting an unregistered tenant
// registers it.
func (r *Registry) Promote(tenant string, nb *bundle.Bundle, force bool) (*PromoteReport, error) {
	if nb == nil {
		return nil, errors.New("registry: nil bundle")
	}
	if err := nb.Validate(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	e := r.tenants[tenant]
	if e != nil {
		r.clock++
		e.lastUsed = r.clock
	}
	r.mu.Unlock()
	if e == nil {
		if err := r.install(tenant, nb, "api-promote", true); err != nil {
			return nil, err
		}
		return &PromoteReport{Tenant: tenant}, nil
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.cur.Load()
	rep := &PromoteReport{Tenant: tenant}
	if !force && old != nil {
		if sample := e.sampleRecent(); len(sample) > 0 {
			rep.Gated = true
			rep.ShadowSample = len(sample)
			rep.Agreement = shadowAgreement(old.b, nb, sample)
			if rep.Agreement < r.opts.ShadowAgreement {
				r.mShadowRej.With1(tenant).Inc()
				return rep, ErrShadowGate
			}
		}
	}
	srv, err := serve.New(nb, r.o, r.serveOpts(tenant))
	if err != nil {
		return nil, err
	}
	h := newHandle(srv, nb)
	// The outgoing bundle becomes the rollback target.
	switch {
	case old != nil:
		e.prev, e.prevSource, e.prevHandle = old.b, "", old
	case e.pinned != nil:
		e.prev, e.prevSource, e.prevHandle = e.pinned, "", e.lastHandle
	default:
		e.prev, e.prevSource, e.prevHandle = nil, e.source, nil
	}
	e.lastHandle = h
	e.pinned = nb
	e.source = ""
	e.gen++
	rep.Generation = e.gen
	e.setInfo(nb, "api-promote", e.gen)
	if old == nil {
		e.cur.Store(h)
	} else if e.cur.CompareAndSwap(old, h) {
		old.release()
	} else {
		// old was evicted between our load and the swap; the LRU
		// already released it.
		e.cur.Store(h)
	}
	r.mSwaps.With1(tenant).Inc()
	r.mLoads.With1(tenant).Inc()
	r.rebalance(e)
	return rep, nil
}

// Rollback re-promotes the tenant's previous bundle (the one the last
// Promote or Rollback displaced), without a shadow gate. The displaced
// current bundle becomes the new rollback target, so two rollbacks
// toggle between the last two artifacts.
func (r *Registry) Rollback(tenant string) (*PromoteReport, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	e := r.tenants[tenant]
	if e != nil {
		r.clock++
		e.lastUsed = r.clock
	}
	r.mu.Unlock()
	if e == nil {
		return nil, ErrUnknownTenant
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.prev == nil && e.prevSource == "" {
		return nil, ErrNoPrevious
	}
	pb := e.prev
	if pb == nil {
		var err error
		pb, err = bundle.Load(e.prevSource)
		if err != nil {
			return nil, err
		}
	}
	old := e.cur.Load()
	// Capture the new rollback target before overwriting it.
	var newPrev *bundle.Bundle
	var newPrevSource string
	var newPrevHandle *handle
	switch {
	case old != nil:
		newPrev, newPrevHandle = old.b, old
	case e.pinned != nil:
		newPrev, newPrevHandle = e.pinned, e.lastHandle
	default:
		newPrevSource = e.source
	}
	// Unmap the current server first so its drain cannot overlap the
	// previous bundle's new server.
	if old != nil && e.cur.CompareAndSwap(old, nil) {
		old.release()
	}
	if e.prev != nil && e.prevHandle != nil {
		// Wait for the server that last served pb to be fully closed
		// before building a new one over the same object.
		<-e.prevHandle.done
	}
	srv, err := serve.New(pb, r.o, r.serveOpts(tenant))
	if err != nil {
		r.rebalance(e)
		return nil, err
	}
	h := newHandle(srv, pb)
	e.lastHandle = h
	e.pinned = pb
	e.source = ""
	e.prev, e.prevSource, e.prevHandle = newPrev, newPrevSource, newPrevHandle
	e.gen++
	e.setInfo(pb, "rollback", e.gen)
	e.cur.Store(h)
	r.mRollbacks.With1(tenant).Inc()
	r.mLoads.With1(tenant).Inc()
	r.rebalance(e)
	return &PromoteReport{Tenant: tenant, Generation: e.gen}, nil
}

// Close unmaps every tenant and waits for all servers to drain their
// in-flight requests. Further calls return ErrClosed. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closed = true
	entries := make([]*entry, 0, len(r.tenants))
	for _, e := range r.tenants {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		if h := e.cur.Load(); h != nil && e.cur.CompareAndSwap(h, nil) {
			h.release()
		}
		last, prev := e.lastHandle, e.prevHandle
		e.mu.Unlock()
		if prev != nil {
			<-prev.done
		}
		if last != nil {
			<-last.done
		}
	}
	r.rebalance(nil)
}

// shadowAgreement replays texts through both bundles offline (the same
// featurize→predict path serving uses) and returns the fraction on
// which they predict the same class name. Names, not indices: a
// candidate trained with reordered or different classes must not
// silently pass.
func shadowAgreement(old, nb *bundle.Bundle, texts []string) float64 {
	corpus := make([][]string, len(texts))
	for i, t := range texts {
		e := &dataset.Example{ID: -1, Text: t, Label: dataset.NoLabel, E1Pos: -1, E2Pos: -1}
		corpus[i] = e.FeatureTokens()
	}
	po := old.EndModel.Predict(old.Featurizer.TransformAll(corpus))
	pn := nb.EndModel.Predict(nb.Featurizer.TransformAll(corpus))
	agree := 0
	for i := range po {
		if old.Dataset.ClassNames[po[i]] == nb.Dataset.ClassNames[pn[i]] {
			agree++
		}
	}
	return float64(agree) / float64(len(po))
}
