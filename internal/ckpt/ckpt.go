// Package ckpt is the durable JSONL state machinery shared by every
// subsystem that must survive a kill: the experiment grid checkpoints
// (PR 3) and the online growth loop's cycle journals. One record is one
// JSON line, appended with a single Write call and fsynced, so a crash
// can at worst tear the final line — which the loader tolerates and the
// resumed process simply recomputes. A malformed line anywhere else is
// reported as corruption, never silently skipped.
package ckpt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// maxLine bounds one record on load; growth corpus snapshots embed raw
// served texts, which can run long.
const maxLine = 4 * 1024 * 1024

// Writer appends records to a JSONL file. Appends are mutex-serialized
// and issued as one Write each, then synced, so concurrent writers
// cannot interleave bytes and a crash cannot lose a completed line.
type Writer struct {
	mu sync.Mutex
	f  *os.File
}

// Open opens (creating if needed) a JSONL file for appending.
func Open(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ckpt: opening %s: %w", path, err)
	}
	return &Writer{f: f}, nil
}

// Append writes one record as a single JSONL line and syncs it to disk.
func (w *Writer) Append(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("ckpt: encoding record: %w", err)
	}
	data = append(data, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(data); err != nil {
		return fmt.Errorf("ckpt: appending record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ckpt: syncing: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// Append opens path, appends one record, and closes it — for callers
// that write a handful of records per process lifetime and want every
// one durable without holding a file open.
func Append(path string, v any) error {
	w, err := Open(path)
	if err != nil {
		return err
	}
	aerr := w.Append(v)
	cerr := w.Close()
	if aerr != nil {
		return aerr
	}
	return cerr
}

// Load reads every intact record of a JSONL file into T values. A
// missing file is an empty checkpoint (first run), and a torn or
// malformed final line — the footprint of a crash mid-append — is
// skipped rather than fatal. A malformed line anywhere else is an
// error: that is corruption, not a crash artifact. valid, when
// non-nil, extends "malformed" to records that decode but fail the
// caller's shape check (e.g. a required sub-object missing).
func Load[T any](path string, valid func(*T) bool) ([]T, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: opening %s: %w", path, err)
	}
	defer f.Close()

	var records []T
	var badLine int // 1-based line number of the first malformed line
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		if badLine != 0 {
			// a malformed line followed by more data is corruption
			return nil, fmt.Errorf("ckpt: %s: malformed record at line %d", path, badLine)
		}
		var rec T
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || (valid != nil && !valid(&rec)) {
			badLine = line
			continue
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ckpt: reading %s: %w", path, err)
	}
	return records, nil
}
