package ckpt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type rec struct {
	N    int    `json:"n"`
	Name string `json:"name,omitempty"`
}

func TestLoadMissingFile(t *testing.T) {
	recs, err := Load[rec](filepath.Join(t.TempDir(), "nope.jsonl"), nil)
	if err != nil {
		t.Fatalf("missing file must load as empty, got %v", err)
	}
	if recs != nil {
		t.Fatalf("missing file must load as nil, got %v", recs)
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	w, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(rec{N: i, Name: "r"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Load[rec](path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if r.N != i {
			t.Fatalf("record %d: N=%d", i, r.N)
		}
	}
}

func TestAppendReopens(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	if err := Append(path, rec{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, rec{N: 2}); err != nil {
		t.Fatal(err)
	}
	recs, err := Load[rec](path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].N != 1 || recs[1].N != 2 {
		t.Fatalf("got %+v", recs)
	}
}

func TestTornFinalLineSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	data := `{"n":1}` + "\n" + `{"n":2}` + "\n" + `{"n":3,"na`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Load[rec](path, nil)
	if err != nil {
		t.Fatalf("torn final line must be tolerated, got %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
}

func TestMalformedMidFileFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	data := `{"n":1}` + "\n" + `{"n":2,"tor` + "\n" + `{"n":3}` + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load[rec](path, nil)
	if err == nil {
		t.Fatal("malformed line followed by more data must be an error")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name line 2: %v", err)
	}
}

func TestValidityCheckTreatedAsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	// The final record decodes but fails the shape check: tolerated like
	// a torn line. The same record mid-file is corruption.
	data := `{"n":1,"name":"a"}` + "\n" + `{"n":2}` + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	valid := func(r *rec) bool { return r.Name != "" }
	recs, err := Load[rec](path, valid)
	if err != nil {
		t.Fatalf("invalid final record must be tolerated, got %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}

	data = `{"n":2}` + "\n" + `{"n":1,"name":"a"}` + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load[rec](path, valid); err == nil {
		t.Fatal("invalid mid-file record must be an error")
	}
}

func TestBlankLinesIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.jsonl")
	data := `{"n":1}` + "\n\n" + `{"n":2}` + "\n\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Load[rec](path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
}
