package serve_test

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"datasculpt/internal/serve"
)

// TestServeCaptureHook pins the growth loop's feed point: every
// admitted request's texts reach Options.Capture exactly once, on the
// caller's goroutine, and shed requests never reach it — the capture
// reservoir must sample served traffic, not rejected traffic.
func TestServeCaptureHook(t *testing.T) {
	const depth = 2
	var (
		mu       sync.Mutex
		captured []string
	)
	s, _, d := newServer(t, serve.Options{
		MaxBatch: 1, MaxWait: time.Millisecond, QueueDepth: depth,
		Capture: func(texts []string) {
			mu.Lock()
			captured = append(captured, texts...)
			mu.Unlock()
		},
	})

	held := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.SetBeforeBatch(func() {
		once.Do(func() {
			close(held)
			<-release
		})
	})

	var wg sync.WaitGroup
	admitted := []string{d.Valid[0].Text, d.Valid[1].Text, d.Valid[2].Text}
	label := func(text string) {
		defer wg.Done()
		if _, err := s.Label(context.Background(), []string{text}, false); err != nil {
			t.Errorf("admitted request failed: %v", err)
		}
	}

	// Seed a batch and park the loop, then fill the queue to its bound.
	wg.Add(1)
	go label(admitted[0])
	<-held
	for _, text := range admitted[1:] {
		wg.Add(1)
		go label(text)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(captured)
		mu.Unlock()
		if n == len(admitted) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("captured %d texts while filling the queue, want %d", n, len(admitted))
		}
		time.Sleep(time.Millisecond)
	}

	// Shed requests must not be captured.
	if _, err := s.Label(context.Background(), []string{"overflow"}, false); err != serve.ErrOverloaded {
		t.Fatalf("overflow: err = %v, want ErrOverloaded", err)
	}
	// Neither are empty (rejected) requests.
	if _, err := s.Label(context.Background(), nil, false); err == nil {
		t.Fatal("empty request accepted")
	}

	close(release)
	wg.Wait()

	mu.Lock()
	got := append([]string(nil), captured...)
	mu.Unlock()
	want := append([]string(nil), admitted...)
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("captured %d texts, want %d (%q)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("captured texts diverged: %q vs %q", got, want)
		}
	}
}
