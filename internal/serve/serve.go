// Package serve turns a model bundle into an online labeling service.
//
// The core is a micro-batching coalescer: every incoming text becomes one
// queue item, a single batch loop gathers items until the batch cap or a
// short wait deadline is hit, and the whole batch flows through the same
// parallel TransformAll/PredictProbaAll hot path the offline evaluator
// uses. Because featurization and prediction are per-example independent
// with fixed-order reductions, batch composition cannot influence any
// result: a text served alone, inside a mixed batch, or by the offline
// Evaluate path produces bit-identical probabilities and labels (enforced
// by the differential and race tests in this package).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datasculpt/internal/bundle"
	"datasculpt/internal/dataset"
	"datasculpt/internal/labelmodel"
	"datasculpt/internal/lf"
	"datasculpt/internal/obs"
)

// ErrClosed is returned by Label once Close has begun.
var ErrClosed = errors.New("serve: server closed")

// Options tunes the coalescer.
type Options struct {
	// MaxBatch caps how many texts one batch carries (default 64).
	MaxBatch int
	// MaxWait is how long the first text of a batch waits for company
	// before the batch is dispatched anyway (default 2ms).
	MaxWait time.Duration
	// Workers bounds the goroutines featurization and prediction fan out
	// over per batch (<= 1 sequential; output is identical either way).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	return o
}

// LFVote is one active label function in an explained prediction.
type LFVote struct {
	// Name identifies the LF; Vote is the class it voted.
	Name string `json:"name"`
	Vote int    `json:"vote"`
}

// Prediction is the served result for one text.
type Prediction struct {
	// Label is the end-model argmax class index; Class its name.
	Label int    `json:"label"`
	Class string `json:"class"`
	// Proba is the end-model class distribution.
	Proba []float64 `json:"proba"`
	// LFs lists the label functions that fired (explain mode only).
	LFs []LFVote `json:"lfs,omitempty"`
	// LabelModelProba is the label-model posterior over classes, present
	// in explain mode when the bundle carries a label model and at least
	// one LF fired.
	LabelModelProba []float64 `json:"label_model_proba,omitempty"`
}

// request is one Label call in flight: its examples, its result slots,
// and the countdown that fires done when every slot is filled.
type request struct {
	examples  []*dataset.Example
	preds     []Prediction
	explain   bool
	remaining atomic.Int32
	done      chan struct{}
}

// batchItem addresses one text of one request.
type batchItem struct {
	req *request
	pos int
}

// Server coalesces label requests into batches over a loaded bundle.
type Server struct {
	b         *bundle.Bundle
	predictor *labelmodel.Predictor // nil when the bundle has no label model
	opts      Options
	o         *obs.Obs

	queue     chan batchItem
	quit      chan struct{}
	mu        sync.Mutex
	closed    bool
	producers sync.WaitGroup
	loop      sync.WaitGroup

	mRequests *obs.Counter
	mTexts    *obs.Counter
	mBatches  *obs.Counter
	mErrors   *obs.Counter
	mInflight *obs.Gauge
	mBatchSz  *obs.Histogram
	mLatency  *obs.Histogram
}

// New wires a server around a validated bundle. The obs bundle may be
// nil (telemetry disabled). The server owns the bundle's worker
// configuration from here on.
func New(b *bundle.Bundle, o *obs.Obs, opts Options) (*Server, error) {
	if b == nil {
		return nil, errors.New("serve: nil bundle")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if o == nil {
		o = obs.Default()
	}
	opts = opts.withDefaults()
	b.Featurizer.Workers = opts.Workers
	b.EndModel.SetParallelism(opts.Workers)

	s := &Server{
		b:     b,
		opts:  opts,
		o:     o,
		queue: make(chan batchItem, 4*opts.MaxBatch),
		quit:  make(chan struct{}),
	}
	if b.LabelModel != nil {
		s.predictor = b.LabelModel.NewPredictor()
	}
	reg := o.Metrics
	s.mRequests = reg.Counter("serve_requests_total", "Label requests received.")
	s.mTexts = reg.Counter("serve_texts_total", "Texts labeled.")
	s.mBatches = reg.Counter("serve_batches_total", "Micro-batches dispatched.")
	s.mErrors = reg.Counter("serve_errors_total", "Requests that failed.")
	s.mInflight = reg.Gauge("serve_inflight", "Label requests currently in flight.")
	s.mBatchSz = reg.Histogram("serve_batch_size", "Texts per dispatched micro-batch.", obs.BatchSizeBuckets)
	s.mLatency = reg.Histogram("serve_request_seconds", "Label request latency.", obs.DurationBuckets)

	s.loop.Add(1)
	go s.batchLoop()
	return s, nil
}

// Bundle returns the served bundle (read-only; used by the HTTP layer
// for health/provenance responses).
func (s *Server) Bundle() *bundle.Bundle { return s.b }

// Label labels texts and returns one prediction per text, in order. It
// blocks until the batch loop has processed every text (or ctx is
// cancelled). Safe for concurrent use.
func (s *Server) Label(ctx context.Context, texts []string, explain bool) ([]Prediction, error) {
	if len(texts) == 0 {
		return nil, errors.New("serve: empty request")
	}
	start := time.Now()
	span := s.o.StartSpan(ctx, "serve.label")
	span.SetInt("texts", int64(len(texts)))
	defer span.End()
	s.mRequests.Inc()
	s.mTexts.AddInt(len(texts))
	s.mInflight.Add(1)
	defer s.mInflight.Add(-1)

	req := &request{
		examples: make([]*dataset.Example, len(texts)),
		preds:    make([]Prediction, len(texts)),
		explain:  explain,
		done:     make(chan struct{}),
	}
	req.remaining.Store(int32(len(texts)))
	for i, text := range texts {
		// E1Pos/E2Pos must be -1: zero would mark token 0 as an entity
		// mention and slice the feature window, diverging from how the
		// offline path treats plain-text examples.
		req.examples[i] = &dataset.Example{ID: -1, Text: text, Label: dataset.NoLabel, E1Pos: -1, E2Pos: -1}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.mErrors.Inc()
		span.SetErr(ErrClosed)
		return nil, ErrClosed
	}
	s.producers.Add(1)
	s.mu.Unlock()
	for i := range texts {
		s.queue <- batchItem{req: req, pos: i}
	}
	s.producers.Done()

	select {
	case <-req.done:
		s.mLatency.Observe(time.Since(start).Seconds())
		return req.preds, nil
	case <-ctx.Done():
		s.mErrors.Inc()
		span.SetErr(ctx.Err())
		return nil, fmt.Errorf("serve: %w", ctx.Err())
	}
}

// Close stops accepting requests, waits for enqueued texts to be
// processed, and shuts the batch loop down. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.loop.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.producers.Wait() // every accepted request is fully enqueued
	close(s.quit)
	s.loop.Wait()
}

// batchLoop is the single consumer: it seeds each batch with the first
// available item, fills it, and processes it, until quit — then drains
// whatever is still queued.
func (s *Server) batchLoop() {
	defer s.loop.Done()
	for {
		select {
		case it := <-s.queue:
			s.process(s.fill(it))
		case <-s.quit:
			for {
				select {
				case it := <-s.queue:
					s.process(s.fill(it))
				default:
					return
				}
			}
		}
	}
}

// fill grows a batch seeded with first until MaxBatch items are gathered
// or MaxWait elapses. The wait clock starts with the first item — a lone
// request is never delayed longer than MaxWait.
func (s *Server) fill(first batchItem) []batchItem {
	batch := append(make([]batchItem, 0, s.opts.MaxBatch), first)
	timer := time.NewTimer(s.opts.MaxWait)
	defer timer.Stop()
	for len(batch) < s.opts.MaxBatch {
		select {
		case it := <-s.queue:
			batch = append(batch, it)
		case <-timer.C:
			return batch
		case <-s.quit:
			// Shutting down: take what is immediately available, skip the
			// wait.
			for len(batch) < s.opts.MaxBatch {
				select {
				case it := <-s.queue:
					batch = append(batch, it)
				default:
					return batch
				}
			}
			return batch
		}
	}
	return batch
}

// process runs one batch through the offline hot path — featurize all,
// predict all — and distributes results to their requests. The label is
// derived from the probability row with the same strict-greater first-max
// rule as LogisticRegression.Predict (softmax is monotone, so the argmax
// is identical).
func (s *Server) process(batch []batchItem) {
	s.mBatches.Inc()
	s.mBatchSz.Observe(float64(len(batch)))
	span := s.o.Tracer.StartSpan("serve.batch")
	span.SetInt("size", int64(len(batch)))
	defer span.End()

	corpus := make([][]string, len(batch))
	for i, it := range batch {
		corpus[i] = it.req.examples[it.pos].FeatureTokens()
	}
	X := s.b.Featurizer.TransformAll(corpus)
	P := s.b.EndModel.PredictProbaAll(X)

	for i, it := range batch {
		row := P[i]
		best := 0
		for c := 1; c < len(row); c++ {
			if row[c] > row[best] {
				best = c
			}
		}
		pred := Prediction{Label: best, Class: s.b.Dataset.ClassNames[best], Proba: row}
		if it.req.explain {
			e := it.req.examples[it.pos]
			js, votes := lf.ApplyAll(s.b.LFs, e)
			pred.LFs = make([]LFVote, len(js))
			for t, j := range js {
				pred.LFs[t] = LFVote{Name: s.b.LFs[j].Name(), Vote: votes[t]}
			}
			if s.predictor != nil && len(js) > 0 {
				pred.LabelModelProba = s.predictor.Posterior(js, votes)
			}
		}
		it.req.preds[it.pos] = pred
		if it.req.remaining.Add(-1) == 0 {
			close(it.req.done)
		}
	}
}
