// Package serve turns a model bundle into an online labeling service.
//
// The core is a micro-batching coalescer: every incoming text becomes one
// queue item, a single batch loop gathers items until the batch cap or a
// short wait deadline is hit, and the whole batch flows through the same
// parallel TransformAll/PredictProbaAll hot path the offline evaluator
// uses. Because featurization and prediction are per-example independent
// with fixed-order reductions, batch composition cannot influence any
// result: a text served alone, inside a mixed batch, or by the offline
// Evaluate path produces bit-identical probabilities and labels (enforced
// by the differential and race tests in this package).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"datasculpt/internal/bundle"
	"datasculpt/internal/dataset"
	"datasculpt/internal/labelmodel"
	"datasculpt/internal/lf"
	"datasculpt/internal/obs"
)

// ErrClosed is returned by Label once Close has begun.
var ErrClosed = errors.New("serve: server closed")

// ErrOverloaded is returned by Label when admitting the request would
// push the coalescer queue past Options.QueueDepth. The caller should
// shed the request (HTTP 429) rather than retry immediately.
var ErrOverloaded = errors.New("serve: coalescer queue full")

// Options tunes the coalescer.
type Options struct {
	// MaxBatch caps how many texts one batch carries (default 64).
	MaxBatch int
	// MaxWait is how long the first text of a batch waits for company
	// before the batch is dispatched anyway (default 2ms).
	MaxWait time.Duration
	// Workers bounds the goroutines featurization and prediction fan out
	// over per batch (<= 1 sequential; output is identical either way).
	Workers int
	// QueueDepth bounds how many texts may wait in the coalescer queue
	// (default 16*MaxBatch). Label sheds with ErrOverloaded instead of
	// queueing beyond it. A single request larger than the whole queue
	// is admitted only when the queue is idle, so oversized offline-style
	// batches still make progress without unbounding memory.
	QueueDepth int
	// Tenant labels every serve_* metric this server emits (default
	// "default"). One Server serves one bundle for one tenant, so the
	// per-tenant metric handles are resolved once at construction and
	// the hot path touches only scalar counters.
	Tenant string
	// Capture, when set, observes every admitted request's texts — the
	// feed for the online growth loop's reservoir. It runs on the
	// caller's goroutine before the texts enter the queue, so it must be
	// cheap and must not retain the slice past the call.
	Capture func(texts []string)
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 16 * o.MaxBatch
	}
	if o.Tenant == "" {
		o.Tenant = "default"
	}
	return o
}

// Request outcome codes, the `code` label of serve_requests_total.
const (
	codeOK       = "ok"
	codeShed     = "shed"
	codeClosed   = "closed"
	codeCanceled = "canceled"
)

// LFVote is one active label function in an explained prediction.
type LFVote struct {
	// Name identifies the LF; Vote is the class it voted.
	Name string `json:"name"`
	Vote int    `json:"vote"`
}

// Prediction is the served result for one text.
type Prediction struct {
	// Label is the end-model argmax class index; Class its name.
	Label int    `json:"label"`
	Class string `json:"class"`
	// Proba is the end-model class distribution.
	Proba []float64 `json:"proba"`
	// LFs lists the label functions that fired (explain mode only).
	LFs []LFVote `json:"lfs,omitempty"`
	// LabelModelProba is the label-model posterior over classes, present
	// in explain mode when the bundle carries a label model and at least
	// one LF fired.
	LabelModelProba []float64 `json:"label_model_proba,omitempty"`
}

// request is one Label call in flight: its examples, its result slots,
// and the countdown that fires done when every slot is filled. ctx is
// the caller's context: once it is cancelled the batch loop drops the
// request's remaining queue items instead of featurizing them, so a
// client that disconnected before its micro-batch fired does not
// consume batch capacity.
type request struct {
	ctx       context.Context
	examples  []*dataset.Example
	preds     []Prediction
	explain   bool
	remaining atomic.Int32
	done      chan struct{}
}

// batchItem addresses one text of one request.
type batchItem struct {
	req *request
	pos int
}

// Server coalesces label requests into batches over a loaded bundle.
type Server struct {
	b         *bundle.Bundle
	predictor *labelmodel.Predictor // nil when the bundle has no label model
	opts      Options
	o         *obs.Obs

	queue     chan batchItem
	quit      chan struct{}
	depth     atomic.Int64 // texts admitted but not yet dequeued
	mu        sync.Mutex
	closed    bool
	producers sync.WaitGroup
	loop      sync.WaitGroup

	// beforeBatch, when non-nil, runs at the head of every process()
	// call. Test hook: lets the admission tests hold the batch loop
	// still while they fill the queue deterministically.
	beforeBatch func()

	// Per-outcome request counters and the rest of the tenant's series,
	// curried once in New so the hot path sees plain scalar handles.
	mReqOK       *obs.Counter
	mReqShed     *obs.Counter
	mReqClosed   *obs.Counter
	mReqCanceled *obs.Counter
	mErrClosed   *obs.Counter
	mErrCanceled *obs.Counter
	mTexts       *obs.Counter
	mBatches     *obs.Counter
	mShed        *obs.Counter
	mDropped     *obs.Counter
	mInflight    *obs.Gauge
	mQueue       *obs.Gauge
	mBatchSz     *obs.Histogram
	mLatency     *obs.Histogram
}

// New wires a server around a validated bundle. The obs bundle may be
// nil (telemetry disabled). The server owns the bundle's worker
// configuration from here on.
func New(b *bundle.Bundle, o *obs.Obs, opts Options) (*Server, error) {
	if b == nil {
		return nil, errors.New("serve: nil bundle")
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	if o == nil {
		o = obs.Default()
	}
	opts = opts.withDefaults()
	b.Featurizer.Workers = opts.Workers
	b.EndModel.SetParallelism(opts.Workers)

	s := &Server{
		b:     b,
		opts:  opts,
		o:     o,
		queue: make(chan batchItem, opts.QueueDepth),
		quit:  make(chan struct{}),
	}
	if b.LabelModel != nil {
		s.predictor = b.LabelModel.NewPredictor()
	}
	reg := o.Metrics
	tenant := opts.Tenant
	requests := reg.CounterVec("serve_requests_total", "Label requests received, by tenant and outcome.", "tenant", "code")
	s.mReqOK = requests.With2(tenant, codeOK)
	s.mReqShed = requests.With2(tenant, codeShed)
	s.mReqClosed = requests.With2(tenant, codeClosed)
	s.mReqCanceled = requests.With2(tenant, codeCanceled)
	errs := reg.CounterVec("serve_errors_total", "Requests that failed, by tenant and cause.", "tenant", "code")
	s.mErrClosed = errs.With2(tenant, codeClosed)
	s.mErrCanceled = errs.With2(tenant, codeCanceled)
	s.mTexts = reg.CounterVec("serve_texts_total", "Texts labeled.", "tenant").With1(tenant)
	s.mBatches = reg.CounterVec("serve_batches_total", "Micro-batches dispatched.", "tenant").With1(tenant)
	s.mShed = reg.CounterVec("serve_shed_total", "Requests rejected by admission control (queue full).", "tenant").With1(tenant)
	s.mDropped = reg.CounterVec("serve_dropped_total", "Queued texts dropped because their request's context ended before the batch fired.", "tenant").With1(tenant)
	s.mInflight = reg.GaugeVec("serve_inflight", "Label requests currently in flight.", "tenant").With1(tenant)
	s.mQueue = reg.GaugeVec("serve_queue_depth", "Texts admitted to the coalescer queue and not yet dequeued.", "tenant").With1(tenant)
	s.mBatchSz = reg.HistogramVec("serve_batch_size", "Texts per dispatched micro-batch.", obs.BatchSizeBuckets, "tenant").With1(tenant)
	s.mLatency = reg.HistogramVec("serve_request_seconds", "Label request latency.", obs.DurationBuckets, "tenant").With1(tenant)

	s.loop.Add(1)
	go s.batchLoop()
	return s, nil
}

// Bundle returns the served bundle (read-only; used by the HTTP layer
// for health/provenance responses).
func (s *Server) Bundle() *bundle.Bundle { return s.b }

// Label labels texts and returns one prediction per text, in order. It
// blocks until the batch loop has processed every text (or ctx is
// cancelled). When admitting the texts would push the queue past
// Options.QueueDepth it returns ErrOverloaded immediately instead of
// blocking — admission control, not backpressure. Safe for concurrent
// use.
func (s *Server) Label(ctx context.Context, texts []string, explain bool) ([]Prediction, error) {
	if len(texts) == 0 {
		return nil, errors.New("serve: empty request")
	}
	start := time.Now()
	span := s.o.StartSpan(ctx, "serve.label")
	span.SetInt("texts", int64(len(texts)))
	defer span.End()
	if err := s.admit(len(texts)); err != nil {
		s.mReqShed.Inc()
		s.mShed.Inc()
		span.SetErr(err)
		return nil, err
	}
	s.mTexts.AddInt(len(texts))
	if s.opts.Capture != nil {
		s.opts.Capture(texts)
	}
	s.mInflight.Add(1)
	defer s.mInflight.Add(-1)

	req := &request{
		ctx:      ctx,
		examples: make([]*dataset.Example, len(texts)),
		preds:    make([]Prediction, len(texts)),
		explain:  explain,
		done:     make(chan struct{}),
	}
	req.remaining.Store(int32(len(texts)))
	for i, text := range texts {
		// E1Pos/E2Pos must be -1: zero would mark token 0 as an entity
		// mention and slice the feature window, diverging from how the
		// offline path treats plain-text examples.
		req.examples[i] = &dataset.Example{ID: -1, Text: text, Label: dataset.NoLabel, E1Pos: -1, E2Pos: -1}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.mQueue.Set(float64(s.depth.Add(-int64(len(texts)))))
		s.mReqClosed.Inc()
		s.mErrClosed.Inc()
		span.SetErr(ErrClosed)
		return nil, ErrClosed
	}
	s.producers.Add(1)
	s.mu.Unlock()
	for i := range texts {
		s.queue <- batchItem{req: req, pos: i}
	}
	s.producers.Done()

	select {
	case <-req.done:
		s.mReqOK.Inc()
		s.mLatency.Observe(time.Since(start).Seconds())
		return req.preds, nil
	case <-ctx.Done():
		s.mReqCanceled.Inc()
		s.mErrCanceled.Inc()
		span.SetErr(ctx.Err())
		return nil, fmt.Errorf("serve: %w", ctx.Err())
	}
}

// admit reserves n queue slots, or fails with ErrOverloaded when the
// reservation would exceed QueueDepth. A request wider than the whole
// queue is admitted only against an idle queue (its channel sends then
// block until the batch loop drains them — memory stays bounded by the
// request itself).
func (s *Server) admit(n int) error {
	for {
		cur := s.depth.Load()
		if cur > 0 && cur+int64(n) > int64(s.opts.QueueDepth) {
			return ErrOverloaded
		}
		if s.depth.CompareAndSwap(cur, cur+int64(n)) {
			s.mQueue.Set(float64(cur + int64(n)))
			return nil
		}
	}
}

// dequeued records that one item left the queue for a batch.
func (s *Server) dequeued() {
	s.mQueue.Set(float64(s.depth.Add(-1)))
}

// Close stops accepting requests, waits for enqueued texts to be
// processed, and shuts the batch loop down. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.loop.Wait()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.producers.Wait() // every accepted request is fully enqueued
	close(s.quit)
	s.loop.Wait()
}

// batchLoop is the single consumer: it seeds each batch with the first
// available item, fills it, and processes it, until quit — then drains
// whatever is still queued.
func (s *Server) batchLoop() {
	defer s.loop.Done()
	for {
		select {
		case it := <-s.queue:
			s.dequeued()
			s.process(s.fill(it))
		case <-s.quit:
			for {
				select {
				case it := <-s.queue:
					s.dequeued()
					s.process(s.fill(it))
				default:
					return
				}
			}
		}
	}
}

// fill grows a batch seeded with first until MaxBatch items are gathered
// or MaxWait elapses. The wait clock starts with the first item — a lone
// request is never delayed longer than MaxWait.
func (s *Server) fill(first batchItem) []batchItem {
	batch := append(make([]batchItem, 0, s.opts.MaxBatch), first)
	timer := time.NewTimer(s.opts.MaxWait)
	defer timer.Stop()
	for len(batch) < s.opts.MaxBatch {
		select {
		case it := <-s.queue:
			s.dequeued()
			batch = append(batch, it)
		case <-timer.C:
			return batch
		case <-s.quit:
			// Shutting down: take what is immediately available, skip the
			// wait.
			for len(batch) < s.opts.MaxBatch {
				select {
				case it := <-s.queue:
					s.dequeued()
					batch = append(batch, it)
				default:
					return batch
				}
			}
			return batch
		}
	}
	return batch
}

// process runs one batch through the offline hot path — featurize all,
// predict all — and distributes results to their requests. The label is
// derived from the probability row with the same strict-greater first-max
// rule as LogisticRegression.Predict (softmax is monotone, so the argmax
// is identical).
func (s *Server) process(batch []batchItem) {
	if s.beforeBatch != nil {
		s.beforeBatch()
	}
	s.mBatches.Inc()
	s.mBatchSz.Observe(float64(len(batch)))
	span := s.o.Tracer.StartSpan("serve.batch")
	span.SetInt("size", int64(len(batch)))
	defer span.End()

	// Deadline-aware drop: a request whose context ended (client gone,
	// deadline blown) gets its items discarded instead of featurized —
	// only its bookkeeping is settled. Skipping items cannot perturb
	// other results: the hot path is per-example independent.
	live := batch[:0]
	dropped := 0
	for _, it := range batch {
		if it.req.ctx != nil && it.req.ctx.Err() != nil {
			dropped++
			if it.req.remaining.Add(-1) == 0 {
				close(it.req.done)
			}
			continue
		}
		live = append(live, it)
	}
	if dropped > 0 {
		s.mDropped.AddInt(dropped)
	}
	batch = live
	if len(batch) == 0 {
		span.SetInt("dropped", int64(dropped))
		return
	}

	corpus := make([][]string, len(batch))
	for i, it := range batch {
		corpus[i] = it.req.examples[it.pos].FeatureTokens()
	}
	X := s.b.Featurizer.TransformAll(corpus)
	P := s.b.EndModel.PredictProbaAll(X)

	for i, it := range batch {
		row := P[i]
		best := 0
		for c := 1; c < len(row); c++ {
			if row[c] > row[best] {
				best = c
			}
		}
		pred := Prediction{Label: best, Class: s.b.Dataset.ClassNames[best], Proba: row}
		if it.req.explain {
			e := it.req.examples[it.pos]
			js, votes := lf.ApplyAll(s.b.LFs, e)
			pred.LFs = make([]LFVote, len(js))
			for t, j := range js {
				pred.LFs[t] = LFVote{Name: s.b.LFs[j].Name(), Vote: votes[t]}
			}
			if s.predictor != nil && len(js) > 0 {
				pred.LabelModelProba = s.predictor.Posterior(js, votes)
			}
		}
		it.req.preds[it.pos] = pred
		if it.req.remaining.Add(-1) == 0 {
			close(it.req.done)
		}
	}
}
