package serve

// SetBeforeBatch installs a hook run at the head of every process()
// call. Test-only: the admission tests use it to hold the batch loop
// still while they fill the queue deterministically.
func (s *Server) SetBeforeBatch(f func()) { s.beforeBatch = f }
