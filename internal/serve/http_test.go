package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"datasculpt/internal/dataset"
	"datasculpt/internal/lf"
	"datasculpt/internal/serve"
)

func postJSON(t *testing.T, url, body string) (int, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func TestHTTPLabel(t *testing.T) {
	s, _, d := newServer(t, serve.Options{})
	b, _ := trained(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	texts, probas, labels := offlineExpected(b, d)

	// Single text.
	body, _ := json.Marshal(map[string]any{"text": texts[0]})
	code, out := postJSON(t, ts.URL+"/v1/label", string(body))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var single serve.Prediction
	if err := json.Unmarshal(out["prediction"], &single); err != nil {
		t.Fatal(err)
	}
	assertPrediction(t, single, probas[0], labels[0], texts[0])
	if single.Class != b.Dataset.ClassNames[labels[0]] {
		t.Errorf("class name %q", single.Class)
	}
	if _, ok := out["predictions"]; ok {
		t.Error("single request also returned a batch field")
	}

	// Batch.
	body, _ = json.Marshal(map[string]any{"texts": texts[:5]})
	code, out = postJSON(t, ts.URL+"/v1/label", string(body))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var batch []serve.Prediction
	if err := json.Unmarshal(out["predictions"], &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch) != 5 {
		t.Fatalf("%d predictions", len(batch))
	}
	for i := range batch {
		assertPrediction(t, batch[i], probas[i], labels[i], texts[i])
	}

	// Explain adds LF votes; proba stays bit-identical.
	covered := -1
	for i, e := range d.Valid {
		js, _ := applyAllDirect(b.LFs, e.Text)
		if len(js) > 0 {
			covered = i
			break
		}
	}
	if covered < 0 {
		t.Fatal("no covered validation text")
	}
	body, _ = json.Marshal(map[string]any{"text": texts[covered], "explain": true})
	code, out = postJSON(t, ts.URL+"/v1/label", string(body))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if err := json.Unmarshal(out["prediction"], &single); err != nil {
		t.Fatal(err)
	}
	assertPrediction(t, single, probas[covered], labels[covered], texts[covered])
	if len(single.LFs) == 0 || len(single.LabelModelProba) != len(probas[covered]) {
		t.Errorf("explain response missing LF votes or posterior: %+v", single)
	}
	var sum float64
	for _, p := range single.LabelModelProba {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("posterior sums to %v", sum)
	}
}

func applyAllDirect(lfs []lf.LabelFunction, text string) (js, votes []int) {
	e := &dataset.Example{ID: -1, Text: text, Label: dataset.NoLabel, E1Pos: -1, E2Pos: -1}
	for j, f := range lfs {
		if v := f.Apply(e); v != -1 {
			js = append(js, j)
			votes = append(votes, v)
		}
	}
	return
}

func TestHTTPLabelErrors(t *testing.T) {
	s, _, _ := newServer(t, serve.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"neither", `{}`},
		{"both", `{"text": "a", "texts": ["b"]}`},
		{"unknown field", `{"text": "a", "bogus": 1}`},
		{"malformed", `{"text": `},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := postJSON(t, ts.URL+"/v1/label", tc.body)
			if code != http.StatusBadRequest {
				t.Errorf("status %d", code)
			}
			if _, ok := out["error"]; !ok {
				t.Error("no error field")
			}
		})
	}

	t.Run("wrong method", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/label")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("status %d", resp.StatusCode)
		}
	})
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	s, _, _ := newServer(t, serve.Options{})
	b, _ := trained(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status     string `json:"status"`
		Dataset    string `json:"dataset"`
		NumLFs     int    `json:"num_lfs"`
		ConfigHash string `json:"config_hash"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Dataset != "youtube" ||
		health.NumLFs != len(b.LFs) || health.ConfigHash != b.Provenance.ConfigHash {
		t.Errorf("health: %+v", health)
	}

	// Label something so the metrics page has serve_* series.
	body, _ := json.Marshal(map[string]any{"text": "subscribe now"})
	if code, _ := postJSON(t, ts.URL+"/v1/label", string(body)); code != http.StatusOK {
		t.Fatalf("label status %d", code)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"serve_requests_total 1", "serve_texts_total 1",
		"serve_batches_total 1", "serve_batch_size_bucket",
		"serve_request_seconds_bucket", "serve_inflight 0",
	} {
		if !bytes.Contains(page, []byte(want)) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}
