package serve_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"datasculpt/internal/obs"
	"datasculpt/internal/serve"
)

func gaugeValue(reg *obs.Registry, name string) float64 {
	switch v := reg.Snapshot()[name].(type) {
	case float64:
		return v
	case map[string]any: // gauge vector: sum the tenant series
		var sum float64
		for _, sv := range v {
			f, _ := sv.(float64)
			sum += f
		}
		return sum
	}
	return 0
}

func waitCounter(t *testing.T, read func() float64, want float64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if read() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s: got %v, want %v", what, read(), want)
}

// TestServeLoadShed is the admission-control contract, run under -race
// by `make race`: with the batch loop held still, the queue admits
// exactly QueueDepth texts, every request beyond that is shed with
// ErrOverloaded and counted in serve_shed_total, the queue-depth gauge
// never exceeds the bound, and all admitted requests are answered once
// the loop resumes.
func TestServeLoadShed(t *testing.T) {
	const depth = 4
	s, reg, d := newServer(t, serve.Options{MaxBatch: 1, MaxWait: time.Millisecond, QueueDepth: depth})

	held := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.SetBeforeBatch(func() {
		once.Do(func() {
			close(held)
			<-release
		})
	})

	var wg sync.WaitGroup
	errs := make(chan error, depth+1)
	label := func() {
		defer wg.Done()
		_, err := s.Label(context.Background(), []string{d.Valid[0].Text}, false)
		errs <- err
	}

	// First request seeds a batch and parks the loop inside the hook.
	wg.Add(1)
	go label()
	<-held

	// Fill the queue to exactly its bound.
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go label()
	}
	waitCounter(t, func() float64 { return gaugeValue(reg, "serve_queue_depth") },
		depth, "serve_queue_depth while loop held")

	// Admission control: one more single and one batch both shed
	// immediately instead of queueing or blocking.
	if _, err := s.Label(context.Background(), []string{"overflow"}, false); err != serve.ErrOverloaded {
		t.Fatalf("single over bound: err = %v, want ErrOverloaded", err)
	}
	if _, err := s.Label(context.Background(), []string{"a", "b", "c"}, false); err != serve.ErrOverloaded {
		t.Fatalf("batch over bound: err = %v, want ErrOverloaded", err)
	}
	if got := gaugeValue(reg, "serve_queue_depth"); got > depth {
		t.Fatalf("queue depth %v exceeded bound %d", got, depth)
	}
	if got := reg.CounterValue("serve_shed_total"); got != 2 {
		t.Fatalf("serve_shed_total = %v, want 2", got)
	}

	// Resume: every admitted request must be answered.
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
	if got := gaugeValue(reg, "serve_queue_depth"); got != 0 {
		t.Errorf("queue depth %v after drain", got)
	}
	if got := reg.CounterValue("serve_dropped_total"); got != 0 {
		t.Errorf("serve_dropped_total = %v, want 0", got)
	}

	// A request wider than the whole queue is admitted against an idle
	// queue — oversized offline-style batches still make progress.
	texts := make([]string, depth+2)
	for i := range texts {
		texts[i] = d.Valid[i%len(d.Valid)].Text
	}
	if _, err := s.Label(context.Background(), texts, false); err != nil {
		t.Fatalf("oversized request against idle queue: %v", err)
	}
}

// TestServeCancelledDropped: a client that disconnects before its
// micro-batch fires does not consume batch capacity — its queued texts
// are dropped (serve_dropped_total), while a live request sharing the
// batch is answered with the exact offline prediction.
func TestServeCancelledDropped(t *testing.T) {
	s, reg, d := newServer(t, serve.Options{MaxBatch: 2, MaxWait: 300 * time.Millisecond})
	b, _ := trained(t)
	texts, probas, labels := offlineExpected(b, d)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Label(ctx, []string{texts[0]}, false); err == nil {
		t.Fatal("cancelled request returned no error")
	}

	// The live request joins (or follows) the stale item's batch and
	// must be answered bit-identically to the offline path.
	preds, err := s.Label(context.Background(), []string{texts[1]}, false)
	if err != nil {
		t.Fatal(err)
	}
	assertPrediction(t, preds[0], probas[1], labels[1], texts[1])

	waitCounter(t, func() float64 { return reg.CounterValue("serve_dropped_total") },
		1, "serve_dropped_total")
	if got := reg.CounterValue("serve_shed_total"); got != 0 {
		t.Errorf("serve_shed_total = %v, want 0", got)
	}
}
