package serve_test

import (
	"context"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"datasculpt/internal/bundle"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/obs"
	"datasculpt/internal/serve"
)

var (
	trainOnce sync.Once
	trainedB  *bundle.Bundle
	trainedD  *dataset.Dataset
	trainErr  error
)

// trained runs the pipeline once per test binary and hands every test
// the same bundle (tests must not mutate it beyond worker knobs).
func trained(t *testing.T) (*bundle.Bundle, *dataset.Dataset) {
	t.Helper()
	trainOnce.Do(func() {
		d, err := dataset.Load("youtube", 11, 0.4)
		if err != nil {
			trainErr = err
			return
		}
		cfg := core.DefaultConfig(core.VariantBase)
		cfg.Iterations = 15
		cfg.Seed = 11
		cfg.FeatureDim = 2048
		cfg.EndModel.Epochs = 3
		res, err := core.Run(d, cfg)
		if err != nil {
			trainErr = err
			return
		}
		trainedB, trainErr = bundle.New(d, cfg, res)
		trainedD = d
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return trainedB, trainedD
}

func newServer(t *testing.T, opts serve.Options) (*serve.Server, *obs.Registry, *dataset.Dataset) {
	t.Helper()
	b, d := trained(t)
	reg := obs.NewRegistry()
	s, err := serve.New(b, obs.New(nil, reg, nil), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, reg, d
}

// offlineExpected computes, per validation text, the offline-path
// prediction the server must reproduce bit for bit.
func offlineExpected(b *bundle.Bundle, d *dataset.Dataset) (texts []string, probas [][]float64, labels []int) {
	for _, e := range d.Valid {
		texts = append(texts, e.Text)
	}
	X := b.Featurizer.TransformAll(dataset.FeatureCorpus(d.Valid))
	return texts, b.EndModel.PredictProbaAll(X), b.EndModel.Predict(X)
}

func assertPrediction(t *testing.T, got serve.Prediction, wantProba []float64, wantLabel int, text string) {
	t.Helper()
	if got.Label != wantLabel {
		t.Fatalf("text %q: served label %d, offline %d", text, got.Label, wantLabel)
	}
	if len(got.Proba) != len(wantProba) {
		t.Fatalf("text %q: %d classes served, %d offline", text, len(got.Proba), len(wantProba))
	}
	for c := range wantProba {
		if math.Float64bits(got.Proba[c]) != math.Float64bits(wantProba[c]) {
			t.Fatalf("text %q class %d: served proba %v, offline %v", text, c, got.Proba[c], wantProba[c])
		}
	}
}

// TestServedMatchesOffline is the serving bit-identity contract: every
// validation text served through the coalescer — alone or in one big
// batch — gets exactly the offline Evaluate-path prediction.
func TestServedMatchesOffline(t *testing.T) {
	s, _, d := newServer(t, serve.Options{Workers: runtime.GOMAXPROCS(0)})
	b, _ := trained(t)
	texts, probas, labels := offlineExpected(b, d)

	// One big batch request.
	preds, err := s.Label(context.Background(), texts, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range texts {
		assertPrediction(t, preds[i], probas[i], labels[i], texts[i])
	}

	// Single-text requests (each may land in its own micro-batch).
	for i := 0; i < len(texts) && i < 25; i++ {
		got, err := s.Label(context.Background(), texts[i:i+1], false)
		if err != nil {
			t.Fatal(err)
		}
		assertPrediction(t, got[0], probas[i], labels[i], texts[i])
	}
}

// TestServeExplain checks explain mode: LF votes match direct
// application and the label-model posterior matches the predictor.
func TestServeExplain(t *testing.T) {
	s, _, d := newServer(t, serve.Options{})
	b, _ := trained(t)
	pred := b.LabelModel.NewPredictor()

	explained := 0
	for i, e := range d.Valid {
		if i >= 40 {
			break
		}
		got, err := s.Label(context.Background(), []string{e.Text}, true)
		if err != nil {
			t.Fatal(err)
		}
		var js, votes []int
		for j, f := range b.LFs {
			if v := f.Apply(&dataset.Example{ID: -1, Text: e.Text, Label: dataset.NoLabel, E1Pos: -1, E2Pos: -1}); v != -1 {
				js = append(js, j)
				votes = append(votes, v)
			}
		}
		if len(got[0].LFs) != len(js) {
			t.Fatalf("text %d: %d LF votes served, want %d", i, len(got[0].LFs), len(js))
		}
		for tt, j := range js {
			if got[0].LFs[tt].Name != b.LFs[j].Name() || got[0].LFs[tt].Vote != votes[tt] {
				t.Fatalf("text %d vote %d: got %+v, want %s=%d", i, tt, got[0].LFs[tt], b.LFs[j].Name(), votes[tt])
			}
		}
		want := pred.Posterior(js, votes)
		if (want == nil) != (got[0].LabelModelProba == nil) {
			t.Fatalf("text %d: posterior presence mismatch", i)
		}
		if want != nil {
			explained++
			for c := range want {
				if math.Float64bits(want[c]) != math.Float64bits(got[0].LabelModelProba[c]) {
					t.Fatalf("text %d class %d: posterior %v != %v", i, c, got[0].LabelModelProba[c], want[c])
				}
			}
		}
	}
	if explained == 0 {
		t.Fatal("no covered example exercised the label-model posterior")
	}
}

// TestServeConcurrentLoad is the coalescer race test: many clients
// mixing single and batch requests, every response checked against the
// sequentially-computed expectation — no dropped, duplicated, or
// cross-wired responses. Run it under -race (make race does).
func TestServeConcurrentLoad(t *testing.T) {
	s, reg, d := newServer(t, serve.Options{MaxBatch: 16, MaxWait: 500 * time.Microsecond, Workers: 4})
	b, _ := trained(t)
	texts, probas, labels := offlineExpected(b, d)

	const clients = 8
	const requests = 30
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	var served atomic64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < requests; r++ {
				// Deterministic mix: every third request is a batch of 5.
				start := (c*31 + r*7) % len(texts)
				n := 1
				if r%3 == 0 {
					n = 5
				}
				req := make([]string, 0, n)
				for k := 0; k < n; k++ {
					req = append(req, texts[(start+k)%len(texts)])
				}
				preds, err := s.Label(context.Background(), req, r%5 == 0)
				if err != nil {
					errs <- err
					return
				}
				if len(preds) != n {
					t.Errorf("client %d req %d: %d predictions for %d texts", c, r, len(preds), n)
					return
				}
				for k := 0; k < n; k++ {
					i := (start + k) % len(texts)
					assertPredictionErr(t, preds[k], probas[i], labels[i], c, r, k)
				}
				served.add(int64(n))
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if got := reg.CounterValue("serve_texts_total"); got != float64(served.load()) {
		t.Errorf("serve_texts_total = %v, served %d", got, served.load())
	}
	if reg.CounterValue("serve_batches_total") == 0 {
		t.Error("no batches dispatched")
	}
	if reg.CounterValue("serve_errors_total") != 0 {
		t.Errorf("serve_errors_total = %v", reg.CounterValue("serve_errors_total"))
	}
}

// assertPredictionErr is assertPrediction with t.Errorf (goroutine-safe
// reporting; t.Fatalf must not be called off the test goroutine).
func assertPredictionErr(t *testing.T, got serve.Prediction, wantProba []float64, wantLabel int, c, r, k int) {
	if got.Label != wantLabel {
		t.Errorf("client %d req %d slot %d: label %d != %d", c, r, k, got.Label, wantLabel)
		return
	}
	for ci := range wantProba {
		if math.Float64bits(got.Proba[ci]) != math.Float64bits(wantProba[ci]) {
			t.Errorf("client %d req %d slot %d class %d: proba %v != %v", c, r, k, ci, got.Proba[ci], wantProba[ci])
			return
		}
	}
}

type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// TestServeBatching forces coalescing: with a generous wait window,
// concurrent singles should share batches (batches < texts).
func TestServeBatching(t *testing.T) {
	s, reg, d := newServer(t, serve.Options{MaxBatch: 32, MaxWait: 20 * time.Millisecond})
	var wg sync.WaitGroup
	n := 24
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Label(context.Background(), []string{d.Valid[i%len(d.Valid)].Text}, false)
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	batches := reg.CounterValue("serve_batches_total")
	if batches == 0 || batches >= float64(n) {
		t.Errorf("%v batches for %d concurrent singles — coalescer not batching", batches, n)
	}
}

func TestServeClose(t *testing.T) {
	b, _ := trained(t)
	s, err := serve.New(b, nil, serve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Label(context.Background(), []string{"hello"}, false); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Label(context.Background(), []string{"hello"}, false); err != serve.ErrClosed {
		t.Errorf("Label after Close: %v, want ErrClosed", err)
	}
}

func TestServeEmptyAndCancelled(t *testing.T) {
	s, _, _ := newServer(t, serve.Options{})
	if _, err := s.Label(context.Background(), nil, false); err == nil {
		t.Error("empty request accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Label(ctx, []string{"hello"}, false); err == nil {
		t.Error("cancelled request returned no error")
	}
}
