package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// labelRequest is the POST /v1/label body: exactly one of text / texts.
type labelRequest struct {
	Text    string   `json:"text"`
	Texts   []string `json:"texts"`
	Explain bool     `json:"explain"`
}

// labelResponse is the POST /v1/label body on success. Prediction is set
// for single-text requests, Predictions (in request order) for batch
// requests.
type labelResponse struct {
	Prediction  *Prediction  `json:"prediction,omitempty"`
	Predictions []Prediction `json:"predictions,omitempty"`
}

// healthResponse is the GET /healthz body: liveness plus enough
// provenance to tell which artifact this daemon is serving.
type healthResponse struct {
	Status     string `json:"status"`
	Dataset    string `json:"dataset"`
	Method     string `json:"method"`
	NumLFs     int    `json:"num_lfs"`
	ConfigHash string `json:"config_hash"`
}

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/label  — label one text ({"text": ...}) or a batch
//	                  ({"texts": [...]}); {"explain": true} adds LF votes
//	                  and the label-model posterior
//	GET  /healthz   — liveness + served-bundle provenance
//	GET  /metrics   — Prometheus text exposition of the obs registry
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/label", s.handleLabel)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req labelRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.mErrors.Inc()
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	single := req.Text != ""
	if single == (len(req.Texts) > 0) {
		s.mErrors.Inc()
		httpError(w, http.StatusBadRequest, `provide exactly one of "text" and "texts"`)
		return
	}
	texts := req.Texts
	if single {
		texts = []string{req.Text}
	}

	preds, err := s.Label(r.Context(), texts, req.Explain)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, "%v", err)
		return
	}
	resp := labelResponse{}
	if single {
		resp.Prediction = &preds[0]
	} else {
		resp.Predictions = preds
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, healthResponse{
		Status:     "ok",
		Dataset:    s.b.Dataset.Name,
		Method:     s.b.Provenance.Method,
		NumLFs:     len(s.b.LFs),
		ConfigHash: s.b.Provenance.ConfigHash,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.o.Metrics == nil {
		httpError(w, http.StatusNotFound, "metrics registry disabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.o.Metrics.WritePrometheus(w) //nolint:errcheck — client went away
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck — client went away
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) //nolint:errcheck
}
