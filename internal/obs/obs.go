// Package obs is the dependency-free telemetry layer of DataSculpt-Go:
// hierarchical tracing (run > iteration > stage spans), a concurrency-
// safe metrics registry (counters, gauges, fixed-bucket histograms with
// Prometheus/JSON/expvar exporters), and structured logging via
// log/slog.
//
// The three pillars travel together as an *Obs bundle carried on the
// context, so instrumented layers (core pipeline, experiment runner,
// llm middleware) need no signature changes:
//
//	o, cleanup, _ := obs.Setup(obs.SetupConfig{TracePath: "trace.jsonl"})
//	defer cleanup()
//	ctx := obs.NewContext(context.Background(), o)
//	res, err := core.RunContext(ctx, d, cfg)
//
// Every sink is optional and every handle is nil-safe: with no bundle on
// the context the pipeline sees the no-op tracer, a nil registry and a
// discard logger, and the whole instrumentation path performs zero
// allocations per iteration (asserted by TestNopTelemetryZeroAllocs).
package obs

import (
	"context"
	"log/slog"
)

// Obs bundles the three telemetry pillars. Build it with New (which
// fills nil fields with no-op implementations) or Setup (which opens
// file sinks from CLI-style options).
type Obs struct {
	// Tracer records hierarchical spans; never nil after New.
	Tracer Tracer
	// Metrics is the shared registry. A nil registry is valid: every
	// metric handle obtained from it is a no-op.
	Metrics *Registry
	// Logger is the shared structured logger; never nil after New.
	Logger *slog.Logger
}

// New assembles a bundle, substituting no-op implementations for nil
// fields (the registry may stay nil — it is nil-safe throughout).
func New(t Tracer, m *Registry, l *slog.Logger) *Obs {
	if t == nil {
		t = NopTracer()
	}
	if l == nil {
		l = NopLogger()
	}
	return &Obs{Tracer: t, Metrics: m, Logger: l}
}

// defaultObs is what FromContext hands out when no bundle was attached:
// all telemetry disabled.
var defaultObs = New(nil, nil, nil)

// Default returns the shared all-disabled bundle.
func Default() *Obs { return defaultObs }

type ctxKey struct{}

type spanCtxKey struct{}

// NewContext attaches a bundle to the context; instrumented layers
// downstream retrieve it with FromContext. A nil bundle attaches the
// disabled default.
func NewContext(ctx context.Context, o *Obs) context.Context {
	if o == nil {
		o = defaultObs
	}
	return context.WithValue(ctx, ctxKey{}, o)
}

// FromContext returns the attached bundle, or the disabled default. It
// never returns nil and never allocates.
func FromContext(ctx context.Context) *Obs {
	if o, ok := ctx.Value(ctxKey{}).(*Obs); ok && o != nil {
		return o
	}
	return defaultObs
}

// ContextWithSpan attaches a parent span, letting a callee hang its own
// spans underneath a caller's (the experiment runner parents each
// pipeline run span under its grid-cell span this way).
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the attached parent span, or nil.
func SpanFromContext(ctx context.Context) Span {
	if s, ok := ctx.Value(spanCtxKey{}).(Span); ok {
		return s
	}
	return nil
}

// StartSpan opens a span named name: as a child of the context's parent
// span when one is attached, else as a root span of the bundle's tracer.
func (o *Obs) StartSpan(ctx context.Context, name string) Span {
	if parent := SpanFromContext(ctx); parent != nil {
		return parent.Child(name)
	}
	return o.Tracer.StartSpan(name)
}
