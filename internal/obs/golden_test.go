package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates testdata/exposition.golden:
// go test ./internal/obs/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current exposition output")

// TestPrometheusExpositionGolden pins the exact text-format rendering —
// family ordering, HELP/TYPE lines, label ordering and escaping, the
// histogram ladder, float formatting — to a golden file, so format
// drift shows up as a reviewable diff instead of a broken dashboard.
func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("build_info_total", "scalar counter").AddInt(3)
	r.Gauge("queue_depth", "scalar gauge").Set(2.5)
	r.Histogram("fit_seconds", "scalar histogram", []float64{0.1, 1, 10}).Observe(0.5)

	req := r.CounterVec("serve_requests_total", "requests by tenant and outcome", "tenant", "code")
	req.With2("acme", "ok").AddInt(9)
	req.With2("acme", "shed").Inc()
	req.With2("beta", "ok").AddInt(4)
	req.With2("we\"ird\\te\nnant", "ok").Inc()
	req.SetMaxSeries(4)
	req.With2("flood-1", "ok").Inc()
	req.With2("flood-2", "ok").Inc()

	r.GaugeVec("serve_inflight", "in-flight requests", "tenant").With1("acme").Set(2)

	lat := r.HistogramVec("serve_request_seconds", "request latency", []float64{0.001, 0.01, 0.1}, "tenant")
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5} {
		lat.With1("acme").Observe(v)
	}
	lat.With1("beta").Observe(0.002)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from %s (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
	if problems := LintPrometheus(&buf); len(problems) != 0 {
		t.Errorf("golden exposition fails lint: %v", problems)
	}
}
