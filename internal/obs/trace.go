package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed unit of work in a trace tree. Spans are cheap
// handles: the no-op implementation allocates nothing, so instrumented
// hot loops can create them unconditionally. Setters use fixed arity
// (no variadic attribute slices) for the same reason.
//
// A span is not finished until End; attributes set after End are
// dropped. Implementations are safe for concurrent use, though a span
// is normally owned by one goroutine.
type Span interface {
	// Child opens a sub-span under this span.
	Child(name string) Span
	// SetInt / SetFloat / SetStr attach an attribute.
	SetInt(key string, v int64)
	SetFloat(key string, v float64)
	SetStr(key, v string)
	// SetErr records a non-nil error on the span.
	SetErr(err error)
	// End closes the span and delivers it to the tracer's sink. End is
	// idempotent; only the first call records.
	End()
}

// Tracer starts root spans. Sinks shipped with the package: NopTracer
// (free), NewMemoryTracer (tests), NewJSONLTracer (one JSON object per
// finished span, one per line), NewSampledTracer (head/tail sampling
// over either recording sink).
type Tracer interface {
	StartSpan(name string) Span
}

// TraceStarter is implemented by tracers that can adopt a caller-
// supplied trace ID — how the serving gateway joins spans to a W3C
// traceparent arriving over HTTP.
type TraceStarter interface {
	StartTrace(traceID, name string) Span
}

// StartTrace opens a root span under the given trace ID when the tracer
// supports adoption, else a plain root span. An empty traceID always
// falls back to StartSpan.
func StartTrace(t Tracer, traceID, name string) Span {
	if ts, ok := t.(TraceStarter); ok && traceID != "" {
		return ts.StartTrace(traceID, name)
	}
	return t.StartSpan(name)
}

// SpanData is the exported form of a finished span — what the memory
// tracer stores and the JSONL tracer writes per line.
type SpanData struct {
	Trace  string    `json:"trace"`
	Span   string    `json:"span"`
	Parent string    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	// DurationMS is End-Start in milliseconds (redundant with the
	// timestamps, but it is the field trace consumers aggregate on).
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Error      string         `json:"error,omitempty"`
}

// Int returns an integer attribute (JSON round-trips may deliver it as
// float64 or json.Number; both are handled).
func (d *SpanData) Int(key string) (int64, bool) {
	switch v := d.Attrs[key].(type) {
	case int64:
		return v, true
	case float64:
		return int64(v), true
	case json.Number:
		n, err := v.Int64()
		return n, err == nil
	}
	return 0, false
}

// Str returns a string attribute.
func (d *SpanData) Str(key string) (string, bool) {
	s, ok := d.Attrs[key].(string)
	return s, ok
}

// ---------------------------------------------------------------------
// no-op tracer

type nopTracer struct{}
type nopSpan struct{}

// NopTracer returns the tracer whose spans do nothing and allocate
// nothing (zero-size types box into interfaces without allocation).
func NopTracer() Tracer { return nopTracer{} }

func (nopTracer) StartSpan(string) Span { return nopSpan{} }

func (nopSpan) Child(string) Span        { return nopSpan{} }
func (nopSpan) SetInt(string, int64)     {}
func (nopSpan) SetFloat(string, float64) {}
func (nopSpan) SetStr(string, string)    {}
func (nopSpan) SetErr(error)             {}
func (nopSpan) End()                     {}

// ---------------------------------------------------------------------
// recording spans (shared by the memory and JSONL tracers)

// spanSink receives finished spans and issues span IDs.
type spanSink interface {
	record(d SpanData)
	nextID() uint64
}

type recSpan struct {
	sink spanSink

	mu    sync.Mutex
	data  SpanData
	ended bool
}

func startSpan(sink spanSink, trace, parent, name string) *recSpan {
	id := sink.nextID()
	if trace == "" {
		trace = fmt.Sprintf("t%08x", id)
	}
	return &recSpan{
		sink: sink,
		data: SpanData{
			Trace:  trace,
			Span:   fmt.Sprintf("s%08x", id),
			Parent: parent,
			Name:   name,
			Start:  time.Now(),
		},
	}
}

func (s *recSpan) Child(name string) Span {
	s.mu.Lock()
	trace, parent := s.data.Trace, s.data.Span
	s.mu.Unlock()
	return startSpan(s.sink, trace, parent, name)
}

func (s *recSpan) setAttr(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]any, 8)
	}
	s.data.Attrs[key] = v
}

func (s *recSpan) SetInt(key string, v int64)     { s.setAttr(key, v) }
func (s *recSpan) SetFloat(key string, v float64) { s.setAttr(key, v) }
func (s *recSpan) SetStr(key, v string)           { s.setAttr(key, v) }

func (s *recSpan) SetErr(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.data.Error = err.Error()
	}
}

func (s *recSpan) End() {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.End = time.Now()
	s.data.DurationMS = float64(s.data.End.Sub(s.data.Start)) / float64(time.Millisecond)
	d := s.data
	s.mu.Unlock()
	s.sink.record(d)
}

// ---------------------------------------------------------------------
// memory tracer

// MemoryTracer collects finished spans in memory, for tests and
// programmatic inspection.
type MemoryTracer struct {
	ids   atomic.Uint64
	mu    sync.Mutex
	spans []SpanData
}

// NewMemoryTracer returns an empty in-memory tracer.
func NewMemoryTracer() *MemoryTracer { return &MemoryTracer{} }

// StartSpan implements Tracer.
func (t *MemoryTracer) StartSpan(name string) Span { return startSpan(t, "", "", name) }

// StartTrace implements TraceStarter.
func (t *MemoryTracer) StartTrace(traceID, name string) Span { return startSpan(t, traceID, "", name) }

func (t *MemoryTracer) nextID() uint64 { return t.ids.Add(1) }

func (t *MemoryTracer) record(d SpanData) {
	t.mu.Lock()
	t.spans = append(t.spans, d)
	t.mu.Unlock()
}

// Spans returns a copy of every finished span, in End order.
func (t *MemoryTracer) Spans() []SpanData {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	return out
}

// Named returns the finished spans with the given name.
func (t *MemoryTracer) Named(name string) []SpanData {
	var out []SpanData
	for _, d := range t.Spans() {
		if d.Name == name {
			out = append(out, d)
		}
	}
	return out
}

// Reset discards every recorded span.
func (t *MemoryTracer) Reset() {
	t.mu.Lock()
	t.spans = nil
	t.mu.Unlock()
}

// ---------------------------------------------------------------------
// JSONL tracer

// JSONLTracer writes each finished span as one JSON object per line.
// Lines are written atomically under a mutex, so spans finishing on
// different goroutines can never interleave bytes. Children end before
// their parents, so a trace reads leaves-first; group with jq by the
// trace/parent fields.
type JSONLTracer struct {
	ids atomic.Uint64

	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLTracer wraps a writer. The tracer does not close or flush w;
// the caller owns its lifecycle (Setup wires an *os.File and closes it
// in the cleanup function).
func NewJSONLTracer(w io.Writer) *JSONLTracer { return &JSONLTracer{w: w} }

// StartSpan implements Tracer.
func (t *JSONLTracer) StartSpan(name string) Span { return startSpan(t, "", "", name) }

// StartTrace implements TraceStarter.
func (t *JSONLTracer) StartTrace(traceID, name string) Span { return startSpan(t, traceID, "", name) }

func (t *JSONLTracer) nextID() uint64 { return t.ids.Add(1) }

func (t *JSONLTracer) record(d SpanData) {
	line, err := json.Marshal(d)
	if err != nil { // SpanData attrs are primitives; should not happen
		t.mu.Lock()
		if t.err == nil {
			t.err = err
		}
		t.mu.Unlock()
		return
	}
	line = append(line, '\n')
	t.mu.Lock()
	if _, err := t.w.Write(line); err != nil && t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}

// Err returns the first write or encode error, if any.
func (t *JSONLTracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}
