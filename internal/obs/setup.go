package obs

import (
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
)

// SetupConfig mirrors the telemetry CLI flags shared by cmd/datasculpt
// and cmd/benchtab.
type SetupConfig struct {
	// LogLevel is the -log-level flag (debug, info, warn, error; ""
	// means warn).
	LogLevel string
	// LogOutput receives log records (default os.Stderr).
	LogOutput io.Writer
	// TracePath, when non-empty, streams one JSON span per line there
	// (-trace-out).
	TracePath string
	// MetricsPath, when non-empty, is written on cleanup: Prometheus
	// text format, or JSON when the path ends in .json (-metrics-out).
	MetricsPath string
	// DebugAddr, when non-empty, serves expvar (/debug/vars) and pprof
	// (/debug/pprof/) on that address for the life of the process
	// (-debug-addr).
	DebugAddr string
	// ExpvarName is the expvar key the registry publishes under
	// (default "datasculpt_metrics").
	ExpvarName string
}

// Setup opens every sink named by cfg and returns the assembled bundle
// plus a cleanup function that flushes and closes them (writing the
// metrics file, closing the trace file, shutting the debug listener).
// The registry is always real, so metrics accumulate even when only
// -debug-addr consumes them.
func Setup(cfg SetupConfig) (*Obs, func() error, error) {
	level, err := ParseLevel(cfg.LogLevel)
	if err != nil {
		return nil, nil, err
	}
	logOut := cfg.LogOutput
	if logOut == nil {
		logOut = os.Stderr
	}
	logger := NewLogger(logOut, level)
	reg := NewRegistry()

	var cleanups []func() error
	fail := func(err error) (*Obs, func() error, error) {
		for i := len(cleanups) - 1; i >= 0; i-- {
			cleanups[i]() //nolint:errcheck — already failing
		}
		return nil, nil, err
	}

	tracer := Tracer(NopTracer())
	if cfg.TracePath != "" {
		f, err := os.Create(cfg.TracePath)
		if err != nil {
			return fail(fmt.Errorf("obs: opening trace sink: %w", err))
		}
		jt := NewJSONLTracer(f)
		tracer = jt
		cleanups = append(cleanups, func() error {
			if err := jt.Err(); err != nil {
				f.Close()
				return fmt.Errorf("obs: trace sink: %w", err)
			}
			return f.Close()
		})
	}

	if cfg.MetricsPath != "" {
		path := cfg.MetricsPath
		cleanups = append(cleanups, func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("obs: opening metrics sink: %w", err)
			}
			if strings.HasSuffix(path, ".json") {
				err = reg.WriteJSON(f)
			} else {
				err = reg.WritePrometheus(f)
			}
			return errors.Join(err, f.Close())
		})
	}

	name := cfg.ExpvarName
	if name == "" {
		name = "datasculpt_metrics"
	}
	reg.Publish(name)

	if cfg.DebugAddr != "" {
		ln, err := net.Listen("tcp", cfg.DebugAddr)
		if err != nil {
			return fail(fmt.Errorf("obs: debug listener: %w", err))
		}
		logger.Info("debug server listening", "addr", ln.Addr().String())
		go http.Serve(ln, DebugMux()) //nolint:errcheck — closed by cleanup
		cleanups = append(cleanups, ln.Close)
	}

	cleanup := func() error {
		var errs []error
		for i := len(cleanups) - 1; i >= 0; i-- {
			errs = append(errs, cleanups[i]())
		}
		return errors.Join(errs...)
	}
	return New(tracer, reg, logger), cleanup, nil
}

// DebugMux builds the private mux behind -debug-addr: expvar on
// /debug/vars and the pprof suite on /debug/pprof/. A private mux
// (rather than http.DefaultServeMux) guarantees a third-party init()
// registering a handler on the default mux can never leak onto the
// debug port.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
