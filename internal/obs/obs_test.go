package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != Default() {
		t.Error("bare context must yield the disabled default bundle")
	}
	o := New(NewMemoryTracer(), NewRegistry(), nil)
	ctx = NewContext(ctx, o)
	if FromContext(ctx) != o {
		t.Error("bundle did not round-trip through the context")
	}
	if FromContext(NewContext(context.Background(), nil)) != Default() {
		t.Error("nil bundle must fall back to the default")
	}
}

func TestStartSpanParentsUnderContextSpan(t *testing.T) {
	tr := NewMemoryTracer()
	o := New(tr, nil, nil)
	parent := tr.StartSpan("cell")
	ctx := ContextWithSpan(context.Background(), parent)
	child := o.StartSpan(ctx, "run")
	child.End()
	parent.End()
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "run" {
		t.Fatalf("unexpected spans: %+v", spans)
	}
	if spans[0].Parent != spans[1].Span || spans[0].Trace != spans[1].Trace {
		t.Error("run span is not a child of the context's cell span")
	}
	// without a context span, StartSpan roots a fresh trace
	root := o.StartSpan(context.Background(), "solo")
	root.End()
	if got := tr.Named("solo"); len(got) != 1 || got[0].Parent != "" {
		t.Errorf("solo span should be a root: %+v", got)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"":      slog.LevelWarn,
		"warn":  slog.LevelWarn,
		"DEBUG": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"error": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger(&buf, slog.LevelInfo)
	lg.Debug("hidden")
	lg.Info("shown", "k", 1)
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Errorf("level filtering broken: %q", out)
	}
	if NopLogger().Enabled(context.Background(), slog.LevelError) {
		t.Error("NopLogger must report every level disabled")
	}
}

func TestSetupSinks(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	promPath := filepath.Join(dir, "metrics.prom")
	jsonPath := filepath.Join(dir, "metrics.json")

	o, cleanup, err := Setup(SetupConfig{
		LogLevel:    "info",
		LogOutput:   &bytes.Buffer{},
		TracePath:   tracePath,
		MetricsPath: promPath,
		ExpvarName:  "obs_setup_test",
	})
	if err != nil {
		t.Fatal(err)
	}
	s := o.StartSpan(context.Background(), "run")
	s.SetInt("iterations", 2)
	s.Child("iteration").End()
	s.End()
	o.Metrics.Counter("llm_tokens_total", "billed tokens").Add(321)
	if err := cleanup(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		var d SpanData
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("trace line %d invalid: %v", lines+1, err)
		}
		lines++
	}
	if lines != 2 {
		t.Errorf("trace has %d lines, want 2", lines)
	}

	prom, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "llm_tokens_total 321") {
		t.Errorf("metrics file missing counter:\n%s", prom)
	}

	// .json extension switches the exporter
	o2, cleanup2, err := Setup(SetupConfig{MetricsPath: jsonPath, LogOutput: &bytes.Buffer{}, ExpvarName: "obs_setup_test"})
	if err != nil {
		t.Fatal(err)
	}
	o2.Metrics.Gauge("g", "").Set(1)
	if err := cleanup2(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("json metrics file invalid: %v", err)
	}

	if _, _, err := Setup(SetupConfig{LogLevel: "nope"}); err == nil {
		t.Error("Setup accepted an invalid log level")
	}
}

func TestSetupDebugAddr(t *testing.T) {
	o, cleanup, err := Setup(SetupConfig{
		DebugAddr:  "127.0.0.1:0",
		LogOutput:  &bytes.Buffer{},
		ExpvarName: "obs_debug_test",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.Metrics == nil {
		t.Error("Setup must always provide a registry")
	}
	if err := cleanup(); err != nil {
		t.Fatal(err)
	}
}
