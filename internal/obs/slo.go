package obs

import (
	"sort"
	"sync"
	"time"
)

// Streaming SLO tracking for the serving gateway. The tracker keeps,
// per tenant, a ring of fixed-duration time slices; each slice holds a
// fixed-bucket latency histogram plus request/error counts. Memory per
// tenant is therefore constant (slices × buckets), queries over any
// window up to the retention horizon are O(slices), and the whole
// structure survives unbounded traffic without resizing. Quantiles come
// from linear interpolation inside the log-spaced buckets — accurate to
// a bucket's width, which at the default doubling bounds means p99
// within ~2x, plenty for burn-rate alerting (exact latency
// distributions live in the serve_request_seconds histogram vector).

// SLOOptions configures NewSLOTracker. The zero value gives 10s slices,
// 1h retention, DurationBuckets bounds, a 99.9% objective and a
// 256-tenant cap.
type SLOOptions struct {
	// Slice is the ring's time-slice width; queries are quantized to it.
	Slice time.Duration
	// Retention bounds the oldest answerable window.
	Retention time.Duration
	// Bounds are the latency bucket upper bounds in seconds.
	Bounds []float64
	// Objective is the availability target in (0, 1), e.g. 0.999; burn
	// rate is reported relative to it.
	Objective float64
	// MaxTenants caps the tenant map; beyond it, observations fold into
	// the OverflowLabelValue tenant so a tenant-ID flood stays bounded.
	MaxTenants int
	// Now overrides the clock (tests).
	Now func() time.Time
}

// WindowStats is one tenant's aggregate over one rolling window.
type WindowStats struct {
	// Window is the requested window, quantized up to whole slices.
	Window time.Duration `json:"-"`
	// WindowSeconds is the JSON form of Window.
	WindowSeconds float64 `json:"window_seconds"`
	Requests      uint64  `json:"requests"`
	Errors        uint64  `json:"errors"`
	// ErrorRate is Errors/Requests (0 for an empty window).
	ErrorRate float64 `json:"error_rate"`
	// Availability is 1 - ErrorRate.
	Availability float64 `json:"availability"`
	// BurnRate is ErrorRate divided by the error budget (1-objective):
	// 1.0 burns the budget exactly at the objective's horizon, 14.4 is
	// the classic page-now threshold for a 99.9% monthly objective.
	BurnRate float64 `json:"burn_rate"`
	P50MS    float64 `json:"p50_ms"`
	P90MS    float64 `json:"p90_ms"`
	P99MS    float64 `json:"p99_ms"`
	MeanMS   float64 `json:"mean_ms"`
}

// SLOTracker aggregates per-tenant request outcomes into rolling
// windows. All methods are safe for concurrent use and nil-safe.
type SLOTracker struct {
	opts   SLOOptions
	slices int // ring length

	mu      sync.Mutex
	tenants map[string]*sloSeries
}

// sloSeries is one tenant's ring of time slices.
type sloSeries struct {
	ring []sloSlice
}

// sloSlice accumulates one slice-width of observations. epoch stamps
// which absolute slice the entry belongs to, so stale ring entries are
// recognized (and reset) lazily instead of by a sweeper goroutine.
type sloSlice struct {
	epoch  int64
	counts []uint64 // per latency bucket, +1 for overflow
	total  uint64
	errs   uint64
	sum    float64 // seconds
}

// NewSLOTracker returns a tracker with the given options (zero fields
// take the documented defaults).
func NewSLOTracker(opts SLOOptions) *SLOTracker {
	if opts.Slice <= 0 {
		opts.Slice = 10 * time.Second
	}
	if opts.Retention <= 0 {
		opts.Retention = time.Hour
	}
	if opts.Retention < opts.Slice {
		opts.Retention = opts.Slice
	}
	if len(opts.Bounds) == 0 {
		opts.Bounds = DurationBuckets
	}
	b := append([]float64(nil), opts.Bounds...)
	sort.Float64s(b)
	opts.Bounds = b
	if opts.Objective <= 0 || opts.Objective >= 1 {
		opts.Objective = 0.999
	}
	if opts.MaxTenants <= 0 {
		opts.MaxTenants = 256
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &SLOTracker{
		opts:    opts,
		slices:  int(opts.Retention / opts.Slice),
		tenants: make(map[string]*sloSeries),
	}
}

// Objective returns the configured availability target.
func (t *SLOTracker) Objective() float64 {
	if t == nil {
		return 0
	}
	return t.opts.Objective
}

// Observe records one finished request for a tenant.
func (t *SLOTracker) Observe(tenant string, seconds float64, isErr bool) {
	if t == nil {
		return
	}
	epoch := t.opts.Now().UnixNano() / int64(t.opts.Slice)
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.tenants[tenant]
	if !ok {
		if len(t.tenants) >= t.opts.MaxTenants {
			tenant = OverflowLabelValue
			s, ok = t.tenants[tenant]
		}
		if !ok {
			s = &sloSeries{ring: make([]sloSlice, t.slices)}
			t.tenants[tenant] = s
		}
	}
	sl := &s.ring[int(epoch%int64(t.slices))]
	if sl.epoch != epoch {
		sl.epoch = epoch
		if sl.counts == nil {
			sl.counts = make([]uint64, len(t.opts.Bounds)+1)
		} else {
			for i := range sl.counts {
				sl.counts[i] = 0
			}
		}
		sl.total, sl.errs, sl.sum = 0, 0, 0
	}
	sl.counts[sort.SearchFloat64s(t.opts.Bounds, seconds)]++
	sl.total++
	if isErr {
		sl.errs++
	}
	sl.sum += seconds
}

// Stats aggregates one tenant over the given windows (each quantized up
// to whole slices and clamped to retention). A tenant with no recorded
// traffic returns zero-valued stats.
func (t *SLOTracker) Stats(tenant string, windows ...time.Duration) []WindowStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.statsLocked(t.tenants[tenant], windows)
}

// StatsAll aggregates every known tenant over the given windows.
func (t *SLOTracker) StatsAll(windows ...time.Duration) map[string][]WindowStats {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string][]WindowStats, len(t.tenants))
	for tenant, s := range t.tenants {
		out[tenant] = t.statsLocked(s, windows)
	}
	return out
}

func (t *SLOTracker) statsLocked(s *sloSeries, windows []time.Duration) []WindowStats {
	now := t.opts.Now().UnixNano() / int64(t.opts.Slice)
	out := make([]WindowStats, 0, len(windows))
	counts := make([]uint64, len(t.opts.Bounds)+1)
	for _, w := range windows {
		n := int((w + t.opts.Slice - 1) / t.opts.Slice)
		if n < 1 {
			n = 1
		}
		if n > t.slices {
			n = t.slices
		}
		ws := WindowStats{
			Window:        time.Duration(n) * t.opts.Slice,
			WindowSeconds: (time.Duration(n) * t.opts.Slice).Seconds(),
			Availability:  1,
		}
		for i := range counts {
			counts[i] = 0
		}
		var sum float64
		if s != nil {
			// Include the current (partial) slice plus the n-1 before it.
			for e := now - int64(n) + 1; e <= now; e++ {
				sl := &s.ring[int(((e%int64(t.slices))+int64(t.slices))%int64(t.slices))]
				if sl.epoch != e {
					continue
				}
				ws.Requests += sl.total
				ws.Errors += sl.errs
				sum += sl.sum
				for i, c := range sl.counts {
					counts[i] += c
				}
			}
		}
		if ws.Requests > 0 {
			ws.ErrorRate = float64(ws.Errors) / float64(ws.Requests)
			ws.Availability = 1 - ws.ErrorRate
			ws.BurnRate = ws.ErrorRate / (1 - t.opts.Objective)
			ws.MeanMS = sum / float64(ws.Requests) * 1000
			ws.P50MS = bucketQuantile(t.opts.Bounds, counts, ws.Requests, 0.50) * 1000
			ws.P90MS = bucketQuantile(t.opts.Bounds, counts, ws.Requests, 0.90) * 1000
			ws.P99MS = bucketQuantile(t.opts.Bounds, counts, ws.Requests, 0.99) * 1000
		}
		out = append(out, ws)
	}
	return out
}

// bucketQuantile estimates the q-quantile (in the bounds' unit, here
// seconds) from per-bucket counts by linear interpolation inside the
// target bucket — the same estimate Prometheus' histogram_quantile
// computes. The overflow bucket clamps to the largest bound.
func bucketQuantile(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		if i >= len(bounds) { // overflow bucket: clamp
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		return lo + (hi-lo)*(target-prev)/float64(c)
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}
