package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestMemoryTracerHierarchy(t *testing.T) {
	tr := NewMemoryTracer()
	run := tr.StartSpan("run")
	run.SetStr("dataset", "youtube")
	it := run.Child("iteration")
	it.SetInt("iteration", 3)
	stage := it.Child("prompt")
	stage.SetFloat("temp", 0.7)
	stage.SetErr(errors.New("boom"))
	stage.End()
	it.End()
	run.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	// children end first
	if spans[0].Name != "prompt" || spans[1].Name != "iteration" || spans[2].Name != "run" {
		t.Fatalf("unexpected order: %s %s %s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[0].Trace != spans[2].Trace || spans[1].Trace != spans[2].Trace {
		t.Error("spans of one tree must share a trace id")
	}
	if spans[1].Parent != spans[2].Span {
		t.Errorf("iteration parent = %q, want run span %q", spans[1].Parent, spans[2].Span)
	}
	if spans[0].Parent != spans[1].Span {
		t.Errorf("stage parent = %q, want iteration span %q", spans[0].Parent, spans[1].Span)
	}
	if spans[0].Error != "boom" {
		t.Errorf("stage error = %q, want boom", spans[0].Error)
	}
	if v, ok := spans[1].Int("iteration"); !ok || v != 3 {
		t.Errorf("iteration attr = %d/%v, want 3/true", v, ok)
	}
	if s, ok := spans[2].Str("dataset"); !ok || s != "youtube" {
		t.Errorf("dataset attr = %q/%v", s, ok)
	}
	if spans[2].End.Before(spans[2].Start) || spans[2].DurationMS < 0 {
		t.Error("run span has negative duration")
	}

	// attributes after End are dropped; End is idempotent
	run.SetInt("late", 1)
	run.End()
	if got := tr.Spans(); len(got) != 3 {
		t.Fatalf("double End recorded again: %d spans", len(got))
	}
	if _, ok := tr.Spans()[2].Int("late"); ok {
		t.Error("attribute set after End was recorded")
	}
}

func TestJSONLTracerConcurrentLinesStayIntact(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	safe := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	tr := NewJSONLTracer(safe)

	const goroutines, spansEach = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < spansEach; i++ {
				s := tr.StartSpan("work")
				s.SetInt("goroutine", int64(g))
				s.SetInt("i", int64(i))
				s.SetStr("payload", "0123456789abcdef0123456789abcdef")
				s.End()
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	data := buf.Bytes()
	mu.Unlock()
	sc := bufio.NewScanner(bytes.NewReader(data))
	lines := 0
	for sc.Scan() {
		var d SpanData
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", lines+1, err, sc.Text())
		}
		if d.Name != "work" {
			t.Fatalf("line %d: corrupt span name %q", lines+1, d.Name)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := goroutines * spansEach; lines != want {
		t.Fatalf("got %d JSONL lines, want %d", lines, want)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestJSONLTracerSurfacesWriteError(t *testing.T) {
	tr := NewJSONLTracer(writerFunc(func([]byte) (int, error) {
		return 0, fmt.Errorf("disk full")
	}))
	s := tr.StartSpan("x")
	s.End()
	if tr.Err() == nil {
		t.Fatal("write error was swallowed")
	}
}

// TestNopTelemetryZeroAllocs proves the acceptance criterion: with the
// no-op tracer (and nil registry handles, and the discard logger) the
// full per-iteration instrumentation sequence of the pipeline allocates
// nothing.
func TestNopTelemetryZeroAllocs(t *testing.T) {
	o := Default()
	var c *Counter
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		it := o.Tracer.StartSpan("run").Child("iteration")
		it.SetInt("iteration", 7)
		it.SetInt("query_id", 42)
		for _, stage := range [...]string{"select", "prompt", "parse", "filter"} {
			s := it.Child(stage)
			s.SetInt("prompt_tokens", 123)
			s.End()
		}
		it.SetInt("candidates", 3)
		it.SetInt("kept", 2)
		it.End()
		c.AddInt(2)
		c.Inc()
		h.Observe(2)
		if o.Logger.Enabled(nil, -4) { //nolint:staticcheck — nil ctx is fine for Enabled
			t.Error("discard logger claims debug enabled")
		}
	})
	if allocs != 0 {
		t.Fatalf("no-op telemetry path allocates %.1f times per iteration, want 0", allocs)
	}
}
