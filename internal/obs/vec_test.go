package obs

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestCounterVecConcurrentCardinalityBound is the cardinality-flood
// contract, run under -race by `make race`: goroutines hammering a
// CounterVec with unbounded tenant names never grow the series map past
// the cap (+1 for the overflow series), no increment is lost — the
// flood folds into `_overflow` instead — and the Prometheus exposition
// stays deterministic and sorted throughout.
func TestCounterVecConcurrentCardinalityBound(t *testing.T) {
	const maxSeries, goroutines, perG = 8, 8, 400
	r := NewRegistry()
	cv := r.CounterVec("flood_total", "cardinality flood", "tenant", "code")
	cv.SetMaxSeries(maxSeries)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Unbounded names: every call presents a fresh tenant.
				cv.With2(fmt.Sprintf("tenant-%d-%d", g, i), "ok").Inc()
				// One well-known tenant everyone shares.
				cv.With2("acme", "ok").Inc()
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * perG * 2
	if got := cv.Sum(); got != total {
		t.Errorf("Sum() = %v, want %d (folding must not lose increments)", got, total)
	}
	series, ok := r.Snapshot()["flood_total"].(map[string]any)
	if !ok {
		t.Fatal("snapshot did not export flood_total as a series map")
	}
	if len(series) > maxSeries+1 {
		t.Errorf("series count %d exceeds cap %d (+1 overflow)", len(series), maxSeries)
	}
	ovf, ok := series[`tenant="_overflow",code="_overflow"`].(float64)
	if !ok || ovf == 0 {
		t.Errorf("overflow series missing or zero: %v", series)
	}
	if got := r.SeriesValue("flood_total", "acme", "ok"); got != goroutines*perG {
		t.Errorf("acme series = %v, want %d", got, goroutines*perG)
	}
	if cv.Overflowed() == 0 {
		t.Error("Overflowed() = 0 after a flood past the cap")
	}

	// Exposition is stable (two renders agree) and the family's sample
	// lines are sorted by label values.
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two renders of an idle registry differ")
	}
	var samples []string
	for _, line := range strings.Split(a.String(), "\n") {
		if strings.HasPrefix(line, "flood_total{") {
			samples = append(samples, line)
		}
	}
	if len(samples) < 2 {
		t.Fatalf("expected multiple flood_total samples, got %d", len(samples))
	}
	if !sort.StringsAreSorted(samples) {
		t.Errorf("flood_total samples not sorted:\n%s", strings.Join(samples, "\n"))
	}
	if problems := LintPrometheus(&a); len(problems) != 0 {
		t.Errorf("exposition fails lint: %v", problems)
	}
}

func TestVecOverflowFoldsPastCap(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("small_total", "tiny cap", "tenant")
	cv.SetMaxSeries(2)
	cv.With1("a").Inc()
	cv.With1("b").AddInt(2)
	cv.With1("c").AddInt(4) // beyond cap: folds
	cv.With1("d").AddInt(8) // same
	cv.With1("a").Inc()     // existing series unaffected by the fold

	if got := r.SeriesValue("small_total", "a"); got != 2 {
		t.Errorf(`series a = %v, want 2`, got)
	}
	if got := r.SeriesValue("small_total", "b"); got != 2 {
		t.Errorf(`series b = %v, want 2`, got)
	}
	if got := r.SeriesValue("small_total", OverflowLabelValue); got != 12 {
		t.Errorf("overflow series = %v, want 12", got)
	}
	if got := cv.Overflowed(); got != 2 {
		t.Errorf("Overflowed() = %d, want 2", got)
	}
	if got := cv.Sum(); got != 16 {
		t.Errorf("Sum() = %v, want 16", got)
	}
	// SeriesValue never creates: reading an absent series leaves the map
	// unchanged.
	if got := r.SeriesValue("small_total", "never-written"); got != 0 {
		t.Errorf("absent series = %v, want 0", got)
	}
	if n := len(r.Snapshot()["small_total"].(map[string]any)); n != 3 {
		t.Errorf("series count = %d, want 3 (a, b, overflow)", n)
	}
}

func TestGaugeVecAndHistogramVec(t *testing.T) {
	r := NewRegistry()
	gv := r.GaugeVec("depth", "queue depth", "tenant")
	gv.With1("a").Set(3)
	gv.With1("b").Add(2)
	if got := gv.Sum(); got != 5 {
		t.Errorf("gauge Sum() = %v, want 5", got)
	}
	if got := r.SeriesValue("depth", "a"); got != 3 {
		t.Errorf("gauge series a = %v, want 3", got)
	}

	hv := r.HistogramVec("lat_seconds", "latency", []float64{0.1, 1}, "tenant")
	hv.With1("a").Observe(0.0625)
	hv.With1("a").Observe(0.5)
	hv.With1("a").Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_seconds_bucket{tenant="a",le="0.1"} 1`,
		`lat_seconds_bucket{tenant="a",le="1"} 2`,
		`lat_seconds_bucket{tenant="a",le="+Inf"} 3`,
		`lat_seconds_sum{tenant="a"} 5.5625`,
		`lat_seconds_count{tenant="a"} 3`,
		`depth{tenant="a"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if problems := LintPrometheus(strings.NewReader(out)); len(problems) != 0 {
		t.Errorf("exposition fails lint: %v", problems)
	}
}

func TestVecLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "", "tenant").With1("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `esc_total{tenant="a\"b\\c\nd"} 1`; !strings.Contains(buf.String(), want) {
		t.Errorf("exposition missing escaped sample %q:\n%s", want, buf.String())
	}
	if problems := LintPrometheus(bytes.NewReader(buf.Bytes())); len(problems) != 0 {
		t.Errorf("escaped exposition fails lint: %v", problems)
	}
}

func TestVecMisusePanics(t *testing.T) {
	r := NewRegistry()
	mustPanic := func(what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", what)
			}
		}()
		f()
	}
	mustPanic("vector without labels", func() { r.CounterVec("nolabels_total", "") })
	cv := r.CounterVec("arity_total", "", "tenant", "code")
	mustPanic("wrong arity", func() { cv.With("only-one") })
	mustPanic("kind mismatch", func() { r.GaugeVec("arity_total", "", "tenant", "code") })
	mustPanic("label mismatch", func() { r.CounterVec("arity_total", "", "tenant", "route") })
}

// TestNilVecZeroAllocs extends the zero-alloc acceptance gate to the
// dimensional metrics: a nil registry hands out nil vectors, whose
// fixed-arity With1/With2 return nil scalar handles without building an
// argument slice.
func TestNilVecZeroAllocs(t *testing.T) {
	var r *Registry
	cv := r.CounterVec("c_total", "", "tenant", "code")
	gv := r.GaugeVec("g", "", "tenant")
	hv := r.HistogramVec("h_seconds", "", DurationBuckets, "tenant")
	allocs := testing.AllocsPerRun(1000, func() {
		cv.With2("acme", "ok").Inc()
		gv.With1("acme").Set(3)
		hv.With1("acme").Observe(0.25)
	})
	if allocs != 0 {
		t.Fatalf("nil-vector path allocates %.1f times per iteration, want 0", allocs)
	}
}
