package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a CLI flag value to a slog level. Accepted (case-
// insensitive): debug, info, warn, warning, error. The empty string
// means LevelWarn — quiet enough that existing CLI output is unchanged
// unless the user opts in.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "warn", "warning":
		return slog.LevelWarn, nil
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the shared structured logger: a text handler on w at
// the given level. Every instrumented package logs through one of these
// so events carry uniform keys (component, dataset, method, seed,
// iteration, ...).
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// discardHandler drops everything (slog.DiscardHandler arrives in a
// later Go release than this module targets).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

var nopLogger = slog.New(discardHandler{})

// NopLogger returns the logger that discards every record without
// formatting it (Enabled reports false, so callers guarding with
// Logger.Enabled pay nothing).
func NopLogger() *slog.Logger { return nopLogger }
