package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// LintPrometheus validates a Prometheus text-exposition stream and
// returns one message per conformance problem (empty slice: clean).
// It backs `make metrics-lint`, which scrapes a live /metrics endpoint
// and fails CI on malformed output — the checks are the ones a real
// Prometheus scraper enforces or silently mangles:
//
//   - metric and label names match the Prometheus charsets;
//   - HELP/TYPE appear at most once per family, before its samples;
//   - every sample line parses and its value is a float;
//   - no duplicate series (same name + label set twice);
//   - histogram families have monotone non-decreasing bucket ladders,
//     an +Inf bucket equal to _count, and both _sum and _count.
func LintPrometheus(r io.Reader) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	fams := map[string]*lintFamily{}
	fam := func(name string) *lintFamily {
		f, ok := fams[name]
		if !ok {
			f = &lintFamily{
				seriesSeen: map[string]bool{},
				histSeries: map[string]*histCheck{},
				sumSeen:    map[string]bool{},
				countSeen:  map[string]bool{},
			}
			fams[name] = f
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			kind := line[2:6]
			rest := strings.TrimPrefix(line[7:], " ")
			name, _, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				addf("line %d: invalid metric name %q in # %s", lineNo, name, kind)
				continue
			}
			f := fam(name)
			if f.sampleSeen {
				addf("line %d: # %s %s appears after the family's samples", lineNo, kind, name)
			}
			if kind == "HELP" {
				if f.help {
					addf("line %d: duplicate # HELP for %s", lineNo, name)
				}
				f.help = true
			} else {
				if f.typ {
					addf("line %d: duplicate # TYPE for %s", lineNo, name)
				}
				f.typ = true
				f.typeName = strings.TrimSpace(strings.TrimPrefix(rest, name))
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			addf("line %d: %v", lineNo, err)
			continue
		}
		if !validMetricName(name) {
			addf("line %d: invalid metric name %q", lineNo, name)
			continue
		}
		for _, lp := range labels {
			if !validLabelName(lp.name) {
				addf("line %d: invalid label name %q on %s", lineNo, lp.name, name)
			}
		}

		// Attribute histogram suffix lines to their base family.
		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, s); b != name {
				if bf, ok := fams[b]; ok && bf.typeName == "histogram" {
					base, suffix = b, s
				}
				break
			}
		}
		f := fam(base)
		f.sampleSeen = true
		key := seriesKey(name, labels, suffix == "_bucket")
		if f.seriesSeen[key] {
			addf("line %d: duplicate series %s", lineNo, strings.TrimSpace(line))
		}
		f.seriesSeen[key] = true

		if suffix == "" {
			if f.typeName == "histogram" {
				addf("line %d: bare sample %s for histogram family", lineNo, name)
			}
			continue
		}
		sk := seriesKey(base, withoutLabel(labels, "le"), false)
		switch suffix {
		case "_sum":
			f.sumSeen[sk] = true
		case "_count":
			f.countSeen[sk] = true
			h := f.hist(sk)
			h.count, h.countSet = value, true
		case "_bucket":
			le, ok := labelValue(labels, "le")
			if !ok {
				addf("line %d: %s_bucket without le label", lineNo, base)
				continue
			}
			h := f.hist(sk)
			if le == "+Inf" {
				h.inf, h.infSet = value, true
			} else {
				lev, err := strconv.ParseFloat(le, 64)
				if err != nil {
					addf("line %d: unparseable le=%q on %s_bucket", lineNo, le, base)
					continue
				}
				h.buckets = append(h.buckets, bucketPoint{le: lev, count: value})
			}
		}
	}
	if err := sc.Err(); err != nil {
		addf("read: %v", err)
	}

	// Cross-line histogram checks, in deterministic family order.
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if f.typeName != "histogram" {
			continue
		}
		series := make([]string, 0, len(f.histSeries))
		for sk := range f.histSeries {
			series = append(series, sk)
		}
		sort.Strings(series)
		for _, sk := range series {
			h := f.histSeries[sk]
			where := n
			if sk != n+"\x00" {
				where = strings.TrimSuffix(strings.ReplaceAll(strings.ReplaceAll(
					strings.ReplaceAll(sk, "\x00", "{"), "\x01", "="), "\x02", ","), ",") + "}"
			}
			sort.Slice(h.buckets, func(i, j int) bool { return h.buckets[i].le < h.buckets[j].le })
			prev := 0.0
			for _, b := range h.buckets {
				if b.count < prev {
					addf("%s: bucket ladder not monotone (le=%s drops to %g)", where, fmtFloat(b.le), b.count)
					break
				}
				prev = b.count
			}
			if !h.infSet {
				addf("%s: missing le=\"+Inf\" bucket", where)
			} else {
				if h.inf < prev {
					addf("%s: +Inf bucket %g below last finite bucket %g", where, h.inf, prev)
				}
				if h.countSet && h.inf != h.count {
					addf("%s: +Inf bucket %g != _count %g", where, h.inf, h.count)
				}
			}
			if !f.sumSeen[sk] {
				addf("%s: missing _sum", where)
			}
			if !f.countSeen[sk] {
				addf("%s: missing _count", where)
			}
		}
	}
	return problems
}

// lintFamily accumulates what LintPrometheus has seen for one metric
// family.
type lintFamily struct {
	help, typ  bool
	typeName   string
	sampleSeen bool
	seriesSeen map[string]bool
	histSeries map[string]*histCheck
	sumSeen    map[string]bool
	countSeen  map[string]bool
}

type bucketPoint struct {
	le, count float64
}

type histCheck struct {
	buckets          []bucketPoint
	inf, count       float64
	infSet, countSet bool
}

type labelPair struct {
	name, value string
}

func (f *lintFamily) hist(sk string) *histCheck {
	h := f.histSeries[sk]
	if h == nil {
		h = &histCheck{}
		f.histSeries[sk] = h
	}
	return h
}

func seriesKey(name string, labels []labelPair, includeLE bool) string {
	ls := append([]labelPair(nil), labels...)
	if !includeLE {
		ls = withoutLabel(ls, "le")
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].name < ls[j].name })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte(0)
	for _, lp := range ls {
		b.WriteString(lp.name)
		b.WriteByte(1)
		b.WriteString(lp.value)
		b.WriteByte(2)
	}
	return b.String()
}

func withoutLabel(labels []labelPair, name string) []labelPair {
	out := make([]labelPair, 0, len(labels))
	for _, lp := range labels {
		if lp.name != name {
			out = append(out, lp)
		}
	}
	return out
}

func labelValue(labels []labelPair, name string) (string, bool) {
	for _, lp := range labels {
		if lp.name == name {
			return lp.value, true
		}
	}
	return "", false
}

// parseSample splits `name{l1="v1",l2="v2"} value [timestamp]`.
func parseSample(line string) (name string, labels []labelPair, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ \t")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("unparseable sample %q", line)
	}
	name, rest = rest[:i], rest[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, " \t")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			ln := strings.TrimSpace(rest[:eq])
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			rest = rest[1:]
			var val strings.Builder
			for {
				if rest == "" {
					return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
				}
				c := rest[0]
				rest = rest[1:]
				if c == '\\' {
					if rest == "" {
						return "", nil, 0, fmt.Errorf("dangling escape in %q", line)
					}
					switch rest[0] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("bad escape \\%c in %q", rest[0], line)
					}
					rest = rest[1:]
					continue
				}
				if c == '"' {
					break
				}
				val.WriteByte(c)
			}
			labels = append(labels, labelPair{name: ln, value: val.String()})
			rest = strings.TrimLeft(rest, " \t")
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
			}
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("expected value (and optional timestamp) in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q in %q", fields[0], line)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("unparseable timestamp %q in %q", fields[1], line)
		}
	}
	return name, labels, value, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
