package obs

import "runtime"

// RuntimeSnapshot is a point-in-time read of the Go runtime figures the
// serving endpoints expose.
type RuntimeSnapshot struct {
	Goroutines     int     `json:"goroutines"`
	HeapAllocBytes uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64  `json:"heap_sys_bytes"`
	NumGC          uint32  `json:"num_gc"`
	GCPauseTotalMS float64 `json:"gc_pause_total_ms"`
	LastGCPauseMS  float64 `json:"last_gc_pause_ms"`
}

// ReadRuntime captures the current runtime figures. It calls
// runtime.ReadMemStats (a brief stop-the-world), so callers should
// invoke it per scrape, not per request.
func ReadRuntime() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSnapshot{
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		NumGC:          ms.NumGC,
		GCPauseTotalMS: float64(ms.PauseTotalNs) / 1e6,
	}
	if ms.NumGC > 0 {
		s.LastGCPauseMS = float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e6
	}
	return s
}

// SetRuntimeGauges refreshes the registry's go_* gauges from a fresh
// RuntimeSnapshot. The serving /metrics handler calls this on each
// scrape so runtime health rides along with the application metrics.
func SetRuntimeGauges(r *Registry) {
	if r == nil {
		return
	}
	s := ReadRuntime()
	r.Gauge("go_goroutines", "Live goroutines.").Set(float64(s.Goroutines))
	r.Gauge("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.").Set(float64(s.HeapAllocBytes))
	r.Gauge("go_memstats_heap_sys_bytes", "Bytes of heap obtained from the OS.").Set(float64(s.HeapSysBytes))
	r.Gauge("go_gc_cycles_total", "Completed GC cycles.").Set(float64(s.NumGC))
	r.Gauge("go_gc_pause_total_ms", "Cumulative GC stop-the-world pause.").Set(s.GCPauseTotalMS)
	r.Gauge("go_gc_last_pause_ms", "Most recent GC stop-the-world pause.").Set(s.LastGCPauseMS)
}
