package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 (float so fractional
// quantities like dollar cost accumulate exactly like Prometheus
// counters do). All methods are lock-free and nil-safe: handles from a
// nil *Registry are nil and every operation on them is a no-op.
type Counter struct {
	bits atomic.Uint64 // float64 bits, CAS-updated
}

// Add accumulates v (negative deltas are ignored — counters only go up).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// AddInt accumulates an integer delta.
func (c *Counter) AddInt(v int) { c.Add(float64(v)) }

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable float64.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the value by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, v)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets (Prometheus
// cumulative-`le` semantics: an observation lands in the first bucket
// whose upper bound is >= the value, and export accumulates).
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	total  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	addFloat(&h.sum, v)
	h.total.Add(1)
}

// HistogramSnapshot is a consistent-enough copy for export (individual
// fields are atomically read; a concurrent Observe may straddle Sum and
// Count by one observation, as in every lock-free metrics library).
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Cumulative[i] counts
	// observations <= Bounds[i]. Count includes the +Inf bucket.
	Bounds     []float64 `json:"bounds"`
	Cumulative []uint64  `json:"cumulative"`
	Sum        float64   `json:"sum"`
	Count      uint64    `json:"count"`
}

// Snapshot exports the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:     append([]float64(nil), h.bounds...),
		Cumulative: make([]uint64, len(h.bounds)),
		Sum:        math.Float64frombits(h.sum.Load()),
	}
	var running uint64
	for i := range h.bounds {
		running += h.counts[i].Load()
		s.Cumulative[i] = running
	}
	s.Count = running + h.counts[len(h.bounds)].Load()
	return s
}

// Bucket presets for the metrics this repo records.
var (
	// DurationBuckets spans 1ms..~65s, doubling — LLM call latency,
	// rate-limit waits, grid-cell wall clock.
	DurationBuckets = ExpBuckets(0.001, 2, 17)
	// LongDurationBuckets spans 100ms..~27h, doubling — growth-cycle
	// wall clock, which covers a full propose→evaluate→promote pass.
	LongDurationBuckets = ExpBuckets(0.1, 2, 20)
	// TokenBuckets spans 16..~32k tokens per call.
	TokenBuckets = ExpBuckets(16, 2, 12)
	// SmallCountBuckets covers per-iteration counts like LFs kept.
	SmallCountBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	// IterationBuckets covers optimizer iteration counts (EM runs up to
	// MaxIter = 100); the low end resolves warm-started fits that
	// converge almost immediately.
	IterationBuckets = []float64{1, 2, 3, 5, 8, 12, 20, 32, 50, 75, 100}
	// BatchSizeBuckets covers serving micro-batch sizes: 1 (an idle
	// daemon serving requests as they come) up to the coalescer cap.
	BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
)

// ExpBuckets returns n bounds starting at start, multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// ---------------------------------------------------------------------
// registry

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterVec
	kindGaugeVec
	kindHistogramVec
)

type metricEntry struct {
	kind metricKind
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
	cv   *CounterVec
	gv   *GaugeVec
	hv   *HistogramVec
}

// Registry is a concurrency-safe collection of named metrics.
// Registration is idempotent: asking for an existing name returns the
// same handle (and panics on a kind mismatch — a programming error).
// A nil *Registry is valid everywhere and hands out nil no-op handles,
// which is how un-instrumented runs pay nothing.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metricEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metricEntry)}
}

func (r *Registry) entry(name, help string, kind metricKind) *metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return e
	}
	e := &metricEntry{kind: kind, help: help}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	}
	r.metrics[name] = e
	return e
}

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.entry(name, help, kindCounter).c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.entry(name, help, kindGauge).g
}

// Histogram returns (registering if needed) the named histogram. The
// bounds of the first registration win.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != kindHistogram {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return e.h
	}
	e := &metricEntry{kind: kindHistogram, help: help, h: newHistogram(bounds)}
	r.metrics[name] = e
	return e.h
}

// vecEntry is the shared registration path for the three vector kinds.
// Like the scalar path it is idempotent by name and panics on a kind or
// label-schema mismatch (a programming error).
func (r *Registry) vecEntry(name, help string, kind metricKind, bounds []float64, labels []string) *metricEntry {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: vector metric %q registered without labels", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		var core *vecCore
		switch kind {
		case kindCounterVec:
			core = e.cv.core
		case kindGaugeVec:
			core = e.gv.core
		case kindHistogramVec:
			core = e.hv.core
		}
		if len(core.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
		}
		for i := range labels {
			if core.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
			}
		}
		return e
	}
	e := &metricEntry{kind: kind, help: help}
	switch kind {
	case kindCounterVec:
		e.cv = &CounterVec{core: newVecCore(name, kindCounter, nil, labels)}
	case kindGaugeVec:
		e.gv = &GaugeVec{core: newVecCore(name, kindGauge, nil, labels)}
	case kindHistogramVec:
		e.hv = &HistogramVec{core: newVecCore(name, kindHistogram, bounds, labels)}
	}
	r.metrics[name] = e
	return e
}

// CounterVec returns (registering if needed) the named counter family
// partitioned by the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return r.vecEntry(name, help, kindCounterVec, nil, labels).cv
}

// GaugeVec returns (registering if needed) the named gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return r.vecEntry(name, help, kindGaugeVec, nil, labels).gv
}

// HistogramVec returns (registering if needed) the named histogram
// family; every series shares bounds (first registration wins).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return r.vecEntry(name, help, kindHistogramVec, bounds, labels).hv
}

// names returns the registered metric names, sorted, for deterministic
// export.
func (r *Registry) sorted() []string {
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (counters get the conventional *_total names at registration
// time; this writer does not rename).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.sorted() {
		e := r.metrics[name]
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, e.help); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, fmtFloat(e.c.Value()))
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, fmtFloat(e.g.Value()))
		case kindHistogram:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			err = writeHistogramSeries(w, name, "", e.h.Snapshot())
		case kindCounterVec:
			core := e.cv.core
			if _, err = fmt.Fprintf(w, "# TYPE %s counter\n", name); err != nil {
				return err
			}
			for _, s := range core.sortedSeries() {
				if _, err = fmt.Fprintf(w, "%s{%s} %s\n", name, core.labelString(s, ""), fmtFloat(s.c.Value())); err != nil {
					return err
				}
			}
		case kindGaugeVec:
			core := e.gv.core
			if _, err = fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
				return err
			}
			for _, s := range core.sortedSeries() {
				if _, err = fmt.Fprintf(w, "%s{%s} %s\n", name, core.labelString(s, ""), fmtFloat(s.g.Value())); err != nil {
					return err
				}
			}
		case kindHistogramVec:
			core := e.hv.core
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			for _, s := range core.sortedSeries() {
				if err = writeHistogramSeries(w, name, core.labelString(s, ""), s.h.Snapshot()); err != nil {
					return err
				}
			}
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeHistogramSeries renders one histogram series — the `_bucket`
// ladder, `_sum` and `_count` — with labels (possibly empty) prefixed
// to the `le` pair.
func writeHistogramSeries(w io.Writer, name, labels string, s HistogramSnapshot) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, le := range s.Bounds {
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, fmtFloat(le), s.Cumulative[i]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count); err != nil {
		return err
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", name, labels, fmtFloat(s.Sum), name, labels, s.Count)
	return err
}

// Snapshot returns every metric's current value keyed by name: float64
// for counters and gauges, HistogramSnapshot for histograms.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, e := range r.metrics {
		switch e.kind {
		case kindCounter:
			out[name] = e.c.Value()
		case kindGauge:
			out[name] = e.g.Value()
		case kindHistogram:
			out[name] = e.h.Snapshot()
		case kindCounterVec:
			core := e.cv.core
			m := make(map[string]any)
			for _, s := range core.sortedSeries() {
				m[core.labelString(s, "")] = s.c.Value()
			}
			out[name] = m
		case kindGaugeVec:
			core := e.gv.core
			m := make(map[string]any)
			for _, s := range core.sortedSeries() {
				m[core.labelString(s, "")] = s.g.Value()
			}
			out[name] = m
		case kindHistogramVec:
			core := e.hv.core
			m := make(map[string]any)
			for _, s := range core.sortedSeries() {
				m[core.labelString(s, "")] = s.h.Snapshot()
			}
			out[name] = m
		}
	}
	return out
}

// WriteJSON renders the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// CounterValue is a convenience read of a registered counter (0 when
// absent) — handy for tests and end-of-run summaries. For a counter
// vector it returns the sum over every series, so callers that predate
// a metric's dimensional split keep reading the same total.
func (r *Registry) CounterValue(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	e, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	switch e.kind {
	case kindCounter:
		return e.c.Value()
	case kindCounterVec:
		return e.cv.Sum()
	}
	return 0
}

// SeriesValue reads one series of a registered counter or gauge vector
// (0 when the metric or series is absent). Reading a series never
// creates it.
func (r *Registry) SeriesValue(name string, values ...string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	e, ok := r.metrics[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	var core *vecCore
	switch e.kind {
	case kindCounterVec:
		core = e.cv.core
	case kindGaugeVec:
		core = e.gv.core
	default:
		return 0
	}
	if len(values) != len(core.labels) {
		return 0
	}
	key := strings.Join(values, vecKeySep)
	core.mu.RLock()
	s, ok := core.series[key]
	core.mu.RUnlock()
	if !ok {
		return 0
	}
	if s.c != nil {
		return s.c.Value()
	}
	return s.g.Value()
}

// Publish exposes the registry's Snapshot under the given expvar name
// (and thereby on -debug-addr's /debug/vars). Publishing the same name
// twice is a no-op rather than the expvar panic, so tests can call it
// repeatedly; the first registry wins for the life of the process.
func (r *Registry) Publish(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
