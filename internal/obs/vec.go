package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Dimensional metrics: a vector is one named metric family whose series
// are keyed by a small fixed set of label values (tenant, outcome code).
// The design constraints mirror the scalar metrics in this package:
//
//   - nil-safe everywhere — a nil vector hands out nil scalar handles,
//     so the un-instrumented path stays zero-alloc;
//   - lock-free on the hot path once a series handle is held (handles
//     ARE the scalar Counter/Gauge/Histogram types);
//   - bounded cardinality — each vector folds label sets beyond
//     MaxSeries into one reserved overflow series, so a tenant-ID flood
//     degrades attribution instead of OOMing the registry.

// OverflowLabelValue replaces every label value of a series created
// after a vector hits its series cap.
const OverflowLabelValue = "_overflow"

// DefaultMaxSeries is the per-vector series cap (overflow series
// excluded) unless SetMaxSeries overrides it.
const DefaultMaxSeries = 256

// vecKeySep joins label values into map keys; it cannot occur in UTF-8
// text labels that matter (0x1f is a C0 control).
const vecKeySep = "\x1f"

// vecSeries is one (label values → scalar) binding.
type vecSeries struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// vecCore is the shared machinery of CounterVec / GaugeVec /
// HistogramVec.
type vecCore struct {
	name   string
	labels []string
	kind   metricKind // kind of the element scalars
	bounds []float64  // histogram vectors only

	mu       sync.RWMutex
	max      int
	series   map[string]*vecSeries
	overflow atomic.Uint64 // label sets folded into the overflow series
}

func newVecCore(name string, kind metricKind, bounds []float64, labels []string) *vecCore {
	return &vecCore{
		name:   name,
		labels: append([]string(nil), labels...),
		kind:   kind,
		bounds: bounds,
		max:    DefaultMaxSeries,
		series: make(map[string]*vecSeries),
	}
}

// setMax adjusts the series cap (existing series are kept even if they
// exceed the new cap; only new label sets fold into overflow).
func (v *vecCore) setMax(n int) {
	if v == nil || n <= 0 {
		return
	}
	v.mu.Lock()
	v.max = n
	v.mu.Unlock()
}

// with returns (creating if needed) the series for the given label
// values. Beyond the cap, the overflow series is returned instead.
func (v *vecCore) with(values []string) *vecSeries {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: metric %q takes %d label values, got %d",
			v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, vecKeySep)
	v.mu.RLock()
	s, ok := v.series[key]
	v.mu.RUnlock()
	if ok {
		return s
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if s, ok := v.series[key]; ok {
		return s
	}
	if len(v.series) >= v.max {
		// Cardinality bound: fold this label set into the overflow
		// series (which may itself need creating — it does not count
		// against the cap).
		v.overflow.Add(1)
		ovf := make([]string, len(v.labels))
		for i := range ovf {
			ovf[i] = OverflowLabelValue
		}
		key = strings.Join(ovf, vecKeySep)
		if s, ok := v.series[key]; ok {
			return s
		}
		values = ovf
	}
	s = &vecSeries{values: append([]string(nil), values...)}
	switch v.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(v.bounds)
	}
	v.series[key] = s
	return s
}

// sortedSeries snapshots the series sorted by label values, for
// deterministic export.
func (v *vecCore) sortedSeries() []*vecSeries {
	v.mu.RLock()
	out := make([]*vecSeries, 0, len(v.series))
	for _, s := range v.series {
		out = append(out, s)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].values, out[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// labelString renders a series' label pairs in exposition order:
// `tenant="acme",code="ok"` (extra appends e.g. a histogram le pair).
func (v *vecCore) labelString(s *vecSeries, extra string) string {
	var b strings.Builder
	for i, name := range v.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(s.values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(v.labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format label escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// OverflowCount reports how many label sets were folded into the
// overflow series (shared implementation for all three vector kinds).
func (v *vecCore) overflowCount() uint64 {
	if v == nil {
		return 0
	}
	return v.overflow.Load()
}

// ---------------------------------------------------------------------
// CounterVec

// CounterVec is a counter family partitioned by label values. Obtain
// one from Registry.CounterVec; a nil *CounterVec is valid and hands
// out nil (no-op) counters.
type CounterVec struct {
	core *vecCore
}

// With returns the counter for the given label values (the overflow
// counter beyond the series cap). The number of values must match the
// registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.core.with(values).c
}

// With1 and With2 are fixed-arity variants of With, used on hot paths
// so the no-op (nil vector) call builds no argument slice.
func (v *CounterVec) With1(a string) *Counter {
	if v == nil {
		return nil
	}
	return v.core.with([]string{a}).c
}

// With2 is the two-label variant of With1.
func (v *CounterVec) With2(a, b string) *Counter {
	if v == nil {
		return nil
	}
	return v.core.with([]string{a, b}).c
}

// SetMaxSeries overrides the vector's series cap (default
// DefaultMaxSeries).
func (v *CounterVec) SetMaxSeries(n int) {
	if v == nil {
		return
	}
	v.core.setMax(n)
}

// Sum returns the total across every series.
func (v *CounterVec) Sum() float64 {
	if v == nil {
		return 0
	}
	var sum float64
	for _, s := range v.core.sortedSeries() {
		sum += s.c.Value()
	}
	return sum
}

// Overflowed reports how many label sets were folded into the overflow
// series.
func (v *CounterVec) Overflowed() uint64 {
	if v == nil {
		return 0
	}
	return v.core.overflowCount()
}

// ---------------------------------------------------------------------
// GaugeVec

// GaugeVec is a gauge family partitioned by label values; nil-safe like
// CounterVec.
type GaugeVec struct {
	core *vecCore
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.core.with(values).g
}

// With1 is the one-label fixed-arity variant of With.
func (v *GaugeVec) With1(a string) *Gauge {
	if v == nil {
		return nil
	}
	return v.core.with([]string{a}).g
}

// With2 is the two-label variant of With1.
func (v *GaugeVec) With2(a, b string) *Gauge {
	if v == nil {
		return nil
	}
	return v.core.with([]string{a, b}).g
}

// SetMaxSeries overrides the vector's series cap.
func (v *GaugeVec) SetMaxSeries(n int) {
	if v == nil {
		return
	}
	v.core.setMax(n)
}

// Sum returns the total across every series.
func (v *GaugeVec) Sum() float64 {
	if v == nil {
		return 0
	}
	var sum float64
	for _, s := range v.core.sortedSeries() {
		sum += s.g.Value()
	}
	return sum
}

// ---------------------------------------------------------------------
// HistogramVec

// HistogramVec is a histogram family partitioned by label values; every
// series shares the bounds given at registration. Nil-safe.
type HistogramVec struct {
	core *vecCore
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.core.with(values).h
}

// With1 is the one-label fixed-arity variant of With.
func (v *HistogramVec) With1(a string) *Histogram {
	if v == nil {
		return nil
	}
	return v.core.with([]string{a}).h
}

// With2 is the two-label variant of With1.
func (v *HistogramVec) With2(a, b string) *Histogram {
	if v == nil {
		return nil
	}
	return v.core.with([]string{a, b}).h
}

// SetMaxSeries overrides the vector's series cap.
func (v *HistogramVec) SetMaxSeries(n int) {
	if v == nil {
		return
	}
	v.core.setMax(n)
}
