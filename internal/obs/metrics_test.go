package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExactUnderConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "operations")
	g := r.Gauge("busy", "busy workers")

	const goroutines, perG = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				c.Add(0.5)
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()

	if got, want := c.Value(), float64(goroutines*perG)*1.5; got != want {
		t.Errorf("counter = %v, want %v", got, want)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	// same name returns the same handle; negative counter deltas ignored
	if r.Counter("ops_total", "") != c {
		t.Error("re-registration returned a new counter")
	}
	c.Add(-100)
	if got := c.Value(); got != float64(goroutines*perG)*1.5 {
		t.Errorf("negative Add moved the counter to %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if want := []uint64{2, 3, 4}; len(s.Cumulative) != 3 ||
		s.Cumulative[0] != want[0] || s.Cumulative[1] != want[1] || s.Cumulative[2] != want[2] {
		t.Errorf("cumulative = %v, want %v", s.Cumulative, want)
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-102.65) > 1e-9 {
		t.Errorf("sum = %v, want 102.65", s.Sum)
	}
}

func TestPrometheusExport(t *testing.T) {
	r := NewRegistry()
	r.Counter("llm_tokens_total", "billed tokens").Add(1234)
	r.Gauge("grid_workers_busy", "busy workers").Set(3)
	h := r.Histogram("llm_latency_seconds", "call latency", []float64{0.5, 1})
	h.Observe(0.2)
	h.Observe(0.7)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE llm_tokens_total counter",
		"llm_tokens_total 1234",
		"# TYPE grid_workers_busy gauge",
		"grid_workers_busy 3",
		"# TYPE llm_latency_seconds histogram",
		`llm_latency_seconds_bucket{le="0.5"} 1`,
		`llm_latency_seconds_bucket{le="1"} 2`,
		`llm_latency_seconds_bucket{le="+Inf"} 3`,
		"llm_latency_seconds_sum 5.9",
		"llm_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// every non-comment line is "name[{labels}] value"
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("unparseable exposition line: %q", line)
		}
	}
}

func TestJSONExportRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(2)
	r.Histogram("b", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if decoded["a_total"] != 2.0 {
		t.Errorf("a_total = %v, want 2", decoded["a_total"])
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", DurationBuckets)
	c.Inc()
	g.Set(5)
	h.Observe(1)
	if c != nil || g != nil || h != nil {
		t.Error("nil registry must hand out nil handles")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
	if v := r.CounterValue("x_total"); v != 0 {
		t.Errorf("CounterValue on nil registry = %v", v)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "")
	r.Gauge("m", "")
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("pub_total", "").Add(7)
	r.Publish("obs_test_metrics")
	r.Publish("obs_test_metrics") // second call must not panic
	r2 := NewRegistry()
	r2.Publish("obs_test_metrics") // nor a different registry
}
