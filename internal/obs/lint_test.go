package obs

import (
	"bytes"
	"strings"
	"testing"
)

// lintOne runs the linter over a literal exposition snippet.
func lintOne(s string) []string { return LintPrometheus(strings.NewReader(s)) }

// wantProblem asserts exactly one finding mentioning every needle.
func wantProblem(t *testing.T, input string, needles ...string) {
	t.Helper()
	problems := lintOne(input)
	if len(problems) != 1 {
		t.Fatalf("got %d findings %v, want 1 for:\n%s", len(problems), problems, input)
	}
	for _, n := range needles {
		if !strings.Contains(problems[0], n) {
			t.Errorf("finding %q does not mention %q", problems[0], n)
		}
	}
}

// TestLintAcceptsRegistryOutput is the self-consistency gate behind
// `make metrics-lint`: everything this package's own exporter renders —
// scalars, vectors, escaped labels, histogram ladders, runtime gauges —
// must pass its own linter.
func TestLintAcceptsRegistryOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("plain_total", "plain counter").Inc()
	r.Gauge("plain_gauge", "plain gauge").Set(-2.5)
	r.Histogram("plain_seconds", "plain histogram", []float64{0.1, 1}).Observe(0.5)
	cv := r.CounterVec("dim_total", "dimensional counter", "tenant", "code")
	cv.With2("acme", "ok").Inc()
	cv.With2("tricky\"quote\\slash\nnewline", "shed").Inc()
	cv.SetMaxSeries(1)
	cv.With2("overflow-me", "ok").Inc()
	hv := r.HistogramVec("dim_seconds", "dimensional histogram", DurationBuckets, "tenant")
	hv.With1("acme").Observe(0.02)
	hv.With1("other").Observe(3)
	SetRuntimeGauges(r)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if problems := LintPrometheus(&buf); len(problems) != 0 {
		t.Errorf("registry exposition fails its own lint:\n%s", strings.Join(problems, "\n"))
	}
}

func TestLintFlagsViolations(t *testing.T) {
	wantProblem(t, "9bad_total 1\n", "invalid metric name")
	wantProblem(t, `ok_total{__reserved="x"} 1`+"\n", "invalid label name", "__reserved")
	wantProblem(t, "# HELP x_total a\n# HELP x_total b\nx_total 1\n", "duplicate # HELP")
	wantProblem(t, "# TYPE x_total counter\n# TYPE x_total counter\nx_total 1\n", "duplicate # TYPE")
	wantProblem(t, "x_total 1\n# TYPE x_total counter\n", "after the family's samples")
	wantProblem(t, "x_total notanumber\n", "unparseable value")
	wantProblem(t, `x_total{a="unterminated} 1`+"\n", "unterminated")
	wantProblem(t, `x_total{a="bad\escape"} 1`+"\n", "bad escape")
	wantProblem(t, "x_total{a=\"v\"} 1\nx_total{a=\"v\"} 2\n", "duplicate series")

	// Histogram families: bare samples, broken ladders, missing pieces.
	wantProblem(t, "# TYPE h histogram\nh 1\n", "bare sample")
	wantProblem(t,
		"# TYPE h histogram\n"+
			`h_bucket{le="0.1"} 5`+"\n"+
			`h_bucket{le="1"} 3`+"\n"+ // drops: not monotone
			`h_bucket{le="+Inf"} 5`+"\n"+
			"h_sum 1\nh_count 5\n",
		"not monotone")
	wantProblem(t,
		"# TYPE h histogram\n"+
			`h_bucket{le="0.1"} 2`+"\n"+
			"h_sum 1\nh_count 2\n",
		"missing le=\"+Inf\"")
	wantProblem(t,
		"# TYPE h histogram\n"+
			`h_bucket{le="+Inf"} 5`+"\n"+
			"h_sum 1\nh_count 4\n", // +Inf != count
		"+Inf bucket 5 != _count 4")
	wantProblem(t,
		"# TYPE h histogram\n"+
			`h_bucket{le="+Inf"} 5`+"\n"+
			"h_count 5\n",
		"missing _sum")
	wantProblem(t,
		"# TYPE h histogram\n"+
			`h_bucket{le="+Inf"} 5`+"\n"+
			"h_sum 1\n",
		"missing _count")

	// Per-series attribution: only the broken tenant's ladder is named.
	problems := lintOne(
		"# TYPE h histogram\n" +
			`h_bucket{tenant="good",le="1"} 1` + "\n" +
			`h_bucket{tenant="good",le="+Inf"} 1` + "\n" +
			`h_sum{tenant="good"} 1` + "\n" +
			`h_count{tenant="good"} 1` + "\n" +
			`h_bucket{tenant="bad",le="1"} 1` + "\n" +
			`h_sum{tenant="bad"} 1` + "\n" +
			`h_count{tenant="bad"} 1` + "\n")
	if len(problems) != 1 || !strings.Contains(problems[0], `tenant=bad`) {
		t.Errorf("per-series histogram finding = %v, want one naming tenant=bad", problems)
	}
}

func TestLintAcceptsConformingExtras(t *testing.T) {
	clean := strings.Join([]string{
		"# a free-form comment",
		"",
		"x_total 1 1700000000000", // timestamped sample
		`y{a="1",b="2"} 3.5e-2`,
		"# TYPE h histogram",
		`h_bucket{le="0.5"} 1`,
		`h_bucket{le="+Inf"} 2`,
		"h_sum 1.25",
		"h_count 2",
	}, "\n") + "\n"
	if problems := lintOne(clean); len(problems) != 0 {
		t.Errorf("conforming input flagged: %v", problems)
	}
}
