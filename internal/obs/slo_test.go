package obs

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// sloClock is a settable test clock for SLOOptions.Now.
type sloClock struct{ t time.Time }

func (c *sloClock) now() time.Time          { return c.t }
func (c *sloClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newSLOClock() *sloClock {
	return &sloClock{t: time.Unix(1_700_000_000, 0)}
}

func TestSLOTrackerWindowMath(t *testing.T) {
	clk := newSLOClock()
	tr := NewSLOTracker(SLOOptions{
		Slice:     10 * time.Second,
		Retention: time.Minute,
		Bounds:    []float64{0.1, 1},
		Objective: 0.99,
		Now:       clk.now,
	})

	// Slice 1: 8 fast successes + 2 errors.
	for i := 0; i < 8; i++ {
		tr.Observe("acme", 0.05, false)
	}
	tr.Observe("acme", 0.05, true)
	tr.Observe("acme", 0.05, true)
	// Slice 2: 10 slower successes.
	clk.advance(10 * time.Second)
	for i := 0; i < 10; i++ {
		tr.Observe("acme", 0.5, false)
	}

	// A 10s window sees only the current slice: no errors.
	got := tr.Stats("acme", 10*time.Second)
	if len(got) != 1 {
		t.Fatalf("Stats returned %d windows, want 1", len(got))
	}
	w := got[0]
	if w.Requests != 10 || w.Errors != 0 || w.ErrorRate != 0 || w.Availability != 1 || w.BurnRate != 0 {
		t.Errorf("current-slice window = %+v, want 10 clean requests", w)
	}

	// A 20s window spans both slices: 20 requests, 2 errors.
	w = tr.Stats("acme", 20*time.Second)[0]
	if w.Requests != 20 || w.Errors != 2 {
		t.Fatalf("two-slice window = %+v, want 20 requests / 2 errors", w)
	}
	if got, want := w.ErrorRate, 0.1; math.Abs(got-want) > 1e-12 {
		t.Errorf("ErrorRate = %v, want %v", got, want)
	}
	if got, want := w.Availability, 0.9; math.Abs(got-want) > 1e-12 {
		t.Errorf("Availability = %v, want %v", got, want)
	}
	// Burn rate against a 99% objective: 0.1 / 0.01 = 10x budget.
	if got, want := w.BurnRate, 10.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("BurnRate = %v, want %v", got, want)
	}
	// Mean: (10*0.05 + 10*0.5)/20 s = 275 ms.
	if got, want := w.MeanMS, 275.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanMS = %v, want %v", got, want)
	}
	// Quantiles interpolate inside the buckets: half the traffic is in
	// (0, 0.1], half in (0.1, 1], so p50 lands on the first boundary and
	// p90 inside the second bucket at 0.1 + 0.9*(8/10) = 0.82 s.
	if got, want := w.P50MS, 100.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("P50MS = %v, want %v", got, want)
	}
	if got, want := w.P90MS, 820.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("P90MS = %v, want %v", got, want)
	}

	// Odd windows quantize up to whole slices.
	if w := tr.Stats("acme", 15*time.Second)[0]; w.WindowSeconds != 20 {
		t.Errorf("15s window quantized to %vs, want 20s", w.WindowSeconds)
	}
	// Windows beyond retention clamp to it.
	if w := tr.Stats("acme", time.Hour)[0]; w.WindowSeconds != 60 {
		t.Errorf("1h window clamped to %vs, want 60s", w.WindowSeconds)
	}
}

func TestSLOTrackerSlicesExpire(t *testing.T) {
	clk := newSLOClock()
	tr := NewSLOTracker(SLOOptions{Slice: 10 * time.Second, Retention: 30 * time.Second, Now: clk.now})
	tr.Observe("acme", 0.01, true)

	if w := tr.Stats("acme", 30*time.Second)[0]; w.Requests != 1 {
		t.Fatalf("fresh observation invisible: %+v", w)
	}
	// Advance past retention: the ring entry's epoch no longer matches
	// any queried epoch, so the old traffic vanishes without a sweeper.
	clk.advance(40 * time.Second)
	if w := tr.Stats("acme", 30*time.Second)[0]; w.Requests != 0 {
		t.Errorf("expired observation still visible: %+v", w)
	}
	// And the stale ring slot is reset on reuse, not accumulated into.
	tr.Observe("acme", 0.01, false)
	if w := tr.Stats("acme", 10*time.Second)[0]; w.Requests != 1 || w.Errors != 0 {
		t.Errorf("reused slot kept stale counts: %+v", w)
	}
}

func TestSLOTrackerTenantOverflow(t *testing.T) {
	clk := newSLOClock()
	tr := NewSLOTracker(SLOOptions{MaxTenants: 2, Now: clk.now})
	tr.Observe("a", 0.01, false)
	tr.Observe("b", 0.01, false)
	tr.Observe("c", 0.01, false) // beyond the cap: folds
	tr.Observe("d", 0.01, true)  // same

	all := tr.StatsAll(time.Minute)
	if len(all) != 3 {
		t.Fatalf("tenant map has %d entries, want 3 (a, b, %s)", len(all), OverflowLabelValue)
	}
	ovf, ok := all[OverflowLabelValue]
	if !ok {
		t.Fatalf("overflow tenant missing: %v", all)
	}
	if ovf[0].Requests != 2 || ovf[0].Errors != 1 {
		t.Errorf("overflow window = %+v, want 2 requests / 1 error", ovf[0])
	}
}

func TestSLOTrackerNilAndUnknownTenant(t *testing.T) {
	var tr *SLOTracker
	tr.Observe("x", 1, true) // must not panic
	if got := tr.Stats("x", time.Minute); got != nil {
		t.Errorf("nil tracker Stats = %v, want nil", got)
	}
	if got := tr.Objective(); got != 0 {
		t.Errorf("nil tracker Objective = %v, want 0", got)
	}

	real := NewSLOTracker(SLOOptions{})
	w := real.Stats("never-seen", time.Minute)[0]
	if w.Requests != 0 || w.Availability != 1 {
		t.Errorf("unknown tenant window = %+v, want zero requests, availability 1", w)
	}
}

func TestBucketQuantileEdgeCases(t *testing.T) {
	bounds := []float64{1, 2, 4}
	counts := []uint64{0, 0, 0, 5} // everything in the overflow bucket
	if got := bucketQuantile(bounds, counts, 5, 0.5); got != 4 {
		t.Errorf("overflow-only quantile = %v, want clamp to 4", got)
	}
	if got := bucketQuantile(nil, []uint64{5}, 5, 0.5); got != 0 {
		t.Errorf("no-bounds quantile = %v, want 0", got)
	}
	// Uniform counts: p50 of 10 in (0,1] with 10 observations = 0.5.
	if got := bucketQuantile([]float64{1}, []uint64{10, 0}, 10, 0.5); got != 0.5 {
		t.Errorf("interpolated quantile = %v, want 0.5", got)
	}
}

func TestSLOTrackerConcurrent(t *testing.T) {
	clk := newSLOClock()
	tr := NewSLOTracker(SLOOptions{MaxTenants: 4, Now: clk.now})
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				tr.Observe(fmt.Sprintf("tenant-%d", g%6), 0.01, i%10 == 0)
				if i%50 == 0 {
					tr.StatsAll(time.Minute)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	var total uint64
	for _, ws := range tr.StatsAll(time.Minute) {
		total += ws[0].Requests
	}
	if total != 800 {
		t.Errorf("concurrent observations total %d, want 800", total)
	}
}
