package obs

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// sampled wraps a fresh MemoryTracer in a SampledTracer with a
// deterministic coin.
func sampled(t *testing.T, opts SamplerOptions) (*SampledTracer, *MemoryTracer) {
	t.Helper()
	mem := NewMemoryTracer()
	tr, ok := NewSampledTracer(mem, opts).(*SampledTracer)
	if !ok {
		t.Fatal("NewSampledTracer over a memory tracer did not return a *SampledTracer")
	}
	return tr, mem
}

func TestSamplerHeadDecision(t *testing.T) {
	coin := 0.99 // >= Rate: head says drop
	tr, mem := sampled(t, SamplerOptions{Rate: 0.5, Rand: func() float64 { return coin }})

	root := StartTrace(tr, "headdrop", "req")
	root.Child("work").End()
	root.End()
	if n := len(mem.Spans()); n != 0 {
		t.Fatalf("head-dropped trace recorded %d spans, want 0", n)
	}

	coin = 0.01 // < Rate: head says keep; spans stream through
	root = StartTrace(tr, "headkeep", "req")
	child := root.Child("work")
	child.End()
	if n := len(mem.Spans()); n != 1 {
		t.Fatalf("head-kept child did not stream: %d spans before root end", n)
	}
	root.End()
	spans := mem.Spans()
	if len(spans) != 2 {
		t.Fatalf("head-kept trace recorded %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Trace != "headkeep" {
			t.Errorf("span %q carries trace %q, want the adopted id", s.Name, s.Trace)
		}
	}
	if got := tr.Stats(); got.KeptTraces != 1 || got.DroppedTraces != 1 {
		t.Errorf("stats = %+v, want 1 kept / 1 dropped", got)
	}
}

func TestSamplerErrorLatch(t *testing.T) {
	tr, mem := sampled(t, SamplerOptions{Rate: 0, KeepErrors: true, Rand: func() float64 { return 1 }})

	// An error on a child rescues the whole buffered trace.
	root := StartTrace(tr, "errtrace", "req")
	bad := root.Child("work")
	bad.SetErr(errors.New("boom"))
	bad.End()
	if n := len(mem.Spans()); n != 0 {
		t.Fatalf("undecided trace leaked %d spans before the verdict", n)
	}
	root.End()
	if n := len(mem.Spans()); n != 2 {
		t.Fatalf("error trace recorded %d spans, want the full tree of 2", n)
	}

	// Without an error the same shape is dropped whole.
	mem.Reset()
	root = StartTrace(tr, "okay", "req")
	root.Child("work").End()
	root.End()
	if n := len(mem.Spans()); n != 0 {
		t.Fatalf("healthy trace under Rate=0 recorded %d spans, want 0", n)
	}
}

func TestSamplerSlowLatch(t *testing.T) {
	tr, mem := sampled(t, SamplerOptions{Rate: 0, SlowLatch: time.Millisecond, Rand: func() float64 { return 1 }})
	root := StartTrace(tr, "slow", "req")
	time.Sleep(5 * time.Millisecond)
	root.End()
	if n := len(mem.Spans()); n != 1 {
		t.Fatalf("slow trace recorded %d spans, want 1", n)
	}
	if got := tr.Stats(); got.KeptTraces != 1 {
		t.Errorf("stats = %+v, want 1 kept", got)
	}
}

func TestSamplerTruncatesUndecidedBuffer(t *testing.T) {
	tr, mem := sampled(t, SamplerOptions{
		Rate: 0, KeepErrors: true, MaxSpansPerTrace: 3,
		Rand: func() float64 { return 1 },
	})
	root := StartTrace(tr, "big", "req")
	for i := 0; i < 10; i++ {
		root.Child(fmt.Sprintf("c%d", i)).End()
	}
	bad := root.Child("late-error")
	bad.SetErr(errors.New("boom"))
	bad.End() // also truncated: the buffer filled long ago
	root.End()

	// The buffer held only the first 3 children; the error span fell off,
	// so the keep verdict never fired and nothing was recorded.
	if n := len(mem.Spans()); n != 0 {
		t.Fatalf("truncated trace recorded %d spans, want 0", n)
	}
	if got := tr.Stats().TruncatedSpans; got != 8 {
		t.Errorf("TruncatedSpans = %d, want 8", got)
	}
}

func TestSamplerLateChildrenFollowVerdict(t *testing.T) {
	coin := 0.01
	tr, mem := sampled(t, SamplerOptions{Rate: 0.5, Rand: func() float64 { return coin }})
	root := StartTrace(tr, "late", "req")
	straggler := root.Child("async")
	root.End()
	straggler.End() // after the verdict: still recorded, trace was kept
	if n := len(mem.Spans()); n != 2 {
		t.Fatalf("kept trace with straggler recorded %d spans, want 2", n)
	}

	mem.Reset()
	coin = 0.99
	root = StartTrace(tr, "late2", "req")
	straggler = root.Child("async")
	root.End()
	straggler.End()
	if n := len(mem.Spans()); n != 0 {
		t.Fatalf("dropped trace with straggler recorded %d spans, want 0", n)
	}
}

func TestSampledTracerPassesThroughNop(t *testing.T) {
	base := NopTracer()
	if tr := NewSampledTracer(base, SamplerOptions{Rate: 0.5}); tr != base {
		t.Error("sampling a non-recording tracer should return it unchanged")
	}
}

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	trace, sampledFlag, ok := ParseTraceparent(valid)
	if !ok || trace != "4bf92f3577b34da6a3ce929d0e0e4736" || !sampledFlag {
		t.Fatalf("ParseTraceparent(valid) = (%q, %v, %v)", trace, sampledFlag, ok)
	}
	if _, s, ok := ParseTraceparent(strings.Replace(valid, "-01", "-00", 1)); !ok || s {
		t.Error("flags 00 should parse with sampled=false")
	}
	// 'f' has its low bit clear as a byte but decodes to nibble 0xf.
	if _, s, ok := ParseTraceparent(strings.Replace(valid, "-01", "-ff", 1)); !ok || !s {
		t.Error("flags ff should parse with sampled=true")
	}

	bad := []string{
		"",
		"nonsense",
		valid[:54],             // truncated
		strings.ToUpper(valid), // uppercase hex
		"ff" + valid[2:],       // forbidden version
		"00-" + strings.Repeat("0", 32) + valid[35:], // zero trace id
		valid[:36] + strings.Repeat("0", 16) + "-01", // zero parent id
		valid + "-extra", // version 00 takes exactly 4 fields
		strings.Replace(valid, "4bf9", "4bg9", 1), // non-hex
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}

	// Round trip through the formatter the gateway uses.
	rt := FormatTraceparent(NewTraceID(), NewRequestID())
	if _, _, ok := ParseTraceparent(rt); !ok {
		t.Errorf("formatted traceparent %q failed to parse", rt)
	}
}

func TestNewIDsWellFormed(t *testing.T) {
	if id := NewTraceID(); len(id) != 32 || !isHexLower(id) {
		t.Errorf("NewTraceID() = %q, want 32 lowercase hex digits", id)
	}
	if id := NewRequestID(); len(id) != 16 || !isHexLower(id) {
		t.Errorf("NewRequestID() = %q, want 16 lowercase hex digits", id)
	}
	if NewTraceID() == NewTraceID() {
		t.Error("consecutive trace IDs collided")
	}
}
