package obs

import (
	"fmt"
	mrand "math/rand/v2"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace sampling for the serving path. A JSONL sink that records every
// span cannot survive bench-serve request rates (tens of thousands of
// spans per second, one fsync-bound line each), so the gateway wraps
// its tracer in a SampledTracer that keeps:
//
//   - a probabilistic head sample (Rate) decided when the trace starts,
//   - every trace that recorded an error (KeepErrors), and
//   - every trace whose root span ran at least SlowLatch (tail latch).
//
// Head-kept traces stream straight through. Undecided traces buffer
// their finished spans (bounded by MaxSpansPerTrace) until the root
// ends, then are flushed whole or dropped whole — a sampled trace file
// always contains complete span trees.

// SamplerOptions tunes NewSampledTracer.
type SamplerOptions struct {
	// Rate is the head-sampling probability in [0, 1]. 1 keeps every
	// trace (the tail rules never need to fire); 0 keeps only traces
	// the error/slow rules latch.
	Rate float64
	// KeepErrors keeps any trace in which a span recorded an error,
	// regardless of the head decision (default semantics: set it).
	KeepErrors bool
	// SlowLatch keeps any trace whose root span duration reaches the
	// threshold; 0 disables the latch.
	SlowLatch time.Duration
	// MaxSpansPerTrace bounds the spans buffered while a trace awaits
	// its verdict (default 512); beyond it spans are counted as
	// truncated and dropped even if the trace is later kept.
	MaxSpansPerTrace int
	// Rand overrides the head-sampling coin (tests); default is the
	// shared math/rand/v2 generator.
	Rand func() float64
}

// SamplerStats is a point-in-time read of a SampledTracer's decisions.
type SamplerStats struct {
	KeptTraces     uint64 `json:"kept_traces"`
	DroppedTraces  uint64 `json:"dropped_traces"`
	TruncatedSpans uint64 `json:"truncated_spans"`
}

// SampledTracer implements Tracer and TraceStarter over a recording
// base tracer.
type SampledTracer struct {
	base spanSink
	opts SamplerOptions

	kept      atomic.Uint64
	dropped   atomic.Uint64
	truncated atomic.Uint64
}

// NewSampledTracer wraps base with the sampling policy in opts. The nop
// tracer (and any tracer this package cannot buffer for) is returned
// unchanged — sampling nothing costs nothing.
func NewSampledTracer(base Tracer, opts SamplerOptions) Tracer {
	sink, ok := base.(spanSink)
	if !ok {
		return base
	}
	if opts.MaxSpansPerTrace <= 0 {
		opts.MaxSpansPerTrace = 512
	}
	if opts.Rate < 0 {
		opts.Rate = 0
	}
	if opts.Rand == nil {
		opts.Rand = mrand.Float64
	}
	return &SampledTracer{base: sink, opts: opts}
}

// StartSpan implements Tracer.
func (t *SampledTracer) StartSpan(name string) Span { return t.StartTrace("", name) }

// StartTrace implements TraceStarter: the head-sampling coin is tossed
// once per trace, here.
func (t *SampledTracer) StartTrace(traceID, name string) Span {
	buf := &traceBuf{
		t:    t,
		keep: t.opts.Rate >= 1 || (t.opts.Rate > 0 && t.opts.Rand() < t.opts.Rate),
	}
	s := startSpan(buf, traceID, "", name)
	buf.root = s.data.Span
	return s
}

// Stats reports the sampler's cumulative decisions.
func (t *SampledTracer) Stats() SamplerStats {
	return SamplerStats{
		KeptTraces:     t.kept.Load(),
		DroppedTraces:  t.dropped.Load(),
		TruncatedSpans: t.truncated.Load(),
	}
}

// traceBuf is the per-trace span sink: it either streams (head-kept) or
// buffers spans until the root span delivers the verdict.
type traceBuf struct {
	t    *SampledTracer
	root string

	mu    sync.Mutex
	keep  bool
	done  bool
	spans []SpanData
}

func (b *traceBuf) nextID() uint64 { return b.t.base.nextID() }

func (b *traceBuf) record(d SpanData) {
	t := b.t
	b.mu.Lock()
	if b.done {
		// A child that outlived its root: follow the trace's verdict.
		keep := b.keep
		b.mu.Unlock()
		if keep {
			t.base.record(d)
		}
		return
	}
	if b.keep {
		// Head-sampled: stream through, no buffering.
		if d.Span == b.root {
			b.done = true
			b.mu.Unlock()
			t.kept.Add(1)
			t.base.record(d)
			return
		}
		b.mu.Unlock()
		t.base.record(d)
		return
	}
	if d.Span != b.root {
		if len(b.spans) >= t.opts.MaxSpansPerTrace {
			b.mu.Unlock()
			t.truncated.Add(1)
			return
		}
		b.spans = append(b.spans, d)
		b.mu.Unlock()
		return
	}
	// Verdict time: the root span just ended.
	keep := false
	if t.opts.KeepErrors && d.Error != "" {
		keep = true
	}
	if !keep && t.opts.KeepErrors {
		for i := range b.spans {
			if b.spans[i].Error != "" {
				keep = true
				break
			}
		}
	}
	if !keep && t.opts.SlowLatch > 0 &&
		d.DurationMS >= float64(t.opts.SlowLatch)/float64(time.Millisecond) {
		keep = true
	}
	b.keep, b.done = keep, true
	spans := b.spans
	b.spans = nil
	b.mu.Unlock()
	if !keep {
		t.dropped.Add(1)
		return
	}
	t.kept.Add(1)
	for i := range spans {
		t.base.record(spans[i])
	}
	t.base.record(d)
}

// ---------------------------------------------------------------------
// W3C trace-context propagation + request IDs

// NewTraceID returns a fresh 32-hex-digit W3C trace ID.
func NewTraceID() string {
	return fmt.Sprintf("%016x%016x", mrand.Uint64(), mrand.Uint64())
}

// NewRequestID returns a fresh 16-hex-digit ID, used both as the
// gateway's X-Request-Id and as the parent-id field of the traceparent
// it emits.
func NewRequestID() string {
	return fmt.Sprintf("%016x", mrand.Uint64())
}

// ParseTraceparent extracts the trace ID from a W3C `traceparent`
// header value (`00-<32 hex trace-id>-<16 hex parent-id>-<2 hex
// flags>`). It returns ok=false — and the caller should mint a fresh
// trace — for empty, malformed, or all-zero inputs.
func ParseTraceparent(h string) (traceID string, sampled bool, ok bool) {
	h = strings.TrimSpace(h)
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false, false
	}
	version, trace, parent, flags := h[0:2], h[3:35], h[36:52], h[53:55]
	if version == "ff" || !isHexLower(version) || !isHexLower(trace) || !isHexLower(parent) || !isHexLower(flags) {
		return "", false, false
	}
	if trace == strings.Repeat("0", 32) || parent == strings.Repeat("0", 16) {
		return "", false, false
	}
	// Only exactly four fields are defined for version 00.
	if version == "00" && len(h) != 55 {
		return "", false, false
	}
	return trace, hexNibble(flags[1])&1 == 1, true
}

// hexNibble decodes one lowercase hex digit (input pre-validated).
func hexNibble(c byte) byte {
	if c >= 'a' {
		return c - 'a' + 10
	}
	return c - '0'
}

// FormatTraceparent renders the traceparent the gateway echoes:
// version 00, the request's trace ID, the gateway's request ID as
// parent-id, and the sampled flag set.
func FormatTraceparent(traceID, parentID string) string {
	return "00-" + traceID + "-" + parentID + "-01"
}

// IsHexID reports whether s is exactly n lowercase hex digits — the
// shape W3C trace-context fields require.
func IsHexID(s string, n int) bool { return len(s) == n && isHexLower(s) }

func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
