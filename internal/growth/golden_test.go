package growth

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"datasculpt/internal/bundle"
	"datasculpt/internal/obs"
	"datasculpt/internal/registry"
)

// -update regenerates testdata/growth.golden from the current
// rendering: go test ./internal/growth/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current /v1/growth payloads")

// TestGrowthGolden pins the GET /v1/growth surface — the status payload
// after a promoted cycle, the 404 envelope when no daemon is wired, and
// the 405 envelope — byte for byte. Everything in the payload is a
// deterministic function of the seeded fixture (timestamps are pinned,
// hashes derive from seeded training), so the golden file is stable.
func TestGrowthGolden(t *testing.T) {
	_, d, path := trained(t)
	parent, err := bundle.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the parent's save stamp: the fixture's lineage hashes must not
	// depend on when the test binary trained it.
	parent.Provenance.CreatedUnix = 1_754_200_000
	reg := newTestRegistry(t, registry.Options{}, path)
	dmn, err := New(Config{
		Tenant: "t", Registry: reg, Base: d, Parent: parent,
		Pipeline: growthPipeline(), StateDir: t.TempDir(),
		Budget: 4, MinCorpus: 8,
		now: func() int64 { return 1_754_200_000 },
	})
	if err != nil {
		t.Fatal(err)
	}
	dmn.Capture("t", corpusTexts(d, 24))
	if _, err := dmn.RunCycle(context.Background()); err != nil {
		t.Fatal(err)
	}
	dmn.Capture("t", corpusTexts(d, 3))

	o := obs.New(nil, obs.NewRegistry(), nil)
	withGrowth := registry.NewGateway(reg, o, registry.GatewayOptions{
		DefaultTenant: "t",
		Growth:        func() any { return dmn.Status() },
	})
	without := registry.NewGateway(reg, o, registry.GatewayOptions{DefaultTenant: "t"})
	tsGrowth := httptest.NewServer(withGrowth.Handler())
	t.Cleanup(tsGrowth.Close)
	tsPlain := httptest.NewServer(without.Handler())
	t.Cleanup(tsPlain.Close)

	cases := []struct {
		name   string
		base   string
		method string
	}{
		{name: "status", base: tsGrowth.URL, method: "GET"},
		{name: "disabled", base: tsPlain.URL, method: "GET"},
		{name: "method-not-allowed", base: tsGrowth.URL, method: "POST"},
	}

	var buf bytes.Buffer
	for _, c := range cases {
		req, err := http.NewRequest(c.method, c.base+"/v1/growth", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "== %s\n%s /v1/growth\nstatus: %d\n", c.name, c.method, resp.StatusCode)
		for _, h := range []string{"Allow", "Retry-After", "Content-Type"} {
			if v := resp.Header.Get(h); v != "" {
				fmt.Fprintf(&buf, "%s: %s\n", h, v)
			}
		}
		buf.Write(body)
		buf.WriteString("\n")

		// Independent of the golden bytes: the payload must parse as the
		// documented shape.
		switch c.name {
		case "status":
			var st Status
			if err := json.Unmarshal(body, &st); err != nil {
				t.Errorf("status body is not a growth.Status: %v (%s)", err, body)
			} else if st.Tenant != "t" || st.Stats.Cycles != 1 || st.LastCycle == nil || st.Captured != 3 {
				t.Errorf("status payload off: %+v", st)
			}
		default:
			var env struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
				t.Errorf("%s: body is not the error envelope: %v (%s)", c.name, err, body)
			}
		}
	}

	golden := filepath.Join("testdata", "growth.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("/v1/growth rendering drifted from %s (run with -update to regenerate):\n got:\n%s\nwant:\n%s",
			golden, buf.String(), want)
	}
}
