package growth

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"datasculpt/internal/bundle"
	"datasculpt/internal/ckpt"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/llm"
	"datasculpt/internal/obs"
	"datasculpt/internal/registry"
)

// Config wires one growth daemon to its tenant.
type Config struct {
	// Tenant is the registry tenant the daemon grows.
	Tenant string
	// Registry is where candidate bundles are promoted (and rolled
	// back). Required.
	Registry *registry.Registry
	// Base is the dataset the parent bundle was trained on — its train
	// split anchors the growth corpus and its labeled valid/test splits
	// drive LF filtering and the quality gate. Text classification
	// only: captured request texts carry no entity annotations.
	Base *dataset.Dataset
	// Parent is the bundle the lineage starts from (the one the tenant
	// currently serves). After a promoted cycle the promoted candidate
	// becomes the parent.
	Parent *bundle.Bundle
	// Pipeline is the select→prompt→filter configuration cycles run
	// with; its Seed anchors every cycle's derived seed.
	Pipeline core.Config
	// StateDir holds the durable state: growth.jsonl (cycle journal),
	// parent.json (current lineage head), candidate-<n>.json archives,
	// and the in-progress cycle/ workspace. Required.
	StateDir string
	// Interval is the Start loop's cycle period (0 disables the loop;
	// RunCycle can still be driven manually).
	Interval time.Duration
	// Budget caps proposer iterations (LLM prompts) per cycle
	// (default 8).
	Budget int
	// MinCorpus is the smallest captured sample worth a cycle
	// (default 16); below it the tick is skipped and capture continues.
	MinCorpus int
	// ReservoirCap bounds the captured sample (default 512);
	// MaxTextBytes drops oversized texts at capture (default 4096).
	ReservoirCap int
	MaxTextBytes int
	// MinVerifyAgreement is the post-promote verification floor: the
	// promoted candidate must agree with its parent on at least this
	// fraction of the cycle corpus or it is rolled back (default 0.9).
	MinVerifyAgreement float64
	// MaxRegression is how far the candidate's offline test metric may
	// fall below the parent's before the quality gate rejects it
	// without promoting (default 0.02).
	MaxRegression float64
	// Obs is the telemetry bundle (obs.Default() when nil).
	Obs *obs.Obs
	// WrapModel, when set, wraps each iteration's LLM endpoint — the
	// injection point for retry/fault middleware, keyed by cycle and
	// iteration so injected randomness stays derivable on resume.
	WrapModel func(cycle, iter int, m llm.ChatModel) llm.ChatModel

	// afterCheckpoint, when set, runs after each durable checkpoint
	// write; an error aborts the cycle there — the chaos tests'
	// SIGKILL stand-in.
	afterCheckpoint func(stage string) error
	// now supplies cycle timestamps (time.Now().Unix() when nil);
	// pinned by tests that compare candidate bytes across runs.
	now func() int64
	// mutateCandidate, when set, alters the candidate before it is
	// saved — how the rollback tests manufacture a regressing bundle.
	mutateCandidate func(*bundle.Bundle)
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if c.MinCorpus <= 0 {
		c.MinCorpus = 16
	}
	if c.ReservoirCap <= 0 {
		c.ReservoirCap = 512
	}
	if c.MaxTextBytes <= 0 {
		c.MaxTextBytes = 4096
	}
	if c.MinVerifyAgreement <= 0 {
		c.MinVerifyAgreement = 0.9
	}
	if c.MaxRegression <= 0 {
		c.MaxRegression = 0.02
	}
	if c.Obs == nil {
		c.Obs = obs.Default()
	}
	if c.now == nil {
		c.now = func() int64 { return time.Now().Unix() }
	}
	return c
}

// Daemon is the online growth loop for one tenant. Construction loads
// (or initializes) the durable state; Start runs the periodic loop;
// RunCycle drives one cycle synchronously — resuming an interrupted
// one first if the state dir holds a cycle/ workspace.
type Daemon struct {
	cfg Config
	o   *obs.Obs
	res *Reservoir

	// cycleMu serializes cycles; mu guards the fields Status reads.
	cycleMu sync.Mutex
	mu      sync.Mutex
	parent  *bundle.Bundle
	parentHash string
	records []CycleRecord
	running bool

	wg sync.WaitGroup

	mCaptured *obs.Counter
	mCycles   *obs.CounterVec
	mNewLFs   *obs.Counter
	mCycleSec *obs.Histogram
	mFill     *obs.Gauge
}

// New builds a daemon over cfg, creating StateDir if needed, loading
// the cycle journal, and pinning the lineage head: a parent.json left
// by an earlier process wins over cfg.Parent, so a restarted daemon
// continues the lineage it had grown rather than regressing to the
// boot bundle.
func New(cfg Config) (*Daemon, error) {
	if cfg.Tenant == "" {
		return nil, fmt.Errorf("growth: empty tenant")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("growth: nil registry")
	}
	if cfg.Base == nil || cfg.Parent == nil {
		return nil, fmt.Errorf("growth: nil base dataset or parent bundle")
	}
	if cfg.Base.Task != dataset.TextClassification {
		return nil, fmt.Errorf("growth: task %s unsupported (captured texts carry no entity annotations)", cfg.Base.Task)
	}
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("growth: empty state dir")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, fmt.Errorf("growth: creating state dir: %w", err)
	}

	records, err := ckpt.Load(filepath.Join(cfg.StateDir, "growth.jsonl"),
		func(r *CycleRecord) bool { return r.Outcome != "" })
	if err != nil {
		return nil, err
	}

	parentPath := filepath.Join(cfg.StateDir, "parent.json")
	var parent *bundle.Bundle
	if _, statErr := os.Stat(parentPath); statErr == nil {
		if parent, err = bundle.Load(parentPath); err != nil {
			return nil, fmt.Errorf("growth: loading lineage head: %w", err)
		}
	} else if !os.IsNotExist(statErr) {
		return nil, fmt.Errorf("growth: %w", statErr)
	} else {
		// Pin the save timestamp before the first serialization so the
		// lineage head's bytes (and fingerprint) never depend on when
		// the daemon booted relative to when the bundle is hashed.
		pb := *cfg.Parent
		if pb.Provenance.CreatedUnix == 0 {
			pb.Provenance.CreatedUnix = cfg.now()
		}
		parent = &pb
		if err := bundle.Save(parentPath, parent); err != nil {
			return nil, fmt.Errorf("growth: saving lineage head: %w", err)
		}
	}
	parentHash, err := bundle.Fingerprint(parent)
	if err != nil {
		return nil, err
	}

	d := &Daemon{
		cfg:        cfg,
		o:          cfg.Obs,
		res:        NewReservoir(cfg.Tenant, cfg.ReservoirCap, cfg.MaxTextBytes, cfg.Pipeline.Seed+53),
		parent:     parent,
		parentHash: parentHash,
		records:    records,
	}
	reg := cfg.Obs.Metrics
	d.mCaptured = reg.CounterVec("growth_captured_texts_total", "Served texts admitted to the growth reservoir.", "tenant").With1(cfg.Tenant)
	d.mCycles = reg.CounterVec("growth_cycles_total", "Completed growth cycles by outcome.", "tenant", "outcome")
	d.mNewLFs = reg.CounterVec("growth_new_lfs_total", "Label functions proposed and accepted by growth cycles.", "tenant").With1(cfg.Tenant)
	d.mCycleSec = reg.HistogramVec("growth_cycle_seconds", "Growth cycle wall clock.", obs.LongDurationBuckets, "tenant").With1(cfg.Tenant)
	d.mFill = reg.GaugeVec("growth_reservoir_fill", "Texts currently held in the growth reservoir.", "tenant").With1(cfg.Tenant)
	return d, nil
}

// Capture feeds served texts into the reservoir — wire it as
// registry.Options.Capture. Safe for concurrent use.
func (d *Daemon) Capture(tenant string, texts []string) {
	n := d.res.Capture(tenant, texts)
	if n > 0 {
		d.mCaptured.AddInt(n)
		d.mFill.Set(float64(d.res.Len()))
	}
}

// Reservoir exposes the daemon's capture reservoir.
func (d *Daemon) Reservoir() *Reservoir { return d.res }

// Start launches the periodic cycle loop. It returns immediately; the
// loop stops when ctx is cancelled. With Interval <= 0 it is a no-op.
func (d *Daemon) Start(ctx context.Context) {
	if d.cfg.Interval <= 0 {
		return
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(d.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if _, err := d.RunCycle(ctx); err != nil && ctx.Err() == nil {
					d.o.Logger.LogAttrs(ctx, slog.LevelError, "growth cycle failed",
						slog.String("tenant", d.cfg.Tenant), slog.String("error", err.Error()))
				}
			}
		}
	}()
}

// Close waits for the Start loop to exit. Cancel the Start context
// first; Close does not interrupt a cycle in flight.
func (d *Daemon) Close() { d.wg.Wait() }

// Status reports the daemon's durable and live state — the
// GET /v1/growth payload.
func (d *Daemon) Status() Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Status{
		Tenant:          d.cfg.Tenant,
		State:           "idle",
		IntervalSeconds: d.cfg.Interval.Seconds(),
		Budget:          d.cfg.Budget,
		MinCorpus:       d.cfg.MinCorpus,
		Captured:        d.res.Len(),
		CapturedTotal:   d.res.Total(),
		Parent:          d.parentHash,
		GrowthCycle:     d.parent.Provenance.GrowthCycle,
		Stats:           stats(d.records),
	}
	if d.running {
		st.State = "running"
	}
	if n := len(d.records); n > 0 {
		last := d.records[n-1]
		st.LastCycle = &last
	}
	return st
}
