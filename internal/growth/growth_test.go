package growth

import (
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"datasculpt/internal/bundle"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/obs"
	"datasculpt/internal/registry"
)

var (
	trainOnce sync.Once
	trainedB  *bundle.Bundle
	trainedD  *dataset.Dataset
	savedPath string
	trainErr  error
)

// trained runs the offline pipeline once per test binary and hands
// every test the same parent artifact (the registry tests' pattern).
// Tests that need a private bundle load a fresh copy from the path.
func trained(t *testing.T) (*bundle.Bundle, *dataset.Dataset, string) {
	t.Helper()
	trainOnce.Do(func() {
		d, err := dataset.Load("youtube", 11, 0.4)
		if err != nil {
			trainErr = err
			return
		}
		cfg := growthPipeline()
		res, err := core.Run(d, cfg)
		if err != nil {
			trainErr = err
			return
		}
		b, err := bundle.New(d, cfg, res)
		if err != nil {
			trainErr = err
			return
		}
		dir, err := os.MkdirTemp("", "growth-test-*")
		if err != nil {
			trainErr = err
			return
		}
		path := filepath.Join(dir, "model.json")
		if err := bundle.Save(path, b); err != nil {
			trainErr = err
			return
		}
		trainedB, trainedD, savedPath = b, d, path
	})
	if trainErr != nil {
		t.Fatal(trainErr)
	}
	return trainedB, trainedD, savedPath
}

// growthPipeline is both the offline training config the parent is
// built with and the daemon's cycle config — matching ConfigHash
// lineage, small enough for test budgets.
func growthPipeline() core.Config {
	cfg := core.DefaultConfig(core.VariantBase)
	cfg.Iterations = 15
	cfg.Seed = 11
	cfg.FeatureDim = 2048
	cfg.EndModel.Epochs = 3
	cfg.Parallelism = 1
	return cfg
}

// corpusTexts picks n deterministic texts from the test split — the
// stand-in for captured serving traffic.
func corpusTexts(d *dataset.Dataset, n int) []string {
	texts := make([]string, 0, n)
	for _, e := range d.Test {
		if len(texts) == n {
			break
		}
		if e.Text != "" {
			texts = append(texts, e.Text)
		}
	}
	return texts
}

func newTestRegistry(t *testing.T, opts registry.Options, path string) *registry.Registry {
	t.Helper()
	reg := registry.New(obs.New(nil, obs.NewRegistry(), nil), opts)
	t.Cleanup(reg.Close)
	if err := reg.Register("t", path); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestReservoirSampling(t *testing.T) {
	r := NewReservoir("t", 4, 16, 1)
	if n := r.Capture("other", []string{"a", "b"}); n != 0 {
		t.Fatalf("foreign tenant admitted %d texts", n)
	}
	long := string(make([]byte, 17))
	if n := r.Capture("t", []string{"", long}); n != 0 {
		t.Fatalf("empty/oversized admitted %d texts", n)
	}
	if n := r.Capture("t", []string{"a", "b", "c"}); n != 3 {
		t.Fatalf("admitted %d, want 3", n)
	}
	// Feed past capacity: the sample stays bounded, Total keeps counting.
	for i := 0; i < 40; i++ {
		r.Capture("t", []string{"x", "y"})
	}
	if r.Len() != 4 {
		t.Fatalf("reservoir holds %d, capacity 4", r.Len())
	}
	if r.Total() != 83 {
		t.Fatalf("total %d, want 83", r.Total())
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot has %d texts", len(got))
	}
	if r.Len() != 0 {
		t.Fatalf("snapshot did not drain: %d left", r.Len())
	}

	// The same seed over the same capture sequence keeps the same texts:
	// the sample is a deterministic function of traffic.
	a, b := NewReservoir("t", 8, 0, 7), NewReservoir("t", 8, 0, 7)
	seq := []string{"q", "w", "e", "r", "t", "y", "u", "i", "o", "p", "a", "s", "d", "f"}
	for _, s := range seq {
		a.Capture("t", []string{s})
		b.Capture("t", []string{s})
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if len(sa) != len(sb) {
		t.Fatalf("snapshots differ in size: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("snapshot diverged at %d: %q vs %q", i, sa[i], sb[i])
		}
	}
}

func TestDaemonConfigValidation(t *testing.T) {
	b, d, path := trained(t)
	reg := newTestRegistry(t, registry.Options{}, path)
	base := Config{Tenant: "t", Registry: reg, Base: d, Parent: b, Pipeline: growthPipeline(), StateDir: t.TempDir()}

	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"empty-tenant", func(c *Config) { c.Tenant = "" }},
		{"nil-registry", func(c *Config) { c.Registry = nil }},
		{"nil-base", func(c *Config) { c.Base = nil }},
		{"nil-parent", func(c *Config) { c.Parent = nil }},
		{"empty-state-dir", func(c *Config) { c.StateDir = "" }},
	} {
		cfg := base
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted an invalid config", tc.name)
		}
	}

	rel := *d
	rel.Task = dataset.RelationClassification
	cfg := base
	cfg.Base = &rel
	if _, err := New(cfg); err == nil {
		t.Error("New accepted a relation-classification base dataset")
	}
}

// TestGrowthSmoke drives one full cycle end to end: capture, snapshot,
// propose, bundle, gate, promote — and checks the durable state a
// restarted daemon would boot from.
func TestGrowthSmoke(t *testing.T) {
	_, d, path := trained(t)
	parent, err := bundle.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := newTestRegistry(t, registry.Options{}, path)
	stateDir := t.TempDir()
	cfg := Config{
		Tenant: "t", Registry: reg, Base: d, Parent: parent,
		Pipeline: growthPipeline(), StateDir: stateDir,
		Budget: 4, MinCorpus: 8,
		now: func() int64 { return 1_754_000_000 },
	}
	dmn, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rootHash := dmn.Status().Parent

	// Below MinCorpus the tick is a no-op: no record, no workspace.
	if rec, err := dmn.RunCycle(context.Background()); err != nil || rec != nil {
		t.Fatalf("undersized corpus: rec=%v err=%v, want nil/nil", rec, err)
	}

	texts := corpusTexts(d, 24)
	dmn.Capture("other", texts) // scoped out
	dmn.Capture("t", texts)
	if dmn.Reservoir().Len() != 24 {
		t.Fatalf("reservoir holds %d, want 24", dmn.Reservoir().Len())
	}

	rec, err := dmn.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Cycle != 1 || rec.CorpusLen != 24 {
		t.Fatalf("cycle record %+v", rec)
	}
	if rec.Steps == 0 || rec.Steps > 4 {
		t.Fatalf("cycle ran %d steps with budget 4", rec.Steps)
	}
	if rec.Parent != rootHash {
		t.Fatalf("record parent %s, lineage root %s", rec.Parent, rootHash)
	}
	// The fixture is deterministic: this seed proposes new LFs and the
	// retrained candidate clears every gate.
	if rec.Outcome != OutcomePromoted {
		t.Fatalf("outcome %s (new_lfs=%d candidate=%.4f parent=%.4f verify=%.3f), want %s",
			rec.Outcome, rec.NewLFs, rec.CandidateMetric, rec.ParentMetric, rec.VerifyAgreement, OutcomePromoted)
	}
	if rec.NewLFs == 0 || rec.CandidateHash == "" || rec.Generation == 0 {
		t.Fatalf("promoted record incomplete: %+v", rec)
	}

	st := dmn.Status()
	if st.Captured != 0 {
		t.Fatalf("reservoir not drained by snapshot: %d", st.Captured)
	}
	if st.Parent != rec.CandidateHash || st.GrowthCycle != 1 {
		t.Fatalf("lineage head %s cycle %d, want %s cycle 1", st.Parent, st.GrowthCycle, rec.CandidateHash)
	}
	if st.Stats.Cycles != 1 || st.Stats.Promoted != 1 || st.LastCycle == nil {
		t.Fatalf("stats %+v", st.Stats)
	}

	// Durable state: workspace gone, candidate archived, lineage head
	// on disk is the promoted candidate.
	if _, err := os.Stat(filepath.Join(stateDir, "cycle")); !os.IsNotExist(err) {
		t.Fatalf("cycle workspace not cleaned: %v", err)
	}
	archived, err := bundle.Load(filepath.Join(stateDir, "candidate-1.json"))
	if err != nil {
		t.Fatalf("candidate archive: %v", err)
	}
	if h, _ := bundle.Fingerprint(archived); h != rec.CandidateHash {
		t.Fatalf("archive hash %s, record %s", h, rec.CandidateHash)
	}
	head, err := bundle.Load(filepath.Join(stateDir, "parent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if head.Provenance.Parent != rootHash || head.Provenance.GrowthCycle != 1 {
		t.Fatalf("lineage head provenance %+v", head.Provenance)
	}

	// A restarted daemon boots the grown lineage, not the boot bundle.
	dmn2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st2 := dmn2.Status()
	if st2.Parent != rec.CandidateHash || st2.GrowthCycle != 1 || st2.Stats.Cycles != 1 {
		t.Fatalf("restarted daemon status %+v", st2)
	}

	// The drained reservoir means the next tick skips again.
	if rec2, err := dmn.RunCycle(context.Background()); err != nil || rec2 != nil {
		t.Fatalf("post-cycle tick: rec=%v err=%v, want nil/nil", rec2, err)
	}
}
