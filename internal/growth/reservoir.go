// Package growth closes the ROADMAP's train-while-serving loop: a
// background daemon inside datasculptd that captures a bounded sample
// of served texts, periodically re-runs the select→prompt→filter
// pipeline over them to propose new label functions, and promotes the
// grown bundle through the registry's shadow-gated hot swap — rolling
// back automatically on regression. Every stage is journaled as
// durable JSONL state (internal/ckpt), so a killed daemon resumes
// mid-cycle and produces a byte-identical candidate bundle.
package growth

import (
	"math/rand"
	"sync"
)

// Reservoir keeps a bounded uniform sample (Vitter's Algorithm R) of
// the texts one tenant's serving traffic carries — the free unlabeled
// corpus the growth loop feeds on. Capture matches the
// registry.Options.Capture signature and runs on the request path, so
// it does constant work per text and copies nothing but the string
// header. Privacy scope: only the configured tenant is sampled, and
// empty or oversized texts are dropped rather than stored.
type Reservoir struct {
	tenant   string
	capacity int
	maxBytes int

	mu    sync.Mutex
	rng   *rand.Rand
	texts []string
	seen  int64 // texts admitted to the current sample window
	total int64 // texts admitted since construction (across snapshots)
}

// NewReservoir builds a reservoir sampling capacity texts for tenant,
// dropping texts longer than maxBytes. The seeded rng makes the kept
// sample a deterministic function of the capture sequence.
func NewReservoir(tenant string, capacity, maxBytes int, seed int64) *Reservoir {
	if capacity <= 0 {
		capacity = 512
	}
	if maxBytes <= 0 {
		maxBytes = 4096
	}
	return &Reservoir{
		tenant:   tenant,
		capacity: capacity,
		maxBytes: maxBytes,
		rng:      rand.New(rand.NewSource(seed)),
		texts:    make([]string, 0, capacity),
	}
}

// Capture offers served texts to the sample and returns how many were
// admitted. Texts for other tenants, empty texts, and texts over the
// byte cap are ignored.
func (r *Reservoir) Capture(tenant string, texts []string) int {
	if tenant != r.tenant {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	admitted := 0
	for _, t := range texts {
		if t == "" || len(t) > r.maxBytes {
			continue
		}
		r.seen++
		r.total++
		admitted++
		if len(r.texts) < r.capacity {
			r.texts = append(r.texts, t)
			continue
		}
		if j := r.rng.Int63n(r.seen); j < int64(r.capacity) {
			r.texts[j] = t
		}
	}
	return admitted
}

// Snapshot drains the reservoir: it returns the current sample and
// resets the window so the next cycle sees fresh traffic. The rng is
// kept, so the capture sequence → sample mapping stays deterministic
// across snapshots.
func (r *Reservoir) Snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.texts
	r.texts = make([]string, 0, r.capacity)
	r.seen = 0
	return out
}

// Len reports the current sample size.
func (r *Reservoir) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.texts)
}

// Total reports how many texts were ever admitted.
func (r *Reservoir) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
