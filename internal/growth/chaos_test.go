package growth

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"datasculpt/internal/bundle"
	"datasculpt/internal/ckpt"
	"datasculpt/internal/llm"
	"datasculpt/internal/registry"
)

// errKilled is the chaos tests' SIGKILL stand-in: the afterCheckpoint
// hook returns it at a chosen boundary, aborting the cycle exactly
// where a real kill would leave the durable state.
var errKilled = errors.New("chaos: killed")

// chaosWrap degrades every live LLM call with seed-derived faults
// behind a fast retry — the daemon must produce identical state whether
// or not the provider misbehaved, because retries absorb the faults and
// the journal replays past them.
func chaosWrap(cycle, iter int, m llm.ChatModel) llm.ChatModel {
	inj := llm.NewFaultInjector(m, llm.FaultRates{RateLimit: 0.15, Timeout: 0.1}, 977+100003*int64(cycle)+int64(iter))
	return llm.NewRetry(inj,
		llm.WithRetryAttempts(6),
		llm.WithRetryBackoff(time.Microsecond, time.Millisecond),
		llm.WithRetryJitter(0))
}

// chaosDaemon builds a daemon over stateDir with a fresh registry (a
// restarted process has a fresh registry too) and the given kill hook.
func chaosDaemon(t *testing.T, stateDir, path string, hook func(string) error) *Daemon {
	t.Helper()
	_, d, _ := trained(t)
	parent, err := bundle.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := newTestRegistry(t, registry.Options{}, path)
	dmn, err := New(Config{
		Tenant: "t", Registry: reg, Base: d, Parent: parent,
		Pipeline: growthPipeline(), StateDir: stateDir,
		Budget: 4, MinCorpus: 8,
		WrapModel:       chaosWrap,
		afterCheckpoint: hook,
		now:             func() int64 { return 1_754_100_000 },
	})
	if err != nil {
		t.Fatal(err)
	}
	return dmn
}

// TestGrowthChaos is the PR's durability proof: kill the daemon at
// every checkpoint boundary of a cycle, restart it cold over the same
// state dir, and require the resumed cycle to finish with a candidate
// bundle byte-identical to an uninterrupted run's — and the same
// journal row. Run under -race via `make grow-chaos`.
func TestGrowthChaos(t *testing.T) {
	_, d, path := trained(t)
	texts := corpusTexts(d, 24)

	// Reference run: no kills, record the boundary sequence.
	refDir := t.TempDir()
	var boundaries []string
	ref := chaosDaemon(t, refDir, path, func(stage string) error {
		boundaries = append(boundaries, stage)
		return nil
	})
	ref.Capture("t", texts)
	refRec, err := ref.RunCycle(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if refRec == nil || refRec.CandidateHash == "" {
		t.Fatalf("reference cycle built no candidate (%+v); the chaos fixture must exercise the full state machine", refRec)
	}
	refCand, err := os.ReadFile(filepath.Join(refDir, "candidate-1.json"))
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(refRec)
	if err != nil {
		t.Fatal(err)
	}
	wantStages := []string{"snapshot", "proposed", "candidate", "recorded"}
	for _, s := range wantStages {
		found := false
		for _, b := range boundaries {
			found = found || b == s
		}
		if !found {
			t.Fatalf("reference run never checkpointed %q (saw %v)", s, boundaries)
		}
	}

	for _, stage := range boundaries {
		t.Run("kill-after-"+stage, func(t *testing.T) {
			dir := t.TempDir()

			// Phase 1: identical capture sequence, killed at the boundary.
			victim := chaosDaemon(t, dir, path, func(s string) error {
				if s == stage {
					return errKilled
				}
				return nil
			})
			victim.Capture("t", texts)
			_, err := victim.RunCycle(context.Background())
			if !errors.Is(err, errKilled) {
				t.Fatalf("kill at %s: err = %v, want errKilled", stage, err)
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("interrupted after %s", stage)) {
				t.Fatalf("kill error does not name the boundary: %v", err)
			}

			// Phase 2: cold restart over the same state dir; the resumed
			// cycle must not need the reservoir refilled.
			resumed := chaosDaemon(t, dir, path, nil)
			rec, err := resumed.RunCycle(context.Background())
			if err != nil {
				t.Fatalf("resume after %s: %v", stage, err)
			}
			gotJSON, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(refJSON) {
				t.Errorf("journal row diverged after kill at %s:\n got %s\nwant %s", stage, gotJSON, refJSON)
			}
			cand, err := os.ReadFile(filepath.Join(dir, "candidate-1.json"))
			if err != nil {
				t.Fatal(err)
			}
			if string(cand) != string(refCand) {
				t.Errorf("candidate bytes diverged after kill at %s (%d vs %d bytes)", stage, len(cand), len(refCand))
			}
			if _, err := os.Stat(filepath.Join(dir, "cycle")); !os.IsNotExist(err) {
				t.Errorf("resume after %s left the workspace behind: %v", stage, err)
			}
			rows, err := ckpt.Load(filepath.Join(dir, "growth.jsonl"),
				func(r *CycleRecord) bool { return r.Outcome != "" })
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 1 {
				t.Errorf("journal holds %d rows after kill+resume, want exactly 1", len(rows))
			}
		})
	}
}
