package growth

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"datasculpt/internal/bundle"
	"datasculpt/internal/ckpt"
	"datasculpt/internal/core"
	"datasculpt/internal/dataset"
	"datasculpt/internal/llm"
	"datasculpt/internal/obs"
	"datasculpt/internal/registry"
)

// One growth cycle walks a durable state machine; every transition is
// journaled before the next begins, so a kill at any point resumes to
// the identical candidate:
//
//	snapshot   cycle/corpus.jsonl + cycle/manifest.json written —
//	           the captured sample and the cycle's pinned (seed,
//	           timestamp, budget) exist on disk
//	step-i     cycle/steps.jsonl extended with iteration i's
//	           ProposalStep (resume replays these without LLM calls)
//	proposed   the proposer loop is complete
//	candidate  cycle/candidate.json written — the assembled bundle's
//	           bytes are final
//	recorded   the outcome row is in growth.jsonl and the candidate is
//	           archived as candidate-<n>.json; the workspace is then
//	           removed
//
// The gate→promote→verify block runs between candidate and recorded
// with no checkpoint of its own: a kill inside it re-runs the block on
// resume (promotion is at-least-once), but the candidate bytes it
// promotes are already pinned, so re-promoting is idempotent in effect.

// manifest pins everything about a cycle that must not drift across a
// kill: its number, derived seed, timestamp, corpus size, and budget
// (so a config change cannot reshape a cycle already in flight).
type manifest struct {
	Cycle       int   `json:"cycle"`
	Seed        int64 `json:"seed"`
	CreatedUnix int64 `json:"created_unix"`
	CorpusLen   int   `json:"corpus_len"`
	Budget      int   `json:"budget"`
}

func (d *Daemon) checkpoint(stage string) error {
	if d.cfg.afterCheckpoint != nil {
		if err := d.cfg.afterCheckpoint(stage); err != nil {
			return fmt.Errorf("growth: interrupted after %s: %w", stage, err)
		}
	}
	return nil
}

// RunCycle runs one growth cycle to completion: resume any interrupted
// cycle found in the state dir, otherwise snapshot the reservoir and
// start a fresh one. It returns the cycle's journal record, or
// (nil, nil) when the captured corpus is still below MinCorpus. Safe
// to call concurrently with Capture and Status; concurrent RunCycle
// calls serialize.
func (d *Daemon) RunCycle(ctx context.Context) (rec *CycleRecord, err error) {
	d.cycleMu.Lock()
	defer d.cycleMu.Unlock()
	d.mu.Lock()
	d.running = true
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.running = false
		d.mu.Unlock()
	}()

	span := d.o.StartSpan(ctx, "growth.cycle")
	defer func() {
		if err != nil {
			span.SetErr(err)
		}
		span.End()
	}()
	start := time.Now()

	cycleDir := filepath.Join(d.cfg.StateDir, "cycle")
	man, err := d.loadOrStartCycle(cycleDir)
	if err != nil || man == nil {
		return nil, err
	}
	span.SetInt("cycle", int64(man.Cycle))
	span.SetInt("corpus", int64(man.CorpusLen))

	// A journal row for this cycle means only the workspace cleanup was
	// lost: finish it and return the recorded outcome.
	d.mu.Lock()
	already := len(d.records) > 0 && d.records[len(d.records)-1].Cycle == man.Cycle
	d.mu.Unlock()
	if already {
		if err := os.RemoveAll(cycleDir); err != nil {
			return nil, fmt.Errorf("growth: cleaning finished cycle: %w", err)
		}
		d.mu.Lock()
		last := d.records[len(d.records)-1]
		d.mu.Unlock()
		return &last, nil
	}

	corpus, err := readCorpus(filepath.Join(cycleDir, "corpus.jsonl"))
	if err != nil {
		return nil, err
	}
	gd, err := growthDataset(d.cfg.Base, corpus)
	if err != nil {
		return nil, err
	}

	prop, steps, err := d.propose(ctx, span, man, gd, cycleDir)
	if err != nil {
		return nil, err
	}
	defer prop.Close()

	rec = &CycleRecord{
		Cycle:        man.Cycle,
		CorpusLen:    man.CorpusLen,
		Steps:        len(steps),
		NewLFs:       prop.NewCount(),
		ParentMetric: d.parent.Provenance.EndMetric,
		Parent:       d.parentHash,
		CreatedUnix:  man.CreatedUnix,
	}

	if rec.NewLFs == 0 {
		rec.Outcome = OutcomeNoNewLFs
	} else {
		cand, err := d.candidate(man, gd, prop, cycleDir)
		if err != nil {
			return nil, err
		}
		if rec.CandidateHash, err = bundle.Fingerprint(cand); err != nil {
			return nil, err
		}
		rec.CandidateMetric = cand.Provenance.EndMetric
		texts := make([]string, len(corpus))
		for i, e := range corpus {
			texts[i] = e.Text
		}
		if err := d.decideOutcome(rec, cand, texts, cycleDir); err != nil {
			return nil, err
		}
	}

	if err := d.finalize(rec, man, cycleDir); err != nil {
		return nil, err
	}
	d.mCycles.With2(d.cfg.Tenant, rec.Outcome).Inc()
	d.mNewLFs.AddInt(rec.NewLFs)
	d.mCycleSec.Observe(time.Since(start).Seconds())
	span.SetStr("outcome", rec.Outcome)
	span.SetInt("new_lfs", int64(rec.NewLFs))
	d.o.Logger.LogAttrs(ctx, slog.LevelInfo, "growth cycle complete",
		slog.String("tenant", d.cfg.Tenant), slog.Int("cycle", rec.Cycle),
		slog.String("outcome", rec.Outcome), slog.Int("corpus", rec.CorpusLen),
		slog.Int("new_lfs", rec.NewLFs), slog.Int("generation", rec.Generation))
	return rec, nil
}

// loadOrStartCycle resumes the manifest of an interrupted cycle, or
// snapshots the reservoir into a fresh workspace. A nil manifest with
// nil error means the corpus is still too small.
func (d *Daemon) loadOrStartCycle(cycleDir string) (*manifest, error) {
	manifestPath := filepath.Join(cycleDir, "manifest.json")
	if data, readErr := os.ReadFile(manifestPath); readErr == nil {
		man := new(manifest)
		if err := json.Unmarshal(data, man); err != nil {
			return nil, fmt.Errorf("growth: corrupt cycle manifest: %w", err)
		}
		return man, nil
	} else if !os.IsNotExist(readErr) {
		return nil, fmt.Errorf("growth: %w", readErr)
	}
	// A workspace without a manifest is a cycle killed before its first
	// checkpoint: nothing durable was promised, start over.
	if err := os.RemoveAll(cycleDir); err != nil {
		return nil, fmt.Errorf("growth: clearing stale workspace: %w", err)
	}

	if d.res.Len() < d.cfg.MinCorpus {
		return nil, nil
	}
	texts := d.res.Snapshot()
	d.mFill.Set(0)

	d.mu.Lock()
	cycle := 1
	if n := len(d.records); n > 0 {
		cycle = d.records[n-1].Cycle + 1
	}
	d.mu.Unlock()
	man := &manifest{
		Cycle:       cycle,
		Seed:        d.cfg.Pipeline.Seed + 9973*int64(cycle),
		CreatedUnix: d.cfg.now(),
		CorpusLen:   len(texts),
		Budget:      d.cfg.Budget,
	}

	if err := os.MkdirAll(cycleDir, 0o755); err != nil {
		return nil, fmt.Errorf("growth: creating cycle workspace: %w", err)
	}
	if err := writeCorpus(filepath.Join(cycleDir, "corpus.jsonl"), texts); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return nil, fmt.Errorf("growth: encoding manifest: %w", err)
	}
	if err := os.WriteFile(manifestPath, append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("growth: writing manifest: %w", err)
	}
	if err := d.checkpoint("snapshot"); err != nil {
		return nil, err
	}
	return man, nil
}

// propose replays the journaled steps of this cycle, then runs live
// iterations up to the manifest budget, journaling each before moving
// on.
func (d *Daemon) propose(ctx context.Context, span obs.Span, man *manifest, gd *dataset.Dataset, cycleDir string) (*core.Proposer, []core.ProposalStep, error) {
	pcfg := d.cfg.Pipeline
	pcfg.Seed = man.Seed
	pcfg.EndModel.Seed = man.Seed + 1
	if err := pcfg.Normalize(); err != nil {
		return nil, nil, err
	}

	cycle := man.Cycle
	opts := core.ProposerOptions{
		Frozen:         d.parent.LFs,
		QueryPoolStart: len(d.cfg.Base.Train),
	}
	if d.cfg.WrapModel != nil {
		opts.Model = func(iter int) (llm.ChatModel, error) {
			sim, err := llm.NewSimulated(pcfg.Model, gd, pcfg.Seed+101+1000003*int64(iter))
			if err != nil {
				return nil, err
			}
			return d.cfg.WrapModel(cycle, iter, sim), nil
		}
	}
	prop, err := core.NewProposer(gd, pcfg, opts)
	if err != nil {
		return nil, nil, err
	}

	stepsPath := filepath.Join(cycleDir, "steps.jsonl")
	steps, err := ckpt.Load[core.ProposalStep](stepsPath, nil)
	if err != nil {
		prop.Close()
		return nil, nil, err
	}
	exhausted := false
	for i := range steps {
		if err := prop.Replay(&steps[i]); err != nil {
			prop.Close()
			return nil, nil, err
		}
		exhausted = exhausted || steps[i].Exhausted
	}

	if len(steps) < man.Budget && !exhausted {
		w, err := ckpt.Open(stepsPath)
		if err != nil {
			prop.Close()
			return nil, nil, err
		}
		for it := len(steps); it < man.Budget; it++ {
			stepSpan := span.Child("growth.step")
			st, err := prop.Step(ctx, it)
			if err != nil {
				stepSpan.SetErr(err)
				stepSpan.End()
				w.Close()
				prop.Close()
				return nil, nil, err
			}
			stepSpan.End()
			if err := w.Append(st); err != nil {
				w.Close()
				prop.Close()
				return nil, nil, err
			}
			steps = append(steps, *st)
			if err := d.checkpoint(fmt.Sprintf("step-%d", it)); err != nil {
				w.Close()
				prop.Close()
				return nil, nil, err
			}
			if st.Exhausted {
				break
			}
		}
		if err := w.Close(); err != nil {
			prop.Close()
			return nil, nil, err
		}
	}
	if err := d.checkpoint("proposed"); err != nil {
		prop.Close()
		return nil, nil, err
	}
	return prop, steps, nil
}

// candidate loads the cycle's pinned candidate bundle, or builds and
// pins it: evaluate the grown LF set, stamp the lineage (parent hash,
// cycle counter, the manifest's timestamp), and save. After this
// checkpoint the candidate's bytes never change.
func (d *Daemon) candidate(man *manifest, gd *dataset.Dataset, prop *core.Proposer, cycleDir string) (*bundle.Bundle, error) {
	candPath := filepath.Join(cycleDir, "candidate.json")
	if _, statErr := os.Stat(candPath); statErr == nil {
		cand, err := bundle.Load(candPath)
		if err != nil {
			return nil, fmt.Errorf("growth: loading pinned candidate: %w", err)
		}
		return cand, nil
	} else if !os.IsNotExist(statErr) {
		return nil, fmt.Errorf("growth: %w", statErr)
	}

	res, err := prop.Evaluate()
	if err != nil {
		return nil, err
	}
	pcfg := d.cfg.Pipeline
	pcfg.Seed = man.Seed
	pcfg.EndModel.Seed = man.Seed + 1
	if err := pcfg.Normalize(); err != nil {
		return nil, err
	}
	cand, err := bundle.New(gd, pcfg, res)
	if err != nil {
		return nil, err
	}
	cand.Provenance.Parent = d.parentHash
	cand.Provenance.GrowthCycle = d.parent.Provenance.GrowthCycle + 1
	cand.Provenance.CreatedUnix = man.CreatedUnix
	if d.cfg.mutateCandidate != nil {
		d.cfg.mutateCandidate(cand)
	}
	if err := bundle.Save(candPath, cand); err != nil {
		return nil, err
	}
	if err := d.checkpoint("candidate"); err != nil {
		return nil, err
	}
	return cand, nil
}

// decideOutcome runs the promotion state machine: quality gate →
// registry shadow gate → post-promote verification with automatic
// rollback. Only a candidate that clears all three becomes the new
// lineage head.
func (d *Daemon) decideOutcome(rec *CycleRecord, cand *bundle.Bundle, corpusTexts []string, cycleDir string) error {
	if rec.CandidateMetric < rec.ParentMetric-d.cfg.MaxRegression {
		rec.Outcome = OutcomeQualityRejected
		return nil
	}
	rep, err := d.cfg.Registry.Promote(d.cfg.Tenant, cand, false)
	if errors.Is(err, registry.ErrShadowGate) {
		rec.Outcome = OutcomeShadowRejected
		rec.ShadowAgreement = rep.Agreement
		return nil
	}
	if err != nil {
		return fmt.Errorf("growth: promoting cycle %d candidate: %w", rec.Cycle, err)
	}
	rec.Generation = rep.Generation
	if rep.Gated {
		rec.ShadowAgreement = rep.Agreement
	}

	// The registry's gate only sees recent live traffic, which a fresh
	// or idle tenant lacks; verify against the cycle's own corpus and
	// undo the swap on disagreement.
	rec.VerifyAgreement = agreement(d.parent, cand, corpusTexts)
	if rec.VerifyAgreement < d.cfg.MinVerifyAgreement {
		if _, err := d.cfg.Registry.Rollback(d.cfg.Tenant); err != nil {
			return fmt.Errorf("growth: rolling back cycle %d: %w", rec.Cycle, err)
		}
		rec.Outcome = OutcomeRolledBack
		return nil
	}

	rec.Outcome = OutcomePromoted
	// The candidate's pinned bytes become the new lineage head.
	data, err := os.ReadFile(filepath.Join(cycleDir, "candidate.json"))
	if err != nil {
		return fmt.Errorf("growth: %w", err)
	}
	if err := os.WriteFile(filepath.Join(d.cfg.StateDir, "parent.json"), data, 0o644); err != nil {
		return fmt.Errorf("growth: updating lineage head: %w", err)
	}
	d.mu.Lock()
	d.parent = cand
	d.parentHash = rec.CandidateHash
	d.mu.Unlock()
	return nil
}

// finalize archives the candidate, journals the outcome, and removes
// the workspace.
func (d *Daemon) finalize(rec *CycleRecord, man *manifest, cycleDir string) error {
	candPath := filepath.Join(cycleDir, "candidate.json")
	if data, err := os.ReadFile(candPath); err == nil {
		archive := filepath.Join(d.cfg.StateDir, fmt.Sprintf("candidate-%d.json", man.Cycle))
		if err := os.WriteFile(archive, data, 0o644); err != nil {
			return fmt.Errorf("growth: archiving candidate: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("growth: %w", err)
	}
	if err := ckpt.Append(filepath.Join(d.cfg.StateDir, "growth.jsonl"), rec); err != nil {
		return err
	}
	d.mu.Lock()
	d.records = append(d.records, *rec)
	d.mu.Unlock()
	if err := d.checkpoint("recorded"); err != nil {
		return err
	}
	if err := os.RemoveAll(cycleDir); err != nil {
		return fmt.Errorf("growth: cleaning workspace: %w", err)
	}
	return nil
}

// writeCorpus persists the captured texts as a JSONL split (the PR-9
// streaming format), one unlabeled example per line.
func writeCorpus(path string, texts []string) error {
	split := make([]*dataset.Example, len(texts))
	for i, t := range texts {
		split[i] = &dataset.Example{ID: i, Text: t, Label: dataset.NoLabel, E1Pos: -1, E2Pos: -1}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("growth: creating corpus: %w", err)
	}
	if err := dataset.WriteSplitJSONL(f, split); err != nil {
		f.Close()
		return fmt.Errorf("growth: writing corpus: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("growth: syncing corpus: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("growth: closing corpus: %w", err)
	}
	return nil
}

// readCorpus streams the cycle's corpus snapshot back into examples.
func readCorpus(path string) ([]*dataset.Example, error) {
	r, err := dataset.OpenJSONL(path, dataset.TextClassification)
	if err != nil {
		return nil, fmt.Errorf("growth: %w", err)
	}
	defer r.Close()
	var out []*dataset.Example
	for {
		e, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("growth: reading corpus: %w", err)
		}
		out = append(out, e)
	}
}

// growthDataset assembles the cycle's training view: the base train
// split (labels stripped — growth treats everything as the unlabeled
// pool the paper samples from) followed by the captured corpus, with
// the labeled valid/test splits intact for filtering and the quality
// gate.
func growthDataset(base *dataset.Dataset, captured []*dataset.Example) (*dataset.Dataset, error) {
	train := make([]*dataset.Example, 0, len(base.Train)+len(captured))
	maxID := -1
	for _, e := range base.Train {
		c := *e
		c.Label = dataset.NoLabel
		train = append(train, &c)
		if c.ID > maxID {
			maxID = c.ID
		}
	}
	for i, e := range captured {
		c := *e
		c.ID = maxID + 1 + i
		c.Label = dataset.NoLabel
		c.EnsureTokens()
		train = append(train, &c)
	}
	gd := &dataset.Dataset{
		Name:            base.Name,
		Task:            base.Task,
		ClassNames:      base.ClassNames,
		DefaultClass:    base.DefaultClass,
		Imbalanced:      base.Imbalanced,
		TrainLabeled:    false,
		Train:           train,
		Valid:           base.Valid,
		Test:            base.Test,
		Signal:          base.Signal,
		TaskDescription: base.TaskDescription,
		InstanceNoun:    base.InstanceNoun,
	}
	if err := gd.Validate(); err != nil {
		return nil, fmt.Errorf("growth: assembling cycle dataset: %w", err)
	}
	return gd, nil
}

// agreement replays texts through both bundles offline (the same
// featurize→predict path serving uses) and returns the fraction on
// which they predict the same class name — the growth loop's
// post-promote verification. An empty corpus verifies trivially.
func agreement(old, nb *bundle.Bundle, texts []string) float64 {
	if len(texts) == 0 {
		return 1
	}
	corpus := make([][]string, len(texts))
	for i, t := range texts {
		e := &dataset.Example{ID: -1, Text: t, Label: dataset.NoLabel, E1Pos: -1, E2Pos: -1}
		corpus[i] = e.FeatureTokens()
	}
	po := old.EndModel.Predict(old.Featurizer.TransformAll(corpus))
	pn := nb.EndModel.Predict(nb.Featurizer.TransformAll(corpus))
	same := 0
	for i := range po {
		oc, nc := "", ""
		if po[i] >= 0 && po[i] < len(old.Dataset.ClassNames) {
			oc = old.Dataset.ClassNames[po[i]]
		}
		if pn[i] >= 0 && pn[i] < len(nb.Dataset.ClassNames) {
			nc = nb.Dataset.ClassNames[pn[i]]
		}
		if oc == nc && oc != "" {
			same++
		}
	}
	return float64(same) / float64(len(texts))
}
