package growth

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"datasculpt/internal/bundle"
	"datasculpt/internal/obs"
	"datasculpt/internal/registry"
	"datasculpt/internal/serve"
)

// TestGrowthRollbackUnderLoad races the growth loop's worst case —
// promoting a regressing candidate and rolling it back — against live
// /v1/label traffic and a concurrent manual promoter. Invariants: the
// bad candidate is caught by the post-promote verification, every
// served request gets exactly one successful answer, manual promotions
// observe strictly increasing generations, and the growth lineage never
// advances. Run under -race.
func TestGrowthRollbackUnderLoad(t *testing.T) {
	_, d, path := trained(t)
	parent, err := bundle.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// ShadowSample -1 disables the registry's own gate: the regressing
	// candidate must get through Promote so the growth loop's verify →
	// rollback path is what catches it.
	reg := newTestRegistry(t, registry.Options{ShadowSample: -1}, path)
	dmn, err := New(Config{
		Tenant: "t", Registry: reg, Base: d, Parent: parent,
		Pipeline: growthPipeline(), StateDir: t.TempDir(),
		Budget: 4, MinCorpus: 8,
		now: func() int64 { return 1_754_300_000 },
		// Sabotage the candidate after evaluation but before pinning:
		// negated weights invert every prediction, so the quality gate
		// (which saw the honest metric) passes but post-promote
		// verification against the parent must fail.
		mutateCandidate: func(b *bundle.Bundle) {
			for _, row := range b.EndModel.W {
				for j := range row {
					row[j] = -row[j]
				}
			}
			for j := range b.EndModel.B {
				b.EndModel.B[j] = -b.EndModel.B[j]
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rootHash := dmn.Status().Parent

	gw := registry.NewGateway(reg, obs.New(nil, obs.NewRegistry(), nil), registry.GatewayOptions{
		DefaultTenant: "t",
		Growth:        func() any { return dmn.Status() },
	})
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)

	texts := corpusTexts(d, 24)
	dmn.Capture("t", texts)

	manualBundle, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 4, 40
	var (
		wg      sync.WaitGroup
		served  atomic.Int64
		failed  atomic.Int64
		errOnce sync.Once
		firstEr error
	)
	fail := func(err error) {
		failed.Add(1)
		errOnce.Do(func() { firstEr = err })
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body, _ := json.Marshal(map[string]any{"text": texts[(w*perWorker+i)%len(texts)]})
				resp, err := http.Post(ts.URL+"/v1/label", "application/json", bytes.NewReader(body))
				if err != nil {
					fail(err)
					continue
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("status %d: %s", resp.StatusCode, data))
					continue
				}
				var out struct {
					Prediction *serve.Prediction `json:"prediction"`
				}
				if err := json.Unmarshal(data, &out); err != nil || out.Prediction == nil {
					fail(fmt.Errorf("label response without prediction: %s", data))
					continue
				}
				served.Add(1)
			}
		}(w)
	}

	// Manual promoter: re-promotes the boot bundle over HTTP while the
	// growth loop promotes and rolls back its candidate.
	promoGens := make([]int, 0, 6)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			resp, err := http.Post(ts.URL+"/v1/bundles/t", "application/json", bytes.NewReader(manualBundle))
			if err != nil {
				fail(err)
				continue
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				fail(fmt.Errorf("manual promote status %d: %s", resp.StatusCode, data))
				continue
			}
			var rep registry.PromoteReport
			if err := json.Unmarshal(data, &rep); err != nil {
				fail(err)
				continue
			}
			promoGens = append(promoGens, rep.Generation)
		}
	}()

	rec, err := dmn.RunCycle(context.Background())
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Outcome != OutcomeRolledBack {
		t.Fatalf("cycle record %+v, want outcome %s", rec, OutcomeRolledBack)
	}
	if rec.VerifyAgreement >= 0.9 {
		t.Fatalf("sabotaged candidate verified at %.3f agreement", rec.VerifyAgreement)
	}
	if failed.Load() != 0 {
		t.Fatalf("%d of %d label/promote requests failed during rollback; first: %v",
			failed.Load(), workers*perWorker, firstEr)
	}
	if got := served.Load(); got != workers*perWorker {
		t.Fatalf("served %d responses, want %d", got, workers*perWorker)
	}
	for i := 1; i < len(promoGens); i++ {
		if promoGens[i] <= promoGens[i-1] {
			t.Fatalf("manual promotions saw non-monotonic generations: %v", promoGens)
		}
	}

	// The rollback must not advance the growth lineage.
	st := dmn.Status()
	if st.Parent != rootHash || st.GrowthCycle != 0 {
		t.Fatalf("lineage advanced through a rolled-back cycle: parent %s cycle %d", st.Parent, st.GrowthCycle)
	}
	if st.Stats.RolledBack != 1 || st.Stats.Promoted != 0 {
		t.Fatalf("stats %+v", st.Stats)
	}
}
