package growth

// Cycle outcomes, in the order the promotion state machine can reach
// them: a cycle that proposed nothing stops before bundling; a
// candidate below the quality floor never reaches the registry; the
// registry's shadow gate can reject it; a promoted candidate that
// fails the post-promote verification is rolled back; everything else
// is promoted and becomes the next cycle's parent.
const (
	OutcomeNoNewLFs        = "no_new_lfs"
	OutcomeQualityRejected = "quality_rejected"
	OutcomeShadowRejected  = "shadow_rejected"
	OutcomeRolledBack      = "rolled_back"
	OutcomePromoted        = "promoted"
)

// CycleRecord is the journaled outcome of one completed growth cycle —
// one line of growth.jsonl. Everything in it is a deterministic
// function of the captured corpus and the cycle seed, so a resumed
// daemon reproduces the record exactly.
type CycleRecord struct {
	// Cycle is the 1-based cycle counter.
	Cycle int `json:"cycle"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// CorpusLen is how many captured texts the cycle trained over.
	CorpusLen int `json:"corpus_len"`
	// Steps is how many proposer iterations ran (including degraded
	// ones); NewLFs how many LFs they added beyond the parent set.
	Steps  int `json:"steps"`
	NewLFs int `json:"new_lfs"`
	// CandidateMetric/ParentMetric are the offline test metrics the
	// quality gate compared (candidate side absent when no candidate
	// was built).
	CandidateMetric float64 `json:"candidate_metric,omitempty"`
	ParentMetric    float64 `json:"parent_metric"`
	// ShadowAgreement is what the registry's gate measured (when it
	// ran); VerifyAgreement is the growth loop's own post-promote
	// check of candidate vs parent over the cycle corpus.
	ShadowAgreement float64 `json:"shadow_agreement,omitempty"`
	VerifyAgreement float64 `json:"verify_agreement,omitempty"`
	// Generation is the registry generation a promotion produced.
	Generation int `json:"generation,omitempty"`
	// CandidateHash fingerprints the candidate bundle; Parent the
	// bundle it grew from.
	CandidateHash string `json:"candidate_hash,omitempty"`
	Parent        string `json:"parent"`
	// CreatedUnix is the cycle's pinned timestamp (taken once at
	// snapshot time and reused on resume, so candidate bytes are
	// kill-stable).
	CreatedUnix int64 `json:"created_unix"`
}

// CycleStats aggregates the journal for the status endpoint.
type CycleStats struct {
	Cycles     int `json:"cycles"`
	Promoted   int `json:"promoted"`
	RolledBack int `json:"rolled_back"`
	Rejected   int `json:"rejected"`
	NoNewLFs   int `json:"no_new_lfs"`
	NewLFs     int `json:"new_lfs"`
}

// Status is the GET /v1/growth payload: the daemon's configuration,
// the reservoir's fill, and the journal so far.
type Status struct {
	Tenant          string       `json:"tenant"`
	State           string       `json:"state"` // "idle" | "running"
	IntervalSeconds float64      `json:"interval_seconds"`
	Budget          int          `json:"budget"`
	MinCorpus       int          `json:"min_corpus"`
	Captured        int          `json:"captured"`
	CapturedTotal   int64        `json:"captured_total"`
	Parent          string       `json:"parent"`
	GrowthCycle     int          `json:"growth_cycle"`
	Stats           CycleStats   `json:"stats"`
	LastCycle       *CycleRecord `json:"last_cycle,omitempty"`
}

// stats folds the journal into counters.
func stats(records []CycleRecord) CycleStats {
	s := CycleStats{Cycles: len(records)}
	for _, r := range records {
		s.NewLFs += r.NewLFs
		switch r.Outcome {
		case OutcomePromoted:
			s.Promoted++
		case OutcomeRolledBack:
			s.RolledBack++
		case OutcomeShadowRejected, OutcomeQualityRejected:
			s.Rejected++
		case OutcomeNoNewLFs:
			s.NoNewLFs++
		}
	}
	return s
}
