package endmodel

import (
	"encoding/json"
	"testing"
)

func TestModelJSONRoundTrip(t *testing.T) {
	X, Y := gaussianBlobs(1, 500, 3, 64, 0.1)
	m, err := Train(X, oneHot(Y, 3), nil, 3, 64, TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back LogisticRegression
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Dim != m.Dim || back.K != m.K {
		t.Fatalf("shape = %dx%d", back.K, back.Dim)
	}
	// identical predictions
	origPred := m.Predict(X)
	backPred := back.Predict(X)
	for i := range origPred {
		if origPred[i] != backPred[i] {
			t.Fatalf("prediction %d differs after round trip", i)
		}
	}
	origProba := m.PredictProba(X[0])
	backProba := back.PredictProba(X[0])
	for c := range origProba {
		if origProba[c] != backProba[c] {
			t.Fatal("probabilities differ after round trip")
		}
	}
}

func TestModelJSONValidation(t *testing.T) {
	var m LogisticRegression
	cases := []string{
		`{"dim": 0, "k": 2, "bias": [0,0], "indices": [[],[]], "values": [[],[]]}`,
		`{"dim": 4, "k": 1, "bias": [0], "indices": [[]], "values": [[]]}`,
		`{"dim": 4, "k": 2, "bias": [0], "indices": [[],[]], "values": [[],[]]}`,
		`{"dim": 4, "k": 2, "bias": [0,0], "indices": [[1],[]], "values": [[],[]]}`,
		`{"dim": 4, "k": 2, "bias": [0,0], "indices": [[9],[]], "values": [[1],[]]}`,
		`not json at all`,
	}
	for _, c := range cases {
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Errorf("accepted invalid model %q", c)
		}
	}
}
