// Package endmodel implements the downstream model of the PWS pipeline: a
// multinomial logistic regression trained on probabilistic (soft) labels
// produced by the label model, over sparse hashed TF-IDF features. This
// matches the paper's configuration (logistic regression over frozen text
// features, WRENCH-style), with TF-IDF standing in for BERT embeddings
// (see DESIGN.md §2).
package endmodel

import (
	"fmt"
	"math"
	"math/rand"

	"datasculpt/internal/par"
	"datasculpt/internal/textproc"
)

// TrainConfig holds the optimizer hyperparameters.
type TrainConfig struct {
	// Epochs over the training set (default 8).
	Epochs int
	// LearningRate of per-example SGD (default 0.5; features are
	// L2-normalized TF-IDF, so a large step is stable). It decays by
	// LRDecay per epoch.
	LearningRate float64
	// LRDecay multiplies the learning rate after each epoch (default 0.9).
	LRDecay float64
	// L2 regularization strength (default 1e-5).
	L2 float64
	// Seed drives shuffling.
	Seed int64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Epochs <= 0 {
		c.Epochs = 8
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.5
	}
	if c.LRDecay <= 0 || c.LRDecay > 1 {
		c.LRDecay = 0.9
	}
	if c.L2 < 0 {
		c.L2 = 0
	} else if c.L2 == 0 {
		c.L2 = 1e-5
	}
	return c
}

// LogisticRegression is a trained multinomial logistic-regression model.
type LogisticRegression struct {
	// Dim is the feature dimensionality, K the class count.
	Dim, K int
	// W is the K×Dim weight matrix, B the per-class bias.
	W [][]float64
	B []float64

	// workers bounds the goroutines batch prediction fans out over
	// (<= 1 sequential). Per-example outputs are independent, so every
	// worker count produces identical results. Not serialized — a
	// deserialized model predicts sequentially until SetParallelism.
	workers int
}

// SetParallelism sets the worker bound for Predict/PredictProbaAll.
func (m *LogisticRegression) SetParallelism(workers int) { m.workers = workers }

// Validate checks the structural invariants of a model (trained,
// deserialized, or hand-assembled): a consistent K×Dim shape and finite
// parameters. Bundle loading calls it before serving the model.
func (m *LogisticRegression) Validate() error {
	if m.Dim <= 0 || m.K < 2 {
		return fmt.Errorf("endmodel: invalid shape %dx%d", m.K, m.Dim)
	}
	if len(m.W) != m.K || len(m.B) != m.K {
		return fmt.Errorf("endmodel: %d weight rows and %d biases for %d classes", len(m.W), len(m.B), m.K)
	}
	for c, wc := range m.W {
		if len(wc) != m.Dim {
			return fmt.Errorf("endmodel: class %d has %d weights for dimension %d", c, len(wc), m.Dim)
		}
		for _, w := range wc {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("endmodel: class %d has a non-finite weight", c)
			}
		}
	}
	for c, b := range m.B {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("endmodel: class %d has a non-finite bias", c)
		}
	}
	return nil
}

// Train fits the model on sparse features X with soft targets Y (each row
// a probability vector over k classes) using mini-batch SGD with
// per-epoch learning-rate decay. An optional weights slice scales each
// example's loss (nil means uniform).
func Train(X []*textproc.SparseVector, Y [][]float64, weights []float64, k, dim int, cfg TrainConfig) (*LogisticRegression, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("endmodel: empty training set")
	}
	if len(X) != len(Y) {
		return nil, fmt.Errorf("endmodel: %d features for %d targets", len(X), len(Y))
	}
	if weights != nil && len(weights) != len(X) {
		return nil, fmt.Errorf("endmodel: %d weights for %d examples", len(weights), len(X))
	}
	if k < 2 {
		return nil, fmt.Errorf("endmodel: need >=2 classes, got %d", k)
	}
	for i, y := range Y {
		if len(y) != k {
			return nil, fmt.Errorf("endmodel: target %d has %d classes, want %d", i, len(y), k)
		}
	}
	cfg = cfg.withDefaults()

	m := &LogisticRegression{
		Dim: dim,
		K:   k,
		W:   make([][]float64, k),
		B:   make([]float64, k),
	}
	for c := range m.W {
		m.W[c] = make([]float64, dim)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := rng.Perm(len(X))
	probs := make([]float64, k)
	lr := cfg.LearningRate

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// reshuffle each epoch
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			x := X[idx]
			m.logits(x, probs)
			softmaxInPlace(probs)
			w := lr
			if weights != nil {
				w *= weights[idx]
			}
			for c := 0; c < k; c++ {
				g := (probs[c] - Y[idx][c]) * w
				if g == 0 {
					continue
				}
				m.B[c] -= g
				wc := m.W[c]
				for t, fi := range x.Idx {
					wc[fi] -= g * float64(x.Val[t])
				}
			}
			// lazy L2 on touched coordinates
			if cfg.L2 > 0 {
				shrink := 1 - lr*cfg.L2
				for c := 0; c < k; c++ {
					wc := m.W[c]
					for _, fi := range x.Idx {
						wc[fi] *= shrink
					}
				}
			}
		}
		lr *= cfg.LRDecay
	}
	return m, nil
}

// logits writes raw class scores for x into out (length K).
func (m *LogisticRegression) logits(x *textproc.SparseVector, out []float64) {
	for c := 0; c < m.K; c++ {
		s := m.B[c]
		wc := m.W[c]
		for t, fi := range x.Idx {
			s += wc[fi] * float64(x.Val[t])
		}
		out[c] = s
	}
}

func softmaxInPlace(xs []float64) {
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	var sum float64
	for i, x := range xs {
		xs[i] = math.Exp(x - max)
		sum += xs[i]
	}
	for i := range xs {
		xs[i] /= sum
	}
}

// PredictProba returns the class distribution for one feature vector.
func (m *LogisticRegression) PredictProba(x *textproc.SparseVector) []float64 {
	out := make([]float64, m.K)
	m.logits(x, out)
	softmaxInPlace(out)
	return out
}

// Predict returns argmax classes for a batch, sharded across the
// configured workers (identical output at any worker count).
func (m *LogisticRegression) Predict(X []*textproc.SparseVector) []int {
	out := make([]int, len(X))
	par.Chunks(m.workers, len(X), func(lo, hi int) {
		probs := make([]float64, m.K)
		for i := lo; i < hi; i++ {
			m.logits(X[i], probs)
			best := 0
			for c := 1; c < m.K; c++ {
				if probs[c] > probs[best] {
					best = c
				}
			}
			out[i] = best
		}
	})
	return out
}

// PredictProbaAll returns class distributions for a batch, sharded
// across the configured workers. All rows share one flat backing array —
// a single allocation instead of one per example, which matters when the
// pipeline re-predicts the full train split every interim refresh.
func (m *LogisticRegression) PredictProbaAll(X []*textproc.SparseVector) [][]float64 {
	out := make([][]float64, len(X))
	backing := make([]float64, len(X)*m.K)
	par.Chunks(m.workers, len(X), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := backing[i*m.K : (i+1)*m.K : (i+1)*m.K]
			m.logits(X[i], row)
			softmaxInPlace(row)
			out[i] = row
		}
	})
	return out
}
