package endmodel

import (
	"encoding/json"
	"fmt"
	"math"
)

// modelJSON is the stored form of a trained model. Weights are kept
// sparse (index/value pairs per class): hashed TF-IDF leaves most of the
// weight matrix at exactly zero, so sparse storage keeps saved models
// small without any precision loss.
type modelJSON struct {
	Dim     int         `json:"dim"`
	K       int         `json:"k"`
	Bias    []float64   `json:"bias"`
	Indices [][]int     `json:"indices"`
	Values  [][]float64 `json:"values"`
}

// MarshalJSON implements json.Marshaler.
func (m *LogisticRegression) MarshalJSON() ([]byte, error) {
	out := modelJSON{
		Dim:     m.Dim,
		K:       m.K,
		Bias:    m.B,
		Indices: make([][]int, m.K),
		Values:  make([][]float64, m.K),
	}
	for c := 0; c < m.K; c++ {
		for f, w := range m.W[c] {
			if w == 0 {
				continue
			}
			out.Indices[c] = append(out.Indices[c], f)
			out.Values[c] = append(out.Values[c], w)
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, validating the structure.
func (m *LogisticRegression) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("endmodel: decoding model: %w", err)
	}
	if in.Dim <= 0 || in.K < 2 {
		return fmt.Errorf("endmodel: invalid shape %dx%d", in.K, in.Dim)
	}
	if len(in.Bias) != in.K || len(in.Indices) != in.K || len(in.Values) != in.K {
		return fmt.Errorf("endmodel: class-count mismatch in stored model")
	}
	m.Dim, m.K = in.Dim, in.K
	m.B = in.Bias
	m.W = make([][]float64, in.K)
	for c := 0; c < in.K; c++ {
		if len(in.Indices[c]) != len(in.Values[c]) {
			return fmt.Errorf("endmodel: class %d has %d indices for %d values",
				c, len(in.Indices[c]), len(in.Values[c]))
		}
		m.W[c] = make([]float64, in.Dim)
		for t, f := range in.Indices[c] {
			if f < 0 || f >= in.Dim {
				return fmt.Errorf("endmodel: class %d feature index %d out of range", c, f)
			}
			v := in.Values[c][t]
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("endmodel: class %d has a non-finite weight", c)
			}
			m.W[c][f] = v
		}
	}
	return nil
}
