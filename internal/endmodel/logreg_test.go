package endmodel

import (
	"math"
	"math/rand"
	"testing"

	"datasculpt/internal/metrics"
	"datasculpt/internal/textproc"
)

// gaussianBlobs builds a linearly separable-ish sparse dataset: class c
// documents are dominated by feature block c.
func gaussianBlobs(seed int64, n, k, dim int, noise float64) ([]*textproc.SparseVector, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([]*textproc.SparseVector, n)
	Y := make([]int, n)
	block := dim / k
	for i := 0; i < n; i++ {
		c := rng.Intn(k)
		Y[i] = c
		var idx []int32
		var val []float32
		for t := 0; t < 6; t++ {
			var f int
			if rng.Float64() < 1-noise {
				f = c*block + rng.Intn(block)
			} else {
				f = rng.Intn(dim)
			}
			idx = append(idx, int32(f))
			val = append(val, 1)
		}
		// sort+dedupe by accumulating into a map-free pass
		v := &textproc.SparseVector{}
		seen := map[int32]float32{}
		for t, f := range idx {
			seen[f] += val[t]
		}
		for f := range seen {
			v.Idx = append(v.Idx, f)
		}
		sortInt32(v.Idx)
		for _, f := range v.Idx {
			v.Val = append(v.Val, seen[f])
		}
		v.Normalize()
		X[i] = v
	}
	return X, Y
}

func sortInt32(xs []int32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j-1] > xs[j]; j-- {
			xs[j-1], xs[j] = xs[j], xs[j-1]
		}
	}
}

func oneHot(y []int, k int) [][]float64 {
	out := make([][]float64, len(y))
	for i, c := range y {
		row := make([]float64, k)
		row[c] = 1
		out[i] = row
	}
	return out
}

func TestTrainBinarySeparable(t *testing.T) {
	X, Y := gaussianBlobs(1, 2000, 2, 64, 0.1)
	m, err := Train(X, oneHot(Y, 2), nil, 2, 64, TrainConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(X)
	if acc := metrics.Accuracy(pred, Y); acc < 0.95 {
		t.Errorf("train accuracy = %v, want >= 0.95", acc)
	}
}

func TestTrainMulticlass(t *testing.T) {
	X, Y := gaussianBlobs(2, 4000, 4, 128, 0.15)
	m, err := Train(X, oneHot(Y, 4), nil, 4, 128, TrainConfig{Seed: 2, Epochs: 8})
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := gaussianBlobs(3, 1000, 4, 128, 0.15)
	pred := m.Predict(testX)
	if acc := metrics.Accuracy(pred, testY); acc < 0.9 {
		t.Errorf("test accuracy = %v, want >= 0.9", acc)
	}
}

func TestTrainSoftLabels(t *testing.T) {
	// Noisy soft labels (0.8 mass on the true class) must still train a
	// usable model — the core property the PWS pipeline relies on.
	X, Y := gaussianBlobs(4, 3000, 2, 64, 0.1)
	soft := make([][]float64, len(Y))
	for i, c := range Y {
		row := []float64{0.2, 0.2}
		row[c] = 0.8
		soft[i] = row
	}
	m, err := Train(X, soft, nil, 2, 64, TrainConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(X)
	if acc := metrics.Accuracy(pred, Y); acc < 0.9 {
		t.Errorf("soft-label accuracy = %v", acc)
	}
}

func TestTrainValidatesInput(t *testing.T) {
	X, Y := gaussianBlobs(5, 10, 2, 16, 0.1)
	if _, err := Train(nil, nil, nil, 2, 16, TrainConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Train(X, oneHot(Y, 2)[:5], nil, 2, 16, TrainConfig{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Train(X, oneHot(Y, 2), make([]float64, 3), 2, 16, TrainConfig{}); err == nil {
		t.Error("weights mismatch accepted")
	}
	if _, err := Train(X, oneHot(Y, 2), nil, 1, 16, TrainConfig{}); err == nil {
		t.Error("single class accepted")
	}
	bad := oneHot(Y, 2)
	bad[0] = []float64{1}
	if _, err := Train(X, bad, nil, 2, 16, TrainConfig{}); err == nil {
		t.Error("ragged targets accepted")
	}
}

func TestPredictProbaSumsToOne(t *testing.T) {
	X, Y := gaussianBlobs(6, 500, 3, 64, 0.2)
	m, err := Train(X, oneHot(Y, 3), nil, 3, 64, TrainConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X[:50] {
		p := m.PredictProba(x)
		var s float64
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("probability %v out of range", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", s)
		}
	}
}

func TestTrainDeterministic(t *testing.T) {
	X, Y := gaussianBlobs(7, 500, 2, 32, 0.1)
	m1, err := Train(X, oneHot(Y, 2), nil, 2, 32, TrainConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(X, oneHot(Y, 2), nil, 2, 32, TrainConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for c := range m1.W {
		for f := range m1.W[c] {
			if m1.W[c][f] != m2.W[c][f] {
				t.Fatal("training is nondeterministic for equal seeds")
			}
		}
	}
}

func TestExampleWeights(t *testing.T) {
	// Down-weighting mislabeled examples should recover accuracy lost to
	// label corruption.
	X, Y := gaussianBlobs(8, 2000, 2, 64, 0.1)
	labels := append([]int(nil), Y...)
	weights := make([]float64, len(Y))
	for i := range labels {
		weights[i] = 1
		if i%4 == 0 { // corrupt a quarter of the labels
			labels[i] = 1 - labels[i]
			weights[i] = 0.01
		}
	}
	m, err := Train(X, oneHot(labels, 2), weights, 2, 64, TrainConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(X)
	if acc := metrics.Accuracy(pred, Y); acc < 0.9 {
		t.Errorf("weighted training accuracy = %v", acc)
	}
}
